// Package repro_bench is the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (go test -bench .).
// Each BenchmarkTableN/BenchmarkFigN prints the reproduced rows once and
// reports the headline numbers as benchmark metrics; the Benchmark*Ablation
// benches cover the design choices DESIGN.md calls out.
package repro_bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/ssresf"
	"repro/internal/svm"
	"repro/internal/xrand"
)

// benchConfig keeps bench sampling modest so the full harness completes in
// minutes; cmd/tables runs the full-fidelity version.
func benchConfig() ssresf.ExperimentConfig {
	ec := ssresf.DefaultExperimentConfig(true)
	ec.Inject.SampleFrac = 0.12
	ec.Inject.MinPerCluster = 2
	ec.Train.Folds = 5
	return ec
}

var printOnce sync.Map

func printFirst(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

func BenchmarkTableI(b *testing.B) {
	ec := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := ssresf.TableI(ec)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table1", func() {
			fmt.Println()
			ssresf.RenderTableI(os.Stdout, rows)
		})
		b.ReportMetric(rows[0].BusSER, "soc1-bus-ser-%")
		b.ReportMetric(rows[9].MemSER, "soc10-mem-ser-%")
	}
}

func BenchmarkTableII(b *testing.B) {
	ec := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, avg, err := ssresf.TableII(ec, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table2", func() {
			fmt.Println()
			ssresf.RenderTableII(os.Stdout, rows, avg)
		})
		b.ReportMetric(100*avg.Accuracy, "avg-accuracy-%")
		b.ReportMetric(100*avg.TNR, "avg-tnr-%")
	}
}

func BenchmarkTableIII(b *testing.B) {
	ec := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, avg, err := ssresf.TableIII(ec, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table3", func() {
			fmt.Println()
			ssresf.RenderTableIII(os.Stdout, rows, avg)
		})
		b.ReportMetric(avg.SpeedupVCS, "avg-speedup-vcs-x")
		b.ReportMetric(avg.SpeedupCVC, "avg-speedup-cvc-x")
		b.ReportMetric(100*avg.Accuracy, "avg-accuracy-%")
	}
}

func soc1Analysis(b *testing.B, ec ssresf.ExperimentConfig) *ssresf.Analysis {
	b.Helper()
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		b.Fatal(err)
	}
	an, err := ssresf.AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(1))
	if err != nil {
		b.Fatal(err)
	}
	return an
}

func BenchmarkFig5(b *testing.B) {
	ec := benchConfig()
	an := soc1Analysis(b, ec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := ssresf.Fig5(an.Dataset, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig5", func() {
			fmt.Println()
			ssresf.RenderFig5(os.Stdout, pts)
		})
		b.ReportMetric(float64(ssresf.BestFeatureCount(pts)), "best-feature-count")
	}
}

func BenchmarkFig6(b *testing.B) {
	ec := benchConfig()
	an := soc1Analysis(b, ec)
	cls, err := ssresf.Train(an.Dataset, ec.Train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, auc, err := ssresf.Fig6(cls, an)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6", func() {
			fmt.Println()
			ssresf.RenderFig6(os.Stdout, curve, auc)
		})
		b.ReportMetric(auc, "auc")
	}
}

func BenchmarkFig7(b *testing.B) {
	ec := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := ssresf.Fig7(ec, []float64{4e8, 6e8, 8e8})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig7", func() {
			fmt.Println()
			ssresf.RenderFig7(os.Stdout, rows)
		})
	}
}

// BenchmarkEngines compares raw simulation throughput of the two engines
// on the same SoC workload — the ablation behind the VCS/CVC runtime gap.
func BenchmarkEngines(b *testing.B) {
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		b.Fatal(err)
	}
	d, err := socgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := socgen.RunWorkload(riscv.MemcpyProgram(16), 32)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := socgen.BuildStimulus(f, wl)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []sim.EngineKind{sim.KindEvent, sim.KindLevel} {
		b.Run(string(kind), func(b *testing.B) {
			var evals uint64
			for i := 0; i < b.N; i++ {
				e, err := sim.New(kind, f)
				if err != nil {
					b.Fatal(err)
				}
				if err := plan.Apply(e); err != nil {
					b.Fatal(err)
				}
				if err := e.Run(plan.DurationPS); err != nil {
					b.Fatal(err)
				}
				evals = e.CellEvals()
			}
			b.ReportMetric(float64(evals), "cell-evals/run")
		})
	}
}

// warmstartReport is the BENCH_warmstart.json schema: one entry per
// engine (plus the compare_vcd detector variant) with the golden and
// injection wall-clock and cell-evaluation metrics of a cold
// (replay-from-zero) vs warm (checkpoint-restored) campaign, so CI tracks
// the perf trajectory of the warm-start path.
type warmstartReport struct {
	Design           string  `json:"design"`
	Engine           string  `json:"engine"`
	Injections       int     `json:"injections"`
	GoldenWallNS     int64   `json:"golden_wall_ns"`
	GoldenEvals      uint64  `json:"golden_evals"`
	ColdInjectWallNS int64   `json:"cold_inject_wall_ns"`
	ColdInjectEvals  uint64  `json:"cold_inject_evals"`
	WarmInjectWallNS int64   `json:"warm_inject_wall_ns"`
	WarmInjectEvals  uint64  `json:"warm_inject_evals"`
	WarmStarts       uint64  `json:"warm_starts"`
	PrunedRuns       uint64  `json:"pruned_runs"`
	DeltaRestores    uint64  `json:"delta_restores"`
	RestoreWallNS    int64   `json:"restore_wall_ns"`
	ChecksumWallNS   int64   `json:"checksum_wall_ns"`
	EvalsReductionX  float64 `json:"evals_reduction_x"`
	WallReductionX   float64 `json:"wall_reduction_x"`
}

var (
	warmstartMu      sync.Mutex
	warmstartEntries = map[string]warmstartReport{}
)

func writeWarmstartJSON(b *testing.B, key string, rep warmstartReport) {
	b.Helper()
	warmstartMu.Lock()
	defer warmstartMu.Unlock()
	warmstartEntries[key] = rep
	buf, err := json.MarshalIndent(warmstartEntries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_warmstart.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// runWarmColdPair executes the same SoC1 campaign twice — cold
// (replay-from-zero) and warm (checkpoint-restored) — and fails the bench
// if the two results are not bit-identical.
func runWarmColdPair(b *testing.B, kind sim.EngineKind, frac float64) (cold, warm *inject.SoCRun) {
	b.Helper()
	opts := inject.DefaultOptions()
	opts.Engine = kind
	opts.SampleFrac = frac
	return runWarmColdPairOpts(b, opts)
}

// runWarmColdPairOpts is runWarmColdPair over explicit options (the
// compare_vcd variant flips the detector).
func runWarmColdPairOpts(b *testing.B, opts inject.Options) (cold, warm *inject.SoCRun) {
	b.Helper()
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		b.Fatal(err)
	}
	coldOpts := opts
	coldOpts.ColdStart = true
	cold, err = inject.RunSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), coldOpts)
	if err != nil {
		b.Fatal(err)
	}
	warm, err = inject.RunSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if len(cold.Result.Injections) != len(warm.Result.Injections) {
		b.Fatalf("warm/cold injection counts differ: %d vs %d", len(cold.Result.Injections), len(warm.Result.Injections))
	}
	for i := range cold.Result.Injections {
		if cold.Result.Injections[i] != warm.Result.Injections[i] {
			b.Fatalf("warm/cold verdicts differ at %d: %+v vs %+v", i, cold.Result.Injections[i], warm.Result.Injections[i])
		}
	}
	if cold.Result.ChipSER != warm.Result.ChipSER {
		b.Fatalf("warm/cold chip SER differ: %v vs %v", cold.Result.ChipSER, warm.Result.ChipSER)
	}
	return cold, warm
}

// stampWall measures the integrity-checksum cost an executor pays per
// shard: canonically encoding and hashing the warm run's full result
// payload as one shard.Partial (a real shard covers a slice of it, so
// this is the conservative upper bound). Minimum of a few runs —
// encode+hash is deterministic work, so min is the honest figure and
// scheduler noise only inflates the others. cmd/benchgate gates this
// wall against the warm-injection wall: with -audit-frac=0 checksums
// are the integrity subsystem's entire steady-state overhead.
func stampWall(b *testing.B, warm *inject.SoCRun) int64 {
	b.Helper()
	res := warm.Result
	p := &shard.Partial{
		Start:         0,
		End:           len(res.Injections),
		Injections:    res.Injections,
		InjectWallNS:  res.InjectWall.Nanoseconds(),
		InjectEvals:   res.InjectEvals,
		WarmStarts:    res.WarmStarts,
		PrunedRuns:    res.PrunedRuns,
		DeltaRestores: res.DeltaRestores,
		RestoreWallNS: res.RestoreWall.Nanoseconds(),
	}
	best := int64(-1)
	for i := 0; i < 5; i++ {
		p.Checksum = ""
		t0 := time.Now()
		if err := p.Stamp(); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0).Nanoseconds(); best < 0 || d < best {
			best = d
		}
	}
	return best
}

func reportWarmCold(b *testing.B, key string, cold, warm *inject.SoCRun) {
	b.Helper()
	cr, wr := cold.Result, warm.Result
	rep := warmstartReport{
		Design:           cr.Design,
		Engine:           cr.Engine,
		Injections:       len(cr.Injections),
		GoldenWallNS:     wr.GoldenWall.Nanoseconds(),
		GoldenEvals:      wr.GoldenEvals,
		ColdInjectWallNS: cr.InjectWall.Nanoseconds(),
		ColdInjectEvals:  cr.InjectEvals,
		WarmInjectWallNS: wr.InjectWall.Nanoseconds(),
		WarmInjectEvals:  wr.InjectEvals,
		WarmStarts:       wr.WarmStarts,
		PrunedRuns:       wr.PrunedRuns,
		DeltaRestores:    wr.DeltaRestores,
		RestoreWallNS:    wr.RestoreWall.Nanoseconds(),
		ChecksumWallNS:   stampWall(b, warm),
	}
	if wr.InjectEvals > 0 {
		rep.EvalsReductionX = float64(cr.InjectEvals) / float64(wr.InjectEvals)
	}
	if wr.InjectWall > 0 {
		rep.WallReductionX = float64(cr.InjectWall) / float64(wr.InjectWall)
	}
	writeWarmstartJSON(b, key, rep)
	b.ReportMetric(rep.EvalsReductionX, "evals-reduction-x")
	b.ReportMetric(rep.WallReductionX, "wall-reduction-x")
	b.ReportMetric(float64(cr.InjectEvals), "cold-inject-evals")
	b.ReportMetric(float64(wr.InjectEvals), "warm-inject-evals")
	b.ReportMetric(float64(wr.PrunedRuns), "pruned-runs")
}

// BenchmarkWarmVsCold measures the tentpole perf win: injections that
// warm-start from golden checkpoints and simulate only the post-strike
// tail, vs the legacy replay-from-zero path, at default options on the
// SoC1 netlist. Verdicts are asserted bit-identical inside the bench.
func BenchmarkWarmVsCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cold, warm := runWarmColdPair(b, sim.KindEvent, inject.DefaultOptions().SampleFrac)
		reportWarmCold(b, "eventsim", cold, warm)
	}
}

// BenchmarkWarmVsColdLevelSim runs the same comparison on the levelized
// oblivious engine, where pruned tails avoid full-netlist sweeps. The
// sample fraction is reduced because the cold baseline is much slower.
func BenchmarkWarmVsColdLevelSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cold, warm := runWarmColdPair(b, sim.KindLevel, 0.04)
		reportWarmCold(b, "levelsim", cold, warm)
	}
}

// BenchmarkWarmVsColdVCD runs the comparison with the faithful VCD
// detector: the cold side replays every injection from t=0 and diffs full
// traces (the paper's original method and the oracle), the warm side
// restores golden checkpoints and diffs its tail against the golden trace
// suffix. Verdict bit-identity is asserted by the shared pair runner; the
// benchmark additionally fails if the warm VCD path silently fell back to
// cold. The sample fraction is reduced because every cold VCD run parses
// and diffs a full trace.
func BenchmarkWarmVsColdVCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := inject.DefaultOptions()
		opts.SampleFrac = 0.08
		opts.CompareVCD = true
		cold, warm := runWarmColdPairOpts(b, opts)
		if warm.Result.WarmStarts == 0 {
			b.Fatal("CompareVCD campaign never warm-started")
		}
		reportWarmCold(b, "compare_vcd", cold, warm)
	}
}

// BenchmarkSamplingAblation sweeps the per-cluster sampling fraction,
// trading campaign runtime against chip-SER estimate stability.
func BenchmarkSamplingAblation(b *testing.B) {
	for _, frac := range []float64{0.05, 0.15, 0.35} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := inject.DefaultOptions()
				opts.SampleFrac = frac
				opts.KN = 5
				cfg, _ := socgen.ConfigByIndex(1)
				run, err := inject.RunSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(run.Result.Injections)), "injections")
				b.ReportMetric(run.Result.ChipSER, "chip-ser")
			}
		})
	}
}

// BenchmarkClusterDepthAblation sweeps Eq. (1)'s layer depth LN and reports
// cluster compactness.
func BenchmarkClusterDepthAblation(b *testing.B) {
	cfg, _ := socgen.ConfigByIndex(5)
	d, err := socgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		b.Fatal(err)
	}
	trails := make([][]string, len(f.Cells))
	for i, c := range f.Cells {
		trails[i] = c.Trail
	}
	for _, ln := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("LN=%d", ln), func(b *testing.B) {
			var quality float64
			for i := 0; i < b.N; i++ {
				res, err := cluster.ClusterTrails(trails, 14, ln, xrand.New(1))
				if err != nil {
					b.Fatal(err)
				}
				quality = res.MeanIntraDistance(trails)
			}
			b.ReportMetric(quality, "mean-intra-distance")
		})
	}
}

// BenchmarkKernelAblation compares linear vs RBF kernels on the SoC1 node
// dataset.
func BenchmarkKernelAblation(b *testing.B) {
	ec := benchConfig()
	an := soc1Analysis(b, ec)
	kernels := map[string]svm.Kernel{
		"linear": svm.Linear{},
		"rbf0.5": svm.RBF{Gamma: 0.5},
		"rbf2.0": svm.RBF{Gamma: 2.0},
	}
	for name, k := range kernels {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := svm.DefaultConfig()
				cfg.Kernel = k
				sel, err := an.Dataset.X.Select([]int{0, 1, 2, 3, 4, 5})
				if err != nil {
					b.Fatal(err)
				}
				cm, err := svm.CrossValidate(sel.Rows, an.Dataset.Y, 5, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cm.Accuracy(), "cv-accuracy-%")
			}
		})
	}
}

// BenchmarkLETSweep runs the extension experiment: module SER and chip
// cross-sections across the database's three tabulated LET values.
func BenchmarkLETSweep(b *testing.B) {
	ec := benchConfig()
	for i := 0; i < b.N; i++ {
		pts, err := ssresf.LETSweep(ec, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("letsweep", func() {
			fmt.Println()
			ssresf.RenderLETSweep(os.Stdout, 1, pts)
		})
		b.ReportMetric(pts[len(pts)-1].SEUXsect, "seu-xsect-let100-cm2")
	}
}
