package vcd

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// TestQuickWriteParseValueFidelity: for arbitrary change sequences, the
// parsed trace reproduces exactly the values the writer was given, at every
// query instant.
func TestQuickWriteParseValueFidelity(t *testing.T) {
	type change struct {
		DeltaT uint16
		Val    uint8
	}
	f := func(changes []change) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Declare("s", 1); err != nil {
			return false
		}
		if err := w.WriteHeader("q"); err != nil {
			return false
		}
		type applied struct {
			t uint64
			v logic.V
		}
		var hist []applied
		now := uint64(1)
		for _, c := range changes {
			now += uint64(c.DeltaT)
			v := logic.V(c.Val % 4)
			if err := w.Change(now, "s", logic.Vec{v}); err != nil {
				return false
			}
			hist = append(hist, applied{t: now, v: v})
		}
		if err := w.Close(now + 10); err != nil {
			return false
		}
		tr, err := Parse(&buf)
		if err != nil {
			return false
		}
		sig := tr.Signals["s"]
		// Check the value at every change time and just after.
		cur := logic.X
		for _, h := range hist {
			// Later changes at the same timestamp override earlier ones.
			cur = h.v
			_ = cur
		}
		// Walk history, computing the expected value as of each instant.
		for i, h := range hist {
			expect := h.v
			// Find the last change at the same time.
			for j := i + 1; j < len(hist) && hist[j].t == h.t; j++ {
				expect = hist[j].v
			}
			got := sig.At(h.t)
			if got[0] != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareReflexive: any generated trace equals itself and a
// perturbed copy diverges.
func TestQuickCompareReflexive(t *testing.T) {
	f := func(vals []uint8) bool {
		mk := func(perturb bool) *Trace {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			_ = w.Declare("x", 4)
			_ = w.WriteHeader("q")
			for i, v := range vals {
				vec := logic.VecFromUint(uint64(v), 4)
				if perturb && i == len(vals)-1 {
					vec[0] = vec[0].Not()
				}
				_ = w.Change(uint64(i+1)*10, "x", vec)
			}
			_ = w.Close(uint64(len(vals)+2) * 10)
			tr, err := Parse(&buf)
			if err != nil {
				panic(err)
			}
			return tr
		}
		a, b := mk(false), mk(false)
		if Diverged(a, b, nil) {
			return false
		}
		if len(vals) == 0 {
			return true
		}
		// The perturbed copy must diverge unless the flip restored the
		// previous value (redundant-change suppression hides it).
		c := mk(true)
		_ = c
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIDCodesPrintable: VCD id codes stay in the printable range for
// arbitrary indices.
func TestQuickIDCodesPrintable(t *testing.T) {
	f := func(n uint16) bool {
		code := idCode(int(n))
		if code == "" {
			return false
		}
		for _, r := range code {
			if r < 33 || r > 126 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSignalAtMonotone: At is consistent with the sample list for
// random sample sets.
func TestQuickSignalAtMonotone(t *testing.T) {
	f := func(deltas []uint8) bool {
		s := &Signal{Name: "m", Width: 1}
		now := uint64(0)
		for i, d := range deltas {
			now += uint64(d) + 1
			v := logic.L0
			if i%2 == 1 {
				v = logic.L1
			}
			s.Samples = append(s.Samples, Sample{Time: now, Val: logic.Vec{v}})
		}
		for i, smp := range s.Samples {
			if got := s.At(smp.Time); !got.Equal(smp.Val) {
				return false
			}
			if i > 0 {
				prev := s.Samples[i-1]
				if got := s.At(smp.Time - 1); !got.Equal(prev.Val) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
