package vcd

import (
	"bytes"
	"testing"

	"repro/internal/logic"
)

// TestResumeWriterContinuesDump: splitting a dump at an arbitrary instant
// into prefix + snapshot + resumed tail must parse to the identical trace
// as one uninterrupted dump — including suppression of a tail change that
// repeats the last prefix value.
func TestResumeWriterContinuesDump(t *testing.T) {
	type chg struct {
		t    uint64
		name string
		v    logic.V
	}
	changes := []chg{
		{10, "a", logic.L1},
		{10, "b", logic.L0},
		{25, "a", logic.L0},
		{40, "b", logic.L1},
		{55, "a", logic.L0}, // suppressed: same value as last dump
		{60, "a", logic.L1},
		{80, "b", logic.L0},
	}
	const splitAfter = 3 // first 3 changes go to the prefix writer

	dump := func(w *Writer, cs []chg) {
		for _, c := range cs {
			if err := w.Change(c.t, c.name, logic.Vec{c.v}); err != nil {
				t.Fatal(err)
			}
		}
	}

	var full bytes.Buffer
	fw := NewWriter(&full)
	for _, n := range []string{"a", "b"} {
		if err := fw.Declare(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.WriteHeader("resume"); err != nil {
		t.Fatal(err)
	}
	dump(fw, changes)
	if err := fw.Close(100); err != nil {
		t.Fatal(err)
	}

	var prefix bytes.Buffer
	pw := NewWriter(&prefix)
	for _, n := range []string{"a", "b"} {
		if err := pw.Declare(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.WriteHeader("resume"); err != nil {
		t.Fatal(err)
	}
	dump(pw, changes[:splitAfter])
	st := pw.State()
	if err := pw.Close(changes[splitAfter-1].t); err != nil {
		t.Fatal(err)
	}

	var tail bytes.Buffer
	tw := ResumeWriter(&tail, st)
	dump(tw, changes[splitAfter:])
	if err := tw.Close(100); err != nil {
		t.Fatal(err)
	}

	want, err := Parse(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	stitched := append(append([]byte(nil), prefix.Bytes()...), tail.Bytes()...)
	got, err := Parse(bytes.NewReader(stitched))
	if err != nil {
		t.Fatalf("stitched prefix+tail does not parse: %v", err)
	}
	if len(Compare(want, got, nil)) != 0 {
		t.Fatalf("stitched trace diverges from uninterrupted dump:\nfull:\n%s\nstitched:\n%s", full.String(), stitched)
	}
	for name, ws := range want.Signals {
		gs := got.Signals[name]
		if gs == nil {
			t.Fatalf("signal %s missing from stitched trace", name)
		}
		if len(ws.Samples) != len(gs.Samples) {
			t.Fatalf("signal %s: %d samples stitched vs %d full — resume suppression drifted", name, len(gs.Samples), len(ws.Samples))
		}
	}

	// The snapshot must be insulated from the producing writer: dumping
	// more through pw's state maps must not corrupt st.
	if st.Last["a"][0] != logic.L0 {
		t.Fatalf("state captured a=%v, want 0", st.Last["a"])
	}
}

// TestResumeWriterSharedState: two tails resumed from the same state must
// not interfere — the campaign restores many faulty runs from one golden
// checkpoint's writer state.
func TestResumeWriterSharedState(t *testing.T) {
	var prefix bytes.Buffer
	pw := NewWriter(&prefix)
	if err := pw.Declare("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := pw.WriteHeader("shared"); err != nil {
		t.Fatal(err)
	}
	if err := pw.Change(5, "x", logic.Vec{logic.L1}); err != nil {
		t.Fatal(err)
	}
	st := pw.State()

	emit := func(v logic.V) string {
		var b bytes.Buffer
		w := ResumeWriter(&b, st)
		if err := w.Change(9, "x", logic.Vec{v}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(10); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := emit(logic.L0)
	if second := emit(logic.L0); second != first {
		t.Fatalf("second resume from the same state emitted %q, want %q", second, first)
	}
	if same := emit(logic.L1); same != "#10\n" {
		t.Fatalf("unchanged value emitted %q, want bare end timestamp", same)
	}
}
