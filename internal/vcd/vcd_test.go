package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
)

func vec(s string) logic.Vec { return logic.ParseVec(s) }

func writeSimpleTrace(t *testing.T, changes func(w *Writer)) *Trace {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Declare("clk", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Declare("data", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader("testdut"); err != nil {
		t.Fatal(err)
	}
	changes(w)
	if err := w.Close(1000); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse back: %v\n", err)
	}
	return tr
}

func TestIDCodeUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("idCode collision at %d: %q", i, c)
		}
		seen[c] = true
		for _, r := range c {
			if r < 33 || r > 126 {
				t.Fatalf("idCode %d emitted non-printable %q", i, c)
			}
		}
	}
}

func TestRoundTripScalarAndVector(t *testing.T) {
	tr := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "clk", vec("1"))
		_ = w.Change(10, "data", vec("1010"))
		_ = w.Change(20, "clk", vec("0"))
		_ = w.Change(30, "data", vec("1111"))
	})
	clk := tr.Signals["clk"]
	if clk == nil {
		t.Fatal("clk missing from parsed trace")
	}
	if got := clk.At(15); !got.Equal(vec("1")) {
		t.Errorf("clk@15 = %s", got)
	}
	if got := clk.At(25); !got.Equal(vec("0")) {
		t.Errorf("clk@25 = %s", got)
	}
	data := tr.Signals["data"]
	if got := data.At(12); !got.Equal(vec("1010")) {
		t.Errorf("data@12 = %s", got)
	}
	if got := data.At(999); !got.Equal(vec("1111")) {
		t.Errorf("data@999 = %s", got)
	}
	if tr.EndTime != 1000 {
		t.Errorf("EndTime = %d, want 1000", tr.EndTime)
	}
}

func TestInitialValueIsX(t *testing.T) {
	tr := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(50, "clk", vec("1"))
	})
	if got := tr.Signals["clk"].At(0); !got.Equal(vec("x")) {
		t.Errorf("initial clk = %s, want x", got)
	}
	if got := tr.Signals["data"].At(40); !got.Equal(vec("xxxx")) {
		t.Errorf("data before any change = %s, want xxxx", got)
	}
}

func TestRedundantChangesSuppressed(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Declare("s", 1)
	_ = w.WriteHeader("d")
	_ = w.Change(10, "s", vec("1"))
	_ = w.Change(20, "s", vec("1"))
	_ = w.Change(30, "s", vec("0"))
	_ = w.Close(100)
	text := buf.String()
	if strings.Contains(text, "#20") {
		t.Errorf("redundant change emitted timestamp #20:\n%s", text)
	}
	if !strings.Contains(text, "#10") || !strings.Contains(text, "#30") {
		t.Errorf("real changes missing:\n%s", text)
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Declare("a", 0); err == nil {
		t.Error("zero width must be rejected")
	}
	_ = w.Declare("a", 1)
	if err := w.Declare("a", 1); err == nil {
		t.Error("duplicate signal must be rejected")
	}
	if err := w.Change(0, "a", vec("1")); err == nil {
		t.Error("Change before header must fail")
	}
	_ = w.WriteHeader("d")
	if err := w.Declare("b", 1); err == nil {
		t.Error("Declare after header must fail")
	}
	if err := w.Change(0, "ghost", vec("1")); err == nil {
		t.Error("Change on undeclared signal must fail")
	}
	if err := w.Change(0, "a", vec("11")); err == nil {
		t.Error("width mismatch must fail")
	}
	_ = w.Change(50, "a", vec("1"))
	if err := w.Change(40, "a", vec("0")); err == nil {
		t.Error("time reversal must fail")
	}
}

func TestCompareIdentical(t *testing.T) {
	mk := func() *Trace {
		return writeSimpleTrace(t, func(w *Writer) {
			_ = w.Change(10, "clk", vec("1"))
			_ = w.Change(20, "clk", vec("0"))
			_ = w.Change(20, "data", vec("0110"))
		})
	}
	a, b := mk(), mk()
	if Diverged(a, b, nil) {
		t.Fatalf("identical traces diverged: %v", Compare(a, b, nil))
	}
}

func TestCompareValueMismatch(t *testing.T) {
	golden := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "data", vec("0001"))
		_ = w.Change(50, "data", vec("0010"))
	})
	faulty := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "data", vec("0001"))
		_ = w.Change(50, "data", vec("1010"))
	})
	ms := Compare(golden, faulty, []string{"data"})
	if len(ms) == 0 {
		t.Fatal("divergence not detected")
	}
	if ms[0].Time != 50 || ms[0].Signal != "data" {
		t.Errorf("first mismatch = %v", ms[0])
	}
}

func TestCompareTimingMismatch(t *testing.T) {
	golden := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "clk", vec("1"))
	})
	faulty := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(30, "clk", vec("1"))
	})
	ms := Compare(golden, faulty, []string{"clk"})
	if len(ms) == 0 {
		t.Fatal("timing divergence not detected")
	}
	if ms[0].Time != 10 {
		t.Errorf("divergence should appear at 10, got %d", ms[0].Time)
	}
}

func TestCompareSubsetOfSignals(t *testing.T) {
	golden := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "clk", vec("1"))
		_ = w.Change(10, "data", vec("0000"))
	})
	faulty := writeSimpleTrace(t, func(w *Writer) {
		_ = w.Change(10, "clk", vec("0")) // differs
		_ = w.Change(10, "data", vec("0000"))
	})
	if Diverged(golden, faulty, []string{"data"}) {
		t.Error("data-only comparison must ignore clk")
	}
	if !Diverged(golden, faulty, []string{"clk"}) {
		t.Error("clk divergence missed")
	}
}

func TestParseLeadingZeroExtension(t *testing.T) {
	src := `$timescale 1ps $end
$scope module top $end
$var wire 8 ! bus $end
$upscope $end
$enddefinitions $end
#5
b101 !
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Signals["bus"].At(5)
	if len(got) != 8 {
		t.Fatalf("width = %d, want 8", len(got))
	}
	if !got.Equal(vec("00000101")) {
		t.Errorf("bus@5 = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"$var wire $end\n$enddefinitions $end\n",
		"$enddefinitions $end\n#abc\n",
		"$enddefinitions $end\n1?\n",
		"$enddefinitions $end\nb101\n",
		"$enddefinitions $end\nqqq\n",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("malformed VCD accepted: %q", src)
		}
	}
}

func TestSignalAtBinarySearch(t *testing.T) {
	s := &Signal{Name: "s", Width: 1}
	for i := uint64(0); i < 100; i += 10 {
		v := logic.L0
		if (i/10)%2 == 1 {
			v = logic.L1
		}
		s.Samples = append(s.Samples, Sample{Time: i, Val: logic.Vec{v}})
	}
	for i := uint64(0); i < 100; i++ {
		want := logic.L0
		if (i/10)%2 == 1 {
			want = logic.L1
		}
		if got := s.At(i); got[0] != want {
			t.Fatalf("At(%d) = %v, want %v", i, got[0], want)
		}
	}
}
