// Package vcd implements the IEEE-1364 Value Change Dump format: a writer
// that the simulator dumps monitored signals into, a parser, and a trace
// comparator. The comparator is the soft-error detector of the framework:
// a fault injection is classified as a soft error exactly when the faulty
// run's VCD diverges from the golden run's VCD on a monitored output.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/logic"
)

// Writer emits a VCD file incrementally. Declare all signals before the
// first Dump call; Dump times must be non-decreasing.
type Writer struct {
	w        *bufio.Writer
	ids      map[string]string // signal name -> VCD id code
	widths   map[string]int
	order    []string
	last     map[string]logic.Vec
	headerOK bool
	curTime  uint64
	timeSet  bool
	err      error
}

// NewWriter returns a Writer targeting w with a 1ps timescale.
func NewWriter(w io.Writer) *Writer {
	return &Writer{
		w:      bufio.NewWriter(w),
		ids:    map[string]string{},
		widths: map[string]int{},
		last:   map[string]logic.Vec{},
	}
}

// idCode converts an index to the printable-ASCII short code VCD uses.
func idCode(n int) string {
	const lo, hi = 33, 126 // '!' .. '~'
	var sb []byte
	for {
		sb = append(sb, byte(lo+n%(hi-lo+1)))
		n /= (hi - lo + 1)
		if n == 0 {
			break
		}
		n--
	}
	return string(sb)
}

// Declare registers a signal of the given bit width before the header is
// written. Re-declaring a name is an error.
func (vw *Writer) Declare(name string, width int) error {
	if vw.headerOK {
		return fmt.Errorf("vcd: Declare after header written")
	}
	if _, dup := vw.ids[name]; dup {
		return fmt.Errorf("vcd: duplicate signal %q", name)
	}
	if width < 1 {
		return fmt.Errorf("vcd: signal %q has width %d", name, width)
	}
	vw.ids[name] = idCode(len(vw.order))
	vw.widths[name] = width
	vw.order = append(vw.order, name)
	return nil
}

// WriteHeader emits the declaration section and the initial $dumpvars block
// with all signals at X.
func (vw *Writer) WriteHeader(design string) error {
	if vw.headerOK {
		return fmt.Errorf("vcd: header already written")
	}
	fmt.Fprintf(vw.w, "$date\n  reproducible\n$end\n")
	fmt.Fprintf(vw.w, "$version\n  repro/internal/vcd (%s)\n$end\n", design)
	fmt.Fprintf(vw.w, "$timescale 1ps $end\n")
	fmt.Fprintf(vw.w, "$scope module %s $end\n", sanitizeScope(design))
	for _, name := range vw.order {
		fmt.Fprintf(vw.w, "$var wire %d %s %s $end\n", vw.widths[name], vw.ids[name], name)
	}
	fmt.Fprintf(vw.w, "$upscope $end\n$enddefinitions $end\n$dumpvars\n")
	for _, name := range vw.order {
		x := logic.NewVec(vw.widths[name])
		vw.emit(name, x)
		vw.last[name] = x
	}
	fmt.Fprintf(vw.w, "$end\n")
	vw.headerOK = true
	return vw.err
}

func sanitizeScope(s string) string {
	if s == "" {
		return "top"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

func (vw *Writer) emit(name string, v logic.Vec) {
	id := vw.ids[name]
	if len(v) == 1 {
		fmt.Fprintf(vw.w, "%c%s\n", v[0].Rune(), id)
		return
	}
	fmt.Fprintf(vw.w, "b%s %s\n", v.String(), id)
}

// Change records a new value for a declared signal at time t (picoseconds).
// Values equal to the previous dump are suppressed, as real dumpers do.
func (vw *Writer) Change(t uint64, name string, v logic.Vec) error {
	if !vw.headerOK {
		return fmt.Errorf("vcd: Change before header")
	}
	id, ok := vw.ids[name]
	if !ok {
		return fmt.Errorf("vcd: change on undeclared signal %q", name)
	}
	_ = id
	if len(v) != vw.widths[name] {
		return fmt.Errorf("vcd: signal %q width %d, change has %d bits", name, vw.widths[name], len(v))
	}
	if vw.timeSet && t < vw.curTime {
		return fmt.Errorf("vcd: time moved backwards: %d < %d", t, vw.curTime)
	}
	if prev, ok := vw.last[name]; ok && prev.Equal(v) {
		return nil
	}
	if !vw.timeSet || t != vw.curTime {
		fmt.Fprintf(vw.w, "#%d\n", t)
		vw.curTime = t
		vw.timeSet = true
	}
	vw.emit(name, v)
	vw.last[name] = v.Clone()
	return vw.err
}

// Flush pushes buffered output to the underlying writer without
// finalizing the dump — a checkpointing caller flushes before capturing
// the byte offset a resumed tail dump will be stitched onto.
func (vw *Writer) Flush() error { return vw.w.Flush() }

// Close flushes buffered output and finalizes the dump.
func (vw *Writer) Close(endTime uint64) error {
	if vw.headerOK && (!vw.timeSet || endTime > vw.curTime) {
		fmt.Fprintf(vw.w, "#%d\n", endTime)
	}
	return vw.w.Flush()
}

// WriterState is an immutable snapshot of a Writer's dump position: the
// declared signals, the current dump time, and the last emitted value of
// every signal (the change-suppression state). It is what a checkpointing
// simulation captures alongside each engine checkpoint, so a restored run
// can resume dumping mid-trace with ResumeWriter and produce exactly the
// change records a never-interrupted dump would have produced from that
// instant on.
type WriterState struct {
	Time    uint64
	TimeSet bool
	Widths  map[string]int
	Last    map[string]logic.Vec
	order   []string
	ids     map[string]string
}

// State snapshots the writer's dump position. Safe to take at any point
// after the header is written; the snapshot shares nothing with the
// writer, so the writer may keep dumping and any number of runs may
// resume from the same state concurrently.
func (vw *Writer) State() *WriterState {
	st := &WriterState{
		Time:    vw.curTime,
		TimeSet: vw.timeSet,
		Widths:  make(map[string]int, len(vw.widths)),
		Last:    make(map[string]logic.Vec, len(vw.last)),
		order:   append([]string(nil), vw.order...),
		ids:     make(map[string]string, len(vw.ids)),
	}
	for n, w := range vw.widths {
		st.Widths[n] = w
	}
	for n, v := range vw.last {
		st.Last[n] = v.Clone()
	}
	for n, id := range vw.ids {
		st.ids[n] = id
	}
	return st
}

// ResumeWriter returns a Writer that continues a dump from a previously
// captured state: same signals and id codes, suppression seeded with the
// state's last values, no header re-emitted. Concatenating the prefix
// dump (up to the state) with everything the resumed writer emits parses
// to the same trace as one uninterrupted dump.
func ResumeWriter(w io.Writer, st *WriterState) *Writer {
	vw := NewWriter(w)
	vw.headerOK = true
	vw.curTime = st.Time
	vw.timeSet = st.TimeSet
	vw.order = append([]string(nil), st.order...)
	for n, width := range st.Widths {
		vw.widths[n] = width
	}
	for n, v := range st.Last {
		vw.last[n] = v.Clone()
	}
	for n, id := range st.ids {
		vw.ids[n] = id
	}
	return vw
}

// Sample is one value of a signal starting at Time.
type Sample struct {
	Time uint64
	Val  logic.Vec
}

// Signal is the full change history of one trace signal.
type Signal struct {
	Name    string
	Width   int
	Samples []Sample
}

// At returns the signal's value at time t (the most recent change at or
// before t). Before the first sample the value is all-X.
func (s *Signal) At(t uint64) logic.Vec {
	idx := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Time > t })
	if idx == 0 {
		return logic.NewVec(s.Width)
	}
	return s.Samples[idx-1].Val
}

// Trace is a parsed VCD file.
type Trace struct {
	Design  string
	EndTime uint64
	Signals map[string]*Signal
}

// Parse reads a VCD stream produced by Writer (or any conforming dumper
// using the subset: $var wire, scalar and b-vector changes, #timestamps).
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	tr := &Trace{Signals: map[string]*Signal{}}
	byID := map[string]*Signal{}
	var now uint64
	inDefs := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inDefs {
			switch {
			case strings.HasPrefix(line, "$var"):
				// $var wire <width> <id> <name...> $end
				fields := strings.Fields(line)
				if len(fields) < 6 || fields[len(fields)-1] != "$end" {
					return nil, fmt.Errorf("vcd: malformed $var: %q", line)
				}
				width, err := strconv.Atoi(fields[2])
				if err != nil || width < 1 {
					return nil, fmt.Errorf("vcd: bad width in %q", line)
				}
				id := fields[3]
				name := strings.Join(fields[4:len(fields)-1], " ")
				sig := &Signal{Name: name, Width: width}
				tr.Signals[name] = sig
				byID[id] = sig
			case strings.HasPrefix(line, "$enddefinitions"):
				inDefs = false
			case strings.HasPrefix(line, "$scope"):
				fields := strings.Fields(line)
				if len(fields) >= 3 && tr.Design == "" {
					tr.Design = fields[2]
				}
			}
			continue
		}
		switch {
		case line[0] == '#':
			t, err := strconv.ParseUint(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q", line)
			}
			now = t
			if t > tr.EndTime {
				tr.EndTime = t
			}
		case line[0] == 'b' || line[0] == 'B':
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("vcd: malformed vector change %q", line)
			}
			val := logic.ParseVec(line[1:sp])
			id := strings.TrimSpace(line[sp+1:])
			sig, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("vcd: change for unknown id %q", id)
			}
			if len(val) < sig.Width {
				// VCD allows dropped leading zeros; left-extend.
				ext := logic.NewVec(sig.Width)
				for i := range val {
					ext[i] = val[i]
				}
				for i := len(val); i < sig.Width; i++ {
					ext[i] = logic.L0
				}
				val = ext
			}
			sig.Samples = append(sig.Samples, Sample{Time: now, Val: val})
		case line[0] == '0' || line[0] == '1' || line[0] == 'x' || line[0] == 'X' || line[0] == 'z' || line[0] == 'Z':
			id := line[1:]
			sig, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("vcd: change for unknown id %q", id)
			}
			sig.Samples = append(sig.Samples, Sample{Time: now, Val: logic.Vec{logic.FromRune(line[0])}})
		case line[0] == '$':
			// $dumpvars / $end markers inside the value section.
		default:
			return nil, fmt.Errorf("vcd: unrecognized line %q", line)
		}
	}
	return tr, sc.Err()
}

// Mismatch describes one divergence between two traces.
type Mismatch struct {
	Signal string
	Time   uint64
	Golden logic.Vec
	Faulty logic.Vec
}

// String formats the mismatch for reports.
func (m Mismatch) String() string {
	return fmt.Sprintf("%s@%dps golden=%s faulty=%s", m.Signal, m.Time, m.Golden, m.Faulty)
}

// Compare checks the faulty trace against the golden trace on the given
// signals (all common signals when names is nil) and returns every
// divergence, earliest first. Signals are compared at every change time of
// either trace, which catches both value and timing differences.
func Compare(golden, faulty *Trace, names []string) []Mismatch {
	if names == nil {
		for n := range golden.Signals {
			if _, ok := faulty.Signals[n]; ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}
	var out []Mismatch
	for _, name := range names {
		g, okG := golden.Signals[name]
		f, okF := faulty.Signals[name]
		if !okG || !okF {
			continue
		}
		times := mergeTimes(g, f)
		for _, t := range times {
			gv, fv := g.At(t), f.At(t)
			if !gv.Equal(fv) {
				out = append(out, Mismatch{Signal: name, Time: t, Golden: gv.Clone(), Faulty: fv.Clone()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Signal < out[j].Signal
	})
	return out
}

func mergeTimes(a, b *Signal) []uint64 {
	set := make(map[uint64]struct{}, len(a.Samples)+len(b.Samples))
	for _, s := range a.Samples {
		set[s.Time] = struct{}{}
	}
	for _, s := range b.Samples {
		set[s.Time] = struct{}{}
	}
	times := make([]uint64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// Diverged reports whether the two traces differ on the named signals
// (all common signals when nil) — the soft-error predicate.
func Diverged(golden, faulty *Trace, names []string) bool {
	return len(Compare(golden, faulty, names)) > 0
}
