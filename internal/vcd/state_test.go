package vcd

import (
	"bytes"
	"testing"

	"repro/internal/logic"
)

// midStreamState builds a writer, streams a prefix of changes, and
// returns its mid-stream state snapshot.
func midStreamState(t *testing.T) *WriterState {
	t.Helper()
	var buf bytes.Buffer
	vw := NewWriter(&buf)
	for _, n := range []string{"clk", "q0", "q1"} {
		if err := vw.Declare(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := vw.WriteHeader("counter"); err != nil {
		t.Fatal(err)
	}
	if err := vw.Change(0, "clk", logic.Vec{logic.L0}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Change(100, "q0", logic.Vec{logic.L1}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Change(100, "q1", logic.Vec{logic.X}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Flush(); err != nil {
		t.Fatal(err)
	}
	return vw.State()
}

func TestWriterStateCodecRoundTrip(t *testing.T) {
	st := midStreamState(t)
	var blob bytes.Buffer
	if err := st.Encode(&blob); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeWriterState(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Resuming from the decoded state must produce a byte-identical tail
	// to resuming from the original.
	var a, b bytes.Buffer
	wa, wb := ResumeWriter(&a, st), ResumeWriter(&b, dec)
	for _, w := range []*Writer{wa, wb} {
		if err := w.Change(200, "q0", logic.Vec{logic.L0}); err != nil {
			t.Fatal(err)
		}
		if err := w.Change(250, "q1", logic.Vec{logic.L1}); err != nil {
			t.Fatal(err)
		}
		// A same-value change must still dedupe against the restored
		// last-value map.
		if err := w.Change(300, "clk", logic.Vec{logic.L0}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(400); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("resumed tails differ:\n%q\nvs\n%q", a.Bytes(), b.Bytes())
	}

	// The codec must be a fixed point under re-encode.
	var blob2 bytes.Buffer
	if err := dec.Encode(&blob2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob.Bytes(), blob2.Bytes()) {
		t.Fatal("re-encoding a decoded writer state changed the bytes")
	}
}

func TestWriterStateCodecRejectsTruncatedAndCorrupt(t *testing.T) {
	st := midStreamState(t)
	var blob bytes.Buffer
	if err := st.Encode(&blob); err != nil {
		t.Fatal(err)
	}
	raw := blob.Bytes()
	for cut := 0; cut < len(raw); cut += 3 {
		if _, err := DecodeWriterState(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("decode accepted a blob truncated to %d of %d bytes", cut, len(raw))
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := DecodeWriterState(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a blob with corrupt magic")
	}
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := DecodeWriterState(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a blob with an unknown version")
	}
}
