package vcd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/logic"
)

// Versioned binary wire codec for WriterState, the warm-start detector's
// mid-stream writer snapshot. Encoding is deterministic (signals are
// written in declaration order) so identical states always produce
// identical bytes — the property the content-addressed artifact lake
// keys on. Decoding is strict: truncated or malformed input is rejected
// with an error.

const (
	stateMagic   uint32 = 0x56535431 // "VST1"
	stateVersion byte   = 1

	// maxStateLen bounds decoded counts before allocation.
	maxStateLen = 1 << 24
)

// Encode writes st to w in the versioned binary wire format.
func (st *WriterState) Encode(w io.Writer) error {
	if st == nil {
		return fmt.Errorf("vcd: encode nil writer state")
	}
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	uv := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	str := func(s string) error {
		if err := uv(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	binary.LittleEndian.PutUint32(scratch[:4], stateMagic)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	if err := bw.WriteByte(stateVersion); err != nil {
		return err
	}
	if err := u64(st.Time); err != nil {
		return err
	}
	set := byte(0)
	if st.TimeSet {
		set = 1
	}
	if err := bw.WriteByte(set); err != nil {
		return err
	}
	if err := uv(uint64(len(st.order))); err != nil {
		return err
	}
	for _, name := range st.order {
		if err := str(name); err != nil {
			return err
		}
		if err := str(st.ids[name]); err != nil {
			return err
		}
		if err := uv(uint64(st.Widths[name])); err != nil {
			return err
		}
		last := st.Last[name]
		if err := uv(uint64(len(last))); err != nil {
			return err
		}
		for _, v := range last {
			if err := bw.WriteByte(byte(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeWriterState reads one WriterState in the format Encode produces.
func DecodeWriterState(r io.Reader) (*WriterState, error) {
	br := bufio.NewReader(r)
	fail := func(err error) (*WriterState, error) {
		return nil, fmt.Errorf("vcd: bad writer-state blob: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fail(err)
	}
	if m := binary.LittleEndian.Uint32(hdr[:]); m != stateMagic {
		return nil, fmt.Errorf("vcd: writer-state blob has bad magic %#x", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return fail(err)
	}
	if ver != stateVersion {
		return nil, fmt.Errorf("vcd: unsupported writer-state codec version %d", ver)
	}
	count := func(what string) (int, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v > maxStateLen {
			return 0, fmt.Errorf("%s count %d exceeds limit", what, v)
		}
		return int(v), nil
	}
	str := func(what string) (string, error) {
		n, err := count(what)
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	var t [8]byte
	if _, err := io.ReadFull(br, t[:]); err != nil {
		return fail(err)
	}
	set, err := br.ReadByte()
	if err != nil {
		return fail(err)
	}
	if set > 1 {
		return nil, fmt.Errorf("vcd: writer-state blob has invalid TimeSet byte %d", set)
	}
	n, err := count("signal")
	if err != nil {
		return fail(err)
	}
	st := &WriterState{
		Time:    binary.LittleEndian.Uint64(t[:]),
		TimeSet: set == 1,
		Widths:  make(map[string]int, n),
		Last:    make(map[string]logic.Vec, n),
		order:   make([]string, 0, n),
		ids:     make(map[string]string, n),
	}
	for i := 0; i < n; i++ {
		name, err := str("name")
		if err != nil {
			return fail(err)
		}
		if _, dup := st.ids[name]; dup {
			return nil, fmt.Errorf("vcd: writer-state blob declares %q twice", name)
		}
		id, err := str("id")
		if err != nil {
			return fail(err)
		}
		width, err := count("width")
		if err != nil {
			return fail(err)
		}
		nl, err := count("last")
		if err != nil {
			return fail(err)
		}
		last := make(logic.Vec, nl)
		for j := range last {
			b, err := br.ReadByte()
			if err != nil {
				return fail(err)
			}
			if logic.V(b) > logic.Z {
				return nil, fmt.Errorf("vcd: writer-state blob has invalid logic value %d", b)
			}
			last[j] = logic.V(b)
		}
		st.order = append(st.order, name)
		st.ids[name] = id
		st.Widths[name] = width
		if nl > 0 {
			st.Last[name] = last
		}
	}
	return st, nil
}
