package capi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WatchSweep follows a sweep live over the coordinator's SSE stream
// (GET /v1/sweeps/{fp}?watch=1) until it reaches a terminal state, and
// returns that terminal status. onEvent, if non-nil, receives every
// sweep event exactly once, in sequence order with no gaps: the client
// remembers the last delivered sequence number, resumes each reconnect
// from it via Last-Event-ID, and drops any replayed duplicates — so a
// dropped connection, a 503 mid-drain, or a coordinator failover is
// invisible to the callback beyond a pause.
//
// Transport failures and 5xx replies reconnect with jittered backoff.
// A coordinator judgment (4xx — e.g. a build that predates the watch
// endpoint behind a proxy) and a reconnect budget exhausted without any
// forward progress both fall back to the polling WaitSweep path, so
// WatchSweep never does worse than polling.
func (c *Client) WatchSweep(ctx context.Context, fingerprint string, onEvent func(SweepEvent)) (SweepStatus, error) {
	bo := &Backoff{Base: 200 * time.Millisecond, Cap: 3 * time.Second}
	var lastID uint64
	stalls := 0
	budget := c.Retries
	if budget == 0 {
		budget = DefaultRetries
	}
	for {
		st, terminal, progressed, err := c.watchOnce(ctx, fingerprint, &lastID, onEvent)
		if terminal {
			return st, nil
		}
		if ctx.Err() != nil {
			return SweepStatus{}, ctx.Err()
		}
		if IsRefusal(err) {
			return c.WaitSweep(ctx, fingerprint, nil)
		}
		if progressed {
			stalls = 0
			bo = &Backoff{Base: 200 * time.Millisecond, Cap: 3 * time.Second}
		} else if stalls++; stalls >= budget {
			return c.WaitSweep(ctx, fingerprint, nil)
		}
		select {
		case <-time.After(bo.Next()):
		case <-ctx.Done():
			return SweepStatus{}, ctx.Err()
		}
	}
}

// watchOnce holds one SSE connection open and pumps its messages.
// terminal is true once a "status" message carrying a terminal state
// arrived (st is that status); progressed reports whether any new event
// was delivered on this connection, which is what resets the caller's
// reconnect budget.
func (c *Client) watchOnce(ctx context.Context, fingerprint string, lastID *uint64, onEvent func(SweepEvent)) (st SweepStatus, terminal, progressed bool, err error) {
	path := "/v1/sweeps/" + fingerprint + "?watch=1"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return st, false, false, fmt.Errorf("capi: %v", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	start := time.Now()
	resp, err := c.streamClient().Do(req)
	c.observe(http.MethodGet, path, start)
	if err != nil {
		return st, false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false, false, decodeError(resp)
	}

	// Minimal SSE reader: id/event/data fields accumulate, a blank line
	// dispatches the message, ": ..." lines are heartbeat comments.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var id uint64
	var event string
	var data strings.Builder
	reset := func() { id, event = 0, ""; data.Reset() }
	for sc.Scan() {
		line := sc.Text()
		if line != "" && line[0] == ':' {
			continue
		}
		if line != "" {
			field, val, ok := strings.Cut(line, ":")
			if !ok {
				field, val = line, ""
			}
			val = strings.TrimPrefix(val, " ")
			switch field {
			case "id":
				id, _ = strconv.ParseUint(val, 10, 64)
			case "event":
				event = val
			case "data":
				if data.Len() > 0 {
					data.WriteByte('\n')
				}
				data.WriteString(val)
			}
			continue
		}
		// Blank line: dispatch the accumulated message.
		switch event {
		case "sweep":
			var ev SweepEvent
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return st, false, progressed, fmt.Errorf("capi: malformed watch event: %v", err)
			}
			// The server replays from Last-Event-ID on resume; anything at
			// or below the high-water mark is a duplicate, not a delivery.
			if ev.Seq > *lastID {
				*lastID = ev.Seq
				progressed = true
				if onEvent != nil {
					onEvent(ev)
				}
			}
		case "status":
			if err := json.Unmarshal([]byte(data.String()), &st); err != nil {
				return st, false, progressed, fmt.Errorf("capi: malformed watch status: %v", err)
			}
			if id > *lastID {
				*lastID = id
			}
			progressed = true
			if TerminalState(st.State) {
				return st, true, true, nil
			}
		}
		reset()
	}
	// The stream ended without a terminal status — a cut connection or a
	// coordinator going away mid-sweep; the caller reconnects and resumes.
	if err := sc.Err(); err != nil {
		return st, false, progressed, err
	}
	return st, false, progressed, fmt.Errorf("capi: watch stream for %.12s ended early", fingerprint)
}

// streamClient is the HTTP client for long-lived streams: an explicit
// c.HTTP is honored, but the default client's 30-second request timeout
// would sever any watch longer than that, so streams otherwise use a
// timeout-free client and rely on the context for cancellation.
func (c *Client) streamClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}
