package capi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sweep"
)

// Client speaks the coordinator protocol. Every method takes a context
// and honors its cancellation; methods marked retrying transparently
// retry transport errors (connection refused, resets) and 5xx replies
// with jittered exponential backoff, because both mean "the coordinator
// side tripped, try again" — while any 4xx is a coordinator judgment,
// returned immediately as a typed *Error and never retried.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://host:8372".
	BaseURL string
	// HTTP overrides the transport; nil uses a per-client default with a
	// 30-second request timeout.
	HTTP *http.Client
	// Retries is the per-call attempt budget for transient failures
	// (0 = DefaultRetries, negative = no retries).
	Retries int
	// RetryBase/RetryCap tune the retry backoff (0 = defaults).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Obs, when non-nil, receives request latencies
	// (capi_request_seconds, labeled by method and normalized path —
	// fingerprints collapse to {fp} so label cardinality stays bounded),
	// retry attempts (capi_retries_total) and Retry-After-honoring sleeps
	// (capi_retry_after_sleeps_total).
	Obs *obs.Registry
}

// normPath collapses resource identifiers out of a request path so metric
// labels enumerate endpoints, not fingerprints or worker names.
func normPath(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	// Lake keys are multi-segment ("golden/<fp>"), so the whole remainder
	// collapses to one placeholder.
	for _, pfx := range []string{"/v1/lake/keys/", "/v1/lake/claims/", "/v1/artifacts/"} {
		if rest, ok := strings.CutPrefix(path, pfx); ok && rest != "" {
			return pfx + "{id}"
		}
	}
	for pfx, ph := range map[string]string{
		"/v1/sweeps/":  "{fp}",
		"/v1/workers/": "{name}",
	} {
		rest, ok := strings.CutPrefix(path, pfx)
		if !ok || rest == "" {
			continue
		}
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return pfx + ph + rest[j:]
		}
		return pfx + ph
	}
	return path
}

// observe records one exchange's latency.
func (c *Client) observe(method, path string, start time.Time) {
	if c.Obs == nil {
		return
	}
	c.Obs.NewHistogram("capi_request_seconds", "Coordinator request latency.", obs.DurationBuckets,
		"method", method, "path", normPath(path)).Observe(time.Since(start).Seconds())
}

// DefaultRetries is the per-call transient-failure attempt budget.
const DefaultRetries = 5

// MaxRetryAfter caps how long the retry loop will sleep on a server's
// Retry-After hint. The header is advisory pacing, not a command: a
// hostile or buggy coordinator advertising "Retry-After: 86400" must
// not stall a worker for a day when its own backoff would have retried
// within seconds.
const MaxRetryAfter = 30 * time.Second

// NewClient returns a client for the coordinator at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// do performs one exchange: in (if non-nil) is sent as JSON, a 2xx body
// is decoded into out (if non-nil), and any error status is decoded
// from the envelope into a typed *Error. The returned status lets
// callers distinguish meaningful non-error statuses (204, 410).
func (c *Client) do(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("capi: encoding %s %s: %v", method, path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return 0, fmt.Errorf("capi: %v", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(method, path, start)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// 410 Gone is not an error here: on the lease path it is the
	// protocol's "coordinator drained" signal, carried as a bare status.
	// (The results endpoint's cancelled-sweep 410 travels the raw-body
	// path in resultsOnce, which decodes the envelope itself.)
	if resp.StatusCode >= 400 && resp.StatusCode != http.StatusGone {
		return resp.StatusCode, decodeError(resp)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusGone {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("capi: decoding %s %s reply: %v", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// decodeError lifts an error reply into a typed *Error, tolerating
// non-envelope bodies (a proxy's bare text) by wrapping them verbatim.
// A Retry-After header (delay-seconds form) is parsed onto the error so
// the retry loop can honor the server's pacing.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err == nil && eb.Err.Code != "" {
		e := eb.Err
		e.Status = resp.StatusCode
		e.RetryAfter = retryAfter
		return &e
	}
	return &Error{
		Status:     resp.StatusCode,
		Code:       CodeInternal,
		Message:    fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(raw)),
		RetryAfter: retryAfter,
	}
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header;
// the HTTP-date form and garbage read as zero (no hint).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryable reports whether an exchange outcome is worth another
// attempt: transport failures and 5xx replies, but never a context end
// or a coordinator judgment (4xx).
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if e, ok := err.(*Error); ok {
		return e.Status >= 500
	}
	return true // transport-level failure
}

// retryLoop runs one exchange under the client's transient-failure
// policy: up to the attempt budget, with the configured jittered
// backoff between attempts. A 429/503 carrying Retry-After overrides the
// backoff with the server's own pacing — the coordinator says "1s"
// while draining or failing over, and sleeping less just burns attempts
// against a socket that cannot answer yet. The context deadline bounds
// total retry wall-clock: a sleep that cannot finish before the deadline
// is not taken, and the last real error is returned instead of a bare
// context error. what labels the call in the final error.
func (c *Client) retryLoop(ctx context.Context, what string, fn func() error) error {
	attempts := c.Retries
	if attempts == 0 {
		attempts = DefaultRetries
	}
	if attempts < 1 {
		attempts = 1
	}
	bo := &Backoff{Base: c.RetryBase, Cap: c.RetryCap}
	if bo.Base <= 0 {
		bo.Base = 200 * time.Millisecond
	}
	if bo.Cap <= 0 {
		bo.Cap = 5 * time.Second
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.Obs.NewCounter("capi_retries_total", "Transient-failure retry attempts.").Inc()
			delay := bo.Next()
			if e, ok := err.(*Error); ok && e.RetryAfter > 0 && (e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable) {
				delay = e.RetryAfter
				if delay > MaxRetryAfter {
					delay = MaxRetryAfter
				}
				c.Obs.NewCounter("capi_retry_after_sleeps_total", "Retries paced by a server Retry-After header.").Inc()
			}
			if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= delay {
				return fmt.Errorf("capi: %s: retry budget cut off by context deadline: %w", what, err)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err = fn()
		if !retryable(ctx, err) {
			return err
		}
	}
	return fmt.Errorf("capi: %s failed after %d attempts: %w", what, attempts, err)
}

// doRetry is do with the transient-failure retry loop.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any) (int, error) {
	var status int
	err := c.retryLoop(ctx, method+" "+path, func() error {
		var err error
		status, err = c.do(ctx, method, path, in, out)
		return err
	})
	return status, err
}

// LeaseOutcome classifies a successful lease exchange.
type LeaseOutcome int

const (
	// LeaseGranted: the returned lease holds a shard to execute.
	LeaseGranted LeaseOutcome = iota
	// LeaseIdle: nothing pending right now (everything leased out, later
	// campaigns still building, or no sweeps submitted yet) — poll again.
	LeaseIdle
	// LeaseDrained: every submitted sweep is terminal and the coordinator
	// is winding down — the worker should exit.
	LeaseDrained
)

// Lease asks for a shard (retrying). The outcome is only meaningful
// when err is nil; the lease is non-nil only for LeaseGranted.
func (c *Client) Lease(ctx context.Context, worker string) (*shard.Lease, LeaseOutcome, error) {
	var l shard.Lease
	status, err := c.doRetry(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker}, &l)
	if err != nil {
		return nil, LeaseIdle, err
	}
	switch status {
	case http.StatusOK:
		return &l, LeaseGranted, nil
	case http.StatusGone:
		return nil, LeaseDrained, nil
	default: // 204
		return nil, LeaseIdle, nil
	}
}

// Complete delivers a shard result for a held lease (retrying) — a
// simulated shard may represent minutes of work, and a network blip at
// exactly the wrong moment must not throw it away. epoch echoes the
// lease's fencing token. A refusal (4xx: the shard completed elsewhere,
// a stale lease, a fenced stale-epoch duplicate) comes back as a typed
// *Error; IsRefusal distinguishes it from undeliverability.
func (c *Client) Complete(ctx context.Context, fingerprint, leaseID string, epoch uint64, p *shard.Partial) error {
	_, err := c.doRetry(ctx, http.MethodPost, "/v1/complete",
		CompleteRequest{LeaseID: leaseID, Fingerprint: fingerprint, Epoch: epoch, Partial: p}, nil)
	return err
}

// Fail reports a shard execution failure for a held lease (retrying —
// the report is what lets the coordinator bound a poison shard's
// re-issue, so it is worth delivering through a network blip). The
// coordinator requeues the shard or, past its attempt bound,
// quarantines it.
func (c *Client) Fail(ctx context.Context, fingerprint, leaseID, worker, reason string) error {
	_, err := c.doRetry(ctx, http.MethodPost, "/v1/shards/fail",
		FailRequest{LeaseID: leaseID, Fingerprint: fingerprint, Worker: worker, Reason: reason}, nil)
	return err
}

// Renew heartbeats a live lease — a single attempt, because the caller
// ticks: a transport failure is simply retried at the next tick, while
// a refusal (IsRefusal) means the lease is gone and heartbeating should
// stop (the late-completion path still delivers the result).
func (c *Client) Renew(ctx context.Context, fingerprint, leaseID string) (time.Time, error) {
	var reply RenewReply
	_, err := c.do(ctx, http.MethodPost, "/v1/renew",
		RenewRequest{LeaseID: leaseID, Fingerprint: fingerprint}, &reply)
	if err != nil {
		return time.Time{}, err
	}
	return reply.ExpiresAt, nil
}

// Submit posts a sweep description (retrying; submission is idempotent
// on the sweep fingerprint, so a retried create cannot double-run).
func (c *Client) Submit(ctx context.Context, params sweep.GridParams) (SubmitReply, error) {
	var reply SubmitReply
	_, err := c.doRetry(ctx, http.MethodPost, "/v1/sweeps", SubmitRequest{Params: params}, &reply)
	return reply, err
}

// Sweeps lists every sweep the coordinator holds (retrying).
func (c *Client) Sweeps(ctx context.Context) ([]SweepSummary, error) {
	var out []SweepSummary
	_, err := c.doRetry(ctx, http.MethodGet, "/v1/sweeps", nil, &out)
	return out, err
}

// Sweep fetches one sweep's status by fingerprint (retrying).
func (c *Client) Sweep(ctx context.Context, fingerprint string) (SweepStatus, error) {
	var out SweepStatus
	_, err := c.doRetry(ctx, http.MethodGet, "/v1/sweeps/"+fingerprint, nil, &out)
	return out, err
}

// Cancel cancels a sweep (retrying; cancellation is idempotent).
// Unopened campaigns never run; leased shards finish or expire; the
// journal stays valid.
func (c *Client) Cancel(ctx context.Context, fingerprint string) (SweepStatus, error) {
	var out SweepStatus
	_, err := c.doRetry(ctx, http.MethodDelete, "/v1/sweeps/"+fingerprint, nil, &out)
	return out, err
}

// Purge cancels a sweep AND forgets it: the coordinator drops the
// resource (subsequent GETs return 404) and eagerly deletes its
// campaigns' journal records, so a long-lived coordinator's journal does
// not accrue every sweep ever served. The returned status is the sweep's
// final state before removal. Retrying like Cancel; a retry that finds
// the sweep already gone surfaces the 404 as a *Error.
func (c *Client) Purge(ctx context.Context, fingerprint string) (SweepStatus, error) {
	var out SweepStatus
	_, err := c.doRetry(ctx, http.MethodDelete, "/v1/sweeps/"+fingerprint+"?purge=1", nil, &out)
	return out, err
}

// Results fetches a completed sweep's rendered output (retrying) —
// byte-identical to the same grid run locally. Before completion the
// coordinator refuses with CodePending; after cancellation with
// CodeCancelled.
func (c *Client) Results(ctx context.Context, fingerprint string) ([]byte, error) {
	var b []byte
	err := c.retryLoop(ctx, "fetching results", func() error {
		var err error
		b, err = c.resultsOnce(ctx, fingerprint)
		return err
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (c *Client) resultsOnce(ctx context.Context, fingerprint string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/sweeps/"+fingerprint+"/results"), nil)
	if err != nil {
		return nil, fmt.Errorf("capi: %v", err)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(http.MethodGet, "/v1/sweeps/"+fingerprint+"/results", start)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// PushMetrics pushes one worker's metrics exposition text to the
// coordinator's federation endpoint (single attempt — a failed push is
// simply superseded by the next tick's, so retrying here would only
// deliver stale snapshots late). interval, when positive, declares the
// push cadence; the coordinator derives the worker's liveness window
// from it (3x the interval).
func (c *Client) PushMetrics(ctx context.Context, worker, text string, interval time.Duration) error {
	path := "/v1/workers/" + url.PathEscape(worker) + "/metrics"
	if interval > 0 {
		path += "?interval=" + url.QueryEscape(interval.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), strings.NewReader(text))
	if err != nil {
		return fmt.Errorf("capi: %v", err)
	}
	req.Header.Set("Content-Type", obs.ContentType)
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(http.MethodPost, path, start)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// PutArtifact uploads a blob to the coordinator's artifact lake under
// its content address (single attempt — lake traffic is best-effort;
// a failed publish just means some other worker builds too).
func (c *Client) PutArtifact(ctx context.Context, hash string, data []byte) error {
	path := "/v1/artifacts/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(path), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("capi: %v", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(http.MethodPut, path, start)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// GetArtifact downloads a blob from the artifact lake by content address
// (single attempt — a miss or failure means "build locally", so retrying
// only delays the fallback).
func (c *Client) GetArtifact(ctx context.Context, hash string) ([]byte, error) {
	path := "/v1/artifacts/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, fmt.Errorf("capi: %v", err)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(http.MethodGet, path, start)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// HeadArtifact reports whether the lake holds the blob, and its size.
func (c *Client) HeadArtifact(ctx context.Context, hash string) (int64, bool, error) {
	path := "/v1/artifacts/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.url(path), nil)
	if err != nil {
		return 0, false, fmt.Errorf("capi: %v", err)
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	c.observe(http.MethodHead, path, start)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		return resp.ContentLength, true, nil
	case resp.StatusCode == http.StatusNotFound:
		return 0, false, nil
	default:
		// HEAD replies carry no envelope body; synthesize the error.
		return 0, false, &Error{Status: resp.StatusCode, Code: CodeInternal, Message: resp.Status,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
}

// LakeResolve maps a lake key ("golden/<fp>", "partial/<fp>/<a>-<b>") to
// the blob hash it names; ok is false on a clean miss (404).
func (c *Client) LakeResolve(ctx context.Context, key string) (string, bool, error) {
	var reply LakeKeyReply
	_, err := c.do(ctx, http.MethodGet, "/v1/lake/keys/"+key, nil, &reply)
	if e, isErr := err.(*Error); isErr && e.Status == http.StatusNotFound {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	return reply.Hash, true, nil
}

// LakeLink durably binds a lake key to an uploaded blob and releases any
// build claim on the key.
func (c *Client) LakeLink(ctx context.Context, key, hash string) error {
	_, err := c.do(ctx, http.MethodPut, "/v1/lake/keys/"+key, LakeLinkRequest{Hash: hash}, nil)
	return err
}

// LakeClaim runs one round of the golden-build claim protocol for key.
func (c *Client) LakeClaim(ctx context.Context, key, owner string) (LakeClaimReply, error) {
	var reply LakeClaimReply
	_, err := c.do(ctx, http.MethodPost, "/v1/lake/claims/"+key, LakeClaimRequest{Owner: owner}, &reply)
	return reply, err
}

// WaitSweep polls the sweep until it reaches a terminal state (done,
// cancelled or failed) or the context ends, with jittered backoff
// between polls. onUpdate, if non-nil, receives every observed status —
// the hook progress displays hang off.
func (c *Client) WaitSweep(ctx context.Context, fingerprint string, onUpdate func(SweepStatus)) (SweepStatus, error) {
	bo := &Backoff{Base: 300 * time.Millisecond, Cap: 10 * time.Second}
	for {
		st, err := c.Sweep(ctx, fingerprint)
		if err != nil {
			return SweepStatus{}, err
		}
		if onUpdate != nil {
			onUpdate(st)
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-time.After(bo.Next()):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
