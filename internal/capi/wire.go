// Package capi is the coordinator's versioned wire surface: the request
// and reply types of every /v1 endpoint, the uniform JSON error
// envelope, and a typed Client that speaks the protocol with context
// support and retry/backoff — the one place coordinator HTTP plumbing
// lives, instead of each worker loop, CLI and test hand-rolling its own
// http.Post calls.
//
// The protocol is resource-oriented: sweeps are the resources. A sweep
// is submitted as a declarative sweep.GridParams (grid kind plus
// parameters), which the coordinator resolves through the same grid
// constructors the CLIs use — so a submitted sweep enumerates exactly
// the campaign fingerprints `socfault -sweep` runs locally, and its
// fetched results are byte-comparable to the local run.
//
//	POST   /v1/sweeps               SubmitRequest -> 201/200 SubmitReply
//	GET    /v1/sweeps               -> 200 []SweepSummary
//	GET    /v1/sweeps/{fp}          -> 200 SweepStatus
//	GET    /v1/sweeps/{fp}?watch=1  -> 200 text/event-stream of SweepEvent,
//	                                closed by a terminal "status" message;
//	                                Last-Event-ID resumes
//	GET    /v1/sweeps/{fp}/results  -> 200 text/plain rendered grid
//	DELETE /v1/sweeps/{fp}          -> 200 SweepStatus (cancel)
//	POST   /v1/lease                LeaseRequest -> 200 shard.Lease,
//	                                204 idle, 410 drained
//	POST   /v1/complete             CompleteRequest -> 200,
//	                                409 integrity_mismatch on checksum
//	                                failure (the shard is re-issued)
//	POST   /v1/renew                RenewRequest -> 200 RenewReply
//	POST   /v1/shards/fail          FailRequest -> 200 (execution failure
//	                                report; the shard requeues or, past
//	                                its attempt bound, quarantines)
//	POST   /v1/workers/{name}/metrics  exposition text -> 204 (federation
//	                                push; merged view at GET /metrics/fleet)
//
// Coordinators serving an artifact lake (-lake-dir) additionally expose
// the content-addressed artifact surface — blobs are raw bytes keyed by
// their sha256, keys are durable names resolved to blob hashes, and
// claims implement the golden-build claim protocol (lease-style with a
// TTL, so a dead builder's claim expires). Every lake endpoint answers
// 503 + Retry-After while the store is unavailable; lake clients treat
// any error as a cache miss and compute locally.
//
//	PUT    /v1/artifacts/{hash}     raw blob -> 201 (400 on hash mismatch)
//	GET    /v1/artifacts/{hash}     -> 200 raw blob
//	HEAD   /v1/artifacts/{hash}     -> 200 with Content-Length, or 404
//	GET    /v1/lake/keys/{key...}   -> 200 LakeKeyReply, or 404
//	PUT    /v1/lake/keys/{key...}   LakeLinkRequest -> 200
//	POST   /v1/lake/claims/{key...} LakeClaimRequest -> 200 LakeClaimReply
//
// Every error reply is the JSON envelope {"error":{"code","message"}}
// with Content-Type application/json and a meaningful status code.
package capi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/shard"
	"repro/internal/sweep"
)

// Version is the API version prefix every endpoint lives under.
const Version = "v1"

// Sweep lifecycle states, as reported by SweepSummary and SweepStatus.
const (
	StateRunning   = "running"   // building/opening campaigns or draining shards
	StateDone      = "done"      // every campaign merged; results fetchable
	StateCancelled = "cancelled" // cancelled; unopened campaigns never ran
	StateFailed    = "failed"    // a campaign failed to build/plan/merge
)

// TerminalState reports whether a sweep in the given state will never
// change again.
func TerminalState(state string) bool {
	return state == StateDone || state == StateCancelled || state == StateFailed
}

// SubmitRequest asks a coordinator to serve a sweep. The grid is
// described declaratively — never as pre-built campaign specs — so the
// coordinator resolves it through the shared constructors and the
// submitted sweep is fingerprint-identical to the same grid anywhere
// else.
type SubmitRequest struct {
	Params sweep.GridParams `json:"params"`
}

// SubmitReply identifies the submitted sweep resource. Submission is
// idempotent on the sweep fingerprint: resubmitting a live or completed
// grid returns the existing resource with Created false (status 200
// instead of 201).
type SubmitReply struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name"`
	Campaigns   int    `json:"campaigns"`
	State       string `json:"state"`
	Created     bool   `json:"created"`
}

// SweepSummary is one entry of the sweep listing.
type SweepSummary struct {
	Fingerprint    string `json:"fingerprint"`
	Name           string `json:"name"`
	State          string `json:"state"`
	CampaignsTotal int    `json:"campaigns_total"`
	CampaignsDone  int    `json:"campaigns_done"`
}

// SweepStatus is one sweep's full status: lifecycle state plus the
// per-campaign progress blocks (shard counts and ETAs never mix
// campaign fingerprints).
type SweepStatus struct {
	Fingerprint string              `json:"fingerprint"`
	Name        string              `json:"name"`
	State       string              `json:"state"`
	Error       string              `json:"error,omitempty"` // set when State is failed
	Progress    sweep.SweepProgress `json:"progress"`
	// Cost is the sweep's accumulated simulation spend, summed over the
	// journaled shard results of its campaigns — per-sweep accounting for
	// the future quota/fair-share scheduler. Present once any shard has
	// been journaled.
	Cost *SweepCost `json:"cost,omitempty"`
}

// SweepCost is a sweep's resource accounting: totals over every shard
// result the coordinator has journaled for it (first result per shard
// wins, so duplicated or speculated shards are not double-billed).
type SweepCost struct {
	Shards        int    `json:"shards"`
	InjectEvals   uint64 `json:"inject_evals"`
	InjectWallNS  int64  `json:"inject_wall_ns"`
	RestoreWallNS int64  `json:"restore_wall_ns"`
	WarmStarts    uint64 `json:"warm_starts"`
	PrunedRuns    uint64 `json:"pruned_runs"`
	DeltaRestores uint64 `json:"delta_restores"`
}

// SweepEvent is one entry of the ?watch=1 SSE stream — the wire shape is
// sweep.Event verbatim (per-sweep monotonic Seq starting at 1, gap-free;
// the SSE id field carries the same Seq for Last-Event-ID resume).
type SweepEvent = sweep.Event

// LeaseRequest asks for one shard lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// CompleteRequest delivers one shard's partial result, routed by the
// shard's campaign fingerprint — the durable key a worker always holds,
// because an expired lease ID is forgotten by the pool. Epoch echoes the
// lease's fencing token (shard.Lease.Epoch); a coordinator that has
// failed over fences stale-epoch duplicates with CodeStaleEpoch.
type CompleteRequest struct {
	LeaseID     string         `json:"lease_id"`
	Fingerprint string         `json:"fingerprint"`
	Epoch       uint64         `json:"epoch,omitempty"`
	Partial     *shard.Partial `json:"partial"`
}

// RenewRequest heartbeats a live lease, routed like CompleteRequest.
type RenewRequest struct {
	LeaseID     string `json:"lease_id"`
	Fingerprint string `json:"fingerprint"`
}

// FailRequest reports a shard execution failure — typically a panic the
// worker's executor recovered — routed like CompleteRequest. Reporting
// lets the coordinator requeue (or quarantine) the shard immediately
// and with a reason, instead of inferring the failure from a silent
// lease expiry.
type FailRequest struct {
	LeaseID     string `json:"lease_id"`
	Fingerprint string `json:"fingerprint"`
	Worker      string `json:"worker,omitempty"`
	Reason      string `json:"reason"`
}

// RenewReply carries the renewed lease deadline.
type RenewReply struct {
	ExpiresAt time.Time `json:"expires_at"`
}

// LakeKeyReply resolves a lake key to the blob hash it names.
type LakeKeyReply struct {
	Hash string `json:"hash"`
}

// LakeLinkRequest durably binds a lake key to an already-uploaded blob,
// clearing any build claim on the key (publishing releases the claim).
type LakeLinkRequest struct {
	Hash string `json:"hash"`
}

// LakeClaimRequest asks to build the artifact a key names.
type LakeClaimRequest struct {
	Owner string `json:"owner"`
}

// LakeClaimReply is the claim outcome: "artifact" (already published —
// Hash is set, fetch it), "granted" (caller owns the build for TTLMS),
// or "held" (Holder is building; poll again within TTLMS).
type LakeClaimReply struct {
	State  string `json:"state"`
	Hash   string `json:"hash,omitempty"`
	Holder string `json:"holder,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

// Claim states, as reported by LakeClaimReply.State.
const (
	ClaimArtifact = "artifact"
	ClaimGranted  = "granted"
	ClaimHeld     = "held"
)

// Error is the uniform error envelope, and doubles as the typed error
// the Client returns for any coordinator refusal: Status is the HTTP
// status, Code a stable machine-readable slug, Message the human text.
// RetryAfter carries a parsed Retry-After header (zero when absent) —
// the coordinator sets it on 503s while draining or failing over, and
// the Client's retry loop honors it in place of its own backoff.
type Error struct {
	Status     int           `json:"-"`
	Code       string        `json:"code"`
	Message    string        `json:"message"`
	RetryAfter time.Duration `json:"-"`
}

// Error codes. Codes are stable API; messages are not.
const (
	CodeBadRequest  = "bad_request" // malformed body or parameters
	CodeNotFound    = "not_found"   // no such resource
	CodeConflict    = "conflict"    // duplicate result, campaign overlap, stale lease
	CodePending     = "pending"     // results requested before the sweep completed
	CodeCancelled   = "cancelled"   // resource was cancelled
	CodeFailed      = "failed"      // sweep failed server-side
	CodeInternal    = "internal"    // coordinator-side error
	CodeStaleEpoch  = "stale_epoch" // completion fenced: granted by a deposed coordinator
	CodeUnavailable = "unavailable" // coordinator draining or failing over; retry later
	// CodeIntegrityMismatch refuses a partial whose integrity checksum
	// does not match its bytes — corruption on the wire, in a journal or
	// in a lake blob. The shard is re-issued; the sender just drops its
	// copy (re-sending the same bytes can never succeed).
	CodeIntegrityMismatch = "integrity_mismatch"
	// CodeQuarantined refuses a lease to a worker whose audited results
	// diverged from the fleet majority too often. The worker should exit;
	// its results are no longer trusted.
	CodeQuarantined = "quarantined"
)

func (e *Error) Error() string {
	return fmt.Sprintf("coordinator: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// IsRefusal reports whether err is a coordinator judgment (a 4xx
// envelope) as opposed to a transport failure or server-side 5xx —
// judgments are final and must not be retried.
func IsRefusal(err error) bool {
	e, ok := err.(*Error)
	return ok && e.Status >= 400 && e.Status < 500
}

// errorBody is the envelope's wire shape.
type errorBody struct {
	Err Error `json:"error"`
}

// WriteUnavailable replies 503 + Retry-After: the draining/failing-over
// signal. Workers' retry loops sleep the hinted interval and try again,
// riding through a coordinator handoff instead of dying on a dead
// socket. retryAfter rounds up to whole seconds (the header's unit).
func WriteUnavailable(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, format, args...)
}

// WriteError replies with the JSON error envelope.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a struct of two strings cannot fail; ignore the writer's
	// error as net/http handlers conventionally do.
	json.NewEncoder(w).Encode(errorBody{Err: Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// WriteJSON replies with v as JSON.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing coherent can follow a partial body.
		return
	}
}
