package capi

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces jittered, exponentially growing delays: Base on the
// first call, doubling per call, capped at Cap, each drawn uniformly
// from [d/2, d]. The jitter matters at fleet scale — a hundred workers
// started by the same orchestrator, or knocked idle by the same
// coordinator restart, would otherwise synchronize their polls into a
// thundering herd against one coordinator; the randomized half-window
// spreads them out, and the exponential growth keeps an idle fleet from
// hammering a drained queue at the base rate forever.
//
// The zero value is usable and uses DefaultBase/DefaultCap. A Backoff
// is safe for concurrent use, though each retry loop normally owns its
// own.
type Backoff struct {
	Base time.Duration // first delay (0 = DefaultBase)
	Cap  time.Duration // delay ceiling (0 = DefaultCap)

	mu      sync.Mutex
	attempt int
	// rnd allows deterministic jitter under test; nil uses the global
	// math/rand source.
	rnd *rand.Rand
}

// Default backoff bounds: a half-second first retry growing to
// half-minute pauses, the right shape for polling a coordinator that
// serves minutes-long shards.
const (
	DefaultBase = 500 * time.Millisecond
	DefaultCap  = 30 * time.Second
)

// Next returns the next delay in the schedule and advances it.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBase
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	d := base
	for i := 0; i < b.attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if b.attempt < 63 { // further doubling is saturated anyway
		b.attempt++
	}
	// Uniform in [d/2, d]: full-jitter style, but never collapsing to a
	// zero sleep.
	half := d / 2
	if half <= 0 {
		return d
	}
	var j time.Duration
	if b.rnd != nil {
		j = time.Duration(b.rnd.Int63n(int64(half) + 1))
	} else {
		j = time.Duration(rand.Int63n(int64(half) + 1))
	}
	return half + j
}

// Reset returns the schedule to its first delay — called after any
// successful exchange, so one blip does not leave a worker polling at
// the cap.
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempt = 0
}
