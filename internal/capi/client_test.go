package capi

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
)

// fastClient returns a client for url whose retry backoff is fast
// enough for tests.
func fastClient(url string) *Client {
	c := NewClient(url)
	c.RetryBase = 5 * time.Millisecond
	c.RetryCap = 20 * time.Millisecond
	return c
}

// TestBackoffShape pins the schedule: exponential growth from Base,
// capped at Cap, each delay jittered within [d/2, d], and Reset
// returning to the first window.
func TestBackoffShape(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond, rnd: rand.New(rand.NewSource(1))}
	wantFull := []time.Duration{100, 200, 400, 800, 800, 800} // ms, pre-jitter
	for i, w := range wantFull {
		full := w * time.Millisecond
		got := b.Next()
		if got < full/2 || got > full {
			t.Fatalf("delay %d: got %v, want within [%v, %v]", i, got, full/2, full)
		}
	}
	b.Reset()
	if got := b.Next(); got < 50*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("post-Reset delay %v, want within the first window again", got)
	}
	// The jitter must actually vary: a fleet polling in lockstep is the
	// bug this type exists to prevent.
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		b.Reset()
		seen[b.Next()] = true
	}
	if len(seen) < 2 {
		t.Fatal("backoff produced identical delays across 32 draws; jitter is dead")
	}
}

// TestBackoffZeroValue: the zero value must be usable with the
// documented defaults.
func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	d := b.Next()
	if d < DefaultBase/2 || d > DefaultBase {
		t.Fatalf("zero-value first delay %v, want within [%v, %v]", d, DefaultBase/2, DefaultBase)
	}
}

// TestClientRetriesTransient5xx: a coordinator tripping over itself (a
// proxy restart, overload) must be retried, and the call succeed once
// the server recovers.
func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			WriteError(w, http.StatusInternalServerError, CodeInternal, "transient")
			return
		}
		WriteJSON(w, []SweepSummary{{Fingerprint: "abc", State: StateRunning}})
	}))
	defer srv.Close()
	got, err := fastClient(srv.URL).Sweeps(context.Background())
	if err != nil {
		t.Fatalf("call failed despite recovery: %v", err)
	}
	if len(got) != 1 || got[0].Fingerprint != "abc" {
		t.Fatalf("reply lost through retries: %+v", got)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 2 failures + 1 success", n)
	}
}

// TestClientConnectionRefusedExhaustsRetries: with nothing listening,
// the client must retry and then fail with the attempt count, not hang.
func TestClientConnectionRefusedExhaustsRetries(t *testing.T) {
	// Grab a port that is certainly closed.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c := fastClient(url)
	c.Retries = 3
	start := time.Now()
	_, _, err := c.Lease(context.Background(), "w")
	if err == nil {
		t.Fatal("lease against a closed port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("3 fast retries took %v", elapsed)
	}
}

// TestClientContextCancellationMidLease: cancelling the context while
// the coordinator sits on the request must abort promptly with the
// context's error, not wait out the HTTP timeout or retry budget.
func TestClientContextCancellationMidLease(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer srv.Close()
	// Runs before srv.Close: the handler must unblock first, because the
	// server does not cancel r.Context() while the request body sits
	// unread.
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := fastClient(srv.URL).Lease(ctx, "w")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
}

// TestClientRefusalNotRetried: a 4xx is a coordinator judgment — final,
// typed, and never retried (retrying cannot change the verdict).
func TestClientRefusalNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusConflict, CodeConflict, "shard 3 already completed elsewhere")
	}))
	defer srv.Close()
	err := fastClient(srv.URL).Complete(context.Background(), "fp", "lease-1", 0, &shard.Partial{Index: 3})
	if err == nil {
		t.Fatal("refused completion reported success")
	}
	if !IsRefusal(err) {
		t.Fatalf("409 not surfaced as a refusal: %v", err)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Code != CodeConflict || ce.Status != http.StatusConflict {
		t.Fatalf("envelope lost: %#v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("refusal retried: server saw %d calls", n)
	}
}

// TestDecodeErrorToleratesBareBody: a proxy's non-envelope error text
// must still come back as a typed *Error carrying the status.
func TestDecodeErrorToleratesBareBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	c.Retries = -1 // single attempt; we inspect the raw error
	_, err := c.Sweep(context.Background(), "abc")
	var ce *Error
	if !errors.As(err, &ce) || ce.Status != http.StatusBadGateway {
		t.Fatalf("bare 502 body not lifted into *Error: %v", err)
	}
}

// TestLeaseOutcomes maps the protocol's non-200 lease statuses onto the
// typed outcomes.
func TestLeaseOutcomes(t *testing.T) {
	status := atomic.Int64{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	status.Store(http.StatusNoContent)
	if _, got, err := c.Lease(context.Background(), "w"); err != nil || got != LeaseIdle {
		t.Fatalf("204: outcome %v err %v, want LeaseIdle", got, err)
	}
	status.Store(http.StatusGone)
	if _, got, err := c.Lease(context.Background(), "w"); err != nil || got != LeaseDrained {
		t.Fatalf("410: outcome %v err %v, want LeaseDrained", got, err)
	}
}

// TestClientHonorsRetryAfter: a 503 carrying Retry-After paces the retry
// loop — the client sleeps the server's hint, not its own (here much
// shorter) backoff, and succeeds once the coordinator is back.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			WriteUnavailable(w, time.Second, "draining")
			return
		}
		WriteJSON(w, []SweepSummary{{Fingerprint: "abc", State: StateRunning}})
	}))
	defer srv.Close()
	start := time.Now()
	if _, err := fastClient(srv.URL).Sweeps(context.Background()); err != nil {
		t.Fatalf("call failed despite recovery: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry slept only %v; the 1s Retry-After hint was ignored", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want exactly 2", n)
	}
}

// TestClientRetryBoundedByDeadline: against a coordinator that keeps
// answering 503 + Retry-After, the retry loop must give up before a
// sleep that cannot finish within the context deadline — total retry
// wall-clock is bounded, and the last coordinator error (not a bare
// context error) is what surfaces.
func TestClientRetryBoundedByDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteUnavailable(w, 5*time.Second, "failing over")
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(srv.URL).Sweeps(ctx)
	if err == nil {
		t.Fatal("call against a permanently-503 coordinator succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past a 300ms deadline", elapsed)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Status != http.StatusServiceUnavailable || ce.Code != CodeUnavailable {
		t.Fatalf("last coordinator error lost: %v", err)
	}
	if ce.RetryAfter != 5*time.Second {
		t.Fatalf("Retry-After hint parsed as %v, want 5s", ce.RetryAfter)
	}
}

// TestClientClampsHostileRetryAfter: a coordinator advertising an
// absurd Retry-After ("come back tomorrow") must not park the worker
// for the advertised interval — the hint is clamped to MaxRetryAfter.
// The probe: under a deadline comfortably above the clamp but far below
// the hint, a clamped client enters the (cancellable) sleep, while an
// unclamped one would refuse immediately with a deadline-cut-off error.
// Cancelling mid-sleep distinguishes the two without waiting out either.
func TestClientClampsHostileRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteUnavailable(w, 24*time.Hour, "hostile pacing")
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := fastClient(srv.URL).Sweeps(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled: the clamped retry sleep was never entered", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond || elapsed > MaxRetryAfter {
		t.Fatalf("retry slept %v, want a cancellable sleep of at most MaxRetryAfter", elapsed)
	}
}

// TestNormPath pins the metric-label path normalization: fingerprints
// and worker names collapse to placeholders so capi_request_seconds
// enumerates endpoints, never identities, and query strings are
// stripped (the ?watch=1 stream shares its resource's label).
func TestNormPath(t *testing.T) {
	cases := map[string]string{
		"/v1/lease":                             "/v1/lease",
		"/v1/sweeps":                            "/v1/sweeps",
		"/v1/sweeps/abc123def456":               "/v1/sweeps/{fp}",
		"/v1/sweeps/abc123def456?watch=1":       "/v1/sweeps/{fp}",
		"/v1/sweeps/abc123def456/results":       "/v1/sweeps/{fp}/results",
		"/v1/workers/w-07/metrics":              "/v1/workers/{name}/metrics",
		"/v1/workers/w%2F7/metrics?interval=5s": "/v1/workers/{name}/metrics",
	}
	for in, want := range cases {
		if got := normPath(in); got != want {
			t.Errorf("normPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPushMetricsSingleAttempt pins that a metrics push is
// fire-and-forget: a 500 reply surfaces as an error after exactly one
// attempt (the next tick's push supersedes it), and the request carries
// the worker name, interval, and exposition body verbatim.
func TestPushMetricsSingleAttempt(t *testing.T) {
	var attempts atomic.Int32
	var gotPath, gotQuery, gotBody string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		gotPath = r.URL.Path
		gotQuery = r.URL.RawQuery
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	err := c.PushMetrics(context.Background(), "w1", "# TYPE up gauge\nup 1\n", 5*time.Second)
	if err == nil {
		t.Fatal("push against a 500 endpoint succeeded")
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("push made %d attempts, want exactly 1", n)
	}
	if gotPath != "/v1/workers/w1/metrics" || gotQuery != "interval=5s" {
		t.Fatalf("push hit %s?%s", gotPath, gotQuery)
	}
	if gotBody != "# TYPE up gauge\nup 1\n" {
		t.Fatalf("push body %q", gotBody)
	}
}
