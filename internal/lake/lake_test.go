package lake

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/shard"
)

func openStore(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fpOf computes a campaign fingerprint, failing the test on error.
func fpOf(t *testing.T, cs shard.CampaignSpec) string {
	t.Helper()
	fp, err := cs.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	data := []byte("golden artifact bytes")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if hash != HashOf(data) {
		t.Fatalf("Put returned %s, want the content address", hash)
	}
	if again, err := s.Put(data); err != nil || again != hash {
		t.Fatalf("re-Put of identical content: %s, %v", again, err)
	}
	got, err := s.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Get returned different bytes than Put stored")
	}
	if size, ok := s.Head(hash); !ok || size != int64(len(data)) {
		t.Fatalf("Head: %d, %v", size, ok)
	}
	if _, ok := s.Head(HashOf([]byte("absent"))); ok {
		t.Fatal("Head reported an absent blob present")
	}
	if s.Bytes() != int64(len(data)) {
		t.Fatalf("Bytes() = %d, want %d", s.Bytes(), len(data))
	}
}

// TestStoreDurableAcrossReopen is the cross-sweep memoization property:
// a fresh process opening the same directory sees every published blob
// and key.
func TestStoreDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	data := []byte("a partial result")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	key := PartialKey("fp00", 0, 8)
	if err := s.Link(key, hash); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 0)
	got, ok := s2.Resolve(key)
	if !ok || got != hash {
		t.Fatalf("reopened store resolved %q to (%s, %v)", key, got, ok)
	}
	blob, err := s2.Get(hash)
	if err != nil || !bytes.Equal(blob, data) {
		t.Fatalf("reopened store Get: %v", err)
	}
}

// TestStoreRejectsCorruptBlob: content verification on read drops a
// tampered blob instead of serving it.
func TestStoreRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	data := []byte("soon to be corrupted")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link("golden/fp", hash); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", hash), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hash); err == nil {
		t.Fatal("corrupted blob served without error")
	}
	if _, ok := s.Head(hash); ok {
		t.Fatal("corrupted blob still present after failed verification")
	}
	if _, ok := s.Resolve("golden/fp"); ok {
		t.Fatal("key still resolves to a dropped blob")
	}
}

// TestStoreEvictionLRUAndPinning: the size bound evicts least-recently
// used blobs and their keys, but never a blob pinned by an in-flight
// read.
func TestStoreEvictionLRUAndPinning(t *testing.T) {
	s := openStore(t, t.TempDir(), 64)
	blob := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 30) }

	h0, err := s.Put(blob(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link("golden/old", h0); err != nil {
		t.Fatal(err)
	}
	h1, err := s.Put(blob(1))
	if err != nil {
		t.Fatal(err)
	}
	_ = h1
	// Touch h0 so h1 is now the LRU victim, then push over the bound.
	if _, err := s.Get(h0); err != nil {
		t.Fatal(err)
	}
	h2, err := s.Put(blob(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Head(h1); ok {
		t.Fatal("LRU blob survived eviction pressure")
	}
	if _, ok := s.Head(h0); !ok {
		t.Fatal("recently used blob was evicted before the LRU one")
	}
	if _, ok := s.Head(h2); !ok {
		t.Fatal("just-written blob was evicted")
	}
	if s.Evictions() == 0 {
		t.Fatal("eviction not counted")
	}
	if s.Bytes() > 64 {
		t.Fatalf("store over bound after eviction: %d bytes", s.Bytes())
	}
}

// TestStoreClaimProtocol: grant, hold, expiry, and release-on-publish.
func TestStoreClaimProtocol(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.SetClaimTTL(10 * time.Second)
	key := GoldenKey("fpA")

	cs, err := s.Claim(key, "worker-1")
	if err != nil || cs.State != "granted" {
		t.Fatalf("first claim: %+v, %v", cs, err)
	}
	cs, err = s.Claim(key, "worker-2")
	if err != nil || cs.State != "held" || cs.Holder != "worker-1" {
		t.Fatalf("second claim: %+v, %v", cs, err)
	}
	// The same owner re-claiming refreshes rather than waits on itself.
	cs, err = s.Claim(key, "worker-1")
	if err != nil || cs.State != "granted" {
		t.Fatalf("re-claim by holder: %+v, %v", cs, err)
	}
	// A dead builder's claim expires.
	now = now.Add(11 * time.Second)
	cs, err = s.Claim(key, "worker-2")
	if err != nil || cs.State != "granted" {
		t.Fatalf("claim after expiry: %+v, %v", cs, err)
	}
	// Publishing releases the claim and flips the outcome to "artifact".
	hash, err := s.Put([]byte("the golden build"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link(key, hash); err != nil {
		t.Fatal(err)
	}
	cs, err = s.Claim(key, "worker-3")
	if err != nil || cs.State != "artifact" || cs.Hash != hash {
		t.Fatalf("claim after publish: %+v, %v", cs, err)
	}
}

// TestStoreFailChaosHook: a failed store refuses everything with
// ErrUnavailable and recovers when revived.
func TestStoreFailChaosHook(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	hash, err := s.Put([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	s.Fail(true)
	if _, err := s.Put([]byte("y")); err != ErrUnavailable {
		t.Fatalf("Put on failed store: %v", err)
	}
	if _, err := s.Get(hash); err != ErrUnavailable {
		t.Fatalf("Get on failed store: %v", err)
	}
	if _, ok := s.Head(hash); ok {
		t.Fatal("Head on failed store reported presence")
	}
	if _, ok := s.Resolve("golden/fp"); ok {
		t.Fatal("Resolve on failed store reported a hit")
	}
	if _, err := s.Claim("golden/fp", "w"); err != ErrUnavailable {
		t.Fatalf("Claim on failed store: %v", err)
	}
	s.Fail(false)
	if _, err := s.Get(hash); err != nil {
		t.Fatalf("store did not recover after Fail(false): %v", err)
	}
}

func TestStoreMetrics(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	m := NewMetrics(obs.NewRegistry())
	s.SetMetrics(m)
	hash, err := s.Put([]byte("blob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link("golden/fp", hash); err != nil {
		t.Fatal(err)
	}
	s.Resolve("golden/fp")
	s.Resolve("golden/absent")
	s.Resolve("partial/fp/0-4")
	if m.Hits("golden") != 1 || m.Misses("golden") != 1 || m.Misses("partial") != 1 {
		t.Fatalf("hit/miss counts: golden %d/%d partial -/%d",
			m.Hits("golden"), m.Misses("golden"), m.Misses("partial"))
	}
}

// lakeServer mounts the store's HTTP surface for client tests.
func lakeServer(t *testing.T, s *Store) *capi.Client {
	t.Helper()
	mux := http.NewServeMux()
	s.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c := capi.NewClient(srv.URL)
	c.Retries = -1
	return c
}

func TestHTTPArtifactSurface(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	c := lakeServer(t, s)
	ctx := t.Context()
	data := []byte("over the wire")
	hash := HashOf(data)

	if _, ok, err := c.HeadArtifact(ctx, hash); err != nil || ok {
		t.Fatalf("HEAD before upload: %v, %v", ok, err)
	}
	if err := c.PutArtifact(ctx, hash, data); err != nil {
		t.Fatal(err)
	}
	// A body that does not hash to the URL must be rejected, not stored.
	if err := c.PutArtifact(ctx, hash, []byte("different")); err == nil {
		t.Fatal("mismatched upload accepted")
	}
	got, err := c.GetArtifact(ctx, hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GET: %v", err)
	}
	if size, ok, err := c.HeadArtifact(ctx, hash); err != nil || !ok || size != int64(len(data)) {
		t.Fatalf("HEAD after upload: %d, %v, %v", size, ok, err)
	}

	key := GoldenKey("fpHTTP")
	if _, ok, err := c.LakeResolve(ctx, key); err != nil || ok {
		t.Fatalf("resolve before link: %v, %v", ok, err)
	}
	reply, err := c.LakeClaim(ctx, key, "worker-1")
	if err != nil || reply.State != capi.ClaimGranted {
		t.Fatalf("claim: %+v, %v", reply, err)
	}
	if err := c.LakeLink(ctx, key, hash); err != nil {
		t.Fatal(err)
	}
	gotHash, ok, err := c.LakeResolve(ctx, key)
	if err != nil || !ok || gotHash != hash {
		t.Fatalf("resolve after link: %s, %v, %v", gotHash, ok, err)
	}
	reply, err = c.LakeClaim(ctx, key, "worker-2")
	if err != nil || reply.State != capi.ClaimArtifact || reply.Hash != hash {
		t.Fatalf("claim after publish: %+v, %v", reply, err)
	}

	// A failed store answers 503 on every route.
	s.Fail(true)
	if _, err := c.GetArtifact(ctx, hash); err == nil {
		t.Fatal("GET succeeded on a failed store")
	}
	if _, _, err := c.LakeResolve(ctx, key); err == nil {
		t.Fatal("resolve succeeded on a failed store")
	}
}

func lakeSpec() shard.CampaignSpec {
	o := inject.DefaultOptions()
	cs := shard.SpecFromOptions(1, "memcpy", o)
	cs.SampleFrac = 0.05
	cs.MinPer = 2
	cs.Seed = 7
	return cs
}

// TestBuilderShareAndFallback is the lake-is-never-a-correctness-
// dependency gate at the builder level: a second builder fetches the
// first's published artifact (no golden re-simulation) and produces
// bit-identical shard results; with the lake failed, it still succeeds
// by building locally.
func TestBuilderShareAndFallback(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	cs := lakeSpec()

	b1 := NewStoreBuilder(s, "builder-1")
	built1, fetched, err := b1.Build(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fetched {
		t.Fatal("first builder claims it fetched from an empty lake")
	}
	if _, ok := s.Resolve(GoldenKey(fpOf(t, cs))); !ok {
		t.Fatal("first build did not publish its golden artifact")
	}

	c := lakeServer(t, s)
	m := NewMetrics(obs.NewRegistry())
	b2 := NewClientBuilder(c, "builder-2", m)
	built2, fetched, err := b2.Build(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fetched {
		t.Fatal("second builder rebuilt a published campaign")
	}
	if m.Hits("golden") != 1 {
		t.Fatalf("client hit count %d, want 1", m.Hits("golden"))
	}
	specs, err := shard.Plan(cs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := shard.ExecuteOn(built1, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shard.ExecuteOn(built2, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Injections) != len(p2.Injections) {
		t.Fatal("fetched campaign diverged from the building one")
	}
	for i := range p1.Injections {
		if p1.Injections[i] != p2.Injections[i] {
			t.Fatalf("injection %d differs between built and fetched campaign", i)
		}
	}

	// Chaos leg: lake dead, Build still succeeds, locally.
	s.Fail(true)
	b3 := NewClientBuilder(c, "builder-3", nil)
	built3, fetched, err := b3.Build(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fetched {
		t.Fatal("builder reported a fetch from a dead lake")
	}
	p3, err := shard.ExecuteOn(built3, specs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Injections {
		if p1.Injections[i] != p3.Injections[i] {
			t.Fatalf("injection %d differs with the lake dead", i)
		}
	}
}

// TestBuilderRejectsPoisonedArtifact: a key pointing at bytes that are
// not a valid golden artifact must fall back to a local build, then heal
// the key by republishing.
func TestBuilderRejectsPoisonedArtifact(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	cs := lakeSpec()
	key := GoldenKey(fpOf(t, cs))
	hash, err := s.Put([]byte("not a golden artifact"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link(key, hash); err != nil {
		t.Fatal(err)
	}
	b := NewStoreBuilder(s, "builder-1")
	built, fetched, err := b.Build(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fetched {
		t.Fatal("poisoned artifact adopted")
	}
	if built == nil {
		t.Fatal("no campaign built")
	}
	healed, ok := s.Resolve(key)
	if !ok || healed == hash {
		t.Fatal("key not healed after local rebuild")
	}
}

// TestBuilderHeldClaimWait: a held claim is polled until the holder
// publishes, then fetched — the shared-build path two workers race on.
func TestBuilderHeldClaimWait(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	cs := lakeSpec()
	key := GoldenKey(fpOf(t, cs))
	if _, err := s.Claim(key, "other-builder"); err != nil {
		t.Fatal(err)
	}

	// The holder publishes a real artifact shortly after.
	ref, err := shard.Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := shard.EncodeBuilt(ref)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		hash, err := s.Put(blob)
		if err != nil {
			return
		}
		_ = s.Link(key, hash)
	}()

	b := NewStoreBuilder(s, "waiting-builder")
	b.SetWait(10*time.Millisecond, 5*time.Second)
	built, fetched, err := b.Build(cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fetched {
		t.Fatal("waiting builder rebuilt instead of adopting the published artifact")
	}
	if built == nil {
		t.Fatal("no campaign")
	}
}

func TestPartialsRoundTripAndValidation(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	p := NewStorePartials(s)
	orig := &shard.Partial{
		Index: 2, Start: 8, End: 12,
		Injections:  nil,
		InjectEvals: 77,
	}
	orig.Injections = make([]inject.Injection, 4)
	p.PutPartial("fpP", orig)

	got := p.GetPartial("fpP", 8, 12)
	if got == nil {
		t.Fatal("published partial not found")
	}
	if got.InjectEvals != 77 || got.Start != 8 || got.End != 12 || len(got.Injections) != 4 {
		t.Fatalf("round-tripped partial mangled: %+v", got)
	}
	if p.GetPartial("fpP", 0, 8) != nil {
		t.Fatal("wrong-range lookup returned a partial")
	}

	// A poisoned object (garbage bytes under the key) reads as a miss.
	bad, err := s.Put([]byte("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link(PartialKey("fpQ", 0, 4), bad); err != nil {
		t.Fatal(err)
	}
	if p.GetPartial("fpQ", 0, 4) != nil {
		t.Fatal("garbage partial adopted")
	}

	s.Fail(true)
	if p.GetPartial("fpP", 8, 12) != nil {
		t.Fatal("dead lake returned a partial")
	}
	p.PutPartial("fpP", orig) // must not panic or error
}

// TestHTTPRejectsBadInput covers the surface's refusal paths.
func TestHTTPRejectsBadInput(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	mux := http.NewServeMux()
	s.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	check := func(method, path, body string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
		}
	}
	check(http.MethodPut, "/v1/artifacts/nothex", "x", http.StatusBadRequest)
	check(http.MethodGet, "/v1/artifacts/"+HashOf([]byte("absent")), "", http.StatusNotFound)
	check(http.MethodPost, "/v1/artifacts/"+HashOf([]byte("x")), "x", http.StatusMethodNotAllowed)
	check(http.MethodGet, "/v1/lake/keys/absent/key", "", http.StatusNotFound)
	claimBody, _ := json.Marshal(capi.LakeClaimRequest{Owner: ""})
	check(http.MethodPost, "/v1/lake/claims/some/key", string(claimBody), http.StatusBadRequest)
	linkBody, _ := json.Marshal(capi.LakeLinkRequest{Hash: HashOf([]byte("absent"))})
	check(http.MethodPut, "/v1/lake/keys/some/key", string(linkBody), http.StatusNotFound)
	check(http.MethodPut, "/v1/lake/keys/other/key", "{bad json", http.StatusBadRequest)
}
