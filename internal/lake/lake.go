// Package lake is the fleet's content-addressed artifact store: golden
// campaign builds (serialized checkpoints + signature + VCD) and
// finished shard partials, shared across worker processes and across
// sweeps. Blobs are keyed by their sha256 and written atomically
// (temp file + rename); human-meaningful keys ("golden/<fp>",
// "partial/<fp>/<start>-<end>") map onto blob hashes through a durable
// index that survives restarts, which is what makes cross-sweep
// memoization work on a fresh coordinator. The store is size-bounded:
// least-recently-used blobs are evicted — together with every key that
// references them — except while pinned by an in-flight read.
//
// The lake is an accelerator, never a correctness dependency. Every
// consumer treats any lake error (including a deliberately failed store,
// see Fail) as a miss and falls back to computing locally, so merged
// sweep output is byte-identical with the lake on, off, or dying
// mid-sweep.
package lake

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxBytes bounds the store when the caller does not: large
// enough for dozens of golden artifacts of the paper's SoCs, small
// enough not to surprise a developer laptop.
const DefaultMaxBytes = 4 << 30

// DefaultClaimTTL is how long a golden-build claim shields its holder
// before another builder may take over — generous enough for a real
// golden run, short enough that a dead builder does not stall a sweep.
const DefaultClaimTTL = 2 * time.Minute

// ErrUnavailable is returned by every operation after Fail(true) — the
// chaos hook lake smoke tests use to kill the lake mid-sweep.
var ErrUnavailable = fmt.Errorf("lake: store unavailable")

// ErrNotFound marks a clean miss: no such blob, or a blob dropped after
// failing content verification. Consumers compute locally.
var ErrNotFound = fmt.Errorf("not found")

// ErrBadRequest marks a malformed key or hash.
var ErrBadRequest = fmt.Errorf("bad request")

// ClaimState is the outcome of a Claim call.
type ClaimState struct {
	// State is "artifact" (the key already resolves — fetch, don't
	// build), "granted" (caller owns the build), or "held" (someone else
	// is building; wait or poll).
	State string `json:"state"`
	// Hash is set when State == "artifact".
	Hash string `json:"hash,omitempty"`
	// Holder and TTLMS describe the live claim when State == "held".
	Holder string `json:"holder,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type blobMeta struct {
	size    int64
	lastUse int64 // monotonic use counter, higher = more recent
	refs    map[string]bool
	pins    int
}

type claim struct {
	owner   string
	expires time.Time
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	claimTTL time.Duration
	now      func() time.Time
	m        *Metrics
	failed   atomic.Bool

	mu        sync.Mutex
	blobs     map[string]*blobMeta
	keys      map[string]string // key -> blob hash
	claims    map[string]claim
	useClock  int64
	bytes     int64
	evictions uint64
}

// Open opens (creating if necessary) the store rooted at dir, scanning
// any blobs and keys a previous process left behind. maxBytes <= 0
// selects DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		claimTTL: DefaultClaimTTL,
		now:      time.Now,
		blobs:    map[string]*blobMeta{},
		keys:     map[string]string{},
		claims:   map[string]claim{},
	}
	for _, sub := range []string{s.blobDir(), s.keyDir(), s.tmpDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("lake: %w", err)
		}
	}
	ents, err := os.ReadDir(s.blobDir())
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	for _, ent := range ents {
		info, err := ent.Info()
		if err != nil || ent.IsDir() || !validHash(ent.Name()) {
			continue
		}
		s.blobs[ent.Name()] = &blobMeta{size: info.Size(), refs: map[string]bool{}}
		s.bytes += info.Size()
	}
	kents, err := os.ReadDir(s.keyDir())
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	for _, ent := range kents {
		raw, err := os.ReadFile(filepath.Join(s.keyDir(), ent.Name()))
		if err != nil {
			continue
		}
		var rec keyRecord
		if json.Unmarshal(raw, &rec) != nil || rec.Key == "" || !validHash(rec.Hash) {
			_ = os.Remove(filepath.Join(s.keyDir(), ent.Name()))
			continue
		}
		b, ok := s.blobs[rec.Hash]
		if !ok {
			// Dangling key: its blob was evicted or lost.
			_ = os.Remove(filepath.Join(s.keyDir(), ent.Name()))
			continue
		}
		s.keys[rec.Key] = rec.Hash
		b.refs[rec.Key] = true
	}
	return s, nil
}

type keyRecord struct {
	Key  string `json:"key"`
	Hash string `json:"hash"`
}

func (s *Store) blobDir() string { return filepath.Join(s.dir, "blobs") }
func (s *Store) keyDir() string  { return filepath.Join(s.dir, "keys") }
func (s *Store) tmpDir() string  { return filepath.Join(s.dir, "tmp") }

func (s *Store) blobPath(hash string) string { return filepath.Join(s.blobDir(), hash) }

// keyPath names the durable record for key: the filename is the key's
// own sha256 (keys contain '/'), the record inside holds the clear key.
func (s *Store) keyPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.keyDir(), hex.EncodeToString(sum[:]))
}

func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	_, err := hex.DecodeString(h)
	return err == nil
}

// SetMetrics attaches obs instrumentation. Call before serving traffic.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	if m != nil {
		m.setBytesFunc(func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.bytes)
		})
	}
}

func (s *Store) met() *Metrics {
	if s.m != nil {
		return s.m
	}
	return noMetrics
}

// SetClaimTTL overrides the golden-build claim TTL (tests use short ones).
func (s *Store) SetClaimTTL(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.claimTTL = d
	}
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ClaimTTL reports the configured claim TTL.
func (s *Store) ClaimTTL() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.claimTTL
}

// Fail switches the chaos kill toggle: while set, every operation
// returns ErrUnavailable (HTTP handlers answer 503). Consumers must
// degrade to local computation — the lake-never-changes-output
// invariant's "failing mid-sweep" leg is gated on this hook.
func (s *Store) Fail(on bool) { s.failed.Store(on) }

func (s *Store) unavailable() bool { return s.failed.Load() }

// HashOf returns the content address of data.
func HashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Put stores data under its content address and returns the hash. An
// existing identical blob is a no-op (content addressing dedupes).
func (s *Store) Put(data []byte) (string, error) {
	if s.unavailable() {
		return "", ErrUnavailable
	}
	hash := HashOf(data)
	s.mu.Lock()
	if b, ok := s.blobs[hash]; ok {
		s.useClock++
		b.lastUse = s.useClock
		s.mu.Unlock()
		return hash, nil
	}
	s.mu.Unlock()

	// Atomic publish: write to a private temp file, fsync-free rename into
	// place. Concurrent writers of the same content race benignly — the
	// rename target is the same bytes.
	tmp, err := os.CreateTemp(s.tmpDir(), "put-*")
	if err != nil {
		return "", fmt.Errorf("lake: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("lake: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("lake: %w", err)
	}
	if err := os.Rename(tmpName, s.blobPath(hash)); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("lake: %w", err)
	}

	s.mu.Lock()
	if _, ok := s.blobs[hash]; !ok {
		s.useClock++
		s.blobs[hash] = &blobMeta{size: int64(len(data)), lastUse: s.useClock, refs: map[string]bool{}}
		s.bytes += int64(len(data))
		s.evictLocked()
	}
	s.mu.Unlock()
	return hash, nil
}

// Get returns the blob at hash, verifying its content address on the way
// out. A blob that fails verification (disk corruption) is deleted and
// reported as missing — the consumer rebuilds locally. The blob is
// pinned for the duration of the read so eviction cannot race it away.
func (s *Store) Get(hash string) ([]byte, error) {
	if s.unavailable() {
		return nil, ErrUnavailable
	}
	if !validHash(hash) {
		return nil, fmt.Errorf("lake: invalid hash %q: %w", hash, ErrBadRequest)
	}
	s.mu.Lock()
	b, ok := s.blobs[hash]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("lake: no blob %s: %w", hash, ErrNotFound)
	}
	b.pins++
	s.useClock++
	b.lastUse = s.useClock
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		b.pins--
		s.mu.Unlock()
	}()

	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("lake: %w", err)
	}
	if HashOf(data) != hash {
		// Refuse corrupted content and drop it so the next publisher heals
		// the entry. To the consumer this is a miss, not a failure.
		s.dropBlob(hash)
		return nil, fmt.Errorf("lake: blob %s failed content verification: %w", hash, ErrNotFound)
	}
	return data, nil
}

// Head reports whether the blob exists and its size.
func (s *Store) Head(hash string) (int64, bool) {
	if s.unavailable() || !validHash(hash) {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[hash]
	if !ok {
		return 0, false
	}
	return b.size, true
}

// Link durably binds key to an existing blob and clears any claim on the
// key — publishing an artifact releases the build claim in one step.
func (s *Store) Link(key, hash string) error {
	if s.unavailable() {
		return ErrUnavailable
	}
	if key == "" || !validHash(hash) {
		return fmt.Errorf("lake: invalid key or hash: %w", ErrBadRequest)
	}
	s.mu.Lock()
	b, ok := s.blobs[hash]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("lake: no blob %s to link %q to: %w", hash, key, ErrNotFound)
	}
	rec, err := json.Marshal(keyRecord{Key: key, Hash: hash})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if old, ok := s.keys[key]; ok && old != hash {
		if ob := s.blobs[old]; ob != nil {
			delete(ob.refs, key)
		}
	}
	s.keys[key] = hash
	b.refs[key] = true
	delete(s.claims, key)
	path := s.keyPath(key)
	s.mu.Unlock()

	tmp, err := os.CreateTemp(s.tmpDir(), "key-*")
	if err != nil {
		return fmt.Errorf("lake: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("lake: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("lake: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("lake: %w", err)
	}
	return nil
}

// Resolve maps key to its blob hash. Hit/miss metrics are labeled by the
// key's kind (its first path segment).
func (s *Store) Resolve(key string) (string, bool) {
	if s.unavailable() {
		return "", false
	}
	s.mu.Lock()
	hash, ok := s.keys[key]
	if ok {
		if b := s.blobs[hash]; b != nil {
			s.useClock++
			b.lastUse = s.useClock
		}
	}
	s.mu.Unlock()
	if ok {
		s.met().hit(kindOf(key))
	} else {
		s.met().miss(kindOf(key))
	}
	return hash, ok
}

// kindOf extracts the artifact kind from a key ("golden/ab12.." ->
// "golden").
func kindOf(key string) string {
	if i := strings.IndexByte(key, '/'); i > 0 {
		return key[:i]
	}
	return "other"
}

// Claim implements the golden-build claim protocol for key:
//   - the key already resolves -> {State: "artifact", Hash}: fetch it;
//   - no live claim             -> {State: "granted"}: caller builds and
//     publishes (Put + Link, which clears the claim);
//   - another owner's claim is live -> {State: "held", Holder, TTLMS}.
//
// Claims expire after the store's TTL so a dead builder's claim frees
// itself; re-claiming by the same owner refreshes the expiry.
func (s *Store) Claim(key, owner string) (ClaimState, error) {
	if s.unavailable() {
		return ClaimState{}, ErrUnavailable
	}
	if key == "" || owner == "" {
		return ClaimState{}, fmt.Errorf("lake: claim needs a key and an owner: %w", ErrBadRequest)
	}
	now := s.now()
	s.mu.Lock()
	if hash, ok := s.keys[key]; ok {
		if b := s.blobs[hash]; b != nil {
			s.useClock++
			b.lastUse = s.useClock
		}
		s.mu.Unlock()
		s.met().hit(kindOf(key))
		return ClaimState{State: "artifact", Hash: hash}, nil
	}
	if c, ok := s.claims[key]; ok && now.Before(c.expires) && c.owner != owner {
		held := ClaimState{State: "held", Holder: c.owner, TTLMS: c.expires.Sub(now).Milliseconds()}
		s.mu.Unlock()
		return held, nil
	}
	s.claims[key] = claim{owner: owner, expires: now.Add(s.claimTTL)}
	ttl := s.claimTTL
	s.mu.Unlock()
	s.met().miss(kindOf(key))
	return ClaimState{State: "granted", TTLMS: ttl.Milliseconds()}, nil
}

// Bytes reports the store's current blob footprint.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evictions reports how many blobs the size bound has evicted.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// evictLocked enforces the size bound: least-recently-used blobs go
// first, together with their keys; pinned blobs (in-flight reads) are
// skipped, so the store may transiently exceed the bound while
// everything in it is in use. Caller holds s.mu.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes {
		victim := ""
		var oldest int64
		for h, b := range s.blobs {
			if b.pins > 0 {
				continue
			}
			if victim == "" || b.lastUse < oldest {
				victim, oldest = h, b.lastUse
			}
		}
		if victim == "" {
			return
		}
		s.removeBlobLocked(victim)
		s.evictions++
		s.met().evicted()
	}
}

// removeBlobLocked deletes a blob, its file, and every key referencing
// it. Caller holds s.mu.
func (s *Store) removeBlobLocked(hash string) {
	b, ok := s.blobs[hash]
	if !ok {
		return
	}
	for key := range b.refs {
		delete(s.keys, key)
		_ = os.Remove(s.keyPath(key))
	}
	delete(s.blobs, hash)
	s.bytes -= b.size
	_ = os.Remove(s.blobPath(hash))
}

// dropBlob removes a blob that failed verification.
func (s *Store) dropBlob(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeBlobLocked(hash)
}

// GoldenKey is the lake key of a campaign's golden-build artifact.
func GoldenKey(fp string) string { return "golden/" + fp }

// PartialKey is the lake key of a finished shard partial for one plan
// range of a campaign.
func PartialKey(fp string, start, end int) string {
	return fmt.Sprintf("partial/%s/%d-%d", fp, start, end)
}
