package lake

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Metrics is the lake's obs instrumentation. The same metric names are
// used on coordinators (store-side) and workers (client-side), so
// `/metrics/fleet` federation sums hits and misses fleet-wide.
type Metrics struct {
	reg *obs.Registry

	mu     sync.Mutex
	hits   map[string]*obs.Counter
	misses map[string]*obs.Counter

	evicts *obs.Counter
	fetch  *obs.Histogram
}

// NewMetrics registers the lake_* metric family on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg:    reg,
		hits:   map[string]*obs.Counter{},
		misses: map[string]*obs.Counter{},
		evicts: reg.NewCounter("lake_evictions_total",
			"Artifact-lake blobs evicted by the size bound."),
		fetch: reg.NewHistogram("lake_fetch_seconds",
			"Artifact-lake fetch latency (resolve + blob read).",
			obs.DurationBuckets),
	}
}

func (m *Metrics) hit(kind string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.hits[kind]
	if !ok {
		c = m.reg.NewCounter("lake_hits_total",
			"Artifact-lake key resolutions that found an artifact.", "kind", kind)
		m.hits[kind] = c
	}
	m.mu.Unlock()
	c.Inc()
}

func (m *Metrics) miss(kind string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.misses[kind]
	if !ok {
		c = m.reg.NewCounter("lake_misses_total",
			"Artifact-lake key resolutions that found nothing.", "kind", kind)
		m.misses[kind] = c
	}
	m.mu.Unlock()
	c.Inc()
}

func (m *Metrics) evicted() {
	if m == nil {
		return
	}
	m.evicts.Inc()
}

// ObserveFetch records one fetch's wall time.
func (m *Metrics) ObserveFetch(d time.Duration) {
	if m == nil {
		return
	}
	m.fetch.Observe(d.Seconds())
}

// Hit and Miss expose the counters to lake clients (workers count their
// own hits/misses against their own registry so -push federates them).
func (m *Metrics) Hit(kind string)  { m.hit(kind) }
func (m *Metrics) Miss(kind string) { m.miss(kind) }

// Hits returns the current hit count for kind (test hook).
func (m *Metrics) Hits(kind string) uint64 {
	m.mu.Lock()
	c := m.hits[kind]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Misses returns the current miss count for kind (test hook).
func (m *Metrics) Misses(kind string) uint64 {
	m.mu.Lock()
	c := m.misses[kind]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

func (m *Metrics) setBytesFunc(fn func() float64) {
	m.reg.NewGaugeFunc("lake_bytes",
		"Artifact-lake blob bytes currently stored.", fn)
}

// noMetrics is what a store without SetMetrics counts into: every
// method is nil-safe, so the counting sites need no guards.
var noMetrics = (*Metrics)(nil)
