package lake

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/shard"
)

// backend abstracts where the lake lives: in-process (the coordinator
// owns the Store) or across the wire (workers speak capi to the
// coordinator's lake endpoints). Builder and Partials implement the
// shard seams identically over either.
type backend interface {
	claim(ctx context.Context, key, owner string) (capi.LakeClaimReply, error)
	resolve(ctx context.Context, key string) (hash string, ok bool, err error)
	fetch(ctx context.Context, hash string) ([]byte, error)
	// publish uploads data and durably binds key to it (releasing any
	// claim on key).
	publish(ctx context.Context, key string, data []byte) error
}

// storeBackend serves a coordinator-local Store.
type storeBackend struct{ s *Store }

func (b storeBackend) claim(_ context.Context, key, owner string) (capi.LakeClaimReply, error) {
	cs, err := b.s.Claim(key, owner)
	return capi.LakeClaimReply{State: cs.State, Hash: cs.Hash, Holder: cs.Holder, TTLMS: cs.TTLMS}, err
}

func (b storeBackend) resolve(_ context.Context, key string) (string, bool, error) {
	hash, ok := b.s.Resolve(key)
	return hash, ok, nil
}

func (b storeBackend) fetch(_ context.Context, hash string) ([]byte, error) {
	return b.s.Get(hash)
}

func (b storeBackend) publish(_ context.Context, key string, data []byte) error {
	hash, err := b.s.Put(data)
	if err != nil {
		return err
	}
	return b.s.Link(key, hash)
}

// clientBackend speaks the lake endpoints through a capi.Client.
type clientBackend struct{ c *capi.Client }

func (b clientBackend) claim(ctx context.Context, key, owner string) (capi.LakeClaimReply, error) {
	return b.c.LakeClaim(ctx, key, owner)
}

func (b clientBackend) resolve(ctx context.Context, key string) (string, bool, error) {
	return b.c.LakeResolve(ctx, key)
}

func (b clientBackend) fetch(ctx context.Context, hash string) ([]byte, error) {
	return b.c.GetArtifact(ctx, hash)
}

func (b clientBackend) publish(ctx context.Context, key string, data []byte) error {
	hash := HashOf(data)
	if err := b.c.PutArtifact(ctx, hash, data); err != nil {
		return err
	}
	return b.c.LakeLink(ctx, key, hash)
}

// Builder is the lake-backed shard.Builder: claim-or-fetch a campaign's
// golden artifact before building, publish after a real build, and fall
// back to a plain local build on ANY lake error — the lake accelerates
// the fleet, it never gates correctness, so a Builder result is always
// bit-identical to shard.BuildLocal's.
type Builder struct {
	lake  backend
	owner string
	// m, when non-nil, counts golden hits/misses on the caller's registry
	// (workers; a coordinator-local Store counts its own).
	m *Metrics
	// poll and maxWait pace the held-claim loop: how often to re-ask
	// whether the claiming builder published, and how long before giving
	// up and building locally anyway.
	poll    time.Duration
	maxWait time.Duration
}

// NewStoreBuilder returns a Builder over a coordinator-local Store.
func NewStoreBuilder(s *Store, owner string) *Builder {
	return &Builder{lake: storeBackend{s: s}, owner: owner}
}

// NewClientBuilder returns a Builder speaking to a remote lake through
// c. m (may be nil) receives this process's hit/miss/fetch counts.
func NewClientBuilder(c *capi.Client, owner string, m *Metrics) *Builder {
	return &Builder{lake: clientBackend{c: c}, owner: owner, m: m}
}

// SetWait overrides the held-claim pacing (tests use short values).
func (b *Builder) SetWait(poll, maxWait time.Duration) {
	b.poll, b.maxWait = poll, maxWait
}

func (b *Builder) pollEvery() time.Duration {
	if b.poll > 0 {
		return b.poll
	}
	return 250 * time.Millisecond
}

func (b *Builder) waitBudget() time.Duration {
	if b.maxWait > 0 {
		return b.maxWait
	}
	return DefaultClaimTTL
}

// Build implements shard.Builder.
func (b *Builder) Build(cs shard.CampaignSpec, tune func(*inject.Options)) (*shard.Built, bool, error) {
	ctx := context.Background()
	fp, err := cs.Fingerprint()
	if err != nil {
		return nil, false, err
	}
	key := GoldenKey(fp)
	deadline := time.Now().Add(b.waitBudget())
	for {
		reply, err := b.lake.claim(ctx, key, b.owner)
		if err != nil {
			break // lake down: build locally, skip publishing
		}
		switch reply.State {
		case capi.ClaimArtifact:
			start := time.Now()
			blob, err := b.lake.fetch(ctx, reply.Hash)
			if err != nil {
				// Fetch raced an eviction or the lake died; locally is fine.
				return b.buildAndPublish(ctx, cs, tune, key)
			}
			built, err := shard.BuildFromGolden(cs, tune, blob)
			if err != nil {
				// A corrupt or mismatched artifact must never install wrong
				// golden state — rebuild locally and republish to heal the key.
				return b.buildAndPublish(ctx, cs, tune, key)
			}
			b.m.Hit("golden")
			b.m.ObserveFetch(time.Since(start))
			return built, true, nil
		case capi.ClaimGranted:
			b.m.Miss("golden")
			return b.buildAndPublish(ctx, cs, tune, key)
		case capi.ClaimHeld:
			// Someone else is building. Waiting costs less than a duplicate
			// golden run — but only up to the budget: if the holder died, its
			// claim expires and a re-claim is granted; if the lake lies, we
			// build locally rather than stall the shard.
			if time.Now().After(deadline) {
				b.m.Miss("golden")
				return b.buildAndPublish(ctx, cs, tune, key)
			}
			time.Sleep(b.pollEvery())
		default:
			return b.buildAndPublish(ctx, cs, tune, key)
		}
	}
	built, err := shard.BuildLocal(cs, tune)
	return built, false, err
}

// buildAndPublish is the real-build leg: simulate the golden run locally
// and best-effort publish the artifact for the rest of the fleet.
func (b *Builder) buildAndPublish(ctx context.Context, cs shard.CampaignSpec, tune func(*inject.Options), key string) (*shard.Built, bool, error) {
	built, err := shard.BuildLocal(cs, tune)
	if err != nil {
		return nil, false, err
	}
	if blob, err := shard.EncodeBuilt(built); err == nil {
		// Publish failures are swallowed: at worst another process also
		// builds, which is exactly the no-lake behavior.
		_ = b.lake.publish(ctx, key, blob)
	}
	return built, false, nil
}

// Partials is the lake-backed shard.PartialCache: finished shard
// results promoted to durable fleet-wide cache objects, reused by
// overlapping future sweeps without re-simulation. Both methods are
// best-effort by contract — every lake error reads as a miss.
type Partials struct {
	lake backend
	m    *Metrics
}

// NewStorePartials returns a PartialCache over a coordinator-local Store.
func NewStorePartials(s *Store) *Partials {
	return &Partials{lake: storeBackend{s: s}}
}

// NewClientPartials returns a PartialCache speaking to a remote lake.
func NewClientPartials(c *capi.Client, m *Metrics) *Partials {
	return &Partials{lake: clientBackend{c: c}, m: m}
}

// GetPartial implements shard.PartialCache.
func (p *Partials) GetPartial(fp string, start, end int) *shard.Partial {
	ctx := context.Background()
	key := PartialKey(fp, start, end)
	t0 := time.Now()
	hash, ok, err := p.lake.resolve(ctx, key)
	if err != nil || !ok {
		p.m.Miss("partial")
		return nil
	}
	blob, err := p.lake.fetch(ctx, hash)
	if err != nil {
		p.m.Miss("partial")
		return nil
	}
	var partial shard.Partial
	if err := json.Unmarshal(blob, &partial); err != nil {
		p.m.Miss("partial")
		return nil
	}
	// A published object that does not actually describe (fp, start, end)
	// must never be adopted — it would silently corrupt a merge. The same
	// goes for a blob whose integrity checksum no longer matches its
	// bytes: a damaged lake object reads as a miss and re-simulates.
	if partial.Start != start || partial.End != end || partial.Verify() != nil {
		p.m.Miss("partial")
		return nil
	}
	p.m.Hit("partial")
	p.m.ObserveFetch(time.Since(t0))
	return &partial
}

// PutPartial implements shard.PartialCache.
func (p *Partials) PutPartial(fp string, partial *shard.Partial) {
	blob, err := json.Marshal(partial)
	if err != nil {
		return
	}
	_ = p.lake.publish(context.Background(), PartialKey(fp, partial.Start, partial.End), blob)
}
