package lake

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/capi"
)

// maxArtifactBytes bounds one uploaded blob; golden artifacts of the
// paper's SoCs are a few MB, so 1 GiB is pure abuse protection.
const maxArtifactBytes = 1 << 30

// Register mounts the lake's HTTP surface on mux (see the endpoint table
// in package capi's doc). Handlers answer 503 + Retry-After while the
// store is unavailable (Fail), which clients treat as a miss.
func (s *Store) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/artifacts/", s.handleArtifact)
	mux.HandleFunc("/v1/lake/keys/", s.handleKey)
	mux.HandleFunc("/v1/lake/claims/", s.handleClaim)
}

// guard writes the unavailable reply and reports whether the request
// must stop.
func (s *Store) guard(w http.ResponseWriter) bool {
	if s.unavailable() {
		capi.WriteUnavailable(w, time.Second, "artifact lake unavailable")
		return true
	}
	return false
}

func (s *Store) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if s.guard(w) {
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
	if !validHash(hash) {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "malformed blob hash %q", hash)
		return
	}
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
		if err != nil {
			capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "reading blob: %v", err)
			return
		}
		if len(data) > maxArtifactBytes {
			capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "blob exceeds %d bytes", maxArtifactBytes)
			return
		}
		// The URL names the content; bytes that do not hash to it are
		// rejected, never stored — a corrupt upload cannot poison the lake.
		if HashOf(data) != hash {
			capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest,
				"blob does not match its content address")
			return
		}
		if _, err := s.Put(data); err != nil {
			writeStoreError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		start := time.Now()
		data, err := s.Get(hash)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		s.met().ObserveFetch(time.Since(start))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
	case http.MethodHead:
		size, ok := s.Head(hash)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
	default:
		capi.WriteError(w, http.StatusMethodNotAllowed, capi.CodeBadRequest, "method %s not allowed", r.Method)
	}
}

func (s *Store) handleKey(w http.ResponseWriter, r *http.Request) {
	if s.guard(w) {
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/lake/keys/")
	if key == "" {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "empty lake key")
		return
	}
	switch r.Method {
	case http.MethodGet:
		hash, ok := s.Resolve(key)
		if !ok {
			capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "no artifact for key %q", key)
			return
		}
		capi.WriteJSON(w, capi.LakeKeyReply{Hash: hash})
	case http.MethodPut:
		var req capi.LakeLinkRequest
		if err := decodeJSON(r, &req); err != nil {
			capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
			return
		}
		if err := s.Link(key, req.Hash); err != nil {
			writeStoreError(w, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		capi.WriteError(w, http.StatusMethodNotAllowed, capi.CodeBadRequest, "method %s not allowed", r.Method)
	}
}

func (s *Store) handleClaim(w http.ResponseWriter, r *http.Request) {
	if s.guard(w) {
		return
	}
	if r.Method != http.MethodPost {
		capi.WriteError(w, http.StatusMethodNotAllowed, capi.CodeBadRequest, "method %s not allowed", r.Method)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/lake/claims/")
	var req capi.LakeClaimRequest
	if err := decodeJSON(r, &req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
		return
	}
	cs, err := s.Claim(key, req.Owner)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	capi.WriteJSON(w, capi.LakeClaimReply{State: cs.State, Hash: cs.Hash, Holder: cs.Holder, TTLMS: cs.TTLMS})
}

func decodeJSON(r *http.Request, v any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("reading body: %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding body: %v", err)
	}
	return nil
}

func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnavailable):
		capi.WriteUnavailable(w, time.Second, "artifact lake unavailable")
	case errors.Is(err, ErrNotFound):
		capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "%v", err)
	case errors.Is(err, ErrBadRequest):
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
	default:
		capi.WriteError(w, http.StatusInternalServerError, capi.CodeInternal, "%v", err)
	}
}
