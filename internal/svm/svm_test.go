package svm

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// blobs generates two Gaussian clusters with the given separation.
func blobs(n int, sep float64, seed uint64) ([][]float64, []bool) {
	rng := xrand.New(seed)
	X := make([][]float64, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		cx, cy := -sep/2, -sep/2
		if pos {
			cx, cy = sep/2, sep/2
		}
		X = append(X, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		y = append(y, pos)
	}
	return X, y
}

// xorData generates the classic non-linearly-separable XOR pattern.
func xorData(n int, seed uint64) ([][]float64, []bool) {
	rng := xrand.New(seed)
	X := make([][]float64, 0, n)
	y := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
		x0, x1 := 0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64()
		if !a {
			x0 = -x0
		}
		if !b {
			x1 = -x1
		}
		X = append(X, []float64{x0, x1})
		y = append(y, a != b)
	}
	return X, y
}

func accuracy(m *Model, X [][]float64, y []bool) float64 {
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func TestLinearSeparable(t *testing.T) {
	X, y := blobs(200, 6, 1)
	cfg := DefaultConfig()
	cfg.Kernel = Linear{}
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.97 {
		t.Errorf("linear SVM on separable blobs: accuracy %v", acc)
	}
	if m.NumSV() == 0 || m.NumSV() == len(X) {
		t.Errorf("suspicious support vector count %d of %d", m.NumSV(), len(X))
	}
}

func TestRBFSolvesXOR(t *testing.T) {
	X, y := xorData(240, 2)
	lin := DefaultConfig()
	lin.Kernel = Linear{}
	mLin, err := Train(X, y, lin)
	if err != nil {
		t.Fatal(err)
	}
	rbf := DefaultConfig()
	rbf.Kernel = RBF{Gamma: 1}
	rbf.C = 10
	mRBF, err := Train(X, y, rbf)
	if err != nil {
		t.Fatal(err)
	}
	accLin, accRBF := accuracy(mLin, X, y), accuracy(mRBF, X, y)
	if accRBF < 0.9 {
		t.Errorf("RBF on XOR: accuracy %v", accRBF)
	}
	if accRBF <= accLin {
		t.Errorf("RBF (%v) must beat linear (%v) on XOR", accRBF, accLin)
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	X, y := blobs(100, 4, 3)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if (m.Decision(x) > 0) != m.Predict(x) {
			t.Fatal("Decision sign and Predict disagree")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	X, y := blobs(20, 4, 4)
	cases := []struct {
		name string
		mod  func(c *Config) ([][]float64, []bool)
	}{
		{"empty", func(c *Config) ([][]float64, []bool) { return nil, nil }},
		{"label mismatch", func(c *Config) ([][]float64, []bool) { return X, y[:5] }},
		{"bad C", func(c *Config) ([][]float64, []bool) { c.C = 0; return X, y }},
		{"nil kernel", func(c *Config) ([][]float64, []bool) { c.Kernel = nil; return X, y }},
		{"single class", func(c *Config) ([][]float64, []bool) {
			yy := make([]bool, len(X))
			return X, yy
		}},
		{"ragged", func(c *Config) ([][]float64, []bool) {
			XX := [][]float64{{1, 2}, {3}}
			return XX, []bool{true, false}
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		XX, yy := tc.mod(&cfg)
		if _, err := Train(XX, yy, cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	X, y := blobs(120, 3, 5)
	m1, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if math.Abs(m1.Decision(x)-m2.Decision(x)) > 1e-12 {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestStratifiedKFold(t *testing.T) {
	y := make([]bool, 100)
	for i := 0; i < 30; i++ {
		y[i] = true
	}
	folds, err := StratifiedKFold(y, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		pos := 0
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d in two folds", idx)
			}
			seen[idx] = true
			if y[idx] {
				pos++
			}
		}
		if pos < 2 || pos > 4 {
			t.Errorf("fold has %d positives, want ~3", pos)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d of 100", len(seen))
	}
}

func TestKFoldValidation(t *testing.T) {
	if _, err := StratifiedKFold(make([]bool, 10), 1, 1); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := StratifiedKFold(make([]bool, 3), 5, 1); err == nil {
		t.Error("more folds than examples must fail")
	}
}

func TestCrossValidateReasonable(t *testing.T) {
	X, y := blobs(200, 5, 6)
	cm, err := CrossValidate(X, y, 10, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 200 {
		t.Errorf("CV evaluated %d of 200", cm.Total())
	}
	if cm.Accuracy() < 0.95 {
		t.Errorf("CV accuracy %v on well-separated blobs", cm.Accuracy())
	}
}

func TestGridSearchFindsRBFForXOR(t *testing.T) {
	X, y := xorData(160, 7)
	cs, gammas := StandardGrid()
	cfg, results, err := GridSearch(X, y, cs, gammas, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no grid results")
	}
	if _, isLinear := cfg.Kernel.(Linear); isLinear {
		t.Error("grid search picked linear kernel for XOR data")
	}
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.85 {
		t.Errorf("tuned model accuracy %v", acc)
	}
}

func TestGridSearchValidation(t *testing.T) {
	X, y := blobs(30, 3, 8)
	if _, _, err := GridSearch(X, y, nil, []float64{0}, 3, 1); err == nil {
		t.Error("empty C grid must fail")
	}
}

func TestKernelNames(t *testing.T) {
	if (Linear{}).Name() != "linear" {
		t.Error("linear kernel name")
	}
	if (RBF{Gamma: 0.5}).Name() == "" {
		t.Error("rbf kernel name empty")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.7}
	a := []float64{1, 2, 3}
	if v := k.Eval(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("K(x,x) = %v, want 1", v)
	}
	b := []float64{4, 5, 6}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Error("kernel must be symmetric")
	}
	far := []float64{100, 100, 100}
	if k.Eval(a, far) > 1e-10 {
		t.Error("distant points must have near-zero kernel value")
	}
}
