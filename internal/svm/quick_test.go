package svm

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickRBFKernelBounds: the RBF kernel maps into [0, 1] (zero only by
// floating-point underflow at extreme distances) with K(x,x)=1, for
// arbitrary finite inputs.
func TestQuickRBFKernelBounds(t *testing.T) {
	f := func(a, b [4]int16, gRaw uint8) bool {
		gamma := 0.01 + float64(gRaw)/64
		k := RBF{Gamma: gamma}
		av := []float64{float64(a[0]) / 100, float64(a[1]) / 100, float64(a[2]) / 100, float64(a[3]) / 100}
		bv := []float64{float64(b[0]) / 100, float64(b[1]) / 100, float64(b[2]) / 100, float64(b[3]) / 100}
		v := k.Eval(av, bv)
		if v < 0 || v > 1 {
			return false
		}
		if math.Abs(k.Eval(av, av)-1) > 1e-12 {
			return false
		}
		return math.Abs(k.Eval(av, bv)-k.Eval(bv, av)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearKernelBilinear: the linear kernel is symmetric and
// homogeneous in each argument.
func TestQuickLinearKernelBilinear(t *testing.T) {
	f := func(a, b [3]int8, s int8) bool {
		av := []float64{float64(a[0]), float64(a[1]), float64(a[2])}
		bv := []float64{float64(b[0]), float64(b[1]), float64(b[2])}
		k := Linear{}
		if k.Eval(av, bv) != k.Eval(bv, av) {
			return false
		}
		scaled := []float64{av[0] * float64(s), av[1] * float64(s), av[2] * float64(s)}
		return math.Abs(k.Eval(scaled, bv)-float64(s)*k.Eval(av, bv)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickStratifiedFoldsPartition: for arbitrary label vectors and fold
// counts, StratifiedKFold yields a complete partition with balanced
// positives.
func TestQuickStratifiedFoldsPartition(t *testing.T) {
	f := func(labelBits []byte, kRaw, seed uint8) bool {
		n := len(labelBits)
		if n < 4 {
			return true
		}
		if n > 200 {
			labelBits = labelBits[:200]
			n = 200
		}
		k := 2 + int(kRaw%8)
		if k > n {
			k = n
		}
		y := make([]bool, n)
		pos := 0
		for i, b := range labelBits {
			y[i] = b%2 == 1
			if y[i] {
				pos++
			}
		}
		folds, err := StratifiedKFold(y, k, uint64(seed))
		if err != nil {
			return false
		}
		if len(folds) != k {
			return false
		}
		seen := make([]bool, n)
		minPos, maxPos := n, 0
		for _, fold := range folds {
			p := 0
			for _, idx := range fold {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
				if y[idx] {
					p++
				}
			}
			if p < minPos {
				minPos = p
			}
			if p > maxPos {
				maxPos = p
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Stratification: positive counts differ by at most one across
		// folds (the round-robin guarantee).
		return maxPos-minPos <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickTrainedModelSane: on arbitrary small separable-ish datasets the
// trained model must produce finite decisions and at least one support
// vector.
func TestQuickTrainedModelSane(t *testing.T) {
	f := func(pts []struct {
		X0, X1 int8
		Y      bool
	}, cRaw uint8) bool {
		if len(pts) < 6 {
			return true
		}
		if len(pts) > 50 {
			pts = pts[:50]
		}
		var X [][]float64
		var y []bool
		pos, neg := 0, 0
		for _, p := range pts {
			X = append(X, []float64{float64(p.X0) / 16, float64(p.X1) / 16})
			y = append(y, p.Y)
			if p.Y {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			return true // single class rejected elsewhere
		}
		cfg := DefaultConfig()
		cfg.C = 0.1 + float64(cRaw)/32
		m, err := Train(X, y, cfg)
		if err != nil {
			return false
		}
		if m.NumSV() < 1 {
			return false
		}
		for _, x := range X {
			d := m.Decision(x)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
