// Package svm implements a soft-margin support vector machine trained with
// Platt's sequential minimal optimization (SMO), with linear and RBF
// kernels — the classification engine of the paper's machine-learning
// phase. It is written against the same contract scikit-learn's SVC
// provides to the authors: fit on a labeled feature matrix, expose decision
// values for ROC analysis, and predict binary sensitivity classes.
package svm

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// Linear is the plain dot-product kernel.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return dot(a, b) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian radial basis kernel exp(-γ‖a−b‖²).
type RBF struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Config holds SMO training hyper-parameters.
type Config struct {
	C         float64 // soft-margin penalty
	Kernel    Kernel
	Tol       float64 // KKT violation tolerance
	MaxPasses int     // passes without alpha changes before stopping
	MaxIter   int     // hard iteration cap
	Seed      uint64
}

// DefaultConfig returns the hyper-parameters used before grid search.
func DefaultConfig() Config {
	return Config{C: 1, Kernel: RBF{Gamma: 0.5}, Tol: 1e-3, MaxPasses: 5, MaxIter: 200, Seed: 1}
}

// Model is a trained SVM.
type Model struct {
	kernel Kernel
	svX    [][]float64
	svY    []float64
	alpha  []float64
	b      float64
	iters  int
}

// NumSV returns the number of support vectors retained.
func (m *Model) NumSV() int { return len(m.svX) }

// Iters returns the SMO iteration count of training.
func (m *Model) Iters() int { return m.iters }

// Train fits the SVM on X (rows are examples) with binary labels y.
func Train(X [][]float64, y []bool, cfg Config) (*Model, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("svm: %d examples with %d labels", n, len(y))
	}
	dim := len(X[0])
	for i, x := range X {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: example %d has %d features, want %d", i, len(x), dim)
		}
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C must be positive, got %g", cfg.C)
	}
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("svm: nil kernel")
	}
	pos, neg := 0, 0
	for _, l := range y {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("svm: training set needs both classes (pos=%d neg=%d)", pos, neg)
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 5
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}

	ys := make([]float64, n)
	for i, l := range y {
		if l {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}

	// Kernel cache for modest n; above the cap, evaluate on demand.
	var kcache [][]float64
	if n <= 2048 {
		kcache = make([][]float64, n)
		for i := 0; i < n; i++ {
			kcache[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				v := cfg.Kernel.Eval(X[i], X[j])
				kcache[i][j] = v
				kcache[j][i] = v
			}
		}
	}
	kval := func(i, j int) float64 {
		if kcache != nil {
			return kcache[i][j]
		}
		return cfg.Kernel.Eval(X[i], X[j])
	}

	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		var s float64
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * ys[j] * kval(j, i)
			}
		}
		return s + b
	}

	rng := xrand.New(cfg.Seed)
	passes, iters := 0, 0
	for passes < cfg.MaxPasses && iters < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - ys[i]
			if (ys[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (ys[i]*ei > cfg.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - ys[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if ys[i] != ys[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cfg.C, cfg.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cfg.C)
					hi = math.Min(cfg.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*kval(i, j) - kval(i, i) - kval(j, j)
				if eta >= 0 {
					continue
				}
				ajNew := aj - ys[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + ys[i]*ys[j]*(aj-ajNew)
				b1 := b - ei - ys[i]*(aiNew-ai)*kval(i, i) - ys[j]*(ajNew-aj)*kval(i, j)
				b2 := b - ej - ys[i]*(aiNew-ai)*kval(i, j) - ys[j]*(ajNew-aj)*kval(j, j)
				switch {
				case aiNew > 0 && aiNew < cfg.C:
					b = b1
				case ajNew > 0 && ajNew < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		iters++
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &Model{kernel: cfg.Kernel, b: b, iters: iters}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.svX = append(m.svX, X[i])
			m.svY = append(m.svY, ys[i])
			m.alpha = append(m.alpha, alpha[i])
		}
	}
	if len(m.svX) == 0 {
		// Degenerate but possible on trivially separable data with large
		// tolerance: fall back to a single nearest support per class.
		m.svX = X[:1]
		m.svY = ys[:1]
		m.alpha = []float64{1e-8}
	}
	return m, nil
}

// Decision returns the signed distance proxy w·φ(x)+b; positive predicts
// the sensitive class.
func (m *Model) Decision(x []float64) float64 {
	var s float64
	for i := range m.svX {
		s += m.alpha[i] * m.svY[i] * m.kernel.Eval(m.svX[i], x)
	}
	return s + m.b
}

// Predict returns the binary class of x.
func (m *Model) Predict(x []float64) bool { return m.Decision(x) > 0 }
