package svm

import (
	"fmt"

	"repro/internal/mlmetrics"
	"repro/internal/xrand"
)

// StratifiedKFold splits example indices into k folds preserving the class
// ratio, shuffled deterministically from the seed. Returned folds partition
// [0, n).
func StratifiedKFold(y []bool, k int, seed uint64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("svm: k-fold needs k >= 2, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("svm: %d examples cannot fill %d folds", len(y), k)
	}
	rng := xrand.New(seed)
	var pos, neg []int
	for i, l := range y {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[(i+k/2)%k] = append(folds[(i+k/2)%k], idx)
	}
	return folds, nil
}

// CrossValidate trains on k−1 folds and evaluates on the held-out fold,
// returning the pooled confusion matrix over all folds. Folds whose
// training partition collapses to one class are skipped.
func CrossValidate(X [][]float64, y []bool, k int, cfg Config) (mlmetrics.Confusion, error) {
	var cm mlmetrics.Confusion
	folds, err := StratifiedKFold(y, k, cfg.Seed)
	if err != nil {
		return cm, err
	}
	evaluated := 0
	for fi, test := range folds {
		if len(test) == 0 {
			continue
		}
		inTest := map[int]bool{}
		for _, idx := range test {
			inTest[idx] = true
		}
		var trX [][]float64
		var trY []bool
		for i := range X {
			if !inTest[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		model, err := Train(trX, trY, cfg)
		if err != nil {
			continue // single-class fold: skip, as sklearn's CV does
		}
		for _, idx := range test {
			cm.Count(model.Predict(X[idx]), y[idx])
		}
		evaluated++
		_ = fi
	}
	if evaluated == 0 {
		return cm, fmt.Errorf("svm: no fold could be evaluated")
	}
	return cm, nil
}

// GridPoint is one (C, γ) candidate of the hyper-parameter search.
type GridPoint struct {
	C     float64
	Gamma float64 // 0 selects the linear kernel
}

// GridResult records one evaluated grid point.
type GridResult struct {
	Point    GridPoint
	Accuracy float64
	F1       float64
}

// GridSearch evaluates every (C, γ) pair with k-fold cross-validation and
// returns the best configuration by accuracy (F1 breaking ties), plus the
// full result table — the paper's "grid search was applied to optimize the
// hyper-parameters" step.
func GridSearch(X [][]float64, y []bool, cs, gammas []float64, k int, seed uint64) (Config, []GridResult, error) {
	if len(cs) == 0 {
		return Config{}, nil, fmt.Errorf("svm: empty C grid")
	}
	var results []GridResult
	best := -1
	for _, c := range cs {
		for _, g := range gammas {
			cfg := DefaultConfig()
			cfg.C = c
			cfg.Seed = seed
			if g <= 0 {
				cfg.Kernel = Linear{}
			} else {
				cfg.Kernel = RBF{Gamma: g}
			}
			cm, err := CrossValidate(X, y, k, cfg)
			if err != nil {
				continue
			}
			results = append(results, GridResult{
				Point:    GridPoint{C: c, Gamma: g},
				Accuracy: cm.Accuracy(),
				F1:       cm.F1(),
			})
			i := len(results) - 1
			if best < 0 ||
				results[i].Accuracy > results[best].Accuracy ||
				(results[i].Accuracy == results[best].Accuracy && results[i].F1 > results[best].F1) {
				best = i
			}
		}
	}
	if best < 0 {
		return Config{}, nil, fmt.Errorf("svm: grid search evaluated nothing")
	}
	cfg := DefaultConfig()
	cfg.C = results[best].Point.C
	cfg.Seed = seed
	if results[best].Point.Gamma <= 0 {
		cfg.Kernel = Linear{}
	} else {
		cfg.Kernel = RBF{Gamma: results[best].Point.Gamma}
	}
	return cfg, results, nil
}

// StandardGrid returns the (C, γ) candidates used throughout the
// reproduction.
func StandardGrid() (cs, gammas []float64) {
	return []float64{0.1, 1, 10, 100}, []float64{0, 0.1, 0.5, 2}
}
