package runstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalLines reads the raw journal so tests can assert on its physical
// shape, not just its loaded view.
func journalLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := strings.TrimRight(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestTerminalMarkerHidesRecords: a marker kills the named campaigns'
// earlier records for every reader, while later appends for the same
// campaign are live again (a purged sweep resubmitted journals afresh).
func TestTerminalMarkerHidesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-b", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkTerminal([]string{"fp-a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(1, 3, 6)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	all, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all["fp-a"]) != 1 || all["fp-a"][1] == nil {
		t.Fatalf("fp-a loaded %d shards, want only the post-marker shard 1: %v", len(all["fp-a"]), all["fp-a"])
	}
	if len(all["fp-b"]) != 1 {
		t.Fatalf("marker for fp-a touched fp-b: %v", all["fp-b"])
	}
	if n, err := Count(path, "fp-a"); err != nil || n != 1 {
		t.Fatalf("Count(fp-a) = %d, %v; want 1 (marker-dead records must not count)", n, err)
	}
}

// TestOpenCompactsMarkedAndSupersededRecords: reopening a journal rewrites
// it without marker-dead records, superseded duplicates, or the markers
// themselves — and the loaded view is unchanged by the rewrite.
func TestOpenCompactsMarkedAndSupersededRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-b", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	// Duplicate of fp-b shard 0 (a journal replay racing a live worker).
	if err := st.Append("fp-b", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkTerminal([]string{"fp-a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(journalLines(t, path)); n != 4 {
		t.Fatalf("pre-compaction journal has %d lines, want 4", n)
	}
	before, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}

	st, err = Open(path) // compacts
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	lines := journalLines(t, path)
	if len(lines) != 1 {
		t.Fatalf("compacted journal has %d lines, want 1 (only fp-b shard 0):\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if strings.Contains(lines[0], "terminal") || strings.Contains(lines[0], "fp-a") {
		t.Fatalf("compacted journal still carries dead content: %s", lines[0])
	}
	after, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed the loaded view: %d campaigns vs %d", len(after), len(before))
	}
	for fp, shards := range before {
		if len(after[fp]) != len(shards) {
			t.Fatalf("campaign %s: %d shards after compaction, want %d", fp, len(after[fp]), len(shards))
		}
	}
}

// TestPurgeDropsRecordsEagerly: Purge shrinks the file immediately and the
// store stays appendable afterwards.
func TestPurgeDropsRecordsEagerly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-b", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Purge([]string{"fp-a"}); err != nil {
		t.Fatal(err)
	}
	lines := journalLines(t, path)
	if len(lines) != 1 || !strings.Contains(lines[0], "fp-b") {
		t.Fatalf("purged journal = %q, want only fp-b's record", strings.Join(lines, "\n"))
	}
	// The store's append handle must follow the rewritten file.
	if err := st.Append("fp-c", stubPartial(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	all, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all["fp-b"] == nil || all["fp-c"] == nil || all["fp-a"] != nil {
		t.Fatalf("post-purge journal loads %v, want fp-b and fp-c only", all)
	}
}

// TestPurgeEmptyAndUnknown: purging nothing or an unknown campaign leaves
// the journal intact.
func TestPurgeEmptyAndUnknown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Purge(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Purge([]string{"fp-zzz"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("fp-a lost records to an unrelated purge: %v", got)
	}
}

// TestCountAnyDedupesAndHonorsMarkers: the probe must agree with Load —
// duplicate (campaign, shard) records count once, marked records not at
// all.
func TestCountAnyDedupesAndHonorsMarkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 2)); err != nil { // late duplicate
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-b", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkTerminal([]string{"fp-b"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := CountAny(path, map[string]bool{"fp-a": true, "fp-b": true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("CountAny = %d, want 2 (fp-a's two distinct shards; duplicate and marked records excluded)", n)
	}
}
