// Package runstore persists completed campaign shards as an append-only
// JSONL journal keyed by campaign fingerprint. A coordinator (or a local
// sharded run) appends every shard result as it lands; a restarted
// campaign loads the journal, marks the recorded shards done and executes
// only the remainder. Because shard execution is deterministic, replaying
// a journal merges bit-identically to having never crashed.
//
// The journal is crash-tolerant, not transactional: each record is one
// JSON document followed by a newline, written with a single Write call,
// and Load stops at the first undecodable record — a torn tail from a
// crash mid-append costs at most that one shard, which simply runs again.
package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/shard"
)

// Record is one journal line: a completed shard bound to its campaign.
type Record struct {
	Fingerprint string        `json:"fingerprint"`
	Partial     shard.Partial `json:"partial"`
}

// Store appends shard completions to a journal file. Safe for concurrent
// use by one process; cross-process appends are not coordinated — one
// coordinator owns a journal.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if needed) a journal for appending. Any torn
// tail — the partial record of an append interrupted by a crash — is
// truncated first: appending after garbage would otherwise hide every
// subsequent record from Load/LoadAll (which stop at the first
// undecodable byte), silently losing the work of a long-lived
// coordinator that survives its own crash-restart.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %v", err)
	}
	if err := truncateTornTail(f, path); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{f: f, path: path}, nil
}

// truncateTornTail scans the journal and cuts everything after the last
// decodable record (and its trailing newline). A fully garbled file
// truncates to empty — the journal then behaves like a fresh one.
func truncateTornTail(f *os.File, path string) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	defer r.Close()
	size, err := r.Seek(0, 2)
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	if _, err := r.Seek(0, 0); err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	dec := json.NewDecoder(r)
	var good int64
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		good = dec.InputOffset()
	}
	// Keep the record separator so the journal stays one-record-per-line.
	if good < size {
		one := make([]byte, 1)
		if n, _ := r.ReadAt(one, good); n == 1 && one[0] == '\n' {
			good++
		}
	}
	if good == size {
		return nil
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("runstore: truncating torn tail: %v", err)
	}
	return nil
}

// Path returns the journal's file path.
func (s *Store) Path() string { return s.path }

// Append journals one completed shard. The record is flushed to the OS
// before Append returns, so a crash immediately after a shard completes
// loses nothing.
func (s *Store) Append(fingerprint string, p *shard.Partial) error {
	if p == nil {
		return fmt.Errorf("runstore: nil partial")
	}
	line, err := json.Marshal(Record{Fingerprint: fingerprint, Partial: *p})
	if err != nil {
		return fmt.Errorf("runstore: encoding shard %d: %v", p.Index, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("runstore: appending shard %d: %v", p.Index, err)
	}
	return s.f.Sync()
}

// Close closes the journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Load reads a journal and returns the completed shards recorded for the
// given campaign fingerprint, keyed by shard index (last record wins —
// deterministic execution makes duplicates equal anyway). Records for
// other campaigns are skipped, so one journal file can serve consecutive
// differently-configured runs. A missing file is an empty journal. A
// record that fails to decode ends the load silently: it is the expected
// torn tail of a crashed append, and everything before it is intact.
func Load(path, fingerprint string) (map[int]*shard.Partial, error) {
	all, err := LoadAll(path)
	if err != nil {
		return nil, err
	}
	out := all[fingerprint]
	if out == nil {
		out = map[int]*shard.Partial{}
	}
	return out, nil
}

// LoadAll reads a journal and returns every completed shard it records,
// grouped by campaign fingerprint and keyed by shard index (last record
// wins, as in Load). This is the sweep entry point: one journal file
// holds the shards of every campaign in a grid, each namespaced by its
// fingerprint, so a restarted sweep coordinator resumes all of them from
// a single pass over the file. Missing files and torn tails behave as in
// Load.
func LoadAll(path string) (map[string]map[int]*shard.Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]map[int]*shard.Partial{}, nil
		}
		return nil, fmt.Errorf("runstore: %v", err)
	}
	defer f.Close()
	out := map[string]map[int]*shard.Partial{}
	dec := json.NewDecoder(f)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			// EOF, or the torn tail of a crashed append: keep what decoded.
			break
		}
		m := out[rec.Fingerprint]
		if m == nil {
			m = map[int]*shard.Partial{}
			out[rec.Fingerprint] = m
		}
		p := rec.Partial
		m[p.Index] = &p
	}
	return out, nil
}

// CountAny reports how many journal records carry any of the given
// fingerprints — the existence probe a sweep CLI uses to refuse silently
// double-running a journaled grid. Like Count it never decodes the
// partials themselves.
func CountAny(path string, fingerprints map[string]bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("runstore: %v", err)
	}
	defer f.Close()
	n := 0
	dec := json.NewDecoder(f)
	for {
		var rec struct {
			Fingerprint string          `json:"fingerprint"`
			Partial     json.RawMessage `json:"partial"`
		}
		if err := dec.Decode(&rec); err != nil {
			break // EOF or torn tail, same as Load
		}
		if fingerprints[rec.Fingerprint] {
			n++
		}
	}
	return n, nil
}

// Count reports how many journal records carry the fingerprint — the
// cheap existence probe CLI validation uses. Like CountAny it never
// decodes the partials themselves, so probing a journal of thousands of
// injections per shard costs only a token scan.
func Count(path, fingerprint string) (int, error) {
	return CountAny(path, map[string]bool{fingerprint: true})
}
