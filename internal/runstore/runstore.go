// Package runstore persists completed campaign shards as an append-only
// JSONL journal keyed by campaign fingerprint. A coordinator (or a local
// sharded run) appends every shard result as it lands; a restarted
// campaign loads the journal, marks the recorded shards done and executes
// only the remainder. Because shard execution is deterministic, replaying
// a journal merges bit-identically to having never crashed.
//
// The journal is crash-tolerant, not transactional: each record is one
// JSON document followed by a newline, written with a single Write call,
// and Load stops at the first undecodable record — a torn tail from a
// crash mid-append costs at most that one shard, which simply runs again.
package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/shard"
)

// Record is one journal line: a completed shard bound to its campaign, a
// terminal marker, or a sweep-registration record. A marker lists
// campaign fingerprints whose earlier shard records are no longer needed
// — the coordinator appends one when a sweep reaches a state its journal
// can never serve again (merged and rendered, or explicitly purged).
// Records appended after a marker are live again: a purged campaign that
// is resubmitted journals from scratch. Sweep records make the journal a
// complete description of the coordinator's registry — what was
// submitted, not just which shards landed — which is what lets a warm
// standby rebuild and resume every in-flight sweep from the file alone.
type Record struct {
	Fingerprint string         `json:"fingerprint,omitempty"`
	Partial     *shard.Partial `json:"partial,omitempty"`
	Terminal    []string       `json:"terminal,omitempty"`
	Sweep       *SweepRecord   `json:"sweep,omitempty"`
}

// SweepStateRunning is the one sweep-record state with a future: records
// whose latest state is anything else (done, cancelled, failed — the
// coordinator echoes its API lifecycle states verbatim) are compacted
// away, and only running sweeps are resubmitted after a restart or
// failover.
const SweepStateRunning = "running"

// SweepRecord registers one submitted sweep in the journal. Params holds
// the declarative grid description (capi's submit payload) as raw JSON —
// runstore stays ignorant of grid rendering — and Single holds a
// single-campaign submission's spec instead. The coordinator appends one
// at submit time and another at each terminal transition; last record
// wins per sweep fingerprint.
type SweepRecord struct {
	Fingerprint string              `json:"fingerprint"`
	Name        string              `json:"name,omitempty"`
	State       string              `json:"state"`
	Params      json.RawMessage     `json:"params,omitempty"`
	Single      *shard.CampaignSpec `json:"single,omitempty"`
}

// Store appends shard completions to a journal file. Safe for concurrent
// use by one process; cross-process appends are not coordinated — one
// coordinator owns a journal.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	m    *Metrics
	// openCompacted remembers whether Open's compaction rewrote the file,
	// so SetMetrics can count it (metrics attach after Open returns).
	openCompacted bool
}

// SetMetrics attaches obs instrumentation to the store; the compaction
// Open already performed (if any) is counted retroactively. Pass nil to
// detach.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	if m != nil && s.openCompacted {
		m.Compactions.Inc()
		s.openCompacted = false
	}
}

// Open opens (creating if needed) a journal for appending. Any torn
// tail — the partial record of an append interrupted by a crash — is
// truncated first: appending after garbage would otherwise hide every
// subsequent record from Load/LoadAll (which stop at the first
// undecodable byte), silently losing the work of a long-lived
// coordinator that survives its own crash-restart. The journal is then
// compacted: shard records covered by a later terminal marker, records
// superseded by a later record of the same (campaign, shard), and the
// markers themselves are rewritten away — a long-lived coordinator's
// journal holds only the shards that could still resume something.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %v", err)
	}
	if err := truncateTornTail(f, path); err != nil {
		f.Close()
		return nil, err
	}
	changed, err := compactFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if changed {
		// The compaction replaced the file; the append handle must follow.
		f.Close()
		if f, err = os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644); err != nil {
			return nil, fmt.Errorf("runstore: %v", err)
		}
	}
	return &Store{f: f, path: path, openCompacted: changed}, nil
}

// dedupeKey identifies a shard record for supersession: Load keys loaded
// partials by (campaign, shard index) with last-record-wins, so earlier
// records under the same key are dead weight compaction may drop.
func dedupeKey(fp string, index int) string {
	return fmt.Sprintf("%s#%d", fp, index)
}

// compactFile rewrites the journal without its dead records and reports
// whether anything changed. Dead are: shard records of campaigns a later
// terminal marker covers, shard records superseded by a later record of
// the same (campaign, shard index), and every marker (markers only exist
// to kill earlier records; once those are gone the marker is too).
// Records appended after a marker are live. The rewrite goes through a
// temp file renamed into place, so a crash mid-compaction leaves either
// the old or the new journal, never a torn one.
func compactFile(path string) (bool, error) {
	in, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("runstore: %v", err)
	}
	var dead []bool
	liveByFP := map[string][]int{}
	lastByKey := map[string]int{}
	type sweepAt struct {
		idx   int
		state string
	}
	lastSweep := map[string]sweepAt{}
	dec := json.NewDecoder(in)
	for i := 0; ; i++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		dead = append(dead, false)
		if len(rec.Terminal) > 0 {
			dead[i] = true
			for _, fp := range rec.Terminal {
				for _, j := range liveByFP[fp] {
					dead[j] = true
				}
				delete(liveByFP, fp)
			}
			continue
		}
		if rec.Sweep != nil {
			// Last sweep record per sweep fingerprint wins; earlier ones are
			// dead, and a terminally-stated winner dies below.
			if prev, ok := lastSweep[rec.Sweep.Fingerprint]; ok {
				dead[prev.idx] = true
			}
			lastSweep[rec.Sweep.Fingerprint] = sweepAt{idx: i, state: rec.Sweep.State}
			continue
		}
		if rec.Partial == nil {
			dead[i] = true // defensive: decodable but empty record
			continue
		}
		key := dedupeKey(rec.Fingerprint, rec.Partial.Index)
		if j, ok := lastByKey[key]; ok {
			dead[j] = true
		}
		lastByKey[key] = i
		liveByFP[rec.Fingerprint] = append(liveByFP[rec.Fingerprint], i)
	}
	in.Close()
	for _, s := range lastSweep {
		if s.state != SweepStateRunning {
			dead[s.idx] = true
		}
	}
	anyDead := false
	for _, d := range dead {
		anyDead = anyDead || d
	}
	if !anyDead {
		return false, nil
	}
	in, err = os.Open(path)
	if err != nil {
		return false, fmt.Errorf("runstore: %v", err)
	}
	defer in.Close()
	tmpPath := path + ".compact"
	out, err := os.Create(tmpPath)
	if err != nil {
		return false, fmt.Errorf("runstore: %v", err)
	}
	defer os.Remove(tmpPath)
	dec = json.NewDecoder(in)
	for i := 0; i < len(dead); i++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		if dead[i] {
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			out.Close()
			return false, fmt.Errorf("runstore: re-encoding record %d: %v", i, err)
		}
		if _, err := out.Write(append(line, '\n')); err != nil {
			out.Close()
			return false, fmt.Errorf("runstore: %v", err)
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return false, fmt.Errorf("runstore: %v", err)
	}
	if err := out.Close(); err != nil {
		return false, fmt.Errorf("runstore: %v", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return false, fmt.Errorf("runstore: %v", err)
	}
	return true, nil
}

// truncateTornTail scans the journal and cuts everything after the last
// decodable record (and its trailing newline). A fully garbled file
// truncates to empty — the journal then behaves like a fresh one.
func truncateTornTail(f *os.File, path string) error {
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	defer r.Close()
	size, err := r.Seek(0, 2)
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	if _, err := r.Seek(0, 0); err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	dec := json.NewDecoder(r)
	var good int64
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		good = dec.InputOffset()
	}
	// Keep the record separator so the journal stays one-record-per-line.
	if good < size {
		one := make([]byte, 1)
		if n, _ := r.ReadAt(one, good); n == 1 && one[0] == '\n' {
			good++
		}
	}
	if good == size {
		return nil
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("runstore: truncating torn tail: %v", err)
	}
	return nil
}

// Path returns the journal's file path.
func (s *Store) Path() string { return s.path }

// Append journals one completed shard. The record is flushed to the OS
// before Append returns, so a crash immediately after a shard completes
// loses nothing.
func (s *Store) Append(fingerprint string, p *shard.Partial) error {
	if p == nil {
		return fmt.Errorf("runstore: nil partial")
	}
	return s.append(Record{Fingerprint: fingerprint, Partial: p})
}

func (s *Store) append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: encoding record: %v", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("runstore: appending record: %v", err)
	}
	if s.m != nil {
		s.m.Appends.Inc()
	}
	return s.f.Sync()
}

// AppendSweep journals a sweep-registration record: the coordinator
// appends one when a sweep is submitted (state running) and another at
// each terminal transition. Last record per sweep fingerprint wins on
// load; non-running winners are compacted away at the next Open.
func (s *Store) AppendSweep(rec SweepRecord) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("runstore: sweep record without fingerprint")
	}
	return s.append(Record{Sweep: &rec})
}

// MarkTerminal appends a terminal marker: the named campaigns' earlier
// shard records are dead — loads skip them immediately, and the next Open
// compacts them out of the file. The coordinator calls this when a sweep
// reaches a state its journaled shards can never serve again.
func (s *Store) MarkTerminal(fingerprints []string) error {
	if len(fingerprints) == 0 {
		return nil
	}
	return s.append(Record{Terminal: fingerprints})
}

// Purge is MarkTerminal plus an eager in-place compaction: the named
// campaigns' records are gone from disk when Purge returns, not merely at
// the next Open. This is what DELETE /v1/sweeps/{fp}?purge=1 rides.
func (s *Store) Purge(fingerprints []string) error {
	if err := s.MarkTerminal(fingerprints); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	changed, err := compactFile(s.path)
	if err != nil {
		return err
	}
	if changed {
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("runstore: %v", err)
		}
		s.f.Close()
		s.f = f
		if s.m != nil {
			s.m.Compactions.Inc()
		}
	}
	return nil
}

// Close closes the journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Load reads a journal and returns the completed shards recorded for the
// given campaign fingerprint, keyed by shard index (last record wins —
// deterministic execution makes duplicates equal anyway). Records for
// other campaigns are skipped, so one journal file can serve consecutive
// differently-configured runs. A missing file is an empty journal. A
// record that fails to decode ends the load silently: it is the expected
// torn tail of a crashed append, and everything before it is intact.
func Load(path, fingerprint string) (map[int]*shard.Partial, error) {
	all, _, err := LoadAll(path)
	if err != nil {
		return nil, err
	}
	out := all[fingerprint]
	if out == nil {
		out = map[int]*shard.Partial{}
	}
	return out, nil
}

// LoadAll reads a journal and returns every completed shard it records,
// grouped by campaign fingerprint and keyed by shard index (last record
// wins, as in Load). This is the sweep entry point: one journal file
// holds the shards of every campaign in a grid, each namespaced by its
// fingerprint, so a restarted sweep coordinator resumes all of them from
// a single pass over the file. Missing files and torn tails behave as in
// Load. A record that decodes but whose partial fails its integrity
// checksum (bytes damaged at rest or by a torn-then-overwritten write)
// is skipped and counted in dropped: the shard simply re-simulates,
// which is always correct, never wrong.
func LoadAll(path string) (all map[string]map[int]*shard.Partial, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]map[int]*shard.Partial{}, 0, nil
		}
		return nil, 0, fmt.Errorf("runstore: %v", err)
	}
	defer f.Close()
	out := map[string]map[int]*shard.Partial{}
	dec := json.NewDecoder(f)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			// EOF, or the torn tail of a crashed append: keep what decoded.
			break
		}
		if len(rec.Terminal) > 0 {
			// A terminal marker kills everything recorded so far for those
			// campaigns; records appended after it are live again.
			for _, fp := range rec.Terminal {
				delete(out, fp)
			}
			continue
		}
		if rec.Partial == nil {
			continue
		}
		if rec.Partial.Verify() != nil {
			dropped++
			continue
		}
		m := out[rec.Fingerprint]
		if m == nil {
			m = map[int]*shard.Partial{}
			out[rec.Fingerprint] = m
		}
		m[rec.Partial.Index] = rec.Partial
	}
	return out, dropped, nil
}

// LoadSweeps reads a journal and returns the latest sweep-registration
// record of every sweep it mentions, in first-submission order — the
// order a restarted or failed-over coordinator resubmits them in, so
// campaign routing priority survives the restart. Missing files and torn
// tails behave as in Load.
func LoadSweeps(path string) ([]SweepRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runstore: %v", err)
	}
	defer f.Close()
	var order []string
	latest := map[string]SweepRecord{}
	dec := json.NewDecoder(f)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			break // EOF or torn tail, same as Load
		}
		if rec.Sweep == nil {
			continue
		}
		if _, ok := latest[rec.Sweep.Fingerprint]; !ok {
			order = append(order, rec.Sweep.Fingerprint)
		}
		latest[rec.Sweep.Fingerprint] = *rec.Sweep
	}
	out := make([]SweepRecord, 0, len(order))
	for _, fp := range order {
		out = append(out, latest[fp])
	}
	return out, nil
}

// CountAny reports how many distinct restorable shards the journal
// records for any of the given fingerprints — the existence probe a
// sweep CLI uses to refuse silently double-running a journaled grid.
// Terminal-marked and duplicate records are excluded, so the count
// agrees with what Load would restore. Like Count it only decodes each
// record's identity, never the injections.
func CountAny(path string, fingerprints map[string]bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("runstore: %v", err)
	}
	defer f.Close()
	perFP := map[string]map[int]bool{}
	dec := json.NewDecoder(f)
	for {
		var rec struct {
			Fingerprint string `json:"fingerprint"`
			Partial     *struct {
				Index int `json:"index"`
			} `json:"partial"`
			Terminal []string `json:"terminal"`
		}
		if err := dec.Decode(&rec); err != nil {
			break // EOF or torn tail, same as Load
		}
		if len(rec.Terminal) > 0 {
			// Marked-terminal records no longer resume anything; probing
			// must agree with what Load would restore.
			for _, fp := range rec.Terminal {
				delete(perFP, fp)
			}
			continue
		}
		if rec.Partial == nil || !fingerprints[rec.Fingerprint] {
			continue
		}
		// Dedupe by shard index exactly as Load does (last record wins
		// there; for counting, first seen is equivalent), so the probe
		// never reports more records than are restorable.
		set := perFP[rec.Fingerprint]
		if set == nil {
			set = map[int]bool{}
			perFP[rec.Fingerprint] = set
		}
		set[rec.Partial.Index] = true
	}
	n := 0
	for _, set := range perFP {
		n += len(set)
	}
	return n, nil
}

// Count reports how many journal records carry the fingerprint — the
// cheap existence probe CLI validation uses. Like CountAny it never
// decodes the partials themselves, so probing a journal of thousands of
// injections per shard costs only a token scan.
func Count(path, fingerprint string) (int, error) {
	return CountAny(path, map[string]bool{fingerprint: true})
}
