package runstore

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestTailReadsConcurrentAppends is the standby's core contract: a Tail
// reading while another goroutine appends sees every record exactly
// once, in order, and never consumes a torn one. Appends go through the
// real Store (single write + sync per record), so this also races the
// production write path against the read path.
func TestTailReadsConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const n = 200
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := st.Append("fp-tail", stubPartial(i, i, i+1)); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()

	tail := NewTail(path)
	defer tail.Close()
	var got []int
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("tail saw %d/%d records before deadline", len(got), n)
		}
		rec, ev, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch ev {
		case TailRecord:
			if rec.Fingerprint != "fp-tail" || rec.Partial == nil {
				t.Fatalf("unexpected record %+v", rec)
			}
			got = append(got, rec.Partial.Index)
		case TailReset:
			t.Fatal("tail reset on an append-only journal")
		case TailCaughtUp:
			time.Sleep(time.Millisecond)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("record %d has shard index %d — reordered or torn read", i, idx)
		}
	}
}

// TestTailResetOnCompaction: Purge replaces the journal file via rename;
// the tail must notice, signal a reset, and replay the new file from the
// start so a standby's derived state converges on the compacted truth.
func TestTailResetOnCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append("fp-keep", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-drop", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}

	tail := NewTail(path)
	defer tail.Close()
	seen := 0
	for seen < 2 {
		_, ev, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev != TailRecord {
			t.Fatalf("event %v with %d records unread", ev, 2-seen)
		}
		seen++
	}

	if err := st.Purge([]string{"fp-drop"}); err != nil {
		t.Fatal(err)
	}
	var after []string
	deadline := time.Now().Add(10 * time.Second)
	sawReset := false
	for !sawReset || len(after) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("tail never converged after compaction (reset=%v, %d records)", sawReset, len(after))
		}
		rec, ev, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch ev {
		case TailReset:
			sawReset = true
			after = nil
		case TailRecord:
			after = append(after, rec.Fingerprint)
		case TailCaughtUp:
			if sawReset && len(after) >= 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if len(after) != 1 || after[0] != "fp-keep" {
		t.Fatalf("post-compaction replay saw %v, want only fp-keep", after)
	}
}

// TestSweepRecordsRoundTripAndCompact pins the registry-in-the-journal
// contract: LoadSweeps returns the latest state per sweep in submission
// order, LoadAll ignores sweep records entirely, and Open compacts away
// sweeps whose latest state is terminal.
func TestSweepRecordsRoundTripAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	params := json.RawMessage(`{"kind":"let","soc":1}`)
	if err := st.AppendSweep(SweepRecord{Fingerprint: "sw-a", Name: "grid-a", State: SweepStateRunning, Params: params}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-1", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSweep(SweepRecord{Fingerprint: "sw-b", State: SweepStateRunning}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSweep(SweepRecord{Fingerprint: "sw-b", State: "done"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	recs, err := LoadSweeps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Fingerprint != "sw-a" || recs[1].Fingerprint != "sw-b" {
		t.Fatalf("LoadSweeps returned %+v", recs)
	}
	if recs[0].State != SweepStateRunning || string(recs[0].Params) != string(params) {
		t.Fatalf("sw-a record mangled: %+v", recs[0])
	}
	if recs[1].State != "done" {
		t.Fatalf("sw-b latest state %q, want done", recs[1].State)
	}
	all, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || len(all["fp-1"]) != 1 {
		t.Fatalf("LoadAll confused by sweep records: %+v", all)
	}

	// Reopen: the done sweep compacts away, the running one survives.
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	recs, err = LoadSweeps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != "sw-a" {
		t.Fatalf("post-compaction sweeps %+v, want only running sw-a", recs)
	}
	all, _, err = LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all["fp-1"]) != 1 {
		t.Fatal("compaction dropped a live shard record")
	}
}

// TestLeaderLeaseRoundTrip covers the leadership file: missing reads as
// the zero (expired, epoch 0) lease, writes replace atomically, and
// Expired follows ExpiresAt.
func TestLeaderLeaseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl.leader")
	l, err := ReadLeaderLease(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	if l.Epoch != 0 || !l.Expired(now) {
		t.Fatalf("missing lease file read as %+v", l)
	}
	want := LeaderLease{Epoch: 3, Owner: "host-1:123", Addr: "127.0.0.1:9999", ExpiresAt: now.Add(10 * time.Second)}
	if err := WriteLeaderLease(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLeaderLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Owner != want.Owner || got.Addr != want.Addr || !got.ExpiresAt.Equal(want.ExpiresAt) {
		t.Fatalf("lease round-trip: got %+v", got)
	}
	if got.Expired(now) {
		t.Fatal("live lease reads as expired")
	}
	if !got.Expired(now.Add(11 * time.Second)) {
		t.Fatal("past-deadline lease reads as live")
	}
	// Epoch bumps replace the file in place.
	want.Epoch = 4
	if err := WriteLeaderLease(path, want); err != nil {
		t.Fatal(err)
	}
	if got, _ = ReadLeaderLease(path); got.Epoch != 4 {
		t.Fatalf("epoch after rewrite %d, want 4", got.Epoch)
	}
}
