package runstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/inject"
	"repro/internal/shard"
)

func stubPartial(index, start, end int) *shard.Partial {
	p := &shard.Partial{Index: index, Start: start, End: end}
	for i := start; i < end; i++ {
		p.Injections = append(p.Injections, inject.Injection{CellID: i, Path: "stub", TimePS: uint64(i), SoftError: i%2 == 0})
	}
	return p
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []*shard.Partial{stubPartial(0, 0, 3), stubPartial(2, 6, 9)}
	for _, p := range want {
		if err := st.Append("fp-a", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append("fp-b", stubPartial(1, 3, 6)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d shards for fp-a, want 2", len(got))
	}
	for _, p := range want {
		g, ok := got[p.Index]
		if !ok {
			t.Fatalf("shard %d missing", p.Index)
		}
		if g.Start != p.Start || g.End != p.End || len(g.Injections) != len(p.Injections) {
			t.Fatalf("shard %d loaded as %+v", p.Index, g)
		}
		for i := range g.Injections {
			if g.Injections[i] != p.Injections[i] {
				t.Fatalf("shard %d injection %d differs: %+v vs %+v", p.Index, i, g.Injections[i], p.Injections[i])
			}
		}
	}
	if n, err := Count(path, "fp-b"); err != nil || n != 1 {
		t.Fatalf("Count(fp-b) = %d, %v; want 1", n, err)
	}
	if n, err := Count(path, "fp-c"); err != nil || n != 0 {
		t.Fatalf("Count(fp-c) = %d, %v; want 0", n, err)
	}
}

// TestLoadAllDropsCorruptRecords pins the replay leg of the integrity
// chain: a journal record that decodes fine but whose payload no longer
// matches its stamped checksum — bytes damaged at rest — is skipped and
// counted, never handed back to the caller, while a later clean record
// for the same shard still supersedes (last record wins). The dropped
// shard simply re-simulates.
func TestLoadAllDropsCorruptRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	clean := stubPartial(0, 0, 3)
	if err := clean.Stamp(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", clean); err != nil {
		t.Fatal(err)
	}
	// A syntactically valid record whose payload was mutated after
	// stamping: the checksum no longer covers the bytes on disk.
	damaged := stubPartial(1, 3, 6)
	if err := damaged.Stamp(); err != nil {
		t.Fatal(err)
	}
	damaged.Injections[0].TimePS += 500
	if err := st.Append("fp-a", damaged); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	all, dropped, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("LoadAll dropped %d records, want 1", dropped)
	}
	got := all["fp-a"]
	if len(got) != 1 || got[0] == nil {
		t.Fatalf("loaded %v, want only the intact shard 0", got)
	}
	if _, ok := got[1]; ok {
		t.Fatal("corrupt record handed back to the caller")
	}
	// A clean re-append of the re-simulated shard is loaded normally —
	// the append-only correction path audit replacement also uses.
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	redo := stubPartial(1, 3, 6)
	if err := redo.Stamp(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", redo); err != nil {
		t.Fatal(err)
	}
	st.Close()
	all, dropped, err = LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("re-load dropped %d records, want still 1", dropped)
	}
	if p := all["fp-a"][1]; p == nil || p.Verify() != nil {
		t.Fatalf("re-simulated shard not loaded cleanly: %+v", p)
	}
}

// TestLoadAllNamespacesCampaigns pins the sweep journal contract: one
// file holds many campaigns' shards, each group keyed by its fingerprint
// and untouched by the others' records.
func TestLoadAllNamespacesCampaigns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-b", stubPartial(0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp-a", stubPartial(1, 3, 6)); err != nil {
		t.Fatal(err)
	}
	// A re-journaled duplicate: last record wins within its namespace.
	if err := st.Append("fp-b", stubPartial(0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	all, _, err := LoadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadAll found %d campaigns, want 2", len(all))
	}
	if len(all["fp-a"]) != 2 || len(all["fp-b"]) != 1 {
		t.Fatalf("LoadAll grouped %d/%d shards, want 2/1", len(all["fp-a"]), len(all["fp-b"]))
	}
	if p := all["fp-a"][1]; p == nil || p.Start != 3 || p.End != 6 {
		t.Fatalf("fp-a shard 1 loaded as %+v", all["fp-a"][1])
	}
	if p := all["fp-b"][0]; p == nil || p.End != 5 {
		t.Fatalf("fp-b shard 0 loaded as %+v", all["fp-b"][0])
	}
	// LoadAll must agree with per-fingerprint Load.
	only, err := Load(path, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != len(all["fp-a"]) {
		t.Fatalf("Load and LoadAll disagree: %d vs %d shards", len(only), len(all["fp-a"]))
	}

	// fp-b's re-journaled duplicate counts once: the probe agrees with
	// what Load restores, not with the raw record count.
	if n, err := CountAny(path, map[string]bool{"fp-b": true, "fp-z": true}); err != nil || n != 1 {
		t.Fatalf("CountAny = %d, %v; want 1", n, err)
	}
	if n, err := CountAny(path, map[string]bool{"fp-z": true}); err != nil || n != 0 {
		t.Fatalf("CountAny(fp-z) = %d, %v; want 0", n, err)
	}
}

func TestLoadAllMissingFileIsEmpty(t *testing.T) {
	got, _, err := LoadAll(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing journal loaded %d campaigns", len(got))
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	got, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"), "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing journal loaded %d shards", len(got))
	}
}

func TestLoadToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("fp", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record at the end of the file.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fingerprint":"fp","partial":{"index":1,"st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Load(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] == nil {
		t.Fatalf("torn journal loaded %d shards, want the 1 intact one", len(got))
	}
	// The journal must still be appendable after the crash: Open truncates
	// the torn fragment, so records appended by the restarted process are
	// not hidden behind it — the property a long-lived coordinator that
	// survives its own crash-restart depends on.
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Append("fp", stubPartial(1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] == nil || got[1] == nil {
		t.Fatalf("post-crash journal loaded %d shards, want both the pre-crash and post-restart records", len(got))
	}
}

// TestOpenTruncatesGarbageOnlyJournal: a journal whose every byte is
// garbage behaves like a fresh file after Open.
func TestOpenTruncatesGarbageOnlyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append("fp", stubPartial(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("journal after garbage truncation loaded %d shards, want 1", len(got))
	}
}

// TestKillResumeDeterminism is the journal leg of the sharding
// determinism gate: a campaign killed after journaling part of its
// shards, then restarted — journal loaded, finished shards skipped, the
// rest executed — must merge bit-identically to the single-process run,
// on both engines.
func TestKillResumeDeterminism(t *testing.T) {
	cases := []struct {
		engine string
		frac   float64
	}{
		{"EventSim", 0.05},
		{"LevelSim", 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			o := inject.DefaultOptions()
			cs := shard.SpecFromOptions(1, "memcpy", o)
			cs.Engine = tc.engine
			cs.SampleFrac = tc.frac
			cs.MinPer = 2
			cs.Seed = 7
			fp, err := cs.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}

			// Reference: the single-process campaign.
			ref, err := shard.Build(cs)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run.Campaign.Run(ref.Run.Result); err != nil {
				t.Fatal(err)
			}

			// First life: run 2 of 4 shards, journaling each, then "die".
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			b1, err := shard.Build(cs)
			if err != nil {
				t.Fatal(err)
			}
			specs, err := shard.Plan(cs, 4, len(b1.Jobs))
			if err != nil {
				t.Fatal(err)
			}
			st, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, sp := range []shard.Spec{specs[2], specs[0]} {
				p, err := shard.ExecuteOn(b1, sp)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Append(fp, p); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Second life: a fresh process loads the journal, skips the
			// finished shards and executes only the remainder.
			b2, err := shard.Build(cs)
			if err != nil {
				t.Fatal(err)
			}
			done, err := Load(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			if len(done) != 2 {
				t.Fatalf("resume loaded %d shards, want 2", len(done))
			}
			executed := 0
			var partials []*shard.Partial
			for _, sp := range specs {
				if p, ok := done[sp.Index]; ok && p.Covers(sp) {
					partials = append(partials, p)
					continue
				}
				p, err := shard.ExecuteOn(b2, sp)
				if err != nil {
					t.Fatal(err)
				}
				executed++
				partials = append(partials, p)
			}
			if executed != 2 {
				t.Fatalf("resume re-executed %d shards, want 2", executed)
			}
			got, err := shard.Merge(b2, partials)
			if err != nil {
				t.Fatal(err)
			}
			if err := shard.EquivalentResults(ref.Run.Result, got); err != nil {
				t.Fatalf("resumed campaign diverges from single-process: %v", err)
			}
		})
	}
}
