package runstore

import "repro/internal/obs"

// Metrics is the journal's instrumentation surface: appends and
// compactions on the Store, leader-lease state from the coordinator's
// renewal loop, and tail lag from a standby's follower. All handles are
// nil-safe, so a nil *Metrics (or one built over a nil registry)
// disables instrumentation with no call-site guards.
type Metrics struct {
	Appends     *obs.Counter
	Compactions *obs.Counter
	// LeaderEpoch is the coordinator incarnation currently holding the
	// journal's leader lease; LeaderRenewals counts its heartbeat writes.
	// Both are driven by campaignd's renewal loop, not by runstore itself
	// — the lease file is written through WriteLeaderLease free functions.
	LeaderEpoch    *obs.Gauge
	LeaderRenewals *obs.Counter
}

// NewMetrics registers the runstore metric family on r (eagerly, so every
// series is present at zero from the first scrape) and returns the
// handles. A nil registry yields a usable all-no-op Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends:        r.NewCounter("runstore_appends_total", "Journal records appended."),
		Compactions:    r.NewCounter("runstore_compactions_total", "Journal compaction rewrites performed."),
		LeaderEpoch:    r.NewGauge("runstore_leader_epoch", "Coordinator epoch holding the journal leader lease."),
		LeaderRenewals: r.NewCounter("runstore_leader_renewals_total", "Leader-lease heartbeat renewals written."),
	}
}
