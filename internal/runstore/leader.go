package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// LeaderLease is the coordinator leadership file kept next to the
// journal (journal path + ".leader"). The leader writes it at startup
// with an epoch one above whatever it found, then rewrites it on a
// heartbeat interval to push ExpiresAt forward; a warm standby polls it
// and takes over once it expires, writing its own lease with a higher
// epoch. The epoch is the fencing token threaded through every lease the
// coordinator grants — a deposed leader that observes a higher epoch in
// the file must stop serving immediately.
//
// The file coordinates processes sharing a filesystem, matching the
// journal's own model (the journal is the source of truth a standby
// tails). It is advisory against clock skew the way all lease schemes
// are; the epoch fence is what protects results when timing goes wrong.
type LeaderLease struct {
	Epoch     uint64    `json:"epoch"`
	Owner     string    `json:"owner"`
	Addr      string    `json:"addr"`
	ExpiresAt time.Time `json:"expires_at"`
}

// Expired reports whether the lease no longer protects its holder at
// the given instant. The zero lease is expired.
func (l LeaderLease) Expired(now time.Time) bool {
	return !l.ExpiresAt.After(now)
}

// ReadLeaderLease loads the leadership file. A missing file returns the
// zero lease (epoch 0, expired) and no error — the state before any
// leader ever ran.
func ReadLeaderLease(path string) (LeaderLease, error) {
	var l LeaderLease
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return l, nil
		}
		return l, fmt.Errorf("runstore: leader lease: %v", err)
	}
	if err := json.Unmarshal(data, &l); err != nil {
		// A torn write cannot happen (rename is atomic) but a hand-edited
		// or corrupt file can; treat it as no leader rather than wedging.
		return LeaderLease{}, nil
	}
	return l, nil
}

// WriteLeaderLease atomically replaces the leadership file via a temp
// file and rename, so readers only ever observe a complete lease.
func WriteLeaderLease(path string, l LeaderLease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("runstore: leader lease: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("runstore: leader lease: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: leader lease: %v", err)
	}
	return nil
}
