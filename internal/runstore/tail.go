package runstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// TailEvent is what one Tail.Next call observed.
type TailEvent int

const (
	// TailCaughtUp: no complete record is available yet — the reader is at
	// the live end of the journal (or the file does not exist yet). Poll
	// again later.
	TailCaughtUp TailEvent = iota
	// TailRecord: one record was read.
	TailRecord
	// TailReset: the journal file was replaced or truncated underneath the
	// reader (compaction renames a rewritten file into place; torn-tail
	// repair truncates). The caller must discard every state derived from
	// earlier records — the tail restarts from the beginning of the new
	// file, and re-applying records must therefore be idempotent.
	TailReset
)

// Tail incrementally reads a journal another process is appending to —
// the warm-standby's view of the leader's runstore. It tolerates the two
// mutations a journal legally undergoes besides appends: replacement by
// compaction (detected by inode change) and torn-tail truncation
// (detected by the file shrinking below the read offset); both surface
// as TailReset. A half-written record at the live end reads as
// TailCaughtUp and is retried on the next call, so a tail never consumes
// a torn record that a concurrent single-write append is still flushing.
type Tail struct {
	mu   sync.Mutex
	path string
	f    *os.File
	off  int64
}

// NewTail starts tailing path from the beginning. The file need not
// exist yet.
func NewTail(path string) *Tail {
	return &Tail{path: path}
}

// Next returns the next journal record, or reports TailCaughtUp /
// TailReset as described on TailEvent. err is only non-nil for real I/O
// failures, never for EOF or in-progress appends.
func (t *Tail) Next() (Record, TailEvent, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var zero Record
	cur, err := os.Stat(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			if t.f != nil {
				// The journal vanished (e.g. removed between compaction steps);
				// treat like a replacement.
				t.reset()
				return zero, TailReset, nil
			}
			return zero, TailCaughtUp, nil
		}
		return zero, TailCaughtUp, fmt.Errorf("runstore: tail: %v", err)
	}
	if t.f != nil {
		held, err := t.f.Stat()
		if err != nil || !os.SameFile(held, cur) || cur.Size() < t.off {
			t.reset()
			return zero, TailReset, nil
		}
	}
	if t.f == nil {
		f, err := os.Open(t.path)
		if err != nil {
			return zero, TailCaughtUp, fmt.Errorf("runstore: tail: %v", err)
		}
		t.f = f
		t.off = 0
	}
	if _, err := t.f.Seek(t.off, io.SeekStart); err != nil {
		return zero, TailCaughtUp, fmt.Errorf("runstore: tail: %v", err)
	}
	dec := json.NewDecoder(t.f)
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		// EOF, or the not-yet-complete tail of an append in flight: hold
		// position and retry later.
		return zero, TailCaughtUp, nil
	}
	t.off += dec.InputOffset()
	return rec, TailRecord, nil
}

// Lag reports how many bytes of journal exist past the tail's read
// offset — the standby's replication lag. 0 means caught up; a missing
// journal also reads as 0. Exposed as the runstore_tail_lag_bytes gauge.
func (t *Tail) Lag() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := os.Stat(t.path)
	if err != nil {
		return 0
	}
	if t.f == nil {
		return st.Size()
	}
	if lag := st.Size() - t.off; lag > 0 {
		return lag
	}
	return 0
}

// reset abandons the current file; the next Next reopens from offset 0.
func (t *Tail) reset() {
	t.f.Close()
	t.f = nil
	t.off = 0
}

// Close releases the underlying file handle.
func (t *Tail) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
