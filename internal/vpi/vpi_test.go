package vpi

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func dutFlat(t *testing.T) *netlist.Flat {
	t.Helper()
	d := netlist.NewDesign("dut")
	m := netlist.NewModule("dut")
	m.AddPort("clk", netlist.Input)
	m.AddPort("d", netlist.Input)
	m.AddPort("q", netlist.Output)
	m.AddWire("nq")
	m.AddWire("dn")
	m.AddInstance("u_inv", "INVX1", map[string]string{"A": "d", "Y": "dn"})
	m.AddInstance("u_ff", "DFFX1", map[string]string{"D": "dn", "CK": "clk", "Q": "q", "QN": "nq"})
	d.AddModule(m)
	d.Top = "dut"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func session(t *testing.T) (*Interface, *netlist.Flat) {
	f := dutFlat(t)
	return New(sim.NewEventSim(f)), f
}

func TestHandleByName(t *testing.T) {
	v, _ := session(t)
	h, err := v.HandleByName("dn")
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != ObjNet {
		t.Errorf("dn kind = %v, want net", h.Kind)
	}
	h2, err := v.HandleByName("u_ff")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Kind != ObjReg {
		t.Errorf("u_ff kind = %v, want reg", h2.Kind)
	}
	if _, err := v.HandleByName("u_inv"); err == nil {
		t.Error("combinational cell must not get a handle")
	}
	if _, err := v.HandleByName("nothing"); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestDirectHandles(t *testing.T) {
	v, f := session(t)
	if _, err := v.NetHandle(0); err != nil {
		t.Error(err)
	}
	if _, err := v.NetHandle(len(f.Nets)); err == nil {
		t.Error("out-of-range net handle must fail")
	}
	ff, _ := f.CellByPath("u_ff")
	if _, err := v.RegHandle(ff.ID); err != nil {
		t.Error(err)
	}
	inv, _ := f.CellByPath("u_inv")
	if _, err := v.RegHandle(inv.ID); err == nil {
		t.Error("reg handle on comb cell must fail")
	}
}

func runClocked(t *testing.T, v *Interface, until uint64) {
	t.Helper()
	f := v.Engine().Flat()
	clk, _ := f.NetByName("clk")
	din, _ := f.NetByName("d")
	if err := sim.DriveClock(v.Engine(), clk.ID, 1000, 1000, until); err != nil {
		t.Fatal(err)
	}
	if err := v.Engine().ScheduleInput(0, din.ID, logic.L0); err != nil {
		t.Fatal(err)
	}
	if err := v.Engine().Run(until); err != nil {
		t.Fatal(err)
	}
}

func TestGetValueAndCallbacks(t *testing.T) {
	v, _ := session(t)
	hq, err := v.HandleByName("q")
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	if err := v.CbValueChange(hq, func(uint64, logic.V) { changes++ }); err != nil {
		t.Fatal(err)
	}
	runClocked(t, v, 3000)
	val, err := v.GetValue(hq)
	if err != nil {
		t.Fatal(err)
	}
	// d=0 -> dn=1 -> q captures 1 at the first edge.
	if val != logic.L1 {
		t.Errorf("q = %v, want 1", val)
	}
	if changes == 0 {
		t.Error("value-change callback never fired")
	}
	hff, _ := v.HandleByName("u_ff")
	st, err := v.GetValue(hff)
	if err != nil {
		t.Fatal(err)
	}
	if st != logic.L1 {
		t.Errorf("reg state = %v, want 1", st)
	}
}

func TestForceReleaseViaVPI(t *testing.T) {
	v, _ := session(t)
	hdn, _ := v.HandleByName("dn")
	if err := v.Force(hdn, 1400, logic.L0); err != nil {
		t.Fatal(err)
	}
	if err := v.Release(hdn, 2600); err != nil {
		t.Fatal(err)
	}
	runClocked(t, v, 4000)
	// Forced 0 spans the edge at 2000; q captures 0 there, then recaptures
	// 1 at 3000 after release.
	hq, _ := v.HandleByName("q")
	got, _ := v.GetValue(hq)
	if got != logic.L1 {
		t.Errorf("q after recovery = %v, want 1", got)
	}
	hff, _ := v.HandleByName("u_ff")
	if err := v.Force(hff, 0, logic.L1); err == nil {
		t.Error("Force on reg handle must fail")
	}
	if err := v.Release(hff, 0); err == nil {
		t.Error("Release on reg handle must fail")
	}
	if err := v.CbValueChange(hff, nil); err == nil {
		t.Error("CbValueChange on reg handle must fail")
	}
}

func TestFlipRegViaVPI(t *testing.T) {
	v, _ := session(t)
	hff, _ := v.HandleByName("u_ff")
	if err := v.FlipReg(hff, 2500); err != nil {
		t.Fatal(err)
	}
	hdn, _ := v.HandleByName("dn")
	if err := v.FlipReg(hdn, 2500); err == nil {
		t.Error("FlipReg on net handle must fail")
	}
	var sampled logic.V
	v.CbAtTime(2700, func() {
		s, _ := v.GetValue(hff)
		sampled = s
	})
	runClocked(t, v, 2800)
	if sampled != logic.L0 {
		t.Errorf("flipped state = %v, want 0 (was 1)", sampled)
	}
}

func TestCbAfterDelay(t *testing.T) {
	v, _ := session(t)
	fired := uint64(0)
	v.CbAfterDelay(500, func() { fired = v.SimTime() })
	runClocked(t, v, 1000)
	if fired != 500 {
		t.Errorf("cbAfterDelay fired at %d, want 500", fired)
	}
}

func TestSimTime(t *testing.T) {
	v, _ := session(t)
	if v.SimTime() != 0 {
		t.Error("time must start at 0")
	}
	runClocked(t, v, 1234)
	if v.SimTime() != 1234 {
		t.Errorf("time = %d, want 1234", v.SimTime())
	}
}

func TestSaveRestoreStateViaVPI(t *testing.T) {
	// Run to 2500, save, run to the end; a second session restored from the
	// checkpoint must land in the same final state.
	v, f := session(t)
	var ck *sim.Checkpoint
	v.CbAtTime(2500, func() { ck = v.SaveState() })
	runClocked(t, v, 5000)
	if ck == nil {
		t.Fatal("SaveState callback never fired")
	}
	if ck.TimePS != 2500 {
		t.Fatalf("checkpoint at %dps, want 2500", ck.TimePS)
	}
	hq, _ := v.HandleByName("q")
	want, _ := v.GetValue(hq)

	v2 := New(sim.NewEventSim(f))
	if err := v2.RestoreState(ck); err != nil {
		t.Fatal(err)
	}
	if v2.SimTime() != 2500 {
		t.Fatalf("restored time = %d, want 2500", v2.SimTime())
	}
	if err := v2.Engine().Run(5000); err != nil {
		t.Fatal(err)
	}
	hq2, _ := v2.HandleByName("q")
	got, _ := v2.GetValue(hq2)
	if got != want {
		t.Errorf("restored run ends with q=%v, cold run q=%v", got, want)
	}
}
