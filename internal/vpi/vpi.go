// Package vpi provides a Verilog Procedural Interface-style control layer
// over a simulation engine, mirroring the IEEE Std 1364-2005 mechanisms the
// paper uses to drive Synopsys VCS and OSS-CVC: object handles looked up by
// hierarchical name, value access, force/release (vpi_put_value with the
// vpiForceFlag), and value-change/after-delay callbacks. The fault-injection
// campaign talks to the simulator exclusively through this interface, so it
// works unchanged against either engine — the role VPI plays for the paper's
// two commercial/open simulators.
package vpi

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/sim"
)

// ObjectKind distinguishes the two handle types the framework uses.
type ObjectKind uint8

// Handle kinds, named after their IEEE-1364 counterparts.
const (
	ObjNet ObjectKind = iota // vpiNet
	ObjReg                   // vpiReg: a sequential cell's storage node
)

// Handle references a simulation object, like a vpiHandle.
type Handle struct {
	Kind ObjectKind
	Name string
	id   int
}

// ID exposes the underlying engine index (net ID or cell ID).
func (h *Handle) ID() int { return h.id }

// Interface is one VPI session bound to an engine.
type Interface struct {
	eng sim.Engine
}

// New binds a VPI session to an engine.
func New(eng sim.Engine) *Interface {
	return &Interface{eng: eng}
}

// Engine returns the bound engine.
func (v *Interface) Engine() sim.Engine { return v.eng }

// SimTime returns the current simulation time in picoseconds, like
// vpi_get_time.
func (v *Interface) SimTime() uint64 { return v.eng.Now() }

// HandleByName resolves a hierarchical name to a handle, like
// vpi_handle_by_name: net names resolve to ObjNet, sequential-cell instance
// paths resolve to ObjReg.
func (v *Interface) HandleByName(name string) (*Handle, error) {
	f := v.eng.Flat()
	if n, err := f.NetByName(name); err == nil {
		return &Handle{Kind: ObjNet, Name: name, id: n.ID}, nil
	}
	if c, err := f.CellByPath(name); err == nil {
		if !c.Def.IsSequential() {
			return nil, fmt.Errorf("vpi: %q is a combinational cell; only nets and storage cells have handles", name)
		}
		return &Handle{Kind: ObjReg, Name: name, id: c.ID}, nil
	}
	return nil, fmt.Errorf("vpi: no object named %q", name)
}

// NetHandle builds a handle directly from a flat net ID.
func (v *Interface) NetHandle(netID int) (*Handle, error) {
	f := v.eng.Flat()
	if netID < 0 || netID >= len(f.Nets) {
		return nil, fmt.Errorf("vpi: net %d out of range", netID)
	}
	return &Handle{Kind: ObjNet, Name: f.Nets[netID].Name, id: netID}, nil
}

// RegHandle builds a handle directly from a flat sequential cell ID.
func (v *Interface) RegHandle(cellID int) (*Handle, error) {
	f := v.eng.Flat()
	if cellID < 0 || cellID >= len(f.Cells) {
		return nil, fmt.Errorf("vpi: cell %d out of range", cellID)
	}
	c := f.Cells[cellID]
	if !c.Def.IsSequential() {
		return nil, fmt.Errorf("vpi: cell %q is not sequential", c.Path)
	}
	return &Handle{Kind: ObjReg, Name: c.Path, id: cellID}, nil
}

// GetValue reads the present value of a handle, like vpi_get_value: the net
// value for ObjNet, the stored state for ObjReg.
func (v *Interface) GetValue(h *Handle) (logic.V, error) {
	switch h.Kind {
	case ObjNet:
		return v.eng.Value(h.id), nil
	case ObjReg:
		return v.eng.State(h.id)
	}
	return logic.X, fmt.Errorf("vpi: bad handle kind %d", h.Kind)
}

// Force schedules a value override on a net at time t, like vpi_put_value
// with vpiForceFlag — the SET injection primitive.
func (v *Interface) Force(h *Handle, t uint64, val logic.V) error {
	if h.Kind != ObjNet {
		return fmt.Errorf("vpi: Force requires a net handle, got %q", h.Name)
	}
	v.eng.ScheduleForce(t, h.id, val)
	return nil
}

// Release schedules removal of a force at time t, like vpi_put_value with
// vpiReleaseFlag.
func (v *Interface) Release(h *Handle, t uint64) error {
	if h.Kind != ObjNet {
		return fmt.Errorf("vpi: Release requires a net handle, got %q", h.Name)
	}
	v.eng.ScheduleRelease(t, h.id)
	return nil
}

// FlipReg schedules an inversion of a storage cell's state at time t — the
// SEU injection primitive (a deposit of the complemented value).
func (v *Interface) FlipReg(h *Handle, t uint64) error {
	if h.Kind != ObjReg {
		return fmt.Errorf("vpi: FlipReg requires a reg handle, got %q", h.Name)
	}
	return v.eng.ScheduleFlip(t, h.id)
}

// CbValueChange registers a value-change callback on a net handle, like
// vpi_register_cb with cbValueChange.
func (v *Interface) CbValueChange(h *Handle, fn func(t uint64, val logic.V)) error {
	if h.Kind != ObjNet {
		return fmt.Errorf("vpi: CbValueChange requires a net handle, got %q", h.Name)
	}
	v.eng.OnNetChange(h.id, sim.NetCallback(fn))
	return nil
}

// CbAfterDelay registers a one-shot callback d picoseconds from now, like
// vpi_register_cb with cbAfterDelay.
func (v *Interface) CbAfterDelay(d uint64, fn func()) {
	v.eng.At(v.eng.Now()+d, fn)
}

// CbAtTime registers a one-shot callback at absolute time t.
func (v *Interface) CbAtTime(t uint64, fn func()) {
	v.eng.At(t, fn)
}

// SaveState captures the bound engine's complete execution state, playing
// the role of the $save PLI system task. The returned checkpoint is
// immutable and may be restored by any session over the same design and
// engine kind.
func (v *Interface) SaveState() *sim.Checkpoint {
	return v.eng.Snapshot()
}

// RestoreState resets the bound engine to a previously saved checkpoint,
// playing the role of the $restart PLI system task. Like a simulator
// restart, registered callbacks do not survive: the caller re-registers
// the observers (and fault actions) the resumed run needs.
func (v *Interface) RestoreState(ck *sim.Checkpoint) error {
	return v.eng.Restore(ck)
}
