package inject

import (
	"time"

	"repro/internal/obs"
)

// Metrics mirrors the campaign's work counters into an obs registry as
// they accumulate, so an operator can watch warm-start efficiency live
// instead of waiting for the end-of-run Result. All handles are nil-safe;
// a nil *Metrics disables instrumentation entirely. Metrics never feed
// back into simulation — verdicts and Result counters are identical with
// or without it (TestObsByteIdentical pins this).
type Metrics struct {
	// Evals counts simulator cell evaluations spent in injection runs;
	// WarmStarts, PrunedRuns, DeltaRestores, and RestoreWallNS mirror the
	// Result counters of the same names.
	Evals         *obs.Counter
	WarmStarts    *obs.Counter
	PrunedRuns    *obs.Counter
	DeltaRestores *obs.Counter
	RestoreWallNS *obs.Counter
	// Tracer receives one "inject" span per RunJobs range, plus a
	// synthetic "restore" span whose duration is the range's cumulative
	// restore wall.
	Tracer *obs.Tracer
	// Chain, when non-nil, receives every record call too. It lets a
	// per-sweep cost sink stack on top of the process-lifetime fleet
	// counters without the call site knowing about either: the executor
	// swaps in a cost Metrics chained to the worker's original one for
	// the duration of a shard.
	Chain *Metrics
}

// NewMetrics registers the inject metric family on r (eagerly, so series
// exist at zero from the first scrape) and returns the handles. A nil
// registry yields a usable all-no-op Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Evals:         r.NewCounter("inject_evals_total", "Simulator cell evaluations spent in injection runs."),
		WarmStarts:    r.NewCounter("inject_warm_starts_total", "Injections resumed from a golden checkpoint instead of t=0."),
		PrunedRuns:    r.NewCounter("inject_pruned_runs_total", "Warm starts terminated early on golden re-convergence."),
		DeltaRestores: r.NewCounter("inject_delta_restores_total", "Warm starts reset via the dirty-set delta path."),
		RestoreWallNS: r.NewCounter("inject_restore_wall_ns_total", "Wall nanoseconds workers spent inside engine restores."),
	}
}

// NewCostMetrics registers the per-sweep cost attribution family on r —
// the same counters NewMetrics mirrors, renamed sweep_cost_* and labeled
// with the sweep's fp12 — and returns the handles. Unlike the fleet
// totals these series exist only while their sweep is being executed on
// this process; they are how a worker's spend is broken down by sweep on
// the federated scrape. A nil registry yields an all-no-op Metrics.
func NewCostMetrics(r *obs.Registry, sweep string) *Metrics {
	return &Metrics{
		Evals:         r.NewCounter("sweep_cost_evals_total", "Simulator cell evaluations attributed to the sweep.", "sweep", sweep),
		WarmStarts:    r.NewCounter("sweep_cost_warm_starts_total", "Warm starts attributed to the sweep.", "sweep", sweep),
		PrunedRuns:    r.NewCounter("sweep_cost_pruned_runs_total", "Pruned runs attributed to the sweep.", "sweep", sweep),
		DeltaRestores: r.NewCounter("sweep_cost_delta_restores_total", "Delta restores attributed to the sweep.", "sweep", sweep),
		RestoreWallNS: r.NewCounter("sweep_cost_restore_wall_ns_total", "Restore wall nanoseconds attributed to the sweep.", "sweep", sweep),
	}
}

// record publishes one RunJobs range's work deltas and spans.
func (m *Metrics) record(began time.Time, start, end int, evals, warm, pruned, deltas uint64, restoreNS int64) {
	if m == nil {
		return
	}
	m.Chain.record(began, start, end, evals, warm, pruned, deltas, restoreNS)
	m.Evals.Add(evals)
	m.WarmStarts.Add(warm)
	m.PrunedRuns.Add(pruned)
	m.DeltaRestores.Add(deltas)
	if restoreNS > 0 {
		m.RestoreWallNS.Add(uint64(restoreNS))
	}
	args := map[string]any{"start": start, "end": end, "evals": evals, "warm_starts": warm}
	m.Tracer.Span("inject", "inject", 0, int64(start), began, args)
	if restoreNS > 0 {
		// Synthetic span: restores are scattered inside the range, so the
		// journal carries one back-dated span whose duration is the range's
		// cumulative restore wall.
		m.Tracer.Span("restore", "inject", 0, int64(start), time.Now().Add(-time.Duration(restoreNS)),
			map[string]any{"restore_wall_ns": restoreNS, "delta_restores": deltas})
	}
}
