package inject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/vcd"
)

// Golden-run artifact codec. EncodeGolden serializes everything the
// golden run produced — the golden signature, the eval count, the
// checkpoint schedule (engine snapshots plus, under CompareVCD, the VCD
// writer states and dump prefix offsets) and the raw golden VCD dump —
// into one versioned blob. NewFromGolden rebuilds a campaign from that
// blob without simulating the golden run, consuming exactly the
// randomness New would, so the resulting campaign's injection plan,
// verdicts and rendered output are bit-identical to a locally built one.
//
// Artifacts are exchanged keyed by campaign fingerprint (a hash over the
// design, plan and options), so a well-behaved peer can never hand us a
// blob for different options; every structural property is nevertheless
// re-validated on decode, and any mismatch is an error the caller turns
// into a local golden build.

const (
	goldenMagic   uint32 = 0x474c4431 // "GLD1"
	goldenVersion byte   = 1

	// maxGoldenLen bounds decoded counts before allocation.
	maxGoldenLen = 1 << 30
)

// EncodeGolden writes the campaign's golden-run artifact to w.
// goldenEvals is the Result.GoldenEvals the golden run reported; it
// travels with the artifact so an adopting process can report the same
// simulation cost accounting.
func (c *Campaign) EncodeGolden(w io.Writer, goldenEvals uint64) error {
	if c.golden == nil {
		return fmt.Errorf("inject: campaign has no golden signature to encode")
	}
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		buf.Write(scratch[:8])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		buf.WriteString(s)
	}
	blob := func(b []byte) {
		uv(uint64(len(b)))
		buf.Write(b)
	}

	binary.LittleEndian.PutUint32(scratch[:4], goldenMagic)
	buf.Write(scratch[:4])
	buf.WriteByte(goldenVersion)
	str(c.flat.Name)
	str(string(c.opts.Engine))
	uv(uint64(c.cycles()))
	uv(uint64(len(c.plan.Monitors)))
	u64(goldenEvals)

	uv(uint64(c.golden.cols))
	blobV := make([]byte, len(c.golden.slab))
	for i, v := range c.golden.slab {
		blobV[i] = byte(v)
	}
	blob(blobV)

	uv(uint64(len(c.ckpts)))
	for i := range c.ckpts {
		gc := &c.ckpts[i]
		uv(uint64(gc.cycle))
		u64(gc.time)
		var ckBuf bytes.Buffer
		if err := sim.EncodeCheckpoint(&ckBuf, gc.ck); err != nil {
			return fmt.Errorf("inject: encode golden checkpoint %d: %w", i, err)
		}
		blob(ckBuf.Bytes())
		if gc.vcdState != nil {
			buf.WriteByte(1)
			var vsBuf bytes.Buffer
			if err := gc.vcdState.Encode(&vsBuf); err != nil {
				return fmt.Errorf("inject: encode golden VCD state %d: %w", i, err)
			}
			blob(vsBuf.Bytes())
			uv(uint64(gc.vcdPrefix))
		} else {
			buf.WriteByte(0)
		}
	}
	blob(c.goldenVCDDump)
	_, err := w.Write(buf.Bytes())
	return err
}

// NewFromGolden prepares a campaign exactly as New does but adopts the
// serialized golden artifact in r instead of simulating the golden run.
// The artifact must have been produced by EncodeGolden on a campaign with
// the same design, plan and options; every structural property is
// validated and a mismatched or corrupt blob is rejected with an error,
// leaving the caller to fall back to New.
func NewFromGolden(f *netlist.Flat, plan *socgen.StimulusPlan, db *fault.DB, opts Options, r io.Reader) (*Campaign, *Result, error) {
	c, res, err := prepare(f, plan, db, opts)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	evals, err := c.adoptGolden(r)
	if err != nil {
		return nil, nil, err
	}
	// GoldenWall is the wall-clock this process spent acquiring the golden
	// state — here the decode, not a simulation. GoldenEvals stays the
	// builder's count: the artifact carries the simulation cost accounting.
	res.GoldenWall = time.Since(start)
	res.GoldenEvals = evals
	return c, res, nil
}

// adoptGolden decodes and validates a golden artifact into c, returning
// the builder's golden eval count.
func (c *Campaign) adoptGolden(r io.Reader) (uint64, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("inject: read golden artifact: %w", err)
	}
	d := &goldenDecoder{raw: raw}
	if m := d.u32(); d.err == nil && m != goldenMagic {
		return 0, fmt.Errorf("inject: golden artifact has bad magic %#x", m)
	}
	if v := d.byte(); d.err == nil && v != goldenVersion {
		return 0, fmt.Errorf("inject: unsupported golden artifact version %d", v)
	}
	design := d.str()
	engine := d.str()
	cycles := d.count("cycles")
	monitors := d.count("monitors")
	evals := d.u64()
	if d.err != nil {
		return 0, d.err
	}
	if design != c.flat.Name {
		return 0, fmt.Errorf("inject: golden artifact is for design %q, want %q", design, c.flat.Name)
	}
	if engine != string(c.opts.Engine) {
		return 0, fmt.Errorf("inject: golden artifact is for engine %q, want %q", engine, c.opts.Engine)
	}
	if cycles != c.cycles() || monitors != len(c.plan.Monitors) {
		return 0, fmt.Errorf("inject: golden artifact shape (%d cycles, %d monitors) does not match plan (%d, %d)",
			cycles, monitors, c.cycles(), len(c.plan.Monitors))
	}

	cols := d.count("signature cols")
	slab := d.blob("signature slab")
	if d.err != nil {
		return 0, d.err
	}
	if cols != len(c.plan.Monitors) || len(slab) != cols*(c.cycles()-1) {
		return 0, fmt.Errorf("inject: golden signature shape %dx%d does not match plan", cols, len(slab))
	}
	sig := &signature{cols: cols, slab: make([]logic.V, len(slab))}
	for i, b := range slab {
		if logic.V(b) > logic.Z {
			return 0, fmt.Errorf("inject: golden signature has invalid logic value %d", b)
		}
		sig.slab[i] = logic.V(b)
	}

	nCk := d.count("checkpoints")
	if d.err != nil {
		return 0, d.err
	}
	wantCycles := []int{}
	if c.warmStartEnabled() {
		wantCycles = c.checkpointCycles()
	}
	if nCk != len(wantCycles) {
		return 0, fmt.Errorf("inject: golden artifact has %d checkpoints, schedule wants %d", nCk, len(wantCycles))
	}
	needVCD := c.opts.CompareVCD && c.warmStartEnabled()
	ckpts := make([]goldenCheckpoint, nCk)
	for i := range ckpts {
		gc := &ckpts[i]
		gc.cycle = d.count("checkpoint cycle")
		gc.time = d.u64()
		ckBlob := d.blob("checkpoint")
		if d.err != nil {
			return 0, d.err
		}
		if gc.cycle != wantCycles[i] {
			return 0, fmt.Errorf("inject: golden checkpoint %d is at cycle %d, schedule wants %d", i, gc.cycle, wantCycles[i])
		}
		if want := uint64(gc.cycle)*c.plan.PeriodPS + 1; gc.time != want {
			return 0, fmt.Errorf("inject: golden checkpoint %d time %d, want %d", i, gc.time, want)
		}
		ck, err := sim.DecodeCheckpoint(bytes.NewReader(ckBlob))
		if err != nil {
			return 0, fmt.Errorf("inject: golden checkpoint %d: %w", i, err)
		}
		if err := ck.CheckDesign(c.flat); err != nil {
			return 0, fmt.Errorf("inject: golden checkpoint %d: %w", i, err)
		}
		if ck.Kind != c.opts.Engine || ck.TimePS != gc.time {
			return 0, fmt.Errorf("inject: golden checkpoint %d header does not match schedule", i)
		}
		gc.ck = ck
		hasVCD := d.byte()
		if d.err != nil {
			return 0, d.err
		}
		switch hasVCD {
		case 0:
			if needVCD {
				return 0, fmt.Errorf("inject: golden checkpoint %d lacks the VCD state CompareVCD needs", i)
			}
		case 1:
			vsBlob := d.blob("vcd state")
			prefix := d.count("vcd prefix")
			if d.err != nil {
				return 0, d.err
			}
			st, err := vcd.DecodeWriterState(bytes.NewReader(vsBlob))
			if err != nil {
				return 0, fmt.Errorf("inject: golden checkpoint %d: %w", i, err)
			}
			gc.vcdState = st
			gc.vcdPrefix = prefix
		default:
			return 0, fmt.Errorf("inject: golden checkpoint %d has invalid VCD flag %d", i, hasVCD)
		}
	}
	dump := d.blob("vcd dump")
	if d.err != nil {
		return 0, d.err
	}
	if d.off != len(d.raw) {
		return 0, fmt.Errorf("inject: golden artifact has %d trailing bytes", len(d.raw)-d.off)
	}
	if needVCD {
		if len(dump) == 0 {
			return 0, fmt.Errorf("inject: golden artifact lacks the VCD dump CompareVCD needs")
		}
		for i := range ckpts {
			if ckpts[i].vcdPrefix > len(dump) {
				return 0, fmt.Errorf("inject: golden checkpoint %d VCD prefix %d exceeds dump length %d",
					i, ckpts[i].vcdPrefix, len(dump))
			}
		}
		tr, err := vcd.Parse(bytes.NewReader(dump))
		if err != nil {
			return 0, fmt.Errorf("inject: golden artifact VCD dump: %w", err)
		}
		c.goldenVCDDump = dump
		c.goldenVCD = tr
		c.goldenVCDRows = c.traceRows(tr)
	}
	if len(ckpts) > 0 {
		shared := make([]*sim.Checkpoint, len(ckpts))
		for i := range ckpts {
			shared[i] = ckpts[i].ck
		}
		sim.ShareTails(shared)
	}
	c.ckpts = ckpts
	c.golden = sig
	return evals, nil
}

// goldenDecoder walks the flat golden-artifact byte layout, latching the
// first error.
type goldenDecoder struct {
	raw []byte
	off int
	err error
}

func (d *goldenDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *goldenDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.raw) {
		d.fail(fmt.Errorf("inject: truncated golden artifact"))
		return nil
	}
	b := d.raw[d.off : d.off+n]
	d.off += n
	return b
}

func (d *goldenDecoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *goldenDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *goldenDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *goldenDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.raw[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("inject: truncated golden artifact"))
		return 0
	}
	d.off += n
	return v
}

func (d *goldenDecoder) count(what string) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxGoldenLen {
		d.fail(fmt.Errorf("inject: golden artifact %s count %d exceeds limit", what, v))
		return 0
	}
	return int(v)
}

func (d *goldenDecoder) str() string {
	n := d.count("string")
	return string(d.take(n))
}

func (d *goldenDecoder) blob(what string) []byte {
	n := d.count(what)
	return d.take(n)
}
