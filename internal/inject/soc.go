package inject

import (
	"bytes"
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/socgen"
)

// SoCRun bundles everything a Table I campaign needs for one benchmark.
type SoCRun struct {
	Config   socgen.Config
	Flat     *netlist.Flat
	Plan     *socgen.StimulusPlan
	Campaign *Campaign
	Result   *Result
}

// WorkloadCycles is the default number of bus cycles each campaign
// simulates per run.
const WorkloadCycles = 32

// PrepareSoC generates the benchmark netlist, builds the workload stimulus
// and readies a campaign with the benchmark's representation weights.
func PrepareSoC(cfg socgen.Config, prog riscv.Program, db *fault.DB, opts Options) (*SoCRun, error) {
	d, err := socgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		return nil, err
	}
	wl, err := socgen.RunWorkload(prog, WorkloadCycles)
	if err != nil {
		return nil, err
	}
	plan, err := socgen.BuildStimulus(f, wl)
	if err != nil {
		return nil, err
	}
	if opts.CellWeight == nil {
		opts.CellWeight = socgen.Weights(cfg)
	}
	camp, res, err := New(f, plan, db, opts)
	if err != nil {
		return nil, fmt.Errorf("inject: SoC%d: %v", cfg.Index, err)
	}
	return &SoCRun{Config: cfg, Flat: f, Plan: plan, Campaign: camp, Result: res}, nil
}

// PrepareSoCFromGolden is PrepareSoC with the golden run adopted from a
// serialized artifact (see EncodeGolden) instead of simulated: same
// netlist generation, stimulus and validation, but the campaign decodes
// the golden signature, eval count and checkpoint schedule from blob.
// A mismatched or corrupt blob is an error; callers fall back to
// PrepareSoC, which is always correct.
func PrepareSoCFromGolden(cfg socgen.Config, prog riscv.Program, db *fault.DB, opts Options, blob []byte) (*SoCRun, error) {
	d, err := socgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		return nil, err
	}
	wl, err := socgen.RunWorkload(prog, WorkloadCycles)
	if err != nil {
		return nil, err
	}
	plan, err := socgen.BuildStimulus(f, wl)
	if err != nil {
		return nil, err
	}
	if opts.CellWeight == nil {
		opts.CellWeight = socgen.Weights(cfg)
	}
	camp, res, err := NewFromGolden(f, plan, db, opts, bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("inject: SoC%d: %v", cfg.Index, err)
	}
	return &SoCRun{Config: cfg, Flat: f, Plan: plan, Campaign: camp, Result: res}, nil
}

// RunSoC prepares and executes a full campaign on one Table I benchmark.
func RunSoC(cfg socgen.Config, prog riscv.Program, db *fault.DB, opts Options) (*SoCRun, error) {
	run, err := PrepareSoC(cfg, prog, db, opts)
	if err != nil {
		return nil, err
	}
	if err := run.Campaign.Run(run.Result); err != nil {
		return nil, err
	}
	return run, nil
}
