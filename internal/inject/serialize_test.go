package inject

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	run := prep(t, 1, testOptions())
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Result.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := run.Result
	if got.Design != r.Design || got.Engine != r.Engine {
		t.Errorf("identity fields lost: %s/%s", got.Design, got.Engine)
	}
	if got.ChipSER != r.ChipSER {
		t.Errorf("chip SER %v -> %v", r.ChipSER, got.ChipSER)
	}
	if len(got.Injections) != len(r.Injections) {
		t.Fatalf("injections %d -> %d", len(r.Injections), len(got.Injections))
	}
	for i := range got.Injections {
		a, b := r.Injections[i], got.Injections[i]
		if a.CellID != b.CellID || a.Kind != b.Kind || a.SoftError != b.SoftError || a.TimePS != b.TimePS {
			t.Errorf("injection %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(got.Clusters) != len(r.Clusters) {
		t.Fatalf("clusters %d -> %d", len(r.Clusters), len(got.Clusters))
	}
	for i := range got.Clusters {
		if got.Clusters[i].SER != r.Clusters[i].SER {
			t.Errorf("cluster %d SER differs", i)
		}
	}
	if len(got.Modules) != len(r.Modules) {
		t.Fatalf("modules %d -> %d", len(r.Modules), len(got.Modules))
	}
	for name, m := range r.Modules {
		gm, ok := got.Modules[name]
		if !ok {
			t.Fatalf("module %s lost", name)
		}
		if gm.SERPercent != m.SERPercent || gm.Lambda != m.Lambda {
			t.Errorf("module %s stats differ", name)
		}
	}
	// Labels must be recomputable from the loaded result.
	labels := got.LabelCellsRefined(got.ChipSER)
	origLabels := r.LabelCellsRefined(r.ChipSER)
	if len(labels) != len(origLabels) {
		t.Fatal("label vector length differs after round trip")
	}
	for i := range labels {
		if labels[i] != origLabels[i] {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
	if got.GoldenWall != r.GoldenWall || got.InjectWall != r.InjectWall {
		t.Error("wall-clock fields lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Error("unknown schema version must fail")
	}
}
