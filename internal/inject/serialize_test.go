package inject

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	run := prep(t, 1, testOptions())
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Result.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := run.Result
	if got.Design != r.Design || got.Engine != r.Engine {
		t.Errorf("identity fields lost: %s/%s", got.Design, got.Engine)
	}
	if got.ChipSER != r.ChipSER {
		t.Errorf("chip SER %v -> %v", r.ChipSER, got.ChipSER)
	}
	if len(got.Injections) != len(r.Injections) {
		t.Fatalf("injections %d -> %d", len(r.Injections), len(got.Injections))
	}
	for i := range got.Injections {
		a, b := r.Injections[i], got.Injections[i]
		if a.CellID != b.CellID || a.Kind != b.Kind || a.SoftError != b.SoftError || a.TimePS != b.TimePS {
			t.Errorf("injection %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(got.Clusters) != len(r.Clusters) {
		t.Fatalf("clusters %d -> %d", len(r.Clusters), len(got.Clusters))
	}
	for i := range got.Clusters {
		if got.Clusters[i].SER != r.Clusters[i].SER {
			t.Errorf("cluster %d SER differs", i)
		}
	}
	if len(got.Modules) != len(r.Modules) {
		t.Fatalf("modules %d -> %d", len(r.Modules), len(got.Modules))
	}
	for name, m := range r.Modules {
		gm, ok := got.Modules[name]
		if !ok {
			t.Fatalf("module %s lost", name)
		}
		if gm.SERPercent != m.SERPercent || gm.Lambda != m.Lambda {
			t.Errorf("module %s stats differ", name)
		}
	}
	// Labels must be recomputable from the loaded result.
	labels := got.LabelCellsRefined(got.ChipSER)
	origLabels := r.LabelCellsRefined(r.ChipSER)
	if len(labels) != len(origLabels) {
		t.Fatal("label vector length differs after round trip")
	}
	for i := range labels {
		if labels[i] != origLabels[i] {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
	if got.GoldenWall != r.GoldenWall || got.InjectWall != r.InjectWall {
		t.Error("wall-clock fields lost")
	}
	// The warm-start work stats must survive the round trip — and the
	// campaign above must actually have produced some, or this pin is
	// vacuous.
	if r.WarmStarts == 0 || r.PrunedRuns == 0 {
		t.Fatalf("warm campaign reported no warm-start work (warm=%d pruned=%d); the round-trip pin needs a live value",
			r.WarmStarts, r.PrunedRuns)
	}
	if got.WarmStarts != r.WarmStarts {
		t.Errorf("warm_starts %d -> %d", r.WarmStarts, got.WarmStarts)
	}
	if got.PrunedRuns != r.PrunedRuns {
		t.Errorf("pruned_runs %d -> %d", r.PrunedRuns, got.PrunedRuns)
	}
	if r.DeltaRestores == 0 {
		t.Fatal("batched warm campaign performed no delta restores; the round-trip pin needs a live value")
	}
	if got.DeltaRestores != r.DeltaRestores {
		t.Errorf("delta_restores %d -> %d", r.DeltaRestores, got.DeltaRestores)
	}
	if got.RestoreWall != r.RestoreWall {
		t.Errorf("restore_wall_ns %d -> %d", r.RestoreWall, got.RestoreWall)
	}
	if got.GoldenEvals != r.GoldenEvals || got.InjectEvals != r.InjectEvals {
		t.Errorf("eval counters lost: golden %d -> %d, inject %d -> %d",
			r.GoldenEvals, got.GoldenEvals, r.InjectEvals, got.InjectEvals)
	}
	if got.Options.CheckpointEveryCycles != r.Options.CheckpointEveryCycles || got.Options.ColdStart != r.Options.ColdStart {
		t.Error("checkpoint options lost")
	}
}

// TestColdResultJSONRoundTrip pins the zero-valued warm-start fields of a
// cold campaign: `omitempty` must read back as zeros, not garbage.
func TestColdResultJSONRoundTrip(t *testing.T) {
	opts := testOptions()
	opts.ColdStart = true
	run := prep(t, 1, opts)
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Result.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmStarts != 0 || got.PrunedRuns != 0 {
		t.Errorf("cold campaign round-tripped warm stats %d/%d, want 0/0", got.WarmStarts, got.PrunedRuns)
	}
	if !got.Options.ColdStart {
		t.Error("cold_start flag lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Error("unknown schema version must fail")
	}
}
