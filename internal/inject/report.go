package inject

import (
	"fmt"
	"sort"
	"strings"
)

// LabelCells derives the per-cell sensitivity labels the SVM trains on,
// following the paper's rule: clusters are ranked by sampled soft-error
// probability, and every circuit node inside an above-threshold cluster is
// labeled highly sensitive. threshold is an absolute cluster-SER cutoff;
// pass r.ChipSER to use "above chip average", the default rule. A cluster
// verdict additionally requires at least two observed soft errors, so a
// single lucky hit cannot blanket-label hundreds of nodes — the
// corroboration requirement that keeps labels stable across campaign seeds.
func (r *Result) LabelCells(threshold float64) []bool {
	sensitiveCluster := make([]bool, len(r.Clusters))
	for i, cs := range r.Clusters {
		sensitiveCluster[i] = cs.SER > threshold && cs.SoftErrors >= 2
	}
	labels := make([]bool, len(r.ClusterOf))
	for cellID, ci := range r.ClusterOf {
		labels[cellID] = sensitiveCluster[ci]
	}
	return labels
}

// LabelCellsRefined derives per-cell labels with the sampled cells'
// individual outcomes overriding their cluster verdict: a sampled node is
// highly sensitive exactly when its own injection manifested, while
// unsampled nodes inherit the cluster rule of LabelCells. This is the
// "manual classification rule" the paper applies to the node list before
// SVM training, and it is what keeps the learning problem non-trivial —
// clusters alone are perfectly recoverable from hierarchy features.
func (r *Result) LabelCellsRefined(threshold float64) []bool {
	labels := r.LabelCells(threshold)
	for _, inj := range r.Injections {
		labels[inj.CellID] = inj.SoftError
	}
	return labels
}

// ClustersBySER returns cluster indices sorted by ascending sampled SER,
// the ordering step of the paper's sensitive-node extraction.
func (r *Result) ClustersBySER() []int {
	idx := make([]int, len(r.Clusters))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Clusters[idx[a]].SER < r.Clusters[idx[b]].SER
	})
	return idx
}

// ModuleNames returns the report's module names in a fixed order.
func (r *Result) ModuleNames() []string {
	names := make([]string, 0, len(r.Modules))
	for n := range r.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SoftErrorCount returns the total observed soft errors.
func (r *Result) SoftErrorCount() int {
	n := 0
	for _, inj := range r.Injections {
		if inj.SoftError {
			n++
		}
	}
	return n
}

// String renders a human-readable campaign report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign %s on %s: %d injections, %d soft errors, chip SER %.4f\n",
		r.Engine, r.Design, len(r.Injections), r.SoftErrorCount(), r.ChipSER)
	fmt.Fprintf(&sb, "  golden %v (%d evals), injections %v (%d evals)\n",
		r.GoldenWall, r.GoldenEvals, r.InjectWall, r.InjectEvals)
	if r.WarmStarts > 0 {
		fmt.Fprintf(&sb, "  warm starts %d/%d, %d runs pruned by convergence, %d delta restores (%v restore wall)\n",
			r.WarmStarts, len(r.Injections), r.PrunedRuns, r.DeltaRestores, r.RestoreWall)
	}
	fmt.Fprintf(&sb, "  SET xsect %.3e cm²  SEU xsect %.3e cm²\n", r.SETXsect, r.SEUXsect)
	for _, name := range r.ModuleNames() {
		m := r.Modules[name]
		fmt.Fprintf(&sb, "  module %-10s cells=%-5d sampled=%-4d manifest=%.3f lambda=%.4f SER=%.4f%%\n",
			m.Name, m.Cells, m.Sampled, m.Manifest, m.Lambda, m.SERPercent)
	}
	for _, cs := range r.Clusters {
		fmt.Fprintf(&sb, "  cluster %-3d cells=%-5d sampled=%-4d errors=%-3d SER=%.3f\n",
			cs.Index, cs.Cells, cs.Sampled, cs.SoftErrors, cs.SER)
	}
	return sb.String()
}
