// Package inject implements the paper's fault-injection campaign: cluster
// the netlist cells (Algorithm 1), draw an equal-proportion sample from
// every cluster, inject one single-particle fault per sampled cell at a
// random time through the VPI layer (SEU state flips for storage cells, SET
// pulses for combinational outputs, per the Fig. 2 models), simulate, and
// classify the run as a soft error when the main outputs diverge from the
// golden run. Cluster and chip soft-error rates follow Eq. 2; module-level
// exposure rates use the soft-error database and the representation weights
// of the scaled platform.
//
// The campaign exploits a structural property of the workload: every fault
// strikes after cycle 3, so the prefix of every faulty run is bit-identical
// to the golden run. During the golden run the campaign snapshots engine
// checkpoints — by default at the strike-time quantiles of the already
// drawn injection plan, so the average restore→strike tail is as short as
// the checkpoint budget allows; each injection then warm-starts from the
// latest checkpoint at or before its strike time and simulates only the
// post-strike tail, with early exit as soon as the verdict is decided
// (first diverging output row, or full state re-convergence onto the
// golden trajectory). Each worker's injections are strike-sorted so
// consecutive runs share a restore point and reset their engine through
// sim.Engine.RestoreDelta — a dirty-set rewrite instead of a wholesale
// copy. See DESIGN.md.
package inject

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/vcd"
	"repro/internal/vpi"
	"repro/internal/xrand"
)

// DefaultCheckpointEveryCycles is the golden-run checkpoint pitch used when
// Options.CheckpointEveryCycles is zero: dense enough that the average
// re-simulated prefix is under one cycle and convergence is probed every
// other cycle, while a 30-odd-cycle workload still only keeps ~17 snapshots.
const DefaultCheckpointEveryCycles = 2

// Checkpoint placement policies (Options.CheckpointPlacement).
const (
	// PlacementFixed snapshots every CheckpointEveryCycles-th cycle,
	// regardless of where the drawn plan actually strikes.
	PlacementFixed = "fixed"
	// PlacementQuantile spends the same checkpoint budget the fixed pitch
	// would use, but places the snapshots at the strike-time quantiles of
	// the drawn injection plan, concentrating restore points where strikes
	// concentrate. The schedule is adaptive but never worse: when the
	// quantile layout would lengthen the average restore→strike tail (e.g.
	// strikes uniform enough that the fixed grid is already optimal), the
	// fixed schedule is kept. Placement changes how much tail each
	// injection re-simulates, never any verdict.
	PlacementQuantile = "quantile"
)

// Options configures a campaign.
type Options struct {
	Engine sim.EngineKind
	// LET of the simulated heavy-ion environment (MeV·cm²/mg).
	LET float64
	// Flux in particles/cm²/s.
	Flux float64
	// ExposureS is the real exposure window the simulated run stands for,
	// in seconds. It calibrates upset-per-cell probabilities.
	ExposureS float64
	// KN and LN are Algorithm 1's cluster count and layer depth.
	KN, LN int
	// SampleFrac and MinPerCluster control equal-proportion sampling.
	SampleFrac    float64
	MinPerCluster int
	// Seed drives the campaign's sampling and strike-time choices.
	Seed uint64
	// ClusterSeed drives Algorithm 1's initial center selection. Zero
	// derives it from the design name, so the clustering of a given
	// netlist is identical across campaigns — the paper clusters the
	// netlist once and then runs fault injection under varying conditions.
	ClusterSeed uint64
	// CellWeight returns the representation weight of a cell (physical
	// elements per simulated cell); nil means weight 1.
	CellWeight func(c *netlist.FlatCell) float64
	// ModuleOf groups cells into report modules; nil uses socgen.ModuleOf.
	ModuleOf func(c *netlist.FlatCell) string
	// CompareVCD switches the soft-error detector from the fast cycle
	// signature to a full VCD diff (the paper's method); both yield the
	// same verdicts, which TestSignatureMatchesVCD verifies. The golden
	// trace is dumped once during the golden run; warm-started injections
	// diff their restored tail incrementally against the golden trace
	// suffix, so the VCD detector warm-starts like the signature detector
	// does. ColdStart restores the replay-and-diff-full-traces oracle.
	CompareVCD bool
	// Workers is the number of concurrent injection simulations. Fault
	// runs are independent, and all random choices are drawn before the
	// fan-out, so any worker count produces identical results. 0 uses
	// GOMAXPROCS.
	Workers int
	// CheckpointEveryCycles is the clock-cycle pitch of the golden-run
	// checkpoint schedule that injection runs warm-start from. 0 uses
	// DefaultCheckpointEveryCycles; the verdicts are bit-identical for any
	// pitch, only the amount of re-simulated prefix changes. Under quantile
	// placement the pitch defines the checkpoint budget (how many snapshots
	// the fixed grid would have held), not the snapshot positions.
	CheckpointEveryCycles int
	// CheckpointPlacement chooses where the checkpoint budget is spent:
	// PlacementFixed or PlacementQuantile. Empty means PlacementQuantile.
	// Verdicts are bit-identical for any placement.
	CheckpointPlacement string
	// ColdStart disables checkpointing and warm starts entirely, restoring
	// the replay-from-t=0 behaviour; campaign results are bit-identical
	// either way (the warm-vs-cold regression tests rely on this switch).
	ColdStart bool
	// Metrics, when non-nil, mirrors the campaign's work counters into an
	// obs registry as RunJobs ranges finish. Pure observation: excluded
	// from fingerprints and serialization, never consulted by simulation.
	Metrics *Metrics `json:"-"`
}

// DefaultOptions returns the options used throughout the paper
// reproduction: LET 37, flux 5e8, EventSim, 25% sampling.
func DefaultOptions() Options {
	return Options{
		Engine:        sim.KindEvent,
		LET:           37.0,
		Flux:          5e8,
		ExposureS:     4e-10,
		KN:            5,
		LN:            4,
		SampleFrac:    0.25,
		MinPerCluster: 3,
		Seed:          1,
	}
}

// Injection records one fault injection and its outcome. The JSON tags
// are the wire form shard partials travel in (runstore journal lines and
// campaignd result posts); the audit-grade result schema in serialize.go
// additionally renders Kind symbolically.
type Injection struct {
	CellID    int        `json:"cell_id"`
	Path      string     `json:"path"`
	Kind      fault.Kind `json:"kind"`
	TimePS    uint64     `json:"time_ps"`
	PulsePS   uint64     `json:"pulse_ps,omitempty"` // SET only
	Cluster   int        `json:"cluster"`
	SoftError bool       `json:"soft_error"`
}

// Job is one planned injection: the sampled cell, its cluster, and the
// pre-drawn strike time. The whole campaign plan is drawn before any
// worker or shard fan-out, so distributing a campaign is a pure split of
// the job index range — every shard rebuilds the identical plan from the
// campaign seed and executes a disjoint [start,end) slice of it.
type Job struct {
	CellID  int    `json:"cell_id"`
	Cluster int    `json:"cluster"`
	TimePS  uint64 `json:"time_ps"`
}

// ClusterStats aggregates one cluster's campaign outcome.
type ClusterStats struct {
	Index      int
	Cells      int
	Sampled    int
	SoftErrors int
	// SER is the sampled soft-error ratio of the cluster (Eq. 2 operand).
	SER float64
}

// ModuleStats aggregates a functional module (Memory / Bus / CPU Logic).
type ModuleStats struct {
	Name       string
	Cells      int
	Sampled    int
	SoftErrors int
	// Manifest is the sampled probability that an upset in the module
	// produces an output error.
	Manifest float64
	// Lambda is the expected number of physical upsets in the module over
	// the exposure window (flux · Σ σ·w · T).
	Lambda float64
	// SER is the module soft-error probability over the window:
	// 1 - exp(-Manifest·Lambda), in percent.
	SERPercent float64
}

// Result is the full campaign outcome.
type Result struct {
	Design     string
	Engine     string
	Options    Options
	Clusters   []ClusterStats
	Modules    map[string]*ModuleStats
	Injections []Injection
	// ChipSER is Eq. 2: Σ CellN_i·SER_i / Σ CellN_i.
	ChipSER float64
	// SETXsect and SEUXsect are the chip's total weighted cross-sections
	// (cm²) split by fault kind — Table I's last two columns.
	SETXsect, SEUXsect float64
	// ClusterOf maps every cell ID to its cluster.
	ClusterOf []int
	// GoldenWall and InjectWall are wall-clock durations (Table III).
	GoldenWall, InjectWall time.Duration
	// GoldenEvals and InjectEvals count simulator cell evaluations.
	GoldenEvals, InjectEvals uint64
	// WarmStarts counts injections that resumed from a golden checkpoint
	// instead of replaying from t=0; PrunedRuns counts the subset that
	// additionally terminated early because the faulty state re-converged
	// onto the golden trajectory. Work metrics only — verdicts are
	// bit-identical with or without warm starts.
	WarmStarts, PrunedRuns uint64
	// DeltaRestores counts warm starts that reset their engine through the
	// dirty-set delta path (consecutive strike-sorted injections sharing a
	// restore point) instead of a wholesale checkpoint copy; RestoreWall is
	// the total wall-clock the workers spent inside restores. Work metrics
	// only, like WarmStarts.
	DeltaRestores uint64
	RestoreWall   time.Duration
}

// Campaign holds the prepared state for running injections on one design.
type Campaign struct {
	flat *netlist.Flat
	plan *socgen.StimulusPlan
	opts Options
	db   *fault.DB

	clusters *cluster.Result
	golden   *signature
	// goldenVCD is the parsed golden trace of the CompareVCD detector;
	// goldenVCDRows is its value at every sampling instant (the golden
	// trace suffix warm VCD runs diff against, row k-2 = cycle k), and
	// goldenVCDDump holds the raw golden dump bytes whose per-checkpoint
	// prefixes faulty tail dumps are stitched onto.
	goldenVCD     *vcd.Trace
	goldenVCDRows *signature
	goldenVCDDump []byte
	rng           *xrand.RNG
	jobs          []Job
	jobsDrawn     bool

	// ckpts is the golden-run checkpoint schedule, ascending in time;
	// read-only after New, shared by all workers.
	ckpts         []goldenCheckpoint
	warmStarts    atomic.Uint64
	prunedRuns    atomic.Uint64
	deltaRestores atomic.Uint64
	restoreWallNS atomic.Int64
}

// SetMetrics swaps the campaign's metrics sink. Metrics never feed back
// into simulation, so swapping sinks between runs cannot change any
// verdict; callers must not swap while a run is in flight
// (shard.Executor serializes execution and swaps around each shard).
func (c *Campaign) SetMetrics(m *Metrics) { c.opts.Metrics = m }

// Metrics returns the campaign's current metrics sink (possibly nil).
func (c *Campaign) Metrics() *Metrics { return c.opts.Metrics }

// goldenCheckpoint is one snapshot of the golden run: the engine state at
// the start of clock cycle `cycle` (just after its rising edge). Under
// CompareVCD it additionally carries the golden VCD writer's dump state at
// the same instant, so a restored run can resume dumping mid-trace.
type goldenCheckpoint struct {
	cycle int
	time  uint64
	ck    *sim.Checkpoint

	vcdState  *vcd.WriterState
	vcdPrefix int // golden dump bytes emitted up to this checkpoint
}

// New prepares a campaign: validates options, clusters the cells, and
// captures the golden signature plus the checkpoint schedule injections
// warm-start from.
func New(f *netlist.Flat, plan *socgen.StimulusPlan, db *fault.DB, opts Options) (*Campaign, *Result, error) {
	c, res, err := prepare(f, plan, db, opts)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	golden, evals, err := c.runGolden()
	if err != nil {
		return nil, nil, fmt.Errorf("inject: golden run: %v", err)
	}
	res.GoldenWall = time.Since(start)
	res.GoldenEvals = evals
	c.golden = golden
	return c, res, nil
}

// prepare performs everything New does short of the golden run itself:
// option validation, clustering, RNG seeding, and — under quantile
// checkpoint placement — drawing the injection plan. It is shared by New
// and NewFromGolden so a campaign adopting a serialized golden artifact
// consumes exactly the same randomness, in the same order, as one that
// simulates the golden run locally.
func prepare(f *netlist.Flat, plan *socgen.StimulusPlan, db *fault.DB, opts Options) (*Campaign, *Result, error) {
	if opts.KN < 1 || opts.LN < 1 {
		return nil, nil, fmt.Errorf("inject: KN/LN must be positive")
	}
	if opts.SampleFrac <= 0 || opts.SampleFrac > 1 {
		return nil, nil, fmt.Errorf("inject: SampleFrac %g out of (0,1]", opts.SampleFrac)
	}
	if opts.Flux < 0 || opts.ExposureS < 0 {
		return nil, nil, fmt.Errorf("inject: negative flux or exposure")
	}
	if opts.CheckpointEveryCycles < 0 {
		return nil, nil, fmt.Errorf("inject: CheckpointEveryCycles %d must be >= 0", opts.CheckpointEveryCycles)
	}
	switch opts.CheckpointPlacement {
	case "", PlacementFixed, PlacementQuantile:
	default:
		return nil, nil, fmt.Errorf("inject: unknown CheckpointPlacement %q (want %s or %s)",
			opts.CheckpointPlacement, PlacementFixed, PlacementQuantile)
	}
	if opts.ModuleOf == nil {
		opts.ModuleOf = socgen.ModuleOf
	}
	if opts.CellWeight == nil {
		opts.CellWeight = func(*netlist.FlatCell) float64 { return 1 }
	}
	rng := xrand.New(opts.Seed)
	clusterSeed := opts.ClusterSeed
	if clusterSeed == 0 {
		// Stable per-design default: clustering reflects the netlist's
		// structure, not the campaign's stochastic choices.
		clusterSeed = 0xcbf29ce484222325
		for _, b := range []byte(f.Name) {
			clusterSeed = (clusterSeed ^ uint64(b)) * 0x100000001b3
		}
	}
	cl, err := cluster.ClusterCells(f, opts.KN, opts.LN, xrand.New(clusterSeed))
	if err != nil {
		return nil, nil, err
	}
	c := &Campaign{flat: f, plan: plan, opts: opts, db: db, clusters: cl, rng: rng}

	res := &Result{
		Design:    f.Name,
		Engine:    string(opts.Engine),
		Options:   opts,
		Modules:   map[string]*ModuleStats{},
		ClusterOf: cl.Assign,
	}
	if c.warmStartEnabled() && c.placement() == PlacementQuantile {
		// Quantile placement positions the golden checkpoints at the strike
		// times of the plan, so the plan must exist before the golden run.
		// Drawing order does not perturb the plan: the golden run consumes
		// no campaign randomness, which is also why every placement and
		// pitch yields the identical plan (and identical verdicts).
		c.DrawJobs()
	}
	return c, res, nil
}

// signature is the cycle-sampled value matrix of the monitored outputs:
// one row per clock cycle, sampled just before each rising edge. Rows are
// backed by a single flat slab so a whole run's signature is one
// allocation and comparisons are a single linear scan.
type signature struct {
	cols int
	slab []logic.V
}

// newSignature returns a signature with capacity for rows full rows.
func newSignature(cols, rows int) *signature {
	if rows < 0 {
		rows = 0
	}
	return &signature{cols: cols, slab: make([]logic.V, 0, cols*rows)}
}

// addRow extends the signature by one row and returns it for filling.
func (s *signature) addRow() []logic.V {
	n := len(s.slab)
	if cap(s.slab) >= n+s.cols {
		s.slab = s.slab[:n+s.cols]
	} else {
		grown := make([]logic.V, n+s.cols, 2*(n+s.cols))
		copy(grown, s.slab)
		s.slab = grown
	}
	return s.slab[n : n+s.cols]
}

// rows reports the number of complete rows captured.
func (s *signature) rows() int {
	if s.cols == 0 {
		return 0
	}
	return len(s.slab) / s.cols
}

// row returns row i without copying.
func (s *signature) row(i int) []logic.V {
	return s.slab[i*s.cols : (i+1)*s.cols]
}

// equal reports whether two signatures match, bailing on the first
// differing sample.
func (s *signature) equal(o *signature) bool {
	if s.cols != o.cols || len(s.slab) != len(o.slab) {
		return false
	}
	for i := range s.slab {
		if s.slab[i] != o.slab[i] {
			return false
		}
	}
	return true
}

// faultAction schedules the fault during a run; nil means golden.
type faultAction func(v *vpi.Interface) error

// cycles is the number of clock cycles in the workload plan.
func (c *Campaign) cycles() int { return int(c.plan.DurationPS / c.plan.PeriodPS) }

// sampleTime is the pre-edge instant cycle k's outputs are captured at.
func (c *Campaign) sampleTime(k int) uint64 { return uint64(k)*c.plan.PeriodPS - 20 }

// scheduleSignature registers pre-edge output sampling for cycles
// fromCycle..cycles into sig.
func (c *Campaign) scheduleSignature(eng sim.Engine, sig *signature, fromCycle int) {
	for k := fromCycle; k <= c.cycles(); k++ {
		eng.At(c.sampleTime(k), func() {
			row := sig.addRow()
			for i, nid := range c.plan.Monitors {
				row[i] = eng.Value(nid)
			}
		})
	}
}

// checkpointInterval resolves the configured checkpoint pitch.
func (c *Campaign) checkpointInterval() int {
	if c.opts.CheckpointEveryCycles == 0 {
		return DefaultCheckpointEveryCycles
	}
	return c.opts.CheckpointEveryCycles
}

// placement resolves the configured checkpoint placement policy.
func (c *Campaign) placement() string {
	if c.opts.CheckpointPlacement == "" {
		return PlacementQuantile
	}
	return c.opts.CheckpointPlacement
}

// warmStartEnabled reports whether injections run from golden checkpoints.
// Only ColdStart forces the legacy replay-from-zero behaviour; the VCD
// detector warm-starts too, diffing restored tails against the golden
// trace suffix.
func (c *Campaign) warmStartEnabled() bool {
	return !c.opts.ColdStart
}

// fixedCheckpointCycles is the fixed-pitch checkpoint grid: every
// interval-th cycle whose snapshot instant leaves at least one full cycle
// of plan to resume into. Its length is the checkpoint budget quantile
// placement is allowed to spend.
func (c *Campaign) fixedCheckpointCycles() []int {
	period := c.plan.PeriodPS
	var fixed []int
	for k := c.checkpointInterval(); uint64(k+1)*period <= c.plan.DurationPS; k += c.checkpointInterval() {
		fixed = append(fixed, k)
	}
	return fixed
}

// restoreTailSum is the total restore→strike distance the schedule leaves:
// for every strike, the picoseconds separating it from the latest
// checkpoint instant at or before it (or from t=0 when it precedes the
// whole schedule). The quantile placer minimizes this; the property test
// pins that it never exceeds the fixed grid's.
func restoreTailSum(strikes []uint64, cycles []int, period uint64) uint64 {
	var sum uint64
	i := 0
	var restoreAt uint64 // 0 = replay from t=0
	for _, s := range strikes {
		for i < len(cycles) && uint64(cycles[i])*period+1 <= s {
			restoreAt = uint64(cycles[i])*period + 1
			i++
		}
		sum += s - restoreAt
	}
	return sum
}

// checkpointCycles lays out the golden-run checkpoint schedule according
// to the placement policy, within the fixed pitch's checkpoint budget.
func (c *Campaign) checkpointCycles() []int {
	fixed := c.fixedCheckpointCycles()
	if c.placement() != PlacementQuantile || len(fixed) == 0 || len(c.jobs) == 0 {
		return fixed
	}
	period := c.plan.PeriodPS
	strikes := make([]uint64, 0, len(c.jobs))
	for _, j := range c.jobs {
		strikes = append(strikes, j.TimePS)
	}
	sort.Slice(strikes, func(i, j int) bool { return strikes[i] < strikes[j] })
	// One candidate per budget slot, at the midpoint quantiles of the
	// strike distribution, snapped to the strike's own cycle so the
	// restore point lands just before it. Snapping dedupes when strikes
	// cluster — the schedule may use less than the budget, never more.
	budget := len(fixed)
	seen := map[int]bool{}
	var quant []int
	for i := 0; i < budget; i++ {
		s := strikes[(2*i+1)*len(strikes)/(2*budget)]
		k := int(s / period)
		if k < 1 || uint64(k+1)*period > c.plan.DurationPS || uint64(k)*period+1 > s {
			continue
		}
		if !seen[k] {
			seen[k] = true
			quant = append(quant, k)
		}
	}
	sort.Ints(quant)
	// Keep the fixed grid on a tie or loss: equal restore tails mean the
	// adaptive layout buys nothing, and the fixed grid's evenly spaced
	// snapshots double as better-distributed convergence probes.
	if len(quant) == 0 || restoreTailSum(strikes, quant, period) >= restoreTailSum(strikes, fixed, period) {
		return fixed
	}
	return quant
}

// runGolden simulates the fault-free workload, capturing the golden
// signature and — when warm starts are enabled — the checkpoint schedule.
// Checkpoints are taken 1ps after the rising edge of the scheduled cycles,
// an instant that never coincides with stimulus, strikes or sampling.
// Under CompareVCD the same run also dumps the golden VCD trace, and each
// checkpoint captures the writer's dump state alongside the engine state.
func (c *Campaign) runGolden() (*signature, uint64, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, 0, err
	}
	if err := c.plan.Apply(eng); err != nil {
		return nil, 0, err
	}
	var vw *vcd.Writer
	var vcdBuf *bytes.Buffer
	if c.opts.CompareVCD && c.warmStartEnabled() {
		vcdBuf = &bytes.Buffer{}
		vw = vcd.NewWriter(vcdBuf)
		if err := sim.AttachVCD(eng, vw, c.plan.Monitors); err != nil {
			return nil, 0, err
		}
	}
	if c.warmStartEnabled() {
		for _, k := range c.checkpointCycles() {
			k := k
			tm := uint64(k)*c.plan.PeriodPS + 1
			eng.At(tm, func() {
				gc := goldenCheckpoint{cycle: k, time: tm, ck: eng.Snapshot()}
				if vw != nil {
					// The dump state and the byte offset let a faulty run
					// resume the trace mid-dump (see TailVCD).
					_ = vw.Flush()
					gc.vcdState = vw.State()
					gc.vcdPrefix = vcdBuf.Len()
				}
				c.ckpts = append(c.ckpts, gc)
			})
		}
	}
	sig := newSignature(len(c.plan.Monitors), c.cycles()-1)
	c.scheduleSignature(eng, sig, 2)
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return nil, 0, err
	}
	if vw != nil {
		if err := vw.Close(c.plan.DurationPS); err != nil {
			return nil, 0, err
		}
		c.goldenVCDDump = vcdBuf.Bytes()
		tr, err := vcd.Parse(bytes.NewReader(c.goldenVCDDump))
		if err != nil {
			return nil, 0, err
		}
		c.goldenVCD = tr
		c.goldenVCDRows = c.traceRows(tr)
	}
	if len(c.ckpts) > 0 {
		// Adjacent checkpoints hold mostly the same future stimulus; share
		// the common suffix so checkpoint memory stops scaling with pitch.
		shared := make([]*sim.Checkpoint, len(c.ckpts))
		for i := range c.ckpts {
			shared[i] = c.ckpts[i].ck
		}
		sim.ShareTails(shared)
	}
	return sig, eng.CellEvals(), nil
}

// traceRows samples a parsed trace at every monitored sampling instant,
// producing the row matrix warm VCD runs diff against. Row k-2 holds the
// golden trace's monitor values at cycle k's pre-edge sampling instant —
// the same cycle-boundary semantics compareCaptured applies to full
// traces.
func (c *Campaign) traceRows(tr *vcd.Trace) *signature {
	sig := newSignature(len(c.plan.Monitors), c.cycles()-1)
	for k := 2; k <= c.cycles(); k++ {
		row := sig.addRow()
		tm := c.sampleTime(k)
		for i, nid := range c.plan.Monitors {
			s := tr.Signals[c.flat.Nets[nid].Name]
			if s == nil {
				row[i] = logic.X
				continue
			}
			row[i] = s.At(tm)[0]
		}
	}
	return sig
}

// runOnce simulates the full workload from t=0, applying the fault action,
// and returns the output signature — the cold path, kept both as the
// ColdStart fallback and as the oracle the warm path is verified against.
func (c *Campaign) runOnce(fa faultAction) (*signature, uint64, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, 0, err
	}
	if err := c.plan.Apply(eng); err != nil {
		return nil, 0, err
	}
	v := vpi.New(eng)
	if fa != nil {
		if err := fa(v); err != nil {
			return nil, 0, err
		}
	}
	sig := newSignature(len(c.plan.Monitors), c.cycles()-1)
	c.scheduleSignature(eng, sig, 2)
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return nil, 0, err
	}
	return sig, eng.CellEvals(), nil
}

// injectionWindow returns a random fault time away from reset and the
// final cycles, avoiding ±80ps around clock edges so both engines see the
// same capture behaviour. Degenerately short stimulus plans fall back to
// the widest window that still clears reset and the final edge.
func (c *Campaign) injectionWindow() uint64 {
	period := c.plan.PeriodPS
	lo := 3 * period
	var hi uint64
	if c.plan.DurationPS > 2*period {
		hi = c.plan.DurationPS - 2*period
	}
	if hi <= lo {
		// Degenerate short plan: relax the reset-window exclusion and draw
		// from (period, duration - period/2) — strikes may land during
		// reset here, which a workload this short cannot avoid.
		lo = period
		hi = 0
		if c.plan.DurationPS > period/2 {
			hi = c.plan.DurationPS - period/2
		}
		if hi <= lo {
			return c.plan.DurationPS / 2
		}
	}
	t := lo + uint64(c.rng.Intn(int(hi-lo)))
	if m := t % period; m < 80 {
		t += 80 - m
	} else if m > period-80 {
		t -= m - (period - 80)
	}
	return t
}

// DrawJobs draws the campaign's full injection plan — the equal-proportion
// cluster sample and one strike time per sampled cell — and memoizes it.
// All randomness is consumed on the first call, so every process that
// builds a campaign from the same design, options and seed obtains the
// identical plan; this is the property shard distribution rests on. The
// returned slice is shared and must not be mutated.
func (c *Campaign) DrawJobs() []Job {
	if !c.jobsDrawn {
		samples := cluster.SampleProportional(c.clusters, c.opts.SampleFrac, c.opts.MinPerCluster, c.rng.Split())
		for ci, cells := range samples {
			for _, cellID := range cells {
				c.jobs = append(c.jobs, Job{CellID: cellID, Cluster: ci, TimePS: c.injectionWindow()})
			}
		}
		c.jobsDrawn = true
	}
	return c.jobs
}

// Run executes the full campaign and fills the result. Injection runs are
// independent simulations; they fan out over Options.Workers goroutines,
// each reusing one engine across its injections (restore-from-checkpoint
// instead of construct-and-replay). Every random decision (sample
// membership, strike times) is drawn before the fan-out, so the result is
// identical for any worker count, checkpoint pitch, and warm/cold choice.
func (c *Campaign) Run(res *Result) error {
	jobs := c.DrawJobs()
	if err := c.RunJobs(res, 0, len(jobs)); err != nil {
		return err
	}
	c.Aggregate(res)
	return nil
}

// jobBatch is one worker work unit: a run of jobs that restore from the
// same golden checkpoint (ckIdx < 0: strikes before the first checkpoint,
// replayed cold), in ascending strike order. Each job's checkpoint is
// resolved once, at batch-build time; the workers never search the
// schedule again.
type jobBatch struct {
	ckIdx int
	idxs  []int // indices into the RunJobs slice, ascending by strike time
}

// buildBatches strike-sorts the slice's jobs and groups them by restore
// checkpoint, then splits oversized groups so the batch count keeps every
// worker busy. Batch order and shape are pure scheduling: verdicts are
// per-injection and every random choice is pre-drawn, so any grouping
// produces identical results (pinned by TestBatchOrderIndependence).
func (c *Campaign) buildBatches(jobs []Job, workers int) []jobBatch {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].TimePS < jobs[order[b]].TimePS })
	// Two-pointer resolution: strikes ascend, so the schedule is walked
	// once for the whole slice instead of binary-searched per injection.
	var batches []jobBatch
	ck := 0
	for _, idx := range order {
		for ck < len(c.ckpts) && c.ckpts[ck].time <= jobs[idx].TimePS {
			ck++
		}
		recIdx := ck - 1
		if len(batches) == 0 || batches[len(batches)-1].ckIdx != recIdx {
			batches = append(batches, jobBatch{ckIdx: recIdx})
		}
		last := &batches[len(batches)-1]
		last.idxs = append(last.idxs, idx)
	}
	// Re-chunk so scheduling granularity stays finer than the worker
	// count even when strikes concentrate on few checkpoints; chunks of
	// one batch keep the shared restore point (each chunk's first restore
	// is wholesale, the rest delta).
	chunk := len(jobs) / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var out []jobBatch
	for _, b := range batches {
		for len(b.idxs) > chunk {
			out = append(out, jobBatch{ckIdx: b.ckIdx, idxs: b.idxs[:chunk]})
			b.idxs = b.idxs[chunk:]
		}
		out = append(out, b)
	}
	return out
}

// RunJobs executes the [start,end) slice of the drawn injection plan and
// accumulates raw outcomes into res: injections are appended in plan
// order and the work counters (InjectWall, InjectEvals, WarmStarts,
// PrunedRuns, DeltaRestores, RestoreWall) are incremented by this slice's
// contribution only. It is the shard-scoped campaign entry point — a
// shard worker calls it for each leased index range, reusing this
// campaign's golden run and checkpoints across shards — and it does not
// aggregate: call Aggregate once after every planned injection has been
// accumulated.
func (c *Campaign) RunJobs(res *Result, start, end int) error {
	all := c.DrawJobs()
	if start < 0 || end > len(all) || start > end {
		return fmt.Errorf("inject: job range [%d,%d) outside plan of %d injections", start, end, len(all))
	}
	jobs := all[start:end]
	if c.opts.CompareVCD && c.goldenVCD == nil && len(jobs) > 0 {
		// Cold-start VCD oracle: materialize the golden trace with one
		// replay before the fan-out so workers share it. (Warm campaigns
		// dumped it during the golden run.)
		g, _, err := c.runOnceVCD(nil)
		if err != nil {
			return err
		}
		c.goldenVCD = g
	}

	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	warm := c.warmStartEnabled() && len(c.ckpts) > 0
	var batches []jobBatch
	if warm {
		batches = c.buildBatches(jobs, workers)
	} else {
		// Cold path: per-injection units, plan order.
		for idx := range jobs {
			batches = append(batches, jobBatch{ckIdx: -1, idxs: []int{idx}})
		}
	}
	began := time.Now()
	warmStarts0, prunedRuns0 := c.warmStarts.Load(), c.prunedRuns.Load()
	deltaRestores0, restoreWall0 := c.deltaRestores.Load(), c.restoreWallNS.Load()
	injections := make([]Injection, len(jobs))
	errs := make([]error, len(jobs))
	var evals atomic.Uint64
	var wg sync.WaitGroup
	next := make(chan jobBatch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wk *warmWorker
			var wkErr error
			if warm {
				wk, wkErr = c.newWarmWorker()
			}
			for b := range next {
				for _, idx := range b.idxs {
					if wkErr != nil {
						errs[idx] = wkErr
						continue
					}
					j := jobs[idx]
					var inj *Injection
					var n uint64
					var err error
					if wk != nil && b.ckIdx >= 0 {
						inj, n, err = wk.injectOne(j, b.ckIdx)
					} else {
						inj, n, err = c.injectOne(j.CellID, j.Cluster, j.TimePS)
					}
					if err != nil {
						errs[idx] = err
						continue
					}
					evals.Add(n)
					injections[idx] = *inj
				}
			}
		}()
	}
	for _, b := range batches {
		next <- b
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	res.Injections = append(res.Injections, injections...)
	res.InjectWall += time.Since(began)
	res.WarmStarts += c.warmStarts.Load() - warmStarts0
	res.PrunedRuns += c.prunedRuns.Load() - prunedRuns0
	res.DeltaRestores += c.deltaRestores.Load() - deltaRestores0
	res.RestoreWall += time.Duration(c.restoreWallNS.Load() - restoreWall0)
	res.InjectEvals += evals.Load()
	c.opts.Metrics.record(began, start, end, evals.Load(),
		c.warmStarts.Load()-warmStarts0, c.prunedRuns.Load()-prunedRuns0,
		c.deltaRestores.Load()-deltaRestores0, c.restoreWallNS.Load()-restoreWall0)
	return nil
}

// buildFault prepares the injection record, the fault action, and the time
// the last fault event has been consumed by (the earliest instant the run
// may be compared against golden checkpoints for convergence).
func (c *Campaign) buildFault(cellID int, t uint64) (*Injection, faultAction, uint64, error) {
	fc := c.flat.Cells[cellID]
	entry, err := c.db.Entry(fc.Def.Name)
	if err != nil {
		return nil, nil, 0, err
	}
	inj := &Injection{CellID: cellID, Path: fc.Path, TimePS: t}
	if fc.Def.IsSequential() {
		inj.Kind = fault.SEU
		return inj, seuAction(cellID, t), t, nil
	}
	inj.Kind = fault.SET
	width := entry.PulseWidthPS(c.opts.LET)
	if width == 0 {
		width = 40
	}
	inj.PulsePS = width
	return inj, setAction(fc.Out[0], t, width), t + 1 + width, nil
}

// injectOne performs a single fault injection run on one cell at the given
// strike time by replaying the whole workload, returning the outcome and
// the simulator work performed. It is safe for concurrent use: each call
// builds its own engine.
func (c *Campaign) injectOne(cellID, clusterIdx int, t uint64) (*Injection, uint64, error) {
	inj, fa, _, err := c.buildFault(cellID, t)
	if err != nil {
		return nil, 0, err
	}
	inj.Cluster = clusterIdx
	if c.opts.CompareVCD {
		diverged, evals, err := c.compareVCDRun(fa)
		if err != nil {
			return nil, 0, fmt.Errorf("inject: cell %s: %v", inj.Path, err)
		}
		inj.SoftError = diverged
		return inj, evals, nil
	}
	sig, evals, err := c.runOnce(fa)
	if err != nil {
		return nil, 0, fmt.Errorf("inject: cell %s: %v", inj.Path, err)
	}
	inj.SoftError = !sig.equal(c.golden)
	return inj, evals, nil
}

// checkpointBefore returns the latest golden checkpoint at or before time
// t, or nil when t precedes the whole schedule.
func (c *Campaign) checkpointBefore(t uint64) (*goldenCheckpoint, int) {
	idx := sort.Search(len(c.ckpts), func(i int) bool { return c.ckpts[i].time > t }) - 1
	if idx < 0 {
		return nil, -1
	}
	return &c.ckpts[idx], idx
}

// warmWorker is one worker's reusable simulation context: a single engine
// plus its VPI session, reset for every injection instead of being
// reconstructed. Within a batch the reset is a dirty-set delta restore —
// the engine tracks what the previous injection touched and rewrites only
// that — which is what strike-sorting the jobs buys.
type warmWorker struct {
	c      *Campaign
	eng    sim.Engine
	v      *vpi.Interface
	rows   *signature // golden rows the tail is diffed against
	lastCk *sim.Checkpoint
}

func (c *Campaign) newWarmWorker() (*warmWorker, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, err
	}
	rows := c.golden
	if c.opts.CompareVCD {
		// The VCD detector diffs against the golden trace suffix: the same
		// values, but read out of the parsed golden dump rather than the
		// signature capture (TestSignatureMatchesVCD pins their agreement).
		rows = c.goldenVCDRows
	}
	return &warmWorker{c: c, eng: eng, v: vpi.New(eng), rows: rows}, nil
}

// restore resets the worker's engine to a golden checkpoint, taking the
// delta path when the previous injection restored the same one, and
// accounts the restore cost.
func (w *warmWorker) restore(ck *sim.Checkpoint) error {
	began := time.Now()
	err := w.eng.RestoreDelta(ck)
	w.c.restoreWallNS.Add(time.Since(began).Nanoseconds())
	if err != nil {
		return err
	}
	if w.lastCk == ck {
		w.c.deltaRestores.Add(1)
	}
	w.lastCk = ck
	return nil
}

// injectOne performs one injection by restoring the job's pre-resolved
// golden checkpoint and simulating only the tail. Monitored rows are
// compared against the golden rows as they are captured; the run stops at
// the first diverging row (verdict: soft error) or as soon as the faulty
// state re-converges onto a golden checkpoint with no divergence recorded
// (verdict: guaranteed non-error). Verdicts are bit-identical to
// Campaign.injectOne's replay-from-zero path.
func (w *warmWorker) injectOne(j Job, recIdx int) (*Injection, uint64, error) {
	c := w.c
	rec := &c.ckpts[recIdx]
	inj, fa, faultEnd, err := c.buildFault(j.CellID, j.TimePS)
	if err != nil {
		return nil, 0, err
	}
	inj.Cluster = j.Cluster
	if err := w.restore(rec.ck); err != nil {
		return nil, 0, err
	}
	c.warmStarts.Add(1)
	evals0 := w.eng.CellEvals()
	if err := fa(w.v); err != nil {
		return nil, 0, fmt.Errorf("inject: cell %s: %v", inj.Path, err)
	}
	// Tail-only incremental comparison: the prefix up to the checkpoint is
	// bit-identical to golden by construction (the strike lands at or after
	// the restore point), so only cycles after the checkpoint are sampled.
	// All tail monitors must be registered here, before the first Run after
	// the restore, even though pruned runs never reach most of them:
	// pre-run registration is what gives them setup-phase event ordering,
	// and registering lazily between segments would flip their tie-break
	// order against in-flight transitions, breaking cold/warm bit-identity.
	diverged := false
	for k := rec.cycle + 1; k <= c.cycles(); k++ {
		goldenRow := w.rows.row(k - 2)
		w.eng.At(c.sampleTime(k), func() {
			if diverged {
				return
			}
			for i, nid := range c.plan.Monitors {
				if w.eng.Value(nid) != goldenRow[i] {
					diverged = true
					return
				}
			}
		})
	}
	decided := false
	for x := recIdx + 1; x < len(c.ckpts); x++ {
		b := &c.ckpts[x]
		if err := w.eng.Run(b.time); err != nil {
			return nil, 0, fmt.Errorf("inject: cell %s: %v", inj.Path, err)
		}
		if diverged {
			// First mismatching output row: the signatures can never be
			// equal again, so the verdict is already decided.
			inj.SoftError = true
			decided = true
			break
		}
		if b.time > faultEnd && w.eng.MatchesCheckpoint(b.ck) {
			// All fault events are consumed and the full engine state is
			// indistinguishable from the golden run's at this instant: the
			// remaining tail is bit-identical to golden, so the run is a
			// guaranteed non-error.
			c.prunedRuns.Add(1)
			decided = true
			break
		}
	}
	if !decided {
		if err := w.eng.Run(c.plan.DurationPS); err != nil {
			return nil, 0, fmt.Errorf("inject: cell %s: %v", inj.Path, err)
		}
		inj.SoftError = diverged
	}
	return inj, w.eng.CellEvals() - evals0, nil
}

// seuAction builds the SEU fault action of Fig. 2: invert the storage
// node at the strike time.
func seuAction(cellID int, t uint64) faultAction {
	return func(v *vpi.Interface) error {
		h, err := v.RegHandle(cellID)
		if err != nil {
			return err
		}
		return v.FlipReg(h, t)
	}
}

// setAction builds the SET fault action of Fig. 2: an equivalent square
// wave forced onto the struck cell's output net for the pulse width, with
// the polarity opposing the value present at strike time.
func setAction(outNet int, t, width uint64) faultAction {
	return func(v *vpi.Interface) error {
		h, err := v.NetHandle(outNet)
		if err != nil {
			return err
		}
		v.CbAtTime(t, func() {
			cur, _ := v.GetValue(h)
			pulse := cur.Not()
			if !cur.IsKnown() {
				pulse = logic.L1
			}
			_ = v.Force(h, t+1, pulse)
			_ = v.Release(h, t+1+width)
		})
		return nil
	}
}

// compareVCDRun runs the fault through the full-VCD path against a cached
// golden VCD trace, reporting the faulty run's simulator work.
func (c *Campaign) compareVCDRun(fa faultAction) (bool, uint64, error) {
	if c.goldenVCD == nil {
		g, _, err := c.runOnceVCD(nil)
		if err != nil {
			return false, 0, err
		}
		c.goldenVCD = g
	}
	faulty, evals, err := c.runOnceVCD(fa)
	if err != nil {
		return false, 0, err
	}
	return c.compareCaptured(c.goldenVCD, faulty), evals, nil
}

// Aggregate computes cluster, module and chip statistics from the raw
// injection outcomes accumulated in res. It assumes res.Injections holds
// every planned injection exactly once (any order) and must be called
// exactly once per Result — module cell counts and exposure rates are
// accumulated, not recomputed. Run calls it automatically; sharded
// campaigns call it after merging all partials.
func (c *Campaign) Aggregate(res *Result) {
	nClusters := len(c.clusters.Members)
	cs := make([]ClusterStats, nClusters)
	for ci := range cs {
		cs[ci] = ClusterStats{Index: ci, Cells: len(c.clusters.Members[ci])}
	}
	moduleOf := c.opts.ModuleOf
	weight := c.opts.CellWeight
	for _, inj := range res.Injections {
		cs[inj.Cluster].Sampled++
		if inj.SoftError {
			cs[inj.Cluster].SoftErrors++
		}
		m := c.module(res, moduleOf(c.flat.Cells[inj.CellID]))
		m.Sampled++
		if inj.SoftError {
			m.SoftErrors++
		}
	}
	var wsum, cells float64
	for ci := range cs {
		if cs[ci].Sampled > 0 {
			cs[ci].SER = float64(cs[ci].SoftErrors) / float64(cs[ci].Sampled)
		}
		wsum += float64(cs[ci].Cells) * cs[ci].SER
		cells += float64(cs[ci].Cells)
	}
	res.Clusters = cs
	if cells > 0 {
		res.ChipSER = wsum / cells
	}

	// Per-module exposure: λ = flux · Σ σ(LET)·w · T, manifest from the
	// module's sampled injections, SER% = 100·(1 − e^{−manifest·λ}).
	for _, fc := range c.flat.Cells {
		entry, err := c.db.Entry(fc.Def.Name)
		if err != nil {
			continue
		}
		m := c.module(res, moduleOf(fc))
		m.Cells++
		sigma := entry.XsectAt(c.opts.LET) * weight(fc)
		m.Lambda += c.opts.Flux * sigma * c.opts.ExposureS
		if fc.Def.IsSequential() {
			res.SEUXsect += entry.XsectAt(c.opts.LET) * weight(fc)
		} else {
			res.SETXsect += entry.XsectAt(c.opts.LET) * weight(fc)
		}
	}
	for _, m := range res.Modules {
		if m.Sampled > 0 {
			m.Manifest = float64(m.SoftErrors) / float64(m.Sampled)
		}
		m.SERPercent = 100 * (1 - math.Exp(-m.Manifest*m.Lambda))
	}
}

func (c *Campaign) module(res *Result, name string) *ModuleStats {
	m, ok := res.Modules[name]
	if !ok {
		m = &ModuleStats{Name: name}
		res.Modules[name] = m
	}
	return m
}
