// Package inject implements the paper's fault-injection campaign: cluster
// the netlist cells (Algorithm 1), draw an equal-proportion sample from
// every cluster, inject one single-particle fault per sampled cell at a
// random time through the VPI layer (SEU state flips for storage cells, SET
// pulses for combinational outputs, per the Fig. 2 models), simulate, and
// classify the run as a soft error when the main outputs diverge from the
// golden run. Cluster and chip soft-error rates follow Eq. 2; module-level
// exposure rates use the soft-error database and the representation weights
// of the scaled platform.
package inject

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/vcd"
	"repro/internal/vpi"
	"repro/internal/xrand"
)

// Options configures a campaign.
type Options struct {
	Engine sim.EngineKind
	// LET of the simulated heavy-ion environment (MeV·cm²/mg).
	LET float64
	// Flux in particles/cm²/s.
	Flux float64
	// ExposureS is the real exposure window the simulated run stands for,
	// in seconds. It calibrates upset-per-cell probabilities.
	ExposureS float64
	// KN and LN are Algorithm 1's cluster count and layer depth.
	KN, LN int
	// SampleFrac and MinPerCluster control equal-proportion sampling.
	SampleFrac    float64
	MinPerCluster int
	// Seed drives the campaign's sampling and strike-time choices.
	Seed uint64
	// ClusterSeed drives Algorithm 1's initial center selection. Zero
	// derives it from the design name, so the clustering of a given
	// netlist is identical across campaigns — the paper clusters the
	// netlist once and then runs fault injection under varying conditions.
	ClusterSeed uint64
	// CellWeight returns the representation weight of a cell (physical
	// elements per simulated cell); nil means weight 1.
	CellWeight func(c *netlist.FlatCell) float64
	// ModuleOf groups cells into report modules; nil uses socgen.ModuleOf.
	ModuleOf func(c *netlist.FlatCell) string
	// CompareVCD switches the soft-error detector from the fast cycle
	// signature to a full VCD diff (the paper's method); both yield the
	// same verdicts, which TestSignatureMatchesVCD verifies.
	CompareVCD bool
	// Workers is the number of concurrent injection simulations. Fault
	// runs are independent, and all random choices are drawn before the
	// fan-out, so any worker count produces identical results. 0 uses
	// GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the options used throughout the paper
// reproduction: LET 37, flux 5e8, EventSim, 25% sampling.
func DefaultOptions() Options {
	return Options{
		Engine:        sim.KindEvent,
		LET:           37.0,
		Flux:          5e8,
		ExposureS:     4e-10,
		KN:            5,
		LN:            4,
		SampleFrac:    0.25,
		MinPerCluster: 3,
		Seed:          1,
	}
}

// Injection records one fault injection and its outcome.
type Injection struct {
	CellID    int
	Path      string
	Kind      fault.Kind
	TimePS    uint64
	PulsePS   uint64 // SET only
	Cluster   int
	SoftError bool
}

// ClusterStats aggregates one cluster's campaign outcome.
type ClusterStats struct {
	Index      int
	Cells      int
	Sampled    int
	SoftErrors int
	// SER is the sampled soft-error ratio of the cluster (Eq. 2 operand).
	SER float64
}

// ModuleStats aggregates a functional module (Memory / Bus / CPU Logic).
type ModuleStats struct {
	Name       string
	Cells      int
	Sampled    int
	SoftErrors int
	// Manifest is the sampled probability that an upset in the module
	// produces an output error.
	Manifest float64
	// Lambda is the expected number of physical upsets in the module over
	// the exposure window (flux · Σ σ·w · T).
	Lambda float64
	// SER is the module soft-error probability over the window:
	// 1 - exp(-Manifest·Lambda), in percent.
	SERPercent float64
}

// Result is the full campaign outcome.
type Result struct {
	Design     string
	Engine     string
	Options    Options
	Clusters   []ClusterStats
	Modules    map[string]*ModuleStats
	Injections []Injection
	// ChipSER is Eq. 2: Σ CellN_i·SER_i / Σ CellN_i.
	ChipSER float64
	// SETXsect and SEUXsect are the chip's total weighted cross-sections
	// (cm²) split by fault kind — Table I's last two columns.
	SETXsect, SEUXsect float64
	// ClusterOf maps every cell ID to its cluster.
	ClusterOf []int
	// GoldenWall and InjectWall are wall-clock durations (Table III).
	GoldenWall, InjectWall time.Duration
	// GoldenEvals and InjectEvals count simulator cell evaluations.
	GoldenEvals, InjectEvals uint64
}

// Campaign holds the prepared state for running injections on one design.
type Campaign struct {
	flat *netlist.Flat
	plan *socgen.StimulusPlan
	opts Options
	db   *fault.DB

	clusters  *cluster.Result
	golden    *signature
	goldenVCD *vcd.Trace
	rng       *xrand.RNG
	lastEvals uint64
}

// New prepares a campaign: validates options, clusters the cells, and
// captures the golden signature.
func New(f *netlist.Flat, plan *socgen.StimulusPlan, db *fault.DB, opts Options) (*Campaign, *Result, error) {
	if opts.KN < 1 || opts.LN < 1 {
		return nil, nil, fmt.Errorf("inject: KN/LN must be positive")
	}
	if opts.SampleFrac <= 0 || opts.SampleFrac > 1 {
		return nil, nil, fmt.Errorf("inject: SampleFrac %g out of (0,1]", opts.SampleFrac)
	}
	if opts.Flux < 0 || opts.ExposureS < 0 {
		return nil, nil, fmt.Errorf("inject: negative flux or exposure")
	}
	if opts.ModuleOf == nil {
		opts.ModuleOf = socgen.ModuleOf
	}
	if opts.CellWeight == nil {
		opts.CellWeight = func(*netlist.FlatCell) float64 { return 1 }
	}
	rng := xrand.New(opts.Seed)
	clusterSeed := opts.ClusterSeed
	if clusterSeed == 0 {
		// Stable per-design default: clustering reflects the netlist's
		// structure, not the campaign's stochastic choices.
		clusterSeed = 0xcbf29ce484222325
		for _, b := range []byte(f.Name) {
			clusterSeed = (clusterSeed ^ uint64(b)) * 0x100000001b3
		}
	}
	cl, err := cluster.ClusterCells(f, opts.KN, opts.LN, xrand.New(clusterSeed))
	if err != nil {
		return nil, nil, err
	}
	c := &Campaign{flat: f, plan: plan, opts: opts, db: db, clusters: cl, rng: rng}

	res := &Result{
		Design:    f.Name,
		Engine:    string(opts.Engine),
		Options:   opts,
		Modules:   map[string]*ModuleStats{},
		ClusterOf: cl.Assign,
	}
	start := time.Now()
	golden, evals, err := c.runOnce(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("inject: golden run: %v", err)
	}
	res.GoldenWall = time.Since(start)
	res.GoldenEvals = evals
	c.golden = golden
	return c, res, nil
}

// signature is the cycle-sampled value matrix of the monitored outputs:
// one row per clock cycle, sampled just before each rising edge.
type signature struct {
	rows [][]logic.V
}

func (s *signature) equal(o *signature) bool {
	if len(s.rows) != len(o.rows) {
		return false
	}
	for i := range s.rows {
		for j := range s.rows[i] {
			if s.rows[i][j] != o.rows[i][j] {
				return false
			}
		}
	}
	return true
}

// faultAction schedules the fault during a run; nil means golden.
type faultAction func(v *vpi.Interface) error

// runOnce simulates the full workload, applying the fault action, and
// returns the output signature.
func (c *Campaign) runOnce(fa faultAction) (*signature, uint64, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, 0, err
	}
	if err := c.plan.Apply(eng); err != nil {
		return nil, 0, err
	}
	v := vpi.New(eng)
	if fa != nil {
		if err := fa(v); err != nil {
			return nil, 0, err
		}
	}
	sig := &signature{}
	cycles := int(c.plan.DurationPS / c.plan.PeriodPS)
	for k := 2; k <= cycles; k++ {
		tm := uint64(k)*c.plan.PeriodPS - 20
		eng.At(tm, func() {
			row := make([]logic.V, len(c.plan.Monitors))
			for i, nid := range c.plan.Monitors {
				row[i] = eng.Value(nid)
			}
			sig.rows = append(sig.rows, row)
		})
	}
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return nil, 0, err
	}
	return sig, eng.CellEvals(), nil
}

// injectionWindow returns a random fault time away from reset and the
// final cycles, avoiding ±80ps around clock edges so both engines see the
// same capture behaviour.
func (c *Campaign) injectionWindow() uint64 {
	period := c.plan.PeriodPS
	lo := 3 * period
	hi := c.plan.DurationPS - 2*period
	t := lo + uint64(c.rng.Intn(int(hi-lo)))
	if m := t % period; m < 80 {
		t += 80 - m
	} else if m > period-80 {
		t -= m - (period - 80)
	}
	return t
}

// Run executes the full campaign and fills the result. Injection runs are
// independent simulations; they fan out over Options.Workers goroutines.
// Every random decision (sample membership, strike times) is drawn before
// the fan-out, so the result is identical for any worker count.
func (c *Campaign) Run(res *Result) error {
	samples := cluster.SampleProportional(c.clusters, c.opts.SampleFrac, c.opts.MinPerCluster, c.rng.Split())
	type job struct {
		cellID, cluster int
		timePS          uint64
	}
	var jobs []job
	for ci, cells := range samples {
		for _, cellID := range cells {
			jobs = append(jobs, job{cellID: cellID, cluster: ci, timePS: c.injectionWindow()})
		}
	}
	if c.opts.CompareVCD && c.goldenVCD == nil {
		// Materialize the golden VCD before the fan-out so workers share it.
		g, err := c.runOnceVCD(nil)
		if err != nil {
			return err
		}
		c.goldenVCD = g
	}

	workers := c.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	injections := make([]Injection, len(jobs))
	errs := make([]error, len(jobs))
	var evals atomic.Uint64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				j := jobs[idx]
				inj, n, err := c.injectOne(j.cellID, j.cluster, j.timePS)
				if err != nil {
					errs[idx] = err
					continue
				}
				evals.Add(n)
				injections[idx] = *inj
			}
		}()
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	res.Injections = append(res.Injections, injections...)
	res.InjectWall = time.Since(start)
	c.lastEvals = evals.Load()
	c.aggregate(res)
	return nil
}

// injectOne performs a single fault injection run on one cell at the given
// strike time, returning the outcome and the simulator work performed. It
// is safe for concurrent use: each call builds its own engine.
func (c *Campaign) injectOne(cellID, clusterIdx int, t uint64) (*Injection, uint64, error) {
	fc := c.flat.Cells[cellID]
	entry, err := c.db.Entry(fc.Def.Name)
	if err != nil {
		return nil, 0, err
	}
	inj := &Injection{
		CellID:  cellID,
		Path:    fc.Path,
		Cluster: clusterIdx,
		TimePS:  t,
	}
	var fa faultAction
	if fc.Def.IsSequential() {
		inj.Kind = fault.SEU
		fa = seuAction(cellID, t)
	} else {
		inj.Kind = fault.SET
		width := entry.PulseWidthPS(c.opts.LET)
		if width == 0 {
			width = 40
		}
		inj.PulsePS = width
		fa = setAction(fc.Out[0], t, width)
	}
	if c.opts.CompareVCD {
		diverged, err := c.compareVCDRun(fa)
		if err != nil {
			return nil, 0, fmt.Errorf("inject: cell %s: %v", fc.Path, err)
		}
		inj.SoftError = diverged
		return inj, 0, nil
	}
	sig, evals, err := c.runOnce(fa)
	if err != nil {
		return nil, 0, fmt.Errorf("inject: cell %s: %v", fc.Path, err)
	}
	inj.SoftError = !sig.equal(c.golden)
	return inj, evals, nil
}

// seuAction builds the SEU fault action of Fig. 2: invert the storage
// node at the strike time.
func seuAction(cellID int, t uint64) faultAction {
	return func(v *vpi.Interface) error {
		h, err := v.RegHandle(cellID)
		if err != nil {
			return err
		}
		return v.FlipReg(h, t)
	}
}

// setAction builds the SET fault action of Fig. 2: an equivalent square
// wave forced onto the struck cell's output net for the pulse width, with
// the polarity opposing the value present at strike time.
func setAction(outNet int, t, width uint64) faultAction {
	return func(v *vpi.Interface) error {
		h, err := v.NetHandle(outNet)
		if err != nil {
			return err
		}
		v.CbAtTime(t, func() {
			cur, _ := v.GetValue(h)
			pulse := cur.Not()
			if !cur.IsKnown() {
				pulse = logic.L1
			}
			_ = v.Force(h, t+1, pulse)
			_ = v.Release(h, t+1+width)
		})
		return nil
	}
}

// compareVCDRun runs the fault through the full-VCD path against a cached
// golden VCD trace.
func (c *Campaign) compareVCDRun(fa faultAction) (bool, error) {
	if c.goldenVCD == nil {
		g, err := c.runOnceVCD(nil)
		if err != nil {
			return false, err
		}
		c.goldenVCD = g
	}
	faulty, err := c.runOnceVCD(fa)
	if err != nil {
		return false, err
	}
	return c.compareCaptured(c.goldenVCD, faulty), nil
}

// aggregate computes cluster, module and chip statistics from the raw
// injection outcomes.
func (c *Campaign) aggregate(res *Result) {
	res.InjectEvals = c.lastEvals
	nClusters := len(c.clusters.Members)
	cs := make([]ClusterStats, nClusters)
	for ci := range cs {
		cs[ci] = ClusterStats{Index: ci, Cells: len(c.clusters.Members[ci])}
	}
	moduleOf := c.opts.ModuleOf
	weight := c.opts.CellWeight
	for _, inj := range res.Injections {
		cs[inj.Cluster].Sampled++
		if inj.SoftError {
			cs[inj.Cluster].SoftErrors++
		}
		m := c.module(res, moduleOf(c.flat.Cells[inj.CellID]))
		m.Sampled++
		if inj.SoftError {
			m.SoftErrors++
		}
	}
	var wsum, cells float64
	for ci := range cs {
		if cs[ci].Sampled > 0 {
			cs[ci].SER = float64(cs[ci].SoftErrors) / float64(cs[ci].Sampled)
		}
		wsum += float64(cs[ci].Cells) * cs[ci].SER
		cells += float64(cs[ci].Cells)
	}
	res.Clusters = cs
	if cells > 0 {
		res.ChipSER = wsum / cells
	}

	// Per-module exposure: λ = flux · Σ σ(LET)·w · T, manifest from the
	// module's sampled injections, SER% = 100·(1 − e^{−manifest·λ}).
	for _, fc := range c.flat.Cells {
		entry, err := c.db.Entry(fc.Def.Name)
		if err != nil {
			continue
		}
		m := c.module(res, moduleOf(fc))
		m.Cells++
		sigma := entry.XsectAt(c.opts.LET) * weight(fc)
		m.Lambda += c.opts.Flux * sigma * c.opts.ExposureS
		if fc.Def.IsSequential() {
			res.SEUXsect += entry.XsectAt(c.opts.LET) * weight(fc)
		} else {
			res.SETXsect += entry.XsectAt(c.opts.LET) * weight(fc)
		}
	}
	for _, m := range res.Modules {
		if m.Sampled > 0 {
			m.Manifest = float64(m.SoftErrors) / float64(m.Sampled)
		}
		m.SERPercent = 100 * (1 - math.Exp(-m.Manifest*m.Lambda))
	}
}

func (c *Campaign) module(res *Result, name string) *ModuleStats {
	m, ok := res.Modules[name]
	if !ok {
		m = &ModuleStats{Name: name}
		res.Modules[name] = m
	}
	return m
}
