package inject

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// runOnceVCD simulates like runOnce but dumps the monitored outputs to a
// full VCD trace — the paper's original soft-error detection path. It is
// slower than the cycle-signature comparison and exists both as the
// faithful method (Options.CompareVCD) and as the cross-check oracle the
// tests use to validate the fast path.
func (c *Campaign) runOnceVCD(fa faultAction) (*vcd.Trace, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf)
	if err := sim.AttachVCD(eng, w, c.plan.Monitors); err != nil {
		return nil, err
	}
	if err := c.plan.Apply(eng); err != nil {
		return nil, err
	}
	v := vpi.New(eng)
	if fa != nil {
		if err := fa(v); err != nil {
			return nil, err
		}
	}
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return nil, err
	}
	if err := w.Close(c.plan.DurationPS); err != nil {
		return nil, err
	}
	return vcd.Parse(&buf)
}

// VerifyWithVCD re-executes one recorded injection using full VCD diffing
// and reports whether the faulty trace diverges from a golden VCD trace.
// The verdict must agree with the recorded Injection.SoftError up to
// intra-cycle glitches: the VCD path also sees transients between clock
// edges, so a nil error with a differing verdict means the divergence was
// a glitch that never got captured — callers treating captured state as
// the soft-error criterion should compare at cycle boundaries, which is
// what CompareCaptured does.
func (c *Campaign) VerifyWithVCD(inj Injection) (bool, error) {
	fa, err := c.rebuildAction(inj)
	if err != nil {
		return false, err
	}
	golden, err := c.runOnceVCD(nil)
	if err != nil {
		return false, err
	}
	faulty, err := c.runOnceVCD(fa)
	if err != nil {
		return false, err
	}
	return c.compareCaptured(golden, faulty), nil
}

// compareCaptured diffs two VCD traces at the pre-edge sampling instants,
// matching the signature detector's cycle-boundary semantics.
func (c *Campaign) compareCaptured(golden, faulty *vcd.Trace) bool {
	cycles := int(c.plan.DurationPS / c.plan.PeriodPS)
	for name, gs := range golden.Signals {
		fs, ok := faulty.Signals[name]
		if !ok {
			return true
		}
		for k := 2; k <= cycles; k++ {
			tm := uint64(k)*c.plan.PeriodPS - 20
			if !gs.At(tm).Equal(fs.At(tm)) {
				return true
			}
		}
	}
	return false
}

// rebuildAction reconstructs the fault action of a recorded injection so
// it can be replayed.
func (c *Campaign) rebuildAction(inj Injection) (faultAction, error) {
	fc := c.flat.Cells[inj.CellID]
	if fc.Def.IsSequential() {
		return seuAction(inj.CellID, inj.TimePS), nil
	}
	if inj.PulsePS == 0 {
		return nil, fmt.Errorf("inject: SET injection for %s lacks a pulse width", inj.Path)
	}
	return setAction(fc.Out[0], inj.TimePS, inj.PulsePS), nil
}
