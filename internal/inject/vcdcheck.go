package inject

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// runOnceVCD simulates like runOnce but dumps the monitored outputs to a
// full VCD trace — the paper's original soft-error detection path. It is
// slower than the cycle-signature comparison and exists both as the
// ColdStart oracle of the CompareVCD detector and as the cross-check the
// tests use to validate the warm paths.
func (c *Campaign) runOnceVCD(fa faultAction) (*vcd.Trace, uint64, error) {
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf)
	if err := sim.AttachVCD(eng, w, c.plan.Monitors); err != nil {
		return nil, 0, err
	}
	if err := c.plan.Apply(eng); err != nil {
		return nil, 0, err
	}
	v := vpi.New(eng)
	if fa != nil {
		if err := fa(v); err != nil {
			return nil, 0, err
		}
	}
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return nil, 0, err
	}
	if err := w.Close(c.plan.DurationPS); err != nil {
		return nil, 0, err
	}
	tr, err := vcd.Parse(&buf)
	return tr, eng.CellEvals(), err
}

// TailVCD re-executes one recorded injection warm — restored from the
// latest golden checkpoint before its strike — while resuming the golden
// VCD dump from that checkpoint's writer state, and writes the complete
// faulty trace into w: the golden dump's byte prefix (identical to the
// faulty run's own prefix, since the strike lands after the restore
// point) followed by the freshly dumped tail. The output is byte-for-byte
// the dump a cold replay-from-zero faulty run would have produced, at
// tail cost; TestTailVCDMatchesColdDump pins that. It requires a warm
// CompareVCD campaign (the golden dump and per-checkpoint writer states
// exist only there).
func (c *Campaign) TailVCD(inj Injection, w io.Writer) error {
	if c.goldenVCDDump == nil {
		return fmt.Errorf("inject: TailVCD needs a warm CompareVCD campaign (no golden dump captured)")
	}
	rec, _ := c.checkpointBefore(inj.TimePS)
	if rec == nil || rec.vcdState == nil {
		return fmt.Errorf("inject: no checkpoint with VCD state before strike at %dps", inj.TimePS)
	}
	fa, err := c.rebuildAction(inj)
	if err != nil {
		return err
	}
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		return err
	}
	if err := eng.Restore(rec.ck); err != nil {
		return err
	}
	if _, err := w.Write(c.goldenVCDDump[:rec.vcdPrefix]); err != nil {
		return err
	}
	vw := vcd.ResumeWriter(w, rec.vcdState)
	// Restore discarded all callbacks; re-hook the dump on the restored
	// engine, then replay the fault over the tail.
	f := eng.Flat()
	for _, nid := range c.plan.Monitors {
		nid := nid
		name := f.Nets[nid].Name
		eng.OnNetChange(nid, func(t uint64, v logic.V) {
			_ = vw.Change(t, name, logic.Vec{v})
		})
	}
	if err := fa(vpi.New(eng)); err != nil {
		return err
	}
	if err := eng.Run(c.plan.DurationPS); err != nil {
		return err
	}
	return vw.Close(c.plan.DurationPS)
}

// VerifyWithVCD re-executes one recorded injection using full VCD diffing
// and reports whether the faulty trace diverges from a golden VCD trace.
// The verdict must agree with the recorded Injection.SoftError up to
// intra-cycle glitches: the VCD path also sees transients between clock
// edges, so a nil error with a differing verdict means the divergence was
// a glitch that never got captured — callers treating captured state as
// the soft-error criterion should compare at cycle boundaries, which is
// what CompareCaptured does.
func (c *Campaign) VerifyWithVCD(inj Injection) (bool, error) {
	fa, err := c.rebuildAction(inj)
	if err != nil {
		return false, err
	}
	golden, _, err := c.runOnceVCD(nil)
	if err != nil {
		return false, err
	}
	faulty, _, err := c.runOnceVCD(fa)
	if err != nil {
		return false, err
	}
	return c.compareCaptured(golden, faulty), nil
}

// compareCaptured diffs two VCD traces at the pre-edge sampling instants,
// matching the signature detector's cycle-boundary semantics.
func (c *Campaign) compareCaptured(golden, faulty *vcd.Trace) bool {
	cycles := int(c.plan.DurationPS / c.plan.PeriodPS)
	for name, gs := range golden.Signals {
		fs, ok := faulty.Signals[name]
		if !ok {
			return true
		}
		for k := 2; k <= cycles; k++ {
			tm := uint64(k)*c.plan.PeriodPS - 20
			if !gs.At(tm).Equal(fs.At(tm)) {
				return true
			}
		}
	}
	return false
}

// rebuildAction reconstructs the fault action of a recorded injection so
// it can be replayed.
func (c *Campaign) rebuildAction(inj Injection) (faultAction, error) {
	fc := c.flat.Cells[inj.CellID]
	if fc.Def.IsSequential() {
		return seuAction(inj.CellID, inj.TimePS), nil
	}
	if inj.PulsePS == 0 {
		return nil, fmt.Errorf("inject: SET injection for %s lacks a pulse width", inj.Path)
	}
	return setAction(fc.Out[0], inj.TimePS, inj.PulsePS), nil
}
