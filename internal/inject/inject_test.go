package inject

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/socgen"
)

func testOptions() Options {
	o := DefaultOptions()
	o.SampleFrac = 0.05
	o.MinPerCluster = 2
	o.Seed = 7
	return o
}

func prep(t *testing.T, idx int, opts Options) *SoCRun {
	t.Helper()
	cfg, err := socgen.ConfigByIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	run, err := PrepareSoC(cfg, riscv.MemcpyProgram(8), fault.DefaultDB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestOptionValidation(t *testing.T) {
	cfg, _ := socgen.ConfigByIndex(1)
	db := fault.DefaultDB()
	bad := []Options{
		{Engine: sim.KindEvent, KN: 0, LN: 3, SampleFrac: 0.1},
		{Engine: sim.KindEvent, KN: 3, LN: 0, SampleFrac: 0.1},
		{Engine: sim.KindEvent, KN: 3, LN: 3, SampleFrac: 0},
		{Engine: sim.KindEvent, KN: 3, LN: 3, SampleFrac: 1.5},
		{Engine: sim.KindEvent, KN: 3, LN: 3, SampleFrac: 0.1, Flux: -1},
	}
	for i, o := range bad {
		if _, err := PrepareSoC(cfg, riscv.FibProgram(5), db, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestCampaignRuns(t *testing.T) {
	run := prep(t, 1, testOptions())
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	r := run.Result
	if len(r.Injections) == 0 {
		t.Fatal("no injections performed")
	}
	if len(r.Clusters) != testOptions().KN {
		t.Errorf("%d clusters, want %d", len(r.Clusters), testOptions().KN)
	}
	totalCells := 0
	for _, cs := range r.Clusters {
		totalCells += cs.Cells
	}
	if totalCells != len(run.Flat.Cells) {
		t.Errorf("clusters cover %d of %d cells", totalCells, len(run.Flat.Cells))
	}
	// Both fault kinds must occur across a mixed sample.
	var seu, set int
	for _, inj := range r.Injections {
		switch inj.Kind {
		case fault.SEU:
			seu++
		case fault.SET:
			set++
		}
		if inj.TimePS < 3*run.Plan.PeriodPS {
			t.Errorf("injection at %dps inside reset window", inj.TimePS)
		}
	}
	if seu == 0 || set == 0 {
		t.Errorf("sample missed a fault kind: seu=%d set=%d", seu, set)
	}
	// Modules must all be represented.
	for _, name := range []string{"Memory", "Bus", "CPU Logic"} {
		m, ok := r.Modules[name]
		if !ok || m.Cells == 0 {
			t.Errorf("module %s missing from report", name)
		}
	}
	if r.SETXsect <= 0 || r.SEUXsect <= 0 {
		t.Error("total cross-sections must be positive")
	}
	if r.GoldenWall <= 0 || r.InjectWall <= 0 {
		t.Error("wall-clock timings missing")
	}
	if r.String() == "" {
		t.Error("report rendering empty")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := prep(t, 1, testOptions())
	if err := a.Campaign.Run(a.Result); err != nil {
		t.Fatal(err)
	}
	b := prep(t, 1, testOptions())
	if err := b.Campaign.Run(b.Result); err != nil {
		t.Fatal(err)
	}
	if len(a.Result.Injections) != len(b.Result.Injections) {
		t.Fatalf("injection counts differ: %d vs %d", len(a.Result.Injections), len(b.Result.Injections))
	}
	for i := range a.Result.Injections {
		ia, ib := a.Result.Injections[i], b.Result.Injections[i]
		if ia.CellID != ib.CellID || ia.TimePS != ib.TimePS || ia.SoftError != ib.SoftError {
			t.Fatalf("injection %d differs: %+v vs %+v", i, ia, ib)
		}
	}
	if a.Result.ChipSER != b.Result.ChipSER {
		t.Error("chip SER not reproducible")
	}
}

func TestSomeFaultsManifest(t *testing.T) {
	opts := testOptions()
	opts.SampleFrac = 0.08
	run := prep(t, 1, opts)
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	se := run.Result.SoftErrorCount()
	if se == 0 {
		t.Fatal("campaign observed zero soft errors — injections are not propagating")
	}
	if se == len(run.Result.Injections) {
		t.Fatal("every injection manifested — masking is not being modeled")
	}
}

func TestSignatureMatchesVCD(t *testing.T) {
	run := prep(t, 1, testOptions())
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	// Cross-check a handful of verdicts against the full-VCD oracle.
	checked := 0
	for _, inj := range run.Result.Injections {
		if checked >= 6 {
			break
		}
		got, err := run.Campaign.VerifyWithVCD(inj)
		if err != nil {
			t.Fatalf("VCD verify %s: %v", inj.Path, err)
		}
		if got != inj.SoftError {
			t.Errorf("detector mismatch for %s: signature=%v vcd=%v", inj.Path, inj.SoftError, got)
		}
		checked++
	}
}

func TestCompareVCDOptionAgrees(t *testing.T) {
	optsFast := testOptions()
	fastRun := prep(t, 1, optsFast)
	if err := fastRun.Campaign.Run(fastRun.Result); err != nil {
		t.Fatal(err)
	}
	optsVCD := testOptions()
	optsVCD.CompareVCD = true
	vcdRun := prep(t, 1, optsVCD)
	if err := vcdRun.Campaign.Run(vcdRun.Result); err != nil {
		t.Fatal(err)
	}
	if len(fastRun.Result.Injections) != len(vcdRun.Result.Injections) {
		t.Fatal("sampling diverged between detector modes")
	}
	for i := range fastRun.Result.Injections {
		a, b := fastRun.Result.Injections[i], vcdRun.Result.Injections[i]
		if a.SoftError != b.SoftError {
			t.Errorf("verdict differs for %s: fast=%v vcd=%v", a.Path, a.SoftError, b.SoftError)
		}
	}
}

func TestLabeling(t *testing.T) {
	run := prep(t, 1, testOptions())
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	r := run.Result
	labels := r.LabelCells(r.ChipSER)
	if len(labels) != len(run.Flat.Cells) {
		t.Fatalf("%d labels for %d cells", len(labels), len(run.Flat.Cells))
	}
	// All cells of one cluster share a label.
	clusterLabel := map[int]bool{}
	for cellID, ci := range r.ClusterOf {
		if prev, seen := clusterLabel[ci]; seen && prev != labels[cellID] {
			t.Fatalf("cluster %d has mixed labels", ci)
		}
		clusterLabel[ci] = labels[cellID]
	}
	// Sorted clusters must be ascending in SER.
	order := r.ClustersBySER()
	for i := 1; i < len(order); i++ {
		if r.Clusters[order[i-1]].SER > r.Clusters[order[i]].SER {
			t.Fatal("ClustersBySER not ascending")
		}
	}
}

func TestEngineChoiceLevelSim(t *testing.T) {
	opts := testOptions()
	opts.Engine = sim.KindLevel
	opts.SampleFrac = 0.02
	run := prep(t, 1, opts)
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	if run.Result.Engine != string(sim.KindLevel) {
		t.Errorf("engine recorded as %s", run.Result.Engine)
	}
	if len(run.Result.Injections) == 0 {
		t.Fatal("LevelSim campaign performed no injections")
	}
}

func TestModuleLambdaOrdering(t *testing.T) {
	// SoC9 and SoC10 both carry 4MB of memory; SoC10's is rad-hard, which
	// must collapse the exposure by an order of magnitude (Table I shows a
	// 35x SER drop).
	lambda := func(idx int) float64 {
		run := prep(t, idx, testOptions())
		// λ is computed during aggregation; run a minimal campaign.
		if err := run.Campaign.Run(run.Result); err != nil {
			t.Fatal(err)
		}
		return run.Result.Modules["Memory"].Lambda
	}
	sram, rh := lambda(9), lambda(10)
	if rh*10 >= sram {
		t.Errorf("rad-hard memory lambda %g must be >=10x below same-size SRAM %g", rh, sram)
	}
}
