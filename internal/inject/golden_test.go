package inject

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/riscv"
	"repro/internal/socgen"
)

// encodeGoldenFor builds a campaign locally and returns its serialized
// golden artifact alongside the run.
func encodeGoldenFor(t *testing.T, opts Options) (*SoCRun, []byte) {
	t.Helper()
	run := prep(t, 1, opts)
	var buf bytes.Buffer
	if err := run.Campaign.EncodeGolden(&buf, run.Result.GoldenEvals); err != nil {
		t.Fatal(err)
	}
	return run, buf.Bytes()
}

func prepFromGolden(t *testing.T, opts Options, blob []byte) *SoCRun {
	t.Helper()
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := PrepareSoCFromGolden(cfg, riscv.MemcpyProgram(8), fault.DefaultDB(), opts, blob)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestGoldenArtifactAdoptionBitIdentical is the lake-never-changes-output
// gate at the campaign level: a campaign adopting a serialized golden
// artifact must produce results bit-identical to one that simulated the
// golden run itself — on both engines, and with the CompareVCD detector
// whose checkpoints additionally carry VCD writer states.
func TestGoldenArtifactAdoptionBitIdentical(t *testing.T) {
	cases := map[string]func(*Options){
		"EventSim":   func(o *Options) {},
		"LevelSim":   func(o *Options) { o.Engine = "LevelSim"; o.SampleFrac = 0.02 },
		"CompareVCD": func(o *Options) { o.CompareVCD = true; o.SampleFrac = 0.02 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			opts := testOptions()
			mutate(&opts)

			local, blob := encodeGoldenFor(t, opts)
			if err := local.Campaign.Run(local.Result); err != nil {
				t.Fatal(err)
			}

			adopted := prepFromGolden(t, opts, blob)
			if adopted.Result.GoldenEvals != local.Result.GoldenEvals {
				t.Fatalf("adopted GoldenEvals %d, builder reported %d",
					adopted.Result.GoldenEvals, local.Result.GoldenEvals)
			}
			if err := adopted.Campaign.Run(adopted.Result); err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, name, local.Result, adopted.Result)
			if adopted.Result.WarmStarts == 0 {
				t.Fatal("adopted campaign never warm-started — checkpoint schedule was not adopted")
			}
		})
	}
}

// TestGoldenArtifactDeterministic pins that the artifact bytes are a pure
// function of the campaign — the property content addressing keys on.
func TestGoldenArtifactDeterministic(t *testing.T) {
	opts := testOptions()
	_, a := encodeGoldenFor(t, opts)
	_, b := encodeGoldenFor(t, opts)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical campaigns encoded different golden artifacts")
	}
}

// TestGoldenArtifactRejectsCorruptAndMismatched covers the refusal paths:
// truncation, bit flips in the header, and an artifact built for different
// options must all error out rather than install a wrong golden state.
func TestGoldenArtifactRejectsCorruptAndMismatched(t *testing.T) {
	opts := testOptions()
	_, blob := encodeGoldenFor(t, opts)
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	try := func(o Options, b []byte) error {
		_, err := PrepareSoCFromGolden(cfg, riscv.MemcpyProgram(8), fault.DefaultDB(), o, b)
		return err
	}

	for _, cut := range []int{0, 4, len(blob) / 3, len(blob) - 1} {
		if err := try(opts, blob[:cut]); err == nil {
			t.Errorf("truncated artifact (%d bytes) accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if err := try(opts, bad); err == nil {
		t.Error("artifact with corrupt magic accepted")
	}

	other := opts
	other.Engine = "LevelSim"
	other.SampleFrac = 0.02
	if err := try(other, blob); err == nil {
		t.Error("EventSim artifact accepted by a LevelSim campaign")
	}
	vcdOpts := opts
	vcdOpts.CompareVCD = true
	if err := try(vcdOpts, blob); err == nil {
		t.Error("artifact without VCD state accepted by a CompareVCD campaign")
	}
}
