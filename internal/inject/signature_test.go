package inject

import (
	"testing"

	"repro/internal/logic"
)

func fillSignature(cols, rows int, flip func(r, c int) bool) *signature {
	s := newSignature(cols, rows)
	for r := 0; r < rows; r++ {
		row := s.addRow()
		for c := range row {
			v := logic.L0
			if flip != nil && flip(r, c) {
				v = logic.L1
			}
			row[c] = v
		}
	}
	return s
}

func TestSignatureSlab(t *testing.T) {
	const cols, rows = 7, 40
	s := fillSignature(cols, rows, func(r, c int) bool { return (r+c)%3 == 0 })
	if s.rows() != rows {
		t.Fatalf("rows() = %d, want %d", s.rows(), rows)
	}
	for r := 0; r < rows; r++ {
		row := s.row(r)
		if len(row) != cols {
			t.Fatalf("row %d has %d cols, want %d", r, len(row), cols)
		}
		for c := range row {
			want := logic.L0
			if (r+c)%3 == 0 {
				want = logic.L1
			}
			if row[c] != want {
				t.Fatalf("row %d col %d = %v, want %v", r, c, row[c], want)
			}
		}
	}

	same := fillSignature(cols, rows, func(r, c int) bool { return (r+c)%3 == 0 })
	if !s.equal(same) {
		t.Error("identical signatures compare unequal")
	}
	diff := fillSignature(cols, rows, func(r, c int) bool { return (r+c)%3 == 0 != (r == 20 && c == 3) })
	if s.equal(diff) {
		t.Error("differing signatures compare equal")
	}
	short := fillSignature(cols, rows-1, func(r, c int) bool { return (r+c)%3 == 0 })
	if s.equal(short) {
		t.Error("signatures of different lengths compare equal")
	}
}

func TestSignatureGrowsPastCapacityHint(t *testing.T) {
	s := newSignature(4, 2) // hint is two rows; add four
	for r := 0; r < 4; r++ {
		row := s.addRow()
		for c := range row {
			row[c] = logic.V(uint8(r) % 4)
		}
	}
	if s.rows() != 4 {
		t.Fatalf("rows() = %d, want 4", s.rows())
	}
	for r := 0; r < 4; r++ {
		if s.row(r)[0] != logic.V(uint8(r)%4) {
			t.Fatalf("row %d corrupted after growth", r)
		}
	}
}

// BenchmarkSignatureEqual measures the flat-slab comparison: the all-equal
// case is the hot path (most injections are masked), the early-mismatch
// case shows the first-difference bail-out.
func BenchmarkSignatureEqual(b *testing.B) {
	const cols, rows = 64, 512
	golden := fillSignature(cols, rows, func(r, c int) bool { return (r*c)%5 == 0 })
	same := fillSignature(cols, rows, func(r, c int) bool { return (r*c)%5 == 0 })
	early := fillSignature(cols, rows, func(r, c int) bool { return (r*c)%5 == 0 != (r == 0 && c == 1) })
	b.Run("all-equal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !golden.equal(same) {
				b.Fatal("signatures must match")
			}
		}
	})
	b.Run("early-mismatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if golden.equal(early) {
				b.Fatal("signatures must differ")
			}
		}
	})
}

// BenchmarkSignatureCapture measures building a full run signature row by
// row, the allocation pattern of every cold injection run.
func BenchmarkSignatureCapture(b *testing.B) {
	const cols, rows = 64, 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newSignature(cols, rows)
		for r := 0; r < rows; r++ {
			row := s.addRow()
			for c := range row {
				row[c] = logic.L1
			}
		}
		if s.rows() != rows {
			b.Fatal("short signature")
		}
	}
}
