package inject

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/xrand"
)

// resultKey flattens the deterministic parts of a Result for comparison:
// injections, chip SER, cluster stats and module stats. Wall-clock and
// eval counters are intentionally excluded — they are work metrics, and
// reducing them is the whole point of warm starts.
func assertResultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Injections) != len(b.Injections) {
		t.Fatalf("%s: injection counts differ: %d vs %d", label, len(a.Injections), len(b.Injections))
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			t.Fatalf("%s: injection %d differs: %+v vs %+v", label, i, a.Injections[i], b.Injections[i])
		}
	}
	if a.ChipSER != b.ChipSER {
		t.Fatalf("%s: ChipSER differs: %v vs %v", label, a.ChipSER, b.ChipSER)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("%s: cluster counts differ", label)
	}
	for i := range a.Clusters {
		if a.Clusters[i] != b.Clusters[i] {
			t.Fatalf("%s: cluster %d stats differ: %+v vs %+v", label, i, a.Clusters[i], b.Clusters[i])
		}
	}
	if len(a.Modules) != len(b.Modules) {
		t.Fatalf("%s: module counts differ", label)
	}
	for name, ma := range a.Modules {
		mb, ok := b.Modules[name]
		if !ok {
			t.Fatalf("%s: module %s missing", label, name)
		}
		if *ma != *mb {
			t.Fatalf("%s: module %s stats differ: %+v vs %+v", label, name, *ma, *mb)
		}
	}
}

// TestWarmColdWorkerDeterminism is the warm-start regression gate: the
// campaign result must be bit-identical across worker counts, across
// checkpoint pitches, and between the warm-start and replay-from-zero
// paths.
func TestWarmColdWorkerDeterminism(t *testing.T) {
	runWith := func(mutate func(*Options)) *Result {
		opts := testOptions()
		mutate(&opts)
		run := prep(t, 1, opts)
		if err := run.Campaign.Run(run.Result); err != nil {
			t.Fatal(err)
		}
		return run.Result
	}
	ref := runWith(func(o *Options) { o.Workers = 1; o.ColdStart = true })
	variants := map[string]func(*Options){
		"cold-8-workers":   func(o *Options) { o.Workers = 8; o.ColdStart = true },
		"warm-1-worker":    func(o *Options) { o.Workers = 1 },
		"warm-8-workers":   func(o *Options) { o.Workers = 8 },
		"warm-pitch-1":     func(o *Options) { o.Workers = 4; o.CheckpointEveryCycles = 1 },
		"warm-pitch-5":     func(o *Options) { o.Workers = 4; o.CheckpointEveryCycles = 5 },
		"warm-pitch-huge":  func(o *Options) { o.Workers = 4; o.CheckpointEveryCycles = 1000 },
		"warm-fixed-place": func(o *Options) { o.Workers = 4; o.CheckpointPlacement = PlacementFixed },
		"warm-quantile":    func(o *Options) { o.Workers = 4; o.CheckpointPlacement = PlacementQuantile },
	}
	for label, mutate := range variants {
		got := runWith(mutate)
		assertResultsIdentical(t, label, ref, got)
	}
}

// TestWarmStartReducesWork checks the perf contract behind Table III's
// campaign-runtime reduction: warm starts must cut injection-phase cell
// evaluations at least in half on the SoC workload, and the early-exit
// pruning must actually fire.
func TestWarmStartReducesWork(t *testing.T) {
	opts := testOptions()
	opts.SampleFrac = 0.08
	cold := opts
	cold.ColdStart = true
	coldRun := prep(t, 1, cold)
	if err := coldRun.Campaign.Run(coldRun.Result); err != nil {
		t.Fatal(err)
	}
	warmRun := prep(t, 1, opts)
	if err := warmRun.Campaign.Run(warmRun.Result); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "warm-vs-cold", coldRun.Result, warmRun.Result)
	if coldRun.Result.WarmStarts != 0 || coldRun.Result.PrunedRuns != 0 {
		t.Errorf("cold campaign reported warm starts: %+v", coldRun.Result.WarmStarts)
	}
	if warmRun.Result.WarmStarts == 0 {
		t.Fatal("warm campaign never restored a checkpoint")
	}
	if warmRun.Result.PrunedRuns == 0 {
		t.Error("no run was pruned by convergence detection — masked faults should converge")
	}
	if warmRun.Result.DeltaRestores == 0 {
		t.Error("no strike-sorted batch shared a restore point — delta restores never fired")
	}
	if w, c := warmRun.Result.InjectEvals, coldRun.Result.InjectEvals; 2*w > c {
		t.Errorf("warm starts saved too little work: warm %d evals vs cold %d (want >= 2x reduction)", w, c)
	}
}

// TestWarmStartLevelSim runs the warm path on the oblivious engine, which
// exercises the LevelSim Snapshot/Restore/MatchesCheckpoint path.
func TestWarmStartLevelSim(t *testing.T) {
	opts := testOptions()
	opts.Engine = "LevelSim"
	opts.SampleFrac = 0.02
	cold := opts
	cold.ColdStart = true
	coldRun := prep(t, 1, cold)
	if err := coldRun.Campaign.Run(coldRun.Result); err != nil {
		t.Fatal(err)
	}
	warmRun := prep(t, 1, opts)
	if err := warmRun.Campaign.Run(warmRun.Result); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "levelsim-warm-vs-cold", coldRun.Result, warmRun.Result)
	if warmRun.Result.WarmStarts == 0 {
		t.Fatal("LevelSim warm campaign never restored a checkpoint")
	}
	if w, c := warmRun.Result.InjectEvals, coldRun.Result.InjectEvals; w >= c {
		t.Errorf("LevelSim warm path did not reduce work: warm %d vs cold %d", w, c)
	}
}

// TestInjectionWindowShortPlans covers the degenerate stimulus plans that
// used to panic via Intn of a non-positive bound.
func TestInjectionWindowShortPlans(t *testing.T) {
	for _, durCycles := range []uint64{1, 2, 4, 5, 6} {
		period := uint64(socgen.ClockPeriodPS)
		c := &Campaign{
			plan: &socgen.StimulusPlan{PeriodPS: period, DurationPS: durCycles * period},
			rng:  xrand.New(1),
		}
		for i := 0; i < 50; i++ {
			tm := c.injectionWindow()
			if tm >= c.plan.DurationPS {
				t.Fatalf("duration %d cycles: strike %dps beyond plan end %dps", durCycles, tm, c.plan.DurationPS)
			}
		}
	}
}

// TestInjectionWindowMinimalWorkload runs a full campaign on the shortest
// real workload the stimulus builder produces.
func TestInjectionWindowMinimalWorkload(t *testing.T) {
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := socgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := socgen.RunWorkload(riscv.MemcpyProgram(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := socgen.BuildStimulus(f, wl)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.SampleFrac = 0.02
	camp, res, err := New(f, plan, fault.DefaultDB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.Run(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) == 0 {
		t.Fatal("minimal-duration campaign performed no injections")
	}
	for _, inj := range res.Injections {
		if inj.TimePS >= plan.DurationPS {
			t.Fatalf("strike %dps beyond plan end %dps", inj.TimePS, plan.DurationPS)
		}
	}
}
