package inject

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/vcd"
	"repro/internal/vpi"
	"repro/internal/xrand"
)

// reassemble merges per-range results back into plan order, the way
// shard.Merge does, so execution order cannot leak into the comparison.
func reassemble(c *Campaign, parts []*Result, order []int) *Result {
	res := &Result{Modules: map[string]*ModuleStats{}}
	byStart := make(map[int]*Result, len(parts))
	starts := make([]int, 0, len(parts))
	for i, p := range parts {
		byStart[order[i]] = p
		starts = append(starts, order[i])
	}
	sort.Ints(starts)
	for _, start := range starts {
		p := byStart[start]
		res.Injections = append(res.Injections, p.Injections...)
		res.WarmStarts += p.WarmStarts
		res.PrunedRuns += p.PrunedRuns
		res.InjectEvals += p.InjectEvals
	}
	c.Aggregate(res)
	return res
}

// TestBatchOrderIndependence is the strike-ordered batching gate: the
// batched whole-plan execution, a per-job execution in shuffled order,
// and a two-half execution in reverse order must all produce bit-identical
// verdicts and identical warm_starts/pruned_runs counters on both engines.
// (DeltaRestores legitimately differs — it counts restore-point sharing,
// which is exactly what execution order changes.)
func TestBatchOrderIndependence(t *testing.T) {
	for _, tc := range []struct {
		engine sim.EngineKind
		frac   float64
	}{
		{sim.KindEvent, 0.05},
		{sim.KindLevel, 0.03},
	} {
		t.Run(string(tc.engine), func(t *testing.T) {
			opts := testOptions()
			opts.Engine = tc.engine
			opts.SampleFrac = tc.frac
			opts.Workers = 4

			ref := prep(t, 1, opts)
			if err := ref.Campaign.Run(ref.Result); err != nil {
				t.Fatal(err)
			}
			if ref.Result.WarmStarts == 0 {
				t.Fatal("reference campaign never warm-started; the order pin would be vacuous")
			}

			// Shuffled per-job execution: every job its own RunJobs call, in
			// a seeded random order.
			shuf := prep(t, 1, opts)
			n := len(shuf.Campaign.DrawJobs())
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			rng := xrand.New(99)
			for i := n - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				order[i], order[j] = order[j], order[i]
			}
			parts := make([]*Result, n)
			for i, idx := range order {
				parts[i] = &Result{Modules: map[string]*ModuleStats{}}
				if err := shuf.Campaign.RunJobs(parts[i], idx, idx+1); err != nil {
					t.Fatal(err)
				}
			}
			got := reassemble(shuf.Campaign, parts, order)
			assertResultsIdentical(t, "shuffled-per-job", ref.Result, got)
			if got.WarmStarts != ref.Result.WarmStarts || got.PrunedRuns != ref.Result.PrunedRuns {
				t.Fatalf("shuffled counters differ: warm %d/%d pruned %d/%d",
					got.WarmStarts, ref.Result.WarmStarts, got.PrunedRuns, ref.Result.PrunedRuns)
			}

			// Reverse two-half execution: later strikes first, each half
			// internally batched.
			half := prep(t, 1, opts)
			hi := &Result{Modules: map[string]*ModuleStats{}}
			lo := &Result{Modules: map[string]*ModuleStats{}}
			if err := half.Campaign.RunJobs(hi, n/2, n); err != nil {
				t.Fatal(err)
			}
			if err := half.Campaign.RunJobs(lo, 0, n/2); err != nil {
				t.Fatal(err)
			}
			got2 := reassemble(half.Campaign, []*Result{hi, lo}, []int{n / 2, 0})
			assertResultsIdentical(t, "reverse-halves", ref.Result, got2)
			if got2.WarmStarts != ref.Result.WarmStarts || got2.PrunedRuns != ref.Result.PrunedRuns {
				t.Fatalf("reverse-half counters differ: warm %d/%d pruned %d/%d",
					got2.WarmStarts, ref.Result.WarmStarts, got2.PrunedRuns, ref.Result.PrunedRuns)
			}
		})
	}
}

// TestQuantilePlacementProperties is the placement property gate, over
// fabricated plans with random strike distributions: the adaptive
// schedule never exceeds the fixed pitch's checkpoint budget, and the
// total restore→strike tail it leaves is never worse than the fixed
// grid's. A clustered distribution must also demonstrate a strict win —
// the reason the policy exists.
func TestQuantilePlacementProperties(t *testing.T) {
	const period = uint64(socgen.ClockPeriodPS)
	const cycles = 36
	mk := func(strikes []uint64) *Campaign {
		c := &Campaign{
			plan: &socgen.StimulusPlan{PeriodPS: period, DurationPS: cycles * period},
			opts: Options{CheckpointPlacement: PlacementQuantile},
		}
		for _, s := range strikes {
			c.jobs = append(c.jobs, Job{TimePS: s})
		}
		c.jobsDrawn = true
		return c
	}
	sortedCopy := func(strikes []uint64) []uint64 {
		out := append([]uint64(nil), strikes...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		strikes := make([]uint64, n)
		for i := range strikes {
			// Mixed distributions: uniform, late-clustered, single-cycle.
			switch trial % 3 {
			case 0:
				strikes[i] = 3*period + uint64(rng.Intn(int((cycles-5)*period)))
			case 1:
				strikes[i] = (cycles-8)*period + uint64(rng.Intn(int(6*period)))
			default:
				strikes[i] = 10*period + 100 + uint64(rng.Intn(int(period-200)))
			}
		}
		c := mk(strikes)
		fixed := c.fixedCheckpointCycles()
		got := c.checkpointCycles()
		if len(got) > len(fixed) {
			t.Fatalf("trial %d: %d checkpoints exceed the fixed budget %d", trial, len(got), len(fixed))
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("trial %d: schedule not strictly ascending: %v", trial, got)
			}
		}
		ss := sortedCopy(strikes)
		if q, f := restoreTailSum(ss, got, period), restoreTailSum(ss, fixed, period); q > f {
			t.Fatalf("trial %d: quantile tail sum %d worse than fixed %d (schedule %v)", trial, q, f, got)
		}
	}

	// Clustered strikes: all inside one late cycle. The fixed grid's best
	// restore point can be a full pitch away; quantile must snap a
	// checkpoint into the strike cycle itself and strictly win.
	strikes := []uint64{31*period + 100, 31*period + 900, 31*period + 1700}
	c := mk(strikes)
	got := c.checkpointCycles()
	ss := sortedCopy(strikes)
	q, f := restoreTailSum(ss, got, period), restoreTailSum(ss, c.fixedCheckpointCycles(), period)
	if q >= f {
		t.Fatalf("clustered strikes: quantile tail sum %d does not beat fixed %d (schedule %v)", q, f, got)
	}
	// And the fixed policy must ignore the strikes entirely.
	c.opts.CheckpointPlacement = PlacementFixed
	if gotFixed := c.checkpointCycles(); len(gotFixed) != len(c.fixedCheckpointCycles()) {
		t.Fatalf("fixed placement returned %v", gotFixed)
	}
}

// TestCompareVCDWarmMatchesColdOracle is the warm VCD acceptance gate:
// a CompareVCD campaign with warm starts enabled must warm-start (the old
// code forced it cold) and produce verdicts bit-identical to the
// replay-and-diff-full-traces cold oracle, at a fraction of the work.
func TestCompareVCDWarmMatchesColdOracle(t *testing.T) {
	warmOpts := testOptions()
	warmOpts.CompareVCD = true
	coldOpts := warmOpts
	coldOpts.ColdStart = true

	cold := prep(t, 1, coldOpts)
	if err := cold.Campaign.Run(cold.Result); err != nil {
		t.Fatal(err)
	}
	warm := prep(t, 1, warmOpts)
	if err := warm.Campaign.Run(warm.Result); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "vcd-warm-vs-cold", cold.Result, warm.Result)
	if warm.Result.WarmStarts == 0 {
		t.Fatal("CompareVCD campaign never warm-started")
	}
	if cold.Result.WarmStarts != 0 {
		t.Fatalf("cold VCD oracle reported %d warm starts", cold.Result.WarmStarts)
	}
	if w, c := warm.Result.InjectEvals, cold.Result.InjectEvals; w == 0 || c == 0 || 2*w > c {
		t.Errorf("warm VCD path saved too little work: warm %d evals vs cold %d", w, c)
	}
}

// TestTailVCDMatchesColdDump pins the resumed-writer path: the faulty
// trace TailVCD assembles — golden dump prefix + tail dumped through the
// checkpoint's resumed writer state — must be byte-for-byte the dump a
// cold replay-from-zero faulty run produces.
func TestTailVCDMatchesColdDump(t *testing.T) {
	opts := testOptions()
	opts.CompareVCD = true
	run := prep(t, 1, opts)
	if err := run.Campaign.Run(run.Result); err != nil {
		t.Fatal(err)
	}
	c := run.Campaign
	checked := 0
	for _, inj := range run.Result.Injections {
		if checked >= 4 {
			break
		}
		if rec, _ := c.checkpointBefore(inj.TimePS); rec == nil {
			continue // pre-first-checkpoint strike: nothing to resume from
		}
		var warm bytes.Buffer
		if err := c.TailVCD(inj, &warm); err != nil {
			t.Fatalf("TailVCD %s: %v", inj.Path, err)
		}
		cold := coldDumpBytes(t, c, inj)
		if !bytes.Equal(warm.Bytes(), cold) {
			t.Fatalf("tail-resumed dump for %s diverges from the cold dump:\n--- warm ---\n%s\n--- cold ---\n%s",
				inj.Path, warm.String(), cold)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no injection struck after the first checkpoint; TailVCD never exercised")
	}
}

// coldDumpBytes replays one injection from t=0 with a fresh VCD writer
// and returns the raw dump.
func coldDumpBytes(t *testing.T, c *Campaign, inj Injection) []byte {
	t.Helper()
	fa, err := c.rebuildAction(inj)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(c.opts.Engine, c.flat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf)
	if err := sim.AttachVCD(eng, w, c.plan.Monitors); err != nil {
		t.Fatal(err)
	}
	if err := c.plan.Apply(eng); err != nil {
		t.Fatal(err)
	}
	if err := fa(vpi.New(eng)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(c.plan.DurationPS); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(c.plan.DurationPS); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
