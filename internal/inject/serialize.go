package inject

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
)

// resultJSON is the stable on-disk schema for campaign results. Function
// fields of Options are not persisted; everything needed to audit or
// re-label a campaign is.
type resultJSON struct {
	SchemaVersion int             `json:"schema_version"`
	Design        string          `json:"design"`
	Engine        string          `json:"engine"`
	LET           float64         `json:"let"`
	Flux          float64         `json:"flux"`
	ExposureS     float64         `json:"exposure_s"`
	KN            int             `json:"kn"`
	LN            int             `json:"ln"`
	SampleFrac    float64         `json:"sample_frac"`
	Seed          uint64          `json:"seed"`
	CkptCycles    int             `json:"checkpoint_every_cycles,omitempty"`
	CkptPlacement string          `json:"checkpoint_placement,omitempty"`
	ColdStart     bool            `json:"cold_start,omitempty"`
	WarmStarts    uint64          `json:"warm_starts,omitempty"`
	PrunedRuns    uint64          `json:"pruned_runs,omitempty"`
	DeltaRestores uint64          `json:"delta_restores,omitempty"`
	RestoreWallNS int64           `json:"restore_wall_ns,omitempty"`
	ChipSER       float64         `json:"chip_ser"`
	SETXsect      float64         `json:"set_xsect_cm2"`
	SEUXsect      float64         `json:"seu_xsect_cm2"`
	GoldenWallNS  int64           `json:"golden_wall_ns"`
	InjectWallNS  int64           `json:"inject_wall_ns"`
	GoldenEvals   uint64          `json:"golden_evals"`
	InjectEvals   uint64          `json:"inject_evals"`
	Clusters      []ClusterStats  `json:"clusters"`
	Modules       []ModuleStats   `json:"modules"`
	Injections    []injectionJSON `json:"injections"`
	ClusterOf     []int           `json:"cluster_of"`
}

type injectionJSON struct {
	CellID    int    `json:"cell_id"`
	Path      string `json:"path"`
	Kind      string `json:"kind"`
	TimePS    uint64 `json:"time_ps"`
	PulsePS   uint64 `json:"pulse_ps,omitempty"`
	Cluster   int    `json:"cluster"`
	SoftError bool   `json:"soft_error"`
}

const schemaVersion = 1

// WriteJSON serializes the campaign result.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		SchemaVersion: schemaVersion,
		Design:        r.Design,
		Engine:        r.Engine,
		LET:           r.Options.LET,
		Flux:          r.Options.Flux,
		ExposureS:     r.Options.ExposureS,
		KN:            r.Options.KN,
		LN:            r.Options.LN,
		SampleFrac:    r.Options.SampleFrac,
		Seed:          r.Options.Seed,
		CkptCycles:    r.Options.CheckpointEveryCycles,
		CkptPlacement: r.Options.CheckpointPlacement,
		ColdStart:     r.Options.ColdStart,
		WarmStarts:    r.WarmStarts,
		PrunedRuns:    r.PrunedRuns,
		DeltaRestores: r.DeltaRestores,
		RestoreWallNS: r.RestoreWall.Nanoseconds(),
		ChipSER:       r.ChipSER,
		SETXsect:      r.SETXsect,
		SEUXsect:      r.SEUXsect,
		GoldenWallNS:  r.GoldenWall.Nanoseconds(),
		InjectWallNS:  r.InjectWall.Nanoseconds(),
		GoldenEvals:   r.GoldenEvals,
		InjectEvals:   r.InjectEvals,
		Clusters:      r.Clusters,
		ClusterOf:     r.ClusterOf,
	}
	for _, name := range r.ModuleNames() {
		out.Modules = append(out.Modules, *r.Modules[name])
	}
	for _, inj := range r.Injections {
		out.Injections = append(out.Injections, injectionJSON{
			CellID:    inj.CellID,
			Path:      inj.Path,
			Kind:      inj.Kind.String(),
			TimePS:    inj.TimePS,
			PulsePS:   inj.PulsePS,
			Cluster:   inj.Cluster,
			SoftError: inj.SoftError,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON loads a previously serialized campaign result. Only the data
// fields are restored; the Options function hooks stay nil.
func ReadJSON(rd io.Reader) (*Result, error) {
	var in resultJSON
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("inject: decoding result: %v", err)
	}
	if in.SchemaVersion != schemaVersion {
		return nil, fmt.Errorf("inject: unsupported schema version %d", in.SchemaVersion)
	}
	res := &Result{
		Design:      in.Design,
		Engine:      in.Engine,
		ChipSER:     in.ChipSER,
		SETXsect:    in.SETXsect,
		SEUXsect:    in.SEUXsect,
		GoldenWall:  time.Duration(in.GoldenWallNS),
		InjectWall:  time.Duration(in.InjectWallNS),
		GoldenEvals: in.GoldenEvals,
		InjectEvals: in.InjectEvals,
		Clusters:    in.Clusters,
		ClusterOf:   in.ClusterOf,
		Modules:     map[string]*ModuleStats{},
	}
	res.Options.LET = in.LET
	res.Options.Flux = in.Flux
	res.Options.ExposureS = in.ExposureS
	res.Options.KN = in.KN
	res.Options.LN = in.LN
	res.Options.SampleFrac = in.SampleFrac
	res.Options.Seed = in.Seed
	res.Options.CheckpointEveryCycles = in.CkptCycles
	res.Options.CheckpointPlacement = in.CkptPlacement
	res.Options.ColdStart = in.ColdStart
	res.WarmStarts = in.WarmStarts
	res.PrunedRuns = in.PrunedRuns
	res.DeltaRestores = in.DeltaRestores
	res.RestoreWall = time.Duration(in.RestoreWallNS)
	for i := range in.Modules {
		m := in.Modules[i]
		res.Modules[m.Name] = &m
	}
	for _, inj := range in.Injections {
		kind := fault.KindFromString(inj.Kind)
		res.Injections = append(res.Injections, Injection{
			CellID:    inj.CellID,
			Path:      inj.Path,
			Kind:      kind,
			TimePS:    inj.TimePS,
			PulsePS:   inj.PulsePS,
			Cluster:   inj.Cluster,
			SoftError: inj.SoftError,
		})
	}
	return res, nil
}
