package cluster

import (
	"testing"

	"repro/internal/xrand"
)

func TestDistanceEq1(t *testing.T) {
	// LN=3, weights are 2^(3-1)=4, 2^(3-2)=2, 2^(3-3)=1 for layers 1..3.
	a := []string{"top", "cpu", "alu"}
	b := []string{"top", "cpu", "regfile"}
	if d := Distance(a, b, 3); d != 1 {
		t.Errorf("differ only at layer 3: d = %d, want 1", d)
	}
	c := []string{"top", "bus", "arb"}
	if d := Distance(a, c, 3); d != 3 {
		t.Errorf("differ at layers 2,3: d = %d, want 2+1=3", d)
	}
	e := []string{"other", "bus", "alu"}
	if d := Distance(a, e, 3); d != 6 {
		t.Errorf("differ at layers 1,2: d = %d, want 4+2=6", d)
	}
	if d := Distance(a, a, 3); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestDistanceShortTrails(t *testing.T) {
	a := []string{"top"}
	b := []string{"top"}
	if d := Distance(a, b, 5); d != 0 {
		t.Errorf("identical short trails: d = %d", d)
	}
	c := []string{"top", "mem"}
	// Layers 3..5 are empty for both; layer 2 differs ("" vs "mem").
	if d := Distance(a, c, 5); d != 8 {
		t.Errorf("d = %d, want 2^(5-2)=8", d)
	}
}

func TestDistanceSymmetricTriangleFuzz(t *testing.T) {
	rng := xrand.New(5)
	mods := []string{"a", "b", "c", ""}
	mk := func() []string {
		tr := make([]string, 1+rng.Intn(4))
		for i := range tr {
			tr[i] = mods[rng.Intn(len(mods))]
		}
		return tr
	}
	for i := 0; i < 2000; i++ {
		x, y, z := mk(), mk(), mk()
		ln := 1 + rng.Intn(5)
		if Distance(x, y, ln) != Distance(y, x, ln) {
			t.Fatalf("not symmetric: %v %v", x, y)
		}
		if Distance(x, z, ln) > Distance(x, y, ln)+Distance(y, z, ln) {
			t.Fatalf("triangle inequality violated: %v %v %v", x, y, z)
		}
	}
}

// synthTrails builds cells spread over three functional blocks with
// sub-blocks, mimicking an SoC hierarchy.
func synthTrails() [][]string {
	var trails [][]string
	blocks := map[string][]string{
		"u_cpu": {"u_alu", "u_regfile", "u_decode"},
		"u_bus": {"u_arb", "u_mux"},
		"u_mem": {"u_bank0", "u_bank1"},
	}
	for blk, subs := range blocks {
		for _, sub := range subs {
			for i := 0; i < 20; i++ {
				trails = append(trails, []string{"soc", blk, sub})
			}
		}
	}
	return trails
}

func TestClusterGroupsByBlock(t *testing.T) {
	trails := synthTrails()
	res, err := ClusterTrails(trails, 3, 3, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.KN != 3 {
		t.Fatalf("KN = %d", res.KN)
	}
	// Cells within the same sub-block must land in the same cluster.
	seen := map[string]int{}
	for i, tr := range trails {
		key := tr[1] + "/" + tr[2]
		if prev, ok := seen[key]; ok {
			if res.Assign[i] != prev {
				t.Fatalf("identical trails split across clusters: %v", tr)
			}
		} else {
			seen[key] = res.Assign[i]
		}
	}
	// With k=3 and LN=3, the dominant split should separate top blocks:
	// all cpu sub-blocks share a cluster iff block distance dominates.
	blockCluster := map[string]map[int]bool{}
	for i, tr := range trails {
		if blockCluster[tr[1]] == nil {
			blockCluster[tr[1]] = map[int]bool{}
		}
		blockCluster[tr[1]][res.Assign[i]] = true
	}
	distinct := map[int]bool{}
	for _, cs := range blockCluster {
		for c := range cs {
			distinct[c] = true
		}
	}
	if len(distinct) != 3 {
		t.Errorf("expected all 3 clusters used, got %d", len(distinct))
	}
}

func TestClusterDeterministic(t *testing.T) {
	trails := synthTrails()
	a, err := ClusterTrails(trails, 4, 3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterTrails(trails, 4, 3, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different clustering at %d", i)
		}
	}
}

func TestClusterKExceedsGroups(t *testing.T) {
	trails := [][]string{{"a"}, {"a"}, {"b"}}
	res, err := ClusterTrails(trails, 10, 2, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.KN != 2 {
		t.Errorf("KN must clamp to unique-trail count 2, got %d", res.KN)
	}
	if res.Assign[0] != res.Assign[1] {
		t.Error("identical trails must share a cluster")
	}
	if res.Assign[0] == res.Assign[2] {
		t.Error("distinct trails with k=2 must separate")
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := ClusterTrails(nil, 3, 3, xrand.New(1)); err == nil {
		t.Error("empty input must fail")
	}
	tr := [][]string{{"a"}}
	if _, err := ClusterTrails(tr, 0, 3, xrand.New(1)); err == nil {
		t.Error("KN=0 must fail")
	}
	if _, err := ClusterTrails(tr, 1, 0, xrand.New(1)); err == nil {
		t.Error("LN=0 must fail")
	}
}

func TestMembersPartition(t *testing.T) {
	trails := synthTrails()
	res, err := ClusterTrails(trails, 5, 3, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := make([]bool, len(trails))
	for _, members := range res.Members {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("cell %d in two clusters", m)
			}
			seen[m] = true
			count++
		}
	}
	if count != len(trails) {
		t.Fatalf("partition covers %d of %d cells", count, len(trails))
	}
}

func TestMeanIntraDistanceImprovesWithK(t *testing.T) {
	trails := synthTrails()
	r1, _ := ClusterTrails(trails, 1, 3, xrand.New(9))
	r7, _ := ClusterTrails(trails, 7, 3, xrand.New(9))
	d1 := r1.MeanIntraDistance(trails)
	d7 := r7.MeanIntraDistance(trails)
	if !(d7 < d1) {
		t.Errorf("more clusters must reduce intra distance: k=1 %g vs k=7 %g", d1, d7)
	}
	if d7 != 0 {
		t.Errorf("7 clusters over 7 unique trails must be exact, got %g", d7)
	}
}

func TestSampleProportional(t *testing.T) {
	trails := synthTrails()
	res, _ := ClusterTrails(trails, 3, 3, xrand.New(11))
	rng := xrand.New(13)
	samples := SampleProportional(res, 0.25, 2, rng)
	if len(samples) != len(res.Members) {
		t.Fatal("one sample set per cluster expected")
	}
	for ci, s := range samples {
		size := len(res.Members[ci])
		if size == 0 {
			continue
		}
		want := int(0.25*float64(size) + 0.999999)
		if want < 2 {
			want = 2
		}
		if want > size {
			want = size
		}
		if len(s) != want {
			t.Errorf("cluster %d: sampled %d, want %d of %d", ci, len(s), want, size)
		}
		seen := map[int]bool{}
		inCluster := map[int]bool{}
		for _, m := range res.Members[ci] {
			inCluster[m] = true
		}
		for _, m := range s {
			if seen[m] {
				t.Errorf("cluster %d: duplicate sample %d", ci, m)
			}
			seen[m] = true
			if !inCluster[m] {
				t.Errorf("cluster %d: sample %d not a member", ci, m)
			}
		}
	}
}

func TestSampleProportionalFullCoverage(t *testing.T) {
	trails := [][]string{{"a"}, {"a"}, {"b"}, {"b"}}
	res, _ := ClusterTrails(trails, 2, 1, xrand.New(1))
	samples := SampleProportional(res, 1.0, 1, xrand.New(2))
	total := 0
	for _, s := range samples {
		total += len(s)
	}
	if total != 4 {
		t.Errorf("frac=1 must sample every cell, got %d", total)
	}
}
