package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// trailFrom decodes a compact seed into a bounded random trail.
func trailFrom(seed uint32) []string {
	mods := []string{"a", "b", "c", "d"}
	depth := 1 + int(seed%4)
	tr := make([]string, depth)
	s := seed / 4
	for i := range tr {
		tr[i] = mods[s%uint32(len(mods))]
		s /= uint32(len(mods))
	}
	return tr
}

// TestQuickDistanceMetricAxioms: Eq. (1) is a metric on bounded trails —
// non-negative, zero iff prefix-equal up to LN, symmetric, triangular.
func TestQuickDistanceMetricAxioms(t *testing.T) {
	f := func(sa, sb, sc uint32, lnRaw uint8) bool {
		ln := 1 + int(lnRaw%5)
		a, b, c := trailFrom(sa), trailFrom(sb), trailFrom(sc)
		dab, dba := Distance(a, b, ln), Distance(b, a, ln)
		if dab != dba || dab < 0 {
			return false
		}
		if Distance(a, a, ln) != 0 {
			return false
		}
		if Distance(a, c, ln) > Distance(a, b, ln)+Distance(b, c, ln) {
			return false
		}
		// Identity of indiscernibles over the LN window: zero distance
		// means the first LN layers agree (padding with empty segments).
		if dab == 0 {
			for li := 0; li < ln; li++ {
				var ma, mb string
				if li < len(a) {
					ma = a[li]
				}
				if li < len(b) {
					mb = b[li]
				}
				if ma != mb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickClusterPartition: for arbitrary trail multisets and parameters,
// ClusterTrails yields a complete partition with identical trails always
// co-clustered, and exactly KN (clamped) populated clusters.
func TestQuickClusterPartition(t *testing.T) {
	f := func(seeds []uint32, knRaw, lnRaw, seed uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 60 {
			seeds = seeds[:60]
		}
		kn := 1 + int(knRaw%8)
		ln := 1 + int(lnRaw%4)
		trails := make([][]string, len(seeds))
		unique := map[string]bool{}
		classes := map[string]bool{} // distance-0 equivalence classes at LN
		for i, s := range seeds {
			trails[i] = trailFrom(s)
			unique[strings.Join(trails[i], "\x00")] = true
			cls := trails[i]
			if len(cls) > ln {
				cls = cls[:ln]
			}
			classes[strings.Join(cls, "\x00")] = true
		}
		res, err := ClusterTrails(trails, kn, ln, xrand.New(uint64(seed)))
		if err != nil {
			return false
		}
		wantK := kn
		if wantK > len(unique) {
			wantK = len(unique)
		}
		if res.KN != wantK {
			return false
		}
		// Partition: every index in exactly one cluster.
		seen := make([]bool, len(trails))
		populated := 0
		for _, members := range res.Members {
			if len(members) > 0 {
				populated++
			}
			for _, m := range members {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Only classes distinguishable under Eq. (1) at depth LN can form
		// separate populated clusters; beyond that, clusters stay empty.
		maxPopulated := wantK
		if len(classes) < maxPopulated {
			maxPopulated = len(classes)
		}
		if populated > wantK || populated < 1 || populated < min(maxPopulated, wantK) {
			return false
		}
		// Identical trails share clusters.
		byKey := map[string]int{}
		for i, tr := range trails {
			key := strings.Join(tr, "\x00")
			if prev, ok := byKey[key]; ok && prev != res.Assign[i] {
				return false
			}
			byKey[key] = res.Assign[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSampleProportionalBounds: samples stay inside their cluster,
// unique, and within [min, cluster size].
func TestQuickSampleProportionalBounds(t *testing.T) {
	f := func(seeds []uint32, fracRaw, minRaw, seed uint8) bool {
		if len(seeds) < 2 {
			return true
		}
		if len(seeds) > 50 {
			seeds = seeds[:50]
		}
		trails := make([][]string, len(seeds))
		for i, s := range seeds {
			trails[i] = trailFrom(s)
		}
		res, err := ClusterTrails(trails, 3, 3, xrand.New(7))
		if err != nil {
			return false
		}
		frac := 0.05 + float64(fracRaw%90)/100
		minPer := 1 + int(minRaw%4)
		samples := SampleProportional(res, frac, minPer, xrand.New(uint64(seed)))
		for ci, sample := range samples {
			if len(sample) > len(res.Members[ci]) {
				return false
			}
			inCluster := map[int]bool{}
			for _, m := range res.Members[ci] {
				inCluster[m] = true
			}
			seen := map[int]bool{}
			for _, m := range sample {
				if !inCluster[m] || seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
