// Package cluster implements Algorithm 1 of the paper: k-medoids-style
// clustering of netlist cells using the layer-weighted hierarchical distance
// of Eq. (1). Cells that share deep module ancestry are close; cells that
// diverge near the top of the hierarchy are far apart. The fault-injection
// campaign samples each resulting cluster in equal proportion.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/xrand"
)

// Distance computes Eq. (1):
//
//	D(A,B) = Σ_{Li=1..LN} Compare(Module_A_Li, Module_B_Li) · 2^(LN−Li)
//
// where layer Li is the Li-th segment of the instance trail and Compare is
// 0 for identical modules, 1 otherwise. Trails shorter than LN compare as
// empty segments, so two cells directly in a shallow module still agree on
// the missing deeper layers.
func Distance(a, b []string, ln int) int {
	d := 0
	for li := 1; li <= ln; li++ {
		var ma, mb string
		if li-1 < len(a) {
			ma = a[li-1]
		}
		if li-1 < len(b) {
			mb = b[li-1]
		}
		if ma != mb {
			d += 1 << uint(ln-li)
		}
	}
	return d
}

// Result is the output of ClusterCells: cluster index per cell plus the
// grouped members and per-cluster medoid trails.
type Result struct {
	KN         int
	LN         int
	Assign     []int   // cluster index for each input cell position
	Members    [][]int // cell positions per cluster
	Medoids    []string
	Iterations int
}

// MeanIntraDistance is the average distance from each cell to its cluster
// medoid — the compactness metric used by the depth-ablation bench.
func (r *Result) MeanIntraDistance(trails [][]string) float64 {
	if len(trails) == 0 {
		return 0
	}
	var sum float64
	for ci, members := range r.Members {
		med := strings.Split(r.Medoids[ci], "\x00")
		for _, idx := range members {
			sum += float64(Distance(trails[idx], med, r.LN))
		}
	}
	return sum / float64(len(trails))
}

// group is a set of cells sharing one hierarchical trail.
type group struct {
	trail   []string
	key     string
	members []int
	weight  int
}

// ClusterCells runs Algorithm 1 over the cells of a flattened design.
// kn is the number of clusters, ln the layer depth of Eq. (1); rng drives
// the initial center selection. Cells sharing an identical trail are
// deduplicated first, which preserves the algorithm's result exactly (their
// pairwise distance is zero, so they always travel together) while keeping
// the medoid update tractable on memory-dominated SoCs.
func ClusterCells(f *netlist.Flat, kn, ln int, rng *xrand.RNG) (*Result, error) {
	trails := make([][]string, len(f.Cells))
	for i, c := range f.Cells {
		trails[i] = c.Trail
	}
	return ClusterTrails(trails, kn, ln, rng)
}

// ClusterTrails is ClusterCells for pre-extracted trails.
func ClusterTrails(trails [][]string, kn, ln int, rng *xrand.RNG) (*Result, error) {
	if kn < 1 {
		return nil, fmt.Errorf("cluster: KN must be >= 1, got %d", kn)
	}
	if ln < 1 {
		return nil, fmt.Errorf("cluster: LN must be >= 1, got %d", ln)
	}
	if len(trails) == 0 {
		return nil, fmt.Errorf("cluster: no cells to cluster")
	}
	// Deduplicate by trail.
	byKey := map[string]*group{}
	var groups []*group
	for i, tr := range trails {
		key := strings.Join(tr, "\x00")
		g, ok := byKey[key]
		if !ok {
			g = &group{trail: tr, key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, i)
		g.weight++
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	if kn > len(groups) {
		kn = len(groups)
	}

	// Pairwise distances between unique trails.
	n := len(groups)
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := 0; j < i; j++ {
			d := Distance(groups[i].trail, groups[j].trail, ln)
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	// Initial centers: random distinct groups (Algorithm 1 line 2).
	centers := rng.Sample(n, kn)
	sort.Ints(centers)

	assign := make([]int, n)
	const maxIter = 200
	iter := 0
	for ; iter < maxIter; iter++ {
		// assign_cells (lines 9-16): nearest center, ties to lowest index.
		for gi := range groups {
			best, bestD := 0, dist[gi][centers[0]]
			for ci := 1; ci < kn; ci++ {
				if d := dist[gi][centers[ci]]; d < bestD {
					best, bestD = ci, d
				}
			}
			assign[gi] = best
		}
		// update_centers (lines 17-24): weighted medoid per cluster.
		newCenters := make([]int, kn)
		isCenter := map[int]bool{}
		for ci := 0; ci < kn; ci++ {
			bestG, bestSum := -1, 0
			for gi := range groups {
				if assign[gi] != ci {
					continue
				}
				sum := 0
				for gj := range groups {
					if assign[gj] == ci {
						sum += dist[gi][gj] * groups[gj].weight
					}
				}
				if bestG < 0 || sum < bestSum || (sum == bestSum && gi < bestG) {
					bestG, bestSum = gi, sum
				}
			}
			if bestG >= 0 {
				newCenters[ci] = bestG
				isCenter[bestG] = true
			} else {
				newCenters[ci] = -1 // repaired below
			}
		}
		// Empty-cluster repair: reseed each empty cluster at the group
		// farthest from its assigned center, so every cluster stays
		// populated and the configured KN is honored.
		for ci := 0; ci < kn; ci++ {
			if newCenters[ci] >= 0 {
				continue
			}
			farG, farD := -1, -1
			for gi := range groups {
				if isCenter[gi] {
					continue
				}
				// Weighted distance from the group to its present center.
				cur := assign[gi]
				dd := 0
				if newCenters[cur] >= 0 {
					dd = dist[gi][newCenters[cur]] * groups[gi].weight
				}
				if dd > farD {
					farG, farD = gi, dd
				}
			}
			if farG < 0 {
				farG = centers[ci]
			}
			newCenters[ci] = farG
			isCenter[farG] = true
		}
		same := true
		for ci := range centers {
			if centers[ci] != newCenters[ci] {
				same = false
				break
			}
		}
		centers = newCenters
		if same {
			break
		}
	}

	res := &Result{
		KN:      kn,
		LN:      ln,
		Assign:  make([]int, len(trails)),
		Members: make([][]int, kn),
		Medoids: make([]string, kn),
	}
	res.Iterations = iter + 1
	for ci := 0; ci < kn; ci++ {
		res.Medoids[ci] = groups[centers[ci]].key
	}
	for gi, g := range groups {
		for _, idx := range g.members {
			res.Assign[idx] = assign[gi]
			res.Members[assign[gi]] = append(res.Members[assign[gi]], idx)
		}
	}
	for ci := range res.Members {
		sort.Ints(res.Members[ci])
	}
	return res, nil
}

// SampleProportional draws an equal-proportion random sample from every
// cluster (the paper's "equal-proportional random sampling strategy"):
// ceil(frac·|cluster|) members of each, at least minPer when the cluster is
// at least that large.
func SampleProportional(r *Result, frac float64, minPer int, rng *xrand.RNG) [][]int {
	out := make([][]int, len(r.Members))
	for ci, members := range r.Members {
		if len(members) == 0 {
			continue
		}
		k := int(frac*float64(len(members)) + 0.999999)
		if k < minPer {
			k = minPer
		}
		if k > len(members) {
			k = len(members)
		}
		idxs := rng.Sample(len(members), k)
		sort.Ints(idxs)
		picked := make([]int, 0, k)
		for _, i := range idxs {
			picked = append(picked, members[i])
		}
		out[ci] = picked
	}
	return out
}
