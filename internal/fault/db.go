// Package fault implements the paper's single-particle fault machinery: the
// SEU and SET equivalent fault models of Fig. 2 and the per-cell soft-error
// database of Fig. 3, which maps linear energy transfer (LET) values to
// state-conditioned upset cross-sections. The database feeds the injection
// campaign: for a given heavy-ion flux and exposure time it yields the
// expected number of upsets per cell and the SET pulse width.
package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cell"
)

// Kind is the single-event fault type.
type Kind uint8

// Fault kinds.
const (
	SEU Kind = iota // single-event upset: storage bit flip
	SET             // single-event transient: pulse on a combinational output
)

// String names the kind as the paper does.
func (k Kind) String() string {
	if k == SEU {
		return "SEU"
	}
	return "SET"
}

// KindFromString parses a kind name; unknown strings map to SEU.
func KindFromString(s string) Kind {
	if s == "SET" {
		return SET
	}
	return SEU
}

// SubXsect is one conditioned sub-cross-section of a database entry, e.g.
// "SEU 1->0" applying only when (q==1) & (qn==0).
type SubXsect struct {
	Name  string
	Cond  string  // boolean condition over node values; empty means always
	Xsect float64 // cm²
}

// LETEntry groups the sub-cross-sections measured at one LET value
// (MeV·cm²/mg).
type LETEntry struct {
	LET float64
	Sub []SubXsect
}

// Total returns the sum of sub-cross-sections, the cell's full sensitivity
// at this LET.
func (e LETEntry) Total() float64 {
	var t float64
	for _, s := range e.Sub {
		t += s.Xsect
	}
	return t
}

// CellEntry is the database record for one library cell, mirroring the
// fields of the paper's Fig. 3 example.
type CellEntry struct {
	CellName        string
	Ports           []string
	InputDataPorts  []string
	OutputDataPorts []string
	Model           string            // "SEU-DFF", "SEU-MEM" or "SET-COMB"
	Nodes           map[string]string // logical node -> behavioural instance node
	SoftErrors      []LETEntry        // ascending LET
	PulseBasePS     float64           // SET only: base pulse width at LET 1
}

// Kind infers the fault kind this entry models.
func (c *CellEntry) Kind() Kind {
	if c.Model == "SET-COMB" {
		return SET
	}
	return SEU
}

// XsectAt returns the total cross-section at the given LET, interpolating
// log-linearly between tabulated points and clamping outside the table.
func (c *CellEntry) XsectAt(let float64) float64 {
	n := len(c.SoftErrors)
	if n == 0 {
		return 0
	}
	if let <= c.SoftErrors[0].LET {
		return c.SoftErrors[0].Total()
	}
	if let >= c.SoftErrors[n-1].LET {
		return c.SoftErrors[n-1].Total()
	}
	i := sort.Search(n, func(i int) bool { return c.SoftErrors[i].LET >= let }) - 1
	lo, hi := c.SoftErrors[i], c.SoftErrors[i+1]
	frac := (let - lo.LET) / (hi.LET - lo.LET)
	tl, th := lo.Total(), hi.Total()
	if tl <= 0 || th <= 0 {
		return tl + frac*(th-tl)
	}
	return math.Exp(math.Log(tl) + frac*(math.Log(th)-math.Log(tl)))
}

// PulseWidthPS returns the SET pulse width in picoseconds for the given
// LET: wider pulses at higher deposited charge, following the logarithmic
// growth reported in transient-characterization literature.
func (c *CellEntry) PulseWidthPS(let float64) uint64 {
	if c.Kind() != SET {
		return 0
	}
	base := c.PulseBasePS
	if base <= 0 {
		base = 40
	}
	w := base * (1 + math.Log1p(let)/math.Ln2/4)
	if w < 1 {
		w = 1
	}
	return uint64(w)
}

// DB is the soft-error database: one entry per library cell.
type DB struct {
	Entries map[string]*CellEntry
}

// Entry returns the record for a cell name.
func (db *DB) Entry(cellName string) (*CellEntry, error) {
	e, ok := db.Entries[cellName]
	if !ok {
		return nil, fmt.Errorf("fault: no database entry for cell %q", cellName)
	}
	return e, nil
}

// CellNames returns the entries' cell names in sorted order.
func (db *DB) CellNames() []string {
	names := make([]string, 0, len(db.Entries))
	for n := range db.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StandardLETs are the LET values the paper selects "to encompass different
// radiation environments".
var StandardLETs = []float64{1.0, 37.0, 100.0}

// weibull is the classic 4-parameter Weibull cross-section curve used to
// fit heavy-ion test data: sigma(LET) = sat * (1 - exp(-((LET-L0)/W)^S)).
func weibull(let, sat, l0, w, s float64) float64 {
	if let <= l0 {
		return 0
	}
	return sat * (1 - math.Exp(-math.Pow((let-l0)/w, s)))
}

// radParams are the per-radiation-class Weibull parameters of the default
// database. Saturation cross-sections keep the Table I ordering: SRAM most
// sensitive, then DRAM, flip-flops, combinational logic; rad-hard SRAM is
// both far less sensitive and has a high LET threshold.
var radParams = map[cell.RadClass]struct{ sat, l0, w, s float64 }{
	cell.RadSRAM:   {sat: 4.0e-8, l0: 0.4, w: 18, s: 1.6},
	cell.RadDRAM:   {sat: 2.2e-8, l0: 0.9, w: 26, s: 1.5},
	cell.RadFF:     {sat: 3.0e-8, l0: 0.6, w: 20, s: 1.7},
	cell.RadComb:   {sat: 1.4e-8, l0: 1.2, w: 30, s: 1.4},
	cell.RadRHSRAM: {sat: 2.5e-9, l0: 14.0, w: 40, s: 2.0},
}

// DefaultDB synthesizes the database for every library cell at the standard
// LET points. Storage cells get the two conditioned sub-cross-sections of
// Fig. 3 (SEU 1->0 and SEU 0->1, the former slightly smaller as in the
// paper's example); combinational cells get a single SET entry.
func DefaultDB() *DB {
	db := &DB{Entries: map[string]*CellEntry{}}
	for _, name := range cell.Names() {
		def := cell.MustLookup(name)
		p, ok := radParams[def.Rad]
		if !ok {
			continue
		}
		e := &CellEntry{
			CellName:        name,
			Ports:           append(append([]string{}, def.Inputs...), def.Outputs...),
			InputDataPorts:  append([]string{}, def.Inputs...),
			OutputDataPorts: append([]string{}, def.Outputs...),
			Nodes:           map[string]string{},
		}
		for _, port := range e.Ports {
			e.Nodes[port] = fmt.Sprintf("%s_behav_inst.%s", name, port)
		}
		// Area scaling: larger cells present a larger sensitive area.
		scale := def.AreaUM2 / 2.0
		if scale < 0.2 {
			scale = 0.2
		}
		switch def.Class {
		case cell.Sequential:
			e.Model = "SEU-DFF"
		case cell.Memory:
			e.Model = "SEU-MEM"
		default:
			e.Model = "SET-COMB"
			e.PulseBasePS = 30 + 4*def.AreaUM2
		}
		for _, let := range StandardLETs {
			total := weibull(let, p.sat, p.l0, p.w, p.s) * scale
			var subs []SubXsect
			if def.IsSequential() {
				cond10, cond01 := "(q==1)", "(q==0)"
				if def.Seq.HasQN {
					cond10, cond01 = "(q==1) & (qn==0)", "(q==0) & (qn==1)"
				}
				subs = []SubXsect{
					{Name: "SEU 1->0", Cond: cond10, Xsect: total * 0.43},
					{Name: "SEU 0->1", Cond: cond01, Xsect: total * 0.57},
				}
			} else {
				subs = []SubXsect{{Name: "SET pulse", Xsect: total}}
			}
			e.SoftErrors = append(e.SoftErrors, LETEntry{LET: let, Sub: subs})
		}
		db.Entries[name] = e
	}
	return db
}

// ExpectedUpsets converts a flux (particles/cm²/s), a cross-section (cm²)
// and an exposure time (simulated picoseconds scaled by timeScale, the
// acceleration factor between simulated time and real exposure) into the
// mean number of upsets for one cell.
func ExpectedUpsets(flux, xsect float64, durationPS uint64, timeScale float64) float64 {
	seconds := float64(durationPS) * 1e-12 * timeScale
	return flux * xsect * seconds
}
