package fault

import (
	"fmt"
	"strings"
)

// EvalCond evaluates a database condition string such as
// "(q==1) & (qn==0)" against a node-value environment. The grammar is the
// small subset Fig. 3 of the paper uses:
//
//	expr   := clause (('&' | '|') clause)*
//	clause := '(' ident '==' digit ')'
//
// '&' binds no tighter than '|'; evaluation is strict left-to-right, which
// is sufficient for the single-operator conditions the database contains.
// Unknown node values make the condition false (an upset cannot be
// classified against an X state).
func EvalCond(cond string, env map[string]int) (bool, error) {
	cond = strings.TrimSpace(cond)
	if cond == "" {
		return true, nil
	}
	p := condParser{s: cond}
	v, err := p.parseExpr(env)
	if err != nil {
		return false, fmt.Errorf("fault: condition %q: %v", cond, err)
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return false, fmt.Errorf("fault: condition %q: trailing input at %d", cond, p.pos)
	}
	return v, nil
}

type condParser struct {
	s   string
	pos int
}

func (p *condParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *condParser) parseExpr(env map[string]int) (bool, error) {
	v, err := p.parseClause(env)
	if err != nil {
		return false, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.s) {
			return v, nil
		}
		op := p.s[p.pos]
		if op != '&' && op != '|' {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseClause(env)
		if err != nil {
			return false, err
		}
		if op == '&' {
			v = v && rhs
		} else {
			v = v || rhs
		}
	}
}

func (p *condParser) parseClause(env map[string]int) (bool, error) {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != '(' {
		return false, fmt.Errorf("expected '(' at %d", p.pos)
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && isCondIdent(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return false, fmt.Errorf("expected identifier at %d", start)
	}
	name := p.s[start:p.pos]
	p.skipSpace()
	if !strings.HasPrefix(p.s[p.pos:], "==") {
		return false, fmt.Errorf("expected '==' at %d", p.pos)
	}
	p.pos += 2
	p.skipSpace()
	if p.pos >= len(p.s) || (p.s[p.pos] != '0' && p.s[p.pos] != '1') {
		return false, fmt.Errorf("expected 0 or 1 at %d", p.pos)
	}
	want := int(p.s[p.pos] - '0')
	p.pos++
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != ')' {
		return false, fmt.Errorf("expected ')' at %d", p.pos)
	}
	p.pos++
	got, ok := env[name]
	if !ok {
		return false, nil // unknown/X node: condition cannot hold
	}
	return got == want, nil
}

func isCondIdent(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// MatchSub returns the first sub-cross-section of the entry at the given
// LET whose condition holds in env, which selects between "SEU 1->0" and
// "SEU 0->1" for a storage cell in a known state. The boolean reports
// whether any matched.
func (c *CellEntry) MatchSub(let float64, env map[string]int) (SubXsect, bool, error) {
	var best *LETEntry
	for i := range c.SoftErrors {
		if c.SoftErrors[i].LET == let {
			best = &c.SoftErrors[i]
			break
		}
	}
	if best == nil && len(c.SoftErrors) > 0 {
		// Fall back to the nearest tabulated LET.
		bd := -1.0
		for i := range c.SoftErrors {
			d := c.SoftErrors[i].LET - let
			if d < 0 {
				d = -d
			}
			if bd < 0 || d < bd {
				bd = d
				best = &c.SoftErrors[i]
			}
		}
	}
	if best == nil {
		return SubXsect{}, false, nil
	}
	for _, sub := range best.Sub {
		ok, err := EvalCond(sub.Cond, env)
		if err != nil {
			return SubXsect{}, false, err
		}
		if ok {
			return sub, true, nil
		}
	}
	return SubXsect{}, false, nil
}
