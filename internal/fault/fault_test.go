package fault

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cell"
)

func TestDefaultDBCoversLibrary(t *testing.T) {
	db := DefaultDB()
	for _, name := range cell.Names() {
		e, err := db.Entry(name)
		if err != nil {
			t.Errorf("no entry for %s: %v", name, err)
			continue
		}
		if len(e.SoftErrors) != len(StandardLETs) {
			t.Errorf("%s: %d LET entries, want %d", name, len(e.SoftErrors), len(StandardLETs))
		}
		def := cell.MustLookup(name)
		if def.IsSequential() && e.Kind() != SEU {
			t.Errorf("%s: sequential cell must model SEU, got %s", name, e.Model)
		}
		if !def.IsSequential() && e.Kind() != SET {
			t.Errorf("%s: combinational cell must model SET, got %s", name, e.Model)
		}
	}
	if _, err := db.Entry("NOPE"); err == nil {
		t.Error("unknown cell must error")
	}
}

func TestXsectMonotoneInLET(t *testing.T) {
	db := DefaultDB()
	for _, name := range []string{"SRAMBITX1", "DRAMBITX1", "DFFX1", "INVX1"} {
		e, _ := db.Entry(name)
		prev := -1.0
		for _, let := range []float64{1, 5, 10, 37, 60, 100} {
			x := e.XsectAt(let)
			if x < prev {
				t.Errorf("%s: xsect not monotone at LET %g: %g < %g", name, let, x, prev)
			}
			prev = x
		}
	}
}

func TestXsectOrderingMatchesTableI(t *testing.T) {
	db := DefaultDB()
	sram, _ := db.Entry("SRAMBITX1")
	dram, _ := db.Entry("DRAMBITX1")
	rh, _ := db.Entry("RHSRAMBITX1")
	let := 37.0
	if !(sram.XsectAt(let) > dram.XsectAt(let)) {
		t.Errorf("SRAM must be more sensitive than DRAM: %g vs %g", sram.XsectAt(let), dram.XsectAt(let))
	}
	if !(dram.XsectAt(let) > rh.XsectAt(let)*2) {
		t.Errorf("rad-hard SRAM must be much less sensitive: dram=%g rh=%g", dram.XsectAt(let), rh.XsectAt(let))
	}
	if rh.XsectAt(1.0) != 0 {
		t.Errorf("rad-hard below threshold must have zero xsect, got %g", rh.XsectAt(1.0))
	}
}

func TestXsectInterpolationBounds(t *testing.T) {
	db := DefaultDB()
	e, _ := db.Entry("DFFX1")
	lo := e.SoftErrors[0].Total()
	hi := e.SoftErrors[len(e.SoftErrors)-1].Total()
	if got := e.XsectAt(0.1); got != lo {
		t.Errorf("below-table LET must clamp to first entry: %g vs %g", got, lo)
	}
	if got := e.XsectAt(500); got != hi {
		t.Errorf("above-table LET must clamp to last entry: %g vs %g", got, hi)
	}
	mid := e.XsectAt(60)
	if mid <= e.XsectAt(37) || mid >= hi {
		t.Errorf("interpolated xsect out of order: %g", mid)
	}
}

func TestPulseWidthGrowsWithLET(t *testing.T) {
	db := DefaultDB()
	e, _ := db.Entry("NAND2X1")
	w1, w2 := e.PulseWidthPS(1), e.PulseWidthPS(100)
	if w1 == 0 || w2 <= w1 {
		t.Errorf("pulse width must grow with LET: %d -> %d", w1, w2)
	}
	seq, _ := db.Entry("DFFX1")
	if seq.PulseWidthPS(37) != 0 {
		t.Error("SEU entries have no pulse width")
	}
}

func TestEvalCond(t *testing.T) {
	env := map[string]int{"q": 1, "qn": 0}
	cases := []struct {
		cond string
		want bool
	}{
		{"", true},
		{"(q==1)", true},
		{"(q==0)", false},
		{"(q==1) & (qn==0)", true},
		{"(q==1) & (qn==1)", false},
		{"(q==0) | (qn==0)", true},
		{"(missing==1)", false},
	}
	for _, c := range cases {
		got, err := EvalCond(c.cond, env)
		if err != nil {
			t.Errorf("EvalCond(%q) error: %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalCond(%q) = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestEvalCondErrors(t *testing.T) {
	for _, cond := range []string{"q==1", "(q=1)", "(q==2)", "(q==1) &", "(q==1) ) extra", "(==1)"} {
		if _, err := EvalCond(cond, map[string]int{"q": 1}); err == nil {
			t.Errorf("malformed condition accepted: %q", cond)
		}
	}
}

func TestMatchSubSelectsByState(t *testing.T) {
	db := DefaultDB()
	e, _ := db.Entry("DFFDEGLX2")
	sub, ok, err := e.MatchSub(37.0, map[string]int{"q": 1, "qn": 0})
	if err != nil || !ok {
		t.Fatalf("MatchSub failed: %v %v", ok, err)
	}
	if sub.Name != "SEU 1->0" {
		t.Errorf("state q=1 must match 'SEU 1->0', got %q", sub.Name)
	}
	sub, ok, _ = e.MatchSub(37.0, map[string]int{"q": 0, "qn": 1})
	if !ok || sub.Name != "SEU 0->1" {
		t.Errorf("state q=0 must match 'SEU 0->1', got %q ok=%v", sub.Name, ok)
	}
	// Unknown state matches nothing.
	if _, ok, _ := e.MatchSub(37.0, map[string]int{}); ok {
		t.Error("X state must not match any sub-cross-section")
	}
	// Off-table LET falls back to nearest entry.
	if _, ok, _ := e.MatchSub(40.0, map[string]int{"q": 1, "qn": 0}); !ok {
		t.Error("nearest-LET fallback failed")
	}
}

func TestSEUSubSplit(t *testing.T) {
	db := DefaultDB()
	e, _ := db.Entry("DFFX1")
	for _, le := range e.SoftErrors {
		if len(le.Sub) != 2 {
			t.Fatalf("LET %g: %d subs, want 2", le.LET, len(le.Sub))
		}
		if le.Total() <= 0 && le.LET > 1 {
			t.Errorf("LET %g: zero total xsect", le.LET)
		}
		if math.Abs(le.Sub[0].Xsect+le.Sub[1].Xsect-le.Total()) > 1e-18 {
			t.Errorf("sub xsects do not sum to total")
		}
	}
}

func TestExpectedUpsets(t *testing.T) {
	// flux 5e8 p/cm²/s on xsect 2e-8 cm² for 1e6 ps scaled 1e6x ->
	// 5e8*2e-8*1e-12*1e6*1e6 = 10 upsets.
	got := ExpectedUpsets(5e8, 2e-8, 1e6, 1e6)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("ExpectedUpsets = %g, want 10", got)
	}
	if ExpectedUpsets(0, 1, 1, 1) != 0 {
		t.Error("zero flux must give zero upsets")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	db := DefaultDB()
	var buf bytes.Buffer
	if err := Marshal(&buf, db); err != nil {
		t.Fatal(err)
	}
	db2, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Entries) != len(db.Entries) {
		t.Fatalf("entries %d -> %d", len(db.Entries), len(db2.Entries))
	}
	for _, name := range db.CellNames() {
		a, b := db.Entries[name], db2.Entries[name]
		if b == nil {
			t.Fatalf("entry %s lost", name)
		}
		if a.Model != b.Model {
			t.Errorf("%s model %q -> %q", name, a.Model, b.Model)
		}
		if len(a.SoftErrors) != len(b.SoftErrors) {
			t.Fatalf("%s LET entries %d -> %d", name, len(a.SoftErrors), len(b.SoftErrors))
		}
		for i := range a.SoftErrors {
			if a.SoftErrors[i].LET != b.SoftErrors[i].LET {
				t.Errorf("%s LET %g -> %g", name, a.SoftErrors[i].LET, b.SoftErrors[i].LET)
			}
			if len(a.SoftErrors[i].Sub) != len(b.SoftErrors[i].Sub) {
				t.Fatalf("%s sub count differs", name)
			}
			for j := range a.SoftErrors[i].Sub {
				sa, sb := a.SoftErrors[i].Sub[j], b.SoftErrors[i].Sub[j]
				if sa.Name != sb.Name || sa.Cond != sb.Cond {
					t.Errorf("%s sub %d: %+v -> %+v", name, j, sa, sb)
				}
				if math.Abs(sa.Xsect-sb.Xsect) > sa.Xsect*1e-5 {
					t.Errorf("%s sub %d xsect %g -> %g", name, j, sa.Xsect, sb.Xsect)
				}
			}
		}
		if len(a.Nodes) != len(b.Nodes) {
			t.Errorf("%s nodes %d -> %d", name, len(a.Nodes), len(b.Nodes))
		}
		if a.PulseBasePS > 0 && math.Abs(a.PulseBasePS-b.PulseBasePS) > 1e-9 {
			t.Errorf("%s pulse base %g -> %g", name, a.PulseBasePS, b.PulseBasePS)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"Ports: [A]\n",
		"CellName: X\n  SoftErrors:\n    - LET: abc\n",
		"CellName: X\n  PulseBasePS: zz\n",
	}
	for _, src := range cases {
		if _, err := Unmarshal(bytes.NewBufferString(src)); err == nil {
			t.Errorf("malformed db accepted: %q", src)
		}
	}
}

func TestWeibullShape(t *testing.T) {
	if weibull(0.5, 1e-8, 1, 10, 1.5) != 0 {
		t.Error("below threshold must be zero")
	}
	at50 := weibull(50, 1e-8, 1, 10, 1.5)
	at100 := weibull(100, 1e-8, 1, 10, 1.5)
	if !(at100 > at50) {
		t.Error("weibull must increase")
	}
	if at100 > 1e-8 {
		t.Error("weibull must saturate below sat")
	}
}
