package fault

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Marshal writes the database in the YAML-like text layout of the paper's
// Fig. 3, one cell entry after another in sorted cell order.
func Marshal(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, name := range db.CellNames() {
		e := db.Entries[name]
		fmt.Fprintf(bw, "CellName: %s\n", e.CellName)
		fmt.Fprintf(bw, "  Ports: [%s]\n", strings.Join(e.Ports, ", "))
		fmt.Fprintf(bw, "  InputDataPorts: [%s]\n", strings.Join(e.InputDataPorts, ", "))
		fmt.Fprintf(bw, "  OutputDataPorts: [%s]\n", strings.Join(e.OutputDataPorts, ", "))
		fmt.Fprintf(bw, "  Model: %s\n", e.Model)
		if e.PulseBasePS > 0 {
			fmt.Fprintf(bw, "  PulseBasePS: %g\n", e.PulseBasePS)
		}
		fmt.Fprintf(bw, "  Nodes:\n")
		nodeKeys := make([]string, 0, len(e.Nodes))
		for k := range e.Nodes {
			nodeKeys = append(nodeKeys, k)
		}
		sort.Strings(nodeKeys)
		for _, k := range nodeKeys {
			fmt.Fprintf(bw, "    %s: %s\n", k, e.Nodes[k])
		}
		fmt.Fprintf(bw, "  SoftErrors:\n")
		for _, le := range e.SoftErrors {
			fmt.Fprintf(bw, "    - LET: %g\n", le.LET)
			fmt.Fprintf(bw, "      subXsect:\n")
			for _, s := range le.Sub {
				fmt.Fprintf(bw, "      - name: %s\n", s.Name)
				if s.Cond != "" {
					fmt.Fprintf(bw, "        cond: %s\n", s.Cond)
				}
				fmt.Fprintf(bw, "        xsect: %.6e\n", s.Xsect)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Unmarshal reads the format Marshal produces back into a database.
func Unmarshal(r io.Reader) (*DB, error) {
	db := &DB{Entries: map[string]*CellEntry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var cur *CellEntry
	var curLET *LETEntry
	var curSub *SubXsect
	lineNo := 0
	flushSub := func() {
		if curSub != nil && curLET != nil {
			curLET.Sub = append(curLET.Sub, *curSub)
			curSub = nil
		}
	}
	flushLET := func() {
		flushSub()
		if curLET != nil && cur != nil {
			cur.SoftErrors = append(cur.SoftErrors, *curLET)
			curLET = nil
		}
	}
	flushCell := func() {
		flushLET()
		if cur != nil {
			db.Entries[cur.CellName] = cur
			cur = nil
		}
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, hasColon := cutKV(line)
		switch {
		case key == "CellName" && hasColon:
			flushCell()
			cur = &CellEntry{CellName: val, Nodes: map[string]string{}}
		case cur == nil:
			return nil, fmt.Errorf("fault: line %d: %q outside a cell entry", lineNo, line)
		case key == "Ports" && hasColon:
			cur.Ports = parseList(val)
		case key == "InputDataPorts" && hasColon:
			cur.InputDataPorts = parseList(val)
		case key == "OutputDataPorts" && hasColon:
			cur.OutputDataPorts = parseList(val)
		case key == "Model" && hasColon:
			cur.Model = val
		case key == "PulseBasePS" && hasColon:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad PulseBasePS %q", lineNo, val)
			}
			cur.PulseBasePS = f
		case key == "Nodes" && hasColon && val == "":
			// Following indented "name: path" lines are handled by the
			// default case below via indentation depth.
		case key == "SoftErrors" && hasColon && val == "":
			flushLET()
		case strings.HasPrefix(line, "- LET") || strings.HasPrefix(line, "- LET:"):
			flushLET()
			_, letVal, _ := cutKV(strings.TrimSpace(strings.TrimPrefix(line, "-")))
			f, err := strconv.ParseFloat(letVal, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad LET %q", lineNo, letVal)
			}
			curLET = &LETEntry{LET: f}
		case key == "subXsect" && hasColon:
			// marker line; sub entries follow
		case strings.HasPrefix(line, "- name") || strings.HasPrefix(line, "- name:"):
			flushSub()
			_, nameVal, _ := cutKV(strings.TrimSpace(strings.TrimPrefix(line, "-")))
			curSub = &SubXsect{Name: nameVal}
		case key == "cond" && hasColon && curSub != nil:
			curSub.Cond = val
		case key == "xsect" && hasColon && curSub != nil:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad xsect %q", lineNo, val)
			}
			curSub.Xsect = f
		case hasColon && curLET == nil:
			// A node mapping line inside Nodes:.
			cur.Nodes[key] = val
		default:
			return nil, fmt.Errorf("fault: line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flushCell()
	if len(db.Entries) == 0 {
		return nil, fmt.Errorf("fault: no entries found")
	}
	return db, nil
}

func cutKV(line string) (key, val string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return line, "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

func parseList(val string) []string {
	val = strings.TrimSpace(val)
	val = strings.TrimPrefix(val, "[")
	val = strings.TrimSuffix(val, "]")
	if strings.TrimSpace(val) == "" {
		return nil
	}
	parts := strings.Split(val, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}
