// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator (xoshiro256**) used by every stochastic component of the
// framework — clustering seeds, fault-injection sampling, injection times —
// so that whole campaigns replay bit-identically from a single seed.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, which guarantees
// a well-mixed non-zero state even for small seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator derived from r's stream but statistically
// independent of it, so parallel campaign workers stay reproducible.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	ah, al := a>>32, a&mask
	bh, bl := b>>32, b&mask
	t := ah*bl + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += al * bh
	hi = ah*bh + w2 + w1>>32
	lo = a * b
	return
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1). Scale by
// 1/λ for other rates; used for Poisson inter-arrival fault times.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method below mean 30 and a normal approximation above (adequate
// for expected fault-event counts).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. When k >= n it returns a permutation of all n indices.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher-Yates over an index map keeps this O(k) in space
	// touched for small k relative to n.
	chosen := make([]int, 0, k)
	remap := make(map[int]int, k*2)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := remap[j]
		if !ok {
			vj = j
		}
		vi, ok := remap[i]
		if !ok {
			vi = i
		}
		remap[j] = vi
		chosen = append(chosen, vj)
	}
	return chosen
}
