package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 500; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("bucket %d count %d deviates >8%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const draws = 200000
	var sum, sq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / draws
	variance := sq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(6)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean %v too far from 1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(8)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const draws = 50000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / draws
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if New(1).Poisson(-2) != 0 {
		t.Error("Poisson(negative) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(13)
	for trial := 0; trial < 200; trial++ {
		s := r.Sample(100, 10)
		if len(s) != 10 {
			t.Fatalf("Sample returned %d elements, want 10", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("Sample element %d invalid or duplicated", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleAllWhenKExceedsN(t *testing.T) {
	r := New(17)
	s := r.Sample(5, 9)
	if len(s) != 5 {
		t.Fatalf("Sample(5,9) returned %d elements, want all 5", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatal("Sample(5,9) must return each index exactly once")
	}
}

func TestSampleUniform(t *testing.T) {
	r := New(23)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(20, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("index %d chosen %d times, want ~%f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream tracks parent: %d/100 collisions", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
