// Package riscv implements an RV32I+M instruction-set simulator with a
// two-pass assembler and an execution trace recorder. In this reproduction
// it plays the role of the paper's "entire software stack": benchmark
// kernels run on the ISS, and the recorded instruction/memory activity
// drives the gate-level SoC netlists as bus stimulus during fault-injection
// campaigns.
package riscv

import (
	"fmt"
)

// Access is one data-memory access performed by an instruction.
type Access struct {
	Addr  uint32
	Data  uint32
	Size  uint8 // bytes: 1, 2 or 4
	Write bool
}

// TraceEntry records one retired instruction.
type TraceEntry struct {
	PC    uint32
	Instr uint32
	Mem   *Access // nil for non-memory instructions
}

// CPU is the RV32I+M hart with a flat little-endian memory.
type CPU struct {
	Regs   [32]uint32
	PC     uint32
	Mem    []byte
	Halted bool
	// ExitCode is a7 at the ECALL that halted the hart.
	ExitCode uint32
	// Instret counts retired instructions.
	Instret uint64
	// Trace receives every retired instruction when non-nil.
	Trace func(TraceEntry)
}

// New returns a CPU with memSize bytes of zeroed memory and PC at 0.
func New(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize)}
}

// Load copies a program image to the given address and sets PC to it.
func (c *CPU) Load(addr uint32, image []byte) error {
	if int(addr)+len(image) > len(c.Mem) {
		return fmt.Errorf("riscv: image of %d bytes at %#x exceeds %d-byte memory", len(image), addr, len(c.Mem))
	}
	copy(c.Mem[addr:], image)
	c.PC = addr
	return nil
}

func (c *CPU) read32(addr uint32) (uint32, error) {
	if int(addr)+4 > len(c.Mem) {
		return 0, fmt.Errorf("riscv: load address %#x out of range", addr)
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8 | uint32(c.Mem[addr+2])<<16 | uint32(c.Mem[addr+3])<<24, nil
}

func (c *CPU) read16(addr uint32) (uint32, error) {
	if int(addr)+2 > len(c.Mem) {
		return 0, fmt.Errorf("riscv: load address %#x out of range", addr)
	}
	return uint32(c.Mem[addr]) | uint32(c.Mem[addr+1])<<8, nil
}

func (c *CPU) read8(addr uint32) (uint32, error) {
	if int(addr) >= len(c.Mem) {
		return 0, fmt.Errorf("riscv: load address %#x out of range", addr)
	}
	return uint32(c.Mem[addr]), nil
}

func (c *CPU) write(addr uint32, val uint32, size uint8) error {
	if int(addr)+int(size) > len(c.Mem) {
		return fmt.Errorf("riscv: store address %#x out of range", addr)
	}
	for i := uint8(0); i < size; i++ {
		c.Mem[addr+uint32(i)] = byte(val >> (8 * i))
	}
	return nil
}

func signExtend(v uint32, bits uint) uint32 {
	shift := 32 - bits
	return uint32(int32(v<<shift) >> shift)
}

// Step executes one instruction. ECALL and EBREAK halt the hart.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("riscv: hart is halted")
	}
	instr, err := c.read32(c.PC)
	if err != nil {
		return fmt.Errorf("riscv: fetch at %#x: %v", c.PC, err)
	}
	entry := TraceEntry{PC: c.PC, Instr: instr}
	nextPC := c.PC + 4

	opcode := instr & 0x7f
	rd := (instr >> 7) & 0x1f
	funct3 := (instr >> 12) & 0x7
	rs1 := (instr >> 15) & 0x1f
	rs2 := (instr >> 20) & 0x1f
	funct7 := instr >> 25

	setRD := func(v uint32) {
		if rd != 0 {
			c.Regs[rd] = v
		}
	}
	x1, x2 := c.Regs[rs1], c.Regs[rs2]

	switch opcode {
	case 0x37: // LUI
		setRD(instr & 0xfffff000)
	case 0x17: // AUIPC
		setRD(c.PC + (instr & 0xfffff000))
	case 0x6f: // JAL
		imm := (instr>>31)<<20 | ((instr >> 12) & 0xff << 12) | ((instr >> 20) & 1 << 11) | ((instr >> 21) & 0x3ff << 1)
		setRD(c.PC + 4)
		nextPC = c.PC + signExtend(imm, 21)
	case 0x67: // JALR
		imm := signExtend(instr>>20, 12)
		t := c.PC + 4
		nextPC = (x1 + imm) &^ 1
		setRD(t)
	case 0x63: // branches
		imm := (instr>>31)<<12 | ((instr >> 7) & 1 << 11) | ((instr >> 25) & 0x3f << 5) | ((instr >> 8) & 0xf << 1)
		off := signExtend(imm, 13)
		taken := false
		switch funct3 {
		case 0:
			taken = x1 == x2
		case 1:
			taken = x1 != x2
		case 4:
			taken = int32(x1) < int32(x2)
		case 5:
			taken = int32(x1) >= int32(x2)
		case 6:
			taken = x1 < x2
		case 7:
			taken = x1 >= x2
		default:
			return fmt.Errorf("riscv: bad branch funct3 %d at %#x", funct3, c.PC)
		}
		if taken {
			nextPC = c.PC + off
		}
	case 0x03: // loads
		addr := x1 + signExtend(instr>>20, 12)
		var v uint32
		var size uint8
		switch funct3 {
		case 0: // LB
			v, err = c.read8(addr)
			v = signExtend(v, 8)
			size = 1
		case 1: // LH
			v, err = c.read16(addr)
			v = signExtend(v, 16)
			size = 2
		case 2: // LW
			v, err = c.read32(addr)
			size = 4
		case 4: // LBU
			v, err = c.read8(addr)
			size = 1
		case 5: // LHU
			v, err = c.read16(addr)
			size = 2
		default:
			return fmt.Errorf("riscv: bad load funct3 %d at %#x", funct3, c.PC)
		}
		if err != nil {
			return err
		}
		setRD(v)
		entry.Mem = &Access{Addr: addr, Data: v, Size: size}
	case 0x23: // stores
		imm := (instr>>25)<<5 | ((instr >> 7) & 0x1f)
		addr := x1 + signExtend(imm, 12)
		var size uint8
		switch funct3 {
		case 0:
			size = 1
		case 1:
			size = 2
		case 2:
			size = 4
		default:
			return fmt.Errorf("riscv: bad store funct3 %d at %#x", funct3, c.PC)
		}
		if err := c.write(addr, x2, size); err != nil {
			return err
		}
		entry.Mem = &Access{Addr: addr, Data: x2, Size: size, Write: true}
	case 0x13: // OP-IMM
		imm := signExtend(instr>>20, 12)
		shamt := (instr >> 20) & 0x1f
		switch funct3 {
		case 0:
			setRD(x1 + imm)
		case 2:
			if int32(x1) < int32(imm) {
				setRD(1)
			} else {
				setRD(0)
			}
		case 3:
			if x1 < imm {
				setRD(1)
			} else {
				setRD(0)
			}
		case 4:
			setRD(x1 ^ imm)
		case 6:
			setRD(x1 | imm)
		case 7:
			setRD(x1 & imm)
		case 1:
			setRD(x1 << shamt)
		case 5:
			if funct7 == 0x20 {
				setRD(uint32(int32(x1) >> shamt))
			} else {
				setRD(x1 >> shamt)
			}
		}
	case 0x33: // OP
		if funct7 == 1 { // M extension
			switch funct3 {
			case 0: // MUL
				setRD(x1 * x2)
			case 1: // MULH
				setRD(uint32(uint64(int64(int32(x1))*int64(int32(x2))) >> 32))
			case 2: // MULHSU
				setRD(uint32(uint64(int64(int32(x1))*int64(uint64(x2))) >> 32))
			case 3: // MULHU
				setRD(uint32(uint64(x1) * uint64(x2) >> 32))
			case 4: // DIV
				switch {
				case x2 == 0:
					setRD(0xffffffff)
				case x1 == 0x80000000 && x2 == 0xffffffff:
					setRD(0x80000000)
				default:
					setRD(uint32(int32(x1) / int32(x2)))
				}
			case 5: // DIVU
				if x2 == 0 {
					setRD(0xffffffff)
				} else {
					setRD(x1 / x2)
				}
			case 6: // REM
				switch {
				case x2 == 0:
					setRD(x1)
				case x1 == 0x80000000 && x2 == 0xffffffff:
					setRD(0)
				default:
					setRD(uint32(int32(x1) % int32(x2)))
				}
			case 7: // REMU
				if x2 == 0 {
					setRD(x1)
				} else {
					setRD(x1 % x2)
				}
			}
		} else {
			switch funct3 {
			case 0:
				if funct7 == 0x20 {
					setRD(x1 - x2)
				} else {
					setRD(x1 + x2)
				}
			case 1:
				setRD(x1 << (x2 & 0x1f))
			case 2:
				if int32(x1) < int32(x2) {
					setRD(1)
				} else {
					setRD(0)
				}
			case 3:
				if x1 < x2 {
					setRD(1)
				} else {
					setRD(0)
				}
			case 4:
				setRD(x1 ^ x2)
			case 5:
				if funct7 == 0x20 {
					setRD(uint32(int32(x1) >> (x2 & 0x1f)))
				} else {
					setRD(x1 >> (x2 & 0x1f))
				}
			case 6:
				setRD(x1 | x2)
			case 7:
				setRD(x1 & x2)
			}
		}
	case 0x0f: // FENCE: no-op on a single hart
	case 0x73: // SYSTEM: ECALL/EBREAK halt
		c.Halted = true
		c.ExitCode = c.Regs[17] // a7
	default:
		return fmt.Errorf("riscv: illegal opcode %#x at %#x", opcode, c.PC)
	}

	c.Regs[0] = 0
	c.PC = nextPC
	c.Instret++
	if c.Trace != nil {
		c.Trace(entry)
	}
	return nil
}

// Run executes until the hart halts or maxInstr instructions retire.
func (c *CPU) Run(maxInstr uint64) error {
	for !c.Halted {
		if c.Instret >= maxInstr {
			return fmt.Errorf("riscv: exceeded %d instructions without halting", maxInstr)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
