package riscv

import (
	"hash/crc32"
	"testing"
)

func run(t *testing.T, src string, maxInstr uint64) *CPU {
	t.Helper()
	img, err := Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(1 << 16)
	if err := c.Load(0, img); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(maxInstr); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmeticBasics(t *testing.T) {
	c := run(t, `
	li a0, 10
	li a1, 3
	add a2, a0, a1
	sub a3, a0, a1
	mul a4, a0, a1
	div a5, a0, a1
	rem a6, a0, a1
	halt
`, 100)
	if c.Regs[12] != 13 {
		t.Errorf("add = %d", c.Regs[12])
	}
	if c.Regs[13] != 7 {
		t.Errorf("sub = %d", c.Regs[13])
	}
	if c.Regs[14] != 30 {
		t.Errorf("mul = %d", c.Regs[14])
	}
	if c.Regs[15] != 3 {
		t.Errorf("div = %d", c.Regs[15])
	}
	if c.Regs[16] != 1 {
		t.Errorf("rem = %d", c.Regs[16])
	}
}

func TestSignedOps(t *testing.T) {
	c := run(t, `
	li a0, -7
	li a1, 2
	div a2, a0, a1
	rem a3, a0, a1
	sra a4, a0, a1
	srl a5, a0, a1
	slt a6, a0, a1
	sltu a7, a0, a1
	halt
`, 100)
	if int32(c.Regs[12]) != -3 {
		t.Errorf("div -7/2 = %d", int32(c.Regs[12]))
	}
	if int32(c.Regs[13]) != -1 {
		t.Errorf("rem = %d", int32(c.Regs[13]))
	}
	if int32(c.Regs[14]) != -2 {
		t.Errorf("sra = %d", int32(c.Regs[14]))
	}
	if c.Regs[15] != 0x3ffffffe {
		t.Errorf("srl = %#x", c.Regs[15])
	}
	if c.Regs[16] != 1 {
		t.Errorf("slt(-7,2) = %d", c.Regs[16])
	}
	if c.Regs[17] != 0 {
		t.Errorf("sltu(0xfff..9,2) = %d", c.Regs[17])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := run(t, `
	li a0, 5
	li a1, 0
	div a2, a0, a1
	rem a3, a0, a1
	li a4, 0x80000000
	li a5, -1
	div a6, a4, a5
	rem a7, a4, a5
	halt
`, 100)
	if c.Regs[12] != 0xffffffff {
		t.Errorf("div by zero = %#x, want -1", c.Regs[12])
	}
	if c.Regs[13] != 5 {
		t.Errorf("rem by zero = %d, want dividend", c.Regs[13])
	}
	if c.Regs[16] != 0x80000000 {
		t.Errorf("INT_MIN/-1 = %#x", c.Regs[16])
	}
	if c.Regs[17] != 0 {
		t.Errorf("INT_MIN%%-1 = %d", c.Regs[17])
	}
}

func TestMulh(t *testing.T) {
	c := run(t, `
	li a0, 0x40000000
	li a1, 8
	mulh a2, a0, a1
	mulhu a3, a0, a1
	li a4, -2
	mulh a5, a4, a1
	halt
`, 100)
	if c.Regs[12] != 2 {
		t.Errorf("mulh = %d", c.Regs[12])
	}
	if c.Regs[13] != 2 {
		t.Errorf("mulhu = %d", c.Regs[13])
	}
	if int32(c.Regs[15]) != -1 {
		t.Errorf("mulh(-2,8) = %d", int32(c.Regs[15]))
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
	li s0, 0x1000
	li a0, 0x12345678
	sw a0, 0(s0)
	lw a1, 0(s0)
	lh a2, 0(s0)
	lhu a3, 2(s0)
	lb a4, 3(s0)
	lbu a5, 1(s0)
	li a6, -1
	sb a6, 8(s0)
	lbu a7, 8(s0)
	halt
`, 100)
	if c.Regs[11] != 0x12345678 {
		t.Errorf("lw = %#x", c.Regs[11])
	}
	if c.Regs[12] != 0x5678 {
		t.Errorf("lh = %#x", c.Regs[12])
	}
	if c.Regs[13] != 0x1234 {
		t.Errorf("lhu = %#x", c.Regs[13])
	}
	if c.Regs[14] != 0x12 {
		t.Errorf("lb = %#x", c.Regs[14])
	}
	if c.Regs[15] != 0x56 {
		t.Errorf("lbu = %#x", c.Regs[15])
	}
	if c.Regs[17] != 0xff {
		t.Errorf("sb/lbu = %#x", c.Regs[17])
	}
}

func TestSignExtendingLoads(t *testing.T) {
	c := run(t, `
	li s0, 0x1000
	li a0, 0x8081
	sh a0, 0(s0)
	lh a1, 0(s0)
	lb a2, 0(s0)
	halt
`, 100)
	if int32(c.Regs[11]) != -32639 {
		t.Errorf("lh sign extension = %d", int32(c.Regs[11]))
	}
	if int32(c.Regs[12]) != -127 {
		t.Errorf("lb sign extension = %d", int32(c.Regs[12]))
	}
}

func TestBranchesAndJumps(t *testing.T) {
	c := run(t, `
	li a0, 0
	li t0, 5
loop:
	addi a0, a0, 2
	addi t0, t0, -1
	bnez t0, loop
	call sub
	j end
sub:
	addi a0, a0, 100
	ret
end:
	halt
`, 1000)
	if c.Regs[10] != 110 {
		t.Errorf("a0 = %d, want 110", c.Regs[10])
	}
}

func TestBranchVariants(t *testing.T) {
	c := run(t, `
	li a0, 0
	li t0, -1
	li t1, 1
	blt t0, t1, l1
	j fail
l1:	addi a0, a0, 1
	bltu t1, t0, l2     # unsigned: 1 < 0xffffffff
	j fail
l2:	addi a0, a0, 1
	bge t1, t0, l3
	j fail
l3:	addi a0, a0, 1
	bgeu t0, t1, l4
	j fail
l4:	addi a0, a0, 1
	beq t0, t0, l5
	j fail
l5:	addi a0, a0, 1
	halt
fail:
	li a0, -1
	halt
`, 1000)
	if c.Regs[10] != 5 {
		t.Errorf("branch chain a0 = %d, want 5", int32(c.Regs[10]))
	}
}

func TestX0AlwaysZero(t *testing.T) {
	c := run(t, `
	li t0, 7
	add x0, t0, t0
	mv a0, x0
	halt
`, 100)
	if c.Regs[10] != 0 {
		t.Errorf("x0 was written: %d", c.Regs[10])
	}
}

func TestLuiAuipcLi(t *testing.T) {
	c := run(t, `
	li a0, 0x12345678
	li a1, -1
	li a2, 0x7ffff800
	lui a3, 1
	halt
`, 100)
	if c.Regs[10] != 0x12345678 {
		t.Errorf("li large = %#x", c.Regs[10])
	}
	if c.Regs[11] != 0xffffffff {
		t.Errorf("li -1 = %#x", c.Regs[11])
	}
	if c.Regs[12] != 0x7ffff800 {
		t.Errorf("li 0x7ffff800 = %#x", c.Regs[12])
	}
	if c.Regs[13] != 0x1000 {
		t.Errorf("lui = %#x", c.Regs[13])
	}
}

func TestTraceRecording(t *testing.T) {
	img, err := Assemble(`
	li s0, 0x100
	li a0, 42
	sw a0, 0(s0)
	lw a1, 0(s0)
	halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 12)
	_ = c.Load(0, img)
	var entries []TraceEntry
	c.Trace = func(e TraceEntry) { entries = append(entries, e) }
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if uint64(len(entries)) != c.Instret {
		t.Fatalf("trace entries %d != instret %d", len(entries), c.Instret)
	}
	var stores, loads int
	for _, e := range entries {
		if e.Mem != nil {
			if e.Mem.Write {
				stores++
				if e.Mem.Addr != 0x100 || e.Mem.Data != 42 {
					t.Errorf("store trace wrong: %+v", e.Mem)
				}
			} else {
				loads++
				if e.Mem.Data != 42 {
					t.Errorf("load trace wrong: %+v", e.Mem)
				}
			}
		}
	}
	if stores != 1 || loads != 1 {
		t.Errorf("stores=%d loads=%d, want 1/1", stores, loads)
	}
}

func TestHaltConventions(t *testing.T) {
	c := run(t, `
	li a7, 93
	halt
`, 10)
	if !c.Halted {
		t.Fatal("hart must halt on ecall")
	}
	if c.ExitCode != 93 {
		t.Errorf("exit code = %d", c.ExitCode)
	}
	if err := c.Step(); err == nil {
		t.Error("stepping a halted hart must fail")
	}
}

func TestRunInstructionCap(t *testing.T) {
	img, _ := Assemble("spin: j spin", 0)
	c := New(1 << 12)
	_ = c.Load(0, img)
	if err := c.Run(100); err == nil {
		t.Fatal("infinite loop must trip the cap")
	}
}

func TestMemoryBoundsErrors(t *testing.T) {
	for _, src := range []string{
		"li s0, 0x7fffff00\nlw a0, 0(s0)\nhalt",
		"li s0, 0x7fffff00\nsw s0, 0(s0)\nhalt",
	} {
		img, err := Assemble(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := New(1 << 12)
		_ = c.Load(0, img)
		if err := c.Run(100); err == nil {
			t.Errorf("out-of-range access must fail: %s", src)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a1",
		"addi a0, a1, 5000",
		"lw a0, a1",
		"beq a0, a1, nowhere",
		"add a0, a1, q9",
		"dup: nop\ndup: nop",
		"li a0",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("malformed asm accepted: %q", src)
		}
	}
}

func TestCRCKernelMatchesGo(t *testing.T) {
	p := CRCProgram(12)
	img, err := Assemble(p.Src, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 16)
	_ = c.Load(0, img)
	if err := c.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the LCG-filled buffer and CRC it with the stdlib.
	var buf []byte
	state := uint32(99)
	for i := 0; i < 12; i++ {
		state = state*1103515245 + 1013
		buf = append(buf, byte(state>>16))
	}
	want := crc32.ChecksumIEEE(buf)
	if c.Regs[10] != want {
		t.Errorf("asm crc = %#x, stdlib = %#x", c.Regs[10], want)
	}
}

func TestSortKernelSorts(t *testing.T) {
	p := SortProgram(12)
	img, err := Assemble(p.Src, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 16)
	_ = c.Load(0, img)
	if err := c.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	// Verify memory at 0x400 is sorted ascending (unsigned).
	var prev uint32
	for i := 0; i < 12; i++ {
		v, _ := c.read32(uint32(0x400 + 4*i))
		if i > 0 && v < prev {
			t.Fatalf("array not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

func TestAllStandardWorkloadsRun(t *testing.T) {
	for _, p := range StandardWorkloads() {
		img, err := Assemble(p.Src, 0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		c := New(1 << 16)
		_ = c.Load(0, img)
		if err := c.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if c.Instret == 0 {
			t.Fatalf("%s retired nothing", p.Name)
		}
	}
}

func TestMemcpyChecksumStable(t *testing.T) {
	p := MemcpyProgram(24)
	results := map[uint32]bool{}
	for i := 0; i < 2; i++ {
		img, _ := Assemble(p.Src, 0)
		c := New(1 << 16)
		_ = c.Load(0, img)
		if err := c.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		results[c.Regs[10]] = true
	}
	if len(results) != 1 {
		t.Errorf("memcpy checksum not deterministic: %v", results)
	}
}
