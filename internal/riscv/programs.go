package riscv

import "fmt"

// Program is a named benchmark kernel with its assembly source. The halt
// convention is: a0 holds the checksum/result at the final ecall.
type Program struct {
	Name string
	Src  string
}

// MemcpyProgram copies n words between two buffers, then sums the
// destination as a checksum. Used as the memory-traffic-heavy workload.
func MemcpyProgram(n int) Program {
	return Program{
		Name: fmt.Sprintf("memcpy%d", n),
		Src: fmt.Sprintf(`
	li   s0, 0x400        # src base
	li   s1, 0x800        # dst base
	li   t0, %d           # word count
	li   t1, 1            # LCG state
	mv   t2, s0
fill:
	beqz t0, copy_init
	li   t3, 1103515245
	mul  t1, t1, t3
	addi t1, t1, 1013
	sw   t1, 0(t2)
	addi t2, t2, 4
	addi t0, t0, -1
	j    fill
copy_init:
	li   t0, %d
	mv   t2, s0
	mv   t3, s1
copy:
	beqz t0, sum_init
	lw   t4, 0(t2)
	sw   t4, 0(t3)
	addi t2, t2, 4
	addi t3, t3, 4
	addi t0, t0, -1
	j    copy
sum_init:
	li   t0, %d
	mv   t3, s1
	li   a0, 0
sum:
	beqz t0, done
	lw   t4, 0(t3)
	add  a0, a0, t4
	addi t3, t3, 4
	addi t0, t0, -1
	j    sum
done:
	halt
`, n, n, n),
	}
}

// DotProductProgram computes the dot product of two pseudo-random vectors —
// the arithmetic-heavy workload exercising the multiplier.
func DotProductProgram(n int) Program {
	return Program{
		Name: fmt.Sprintf("dot%d", n),
		Src: fmt.Sprintf(`
	li   s0, 0x400
	li   s1, 0x800
	li   t0, %d
	li   t1, 7
	mv   t2, s0
	mv   t3, s1
fill:
	beqz t0, dot_init
	li   t4, 1103515245
	mul  t1, t1, t4
	addi t1, t1, 1013
	srli t5, t1, 20
	sw   t5, 0(t2)
	xori t6, t5, 0x2a
	sw   t6, 0(t3)
	addi t2, t2, 4
	addi t3, t3, 4
	addi t0, t0, -1
	j    fill
dot_init:
	li   t0, %d
	mv   t2, s0
	mv   t3, s1
	li   a0, 0
dot:
	beqz t0, done
	lw   t4, 0(t2)
	lw   t5, 0(t3)
	mul  t6, t4, t5
	add  a0, a0, t6
	addi t2, t2, 4
	addi t3, t3, 4
	addi t0, t0, -1
	j    dot
done:
	halt
`, n, n),
	}
}

// CRCProgram computes a bitwise CRC-32 over a pseudo-random buffer — the
// control-flow-heavy workload with data-dependent branches.
func CRCProgram(nBytes int) Program {
	return Program{
		Name: fmt.Sprintf("crc%d", nBytes),
		Src: fmt.Sprintf(`
	li   s0, 0x400
	li   t0, %d
	li   t1, 99
	mv   t2, s0
fill:
	beqz t0, crc_init
	li   t3, 1103515245
	mul  t1, t1, t3
	addi t1, t1, 1013
	srli t4, t1, 16
	sb   t4, 0(t2)
	addi t2, t2, 1
	addi t0, t0, -1
	j    fill
crc_init:
	li   a0, -1          # crc register
	li   t0, %d
	mv   t2, s0
	li   s2, 0xedb88320  # reflected polynomial
byteloop:
	beqz t0, finish
	lbu  t3, 0(t2)
	xor  a0, a0, t3
	li   t4, 8
bitloop:
	beqz t4, nextbyte
	andi t5, a0, 1
	srli a0, a0, 1
	beqz t5, noxor
	xor  a0, a0, s2
noxor:
	addi t4, t4, -1
	j    bitloop
nextbyte:
	addi t2, t2, 1
	addi t0, t0, -1
	j    byteloop
finish:
	not  a0, a0
	halt
`, nBytes, nBytes),
	}
}

// SortProgram bubble-sorts a pseudo-random word array and returns the sum
// of first and last element — the branch- and memory-mixed workload.
func SortProgram(n int) Program {
	return Program{
		Name: fmt.Sprintf("sort%d", n),
		Src: fmt.Sprintf(`
	li   s0, 0x400
	li   t0, %d
	li   t1, 3
	mv   t2, s0
fill:
	beqz t0, sort_init
	li   t3, 1103515245
	mul  t1, t1, t3
	addi t1, t1, 1013
	srli t4, t1, 8
	sw   t4, 0(t2)
	addi t2, t2, 4
	addi t0, t0, -1
	j    fill
sort_init:
	li   s1, %d          # n
outer:
	addi s1, s1, -1
	beqz s1, report
	li   t0, 0           # i
	mv   t2, s0
inner:
	bge  t0, s1, outer
	lw   t3, 0(t2)
	lw   t4, 4(t2)
	bge  t4, t3, noswap
	sw   t4, 0(t2)
	sw   t3, 4(t2)
noswap:
	addi t0, t0, 1
	addi t2, t2, 4
	j    inner
report:
	lw   a0, 0(s0)
	li   t5, %d
	addi t5, t5, -1
	slli t5, t5, 2
	add  t6, s0, t5
	lw   t1, 0(t6)
	add  a0, a0, t1
	halt
`, n, n, n),
	}
}

// FibProgram computes fib(n) iteratively — the minimal quickstart workload.
func FibProgram(n int) Program {
	return Program{
		Name: fmt.Sprintf("fib%d", n),
		Src: fmt.Sprintf(`
	li   t0, %d
	li   a0, 0
	li   t1, 1
loop:
	beqz t0, done
	add  t2, a0, t1
	mv   a0, t1
	mv   t1, t2
	addi t0, t0, -1
	j    loop
done:
	halt
`, n),
	}
}

// StandardWorkloads returns the kernel set the campaign cycles through when
// generating stimulus, mirroring the mixed software stack of the paper's
// PULP experiments.
func StandardWorkloads() []Program {
	return []Program{
		MemcpyProgram(24),
		DotProductProgram(16),
		CRCProgram(12),
		SortProgram(12),
		FibProgram(20),
	}
}
