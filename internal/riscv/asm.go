package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small RV32I+M assembly dialect into a binary image
// based at the given address. Supported syntax:
//
//	label:                     ; labels on their own line or before an op
//	op rd, rs1, rs2            ; register ops
//	op rd, rs1, imm            ; immediate ops
//	lw rd, off(rs)             ; loads/stores
//	beq rs1, rs2, label        ; branches to labels
//	.word 0x1234               ; literal data
//	# comment, // comment
//
// plus the pseudo-instructions nop, li, mv, j, jr, ret, call, beqz, bnez,
// not, neg and halt (ecall). Registers accept x0..x31 and ABI names.
func Assemble(src string, base uint32) ([]byte, error) {
	lines := strings.Split(src, "\n")
	type item struct {
		label  string
		op     string
		args   []string
		lineNo int
	}
	var items []item
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t") {
				items = append(items, item{label: strings.TrimSpace(line[:i]), lineNo: ln + 1})
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			fields := strings.SplitN(line, " ", 2)
			it := item{op: strings.ToLower(fields[0]), lineNo: ln + 1}
			if len(fields) > 1 {
				for _, a := range strings.Split(fields[1], ",") {
					it.args = append(it.args, strings.TrimSpace(a))
				}
			}
			items = append(items, it)
			break
		}
	}

	// Pass 1: expand pseudo-ops to concrete sizes and assign addresses.
	type rec struct {
		op     string
		args   []string
		addr   uint32
		lineNo int
	}
	var recs []rec
	labels := map[string]uint32{}
	pc := base
	for _, it := range items {
		if it.label != "" {
			if _, dup := labels[it.label]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", it.lineNo, it.label)
			}
			labels[it.label] = pc
			continue
		}
		exp, err := expandPseudo(it.op, it.args, it.lineNo)
		if err != nil {
			return nil, err
		}
		for _, e := range exp {
			recs = append(recs, rec{op: e.op, args: e.args, addr: pc, lineNo: it.lineNo})
			pc += 4
		}
	}

	// Pass 2: encode.
	var out []byte
	for _, r := range recs {
		word, err := encode(r.op, r.args, r.addr, labels)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", r.lineNo, err)
		}
		out = append(out, byte(word), byte(word>>8), byte(word>>16), byte(word>>24))
	}
	return out, nil
}

type pseudoOut struct {
	op   string
	args []string
}

func expandPseudo(op string, args []string, lineNo int) ([]pseudoOut, error) {
	one := func(op string, args ...string) []pseudoOut { return []pseudoOut{{op: op, args: args}} }
	switch op {
	case "nop":
		return one("addi", "x0", "x0", "0"), nil
	case "halt", "ecall":
		return one("_ecall"), nil
	case "ebreak":
		return one("_ecall"), nil
	case "mv":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: mv needs 2 args", lineNo)
		}
		return one("addi", args[0], args[1], "0"), nil
	case "not":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: not needs 2 args", lineNo)
		}
		return one("xori", args[0], args[1], "-1"), nil
	case "neg":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: neg needs 2 args", lineNo)
		}
		return one("sub", args[0], "x0", args[1]), nil
	case "j":
		if len(args) != 1 {
			return nil, fmt.Errorf("asm: line %d: j needs 1 arg", lineNo)
		}
		return one("jal", "x0", args[0]), nil
	case "jr":
		if len(args) != 1 {
			return nil, fmt.Errorf("asm: line %d: jr needs 1 arg", lineNo)
		}
		return one("jalr", "x0", args[0], "0"), nil
	case "ret":
		return one("jalr", "x0", "ra", "0"), nil
	case "call":
		if len(args) != 1 {
			return nil, fmt.Errorf("asm: line %d: call needs 1 arg", lineNo)
		}
		return one("jal", "ra", args[0]), nil
	case "beqz":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: beqz needs 2 args", lineNo)
		}
		return one("beq", args[0], "x0", args[1]), nil
	case "bnez":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: bnez needs 2 args", lineNo)
		}
		return one("bne", args[0], "x0", args[1]), nil
	case "li":
		if len(args) != 2 {
			return nil, fmt.Errorf("asm: line %d: li needs 2 args", lineNo)
		}
		v, err := parseImm(args[1])
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineNo, err)
		}
		if v >= -2048 && v <= 2047 {
			return one("addi", args[0], "x0", args[1]), nil
		}
		uv := uint32(v)
		hi := (uv + 0x800) >> 12
		lo := int32(uv) - int32(hi<<12)
		return []pseudoOut{
			{op: "lui", args: []string{args[0], strconv.FormatUint(uint64(hi), 10)}},
			{op: "addi", args: []string{args[0], args[0], strconv.FormatInt(int64(lo), 10)}},
		}, nil
	default:
		return []pseudoOut{{op: op, args: args}}, nil
	}
}

var abiRegs = map[string]uint32{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
	"s10": 26, "s11": 27, "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func parseReg(s string) (uint32, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := abiRegs[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint32(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMemOperand splits "off(rs)" into offset and register.
func parseMemOperand(s string) (int64, uint32, error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

type encR struct{ funct7, funct3, opcode uint32 }

var rOps = map[string]encR{
	"add": {0x00, 0, 0x33}, "sub": {0x20, 0, 0x33}, "sll": {0x00, 1, 0x33},
	"slt": {0x00, 2, 0x33}, "sltu": {0x00, 3, 0x33}, "xor": {0x00, 4, 0x33},
	"srl": {0x00, 5, 0x33}, "sra": {0x20, 5, 0x33}, "or": {0x00, 6, 0x33},
	"and": {0x00, 7, 0x33},
	"mul": {0x01, 0, 0x33}, "mulh": {0x01, 1, 0x33}, "mulhsu": {0x01, 2, 0x33},
	"mulhu": {0x01, 3, 0x33}, "div": {0x01, 4, 0x33}, "divu": {0x01, 5, 0x33},
	"rem": {0x01, 6, 0x33}, "remu": {0x01, 7, 0x33},
}

var iOps = map[string]uint32{ // funct3 for opcode 0x13
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var loadOps = map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
var storeOps = map[string]uint32{"sb": 0, "sh": 1, "sw": 2}
var branchOps = map[string]uint32{"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

func resolveTarget(s string, labels map[string]uint32) (uint32, error) {
	if v, ok := labels[s]; ok {
		return v, nil
	}
	imm, err := parseImm(s)
	if err != nil {
		return 0, fmt.Errorf("unknown label or immediate %q", s)
	}
	return uint32(imm), nil
}

func encode(op string, args []string, addr uint32, labels map[string]uint32) (uint32, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	if e, ok := rOps[op]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return 0, err
		}
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	}
	if f3, ok := iOps[op]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return 0, err
		}
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("%s immediate %d out of 12-bit range", op, imm)
		}
		return uint32(imm)&0xfff<<20 | rs1<<15 | f3<<12 | rd<<7 | 0x13, nil
	}
	switch op {
	case "slli", "srli", "srai":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		sh, err := parseImm(args[2])
		if err != nil || sh < 0 || sh > 31 {
			return 0, fmt.Errorf("bad shift amount %q", args[2])
		}
		var f3, f7 uint32
		switch op {
		case "slli":
			f3 = 1
		case "srli":
			f3 = 5
		case "srai":
			f3, f7 = 5, 0x20
		}
		return f7<<25 | uint32(sh)<<20 | rs1<<15 | f3<<12 | rd<<7 | 0x13, nil
	case "lui", "auipc":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return 0, err
		}
		opc := uint32(0x37)
		if op == "auipc" {
			opc = 0x17
		}
		return uint32(imm)<<12 | rd<<7 | opc, nil
	case "jal":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		target, err := resolveTarget(args[1], labels)
		if err != nil {
			return 0, err
		}
		off := int32(target - addr)
		if off < -(1<<20) || off >= 1<<20 || off&1 != 0 {
			return 0, fmt.Errorf("jal offset %d unencodable", off)
		}
		u := uint32(off)
		word := (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12 | rd<<7 | 0x6f
		return word, nil
	case "jalr":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return 0, err
		}
		return uint32(imm)&0xfff<<20 | rs1<<15 | rd<<7 | 0x67, nil
	case "_ecall":
		return 0x73, nil
	case ".word":
		if err := need(1); err != nil {
			return 0, err
		}
		imm, err := parseImm(args[0])
		if err != nil {
			return 0, err
		}
		return uint32(imm), nil
	}
	if f3, ok := loadOps[op]; ok {
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMemOperand(args[1])
		if err != nil {
			return 0, err
		}
		return uint32(off)&0xfff<<20 | rs1<<15 | f3<<12 | rd<<7 | 0x03, nil
	}
	if f3, ok := storeOps[op]; ok {
		if err := need(2); err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMemOperand(args[1])
		if err != nil {
			return 0, err
		}
		u := uint32(off) & 0xfff
		return (u>>5)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u&0x1f)<<7 | 0x23, nil
	}
	if f3, ok := branchOps[op]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		target, err := resolveTarget(args[2], labels)
		if err != nil {
			return 0, err
		}
		off := int32(target - addr)
		if off < -4096 || off >= 4096 || off&1 != 0 {
			return 0, fmt.Errorf("branch offset %d unencodable", off)
		}
		u := uint32(off)
		word := (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u>>1&0xf)<<8 | (u>>11&1)<<7 | 0x63
		return word, nil
	}
	return 0, fmt.Errorf("unknown instruction %q", op)
}
