package riscv

import (
	"fmt"
	"testing"
	"testing/quick"
)

// goSemantics mirrors the RV32 semantics of each R-type op in plain Go.
var goSemantics = map[string]func(a, b uint32) uint32{
	"add": func(a, b uint32) uint32 { return a + b },
	"sub": func(a, b uint32) uint32 { return a - b },
	"and": func(a, b uint32) uint32 { return a & b },
	"or":  func(a, b uint32) uint32 { return a | b },
	"xor": func(a, b uint32) uint32 { return a ^ b },
	"sll": func(a, b uint32) uint32 { return a << (b & 31) },
	"srl": func(a, b uint32) uint32 { return a >> (b & 31) },
	"sra": func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
	"mul": func(a, b uint32) uint32 { return a * b },
	"mulhu": func(a, b uint32) uint32 {
		return uint32(uint64(a) * uint64(b) >> 32)
	},
	"slt": func(a, b uint32) uint32 {
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	},
	"sltu": func(a, b uint32) uint32 {
		if a < b {
			return 1
		}
		return 0
	},
	"div": func(a, b uint32) uint32 {
		switch {
		case b == 0:
			return 0xffffffff
		case a == 0x80000000 && b == 0xffffffff:
			return 0x80000000
		default:
			return uint32(int32(a) / int32(b))
		}
	},
	"divu": func(a, b uint32) uint32 {
		if b == 0 {
			return 0xffffffff
		}
		return a / b
	},
	"rem": func(a, b uint32) uint32 {
		switch {
		case b == 0:
			return a
		case a == 0x80000000 && b == 0xffffffff:
			return 0
		default:
			return uint32(int32(a) % int32(b))
		}
	},
	"remu": func(a, b uint32) uint32 {
		if b == 0 {
			return a
		}
		return a % b
	},
}

var opsUnderTest = []string{
	"add", "sub", "and", "or", "xor", "sll", "srl", "sra",
	"mul", "mulhu", "slt", "sltu", "div", "divu", "rem", "remu",
}

// TestQuickRTypeDifferential: for arbitrary operands and ops, the ISS
// result of `op a0, a1, a2` matches the Go reference semantics — a
// differential test of assembler encoding plus CPU decode/execute.
func TestQuickRTypeDifferential(t *testing.T) {
	f := func(a, b uint32, opRaw uint8) bool {
		op := opsUnderTest[int(opRaw)%len(opsUnderTest)]
		src := fmt.Sprintf(`
	li a1, %d
	li a2, %d
	%s a0, a1, a2
	halt
`, int32(a), int32(b), op)
		img, err := Assemble(src, 0)
		if err != nil {
			return false
		}
		c := New(1 << 12)
		if err := c.Load(0, img); err != nil {
			return false
		}
		if err := c.Run(100); err != nil {
			return false
		}
		want := goSemantics[op](a, b)
		return c.Regs[10] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickLoadStoreRoundTrip: storing any word and loading it back through
// every access width reconstructs the original value.
func TestQuickLoadStoreRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		src := fmt.Sprintf(`
	li s0, 0x200
	li a0, %d
	sw a0, 0(s0)
	lw a1, 0(s0)
	lhu a2, 0(s0)
	lhu a3, 2(s0)
	lbu a4, 0(s0)
	lbu a5, 1(s0)
	lbu a6, 2(s0)
	lbu a7, 3(s0)
	halt
`, int32(v))
		img, err := Assemble(src, 0)
		if err != nil {
			return false
		}
		c := New(1 << 12)
		_ = c.Load(0, img)
		if err := c.Run(100); err != nil {
			return false
		}
		if c.Regs[11] != v {
			return false
		}
		if c.Regs[12] != v&0xffff || c.Regs[13] != v>>16 {
			return false
		}
		recomposed := c.Regs[14] | c.Regs[15]<<8 | c.Regs[16]<<16 | c.Regs[17]<<24
		return recomposed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickLiMaterializesAnyConstant: the li pseudo-instruction expansion
// (lui+addi) reproduces every 32-bit constant.
func TestQuickLiMaterializesAnyConstant(t *testing.T) {
	f := func(v uint32) bool {
		src := fmt.Sprintf("li a0, %d\nhalt", int32(v))
		img, err := Assemble(src, 0)
		if err != nil {
			return false
		}
		c := New(1 << 12)
		_ = c.Load(0, img)
		if err := c.Run(10); err != nil {
			return false
		}
		return c.Regs[10] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
