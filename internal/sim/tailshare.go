package sim

// ShareTails rewires an ascending-time sequence of checkpoints taken on
// one run so that adjacent snapshots share the storage of their common
// future-event suffix. At any checkpoint the bulk of the queued events is
// the not-yet-consumed pre-scheduled stimulus and clock schedule, and
// each later checkpoint's queue is (up to its own in-flight transitions)
// a suffix of the previous one's — so without sharing, golden-run
// checkpoint memory is (number of checkpoints) x (schedule length) and
// scales inversely with the checkpoint pitch. After sharing, each
// checkpoint owns only the events unique to it and aliases the shared
// suffix copy-on-write into its predecessor, so total memory is one full
// schedule plus small per-checkpoint deltas, independent of pitch.
//
// Checkpoints are immutable after creation and Restore copies rather than
// aliases, so shared tails remain safe for concurrent restores. Pairs of
// mismatched kinds are skipped; sharing never changes restore semantics,
// only storage.
func ShareTails(cks []*Checkpoint) {
	for i := 1; i < len(cks); i++ {
		prev, cur := cks[i-1], cks[i]
		if prev == nil || cur == nil || prev.Kind != cur.Kind {
			continue
		}
		switch {
		case prev.ev != nil && cur.ev != nil:
			shareEventTail(prev.ev, cur.ev)
		case prev.lv != nil && cur.lv != nil:
			shareLevelTail(prev.lv, cur.lv)
		}
	}
}

// shareEventTail splits cur's event list into a privately owned head and
// a tail aliased into prev's storage. The shareable region of prev must
// be one contiguous slice: its own (already shared) tail when it has one,
// otherwise its full event list.
func shareEventTail(prev, cur *eventCheckpoint) {
	avail := prev.events
	if len(prev.tail) > 0 {
		avail = prev.tail
	}
	n := 0
	for n < len(avail) && n < len(cur.events) &&
		avail[len(avail)-1-n] == cur.events[len(cur.events)-1-n] {
		n++
	}
	if n == 0 {
		return
	}
	cur.tail = avail[len(avail)-n:]
	// Reallocate the head so the original full-length backing array is
	// released; this copy is the whole point of the split.
	cur.events = append([]ckptEvent(nil), cur.events[:len(cur.events)-n]...)
}

// shareLevelTail is shareEventTail for the levelized engine's parallel
// agenda-time/action lists.
func shareLevelTail(prev, cur *levelCheckpoint) {
	availT, availA := prev.times, prev.actions
	if len(prev.tailTimes) > 0 {
		availT, availA = prev.tailTimes, prev.tailActions
	}
	n := 0
	for n < len(availT) && n < len(cur.times) {
		i, j := len(availT)-1-n, len(cur.times)-1-n
		if availT[i] != cur.times[j] || !sameActions(availA[i], cur.actions[j]) {
			break
		}
		n++
	}
	if n == 0 {
		return
	}
	cur.tailTimes = availT[len(availT)-n:]
	cur.tailActions = availA[len(availA)-n:]
	cur.times = append([]uint64(nil), cur.times[:len(cur.times)-n]...)
	cur.actions = append([][]lsAction(nil), cur.actions[:len(cur.actions)-n]...)
}

// sameActions compares two snapshot action lists field-wise (snapshots
// never store function actions, so the fn field is always nil).
func sameActions(a, b []lsAction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].net != b[i].net || a[i].cellID != b[i].cellID || a[i].val != b[i].val {
			return false
		}
	}
	return true
}

// OwnedEvents reports how many queued data events (EventSim) or agenda
// time steps (LevelSim) the checkpoint stores in memory it owns, i.e.
// excluding any suffix aliased into an earlier checkpoint by ShareTails.
// It exists so callers and tests can observe checkpoint memory without
// reaching into engine internals.
func (ck *Checkpoint) OwnedEvents() int {
	switch {
	case ck == nil:
		return 0
	case ck.ev != nil:
		return len(ck.ev.events)
	case ck.lv != nil:
		return len(ck.lv.times)
	}
	return 0
}

// QueuedEvents reports the total logical queue length of the checkpoint,
// shared suffix included.
func (ck *Checkpoint) QueuedEvents() int {
	switch {
	case ck == nil:
		return 0
	case ck.ev != nil:
		return ck.ev.numEvents()
	case ck.lv != nil:
		return ck.lv.numTimes()
	}
	return 0
}
