package sim

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

// sampleInto registers pre-edge samples of (q1,q0) for cycles from..to and
// returns the slice the samples land in after Run.
func sampleInto(t *testing.T, e Engine, from, to int) *[]string {
	t.Helper()
	f := e.Flat()
	q0, q1 := netID(t, f, "q0"), netID(t, f, "q1")
	got := &[]string{}
	for c := from; c <= to; c++ {
		tm := uint64(c*period) - 10
		e.At(tm, func() {
			*got = append(*got, fmt.Sprintf("%v%v", e.Value(q1), e.Value(q0)))
		})
	}
	return got
}

func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			// Reference: one uninterrupted run.
			ref := mk()
			setupCounter(t, ref, last*period)
			refGot := sampleInto(t, ref, 2, last)
			if err := ref.Run(last * period); err != nil {
				t.Fatal(err)
			}

			// Producer: same run, snapshotting mid-flight at 4500ps.
			prod := mk()
			setupCounter(t, prod, last*period)
			prodGot := sampleInto(t, prod, 2, last)
			var ck *Checkpoint
			prod.At(4500, func() { ck = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}
			for i := range *refGot {
				if (*refGot)[i] != (*prodGot)[i] {
					t.Fatalf("snapshotting perturbed the producing run at sample %d: %s vs %s", i, (*refGot)[i], (*prodGot)[i])
				}
			}
			if ck == nil {
				t.Fatal("snapshot callback never fired")
			}
			if ck.TimePS != 4500 {
				t.Fatalf("checkpoint at %dps, want 4500", ck.TimePS)
			}

			// Consumer: a second engine warm-starts from the checkpoint and
			// must reproduce the reference tail bit for bit.
			warm := mk()
			if err := warm.Restore(ck); err != nil {
				t.Fatal(err)
			}
			warmGot := sampleInto(t, warm, 5, last)
			if err := warm.Run(last * period); err != nil {
				t.Fatal(err)
			}
			tail := (*refGot)[3:] // cycles 5..last
			if len(*warmGot) != len(tail) {
				t.Fatalf("warm run captured %d samples, want %d", len(*warmGot), len(tail))
			}
			for i := range tail {
				if (*warmGot)[i] != tail[i] {
					t.Fatalf("warm tail sample %d = %s, want %s (warm %v ref %v)", i, (*warmGot)[i], tail[i], *warmGot, tail)
				}
			}
		})
	}
}

func TestRestoreWithFaultMatchesColdRun(t *testing.T) {
	// A forced pulse across a capture edge must produce the same faulty
	// tail whether the run is simulated from t=0 or warm-started from a
	// pre-strike checkpoint — the invariant the injection campaign's
	// warm-start path rests on.
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			inject := func(e Engine) {
				n1 := netID(t, e.Flat(), "n1")
				e.ScheduleForce(5800, n1, logic.L1)
				e.ScheduleRelease(6300, n1)
			}

			cold := mk()
			setupCounter(t, cold, last*period)
			inject(cold)
			coldGot := sampleInto(t, cold, 2, last)
			if err := cold.Run(last * period); err != nil {
				t.Fatal(err)
			}

			prod := mk()
			setupCounter(t, prod, last*period)
			var ck *Checkpoint
			prod.At(4500, func() { ck = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}

			warm := mk()
			if err := warm.Restore(ck); err != nil {
				t.Fatal(err)
			}
			inject(warm)
			warmGot := sampleInto(t, warm, 5, last)
			if err := warm.Run(last * period); err != nil {
				t.Fatal(err)
			}
			tail := (*coldGot)[3:]
			for i := range tail {
				if (*warmGot)[i] != tail[i] {
					t.Fatalf("faulty warm tail sample %d = %s, want %s (warm %v cold %v)", i, (*warmGot)[i], tail[i], *warmGot, tail)
				}
			}
		})
	}
}

func TestEngineReuseAcrossRestores(t *testing.T) {
	// One engine, restored repeatedly: a polluted faulty run must leave no
	// trace in the next restore-and-run cycle.
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			prod := mk()
			setupCounter(t, prod, last*period)
			cleanGot := sampleInto(t, prod, 5, last)
			var ck *Checkpoint
			prod.At(4500, func() { ck = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}
			clean := append([]string(nil), *cleanGot...)

			eng := mk()
			for trial := 0; trial < 3; trial++ {
				if err := eng.Restore(ck); err != nil {
					t.Fatal(err)
				}
				if trial == 1 {
					// Pollute: flip both flops and force a net, then run.
					n1 := netID(t, eng.Flat(), "n1")
					eng.ScheduleForce(5100, n1, logic.L1)
					if err := eng.ScheduleFlip(5300, cellIDByPath(t, eng, "u_ff0")); err != nil {
						t.Fatal(err)
					}
					if err := eng.Run(last * period); err != nil {
						t.Fatal(err)
					}
					continue
				}
				got := sampleInto(t, eng, 5, last)
				if err := eng.Run(last * period); err != nil {
					t.Fatal(err)
				}
				for i := range clean {
					if (*got)[i] != clean[i] {
						t.Fatalf("trial %d sample %d = %s, want %s", trial, i, (*got)[i], clean[i])
					}
				}
			}
		})
	}
}

func cellIDByPath(t *testing.T, e Engine, path string) int {
	t.Helper()
	c, err := e.Flat().CellByPath(path)
	if err != nil {
		t.Fatal(err)
	}
	return c.ID
}

func TestMatchesCheckpointConvergence(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			prod := mk()
			setupCounter(t, prod, last*period)
			var ck1, ck2 *Checkpoint
			prod.At(4500, func() { ck1 = prod.Snapshot() })
			prod.At(8500, func() { ck2 = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}

			// A clean resume from ck1 must converge onto ck2.
			warm := mk()
			if err := warm.Restore(ck1); err != nil {
				t.Fatal(err)
			}
			if err := warm.Run(8500); err != nil {
				t.Fatal(err)
			}
			if !warm.MatchesCheckpoint(ck2) {
				t.Fatal("clean warm run does not match the later golden checkpoint")
			}
			if warm.MatchesCheckpoint(ck1) {
				t.Fatal("state at 8500ps claims to match the 4500ps checkpoint")
			}

			// A state flip must break convergence.
			if err := warm.FlipState(cellIDByPath(t, warm, "u_ff1")); err != nil {
				t.Fatal(err)
			}
			if warm.MatchesCheckpoint(ck2) {
				t.Fatal("flipped state still matches the golden checkpoint")
			}
		})
	}
}

func TestRestoreKindAndDesignMismatch(t *testing.T) {
	f := counterDesign(t)
	ev := NewEventSim(f)
	lv := NewLevelSim(f)
	if err := lv.Restore(ev.Snapshot()); err == nil {
		t.Error("LevelSim accepted an EventSim checkpoint")
	}
	if err := ev.Restore(lv.Snapshot()); err == nil {
		t.Error("EventSim accepted a LevelSim checkpoint")
	}
	var nilCk *Checkpoint
	if err := ev.Restore(nilCk); err == nil {
		t.Error("nil checkpoint accepted")
	}
}
