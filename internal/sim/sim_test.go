package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vcd"
)

// counterDesign builds a 2-bit synchronous counter with async reset:
// q0 toggles every cycle, q1 = q0 XOR q1 at each edge.
func counterDesign(t *testing.T) *netlist.Flat {
	t.Helper()
	d := netlist.NewDesign("counter")
	m := netlist.NewModule("counter")
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	m.AddPort("q0", netlist.Output)
	m.AddPort("q1", netlist.Output)
	m.AddWire("n0")
	m.AddWire("n1")
	m.AddWire("nq0")
	m.AddWire("nq1")
	m.AddInstance("u_inv", "INVX1", map[string]string{"A": "q0", "Y": "n0"})
	m.AddInstance("u_xor", "XOR2X1", map[string]string{"A": "q0", "B": "q1", "Y": "n1"})
	m.AddInstance("u_ff0", "DFFRX1", map[string]string{"D": "n0", "CK": "clk", "RN": "rstn", "Q": "q0", "QN": "nq0"})
	m.AddInstance("u_ff1", "DFFRX1", map[string]string{"D": "n1", "CK": "clk", "RN": "rstn", "Q": "q1", "QN": "nq1"})
	d.AddModule(m)
	d.Top = "counter"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func netID(t *testing.T, f *netlist.Flat, name string) int {
	t.Helper()
	n, err := f.NetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return n.ID
}

const period = 1000

// setupCounter drives clock and reset on the engine: reset released at
// 1500ps, rising edges at 1000, 2000, 3000, ...
func setupCounter(t *testing.T, e Engine, until uint64) {
	t.Helper()
	f := e.Flat()
	if err := DriveClock(e, netID(t, f, "clk"), period, period, until); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInput(0, netID(t, f, "rstn"), logic.L0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleInput(1500, netID(t, f, "rstn"), logic.L1); err != nil {
		t.Fatal(err)
	}
}

// sampleCounter records (q1,q0) just before each rising edge from cycle
// `from` to `to` inclusive.
func sampleCounter(t *testing.T, e Engine, from, to int) []string {
	t.Helper()
	f := e.Flat()
	q0, q1 := netID(t, f, "q0"), netID(t, f, "q1")
	var got []string
	for c := from; c <= to; c++ {
		tm := uint64(c*period) - 10
		e.At(tm, func() {
			got = append(got, fmt.Sprintf("%v%v", e.Value(q1), e.Value(q0)))
		})
	}
	if err := e.Run(uint64(to*period) + period); err != nil {
		t.Fatal(err)
	}
	return got
}

func engines(t *testing.T) map[string]func() Engine {
	f1 := counterDesign(t)
	f2 := counterDesign(t)
	return map[string]func() Engine{
		"EventSim": func() Engine { return NewEventSim(f1) },
		"LevelSim": func() Engine { return NewLevelSim(f2) },
	}
}

func TestCounterSequenceBothEngines(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			setupCounter(t, e, 9*period)
			got := sampleCounter(t, e, 2, 9)
			// Reset released at 1500: state 00 before edge 2, then counts.
			want := []string{"00", "01", "10", "11", "00", "01", "10", "11"}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: cycle %d state = %s, want %s (all: %v)", name, i+2, got[i], want[i], got)
				}
			}
		})
	}
}

func TestEnginesAgreeCycleByCycle(t *testing.T) {
	var results [][]string
	for _, mk := range engines(t) {
		e := mk()
		setupCounter(t, e, 12*period)
		results = append(results, sampleCounter(t, e, 2, 12))
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("engines disagree at sample %d: %v vs %v", i, results[0], results[1])
		}
	}
}

func TestAsyncResetDominates(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 6*period)
			// Re-assert reset mid-run.
			if err := e.ScheduleInput(3600, netID(t, f, "rstn"), logic.L0); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(4200); err != nil {
				t.Fatal(err)
			}
			if v := e.Value(netID(t, f, "q0")); v != logic.L0 {
				t.Errorf("%s: q0 after async reset = %v, want 0", name, v)
			}
			if v := e.Value(netID(t, f, "q1")); v != logic.L0 {
				t.Errorf("%s: q1 after async reset = %v, want 0", name, v)
			}
		})
	}
}

func TestSEUFlipDiverges(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 8*period)
			ff0, err := f.CellByPath("u_ff0")
			if err != nil {
				t.Fatal(err)
			}
			// Flip q0's state mid-cycle after cycle 3's edge.
			if err := e.ScheduleFlip(3300, ff0.ID); err != nil {
				t.Fatal(err)
			}
			got := sampleCounter(t, e, 4, 6)
			// Without the flip the pre-edge-4 state would be 10.
			if got[0] == "10" {
				t.Errorf("%s: SEU flip had no effect: %v", name, got)
			}
		})
	}
}

func TestSETPulseCapturedWhenOverlappingEdge(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 8*period)
			n0 := netID(t, f, "n0")
			// Pulse spanning the rising edge at 3000.
			e.ScheduleForce(2900, n0, logic.L0)
			e.ScheduleRelease(3100, n0)
			got := sampleCounter(t, e, 3, 5)
			// Cycle 3 pre-edge state is 01 (unchanged: pulse is later).
			if got[0] != "01" {
				t.Fatalf("%s: pre-pulse state = %s, want 01", name, got[0])
			}
			// Edge at 3000 should have captured forced D=0 for q0 instead
			// of the correct 0->... wait: q0 was 1, correct next is 0; the
			// force drives 0 as well, so use q1 effect instead: n1 forced?
			// The pulse forces n0 low; correct D0 at edge 3000 is !q0 = 0,
			// so the forced value matches and nothing diverges. Verify q0
			// still follows the nominal sequence.
			if got[1] != "10" {
				t.Errorf("%s: matching-value force must not corrupt: %v", name, got)
			}
		})
	}
}

func TestSETPulseWrongValueCaptured(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 8*period)
			n0 := netID(t, f, "n0")
			// At edge 3000 the correct D0 is 0 (q0 goes 1->0). Force D0=1
			// across the edge: q0 stays 1, corrupting the count phase.
			e.ScheduleForce(2900, n0, logic.L1)
			e.ScheduleRelease(3100, n0)
			got := sampleCounter(t, e, 4, 5)
			if got[0] == "10" {
				t.Errorf("%s: SET across edge had no effect: %v", name, got)
			}
		})
	}
}

func TestSETPulseBetweenEdgesHarmless(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 8*period)
			n0 := netID(t, f, "n0")
			// Pulse fully inside a cycle, well clear of both edges.
			e.ScheduleForce(3300, n0, logic.L1)
			e.ScheduleRelease(3500, n0)
			got := sampleCounter(t, e, 4, 6)
			want := []string{"10", "11", "00"}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: mid-cycle SET corrupted state: %v", name, got)
					break
				}
			}
		})
	}
}

func TestForceReleaseRestoresDriven(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			f := e.Flat()
			setupCounter(t, e, 4*period)
			n0 := netID(t, f, "n0")
			e.ScheduleForce(2200, n0, logic.L1)
			if err := e.Run(2300); err != nil {
				t.Fatal(err)
			}
			if v := e.Value(n0); v != logic.L1 {
				t.Fatalf("%s: forced value not applied: %v", name, v)
			}
			e.ScheduleRelease(2400, n0)
			if err := e.Run(2600); err != nil {
				t.Fatal(err)
			}
			// After release the inverter drives n0 = !q0 = !1 = 0.
			if v := e.Value(n0); v != logic.L0 {
				t.Errorf("%s: release did not restore driven value: %v", name, v)
			}
		})
	}
}

func TestInertialGlitchFilter(t *testing.T) {
	// EventSim-specific: a pulse shorter than the gate delay must be
	// swallowed by the inertial model.
	d := netlist.NewDesign("glitch")
	m := netlist.NewModule("glitch")
	m.AddPort("a", netlist.Input)
	m.AddPort("y", netlist.Output)
	m.AddInstance("u_inv", "INVX1", map[string]string{"A": "a", "Y": "y"})
	d.AddModule(m)
	d.Top = "glitch"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEventSim(f)
	a, y := netID(t, f, "a"), netID(t, f, "y")
	changes := 0
	e.OnNetChange(y, func(uint64, logic.V) { changes++ })
	_ = e.ScheduleInput(0, a, logic.L0)
	// 5ps pulse, shorter than the 12ps inverter delay.
	_ = e.ScheduleInput(100, a, logic.L1)
	_ = e.ScheduleInput(105, a, logic.L0)
	if err := e.Run(500); err != nil {
		t.Fatal(err)
	}
	if v := e.Value(y); v != logic.L1 {
		t.Fatalf("y = %v, want 1", v)
	}
	if changes != 1 { // X -> 1 only; no glitch
		t.Errorf("y changed %d times, want 1 (glitch must be filtered)", changes)
	}
}

func TestMemoryBitWriteHold(t *testing.T) {
	d := netlist.NewDesign("membit")
	m := netlist.NewModule("membit")
	m.AddPort("clk", netlist.Input)
	m.AddPort("d", netlist.Input)
	m.AddPort("we", netlist.Input)
	m.AddPort("q", netlist.Output)
	m.AddInstance("u_bit", "SRAMBITX1", map[string]string{"D": "d", "WE": "we", "CK": "clk", "Q": "q"})
	d.AddModule(m)
	d.Top = "membit"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, mkName := range []EngineKind{KindEvent, KindLevel} {
		e, err := New(mkName, f)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(string(mkName), func(t *testing.T) {
			_ = DriveClock(e, netID(t, f, "clk"), period, period, 6*period)
			_ = e.ScheduleInput(0, netID(t, f, "d"), logic.L1)
			_ = e.ScheduleInput(0, netID(t, f, "we"), logic.L1)
			// Write 1 at edge 1000, then disable writes and change D.
			_ = e.ScheduleInput(1400, netID(t, f, "we"), logic.L0)
			_ = e.ScheduleInput(1600, netID(t, f, "d"), logic.L0)
			if err := e.Run(3500); err != nil {
				t.Fatal(err)
			}
			if v := e.Value(netID(t, f, "q")); v != logic.L1 {
				t.Errorf("memory bit lost its value with WE=0: q=%v", v)
			}
		})
	}
}

func TestStateAccessors(t *testing.T) {
	f := counterDesign(t)
	e := NewEventSim(f)
	ff0, _ := f.CellByPath("u_ff0")
	inv, _ := f.CellByPath("u_inv")
	if _, err := e.State(inv.ID); err == nil {
		t.Error("State on combinational cell must fail")
	}
	if _, err := e.State(-1); err == nil {
		t.Error("State out of range must fail")
	}
	if err := e.FlipState(inv.ID); err == nil {
		t.Error("FlipState on combinational cell must fail")
	}
	setupCounter(t, e, 4*period)
	if err := e.Run(2500); err != nil {
		t.Fatal(err)
	}
	st, err := e.State(ff0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st != logic.L1 {
		t.Errorf("ff0 state after first counted edge = %v, want 1", st)
	}
}

func TestScheduleInputValidation(t *testing.T) {
	f := counterDesign(t)
	for _, kind := range []EngineKind{KindEvent, KindLevel} {
		e, _ := New(kind, f)
		if err := e.ScheduleInput(0, netID(t, f, "n0"), logic.L1); err == nil {
			t.Errorf("%s: driving an internal net as input must fail", kind)
		}
		if err := e.ScheduleInput(0, 9999, logic.L1); err == nil {
			t.Errorf("%s: out-of-range net must fail", kind)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("bogus", counterDesign(t)); err == nil {
		t.Fatal("unknown engine kind must fail")
	}
}

func TestCellEvalsCounted(t *testing.T) {
	fEv := counterDesign(t)
	ev := NewEventSim(fEv)
	setupCounter(t, ev, 10*period)
	if err := ev.Run(10 * period); err != nil {
		t.Fatal(err)
	}
	fLv := counterDesign(t)
	lv := NewLevelSim(fLv)
	setupCounter(t, lv, 10*period)
	if err := lv.Run(10 * period); err != nil {
		t.Fatal(err)
	}
	if ev.CellEvals() == 0 || lv.CellEvals() == 0 {
		t.Fatal("cell evaluation counters must advance")
	}
}

func TestVCDGoldenVsFaulty(t *testing.T) {
	run := func(inject bool) *vcd.Trace {
		f := counterDesign(t)
		e := NewEventSim(f)
		var buf bytes.Buffer
		w := vcd.NewWriter(&buf)
		mon := []int{netID(t, f, "q0"), netID(t, f, "q1")}
		if err := AttachVCD(e, w, mon); err != nil {
			t.Fatal(err)
		}
		setupCounter(t, e, 8*period)
		if inject {
			ff0, _ := f.CellByPath("u_ff0")
			if err := e.ScheduleFlip(3300, ff0.ID); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(8 * period); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(8 * period); err != nil {
			t.Fatal(err)
		}
		tr, err := vcd.Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	golden := run(false)
	golden2 := run(false)
	if vcd.Diverged(golden, golden2, nil) {
		t.Fatal("two golden runs must be identical")
	}
	faulty := run(true)
	if !vcd.Diverged(golden, faulty, nil) {
		t.Fatal("SEU-injected run must diverge from golden")
	}
}

func TestSampleOutputs(t *testing.T) {
	f := counterDesign(t)
	e := NewEventSim(f)
	setupCounter(t, e, 4*period)
	if err := e.Run(2500); err != nil {
		t.Fatal(err)
	}
	out := SampleOutputs(e)
	if len(out) != 2 {
		t.Fatalf("outputs = %v", out)
	}
	if out["q0"] != logic.L1 {
		t.Errorf("q0 = %v, want 1", out["q0"])
	}
}

func TestDriveClockValidation(t *testing.T) {
	f := counterDesign(t)
	e := NewEventSim(f)
	if err := DriveClock(e, netID(t, f, "clk"), 1, 0, 100); err == nil {
		t.Error("tiny period must be rejected")
	}
}
