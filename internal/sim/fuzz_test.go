package sim

import (
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/xrand"
)

// randomSyncDesign builds a random synchronous circuit: data inputs, an
// acyclic combinational cloud, and DFFR state registers fed back into the
// cloud — the general shape of any clocked netlist.
func randomSyncDesign(rng *xrand.RNG) *netlist.Flat {
	d := netlist.NewDesign("fuzzsync")
	m := netlist.NewModule("fuzzsync")
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	nIn := 2 + rng.Intn(3)
	avail := []string{}
	for i := 0; i < nIn; i++ {
		avail = append(avail, m.AddPort(fmt.Sprintf("d%d", i), netlist.Input))
	}
	// State registers: declare Q wires first so gates can consume them.
	nFF := 1 + rng.Intn(4)
	qs := make([]string, nFF)
	for i := range qs {
		qs[i] = m.AddWire(fmt.Sprintf("q%d", i))
		avail = append(avail, qs[i])
	}
	combCells := []string{"INVX1", "NAND2X1", "NOR2X1", "XOR2X1", "AOI21X1", "MUX2X1", "AND3X1"}
	nGates := 3 + rng.Intn(10)
	for g := 0; g < nGates; g++ {
		name := combCells[rng.Intn(len(combCells))]
		def, _ := netlistLookup(name)
		conns := map[string]string{}
		for _, p := range def.in {
			conns[p] = avail[rng.Intn(len(avail))]
		}
		out := m.AddWire(fmt.Sprintf("g%d", g))
		conns[def.out] = out
		m.AddInstance(fmt.Sprintf("u_g%d", g), name, conns)
		avail = append(avail, out)
	}
	// Close the loop: each FF samples a random comb net. Note qs entries
	// are in avail, so a flop may sample another flop directly.
	for i := 0; i < nFF; i++ {
		dNet := avail[rng.Intn(len(avail))]
		m.AddInstance(fmt.Sprintf("u_ff%d", i), "DFFRX1", map[string]string{
			"D": dNet, "CK": "clk", "RN": "rstn",
			"Q": qs[i], "QN": m.AddWire(fmt.Sprintf("qn%d", i)),
		})
	}
	// Observable outputs.
	for i := 0; i < 2; i++ {
		po := m.AddPort(fmt.Sprintf("y%d", i), netlist.Output)
		m.AddInstance(fmt.Sprintf("u_y%d", i), "BUFX2", map[string]string{
			"A": avail[len(avail)-1-i], "Y": po,
		})
	}
	d.AddModule(m)
	d.Top = "fuzzsync"
	f, err := netlist.Flatten(d)
	if err != nil {
		// The generator only wires forward, so this cannot loop; any
		// failure is a generator bug worth surfacing loudly.
		panic(err)
	}
	return f
}

// netlistLookup adapts cell metadata for the generator without importing
// the cell package's full API shape.
type cellMeta struct {
	in  []string
	out string
}

func netlistLookup(name string) (cellMeta, bool) {
	switch name {
	case "INVX1":
		return cellMeta{in: []string{"A"}, out: "Y"}, true
	case "NAND2X1", "NOR2X1", "XOR2X1":
		return cellMeta{in: []string{"A", "B"}, out: "Y"}, true
	case "AOI21X1":
		return cellMeta{in: []string{"A", "B", "C"}, out: "Y"}, true
	case "MUX2X1":
		return cellMeta{in: []string{"A", "B", "S"}, out: "Y"}, true
	case "AND3X1":
		return cellMeta{in: []string{"A", "B", "C"}, out: "Y"}, true
	}
	return cellMeta{}, false
}

// TestEnginesEquivalentFuzz drives random synchronous circuits with random
// stimulus on both engines and requires identical pre-edge sampled values
// on every net, every cycle — the strongest cross-check the two independent
// simulator implementations get.
func TestEnginesEquivalentFuzz(t *testing.T) {
	rng := xrand.New(424242)
	const period = 4000
	const cycles = 12
	for trial := 0; trial < 60; trial++ {
		f := randomSyncDesign(rng)
		// Build a shared stimulus: reset release, clock, random data
		// toggles mid-cycle.
		var sts []Stimulus
		clkNet, rstnNet := -1, -1
		var dataNets []int
		for _, n := range f.Nets {
			if !n.IsPI {
				continue
			}
			switch n.Name {
			case "clk":
				clkNet = n.ID
			case "rstn":
				rstnNet = n.ID
			default:
				dataNets = append(dataNets, n.ID)
			}
		}
		sts = append(sts, Stimulus{Time: 0, Net: rstnNet, Val: logic.L0})
		sts = append(sts, Stimulus{Time: period / 2, Net: rstnNet, Val: logic.L1})
		for _, dn := range dataNets {
			sts = append(sts, Stimulus{Time: 0, Net: dn, Val: logic.FromBool(rng.Intn(2) == 1)})
		}
		for k := 1; k < cycles; k++ {
			for _, dn := range dataNets {
				if rng.Intn(2) == 0 {
					continue
				}
				tm := uint64(k)*period + period/4
				sts = append(sts, Stimulus{Time: tm, Net: dn, Val: logic.FromBool(rng.Intn(2) == 1)})
			}
		}

		run := func(kind EngineKind) [][]logic.V {
			e, err := New(kind, f)
			if err != nil {
				t.Fatal(err)
			}
			if err := DriveClock(e, clkNet, period, period, cycles*period); err != nil {
				t.Fatal(err)
			}
			if err := ApplyStimuli(e, sts); err != nil {
				t.Fatal(err)
			}
			var samples [][]logic.V
			for k := 2; k <= cycles; k++ {
				tm := uint64(k)*period - 15
				e.At(tm, func() {
					row := make([]logic.V, len(f.Nets))
					for i := range f.Nets {
						row[i] = e.Value(i)
					}
					samples = append(samples, row)
				})
			}
			if err := e.Run(uint64(cycles) * period); err != nil {
				t.Fatal(err)
			}
			return samples
		}
		ev := run(KindEvent)
		lv := run(KindLevel)
		if len(ev) != len(lv) {
			t.Fatalf("trial %d: sample count differs", trial)
		}
		for k := range ev {
			for nid := range ev[k] {
				if ev[k][nid] != lv[k][nid] {
					t.Fatalf("trial %d: engines disagree at cycle %d on net %s: %v vs %v",
						trial, k+2, f.Nets[nid].Name, ev[k][nid], lv[k][nid])
				}
			}
		}
	}
}

// TestSEUEquivalenceFuzz injects the same SEU into both engines on random
// circuits and requires the corrupted trajectories to stay identical.
func TestSEUEquivalenceFuzz(t *testing.T) {
	rng := xrand.New(99)
	const period = 4000
	const cycles = 10
	for trial := 0; trial < 30; trial++ {
		f := randomSyncDesign(rng)
		seq := f.SequentialCells()
		victim := seq[rng.Intn(len(seq))]
		// Strike in the first half of a cycle, leaving at least half a
		// period before the next edge: the event-driven engine propagates
		// the flip with real gate delays, and only when the whole cone
		// settles before the capture edge are the two engines' captured
		// states comparable.
		flipAt := uint64(3+rng.Intn(4))*period + period/4 + uint64(rng.Intn(period/4))
		var clkNet, rstnNet int
		for _, n := range f.Nets {
			if n.IsPI && n.Name == "clk" {
				clkNet = n.ID
			}
			if n.IsPI && n.Name == "rstn" {
				rstnNet = n.ID
			}
		}
		run := func(kind EngineKind) [][]logic.V {
			e, _ := New(kind, f)
			_ = DriveClock(e, clkNet, period, period, cycles*period)
			_ = e.ScheduleInput(0, rstnNet, logic.L0)
			_ = e.ScheduleInput(period/2, rstnNet, logic.L1)
			for _, n := range f.Nets {
				if n.IsPI && n.Name != "clk" && n.Name != "rstn" {
					_ = e.ScheduleInput(0, n.ID, logic.L1)
				}
			}
			if err := e.ScheduleFlip(flipAt, victim); err != nil {
				t.Fatal(err)
			}
			var samples [][]logic.V
			for k := 2; k <= cycles; k++ {
				tm := uint64(k)*period - 15
				e.At(tm, func() {
					row := make([]logic.V, len(f.Nets))
					for i := range f.Nets {
						row[i] = e.Value(i)
					}
					samples = append(samples, row)
				})
			}
			if err := e.Run(uint64(cycles) * period); err != nil {
				t.Fatal(err)
			}
			return samples
		}
		ev, lv := run(KindEvent), run(KindLevel)
		for k := range ev {
			for nid := range ev[k] {
				if ev[k][nid] != lv[k][nid] {
					t.Fatalf("trial %d: engines disagree after SEU (victim %s flipped at %dps) at cycle %d on net %s: event=%v level=%v",
						trial, f.Cells[victim].Path, flipAt, k+2, f.Nets[nid].Name, ev[k][nid], lv[k][nid])
				}
			}
		}
	}
}
