package sim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Versioned binary wire codec for Checkpoint. The format is
// deterministic: encoding the same checkpoint always yields the same
// bytes, which is what makes checkpoints content-addressable in the
// artifact lake. Decoding is strict — a truncated or corrupted stream is
// rejected with an error, never silently accepted, and every length and
// enum is validated before use so a hostile blob cannot make Restore
// index out of bounds.
//
// Tail aliasing (ShareTails) is flattened on encode: the combined
// events ++ tail list is written as one sequence, and a decoded
// checkpoint owns all of its storage. Callers that decode a whole
// checkpoint schedule may re-run ShareTails over it to recover the
// memory sharing; semantics are unchanged either way.

const (
	ckptMagic   uint32 = 0x534b5031 // "SKP1"
	ckptVersion byte   = 1

	kindTagEvent byte = 1
	kindTagLevel byte = 2

	// maxCodecLen bounds every decoded count before allocation so a
	// corrupt length prefix cannot force a huge allocation.
	maxCodecLen = 1 << 28
)

// CheckDesign validates that ck can restore an engine of its own kind
// simulating design f — the eager form of the validation Restore performs,
// for callers that adopt decoded checkpoints and want to refuse a
// mismatched artifact before touching any engine.
func (ck *Checkpoint) CheckDesign(f *netlist.Flat) error {
	if ck == nil {
		return fmt.Errorf("sim: nil checkpoint")
	}
	return ck.check(ck.Kind, f)
}

// EncodeCheckpoint writes ck to w in the versioned binary wire format.
func EncodeCheckpoint(w io.Writer, ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("sim: encode nil checkpoint")
	}
	e := &encoder{w: bufio.NewWriter(w)}
	e.u32(ckptMagic)
	e.byte(ckptVersion)
	switch ck.Kind {
	case KindEvent:
		e.byte(kindTagEvent)
	case KindLevel:
		e.byte(kindTagLevel)
	default:
		return fmt.Errorf("sim: encode checkpoint of unknown kind %q", ck.Kind)
	}
	e.u64(ck.TimePS)
	e.u64(ck.Evals)
	e.str(ck.design)
	e.uvarint(uint64(ck.nets))
	e.uvarint(uint64(ck.cells))
	switch ck.Kind {
	case KindEvent:
		if ck.ev == nil {
			return fmt.Errorf("sim: event checkpoint missing payload")
		}
		encodeEventCheckpoint(e, ck.ev)
	case KindLevel:
		if ck.lv == nil {
			return fmt.Errorf("sim: level checkpoint missing payload")
		}
		encodeLevelCheckpoint(e, ck.lv)
	}
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func encodeEventCheckpoint(e *encoder, ev *eventCheckpoint) {
	e.u64(ev.seqBase)
	e.vSlice(ev.cur)
	e.vSlice(ev.driven)
	e.bSlice(ev.forced)
	e.vSlice(ev.state)
	n := ev.numEvents()
	e.uvarint(uint64(n))
	for i := 0; i < n; i++ {
		ce := ev.eventAt(i)
		e.u64(ce.t)
		e.u64(ce.seq)
		e.uvarint(uint64(ce.phase))
		e.byte(byte(ce.kind))
		e.uvarint(uint64(ce.net))
		e.uvarint(uint64(ce.cellID))
		e.byte(byte(ce.val))
	}
	e.uvarint(uint64(len(ev.pendingIdx)))
	for _, idx := range ev.pendingIdx {
		e.varint(int64(idx))
	}
}

func encodeLevelCheckpoint(e *encoder, lv *levelCheckpoint) {
	e.vSlice(lv.cur)
	e.vSlice(lv.inputVal)
	e.bSlice(lv.forced)
	e.vSlice(lv.forcedVal)
	e.vSlice(lv.state)
	e.vSlice(lv.prevClk)
	n := lv.numTimes()
	e.uvarint(uint64(n))
	for i := 0; i < n; i++ {
		e.u64(lv.timeAt(i))
		acts := lv.actionsAt(i)
		e.uvarint(uint64(len(acts)))
		for _, a := range acts {
			e.byte(byte(a.kind))
			e.uvarint(uint64(a.net))
			e.uvarint(uint64(a.cellID))
			e.byte(byte(a.val))
		}
	}
}

// DecodeCheckpoint reads one checkpoint in the wire format produced by
// EncodeCheckpoint. The returned checkpoint owns all of its storage.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	d := &decoder{r: bufio.NewReader(r)}
	if m := d.u32(); d.err == nil && m != ckptMagic {
		return nil, fmt.Errorf("sim: checkpoint blob has bad magic %#x", m)
	}
	if v := d.byte(); d.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("sim: unsupported checkpoint codec version %d", v)
	}
	tag := d.byte()
	ck := &Checkpoint{}
	ck.TimePS = d.u64()
	ck.Evals = d.u64()
	ck.design = d.str()
	ck.nets = d.count("nets")
	ck.cells = d.count("cells")
	if d.err != nil {
		return nil, d.err
	}
	switch tag {
	case kindTagEvent:
		ck.Kind = KindEvent
		ck.ev = decodeEventCheckpoint(d, ck.nets, ck.cells)
	case kindTagLevel:
		ck.Kind = KindLevel
		ck.lv = decodeLevelCheckpoint(d, ck.nets, ck.cells)
	default:
		return nil, fmt.Errorf("sim: checkpoint blob has unknown kind tag %d", tag)
	}
	if d.err != nil {
		return nil, d.err
	}
	return ck, nil
}

func decodeEventCheckpoint(d *decoder, nets, cells int) *eventCheckpoint {
	ev := &eventCheckpoint{}
	ev.seqBase = d.u64()
	ev.cur = d.vSlice("cur", nets)
	ev.driven = d.vSlice("driven", nets)
	ev.forced = d.bSlice("forced", nets)
	ev.state = d.vSlice("state", cells)
	n := d.count("events")
	if d.err != nil {
		return nil
	}
	ev.events = make([]ckptEvent, n)
	for i := range ev.events {
		ce := &ev.events[i]
		ce.t = d.u64()
		ce.seq = d.u64()
		ce.phase = uint32(d.count("phase"))
		k := evKind(d.byte())
		ce.kind = k
		ce.net = d.count("net")
		ce.cellID = d.count("cellID")
		ce.val = logic.V(d.byte())
		if d.err != nil {
			return nil
		}
		if k >= evFunc {
			d.fail(fmt.Errorf("sim: checkpoint event %d has invalid kind %d", i, k))
			return nil
		}
		if ce.net >= nets || ce.cellID >= cells && ce.cellID != 0 {
			d.fail(fmt.Errorf("sim: checkpoint event %d targets out-of-range net/cell", i))
			return nil
		}
		if ce.val > logic.Z {
			d.fail(fmt.Errorf("sim: checkpoint event %d has invalid logic value %d", i, ce.val))
			return nil
		}
	}
	np := d.count("pendingIdx")
	if d.err != nil {
		return nil
	}
	if np != nets {
		d.fail(fmt.Errorf("sim: checkpoint pendingIdx length %d, want %d", np, nets))
		return nil
	}
	ev.pendingIdx = make([]int32, np)
	for i := range ev.pendingIdx {
		v := d.varint()
		if d.err != nil {
			return nil
		}
		if v < -1 || v >= int64(n) {
			d.fail(fmt.Errorf("sim: checkpoint pendingIdx[%d]=%d out of range", i, v))
			return nil
		}
		ev.pendingIdx[i] = int32(v)
	}
	return ev
}

func decodeLevelCheckpoint(d *decoder, nets, cells int) *levelCheckpoint {
	lv := &levelCheckpoint{}
	lv.cur = d.vSlice("cur", nets)
	lv.inputVal = d.vSlice("inputVal", nets)
	lv.forced = d.bSlice("forced", nets)
	lv.forcedVal = d.vSlice("forcedVal", nets)
	lv.state = d.vSlice("state", cells)
	lv.prevClk = d.vSlice("prevClk", cells)
	n := d.count("times")
	if d.err != nil {
		return nil
	}
	lv.times = make([]uint64, n)
	lv.actions = make([][]lsAction, n)
	var prev uint64
	for i := 0; i < n; i++ {
		t := d.u64()
		na := d.count("actions")
		if d.err != nil {
			return nil
		}
		if i > 0 && t <= prev {
			d.fail(fmt.Errorf("sim: checkpoint agenda times not strictly ascending at %d", i))
			return nil
		}
		prev = t
		if na == 0 {
			d.fail(fmt.Errorf("sim: checkpoint agenda time %d holds no actions", t))
			return nil
		}
		acts := make([]lsAction, na)
		for j := range acts {
			a := &acts[j]
			k := lsKind(d.byte())
			a.kind = k
			a.net = d.count("net")
			a.cellID = d.count("cellID")
			a.val = logic.V(d.byte())
			if d.err != nil {
				return nil
			}
			if k >= lsFunc {
				d.fail(fmt.Errorf("sim: checkpoint action has invalid kind %d", k))
				return nil
			}
			if a.net >= nets || a.cellID >= cells && a.cellID != 0 {
				d.fail(fmt.Errorf("sim: checkpoint action targets out-of-range net/cell"))
				return nil
			}
			if a.val > logic.Z {
				d.fail(fmt.Errorf("sim: checkpoint action has invalid logic value %d", a.val))
				return nil
			}
		}
		lv.times[i] = t
		lv.actions[i] = acts
	}
	return lv
}

// encoder accumulates little-endian primitives into a buffered writer,
// latching the first error.
type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *encoder) byte(b byte) {
	if e.err != nil {
		return
	}
	e.err = e.w.WriteByte(b)
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.write(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) vSlice(v []logic.V) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.byte(byte(x))
	}
}

func (e *encoder) bSlice(v []bool) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		if x {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}
}

// decoder reads the primitives encoder writes, latching the first error.
type decoder struct {
	r   *bufio.Reader
	buf [8]byte
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) read(n int) []byte {
	if d.err != nil {
		return nil
	}
	if _, err := io.ReadFull(d.r, d.buf[:n]); err != nil {
		d.fail(fmt.Errorf("sim: truncated checkpoint blob: %w", err))
		return nil
	}
	return d.buf[:n]
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.fail(fmt.Errorf("sim: truncated checkpoint blob: %w", err))
		return 0
	}
	return b
}

func (d *decoder) u32() uint32 {
	b := d.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail(fmt.Errorf("sim: truncated checkpoint blob: %w", err))
		return 0
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.fail(fmt.Errorf("sim: truncated checkpoint blob: %w", err))
		return 0
	}
	return v
}

// count reads a uvarint and bounds it so corrupt data cannot force a
// huge allocation.
func (d *decoder) count(what string) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxCodecLen {
		d.fail(fmt.Errorf("sim: checkpoint %s count %d exceeds limit", what, v))
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count("string")
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(fmt.Errorf("sim: truncated checkpoint blob: %w", err))
		return ""
	}
	return string(b)
}

// vSlice reads a logic-value slice and requires its length to equal want,
// so Restore's copy() targets are always fully written.
func (d *decoder) vSlice(what string, want int) []logic.V {
	n := d.count(what)
	if d.err != nil {
		return nil
	}
	if n != want {
		d.fail(fmt.Errorf("sim: checkpoint %s length %d, want %d", what, n, want))
		return nil
	}
	out := make([]logic.V, n)
	for i := range out {
		b := d.byte()
		if d.err != nil {
			return nil
		}
		if logic.V(b) > logic.Z {
			d.fail(fmt.Errorf("sim: checkpoint %s[%d] has invalid logic value %d", what, i, b))
			return nil
		}
		out[i] = logic.V(b)
	}
	return out
}

func (d *decoder) bSlice(what string, want int) []bool {
	n := d.count(what)
	if d.err != nil {
		return nil
	}
	if n != want {
		d.fail(fmt.Errorf("sim: checkpoint %s length %d, want %d", what, n, want))
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		b := d.byte()
		if d.err != nil {
			return nil
		}
		if b > 1 {
			d.fail(fmt.Errorf("sim: checkpoint %s[%d] has invalid bool byte %d", what, i, b))
			return nil
		}
		out[i] = b == 1
	}
	return out
}
