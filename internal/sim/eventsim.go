package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// EventSim is the event-driven engine: only the fanout cone of a changed
// net is re-evaluated, and combinational outputs propagate with the cell's
// inertial delay (glitches shorter than the delay are swallowed, which is
// exactly the filtering SET pulses are subject to in real logic).
type EventSim struct {
	flat *netlist.Flat
	now  uint64
	seq  uint64 // tie-breaker for deterministic event order
	// phase is the coarse tie-breaker ahead of seq: it increments at every
	// Run entry, so events scheduled before a run (stimulus, fault actions,
	// monitors) order ahead of events the run creates dynamically at the
	// same timestamp. For an engine driven the ordinary way phase order
	// coincides with seq order and changes nothing; after Restore it is
	// what lets freshly registered pre-run events slot in ahead of restored
	// in-flight transitions, reproducing a cold run's tie-breaking exactly.
	phase   uint32
	running bool
	evts    eventHeap

	cur    []logic.V // present value of each net
	driven []logic.V // value the driver wants (differs from cur under force)
	forced []bool

	state []logic.V // per-cell sequential state (X for comb cells)

	pending []*event // per-net pending inertial transition (may be nil)

	cbs       map[int][]NetCallback
	cellEvals uint64

	// Delta-restore tracking, active once the engine has restored a
	// checkpoint: every net or cell mutated since the last restore is
	// recorded exactly once, so RestoreDelta can rewrite only those
	// entries. restoredEvts is parallel to lastRestored's combined event
	// list (live pointer per checkpoint index); present is RestoreDelta's
	// reusable scratch.
	lastRestored *Checkpoint
	netDirty     []bool
	cellDirty    []bool
	dirtyNets    []int32
	dirtyCells   []int32
	restoredEvts []*event
	present      []bool
}

type evKind uint8

const (
	evNet   evKind = iota // driver-produced net transition (inertial)
	evInput               // primary input change
	evForce
	evRelease
	evFlip
	evFunc
)

type event struct {
	t         uint64
	seq       uint64
	phase     uint32
	kind      evKind
	net       int
	cellID    int
	val       logic.V
	fn        func()
	cancelled bool
	// ckIdx is the event's index in the last-restored checkpoint's event
	// list, or -1 for events scheduled since (dynamically or by a caller).
	// RestoreDelta uses it to tell retained checkpoint events apart from
	// post-restore additions without a lookup structure.
	ckIdx int32
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].phase != h[j].phase {
		return h[i].phase < h[j].phase
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewEventSim returns an event-driven engine with all nets and states at X.
func NewEventSim(f *netlist.Flat) *EventSim {
	s := &EventSim{
		flat:    f,
		cur:     make([]logic.V, len(f.Nets)),
		driven:  make([]logic.V, len(f.Nets)),
		forced:  make([]bool, len(f.Nets)),
		state:   make([]logic.V, len(f.Cells)),
		pending: make([]*event, len(f.Nets)),
		cbs:     map[int][]NetCallback{},
	}
	for i := range s.cur {
		s.cur[i] = logic.X
		s.driven[i] = logic.X
	}
	for i := range s.state {
		s.state[i] = logic.X
	}
	for _, c := range f.Cells {
		switch {
		case !c.Def.IsSequential() && len(c.Def.Inputs) == 0:
			// Tie cells have no inputs and never receive a triggering
			// event; seed their constant outputs at time zero.
			out := c.Def.Eval(nil)
			for i, nid := range c.Out {
				s.schedule(&event{t: 0, kind: evNet, net: nid, val: out[i]})
			}
		case initZeroState(c):
			// Storage without an asynchronous control (memory bits,
			// enable flops) initializes to 0, mirroring the standard
			// register-initialization practice of fault-injection flows
			// (VCS +vcs+initreg+0): campaigns need a fully defined golden
			// reference, and X-circulating feedback loops would otherwise
			// mask most upsets.
			s.state[c.ID] = logic.L0
			outs := c.Def.StateOutputs(logic.L0)
			for i, nid := range c.Out {
				s.schedule(&event{t: 0, kind: evNet, net: nid, val: outs[i]})
			}
		}
	}
	return s
}

// initZeroState reports whether the cell's power-on state is initialized
// to zero rather than X: storage with no asynchronous reset/set path.
func initZeroState(c *netlist.FlatCell) bool {
	return c.Def.IsSequential() &&
		c.Def.Seq.AsyncResetN == "" && c.Def.Seq.AsyncSetN == ""
}

// Name implements Engine.
func (s *EventSim) Name() string { return string(KindEvent) }

// Flat implements Engine.
func (s *EventSim) Flat() *netlist.Flat { return s.flat }

// Now implements Engine.
func (s *EventSim) Now() uint64 { return s.now }

// Value implements Engine.
func (s *EventSim) Value(net int) logic.V { return s.cur[net] }

// State implements Engine.
func (s *EventSim) State(cellID int) (logic.V, error) {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return logic.X, err
	}
	return s.state[cellID], nil
}

// CellEvals implements Engine.
func (s *EventSim) CellEvals() uint64 { return s.cellEvals }

func (s *EventSim) schedule(e *event) {
	e.seq = s.seq
	e.phase = s.phase
	e.ckIdx = -1
	s.seq++
	heap.Push(&s.evts, e)
}

// touchNet records that a net's simulation state (value, driver, force or
// pending transition) mutated since the last restore. A no-op until the
// engine first restores a checkpoint.
func (s *EventSim) touchNet(nid int) {
	if s.lastRestored != nil && !s.netDirty[nid] {
		s.netDirty[nid] = true
		s.dirtyNets = append(s.dirtyNets, int32(nid))
	}
}

// touchCell records a sequential-state mutation since the last restore.
func (s *EventSim) touchCell(cid int) {
	if s.lastRestored != nil && !s.cellDirty[cid] {
		s.cellDirty[cid] = true
		s.dirtyCells = append(s.dirtyCells, int32(cid))
	}
}

// ScheduleInput implements Engine.
func (s *EventSim) ScheduleInput(t uint64, net int, v logic.V) error {
	if err := validateInput(s.flat, net); err != nil {
		return err
	}
	s.schedule(&event{t: t, kind: evInput, net: net, val: v})
	return nil
}

// ScheduleForce implements Engine.
func (s *EventSim) ScheduleForce(t uint64, net int, v logic.V) {
	s.schedule(&event{t: t, kind: evForce, net: net, val: v})
}

// ScheduleRelease implements Engine.
func (s *EventSim) ScheduleRelease(t uint64, net int) {
	s.schedule(&event{t: t, kind: evRelease, net: net})
}

// ScheduleFlip implements Engine.
func (s *EventSim) ScheduleFlip(t uint64, cellID int) error {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return err
	}
	s.schedule(&event{t: t, kind: evFlip, cellID: cellID})
	return nil
}

// At implements Engine.
func (s *EventSim) At(t uint64, fn func()) {
	s.schedule(&event{t: t, kind: evFunc, fn: fn})
}

// OnNetChange implements Engine.
func (s *EventSim) OnNetChange(net int, fn NetCallback) {
	s.cbs[net] = append(s.cbs[net], fn)
}

// FlipState implements Engine.
func (s *EventSim) FlipState(cellID int) error {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return err
	}
	s.applyFlip(cellID)
	return nil
}

func (s *EventSim) applyFlip(cellID int) {
	c := s.flat.Cells[cellID]
	s.touchCell(cellID)
	s.state[cellID] = s.state[cellID].Not()
	outs := c.Def.StateOutputs(s.state[cellID])
	// An upset corrupts the storage node directly: outputs follow with the
	// cell's propagation delay, as in the paper's SEU model (Fig. 2).
	for i, nid := range c.Out {
		s.scheduleNetTransition(nid, outs[i], c.Def.DelayPS)
	}
}

// scheduleNetTransition applies the inertial-delay rule for a driver that
// now wants value v on net nid after delay d; sequential outputs follow the
// same rule as combinational ones.
func (s *EventSim) scheduleNetTransition(nid int, v logic.V, d int64) {
	s.scheduleCombOutput(nid, v, d)
}

// Run implements Engine.
func (s *EventSim) Run(until uint64) error {
	s.phase++
	s.running = true
	defer func() { s.running = false }()
	for s.evts.Len() > 0 {
		e := s.evts[0]
		if e.t > until {
			break
		}
		heap.Pop(&s.evts)
		if e.cancelled {
			continue
		}
		if e.t < s.now {
			return fmt.Errorf("sim: event time %d before now %d", e.t, s.now)
		}
		s.now = e.t
		switch e.kind {
		case evNet:
			s.touchNet(e.net)
			s.pending[e.net] = nil
			s.driven[e.net] = e.val
			if !s.forced[e.net] {
				s.setNet(e.net, e.val)
			}
		case evInput:
			s.touchNet(e.net)
			s.driven[e.net] = e.val
			if !s.forced[e.net] {
				s.setNet(e.net, e.val)
			}
		case evForce:
			s.touchNet(e.net)
			s.forced[e.net] = true
			s.setNet(e.net, e.val)
		case evRelease:
			if s.forced[e.net] {
				s.touchNet(e.net)
				s.forced[e.net] = false
				s.setNet(e.net, s.driven[e.net])
			}
		case evFlip:
			s.applyFlip(e.cellID)
		case evFunc:
			e.fn()
		}
	}
	if until > s.now {
		s.now = until
	}
	return nil
}

// setNet commits a value change and triggers fanout evaluation.
func (s *EventSim) setNet(nid int, v logic.V) {
	old := s.cur[nid]
	if old == v {
		return
	}
	s.cur[nid] = v
	for _, fn := range s.cbs[nid] {
		fn(s.now, v)
	}
	for _, fo := range s.flat.Nets[nid].Fanout {
		s.evalCell(fo.Cell, fo.Pin, old, v)
	}
}

// evalCell reacts to a change on input pin `pin` of cell `cid`.
func (s *EventSim) evalCell(cid, pin int, old, new logic.V) {
	s.cellEvals++
	c := s.flat.Cells[cid]
	def := c.Def
	if !def.IsSequential() {
		in := s.gatherInputs(c)
		out := def.Eval(in)
		for i, nid := range c.Out {
			s.scheduleCombOutput(nid, out[i], def.DelayPS)
		}
		return
	}
	in := s.gatherInputs(c)
	// Asynchronous controls dominate and act on any input change.
	if v, active := def.AsyncState(in); active {
		if s.state[cid] != v {
			s.touchCell(cid)
			s.state[cid] = v
			s.pushSeqOutputs(c)
		}
		return
	}
	// A rising edge on the clock pin captures.
	clkPin := def.InputIndex(def.Seq.Clock)
	if pin == clkPin && old == logic.L0 && new == logic.L1 {
		next := def.NextState(s.state[cid], in)
		if next != s.state[cid] {
			s.touchCell(cid)
			s.state[cid] = next
			s.pushSeqOutputs(c)
		}
		return
	}
	// An unknown clock transition poisons the state, mirroring Verilog
	// pessimism for x-edges, but only when the data would change the state.
	if pin == clkPin && old == logic.L0 && !new.IsKnown() {
		next := def.NextState(s.state[cid], in)
		if next != s.state[cid] {
			s.touchCell(cid)
			s.state[cid] = logic.X
			s.pushSeqOutputs(c)
		}
	}
}

func (s *EventSim) pushSeqOutputs(c *netlist.FlatCell) {
	outs := c.Def.StateOutputs(s.state[c.ID])
	for i, nid := range c.Out {
		s.scheduleNetTransition(nid, outs[i], c.Def.DelayPS)
	}
}

// scheduleCombOutput implements the inertial rule for combinational outputs:
// a newly computed value replaces any in-flight transition on the same net.
func (s *EventSim) scheduleCombOutput(nid int, v logic.V, d int64) {
	if p := s.pending[nid]; p != nil {
		if p.val == v {
			return // in-flight transition already produces v
		}
		p.cancelled = true
		s.pending[nid] = nil
		s.touchNet(nid)
		if v == s.driven[nid] {
			return // cancellation restored the present driven value
		}
	} else if v == s.driven[nid] {
		return
	}
	e := &event{t: s.now + uint64(d), kind: evNet, net: nid, val: v}
	s.pending[nid] = e
	s.touchNet(nid)
	s.schedule(e)
}

func (s *EventSim) gatherInputs(c *netlist.FlatCell) []logic.V {
	in := make([]logic.V, len(c.In))
	for i, nid := range c.In {
		in[i] = s.cur[nid]
	}
	return in
}
