package sim

import (
	"testing"
)

// snapshotSchedule runs the counter workload once, snapshotting at 1ps
// past every rising edge from cycle 2 to `last-2`, and returns the
// checkpoints in ascending time order.
func snapshotSchedule(t *testing.T, e Engine, last int) []*Checkpoint {
	t.Helper()
	setupCounter(t, e, uint64(last)*period)
	var cks []*Checkpoint
	for c := 2; c <= last-2; c++ {
		e.At(uint64(c)*period+1, func() {
			cks = append(cks, e.Snapshot())
		})
	}
	if err := e.Run(uint64(last) * period); err != nil {
		t.Fatal(err)
	}
	return cks
}

// TestShareTailsPreservesRestores pins the copy-on-write contract: a run
// resumed from a tail-shared checkpoint is bit-identical to one resumed
// from the unshared original, and MatchesCheckpoint still recognizes
// convergence onto a shared checkpoint.
func TestShareTailsPreservesRestores(t *testing.T) {
	const last = 12
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			plain := snapshotSchedule(t, mk(), last)
			shared := snapshotSchedule(t, mk(), last)
			ShareTails(shared)
			if len(plain) != len(shared) || len(plain) == 0 {
				t.Fatalf("checkpoint schedules differ: %d vs %d", len(plain), len(shared))
			}
			for i := range shared {
				if got, want := shared[i].QueuedEvents(), plain[i].QueuedEvents(); got != want {
					t.Fatalf("checkpoint %d logical queue length %d after sharing, want %d", i, got, want)
				}
				ref := mk()
				if err := ref.Restore(plain[i]); err != nil {
					t.Fatal(err)
				}
				refGot := sampleCounter(t, ref, i+3, last)
				warm := mk()
				if err := warm.Restore(shared[i]); err != nil {
					t.Fatal(err)
				}
				warmGot := sampleCounter(t, warm, i+3, last)
				if len(refGot) != len(warmGot) {
					t.Fatalf("checkpoint %d: sample counts differ: %d vs %d", i, len(refGot), len(warmGot))
				}
				for k := range refGot {
					if refGot[k] != warmGot[k] {
						t.Fatalf("checkpoint %d sample %d: shared restore diverged: %s vs %s", i, k, warmGot[k], refGot[k])
					}
				}
			}

			// A clean resume from the first shared checkpoint must still
			// converge onto every later shared checkpoint.
			warm := mk()
			if err := warm.Restore(shared[0]); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(shared); i++ {
				if err := warm.Run(shared[i].TimePS); err != nil {
					t.Fatal(err)
				}
				if !warm.MatchesCheckpoint(shared[i]) {
					t.Fatalf("clean resume does not match shared checkpoint %d", i)
				}
			}
		})
	}
}

// TestShareTailsReducesOwnedMemory pins the memory contract behind the
// sharing: the summed owned queue storage of a dense checkpoint schedule
// must collapse to near one schedule's worth instead of scaling with the
// number of checkpoints.
func TestShareTailsReducesOwnedMemory(t *testing.T) {
	const last = 40
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			cks := snapshotSchedule(t, mk(), last)
			before := 0
			for _, ck := range cks {
				before += ck.OwnedEvents()
			}
			ShareTails(cks)
			after := 0
			for _, ck := range cks {
				after += ck.OwnedEvents()
			}
			if after*4 > before {
				t.Fatalf("sharing saved too little: owned events %d -> %d (want >= 4x reduction)", before, after)
			}
			// The first checkpoint owns its full queue; later ones must own
			// only their per-pitch delta, not a full schedule each.
			full := cks[0].OwnedEvents()
			for i, ck := range cks[1:] {
				if own := ck.OwnedEvents(); own*2 > full {
					t.Fatalf("checkpoint %d still owns %d of ~%d events — tail not shared", i+1, own, full)
				}
			}
		})
	}
}
