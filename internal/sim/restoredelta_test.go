package sim

import (
	"testing"

	"repro/internal/logic"
)

// pollute runs a short faulty tail from the engine's current (restored)
// state: a forced pulse, a state flip and the tail's own activity all
// dirty nets, cells and the event queue.
func polluteTail(t *testing.T, e Engine, until uint64) {
	t.Helper()
	n1 := netID(t, e.Flat(), "n1")
	e.ScheduleForce(5100, n1, logic.L1)
	e.ScheduleRelease(5700, n1)
	if err := e.ScheduleFlip(5300, cellIDByPath(t, e, "u_ff0")); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(until); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreDeltaMatchesFullRestore is the delta-restore contract: after
// an arbitrary polluted tail, RestoreDelta must leave the engine in a
// state indistinguishable from a full Restore — pinned both by
// MatchesCheckpoint and by running the identical faulty tail afterwards
// and comparing every sampled output.
func TestRestoreDeltaMatchesFullRestore(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			prod := mk()
			setupCounter(t, prod, last*period)
			var ck *Checkpoint
			prod.At(4500, func() { ck = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}

			// Reference: full restore, faulty tail.
			ref := mk()
			if err := ref.Restore(ck); err != nil {
				t.Fatal(err)
			}
			refGot := sampleInto(t, ref, 5, last)
			polluteTail(t, ref, last*period)

			// Delta path: restore, pollute with varying tail lengths, then
			// delta-restore and verify convergence back onto the checkpoint
			// plus a bit-identical replay of the reference tail.
			eng := mk()
			if err := eng.Restore(ck); err != nil {
				t.Fatal(err)
			}
			for trial, until := range []uint64{6 * period, last * period, 5 * period, ck.TimePS} {
				polluteTail(t, eng, until)
				if err := eng.RestoreDelta(ck); err != nil {
					t.Fatal(err)
				}
				if !eng.MatchesCheckpoint(ck) {
					t.Fatalf("trial %d (tail to %dps): delta-restored state does not match the checkpoint", trial, until)
				}
				got := sampleInto(t, eng, 5, last)
				polluteTail(t, eng, last*period)
				if len(*got) != len(*refGot) {
					t.Fatalf("trial %d: %d samples, want %d", trial, len(*got), len(*refGot))
				}
				for i := range *refGot {
					if (*got)[i] != (*refGot)[i] {
						t.Fatalf("trial %d sample %d = %s, want %s", trial, i, (*got)[i], (*refGot)[i])
					}
				}
				if err := eng.RestoreDelta(ck); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRestoreDeltaFallsBackAcrossCheckpoints: delta-restoring a different
// checkpoint than the last restored one must behave exactly like a full
// Restore, so callers can always use RestoreDelta unconditionally.
func TestRestoreDeltaFallsBackAcrossCheckpoints(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			prod := mk()
			setupCounter(t, prod, last*period)
			var ck1, ck2 *Checkpoint
			prod.At(4500, func() { ck1 = prod.Snapshot() })
			prod.At(8500, func() { ck2 = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}

			ref := mk()
			if err := ref.Restore(ck2); err != nil {
				t.Fatal(err)
			}
			refGot := sampleInto(t, ref, 9, last)
			if err := ref.Run(last * period); err != nil {
				t.Fatal(err)
			}

			eng := mk()
			if err := eng.RestoreDelta(ck1); err != nil { // never restored: full fallback
				t.Fatal(err)
			}
			polluteTail(t, eng, 7*period)
			if err := eng.RestoreDelta(ck2); err != nil { // different ck: full fallback
				t.Fatal(err)
			}
			if !eng.MatchesCheckpoint(ck2) {
				t.Fatal("fallback restore does not match the checkpoint")
			}
			got := sampleInto(t, eng, 9, last)
			if err := eng.Run(last * period); err != nil {
				t.Fatal(err)
			}
			for i := range *refGot {
				if (*got)[i] != (*refGot)[i] {
					t.Fatalf("sample %d = %s, want %s", i, (*got)[i], (*refGot)[i])
				}
			}
		})
	}
}

// TestMatchesCheckpointIgnoresReleasedForceValue pins the LevelSim pruning
// fix: a force/release pulse that fully decays must not keep the engine
// permanently mismatched against golden checkpoints just because the
// released net still remembers the pulse value in its (unobservable)
// forcedVal slot.
func TestMatchesCheckpointIgnoresReleasedForceValue(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			prod := mk()
			setupCounter(t, prod, last*period)
			var ck1, ck2 *Checkpoint
			prod.At(4500, func() { ck1 = prod.Snapshot() })
			prod.At(8500, func() { ck2 = prod.Snapshot() })
			if err := prod.Run(last * period); err != nil {
				t.Fatal(err)
			}

			warm := mk()
			if err := warm.Restore(ck1); err != nil {
				t.Fatal(err)
			}
			// Pulse a net whose value is glitch-masked: force it to the value
			// it already carries, so nothing downstream changes and the run
			// re-converges the moment the force is released.
			n1 := netID(t, warm.Flat(), "n1")
			v := warm.Value(n1)
			warm.ScheduleForce(4600, n1, v)
			warm.ScheduleRelease(4700, n1)
			if err := warm.Run(8500); err != nil {
				t.Fatal(err)
			}
			if !warm.MatchesCheckpoint(ck2) {
				t.Fatal("released no-op force pulse keeps the run unprunable against later golden checkpoints")
			}
		})
	}
}
