package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// LevelSim is the levelized oblivious engine: at every scheduled time step
// it re-evaluates the entire combinational network in topological rank
// order, then performs a two-phase flip-flop update on detected clock
// edges. Zero delta delay inside a step gives clean cycle semantics; the
// cost is that every step touches every gate, which is why this engine is
// the slower baseline of the runtime comparison (the paper's OSS-CVC role).
type LevelSim struct {
	flat *netlist.Flat
	now  uint64

	agenda map[uint64][]lsAction
	times  timeHeap

	cur       []logic.V // committed net values (end of previous step)
	scratch   []logic.V // working values during settle
	inputVal  []logic.V // externally driven PI values
	forced    []bool
	forcedVal []logic.V

	state   []logic.V
	prevClk []logic.V // per sequential cell: clock net value at end of last step

	combOrder []int // combinational cell IDs in ascending level order
	seqCells  []int

	cbs       map[int][]NetCallback
	cbNets    []int // nets having callbacks, sorted, for deterministic firing
	cellEvals uint64

	// Delta-restore tracking, active once the engine has restored a
	// checkpoint: dirty nets/cells are the per-net and per-cell state
	// mutated since the last restore; touchedTimes are agenda times
	// appended to since (caller monitors, fault actions), consumedTimes
	// the times Run popped. RestoreDelta rewrites exactly these.
	lastRestored  *Checkpoint
	netDirty      []bool
	cellDirty     []bool
	dirtyNets     []int32
	dirtyCells    []int32
	touchedTimes  map[uint64]struct{}
	consumedTimes []uint64
}

type lsKind uint8

const (
	lsInput lsKind = iota
	lsForce
	lsRelease
	lsFlip
	lsFunc
)

type lsAction struct {
	kind   lsKind
	net    int
	cellID int
	val    logic.V
	fn     func()
}

type timeHeap []uint64

func (h timeHeap) Len() int            { return len(h) }
func (h timeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *timeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// NewLevelSim returns a levelized engine with all nets and states at X.
func NewLevelSim(f *netlist.Flat) *LevelSim {
	s := &LevelSim{
		flat:      f,
		agenda:    map[uint64][]lsAction{},
		cur:       make([]logic.V, len(f.Nets)),
		scratch:   make([]logic.V, len(f.Nets)),
		inputVal:  make([]logic.V, len(f.Nets)),
		forced:    make([]bool, len(f.Nets)),
		forcedVal: make([]logic.V, len(f.Nets)),
		state:     make([]logic.V, len(f.Cells)),
		prevClk:   make([]logic.V, len(f.Cells)),
		cbs:       map[int][]NetCallback{},
	}
	for i := range s.cur {
		s.cur[i] = logic.X
		s.inputVal[i] = logic.X
	}
	for i := range s.state {
		s.state[i] = logic.X
		s.prevClk[i] = logic.X
	}
	// Same register-initialization policy as EventSim (see initZeroState):
	// un-resettable storage powers up at 0.
	for _, c := range f.Cells {
		if initZeroState(c) {
			s.state[c.ID] = logic.L0
		}
	}
	s.combOrder = append(s.combOrder, f.CombinationalCells()...)
	sort.SliceStable(s.combOrder, func(i, j int) bool {
		a, b := f.Cells[s.combOrder[i]], f.Cells[s.combOrder[j]]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.ID < b.ID
	})
	s.seqCells = f.SequentialCells()
	return s
}

// Name implements Engine.
func (s *LevelSim) Name() string { return string(KindLevel) }

// Flat implements Engine.
func (s *LevelSim) Flat() *netlist.Flat { return s.flat }

// Now implements Engine.
func (s *LevelSim) Now() uint64 { return s.now }

// Value implements Engine.
func (s *LevelSim) Value(net int) logic.V { return s.cur[net] }

// State implements Engine.
func (s *LevelSim) State(cellID int) (logic.V, error) {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return logic.X, err
	}
	return s.state[cellID], nil
}

// CellEvals implements Engine.
func (s *LevelSim) CellEvals() uint64 { return s.cellEvals }

func (s *LevelSim) at(t uint64, a lsAction) {
	if _, ok := s.agenda[t]; !ok {
		heap.Push(&s.times, t)
	}
	s.agenda[t] = append(s.agenda[t], a)
	if s.lastRestored != nil {
		s.touchedTimes[t] = struct{}{}
	}
}

// touchNet records a per-net state mutation since the last restore. A
// no-op until the engine first restores a checkpoint.
func (s *LevelSim) touchNet(nid int) {
	if s.lastRestored != nil && !s.netDirty[nid] {
		s.netDirty[nid] = true
		s.dirtyNets = append(s.dirtyNets, int32(nid))
	}
}

// touchCell records a per-cell (state or prevClk) mutation since the last
// restore.
func (s *LevelSim) touchCell(cid int) {
	if s.lastRestored != nil && !s.cellDirty[cid] {
		s.cellDirty[cid] = true
		s.dirtyCells = append(s.dirtyCells, int32(cid))
	}
}

// ScheduleInput implements Engine.
func (s *LevelSim) ScheduleInput(t uint64, net int, v logic.V) error {
	if err := validateInput(s.flat, net); err != nil {
		return err
	}
	s.at(t, lsAction{kind: lsInput, net: net, val: v})
	return nil
}

// ScheduleForce implements Engine.
func (s *LevelSim) ScheduleForce(t uint64, net int, v logic.V) {
	s.at(t, lsAction{kind: lsForce, net: net, val: v})
}

// ScheduleRelease implements Engine.
func (s *LevelSim) ScheduleRelease(t uint64, net int) {
	s.at(t, lsAction{kind: lsRelease, net: net})
}

// ScheduleFlip implements Engine.
func (s *LevelSim) ScheduleFlip(t uint64, cellID int) error {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return err
	}
	s.at(t, lsAction{kind: lsFlip, cellID: cellID})
	return nil
}

// At implements Engine. The callback runs after the time step settles, so
// values read inside fn are the stable values at t.
func (s *LevelSim) At(t uint64, fn func()) {
	s.at(t, lsAction{kind: lsFunc, fn: fn})
}

// OnNetChange implements Engine.
func (s *LevelSim) OnNetChange(net int, fn NetCallback) {
	if _, ok := s.cbs[net]; !ok {
		s.cbNets = append(s.cbNets, net)
		sort.Ints(s.cbNets)
	}
	s.cbs[net] = append(s.cbs[net], fn)
}

// FlipState implements Engine.
func (s *LevelSim) FlipState(cellID int) error {
	if err := validateSeqCell(s.flat, cellID); err != nil {
		return err
	}
	s.touchCell(cellID)
	s.state[cellID] = s.state[cellID].Not()
	s.settleAndCommit()
	return nil
}

// Run implements Engine.
func (s *LevelSim) Run(until uint64) error {
	for s.times.Len() > 0 && s.times[0] <= until {
		t := heap.Pop(&s.times).(uint64)
		actions := s.agenda[t]
		delete(s.agenda, t)
		if t < s.now {
			return fmt.Errorf("sim: step time %d before now %d", t, s.now)
		}
		if s.lastRestored != nil {
			s.consumedTimes = append(s.consumedTimes, t)
		}
		s.now = t
		var fns []func()
		for _, a := range actions {
			switch a.kind {
			case lsInput:
				s.touchNet(a.net)
				s.inputVal[a.net] = a.val
			case lsForce:
				s.touchNet(a.net)
				s.forced[a.net] = true
				s.forcedVal[a.net] = a.val
			case lsRelease:
				s.touchNet(a.net)
				s.forced[a.net] = false
			case lsFlip:
				s.touchCell(a.cellID)
				s.state[a.cellID] = s.state[a.cellID].Not()
			case lsFunc:
				fns = append(fns, a.fn)
			}
		}
		if err := s.settleAndCommit(); err != nil {
			return err
		}
		for _, fn := range fns {
			fn()
		}
	}
	if until > s.now {
		s.now = until
	}
	return nil
}

// settleAndCommit propagates the network to a fixed point, performing
// two-phase flip-flop captures on rising clock edges, then commits values
// and fires change callbacks.
func (s *LevelSim) settleAndCommit() error {
	const maxPasses = 8
	copy(s.scratch, s.cur)
	for pass := 0; ; pass++ {
		if pass >= maxPasses {
			return fmt.Errorf("sim: LevelSim did not settle after %d passes (oscillating gated clock?)", maxPasses)
		}
		s.propagate()
		// Phase 1: detect rising edges and compute next states from the
		// settled pre-update values.
		type capture struct {
			cell int
			next logic.V
		}
		var caps []capture
		for _, cid := range s.seqCells {
			c := s.flat.Cells[cid]
			clkNet := c.In[c.Def.InputIndex(c.Def.Seq.Clock)]
			clkNow := s.scratch[clkNet]
			in := make([]logic.V, len(c.In))
			for i, nid := range c.In {
				in[i] = s.scratch[nid]
			}
			if v, active := c.Def.AsyncState(in); active {
				if s.state[cid] != v {
					caps = append(caps, capture{cell: cid, next: v})
				}
			} else if s.prevClk[cid] == logic.L0 && clkNow == logic.L1 {
				next := c.Def.NextState(s.state[cid], in)
				if next != s.state[cid] {
					caps = append(caps, capture{cell: cid, next: next})
				}
			}
			if s.prevClk[cid] != clkNow {
				s.touchCell(cid)
				s.prevClk[cid] = clkNow
			}
		}
		if len(caps) == 0 {
			break
		}
		// Phase 2: commit all captures simultaneously, then re-propagate.
		for _, cp := range caps {
			s.touchCell(cp.cell)
			s.state[cp.cell] = cp.next
		}
	}
	// Commit and fire callbacks deterministically.
	changed := make([]int, 0, 16)
	for nid := range s.cur {
		if s.cur[nid] != s.scratch[nid] {
			s.touchNet(nid)
			s.cur[nid] = s.scratch[nid]
			if _, ok := s.cbs[nid]; ok {
				changed = append(changed, nid)
			}
		}
	}
	sort.Ints(changed)
	for _, nid := range changed {
		for _, fn := range s.cbs[nid] {
			fn(s.now, s.cur[nid])
		}
	}
	return nil
}

// propagate evaluates sources and the full combinational network into
// scratch, applying force overrides as values are produced. Like classic
// oblivious simulators, it sweeps the rank order repeatedly until a sweep
// confirms the network has reached a fixpoint: with force/release pinning
// arbitrary internal nets mid-cone, a single rank-order pass is not
// sufficient in general, so every step pays at least one confirmation
// sweep — the structural reason this engine is the slower baseline.
func (s *LevelSim) propagate() {
	set := func(nid int, v logic.V) bool {
		if s.forced[nid] {
			v = s.forcedVal[nid]
		}
		changed := s.scratch[nid] != v
		s.scratch[nid] = v
		return changed
	}
	for _, nid := range s.flat.PIs {
		set(nid, s.inputVal[nid])
	}
	for _, cid := range s.seqCells {
		c := s.flat.Cells[cid]
		outs := c.Def.StateOutputs(s.state[cid])
		for i, nid := range c.Out {
			set(nid, outs[i])
		}
	}
	in := make([]logic.V, 8)
	const maxSweeps = 16
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, cid := range s.combOrder {
			s.cellEvals++
			c := s.flat.Cells[cid]
			in = in[:len(c.In)]
			for i, nid := range c.In {
				in[i] = s.scratch[nid]
			}
			outs := c.Def.Eval(in)
			for i, nid := range c.Out {
				if set(nid, outs[i]) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Forced nets with no driver still need the forced value applied.
	for nid, f := range s.forced {
		if f {
			s.scratch[nid] = s.forcedVal[nid]
		}
	}
}
