package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/vcd"
)

// Stimulus is one scheduled primary-input assignment.
type Stimulus struct {
	Time uint64
	Net  int // flat net ID; must be a primary input
	Val  logic.V
}

// ApplyStimuli schedules a list of input assignments on the engine.
func ApplyStimuli(e Engine, sts []Stimulus) error {
	for _, st := range sts {
		if err := e.ScheduleInput(st.Time, st.Net, st.Val); err != nil {
			return err
		}
	}
	return nil
}

// DriveClock schedules a free-running clock on a primary input: low at
// time 0, rising at phase + k*period, falling half a period later, up to
// and including `until`.
func DriveClock(e Engine, net int, periodPS, phasePS, until uint64) error {
	if periodPS < 2 {
		return fmt.Errorf("sim: clock period %dps too small", periodPS)
	}
	if err := e.ScheduleInput(0, net, logic.L0); err != nil {
		return err
	}
	for t := phasePS; t <= until; t += periodPS {
		if err := e.ScheduleInput(t, net, logic.L1); err != nil {
			return err
		}
		fall := t + periodPS/2
		if fall <= until {
			if err := e.ScheduleInput(fall, net, logic.L0); err != nil {
				return err
			}
		}
	}
	return nil
}

// HoldInput schedules a constant value on a primary input from time 0.
func HoldInput(e Engine, net int, v logic.V) error {
	return e.ScheduleInput(0, net, v)
}

// AttachVCD declares the named nets in the writer, hooks value-change
// callbacks so every change is dumped, and writes the header. Call before
// Run. The caller closes the writer after the run.
func AttachVCD(e Engine, w *vcd.Writer, nets []int) error {
	f := e.Flat()
	for _, nid := range nets {
		if nid < 0 || nid >= len(f.Nets) {
			return fmt.Errorf("sim: monitor net %d out of range", nid)
		}
		if err := w.Declare(f.Nets[nid].Name, 1); err != nil {
			return err
		}
	}
	if err := w.WriteHeader(f.Name); err != nil {
		return err
	}
	for _, nid := range nets {
		name := f.Nets[nid].Name
		e.OnNetChange(nid, func(t uint64, v logic.V) {
			// The writer only fails on time reversal or unknown signals,
			// neither of which can happen through this wiring.
			_ = w.Change(t, name, logic.Vec{v})
		})
	}
	return nil
}

// SampleOutputs returns the current values of the design's primary outputs
// keyed by port name.
func SampleOutputs(e Engine) map[string]logic.V {
	f := e.Flat()
	out := make(map[string]logic.V, len(f.POs))
	for _, nid := range f.POs {
		out[f.Nets[nid].POName] = e.Value(nid)
	}
	return out
}
