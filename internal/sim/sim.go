// Package sim provides two gate-level logic simulation engines over a
// flattened netlist:
//
//   - EventSim: an event-driven simulator with per-cell inertial delays and
//     a time-ordered event queue — the stand-in for the commercial Synopsys
//     VCS baseline of the paper.
//   - LevelSim: a levelized oblivious (compiled rank-order) simulator that
//     re-evaluates the full combinational rank order at every scheduled time
//     step — the stand-in for the open-source OSS-CVC baseline.
//
// Both engines share the Engine interface, support force/release on nets
// (the SET injection mechanism) and sequential-state flips (the SEU
// injection mechanism), and expose value-change callbacks that the vpi and
// vcd layers build on. Time is measured in integer picoseconds.
package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// NetCallback observes a net value change at a simulation time.
type NetCallback func(t uint64, v logic.V)

// Engine is the common contract of both simulation engines.
type Engine interface {
	// Name identifies the engine ("EventSim" or "LevelSim").
	Name() string
	// Flat returns the design under simulation.
	Flat() *netlist.Flat
	// Now returns the current simulation time in picoseconds.
	Now() uint64
	// Value returns the present value of a net.
	Value(net int) logic.V
	// State returns the stored state of a sequential cell.
	State(cellID int) (logic.V, error)
	// FlipState inverts the stored state of a sequential cell at the
	// current time — the SEU fault action.
	FlipState(cellID int) error
	// ScheduleInput drives a primary input to v at time t.
	ScheduleInput(t uint64, net int, v logic.V) error
	// ScheduleForce overrides a net to v at time t regardless of its
	// driver — the SET fault action's leading edge.
	ScheduleForce(t uint64, net int, v logic.V)
	// ScheduleRelease removes a force at time t, restoring the driven
	// value — the SET fault action's trailing edge.
	ScheduleRelease(t uint64, net int)
	// ScheduleFlip inverts a sequential cell's state at time t.
	ScheduleFlip(t uint64, cellID int) error
	// At runs fn when simulation time reaches t.
	At(t uint64, fn func())
	// OnNetChange registers a value-change callback for a net.
	OnNetChange(net int, fn NetCallback)
	// Run advances simulation until no event remains at or before `until`,
	// leaving Now() == until.
	Run(until uint64) error
	// CellEvals reports how many cell evaluations the run performed — the
	// work metric behind the runtime comparisons of Table III.
	CellEvals() uint64
	// Snapshot captures the engine's complete execution state — values,
	// forces, sequential state, eval counter and all queued data events —
	// as an immutable checkpoint. Registered callbacks are not captured.
	Snapshot() *Checkpoint
	// Restore resets the engine wholesale to a checkpoint previously taken
	// on the same design and engine kind, discarding all registered
	// callbacks; the caller re-registers observers before resuming Run.
	// Restoring is the warm-start primitive: a run resumed from a
	// checkpoint is bit-identical to one simulated from time zero.
	Restore(*Checkpoint) error
	// RestoreDelta is Restore with the wholesale copy replaced by a
	// dirty-set rewrite when ck is the checkpoint this engine most
	// recently restored: only the state touched since that restore — and
	// only the queue entries consumed, cancelled or added since — is
	// rewritten. The resulting engine state is bit-identical to a full
	// Restore(ck); the saving is proportional to how little of the tail
	// the previous injection actually simulated, which is what lets a
	// batch of strike-sorted injections sharing one restore point amortize
	// the restore cost. Any other checkpoint falls back to Restore.
	RestoreDelta(*Checkpoint) error
	// MatchesCheckpoint reports whether the engine's present state is
	// indistinguishable from the checkpoint (ignoring callbacks and the
	// eval counter), i.e. whether its future evolution is guaranteed
	// bit-identical to a run resumed from that checkpoint.
	MatchesCheckpoint(*Checkpoint) bool
}

// EngineKind selects an engine implementation by name.
type EngineKind string

// Engine kinds. The VCS/CVC aliases document which published baseline each
// engine stands in for.
const (
	KindEvent EngineKind = "EventSim"
	KindLevel EngineKind = "LevelSim"
)

// New constructs an engine of the given kind over a flattened design.
func New(kind EngineKind, f *netlist.Flat) (Engine, error) {
	switch kind {
	case KindEvent:
		return NewEventSim(f), nil
	case KindLevel:
		return NewLevelSim(f), nil
	}
	return nil, fmt.Errorf("sim: unknown engine kind %q", kind)
}

// validateInput checks that net is a primary input of f.
func validateInput(f *netlist.Flat, net int) error {
	if net < 0 || net >= len(f.Nets) {
		return fmt.Errorf("sim: net %d out of range", net)
	}
	if !f.Nets[net].IsPI {
		return fmt.Errorf("sim: net %q is not a primary input", f.Nets[net].Name)
	}
	return nil
}

// validateSeqCell checks that cellID names a sequential cell of f.
func validateSeqCell(f *netlist.Flat, cellID int) error {
	if cellID < 0 || cellID >= len(f.Cells) {
		return fmt.Errorf("sim: cell %d out of range", cellID)
	}
	if !f.Cells[cellID].Def.IsSequential() {
		return fmt.Errorf("sim: cell %q is not sequential", f.Cells[cellID].Path)
	}
	return nil
}
