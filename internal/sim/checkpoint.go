package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Checkpoint is an immutable snapshot of an engine's complete execution
// state at one simulation instant: net values, force state, sequential
// state, the eval counter, and every scheduled *data* event still in the
// queue (input, force, release, flip, and pending inertial transitions).
//
// Function callbacks (At / OnNetChange) are deliberately NOT captured: they
// belong to the run's observer, not to the design state. A caller that
// restores a checkpoint re-registers whatever callbacks the resumed run
// needs — this is what lets the injection campaign restore a golden
// checkpoint and attach a fresh fault action plus tail-only monitors.
//
// A Checkpoint is engine-kind specific and safe for concurrent use by any
// number of restoring engines: Restore copies, it never aliases.
type Checkpoint struct {
	// Kind is the engine implementation that produced the snapshot.
	Kind EngineKind
	// TimePS is the simulation time the snapshot was taken at.
	TimePS uint64
	// Evals is the producing engine's CellEvals() at the snapshot instant.
	Evals uint64

	design string
	nets   int
	cells  int

	ev *eventCheckpoint
	lv *levelCheckpoint
}

// check validates that a checkpoint of the expected kind can be restored
// onto an engine simulating design f.
func (ck *Checkpoint) check(kind EngineKind, f *netlist.Flat) error {
	if ck == nil {
		return fmt.Errorf("sim: nil checkpoint")
	}
	if ck.Kind != kind {
		return fmt.Errorf("sim: checkpoint kind %s cannot restore a %s", ck.Kind, kind)
	}
	if ck.design != f.Name || ck.nets != len(f.Nets) || ck.cells != len(f.Cells) {
		return fmt.Errorf("sim: checkpoint of %s (%d nets, %d cells) does not match design %s (%d nets, %d cells)",
			ck.design, ck.nets, ck.cells, f.Name, len(f.Nets), len(f.Cells))
	}
	return nil
}

// ckptEvent is the value form of one queued data event. phase is normalized
// at snapshot time: 0 for events scheduled before the producing run began
// (the pre-scheduled stimulus), 1 for events the run created dynamically
// (pending inertial transitions). On restore, events a caller schedules
// before resuming Run take phase 0 with fresh sequence numbers, which slots
// them after the restored stimulus but before the restored in-flight
// transitions at equal times — exactly the order a cold run would have used.
type ckptEvent struct {
	t      uint64
	seq    uint64
	phase  uint32
	kind   evKind
	net    int
	cellID int
	val    logic.V
}

type eventCheckpoint struct {
	seqBase uint64
	cur     []logic.V
	driven  []logic.V
	forced  []bool
	state   []logic.V
	// The queued data events, sorted by (t, phase, seq), are stored as
	// events ++ tail. Snapshot fills events only; ShareTails may split off
	// the suffix common with the preceding checkpoint of the same run into
	// tail, aliased into that checkpoint's storage (copy-on-write: nothing
	// mutates checkpoint slices after creation). pendingIdx maps each net
	// to its in-flight inertial transition's index in the combined list,
	// or -1.
	events     []ckptEvent
	tail       []ckptEvent
	pendingIdx []int32
}

// numEvents reports the length of the combined queued-event list.
func (e *eventCheckpoint) numEvents() int { return len(e.events) + len(e.tail) }

// eventAt indexes the combined events ++ tail list.
func (e *eventCheckpoint) eventAt(i int) ckptEvent {
	if i < len(e.events) {
		return e.events[i]
	}
	return e.tail[i-len(e.events)]
}

type levelCheckpoint struct {
	cur       []logic.V
	inputVal  []logic.V
	forced    []bool
	forcedVal []logic.V
	state     []logic.V
	prevClk   []logic.V
	// times lists agenda times that still hold at least one data action,
	// ascending; actions is parallel, each slice in original append order
	// with function actions dropped. As with eventCheckpoint, the logical
	// sequences are times ++ tailTimes and actions ++ tailActions, with
	// the tails aliased into the preceding checkpoint by ShareTails.
	times       []uint64
	actions     [][]lsAction
	tailTimes   []uint64
	tailActions [][]lsAction
}

// numTimes reports the length of the combined agenda-time list.
func (l *levelCheckpoint) numTimes() int { return len(l.times) + len(l.tailTimes) }

// timeAt indexes the combined times ++ tailTimes list.
func (l *levelCheckpoint) timeAt(i int) uint64 {
	if i < len(l.times) {
		return l.times[i]
	}
	return l.tailTimes[i-len(l.times)]
}

// actionsAt indexes the combined actions ++ tailActions list.
func (l *levelCheckpoint) actionsAt(i int) []lsAction {
	if i < len(l.actions) {
		return l.actions[i]
	}
	return l.tailActions[i-len(l.actions)]
}

func cloneV(v []logic.V) []logic.V { return append([]logic.V(nil), v...) }
func cloneB(v []bool) []bool       { return append([]bool(nil), v...) }

func equalV(a, b []logic.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalB(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot implements Engine.
func (s *EventSim) Snapshot() *Checkpoint {
	ev := &eventCheckpoint{
		seqBase: s.seq,
		cur:     cloneV(s.cur),
		driven:  cloneV(s.driven),
		forced:  cloneB(s.forced),
		state:   cloneV(s.state),
	}
	type pair struct {
		ce  ckptEvent
		src *event
	}
	var pairs []pair
	for _, e := range s.evts {
		if e.cancelled || e.kind == evFunc {
			continue
		}
		ph := uint32(0)
		if s.running && e.phase >= s.phase {
			ph = 1
		}
		pairs = append(pairs, pair{
			ce:  ckptEvent{t: e.t, seq: e.seq, phase: ph, kind: e.kind, net: e.net, cellID: e.cellID, val: e.val},
			src: e,
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i].ce, pairs[j].ce
		if a.t != b.t {
			return a.t < b.t
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		return a.seq < b.seq
	})
	ev.events = make([]ckptEvent, len(pairs))
	ev.pendingIdx = make([]int32, len(s.pending))
	for i := range ev.pendingIdx {
		ev.pendingIdx[i] = -1
	}
	for i, p := range pairs {
		ev.events[i] = p.ce
		if p.src.kind == evNet && s.pending[p.src.net] == p.src {
			ev.pendingIdx[p.src.net] = int32(i)
		}
	}
	return &Checkpoint{
		Kind:   KindEvent,
		TimePS: s.now,
		Evals:  s.cellEvals,
		design: s.flat.Name,
		nets:   len(s.flat.Nets),
		cells:  len(s.flat.Cells),
		ev:     ev,
	}
}

// Restore implements Engine. It resets the engine wholesale to the
// checkpointed instant: values, forces, sequential state, the eval counter
// and the queued data events. All registered callbacks are discarded — the
// caller re-registers the observers the resumed run needs before calling
// Run again.
func (s *EventSim) Restore(ck *Checkpoint) error {
	if err := ck.check(KindEvent, s.flat); err != nil {
		return err
	}
	e := ck.ev
	copy(s.cur, e.cur)
	copy(s.driven, e.driven)
	copy(s.forced, e.forced)
	copy(s.state, e.state)
	s.now = ck.TimePS
	s.seq = e.seqBase
	s.phase = 0
	s.running = false
	s.cellEvals = ck.Evals
	s.cbs = map[int][]NetCallback{}
	for i := range s.pending {
		s.pending[i] = nil
	}
	s.evts = make(eventHeap, e.numEvents())
	if cap(s.restoredEvts) < e.numEvents() {
		s.restoredEvts = make([]*event, e.numEvents())
	}
	s.restoredEvts = s.restoredEvts[:e.numEvents()]
	for i := range s.evts {
		ce := e.eventAt(i)
		ev := &event{t: ce.t, seq: ce.seq, phase: ce.phase, kind: ce.kind, net: ce.net, cellID: ce.cellID, val: ce.val, ckIdx: int32(i)}
		s.evts[i] = ev
		s.restoredEvts[i] = ev
	}
	for nid, idx := range e.pendingIdx {
		if idx >= 0 {
			s.pending[nid] = s.evts[idx]
		}
	}
	heap.Init(&s.evts)
	s.armDeltaTracking(ck)
	return nil
}

// armDeltaTracking resets the dirty sets after a full restore, making ck
// the baseline RestoreDelta rewrites against.
func (s *EventSim) armDeltaTracking(ck *Checkpoint) {
	if s.netDirty == nil {
		s.netDirty = make([]bool, len(s.flat.Nets))
		s.cellDirty = make([]bool, len(s.flat.Cells))
	}
	for _, nid := range s.dirtyNets {
		s.netDirty[nid] = false
	}
	for _, cid := range s.dirtyCells {
		s.cellDirty[cid] = false
	}
	s.dirtyNets = s.dirtyNets[:0]
	s.dirtyCells = s.dirtyCells[:0]
	s.lastRestored = ck
}

// RestoreDelta implements Engine. When ck is the checkpoint this engine
// most recently restored, only the nets, cells and queue entries touched
// since that restore are rewritten: untouched state and still-queued
// checkpoint events are provably already equal to a full Restore's output
// (every mutation path records its target in the dirty sets, and queue
// entries only leave by being consumed or cancelled — both tracked via
// their checkpoint index). Any other checkpoint falls back to Restore.
func (s *EventSim) RestoreDelta(ck *Checkpoint) error {
	if s.lastRestored != ck {
		return s.Restore(ck)
	}
	e := ck.ev
	// Queue: retain live checkpoint events in place, drop post-restore
	// additions and cancelled entries, and re-materialize the consumed or
	// cancelled originals from the checkpoint.
	n := e.numEvents()
	if cap(s.present) < n {
		s.present = make([]bool, n)
	}
	s.present = s.present[:n]
	for i := range s.present {
		s.present[i] = false
	}
	live := s.evts[:0]
	for _, ev := range s.evts {
		if ev.ckIdx >= 0 && !ev.cancelled {
			s.present[ev.ckIdx] = true
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(s.evts); i++ {
		s.evts[i] = nil
	}
	s.evts = live
	for i := 0; i < n; i++ {
		if !s.present[i] {
			ce := e.eventAt(i)
			ev := &event{t: ce.t, seq: ce.seq, phase: ce.phase, kind: ce.kind, net: ce.net, cellID: ce.cellID, val: ce.val, ckIdx: int32(i)}
			s.restoredEvts[i] = ev
			s.evts = append(s.evts, ev)
		}
	}
	heap.Init(&s.evts)
	// State: rewrite only the dirty entries, relinking pending transitions
	// through the refreshed event pointers.
	for _, nid := range s.dirtyNets {
		s.cur[nid] = e.cur[nid]
		s.driven[nid] = e.driven[nid]
		s.forced[nid] = e.forced[nid]
		if idx := e.pendingIdx[nid]; idx >= 0 {
			s.pending[nid] = s.restoredEvts[idx]
		} else {
			s.pending[nid] = nil
		}
		s.netDirty[nid] = false
	}
	s.dirtyNets = s.dirtyNets[:0]
	for _, cid := range s.dirtyCells {
		s.state[cid] = e.state[cid]
		s.cellDirty[cid] = false
	}
	s.dirtyCells = s.dirtyCells[:0]
	s.now = ck.TimePS
	s.seq = e.seqBase
	s.phase = 0
	s.running = false
	s.cellEvals = ck.Evals
	clear(s.cbs)
	return nil
}

// MatchesCheckpoint implements Engine: it reports whether the engine's
// present state is indistinguishable from the checkpoint — same time, same
// net and sequential values, same force state, and the same queued data
// events in the same tie-break order. When true, the engine's future
// evolution is bit-identical to that of any engine resumed from the
// checkpoint, which is what lets the campaign prune a faulty run that has
// re-converged to the golden trajectory. Callbacks and the eval counter are
// observer state and are ignored.
func (s *EventSim) MatchesCheckpoint(ck *Checkpoint) bool {
	if ck == nil || ck.Kind != KindEvent || ck.ev == nil || s.now != ck.TimePS {
		return false
	}
	e := ck.ev
	if !equalV(s.cur, e.cur) || !equalV(s.driven, e.driven) ||
		!equalB(s.forced, e.forced) || !equalV(s.state, e.state) {
		return false
	}
	live := make([]*event, 0, e.numEvents())
	for _, le := range s.evts {
		if le.cancelled || le.kind == evFunc {
			continue
		}
		live = append(live, le)
	}
	if len(live) != e.numEvents() {
		return false
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		return a.seq < b.seq
	})
	for i, le := range live {
		ce := e.eventAt(i)
		if le.t != ce.t || le.kind != ce.kind || le.net != ce.net || le.cellID != ce.cellID || le.val != ce.val {
			return false
		}
	}
	return true
}

// Snapshot implements Engine.
func (s *LevelSim) Snapshot() *Checkpoint {
	lv := &levelCheckpoint{
		cur:       cloneV(s.cur),
		inputVal:  cloneV(s.inputVal),
		forced:    cloneB(s.forced),
		forcedVal: cloneV(s.forcedVal),
		state:     cloneV(s.state),
		prevClk:   cloneV(s.prevClk),
	}
	times := make([]uint64, 0, len(s.agenda))
	for t := range s.agenda {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		var acts []lsAction
		for _, a := range s.agenda[t] {
			if a.kind == lsFunc {
				continue
			}
			acts = append(acts, lsAction{kind: a.kind, net: a.net, cellID: a.cellID, val: a.val})
		}
		if len(acts) == 0 {
			// A step holding only callbacks belongs to the producing run's
			// observers; the restored run schedules its own.
			continue
		}
		lv.times = append(lv.times, t)
		lv.actions = append(lv.actions, acts)
	}
	return &Checkpoint{
		Kind:   KindLevel,
		TimePS: s.now,
		Evals:  s.cellEvals,
		design: s.flat.Name,
		nets:   len(s.flat.Nets),
		cells:  len(s.flat.Cells),
		lv:     lv,
	}
}

// Restore implements Engine. See EventSim.Restore for the contract.
func (s *LevelSim) Restore(ck *Checkpoint) error {
	if err := ck.check(KindLevel, s.flat); err != nil {
		return err
	}
	lv := ck.lv
	copy(s.cur, lv.cur)
	copy(s.scratch, lv.cur)
	copy(s.inputVal, lv.inputVal)
	copy(s.forced, lv.forced)
	copy(s.forcedVal, lv.forcedVal)
	copy(s.state, lv.state)
	copy(s.prevClk, lv.prevClk)
	s.now = ck.TimePS
	s.cellEvals = ck.Evals
	s.cbs = map[int][]NetCallback{}
	s.cbNets = nil
	s.agenda = make(map[uint64][]lsAction, lv.numTimes())
	s.times = s.times[:0]
	for i := 0; i < lv.numTimes(); i++ {
		t := lv.timeAt(i)
		s.agenda[t] = append([]lsAction(nil), lv.actionsAt(i)...)
		s.times = append(s.times, t)
	}
	heap.Init(&s.times)
	s.armDeltaTracking(ck)
	return nil
}

// armDeltaTracking resets the dirty sets after a full restore, making ck
// the baseline RestoreDelta rewrites against.
func (s *LevelSim) armDeltaTracking(ck *Checkpoint) {
	if s.netDirty == nil {
		s.netDirty = make([]bool, len(s.flat.Nets))
		s.cellDirty = make([]bool, len(s.flat.Cells))
		s.touchedTimes = map[uint64]struct{}{}
	}
	for _, nid := range s.dirtyNets {
		s.netDirty[nid] = false
	}
	for _, cid := range s.dirtyCells {
		s.cellDirty[cid] = false
	}
	s.dirtyNets = s.dirtyNets[:0]
	s.dirtyCells = s.dirtyCells[:0]
	clear(s.touchedTimes)
	s.consumedTimes = s.consumedTimes[:0]
	s.lastRestored = ck
}

// ckTimeIndex locates agenda time t in the checkpoint's combined time
// list, or -1 when the checkpoint holds no data actions at t.
func ckTimeIndex(lv *levelCheckpoint, t uint64) int {
	idx := sort.Search(lv.numTimes(), func(i int) bool { return lv.timeAt(i) >= t })
	if idx < lv.numTimes() && lv.timeAt(idx) == t {
		return idx
	}
	return -1
}

// RestoreDelta implements Engine. See EventSim.RestoreDelta for the
// contract; for the levelized engine the dirty sets cover the per-net and
// per-cell arrays, and the agenda is repaired in place — only times the
// run consumed or a caller appended to are re-cloned from the checkpoint,
// leaving the untouched bulk of the restored schedule alone.
func (s *LevelSim) RestoreDelta(ck *Checkpoint) error {
	if s.lastRestored != ck {
		return s.Restore(ck)
	}
	lv := ck.lv
	for _, nid := range s.dirtyNets {
		s.cur[nid] = lv.cur[nid]
		s.scratch[nid] = lv.cur[nid]
		s.inputVal[nid] = lv.inputVal[nid]
		s.forced[nid] = lv.forced[nid]
		s.forcedVal[nid] = lv.forcedVal[nid]
		s.netDirty[nid] = false
	}
	s.dirtyNets = s.dirtyNets[:0]
	for _, cid := range s.dirtyCells {
		s.state[cid] = lv.state[cid]
		s.prevClk[cid] = lv.prevClk[cid]
		s.cellDirty[cid] = false
	}
	s.dirtyCells = s.dirtyCells[:0]
	// Agenda repair: a time the caller appended to (or the run consumed)
	// is reset to the checkpoint's action list, or removed when the
	// checkpoint holds nothing there; all other entries are still the
	// untouched clones the last full restore made.
	restoreTime := func(t uint64) {
		if i := ckTimeIndex(lv, t); i >= 0 {
			s.agenda[t] = append([]lsAction(nil), lv.actionsAt(i)...)
		} else {
			delete(s.agenda, t)
		}
	}
	for t := range s.touchedTimes {
		restoreTime(t)
	}
	clear(s.touchedTimes)
	for _, t := range s.consumedTimes {
		restoreTime(t)
	}
	s.consumedTimes = s.consumedTimes[:0]
	s.times = s.times[:0]
	for t := range s.agenda {
		s.times = append(s.times, t)
	}
	heap.Init(&s.times)
	s.now = ck.TimePS
	s.cellEvals = ck.Evals
	clear(s.cbs)
	s.cbNets = s.cbNets[:0]
	return nil
}

// MatchesCheckpoint implements Engine. See EventSim.MatchesCheckpoint.
func (s *LevelSim) MatchesCheckpoint(ck *Checkpoint) bool {
	if ck == nil || ck.Kind != KindLevel || ck.lv == nil || s.now != ck.TimePS {
		return false
	}
	lv := ck.lv
	if !equalV(s.cur, lv.cur) || !equalV(s.inputVal, lv.inputVal) ||
		!equalB(s.forced, lv.forced) ||
		!equalV(s.state, lv.state) || !equalV(s.prevClk, lv.prevClk) {
		return false
	}
	// forcedVal is live state only while the net is forced: propagate reads
	// it only under forced[nid], and any future lsForce overwrites it before
	// the next read. Comparing it on released nets would keep a run that has
	// fully re-converged onto the golden trajectory unprunable forever after
	// a SET pulse — the value the pulse parked there is unobservable.
	for nid, f := range s.forced {
		if f && s.forcedVal[nid] != lv.forcedVal[nid] {
			return false
		}
	}
	seen := 0
	for t, acts := range s.agenda {
		var data []lsAction
		for _, a := range acts {
			if a.kind != lsFunc {
				data = append(data, a)
			}
		}
		if len(data) == 0 {
			continue
		}
		idx := sort.Search(lv.numTimes(), func(i int) bool { return lv.timeAt(i) >= t })
		if idx >= lv.numTimes() || lv.timeAt(idx) != t {
			return false
		}
		want := lv.actionsAt(idx)
		if len(data) != len(want) {
			return false
		}
		for i, a := range data {
			w := want[i]
			if a.kind != w.kind || a.net != w.net || a.cellID != w.cellID || a.val != w.val {
				return false
			}
		}
		seen++
	}
	return seen == lv.numTimes()
}
