package sim

import (
	"bytes"
	"testing"
)

// produceCheckpoint runs the counter testbench on a fresh engine and
// snapshots it mid-flight, mid-cycle, so the checkpoint carries a live
// schedule (remaining stimulus, clock edges, possibly in-flight inertial
// transitions).
func produceCheckpoint(t *testing.T, mk func() Engine) *Checkpoint {
	t.Helper()
	const last = 12
	prod := mk()
	setupCounter(t, prod, last*period)
	var ck *Checkpoint
	prod.At(4500, func() { ck = prod.Snapshot() })
	if err := prod.Run(last * period); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("snapshot callback never fired")
	}
	return ck
}

func encode(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decode(t *testing.T, blob []byte) *Checkpoint {
	t.Helper()
	dec, err := DecodeCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestCodecRoundTripBitIdentity(t *testing.T) {
	// A decoded checkpoint restored onto a fresh engine must leave the
	// engine in a state indistinguishable from restoring the in-memory
	// original — MatchesCheckpoint in both directions, and a bit-identical
	// resumed tail.
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			ck := produceCheckpoint(t, mk)
			dec := decode(t, encode(t, ck))

			if dec.Kind != ck.Kind || dec.TimePS != ck.TimePS || dec.Evals != ck.Evals {
				t.Fatalf("decoded header (%s, %d, %d) != original (%s, %d, %d)",
					dec.Kind, dec.TimePS, dec.Evals, ck.Kind, ck.TimePS, ck.Evals)
			}

			fromDec := mk()
			if err := fromDec.Restore(dec); err != nil {
				t.Fatal(err)
			}
			if !fromDec.MatchesCheckpoint(ck) {
				t.Fatal("engine restored from decoded blob does not match the in-memory checkpoint")
			}
			fromOrig := mk()
			if err := fromOrig.Restore(ck); err != nil {
				t.Fatal(err)
			}
			if !fromOrig.MatchesCheckpoint(dec) {
				t.Fatal("engine restored from the in-memory checkpoint does not match the decoded blob")
			}

			// The resumed tails must agree sample for sample.
			gotDec := sampleInto(t, fromDec, 5, last)
			gotOrig := sampleInto(t, fromOrig, 5, last)
			if err := fromDec.Run(last * period); err != nil {
				t.Fatal(err)
			}
			if err := fromOrig.Run(last * period); err != nil {
				t.Fatal(err)
			}
			if len(*gotDec) != len(*gotOrig) {
				t.Fatalf("tail lengths differ: %d vs %d", len(*gotDec), len(*gotOrig))
			}
			for i := range *gotOrig {
				if (*gotDec)[i] != (*gotOrig)[i] {
					t.Fatalf("tail sample %d: decoded %s vs original %s", i, (*gotDec)[i], (*gotOrig)[i])
				}
			}
		})
	}
}

func TestCodecRestoreDeltaBitIdentity(t *testing.T) {
	// The dirty-set RestoreDelta rewrite must work against a decoded
	// checkpoint exactly as it does against the producing snapshot: restore
	// the decoded blob, pollute the engine with a full faulty run, delta-
	// restore, and the engine must again match the in-memory original.
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const last = 12
			ck := produceCheckpoint(t, mk)
			dec := decode(t, encode(t, ck))

			eng := mk()
			if err := eng.Restore(dec); err != nil {
				t.Fatal(err)
			}
			n1 := netID(t, eng.Flat(), "n1")
			eng.ScheduleForce(5100, n1, 1)
			if err := eng.Run(last * period); err != nil {
				t.Fatal(err)
			}
			if err := eng.RestoreDelta(dec); err != nil {
				t.Fatal(err)
			}
			if !eng.MatchesCheckpoint(ck) {
				t.Fatal("delta-restored engine does not match the in-memory checkpoint")
			}
		})
	}
}

func TestCodecDeterministic(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			ck := produceCheckpoint(t, mk)
			a, b := encode(t, ck), encode(t, ck)
			if !bytes.Equal(a, b) {
				t.Fatal("encoding the same checkpoint twice produced different bytes")
			}
			// Encoding the decoded form must reproduce the blob: the codec
			// is a fixed point, which content addressing relies on.
			c := encode(t, decode(t, a))
			if !bytes.Equal(a, c) {
				t.Fatal("re-encoding a decoded checkpoint changed the bytes")
			}
		})
	}
}

func TestCodecRejectsTruncatedBlob(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			blob := encode(t, produceCheckpoint(t, mk))
			for cut := 0; cut < len(blob); cut += 7 {
				if _, err := DecodeCheckpoint(bytes.NewReader(blob[:cut])); err == nil {
					t.Fatalf("decode accepted a blob truncated to %d of %d bytes", cut, len(blob))
				}
			}
		})
	}
}

func TestCodecRejectsCorruptHeader(t *testing.T) {
	blob := encode(t, produceCheckpoint(t, engines(t)["EventSim"]))

	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff // magic
	if _, err := DecodeCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a blob with corrupt magic")
	}

	bad = append([]byte(nil), blob...)
	bad[4] = 99 // version
	if _, err := DecodeCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a blob with an unknown version")
	}

	bad = append([]byte(nil), blob...)
	bad[5] = 7 // kind tag
	if _, err := DecodeCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("decode accepted a blob with an unknown kind tag")
	}
}

func TestCodecRejectsMismatchedDesign(t *testing.T) {
	ck := produceCheckpoint(t, engines(t)["EventSim"])
	dec := decode(t, encode(t, ck))
	if err := dec.CheckDesign(counterDesign(t)); err != nil {
		t.Fatalf("decoded checkpoint rejected its own design: %v", err)
	}
	other := counterDesign(t)
	other.Name = "not-the-counter"
	if err := dec.CheckDesign(other); err == nil {
		t.Fatal("decoded checkpoint accepted a mismatched design")
	}
}
