// Package mlmetrics provides the binary-classification metrics the paper
// evaluates its SVM with (Table II): TPR, TNR, precision, accuracy, F1, and
// the ROC curve with its AUC (Fig. 6).
package mlmetrics

import (
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix. Positive means "highly
// sensitive" throughout the framework.
type Confusion struct {
	TP, TN, FP, FN int
}

// Count accumulates one prediction into the matrix.
func (c *Confusion) Count(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case !predicted && !actual:
		c.TN++
	case predicted && !actual:
		c.FP++
	default:
		c.FN++
	}
}

// Total returns the number of counted examples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// TPR is the true positive rate (recall, sensitivity).
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// TNR is the true negative rate (specificity).
func (c Confusion) TNR() float64 { return ratio(c.TN, c.TN+c.FP) }

// FPR is the false positive rate, 1−TNR.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// Precision is TP/(TP+FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix and headline metrics.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d | TNR=%.2f%% TPR=%.2f%% P=%.2f%% Acc=%.2f%% F1=%.2f",
		c.TP, c.TN, c.FP, c.FN, 100*c.TNR(), 100*c.TPR(), 100*c.Precision(), 100*c.Accuracy(), c.F1())
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ROCPoint is one operating point of the ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC sweeps a decision threshold over the scores and returns the curve
// from (0,0) to (1,1), sorted by ascending FPR. scores[i] is the decision
// value of example i; labels[i] its ground truth.
func ROC(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	type pair struct {
		s   float64
		pos bool
	}
	pairs := make([]pair, len(scores))
	var posTotal, negTotal int
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] {
			posTotal++
		} else {
			negTotal++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })
	curve := []ROCPoint{{Threshold: pairs[0].s + 1, FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			if pairs[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			Threshold: pairs[i].s,
			FPR:       ratio(fp, negTotal),
			TPR:       ratio(tp, posTotal),
		})
		i = j
	}
	return curve
}

// AUC integrates the ROC curve with the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// Metrics bundles the Table II row for one benchmark.
type Metrics struct {
	TNR, TPR, Precision, Accuracy, F1 float64
}

// FromConfusion extracts the Table II metrics from a confusion matrix.
func FromConfusion(c Confusion) Metrics {
	return Metrics{
		TNR:       c.TNR(),
		TPR:       c.TPR(),
		Precision: c.Precision(),
		Accuracy:  c.Accuracy(),
		F1:        c.F1(),
	}
}

// Mean averages a set of metric rows (the Table II "Average" row).
func Mean(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.TNR += m.TNR
		out.TPR += m.TPR
		out.Precision += m.Precision
		out.Accuracy += m.Accuracy
		out.F1 += m.F1
	}
	n := float64(len(ms))
	out.TNR /= n
	out.TPR /= n
	out.Precision /= n
	out.Accuracy /= n
	out.F1 /= n
	return out
}
