package mlmetrics

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickConfusionIdentities: for arbitrary matrices, the derived rates
// satisfy their defining identities and ranges.
func TestQuickConfusionIdentities(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		for _, v := range []float64{c.TPR(), c.TNR(), c.FPR(), c.Precision(), c.Accuracy(), c.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		if c.FP+c.TN > 0 && math.Abs(c.FPR()+c.TNR()-1) > 1e-12 {
			return false
		}
		if c.Total() != int(tp)+int(tn)+int(fp)+int(fn) {
			return false
		}
		// F1 is bounded by min and max of precision and recall... more
		// precisely the harmonic mean lies between them.
		p, r := c.Precision(), c.TPR()
		f1 := c.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountConsistency: Count preserves the per-class tallies for any
// prediction stream.
func TestQuickCountConsistency(t *testing.T) {
	f := func(bits []byte) bool {
		var c Confusion
		wantPos, wantNeg := 0, 0
		for _, b := range bits {
			predicted := b&1 == 1
			actual := b&2 == 2
			c.Count(predicted, actual)
			if actual {
				wantPos++
			} else {
				wantNeg++
			}
		}
		return c.TP+c.FN == wantPos && c.TN+c.FP == wantNeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickAUCWithinUnit: AUC of any score/label set lies in [0,1], and
// flipping all labels reflects it around 0.5.
func TestQuickAUCWithinUnit(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 100 {
			raw = raw[:100]
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		pos := 0
		for i, r := range raw {
			scores[i] = float64(r >> 1)
			labels[i] = r&1 == 1
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == len(labels) {
			return true
		}
		auc := AUC(ROC(scores, labels))
		if auc < -1e-12 || auc > 1+1e-12 {
			return false
		}
		inv := make([]bool, len(labels))
		for i := range labels {
			inv[i] = !labels[i]
		}
		aucInv := AUC(ROC(scores, inv))
		return math.Abs(auc+aucInv-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMeanBounds: the mean of metric rows is bounded by the rows'
// extremes, component-wise.
func TestQuickMeanBounds(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var ms []Metrics
		for _, v := range vals {
			x := float64(v) / 255
			ms = append(ms, Metrics{TNR: x, TPR: 1 - x, Precision: x / 2, Accuracy: x, F1: x * x})
		}
		m := Mean(ms)
		lo, hi := 1.0, 0.0
		for _, r := range ms {
			lo = math.Min(lo, r.Accuracy)
			hi = math.Max(hi, r.Accuracy)
		}
		return m.Accuracy >= lo-1e-12 && m.Accuracy <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
