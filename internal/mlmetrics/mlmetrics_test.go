package mlmetrics

import (
	"math"
	"testing"
)

func TestConfusionCounting(t *testing.T) {
	var c Confusion
	c.Count(true, true)   // TP
	c.Count(true, true)   // TP
	c.Count(false, false) // TN
	c.Count(true, false)  // FP
	c.Count(false, true)  // FN
	if c.TP != 2 || c.TN != 1 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("matrix wrong: %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.TPR(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("TPR = %v", got)
	}
	if got := c.TNR(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TNR = %v", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	wantF1 := 2 * (2.0 / 3) * (2.0 / 3) / (2.0/3 + 2.0/3)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.FPR(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FPR = %v", got)
	}
}

func TestEmptyConfusionSafe(t *testing.T) {
	var c Confusion
	for _, v := range []float64{c.TPR(), c.TNR(), c.Precision(), c.Accuracy(), c.F1()} {
		if v != 0 {
			t.Errorf("empty matrix metric = %v, want 0", v)
		}
	}
}

func TestPerfectClassifierROC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := ROC(scores, labels)
	if auc := AUC(curve); math.Abs(auc-1.0) > 1e-12 {
		t.Errorf("perfect AUC = %v", auc)
	}
}

func TestWorstClassifierROC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{false, false, true, true}
	if auc := AUC(ROC(scores, labels)); math.Abs(auc-0) > 1e-12 {
		t.Errorf("inverted AUC = %v", auc)
	}
}

func TestRandomClassifierROC(t *testing.T) {
	// Alternating scores/labels give AUC 0.5.
	var scores []float64
	var labels []bool
	for i := 0; i < 100; i++ {
		scores = append(scores, float64(100-i))
		labels = append(labels, i%2 == 0)
	}
	auc := AUC(ROC(scores, labels))
	if math.Abs(auc-0.5) > 0.02 {
		t.Errorf("alternating AUC = %v, want ~0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	scores := []float64{0.7, 0.6, 0.6, 0.4, 0.3, 0.3, 0.2}
	labels := []bool{true, false, true, true, false, false, true}
	curve := ROC(scores, labels)
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v", i, curve)
		}
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("ROC must end at (1,1): %+v", last)
	}
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Errorf("ROC must start at (0,0): %+v", curve[0])
	}
}

func TestROCTiedScoresGrouped(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	labels := []bool{true, false, true}
	curve := ROC(scores, labels)
	// One step from (0,0) to (1,1): all examples share a threshold.
	if len(curve) != 2 {
		t.Fatalf("tied scores must collapse to one step, got %d points", len(curve))
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC(nil, nil) != nil {
		t.Error("empty ROC must be nil")
	}
	if ROC([]float64{1}, []bool{true, false}) != nil {
		t.Error("length mismatch must be nil")
	}
}

func TestMeanMetrics(t *testing.T) {
	ms := []Metrics{
		{TNR: 0.9, TPR: 0.8, Precision: 0.85, Accuracy: 0.87, F1: 0.82},
		{TNR: 0.7, TPR: 0.6, Precision: 0.65, Accuracy: 0.67, F1: 0.62},
	}
	m := Mean(ms)
	if math.Abs(m.TNR-0.8) > 1e-12 || math.Abs(m.TPR-0.7) > 1e-12 {
		t.Errorf("mean wrong: %+v", m)
	}
	if Mean(nil) != (Metrics{}) {
		t.Error("empty mean must be zero")
	}
}

func TestFromConfusion(t *testing.T) {
	c := Confusion{TP: 8, TN: 9, FP: 1, FN: 2}
	m := FromConfusion(c)
	if m.TPR != c.TPR() || m.TNR != c.TNR() || m.Accuracy != c.Accuracy() {
		t.Errorf("FromConfusion mismatch: %+v", m)
	}
}
