package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fleet merges worker-pushed expositions into one federated scrape. Each
// worker periodically POSTs its registry's text exposition; Push runs it
// through the same strict ParseText every test scrape uses (a malformed
// push is rejected wholesale, never half-ingested) and stores the parsed
// series. Expose re-renders the union with a `worker` label stamped on
// every sample — series identity stays unique across workers by
// construction — plus fleet_workers{state} liveness gauges derived from
// push recency: a worker is live while the time since its last push is
// within its staleness window (3x its declared push interval, or the
// fleet default when it didn't declare one).
//
// The merged exposition round-trips through ParseText: one TYPE line per
// family, samples after their TYPE, histogram bucket/sum/count triplets
// kept intact per worker, deterministic sorted order.
type Fleet struct {
	mu      sync.Mutex
	stale   time.Duration // default staleness window
	now     func() time.Time
	workers map[string]*fleetEntry
	// quarantined, when set, supplies the count behind
	// fleet_workers{state="quarantined"} — workers the coordinator
	// refuses to lease to after repeated audit divergence. The hook runs
	// outside f.mu at Expose time.
	quarantined func() int
}

type fleetEntry struct {
	scrape     *Scrape
	pushed     time.Time
	staleAfter time.Duration
	pushes     uint64
}

// DefaultFleetStale is the liveness window for workers that don't declare
// a push interval.
const DefaultFleetStale = 30 * time.Second

// NewFleet returns an empty fleet store. stale <= 0 selects
// DefaultFleetStale.
func NewFleet(stale time.Duration) *Fleet {
	if stale <= 0 {
		stale = DefaultFleetStale
	}
	return &Fleet{stale: stale, now: time.Now, workers: map[string]*fleetEntry{}}
}

// SetNow overrides the clock (tests).
func (f *Fleet) SetNow(now func() time.Time) {
	f.mu.Lock()
	f.now = now
	f.mu.Unlock()
}

// SetQuarantined installs the quarantined-worker count source behind
// fleet_workers{state="quarantined"}; nil (the default) omits the
// series. The hook is called without the fleet lock held.
func (f *Fleet) SetQuarantined(count func() int) {
	f.mu.Lock()
	f.quarantined = count
	f.mu.Unlock()
}

// Push ingests one worker's exposition text, replacing whatever that
// worker pushed before. interval is the worker's declared push cadence
// (its staleness window becomes 3x that); interval <= 0 keeps the fleet
// default. The push is rejected — atomically, the previous snapshot kept —
// if the text fails the strict parser, any series already carries a
// `worker` label, any family name collides with the fleet's own
// `fleet_*` series, or a family's declared type conflicts with the type
// another worker pushed for the same family.
func (f *Fleet) Push(worker, text string, interval time.Duration) error {
	if worker == "" {
		return fmt.Errorf("fleet push: empty worker name")
	}
	sc, err := ParseText(text)
	if err != nil {
		return fmt.Errorf("fleet push from %q: %v", worker, err)
	}
	for key, s := range sc.Series {
		if _, clash := s.Labels["worker"]; clash {
			return fmt.Errorf("fleet push from %q: series %s already carries the reserved worker label", worker, key)
		}
		if strings.HasPrefix(s.Name, "fleet_") {
			return fmt.Errorf("fleet push from %q: series %s collides with the fleet_ namespace", worker, key)
		}
	}
	for name := range sc.Types {
		if strings.HasPrefix(name, "fleet_") {
			return fmt.Errorf("fleet push from %q: family %s collides with the fleet_ namespace", worker, name)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for other, e := range f.workers {
		if other == worker {
			continue
		}
		for name, kind := range sc.Types {
			if have, ok := e.scrape.Types[name]; ok && have != kind {
				return fmt.Errorf("fleet push from %q: family %s is %s but worker %q pushed it as %s",
					worker, name, kind, other, have)
			}
		}
	}
	staleAfter := f.stale
	if interval > 0 {
		staleAfter = 3 * interval
	}
	prev := f.workers[worker]
	e := &fleetEntry{scrape: sc, pushed: f.now(), staleAfter: staleAfter}
	if prev != nil {
		e.pushes = prev.pushes
	}
	e.pushes++
	f.workers[worker] = e
	return nil
}

// Workers returns the number of live and stale workers at now.
func (f *Fleet) Workers() (live, stale int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.countLocked(f.now())
}

func (f *Fleet) countLocked(now time.Time) (live, stale int) {
	for _, e := range f.workers {
		if now.Sub(e.pushed) <= e.staleAfter {
			live++
		} else {
			stale++
		}
	}
	return live, stale
}

// Expose renders the federated exposition: every pushed series with a
// `worker` label added, families sorted by name with one TYPE line each
// and lexicographically sorted samples, plus the fleet's own series
// (fleet_workers{state} liveness gauges, fleet_pushes_total{worker}).
// Stale workers' series remain exposed — their last known state is still
// information — and are accounted under fleet_workers{state="stale"}.
func (f *Fleet) Expose() string {
	f.mu.Lock()
	qcount := f.quarantined
	f.mu.Unlock()
	quarantined := -1
	if qcount != nil {
		quarantined = qcount()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()

	type fam struct {
		kind  string
		lines []string
	}
	fams := map[string]*fam{}
	getFam := func(name string) *fam {
		fm := fams[name]
		if fm == nil {
			fm = &fam{}
			fams[name] = fm
		}
		return fm
	}
	names := make([]string, 0, len(f.workers))
	for w := range f.workers {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		e := f.workers[w]
		for name, kind := range e.scrape.Types {
			getFam(name).kind = kind
		}
		for _, s := range e.scrape.Series {
			labels := flatten(s.Labels)
			labels = append(labels, "worker", w)
			line := s.Name + renderLabels(labels) + " " + formatFloat(s.Value)
			getFam(familyOf(s.Name, e.scrape.Types)).lines = append(getFam(familyOf(s.Name, e.scrape.Types)).lines, line)
		}
	}

	live, stale := f.countLocked(now)
	workerLines := []string{
		`fleet_workers{state="live"} ` + formatFloat(float64(live)),
		`fleet_workers{state="stale"} ` + formatFloat(float64(stale)),
	}
	if quarantined >= 0 {
		workerLines = append(workerLines, `fleet_workers{state="quarantined"} `+formatFloat(float64(quarantined)))
	}
	fams["fleet_workers"] = &fam{kind: "gauge", lines: workerLines}
	pushes := &fam{kind: "counter"}
	for _, w := range names {
		pushes.lines = append(pushes.lines,
			`fleet_pushes_total{worker="`+escapeLabel(w)+`"} `+formatFloat(float64(f.workers[w].pushes)))
	}
	if len(pushes.lines) > 0 {
		fams["fleet_pushes_total"] = pushes
	}

	famNames := make([]string, 0, len(fams))
	for name := range fams {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)
	var sb strings.Builder
	for _, name := range famNames {
		fm := fams[name]
		if fm.kind != "" {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", name, fm.kind)
		}
		sort.Strings(fm.lines)
		for _, line := range fm.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Handler serves the federated exposition, suitable for mounting at
// GET /metrics/fleet.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		fmt.Fprint(w, f.Expose())
	})
}
