package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTraceRoundTrip records a realistic shard lifecycle and round-trips
// it through the trace_event JSON writer and validator.
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Instant("submit", "coord", 1, 0, map[string]any{"sweep": "abc123"})
	tr.Instant("lease", "coord", 1, 3, map[string]any{"shard": 3, "worker": "w1"})
	start := time.Now().Add(-5 * time.Millisecond)
	tr.Span("golden", "worker", 2, 0, start, map[string]any{"design": "soc"})
	tr.Span("execute", "worker", 2, 3, start, map[string]any{"shard": 3})
	tr.Instant("fenced", "coord", 1, 3, map[string]any{"epoch": 1})
	tr.Instant("speculated", "coord", 1, 3, nil)
	tr.Instant("complete", "coord", 1, 3, nil)

	b, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ValidateTrace(b)
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, b)
	}
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	names := map[string]bool{}
	for _, ev := range evs {
		names[ev.Name] = true
		if ev.Ph == "X" && ev.Dur <= 0 {
			t.Errorf("span %s has dur %d", ev.Name, ev.Dur)
		}
	}
	for _, want := range []string{"submit", "lease", "golden", "execute", "fenced", "speculated", "complete"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}

	// WriteFile emits the same bytes, and a fresh json.Unmarshal sees the
	// canonical object shape (the file opens in chrome://tracing).
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var shape struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(disk, &shape); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if len(shape.TraceEvents) != 7 {
		t.Fatalf("file has %d events", len(shape.TraceEvents))
	}
	for _, ev := range shape.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing ts: %v", ev)
		}
	}
}

// TestEmptyTraceValid: a nil tracer still writes an openable trace.
func TestEmptyTraceValid(t *testing.T) {
	var tr *Tracer
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ValidateTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty trace has %d events", len(evs))
	}
}

// TestValidateTraceRejects feeds the validator malformed traces.
func TestValidateTraceRejects(t *testing.T) {
	bad := map[string]string{
		"not json":      "nope",
		"wrong shape":   `{"events":[]}`,
		"missing name":  `{"traceEvents":[{"ph":"i","ts":1}]}`,
		"unknown phase": `{"traceEvents":[{"name":"a","ph":"Z","ts":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"i","ts":-1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-5}]}`,
	}
	for name, text := range bad {
		if _, err := ValidateTrace([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted %s", name, text)
		}
	}
}
