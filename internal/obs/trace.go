package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Tracer is an append-only journal of shard-lifecycle spans, exportable as
// Chrome trace_event JSON (chrome://tracing, Perfetto). Like the metrics
// registry, a nil *Tracer is a valid no-op sink — every method nil-checks.
//
// The span model is small on purpose: complete spans ("X" phase) for work
// with duration (golden build, shard execute, inject batch, restore), and
// instants ("i" phase) for lifecycle edges (submit, lease, complete,
// fenced, speculated). pid groups a process-like actor (coordinator,
// worker); tid separates lanes inside it (shard index, sweep).
type Tracer struct {
	mu     sync.Mutex
	base   time.Time
	events []TraceEvent
}

// TraceEvent is one Chrome trace_event entry. Timestamps and durations
// are microseconds, per the trace_event format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope; "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk shape: the JSON Object Format of the
// trace_event spec.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit,omitempty"`
}

// NewTracer returns an empty tracer. All timestamps are relative to its
// creation, so traces from one process line up on a shared zero.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Span records a complete span that started at start and just ended.
func (t *Tracer) Span(name, cat string, pid, tid int64, start time.Time, args map[string]any) {
	if t == nil {
		return
	}
	end := time.Now()
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  start.Sub(t.base).Microseconds(),
		Dur: end.Sub(start).Microseconds(),
		PID: pid, TID: tid, Args: args,
	}
	if ev.Dur < 1 {
		ev.Dur = 1 // zero-duration X events render as invisible slivers
	}
	if ev.TS < 0 {
		ev.TS = 0 // span started before the tracer existed; clamp to base
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records a point-in-time lifecycle edge.
func (t *Tracer) Instant(name, cat string, pid, tid int64, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS:  time.Since(t.base).Microseconds(),
		PID: pid, TID: tid, Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// MarshalJSON renders the journal as trace_event JSON Object Format.
func (t *Tracer) MarshalJSON() ([]byte, error) {
	f := traceFile{TraceEvents: []TraceEvent{}, DisplayUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		f.TraceEvents = append(f.TraceEvents, t.events...)
		t.mu.Unlock()
	}
	return json.MarshalIndent(f, "", " ")
}

// WriteFile writes the journal to path. A nil tracer writes a valid empty
// trace, so `-trace` always yields an openable file.
func (t *Tracer) WriteFile(path string) error {
	b, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ValidateTrace parses b as Chrome trace_event JSON Object Format and
// returns the events, rejecting structurally invalid traces: wrong
// top-level shape, events without a name or phase, unknown phases,
// negative timestamps, or X events with negative duration. Tests and the
// chaos/obs smoke targets gate exported traces through it.
func ValidateTrace(b []byte) ([]TraceEvent, error) {
	var f traceFile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if f.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return nil, fmt.Errorf("trace: event %d (%s) negative dur", i, ev.Name)
			}
		case "i", "B", "E", "b", "e", "M":
		default:
			return nil, fmt.Errorf("trace: event %d (%s) unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return nil, fmt.Errorf("trace: event %d (%s) negative ts", i, ev.Name)
		}
	}
	return f.TraceEvents, nil
}
