package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed sample: a metric name, its rendered label string
// (normalized, sorted by key), and the value.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the series identity as name{k="v",...} with sorted keys —
// the same shape WriteProm emits, so tests can compare scrapes.
func (s Series) Key() string {
	return s.Name + renderLabels(flatten(s.Labels))
}

func flatten(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// renderLabels sorts pairs itself; order here is irrelevant.
	out := make([]string, 0, 2*len(m))
	for _, k := range keys {
		out = append(out, k, m[k])
	}
	return out
}

// Scrape is a parsed exposition: series by Key plus family metadata.
type Scrape struct {
	Series map[string]Series
	Types  map[string]string // family name -> counter|gauge|histogram
}

// Value returns the sample for name with the given label pairs, and
// whether it exists.
func (sc *Scrape) Value(name string, labels ...string) (float64, bool) {
	s, ok := sc.Series[name+renderLabels(labels)]
	if !ok {
		return 0, false
	}
	return s.Value, true
}

// ParseText is a strict Prometheus text-format (0.0.4) checker and parser.
// It rejects, rather than skips, anything malformed: unknown comment
// keywords, TYPE lines after samples of the same family, invalid metric
// or label names, bad escapes, duplicate series, histogram series without
// a TYPE, and values that don't parse. Tests use it to assert the
// exposition is standards-clean, and smoke tests use the parsed series.
func ParseText(text string) (*Scrape, error) {
	sc := &Scrape{Series: map[string]Series{}, Types: map[string]string{}}
	seenSamples := map[string]bool{} // families that already emitted a sample
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, " ") || strings.HasSuffix(line, "\t") {
			return nil, fmt.Errorf("line %d: trailing whitespace", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			if rest == line {
				// Bare comment lines are legal; only "# HELP"/"# TYPE" are meta.
				continue
			}
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(strings.TrimPrefix(rest, "HELP "), " ", 2)
				if !validName(parts[0]) {
					return nil, fmt.Errorf("line %d: HELP for invalid name %q", lineNo, parts[0])
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.SplitN(strings.TrimPrefix(rest, "TYPE "), " ", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
				}
				name, kind := parts[0], parts[1]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: TYPE for invalid name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, kind)
				}
				if seenSamples[name] {
					return nil, fmt.Errorf("line %d: TYPE %s after its samples", lineNo, name)
				}
				if _, dup := sc.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				sc.Types[name] = kind
			default:
				return nil, fmt.Errorf("line %d: unknown comment keyword: %q", lineNo, line)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := s.Key()
		if _, dup := sc.Series[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		sc.Series[key] = s
		seenSamples[familyOf(s.Name, sc.Types)] = true
	}
	// Histogram families must expose _sum, _count, and a +Inf bucket whose
	// cumulative count equals _count.
	for name, kind := range sc.Types {
		if kind != "histogram" {
			continue
		}
		if err := sc.checkHistogram(name); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// familyOf maps a sample name to its family: histogram samples render as
// name_bucket/_sum/_count under the family's TYPE line.
func familyOf(sample string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample && types[base] == "histogram" {
			return base
		}
	}
	return sample
}

// checkHistogram validates every labeled series of one histogram family.
func (sc *Scrape) checkHistogram(name string) error {
	// Group _bucket samples by their non-le label set.
	type hist struct {
		infCount float64
		haveInf  bool
		buckets  map[float64]float64 // bound -> cumulative count
	}
	hists := map[string]*hist{}
	for _, s := range sc.Series {
		if s.Name != name+"_bucket" {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok {
			return fmt.Errorf("histogram %s: bucket without le label", name)
		}
		rest := map[string]string{}
		for k, v := range s.Labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := renderLabels(flatten(rest))
		h := hists[key]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			hists[key] = h
		}
		if le == "+Inf" {
			h.infCount, h.haveInf = s.Value, true
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le %q", name, le)
		}
		h.buckets[bound] = s.Value
	}
	if len(hists) == 0 {
		return fmt.Errorf("histogram %s: no _bucket series", name)
	}
	for key, h := range hists {
		if !h.haveInf {
			return fmt.Errorf("histogram %s%s: missing +Inf bucket", name, key)
		}
		count, ok := sc.Series[name+"_count"+key]
		if !ok {
			return fmt.Errorf("histogram %s%s: missing _count", name, key)
		}
		if _, ok := sc.Series[name+"_sum"+key]; !ok {
			return fmt.Errorf("histogram %s%s: missing _sum", name, key)
		}
		if count.Value != h.infCount {
			return fmt.Errorf("histogram %s%s: _count %v != +Inf bucket %v", name, key, count.Value, h.infCount)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				return fmt.Errorf("histogram %s%s: bucket counts not cumulative at le=%v", name, key, b)
			}
			prev = h.buckets[b]
		}
		if prev > h.infCount {
			return fmt.Errorf("histogram %s%s: finite bucket exceeds +Inf", name, key)
		}
	}
	return nil
}

// parseSample parses `name{labels} value` or `name value`.
func parseSample(line string) (Series, error) {
	s := Series{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample: %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabelSet(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	fields := strings.Split(rest[1:], " ")
	if len(fields) > 2 || len(fields) == 0 {
		// Allow an optional trailing timestamp (second field).
		return s, fmt.Errorf("malformed value/timestamp in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseValue accepts Go float syntax plus the Prometheus spellings of
// infinity and NaN.
func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", f)
	}
	return v, nil
}

// parseLabelSet parses a {k="v",...} block starting at s[0]=='{' and
// returns the index one past the closing brace.
func parseLabelSet(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := s[i : i+j]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value")
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
