// Package obs is the repo's dependency-free observability kit: a metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text-format exposition, and an append-only span journal exportable as
// Chrome trace_event JSON (trace.go).
//
// Two properties shape the design:
//
//   - Nil no-op fast path. A nil *Registry hands out nil metric handles,
//     and every handle method nil-checks its receiver. Instrumented code
//     never guards call sites — disabled instrumentation costs one
//     predictable branch per update and allocates nothing.
//   - Deterministic exposition. WriteProm renders families and series in
//     sorted order, so scraping the same state twice yields byte-identical
//     text and tests can assert on exact output.
//
// Metrics never feed back into simulation: campaign verdicts and rendered
// sweep output are byte-identical with the registry attached or absent.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op sink: every NewX method
// returns a nil handle whose update methods do nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its type, help text, and labeled series.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	series map[string]metric
	order  []string // insertion-independent: sorted at exposition
}

// metric is anything that can render itself as exposition lines.
type metric interface {
	write(sb *strings.Builder, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the family, creating it if absent, and the series keyed
// by the rendered label string; makeMetric builds the series on first use.
// It panics on name/type collisions — instrumentation wiring bugs, not
// runtime conditions.
func (r *Registry) lookup(name, help, kind string, labels []string, makeMetric func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]metric{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	m := f.series[lbl]
	if m == nil {
		m = makeMetric()
		f.series[lbl] = m
		f.order = append(f.order, lbl)
	}
	return m
}

// NewCounter returns the counter for name with the given label pairs
// (alternating key, value), creating it at zero if absent. Calling again
// with the same name and labels returns the same counter. A nil registry
// returns nil, which is safe to use.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// NewGauge is NewCounter for gauges.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// NewHistogram returns the histogram for name/labels with the given fixed
// upper bounds (sorted ascending; a trailing +Inf bucket is implicit).
// The bounds of the first creation win; later calls reuse the series.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return r.lookup(name, help, "histogram", labels, func() metric {
		return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	}).(*Histogram)
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values some other structure already maintains (queue depth,
// tail lag) where mirroring into a Gauge would race or drift.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, "gauge", labels, func() metric { return gaugeFunc(fn) })
}

// Unregister drops every series of name whose label set includes all the
// given pairs; with no pairs it drops the whole family. Used when a sweep
// is purged so its per-sweep gauges stop being exported.
func (r *Registry) Unregister(name string, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	if len(labels) == 0 {
		delete(r.families, name)
		return
	}
	keep := f.order[:0]
	for _, lbl := range f.order {
		if labelsMatch(lbl, labels) {
			delete(f.series, lbl)
		} else {
			keep = append(keep, lbl)
		}
	}
	f.order = keep
	if len(f.series) == 0 {
		delete(r.families, name)
	}
}

// labelsMatch reports whether the rendered label string lbl contains every
// key="value" pair of the (alternating) labels slice.
func labelsMatch(lbl string, labels []string) bool {
	for i := 0; i+1 < len(labels); i += 2 {
		pair := labels[i] + `="` + escapeLabel(labels[i+1]) + `"`
		if !strings.Contains(lbl, pair) {
			return false
		}
	}
	return true
}

// WriteProm renders the registry in Prometheus text exposition format
// 0.0.4: families sorted by name, series sorted by label string, so the
// same state always renders byte-identically.
func (r *Registry) WriteProm(sb *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(sb, "# HELP %s %s\n", name, escapeHelp(f.help))
		}
		fmt.Fprintf(sb, "# TYPE %s %s\n", name, f.kind)
		lbls := append([]string(nil), f.order...)
		sort.Strings(lbls)
		for _, lbl := range lbls {
			f.series[lbl].write(sb, name, lbl)
		}
	}
	r.mu.Unlock()
}

// Expose returns the full exposition text.
func (r *Registry) Expose() string {
	var sb strings.Builder
	r.WriteProm(&sb)
	return sb.String()
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the exposition text, suitable
// for mounting at GET /metrics. A nil registry serves an empty body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		fmt.Fprint(w, r.Expose())
	})
}

// Counter is a monotonically increasing uint64. All methods are safe on a
// nil receiver and from concurrent goroutines.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(sb *strings.Builder, name, labels string) {
	fmt.Fprintf(sb, "%s%s %s\n", name, labels, formatFloat(float64(c.v.Load())))
}

// Gauge is a settable float64 (stored as math.Float64bits).
type Gauge struct{ v atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.v.Store(math.Float64bits(x))
	}
}

// Add adds d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

func (g *Gauge) write(sb *strings.Builder, name, labels string) {
	fmt.Fprintf(sb, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// gaugeFunc evaluates at scrape time.
type gaugeFunc func() float64

func (fn gaugeFunc) write(sb *strings.Builder, name, labels string) {
	fmt.Fprintf(sb, "%s%s %s\n", name, labels, formatFloat(fn()))
}

// Histogram counts observations into fixed buckets. Updates are lock-free;
// under concurrent Observe calls a scrape may see a sum/count pair mid
// update (standard for atomic histograms), but each field is itself
// consistent and monotone.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) write(sb *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%s %s\n", name, withLabel(labels, "le", formatFloat(b)), formatFloat(float64(cum)))
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%s %s\n", name, withLabel(labels, "le", "+Inf"), formatFloat(float64(cum)))
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, labels, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(sb, "%s_count%s %s\n", name, labels, formatFloat(float64(cum)))
}

// DurationBuckets is the default latency histogram layout, in seconds:
// 1ms to ~16s in powers of four.
var DurationBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}

// renderLabels renders alternating key/value pairs as {k="v",...} sorted
// by key, or "" when empty. Odd trailing keys are dropped.
func renderLabels(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	pairs := make([]string, 0, n)
	for i := 0; i+1 < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, labels[i]+`="`+escapeLabel(labels[i+1])+`"`)
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// withLabel appends one more k="v" pair to an already-rendered label set.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", "\\\\")
	v = strings.ReplaceAll(v, "\"", "\\\"")
	return strings.ReplaceAll(v, "\n", "\\n")
}

// escapeHelp escapes help text: backslash and newline.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", "\\\\")
	return strings.ReplaceAll(h, "\n", "\\n")
}

// formatFloat renders a sample value: integers without exponent or
// trailing zeros, +Inf as Prometheus spells it.
func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "+Inf"
	}
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
