package obs

import (
	"strings"
	"testing"
	"time"
)

// workerExposition builds a realistic worker registry exposition: a
// labeled counter, a gauge, and a histogram — the three kinds a real
// worker pushes.
func workerExposition(t *testing.T, shards float64) string {
	t.Helper()
	r := NewRegistry()
	r.NewCounter("shards_executed_total", "Shards executed.", "engine", "EventSim").Add(uint64(shards))
	r.NewGauge("exec_busy", "Executor busy flag.").Set(1)
	h := r.NewHistogram("shard_wall_seconds", "Shard wall clock.", []float64{0.1, 1, 10})
	h.Observe(0.5)
	h.Observe(5)
	return r.Expose()
}

// TestFleetMergeRoundTrips pins the federation contract: the merged
// exposition re-parses under the same strict parser every test scrape
// uses, every pushed series carries the worker label, values survive
// the round trip, and the fleet's own liveness gauges are present.
func TestFleetMergeRoundTrips(t *testing.T) {
	f := NewFleet(0)
	if err := f.Push("w1", workerExposition(t, 3), time.Second); err != nil {
		t.Fatalf("push w1: %v", err)
	}
	if err := f.Push("w2", workerExposition(t, 7), time.Second); err != nil {
		t.Fatalf("push w2: %v", err)
	}

	text := f.Expose()
	sc, err := ParseText(text)
	if err != nil {
		t.Fatalf("merged exposition fails the strict parser: %v\n%s", err, text)
	}
	for key, s := range sc.Series {
		if strings.HasPrefix(s.Name, "fleet_workers") {
			continue
		}
		if s.Labels["worker"] == "" {
			t.Errorf("merged series %s lacks the worker label", key)
		}
	}
	if v, ok := sc.Value("shards_executed_total", "engine", "EventSim", "worker", "w1"); !ok || v != 3 {
		t.Errorf("w1 counter = %v, %v; want 3, true", v, ok)
	}
	if v, ok := sc.Value("shards_executed_total", "engine", "EventSim", "worker", "w2"); !ok || v != 7 {
		t.Errorf("w2 counter = %v, %v; want 7, true", v, ok)
	}
	if v, ok := sc.Value("shard_wall_seconds_count", "worker", "w1"); !ok || v != 2 {
		t.Errorf("w1 histogram count = %v, %v; want 2, true", v, ok)
	}
	if v, ok := sc.Value("fleet_workers", "state", "live"); !ok || v != 2 {
		t.Errorf("fleet_workers live = %v, %v; want 2, true", v, ok)
	}
	if v, ok := sc.Value("fleet_workers", "state", "stale"); !ok || v != 0 {
		t.Errorf("fleet_workers stale = %v, %v; want 0, true", v, ok)
	}
	if v, ok := sc.Value("fleet_pushes_total", "worker", "w1"); !ok || v != 1 {
		t.Errorf("fleet_pushes_total w1 = %v, %v; want 1, true", v, ok)
	}
}

// TestFleetPushRejections pins the whole-push rejection rules: malformed
// text, the reserved worker label, the fleet_ namespace, cross-worker
// type conflicts, and the empty worker name are all refused — and a
// refused push leaves the worker's previous snapshot intact.
func TestFleetPushRejections(t *testing.T) {
	f := NewFleet(0)
	if err := f.Push("w1", "# TYPE good counter\ngood 1\n", 0); err != nil {
		t.Fatalf("seed push: %v", err)
	}
	bad := []struct {
		worker, text, reason string
	}{
		{"w1", "not a metric line at all{{{\n", "malformed text"},
		{"w1", "# TYPE x counter\nx{worker=\"smuggled\"} 1\n", "reserved worker label"},
		{"w1", "# TYPE fleet_workers gauge\nfleet_workers 1\n", "fleet_ namespace"},
		{"w2", "# TYPE good gauge\ngood 1\n", "type conflict with w1"},
		{"", "# TYPE x counter\nx 1\n", "empty worker name"},
	}
	for _, tc := range bad {
		if err := f.Push(tc.worker, tc.text, 0); err == nil {
			t.Errorf("push (%s) unexpectedly accepted", tc.reason)
		}
	}
	sc, err := ParseText(f.Expose())
	if err != nil {
		t.Fatalf("exposition after rejected pushes: %v", err)
	}
	if v, ok := sc.Value("good", "worker", "w1"); !ok || v != 1 {
		t.Errorf("w1 snapshot after rejected pushes = %v, %v; want 1, true", v, ok)
	}
	if live, stale := f.Workers(); live != 1 || stale != 0 {
		t.Errorf("workers = %d live, %d stale; want 1, 0", live, stale)
	}
}

// TestFleetStaleness pins the liveness rule: a worker goes stale 3x its
// declared push interval after its last push, its last series stay
// exposed, and the next push revives it and bumps its push counter.
func TestFleetStaleness(t *testing.T) {
	f := NewFleet(0)
	clock := time.Unix(1000, 0)
	f.SetNow(func() time.Time { return clock })

	if err := f.Push("w1", "# TYPE up gauge\nup 1\n", time.Second); err != nil {
		t.Fatal(err)
	}
	if live, stale := f.Workers(); live != 1 || stale != 0 {
		t.Fatalf("fresh worker: %d live, %d stale", live, stale)
	}

	clock = clock.Add(3*time.Second + time.Millisecond) // past 3x interval
	if live, stale := f.Workers(); live != 0 || stale != 1 {
		t.Fatalf("after window: %d live, %d stale", live, stale)
	}
	sc, err := ParseText(f.Expose())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("fleet_workers", "state", "stale"); !ok || v != 1 {
		t.Errorf("fleet_workers stale = %v, %v; want 1, true", v, ok)
	}
	if _, ok := sc.Value("up", "worker", "w1"); !ok {
		t.Error("stale worker's last series vanished from the exposition")
	}

	if err := f.Push("w1", "# TYPE up gauge\nup 1\n", time.Second); err != nil {
		t.Fatal(err)
	}
	if live, stale := f.Workers(); live != 1 || stale != 0 {
		t.Fatalf("after re-push: %d live, %d stale", live, stale)
	}
	sc, err = ParseText(f.Expose())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("fleet_pushes_total", "worker", "w1"); !ok || v != 2 {
		t.Errorf("fleet_pushes_total = %v, %v; want 2, true", v, ok)
	}
}
