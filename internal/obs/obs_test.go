package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionParses drives every metric kind and checks the rendered
// text through the strict parser.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	c.Add(3)
	r.NewCounter("faults_total", "Faults by class.", "class", "drop").Inc()
	r.NewCounter("faults_total", "Faults by class.", "class", "err503").Add(2)
	g := r.NewGauge("depth", "Queue depth.")
	g.Set(7.5)
	r.NewGaugeFunc("lag_bytes", "Tail lag.", func() float64 { return 42 }, "role", "standby")
	h := r.NewHistogram("op_seconds", "Op latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(10)

	text := r.Expose()
	sc, err := ParseText(text)
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, text)
	}
	if v, ok := sc.Value("jobs_total"); !ok || v != 3 {
		t.Errorf("jobs_total = %v, %v; want 3", v, ok)
	}
	if v, ok := sc.Value("faults_total", "class", "err503"); !ok || v != 2 {
		t.Errorf("faults_total{class=err503} = %v, %v; want 2", v, ok)
	}
	if v, ok := sc.Value("depth"); !ok || v != 7.5 {
		t.Errorf("depth = %v, %v; want 7.5", v, ok)
	}
	if v, ok := sc.Value("lag_bytes", "role", "standby"); !ok || v != 42 {
		t.Errorf("lag_bytes = %v, %v; want 42", v, ok)
	}
	if v, ok := sc.Value("op_seconds_count"); !ok || v != 3 {
		t.Errorf("op_seconds_count = %v, %v; want 3", v, ok)
	}
	if v, ok := sc.Value("op_seconds_bucket", "le", "0.1"); !ok || v != 1 {
		t.Errorf("op_seconds_bucket{le=0.1} = %v, %v; want 1", v, ok)
	}
	if v, ok := sc.Value("op_seconds_bucket", "le", "+Inf"); !ok || v != 3 {
		t.Errorf("op_seconds_bucket{le=+Inf} = %v, %v; want 3", v, ok)
	}
	if sc.Types["op_seconds"] != "histogram" {
		t.Errorf("op_seconds type = %q", sc.Types["op_seconds"])
	}
}

// TestExpositionDeterministic renders the same state twice and from two
// registries populated in different orders.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, class := range order {
			r.NewCounter("faults_total", "Faults.", "class", class).Inc()
		}
		r.NewGauge("zz_last", "Late family.").Set(1)
		r.NewCounter("aa_first", "Early family.").Inc()
		return r
	}
	a := build([]string{"drop", "reset", "dup"})
	b := build([]string{"dup", "drop", "reset"})
	if a.Expose() != b.Expose() {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", a.Expose(), b.Expose())
	}
	if a.Expose() != a.Expose() {
		t.Fatal("exposition not stable across scrapes")
	}
	// Families must come out name-sorted.
	text := a.Expose()
	if strings.Index(text, "aa_first") > strings.Index(text, "faults_total") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

// TestNilNoOp exercises every handle method through a nil registry.
func TestNilNoOp(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has value")
	}
	g := r.NewGauge("g", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has value")
	}
	h := r.NewHistogram("h", "", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Error("nil histogram has count")
	}
	r.NewGaugeFunc("f", "", func() float64 { return 1 })
	r.Unregister("x_total")
	if got := r.Expose(); got != "" {
		t.Errorf("nil registry exposes %q", got)
	}
	var tr *Tracer
	tr.Instant("a", "b", 0, 0, nil)
	tr.Span("a", "b", 0, 0, time.Now(), nil)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
}

// TestSameHandle verifies re-creation returns the same series.
func TestSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "", "k", "v")
	b := r.NewCounter("x_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
}

// TestUnregister drops per-sweep series.
func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("sweep_done", "", "sweep", "aaa").Set(1)
	r.NewGauge("sweep_done", "", "sweep", "bbb").Set(2)
	r.Unregister("sweep_done", "sweep", "aaa")
	sc, err := ParseText(r.Expose())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Value("sweep_done", "sweep", "aaa"); ok {
		t.Error("unregistered series still exposed")
	}
	if v, ok := sc.Value("sweep_done", "sweep", "bbb"); !ok || v != 2 {
		t.Error("surviving series lost")
	}
	r.Unregister("sweep_done")
	if r.Expose() != "" {
		t.Error("family-wide unregister left series behind")
	}
}

// TestLabelEscaping round-trips hostile label values through exposition
// and the strict parser.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "a\"b\\c\nd"
	r.NewCounter("x_total", "help with \\ backslash", "k", hostile).Add(9)
	sc, err := ParseText(r.Expose())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, r.Expose())
	}
	if v, ok := sc.Value("x_total", "k", hostile); !ok || v != 9 {
		t.Fatalf("hostile label did not round-trip: %v %v", v, ok)
	}
}

// TestRegistryRace hammers one registry from many goroutines; run under
// `go test -race` (the race CI target includes this package).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.NewCounter("jobs_total", "")
			g := r.NewGauge("depth", "")
			h := r.NewHistogram("lat", "", DurationBuckets)
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				r.NewCounter("per_class", "", "class", string(rune('a'+w))).Inc()
				tr.Instant("tick", "race", int64(w), int64(i), nil)
				if i%100 == 0 {
					if _, err := ParseText(r.Expose()); err != nil {
						t.Errorf("scrape during updates: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	sc, err := ParseText(r.Expose())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sc.Value("jobs_total"); v != 8*500 {
		t.Errorf("jobs_total = %v, want %d", v, 8*500)
	}
	if v, _ := sc.Value("lat_count"); v != 8*500 {
		t.Errorf("lat_count = %v, want %d", v, 8*500)
	}
	if tr.Len() != 8*500 {
		t.Errorf("tracer len = %d, want %d", tr.Len(), 8*500)
	}
}

// TestStrictParserRejects feeds the checker malformed expositions.
func TestStrictParserRejects(t *testing.T) {
	bad := map[string]string{
		"unknown keyword":    "# FOO x y\n",
		"bad name":           "1bad 3\n",
		"bad label name":     `x{1k="v"} 3` + "\n",
		"unquoted value":     `x{k=v} 3` + "\n",
		"bad escape":         `x{k="a\q"} 3` + "\n",
		"missing value":      "x\n",
		"bad value":          "x notanumber\n",
		"duplicate series":   "x 1\nx 2\n",
		"dup label":          `x{k="a",k="b"} 1` + "\n",
		"type after sample":  "x 1\n# TYPE x counter\n",
		"unknown type":       "# TYPE x widget\n",
		"trailing space":     "x 1 \n",
		"hist missing inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"hist count diverge": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range bad {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
	// And a healthy one with a timestamp, for contrast.
	if _, err := ParseText("# TYPE x counter\nx{k=\"v\"} 1 1712000000\n"); err != nil {
		t.Errorf("parser rejected valid sample: %v", err)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Add(4)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	sc, err := ParseText(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sc.Value("x_total"); v != 4 {
		t.Errorf("x_total = %v", v)
	}
}
