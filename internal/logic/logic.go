// Package logic provides the four-state logic value system used throughout
// the gate-level simulator: 0, 1, X (unknown) and Z (high impedance).
// It mirrors the value semantics of IEEE Std 1364 (Verilog) scalar nets.
package logic

import "strings"

// V is a single four-state logic value.
type V uint8

// The four scalar logic states.
const (
	L0 V = iota // logic zero
	L1          // logic one
	X           // unknown
	Z           // high impedance
)

// String returns the Verilog literal for v.
func (v V) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case X:
		return "x"
	case Z:
		return "z"
	}
	return "?"
}

// Rune returns the single-character VCD representation of v.
func (v V) Rune() byte {
	switch v {
	case L0:
		return '0'
	case L1:
		return '1'
	case X:
		return 'x'
	default:
		return 'z'
	}
}

// FromRune parses a single Verilog value character (case-insensitive).
// Unknown characters map to X.
func FromRune(r byte) V {
	switch r {
	case '0':
		return L0
	case '1':
		return L1
	case 'z', 'Z':
		return Z
	default:
		return X
	}
}

// FromBool converts a Go bool to a logic value.
func FromBool(b bool) V {
	if b {
		return L1
	}
	return L0
}

// Bool reports whether v is logic one. X and Z are false.
func (v V) Bool() bool { return v == L1 }

// IsKnown reports whether v is 0 or 1.
func (v V) IsKnown() bool { return v == L0 || v == L1 }

// Not returns the logical negation. X and Z invert to X, as in Verilog.
func (v V) Not() V {
	switch v {
	case L0:
		return L1
	case L1:
		return L0
	}
	return X
}

// And returns Verilog &: 0 dominates, X/Z otherwise poison.
func And(a, b V) V {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return X
}

// Or returns Verilog |: 1 dominates.
func Or(a, b V) V {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return X
}

// Xor returns Verilog ^. Any unknown operand yields X.
func Xor(a, b V) V {
	if !a.IsKnown() || !b.IsKnown() {
		return X
	}
	if a != b {
		return L1
	}
	return L0
}

// Mux returns d0 when sel is 0, d1 when sel is 1. An unknown select yields
// the data value if both inputs agree and are known, else X (standard
// pessimistic MUX semantics).
func Mux(sel, d0, d1 V) V {
	switch sel {
	case L0:
		return d0
	case L1:
		return d1
	}
	if d0 == d1 && d0.IsKnown() {
		return d0
	}
	return X
}

// Resolve merges two drivers on one net, per the Verilog wire resolution
// table: Z yields to the other driver; conflicting strong drivers give X.
func Resolve(a, b V) V {
	if a == Z {
		return b
	}
	if b == Z {
		return a
	}
	if a == b {
		return a
	}
	return X
}

// Vec is a fixed-width bus of four-state values, index 0 = LSB.
type Vec []V

// NewVec returns a width-w vector initialized to X.
func NewVec(w int) Vec {
	v := make(Vec, w)
	for i := range v {
		v[i] = X
	}
	return v
}

// VecFromUint builds a width-w vector holding the low w bits of u.
func VecFromUint(u uint64, w int) Vec {
	v := make(Vec, w)
	for i := 0; i < w; i++ {
		v[i] = FromBool(u>>uint(i)&1 == 1)
	}
	return v
}

// Uint converts v to a uint64, treating X/Z bits as zero. The second result
// reports whether all bits were known.
func (v Vec) Uint() (uint64, bool) {
	var u uint64
	known := true
	for i, b := range v {
		if !b.IsKnown() {
			known = false
			continue
		}
		if b == L1 && i < 64 {
			u |= 1 << uint(i)
		}
	}
	return u, known
}

// String renders v MSB-first as a Verilog-style bit string.
func (v Vec) String() string {
	var sb strings.Builder
	for i := len(v) - 1; i >= 0; i-- {
		sb.WriteByte(v[i].Rune())
	}
	return sb.String()
}

// ParseVec parses an MSB-first bit string such as "10xz" into a vector.
func ParseVec(s string) Vec {
	v := make(Vec, len(s))
	for i := 0; i < len(s); i++ {
		v[len(s)-1-i] = FromRune(s[i])
	}
	return v
}

// Equal reports exact four-state equality of two vectors.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// KnownEqual reports whether all mutually known bit positions agree; it is
// the comparison used when diffing golden vs faulty traces where X means
// "don't care yet".
func (v Vec) KnownEqual(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i].IsKnown() && o[i].IsKnown() && v[i] != o[i] {
			return false
		}
	}
	return true
}
