package logic

import (
	"testing"
	"testing/quick"
)

func TestNotTable(t *testing.T) {
	cases := map[V]V{L0: L1, L1: L0, X: X, Z: X}
	for in, want := range cases {
		if got := in.Not(); got != want {
			t.Errorf("Not(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestAndTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L0}, {L1, L0, L0}, {L1, L1, L1},
		{L0, X, L0}, {X, L0, L0}, {L1, X, X}, {X, L1, X},
		{X, X, X}, {Z, L1, X}, {L0, Z, L0}, {Z, Z, X},
	}
	for _, c := range cases {
		if got := And(c.a, c.b); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L1}, {L1, L0, L1}, {L1, L1, L1},
		{L1, X, L1}, {X, L1, L1}, {L0, X, X}, {X, X, X}, {Z, L0, X},
	}
	for _, c := range cases {
		if got := Or(c.a, c.b); got != c.want {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestXorTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L1}, {L1, L0, L1}, {L1, L1, L0},
		{X, L0, X}, {L1, Z, X},
	}
	for _, c := range cases {
		if got := Xor(c.a, c.b); got != c.want {
			t.Errorf("Xor(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMux(t *testing.T) {
	if got := Mux(L0, L1, L0); got != L1 {
		t.Errorf("Mux(sel=0) = %v, want 1", got)
	}
	if got := Mux(L1, L1, L0); got != L0 {
		t.Errorf("Mux(sel=1) = %v, want 0", got)
	}
	if got := Mux(X, L1, L1); got != L1 {
		t.Errorf("Mux(sel=X, equal data) = %v, want 1", got)
	}
	if got := Mux(X, L1, L0); got != X {
		t.Errorf("Mux(sel=X, differing data) = %v, want X", got)
	}
}

func TestResolve(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Z, L1, L1}, {L0, Z, L0}, {Z, Z, Z},
		{L0, L1, X}, {L1, L1, L1}, {X, L0, X},
	}
	for _, c := range cases {
		if got := Resolve(c.a, c.b); got != c.want {
			t.Errorf("Resolve(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRuneRoundTrip(t *testing.T) {
	for _, v := range []V{L0, L1, X, Z} {
		if got := FromRune(v.Rune()); got != v {
			t.Errorf("FromRune(Rune(%v)) = %v", v, got)
		}
	}
	if FromRune('q') != X {
		t.Errorf("unknown rune should parse to X")
	}
}

func TestVecUintRoundTrip(t *testing.T) {
	f := func(u uint64) bool {
		u &= (1 << 32) - 1
		v := VecFromUint(u, 32)
		got, known := v.Uint()
		return known && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecStringParse(t *testing.T) {
	s := "10xz01"
	v := ParseVec(s)
	if v.String() != s {
		t.Errorf("round trip %q -> %q", s, v.String())
	}
	if len(v) != 6 {
		t.Errorf("len = %d, want 6", len(v))
	}
	if v[0] != L1 || v[5] != L1 {
		t.Errorf("bit order wrong: lsb=%v msb=%v", v[0], v[5])
	}
}

func TestVecUnknownBits(t *testing.T) {
	v := ParseVec("1x0")
	u, known := v.Uint()
	if known {
		t.Errorf("vector with X should not be fully known")
	}
	if u != 4 {
		t.Errorf("Uint with X-as-0 = %d, want 4", u)
	}
}

func TestVecEqualClone(t *testing.T) {
	v := ParseVec("1010")
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c[0] = X
	if v.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if v[0] == X {
		t.Fatal("clone aliases original storage")
	}
}

func TestKnownEqual(t *testing.T) {
	a := ParseVec("1x10")
	b := ParseVec("1110")
	if !a.KnownEqual(b) {
		t.Error("X positions must be ignored by KnownEqual")
	}
	c := ParseVec("0x10")
	if a.KnownEqual(c) {
		t.Error("known mismatch must be detected")
	}
	if a.KnownEqual(ParseVec("111")) {
		t.Error("width mismatch must not be equal")
	}
}

func TestDeMorganProperty(t *testing.T) {
	vals := []V{L0, L1, X, Z}
	for _, a := range vals {
		for _, b := range vals {
			left := And(a, b).Not()
			right := Or(a.Not(), b.Not())
			if left != right {
				t.Errorf("De Morgan violated for %v,%v: %v != %v", a, b, left, right)
			}
		}
	}
}

func TestAndOrCommutative(t *testing.T) {
	vals := []V{L0, L1, X, Z}
	for _, a := range vals {
		for _, b := range vals {
			if And(a, b) != And(b, a) {
				t.Errorf("And not commutative for %v,%v", a, b)
			}
			if Or(a, b) != Or(b, a) {
				t.Errorf("Or not commutative for %v,%v", a, b)
			}
			if Xor(a, b) != Xor(b, a) {
				t.Errorf("Xor not commutative for %v,%v", a, b)
			}
		}
	}
}

func TestResolveCommutativeAssociativeWithZ(t *testing.T) {
	vals := []V{L0, L1, X, Z}
	for _, a := range vals {
		for _, b := range vals {
			if Resolve(a, b) != Resolve(b, a) {
				t.Errorf("Resolve not commutative for %v,%v", a, b)
			}
			if Resolve(a, Z) != a {
				t.Errorf("Z must be identity for Resolve, got %v for %v", Resolve(a, Z), a)
			}
		}
	}
}
