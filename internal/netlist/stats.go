package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cell"
)

// Stats summarizes a flattened design.
type Stats struct {
	Cells       int
	Nets        int
	Sequential  int
	Comb        int
	MemoryBits  int
	MaxLevel    int
	MaxDepth    int
	AreaUM2     float64
	ByClass     map[cell.Class]int
	ByCellName  map[string]int
	ByTopModule map[string]int // cells grouped by the second trail segment (functional block)
}

// ComputeStats walks the flat design once and returns aggregate counts.
func ComputeStats(f *Flat) Stats {
	s := Stats{
		Cells:       len(f.Cells),
		Nets:        len(f.Nets),
		MaxLevel:    f.MaxLevel,
		ByClass:     map[cell.Class]int{},
		ByCellName:  map[string]int{},
		ByTopModule: map[string]int{},
	}
	for _, c := range f.Cells {
		s.ByClass[c.Def.Class]++
		s.ByCellName[c.Def.Name]++
		s.AreaUM2 += c.Def.AreaUM2
		switch c.Def.Class {
		case cell.Sequential:
			s.Sequential++
		case cell.Memory:
			s.MemoryBits++
		default:
			s.Comb++
		}
		if d := c.Depth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		s.ByTopModule[c.FunctionalBlock()]++
	}
	return s
}

// FunctionalBlock returns the name of the top-level functional block the
// cell sits in (the first instance segment below the top module), or "top"
// for cells instantiated directly in the top module.
func (c *FlatCell) FunctionalBlock() string {
	if len(c.Trail) < 2 {
		return "top"
	}
	return c.Trail[1]
}

// String renders the statistics as a small fixed-order report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cells=%d nets=%d seq=%d comb=%d membits=%d maxlevel=%d maxdepth=%d area=%.1fum2\n",
		s.Cells, s.Nets, s.Sequential, s.Comb, s.MemoryBits, s.MaxLevel, s.MaxDepth, s.AreaUM2)
	blocks := make([]string, 0, len(s.ByTopModule))
	for b := range s.ByTopModule {
		blocks = append(blocks, b)
	}
	sort.Strings(blocks)
	for _, b := range blocks {
		fmt.Fprintf(&sb, "  block %-16s %6d cells\n", b, s.ByTopModule[b])
	}
	return sb.String()
}
