package netlist

import (
	"fmt"
	"strings"

	"repro/internal/cell"
)

// CellPort addresses one input pin of a flattened cell.
type CellPort struct {
	Cell int // index into Flat.Cells
	Pin  int // index into the cell's Def.Inputs
}

// FlatNet is one scalar net of the flattened design.
type FlatNet struct {
	ID      int
	Name    string // hierarchical name, segments joined by '.'
	Driver  int    // driving cell index, or -1 (primary input / undriven)
	DrvPin  int    // output index on the driving cell
	Fanout  []CellPort
	IsPI    bool
	IsPO    bool
	POName  string // top-level port name when IsPO
	Aliases []string
}

// FlatCell is one library-cell instance of the flattened design.
type FlatCell struct {
	ID       int
	Path     string // full hierarchical instance path
	Def      *cell.Def
	In       []int    // net IDs aligned with Def.Inputs
	Out      []int    // net IDs aligned with Def.Outputs
	Trail    []string // instance-name path segments, excluding the leaf cell
	ModTypes []string // module type name at each trail segment (Trail[0] is top)
	Level    int      // combinational level; 0 for sequential and source cells
}

// Depth returns the hierarchy depth of the cell (number of module levels
// above it, counting the top module).
func (c *FlatCell) Depth() int { return len(c.Trail) }

// Flat is a flattened, simulation-ready view of a design.
type Flat struct {
	Name      string
	Cells     []*FlatCell
	Nets      []*FlatNet
	NetIndex  map[string]int // hierarchical net name -> net ID
	CellIndex map[string]int // hierarchical cell path -> cell ID
	PIs       []int          // net IDs of top-level inputs
	POs       []int          // net IDs of top-level outputs
	MaxLevel  int
}

// NetByName resolves a hierarchical net name, following aliases created by
// port connections during flattening.
func (f *Flat) NetByName(name string) (*FlatNet, error) {
	id, ok := f.NetIndex[name]
	if !ok {
		return nil, fmt.Errorf("netlist: no net named %q", name)
	}
	return f.Nets[id], nil
}

// CellByPath resolves a hierarchical instance path.
func (f *Flat) CellByPath(path string) (*FlatCell, error) {
	id, ok := f.CellIndex[path]
	if !ok {
		return nil, fmt.Errorf("netlist: no cell at path %q", path)
	}
	return f.Cells[id], nil
}

// SequentialCells returns the IDs of all state-holding cells.
func (f *Flat) SequentialCells() []int {
	var ids []int
	for _, c := range f.Cells {
		if c.Def.IsSequential() {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// CombinationalCells returns the IDs of all combinational cells.
func (f *Flat) CombinationalCells() []int {
	var ids []int
	for _, c := range f.Cells {
		if !c.Def.IsSequential() {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// Flatten elaborates the design hierarchy into a flat cell/net graph. The
// design must Validate cleanly first; Flatten validates internally and
// returns the first error found.
func Flatten(d *Design) (*Flat, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	top, err := d.TopModule()
	if err != nil {
		return nil, err
	}
	f := &Flat{
		Name:      d.Name,
		NetIndex:  map[string]int{},
		CellIndex: map[string]int{},
	}
	newNet := func(name string) int {
		id := len(f.Nets)
		f.Nets = append(f.Nets, &FlatNet{ID: id, Name: name, Driver: -1})
		f.NetIndex[name] = id
		return id
	}

	// Top-level ports become primary inputs/outputs.
	topEnv := map[string]int{}
	for _, p := range top.Ports {
		id := newNet(p.Name)
		topEnv[p.Name] = id
		if p.Dir == Input {
			f.Nets[id].IsPI = true
			f.PIs = append(f.PIs, id)
		} else {
			f.Nets[id].IsPO = true
			f.Nets[id].POName = p.Name
			f.POs = append(f.POs, id)
		}
	}

	var elaborate func(m *Module, prefix string, env map[string]int, trail, modTypes []string) error
	elaborate = func(m *Module, prefix string, env map[string]int, trail, modTypes []string) error {
		for _, w := range m.Wires {
			env[w] = newNet(prefix + w)
		}
		for _, inst := range m.Instances {
			if sub, ok := d.Modules[inst.Of]; ok {
				subEnv := make(map[string]int, len(sub.Ports))
				for port, net := range inst.Conns {
					gid, ok := env[net]
					if !ok {
						return fmt.Errorf("netlist: %s%s: net %q unresolved", prefix, inst.Name, net)
					}
					subEnv[port] = gid
					alias := prefix + inst.Name + "." + port
					f.NetIndex[alias] = gid
					f.Nets[gid].Aliases = append(f.Nets[gid].Aliases, alias)
				}
				err := elaborate(sub, prefix+inst.Name+".",
					subEnv,
					append(append([]string(nil), trail...), inst.Name),
					append(append([]string(nil), modTypes...), sub.Name))
				if err != nil {
					return err
				}
				continue
			}
			def, err := cell.Lookup(inst.Of)
			if err != nil {
				return fmt.Errorf("netlist: %s%s: %v", prefix, inst.Name, err)
			}
			fc := &FlatCell{
				ID:       len(f.Cells),
				Path:     prefix + inst.Name,
				Def:      def,
				In:       make([]int, len(def.Inputs)),
				Out:      make([]int, len(def.Outputs)),
				Trail:    trail,
				ModTypes: modTypes,
			}
			for i, port := range def.Inputs {
				gid, ok := env[inst.Conns[port]]
				if !ok {
					return fmt.Errorf("netlist: %s: input %s on net %q unresolved", fc.Path, port, inst.Conns[port])
				}
				fc.In[i] = gid
				f.Nets[gid].Fanout = append(f.Nets[gid].Fanout, CellPort{Cell: fc.ID, Pin: i})
			}
			for i, port := range def.Outputs {
				gid, ok := env[inst.Conns[port]]
				if !ok {
					return fmt.Errorf("netlist: %s: output %s on net %q unresolved", fc.Path, port, inst.Conns[port])
				}
				fc.Out[i] = gid
				if f.Nets[gid].Driver >= 0 {
					return fmt.Errorf("netlist: net %q multiply driven after flattening", f.Nets[gid].Name)
				}
				if f.Nets[gid].IsPI {
					return fmt.Errorf("netlist: primary input %q driven by %s", f.Nets[gid].Name, fc.Path)
				}
				f.Nets[gid].Driver = fc.ID
				f.Nets[gid].DrvPin = i
			}
			f.Cells = append(f.Cells, fc)
			f.CellIndex[fc.Path] = fc.ID
		}
		return nil
	}

	if err := elaborate(top, "", topEnv, []string{top.Name}, []string{top.Name}); err != nil {
		return nil, err
	}
	if err := f.levelize(); err != nil {
		return nil, err
	}
	return f, nil
}

// levelize assigns a topological level to every combinational cell: a cell's
// level is 1 + the max level of its combinational drivers; primary inputs
// and sequential outputs are level 0. It fails on combinational loops.
func (f *Flat) levelize() error {
	indeg := make([]int, len(f.Cells))
	var queue []int
	for _, c := range f.Cells {
		if c.Def.IsSequential() {
			c.Level = 0
			continue
		}
		deg := 0
		for _, nid := range c.In {
			drv := f.Nets[nid].Driver
			if drv >= 0 && !f.Cells[drv].Def.IsSequential() {
				deg++
			}
		}
		indeg[c.ID] = deg
		if deg == 0 {
			c.Level = 1
			queue = append(queue, c.ID)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		c := f.Cells[id]
		if c.Level > f.MaxLevel {
			f.MaxLevel = c.Level
		}
		for _, nid := range c.Out {
			for _, fo := range f.Nets[nid].Fanout {
				succ := f.Cells[fo.Cell]
				if succ.Def.IsSequential() {
					continue
				}
				if succ.Level < c.Level+1 {
					succ.Level = c.Level + 1
				}
				indeg[fo.Cell]--
				if indeg[fo.Cell] == 0 {
					queue = append(queue, fo.Cell)
				}
			}
		}
	}
	combCount := 0
	for _, c := range f.Cells {
		if !c.Def.IsSequential() {
			combCount++
		}
	}
	if processed != combCount {
		var stuck []string
		for _, c := range f.Cells {
			if !c.Def.IsSequential() && indeg[c.ID] > 0 {
				stuck = append(stuck, c.Path)
				if len(stuck) >= 5 {
					break
				}
			}
		}
		return fmt.Errorf("netlist: combinational loop involving %s", strings.Join(stuck, ", "))
	}
	return nil
}
