package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// buildAdderBit returns a module computing S = A^B^CI, CO via majority
// using explicit gates, to exercise multi-gate modules.
func buildAdderBit() *Module {
	m := NewModule("adder_bit")
	m.AddPort("A", Input)
	m.AddPort("B", Input)
	m.AddPort("CI", Input)
	m.AddPort("S", Output)
	m.AddPort("CO", Output)
	m.AddInstance("u_fa", "FAX1", map[string]string{
		"A": "A", "B": "B", "CI": "CI", "S": "S", "CO": "CO",
	})
	return m
}

// buildHierDesign returns a two-level design: top instantiates two adder
// bits plus a DFF pipeline register.
func buildHierDesign() *Design {
	d := NewDesign("hier")
	d.AddModule(buildAdderBit())
	top := NewModule("top")
	top.AddPort("clk", Input)
	top.AddPort("a0", Input)
	top.AddPort("b0", Input)
	top.AddPort("a1", Input)
	top.AddPort("b1", Input)
	top.AddPort("sum0", Output)
	top.AddPort("sum1", Output)
	top.AddWire("c0")
	top.AddWire("c1")
	top.AddWire("s0")
	top.AddWire("s1")
	top.AddWire("zero")
	top.AddWire("nq0")
	top.AddWire("nq1")
	top.AddInstance("u_tie", "TIELO", map[string]string{"Y": "zero"})
	top.AddInstance("u_bit0", "adder_bit", map[string]string{
		"A": "a0", "B": "b0", "CI": "zero", "S": "s0", "CO": "c0",
	})
	top.AddInstance("u_bit1", "adder_bit", map[string]string{
		"A": "a1", "B": "b1", "CI": "c0", "S": "s1", "CO": "c1",
	})
	top.AddInstance("u_ff0", "DFFX1", map[string]string{
		"D": "s0", "CK": "clk", "Q": "sum0", "QN": "nq0",
	})
	top.AddInstance("u_ff1", "DFFX1", map[string]string{
		"D": "s1", "CK": "clk", "Q": "sum1", "QN": "nq1",
	})
	d.AddModule(top)
	d.Top = "top"
	return d
}

func TestValidateOK(t *testing.T) {
	if err := buildHierDesign().Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}

func TestValidateMissingTop(t *testing.T) {
	d := NewDesign("x")
	d.Top = "nope"
	if err := d.Validate(); err == nil {
		t.Fatal("missing top must fail validation")
	}
}

func TestValidateUnknownCell(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	m.AddInstance("u1", "NOT_A_CELL", map[string]string{"A": "a", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "NOT_A_CELL") {
		t.Fatalf("unknown cell not reported: %v", err)
	}
}

func TestValidateDoubleDriver(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	m.AddInstance("u1", "INVX1", map[string]string{"A": "a", "Y": "y"})
	m.AddInstance("u2", "INVX1", map[string]string{"A": "a", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Fatalf("double driver not reported: %v", err)
	}
}

func TestValidateUnconnectedPort(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	m.AddInstance("u1", "NAND2X1", map[string]string{"A": "a", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("unconnected port not reported: %v", err)
	}
}

func TestValidateUndeclaredNet(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	m.AddInstance("u1", "INVX1", map[string]string{"A": "ghost", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("undeclared net not reported: %v", err)
	}
}

func TestValidateHierarchyCycle(t *testing.T) {
	d := NewDesign("x")
	a := NewModule("a")
	a.AddPort("p", Input)
	a.AddInstance("u", "b", map[string]string{"p": "p"})
	b := NewModule("b")
	b.AddPort("p", Input)
	b.AddInstance("u", "a", map[string]string{"p": "p"})
	d.AddModule(a)
	d.AddModule(b)
	d.Top = "a"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("hierarchy cycle not reported: %v", err)
	}
}

func TestValidateDuplicateInstance(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	m.AddWire("w")
	m.AddInstance("u1", "INVX1", map[string]string{"A": "a", "Y": "w"})
	m.AddInstance("u1", "INVX1", map[string]string{"A": "w", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate instance") {
		t.Fatalf("duplicate instance not reported: %v", err)
	}
}

func TestFlattenCounts(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	// Cells: TIELO + 2 FAX1 + 2 DFFX1 = 5.
	if len(f.Cells) != 5 {
		t.Fatalf("flattened to %d cells, want 5", len(f.Cells))
	}
	if len(f.PIs) != 5 {
		t.Errorf("%d PIs, want 5", len(f.PIs))
	}
	if len(f.POs) != 2 {
		t.Errorf("%d POs, want 2", len(f.POs))
	}
	if len(f.SequentialCells()) != 2 {
		t.Errorf("%d sequential cells, want 2", len(f.SequentialCells()))
	}
	if len(f.CombinationalCells()) != 3 {
		t.Errorf("%d comb cells, want 3", len(f.CombinationalCells()))
	}
}

func TestFlattenPaths(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.CellByPath("u_bit0.u_fa")
	if err != nil {
		t.Fatal(err)
	}
	if c.Def.Name != "FAX1" {
		t.Errorf("cell at u_bit0.u_fa is %s", c.Def.Name)
	}
	if c.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (top + adder_bit)", c.Depth())
	}
	if len(c.ModTypes) != 2 || c.ModTypes[0] != "top" || c.ModTypes[1] != "adder_bit" {
		t.Errorf("ModTypes = %v", c.ModTypes)
	}
	if c.FunctionalBlock() != "u_bit0" {
		t.Errorf("FunctionalBlock = %q", c.FunctionalBlock())
	}
}

func TestFlattenAliases(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	// The net s0 is connected to port S of u_bit0; both names must resolve
	// to the same flat net.
	n1, err := f.NetByName("s0")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := f.NetByName("u_bit0.S")
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID != n2.ID {
		t.Errorf("alias resolution broken: %d vs %d", n1.ID, n2.ID)
	}
}

func TestFlattenDriversAndFanout(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := f.NetByName("s0")
	if s0.Driver < 0 {
		t.Fatal("s0 must be driven")
	}
	if f.Cells[s0.Driver].Def.Name != "FAX1" {
		t.Errorf("s0 driven by %s", f.Cells[s0.Driver].Def.Name)
	}
	if len(s0.Fanout) != 1 {
		t.Errorf("s0 fanout = %d, want 1 (the DFF D pin)", len(s0.Fanout))
	}
	clk, _ := f.NetByName("clk")
	if !clk.IsPI {
		t.Error("clk must be a primary input")
	}
	if len(clk.Fanout) != 2 {
		t.Errorf("clk fanout = %d, want 2", len(clk.Fanout))
	}
	sum0, _ := f.NetByName("sum0")
	if !sum0.IsPO || sum0.POName != "sum0" {
		t.Error("sum0 must be a primary output")
	}
}

func TestLevelization(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	b0, _ := f.CellByPath("u_bit0.u_fa")
	b1, _ := f.CellByPath("u_bit1.u_fa")
	if b0.Level >= b1.Level {
		t.Errorf("carry chain must raise level: bit0=%d bit1=%d", b0.Level, b1.Level)
	}
	ff, _ := f.CellByPath("u_ff0")
	if ff.Level != 0 {
		t.Errorf("sequential cell level = %d, want 0", ff.Level)
	}
	if f.MaxLevel < 2 {
		t.Errorf("MaxLevel = %d, want >= 2", f.MaxLevel)
	}
}

func TestCombLoopDetected(t *testing.T) {
	d := NewDesign("loop")
	m := NewModule("top")
	m.AddPort("y", Output)
	m.AddWire("w")
	m.AddInstance("u1", "INVX1", map[string]string{"A": "w", "Y": "y"})
	m.AddInstance("u2", "INVX1", map[string]string{"A": "y", "Y": "w"})
	d.AddModule(m)
	d.Top = "top"
	if _, err := Flatten(d); err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("combinational loop not detected: %v", err)
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	d := buildHierDesign()
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, d); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "module top") || !strings.Contains(text, "module adder_bit") {
		t.Fatalf("missing modules in output:\n%s", text)
	}
	d2, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatalf("parse back failed: %v\n%s", err, text)
	}
	if d2.Top != "top" {
		t.Errorf("inferred top = %q", d2.Top)
	}
	f1, err := Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Flatten(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Cells) != len(f2.Cells) || len(f1.Nets) != len(f2.Nets) {
		t.Errorf("round trip changed size: cells %d->%d nets %d->%d",
			len(f1.Cells), len(f2.Cells), len(f1.Nets), len(f2.Nets))
	}
	s1, s2 := ComputeStats(f1), ComputeStats(f2)
	if s1.Sequential != s2.Sequential || s1.Comb != s2.Comb {
		t.Errorf("round trip changed composition: %+v vs %+v", s1, s2)
	}
}

func TestVerilogEscapedIdentifiers(t *testing.T) {
	d := NewDesign("bus")
	m := NewModule("top")
	m.AddBusPort("din", 2, Input)
	m.AddBusPort("dout", 2, Output)
	m.AddInstance("u0", "INVX1", map[string]string{"A": "din[0]", "Y": "dout[0]"})
	m.AddInstance("u1", "INVX1", map[string]string{"A": "din[1]", "Y": "dout[1]"})
	d.AddModule(m)
	d.Top = "top"
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `\din[0]`) {
		t.Fatalf("expected escaped identifier in:\n%s", buf.String())
	}
	d2, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Modules["top"].PortByName("din[0]"); !ok {
		t.Error("escaped port name lost in round trip")
	}
}

func TestParseVerilogComments(t *testing.T) {
	src := `
// line comment
/* block
   comment */
module top (a, y);
  input a;
  output y;
  INVX1 u1 (.A(a), .Y(y)); // trailing
endmodule
`
	d, err := ParseVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Flatten(d); err != nil {
		t.Fatal(err)
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []string{
		"",                                 // no modules
		"module top (a; endmodule",         // malformed port list
		"module top (a); input a; INVX1 u", // truncated instance
		"module top (a); endmodule",        // port without direction
	}
	for _, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("malformed source accepted: %q", src)
		}
	}
}

func TestStats(t *testing.T) {
	f, err := Flatten(buildHierDesign())
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(f)
	if s.Cells != 5 || s.Sequential != 2 || s.Comb != 3 || s.MemoryBits != 0 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.AreaUM2 <= 0 {
		t.Error("area must be positive")
	}
	if s.ByCellName["FAX1"] != 2 {
		t.Errorf("FAX1 count = %d", s.ByCellName["FAX1"])
	}
	if !strings.Contains(s.String(), "cells=5") {
		t.Errorf("report: %s", s.String())
	}
}

func TestFlattenRejectsDrivenPI(t *testing.T) {
	d := NewDesign("x")
	m := NewModule("top")
	m.AddPort("a", Input)
	m.AddPort("y", Output)
	// Attempt to drive the primary input 'a' from an inverter.
	m.AddInstance("u1", "INVX1", map[string]string{"A": "y", "Y": "a"})
	m.AddInstance("u2", "INVX1", map[string]string{"A": "a", "Y": "y"})
	d.AddModule(m)
	d.Top = "top"
	if _, err := Flatten(d); err == nil {
		t.Fatal("driving a primary input must fail")
	}
}
