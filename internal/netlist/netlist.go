// Package netlist models hierarchical gate-level netlists: modules composed
// of library-cell instances and submodule instances wired by scalar nets.
// It provides flattening to a simulation-ready graph, topological
// levelization, and a structural-Verilog-subset writer and parser so designs
// round-trip through the same textual form real EDA flows exchange.
//
// Bus signals are represented as scalar nets named "bus[i]"; the Verilog
// writer emits them as escaped identifiers, which keeps every net scalar and
// the simulator simple without losing generality.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cell"
)

// Dir is a port direction.
type Dir uint8

// Port directions.
const (
	Input Dir = iota
	Output
)

// String returns the Verilog keyword for d.
func (d Dir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Port is a scalar module port.
type Port struct {
	Name string
	Dir  Dir
}

// Instance instantiates either a library cell or another module of the same
// design. Conns maps the instantiated entity's port names to net names in
// the enclosing module.
type Instance struct {
	Name  string
	Of    string // library cell name or module name
	Conns map[string]string
}

// Module is one level of the design hierarchy.
type Module struct {
	Name      string
	Ports     []Port
	Wires     []string // internal nets (ports are implicitly nets too)
	Instances []*Instance
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// AddPort appends a scalar port and returns its net name.
func (m *Module) AddPort(name string, d Dir) string {
	m.Ports = append(m.Ports, Port{Name: name, Dir: d})
	return name
}

// AddBusPort appends width scalar ports named base[0..width-1], LSB first,
// and returns the net names.
func (m *Module) AddBusPort(base string, width int, d Dir) []string {
	names := make([]string, width)
	for i := 0; i < width; i++ {
		names[i] = fmt.Sprintf("%s[%d]", base, i)
		m.AddPort(names[i], d)
	}
	return names
}

// AddWire declares an internal net and returns its name.
func (m *Module) AddWire(name string) string {
	m.Wires = append(m.Wires, name)
	return name
}

// AddBusWire declares width internal nets named base[0..width-1].
func (m *Module) AddBusWire(base string, width int) []string {
	names := make([]string, width)
	for i := 0; i < width; i++ {
		names[i] = m.AddWire(fmt.Sprintf("%s[%d]", base, i))
	}
	return names
}

// AddInstance appends an instance of a cell or submodule.
func (m *Module) AddInstance(name, of string, conns map[string]string) *Instance {
	inst := &Instance{Name: name, Of: of, Conns: conns}
	m.Instances = append(m.Instances, inst)
	return inst
}

// PortByName returns the port with the given name, if present.
func (m *Module) PortByName(name string) (Port, bool) {
	for _, p := range m.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// NetNames returns every net visible in the module: ports then wires.
func (m *Module) NetNames() []string {
	names := make([]string, 0, len(m.Ports)+len(m.Wires))
	for _, p := range m.Ports {
		names = append(names, p.Name)
	}
	names = append(names, m.Wires...)
	return names
}

// Design is a set of modules with a designated top.
type Design struct {
	Name    string
	Top     string
	Modules map[string]*Module
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name, Modules: map[string]*Module{}}
}

// AddModule registers m, replacing any module with the same name.
func (d *Design) AddModule(m *Module) {
	d.Modules[m.Name] = m
}

// TopModule returns the top module or an error when unset/missing.
func (d *Design) TopModule() (*Module, error) {
	m, ok := d.Modules[d.Top]
	if !ok {
		return nil, fmt.Errorf("netlist: top module %q not found in design %q", d.Top, d.Name)
	}
	return m, nil
}

// ModuleNames returns the module names in sorted order.
func (d *Design) ModuleNames() []string {
	names := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks structural integrity: every instance refers to a known
// cell or module, every connection names a known port of the target and a
// known net of the enclosing module, every net has at most one driver, and
// the hierarchy is acyclic.
func (d *Design) Validate() error {
	if _, err := d.TopModule(); err != nil {
		return err
	}
	if err := d.checkHierarchyAcyclic(); err != nil {
		return err
	}
	for _, mname := range d.ModuleNames() {
		m := d.Modules[mname]
		nets := map[string]bool{}
		for _, n := range m.NetNames() {
			if nets[n] {
				return fmt.Errorf("netlist: module %s: duplicate net %q", m.Name, n)
			}
			nets[n] = true
		}
		drivers := map[string]string{}
		for _, p := range m.Ports {
			if p.Dir == Input {
				drivers[p.Name] = "port " + p.Name
			}
		}
		instNames := map[string]bool{}
		for _, inst := range m.Instances {
			if instNames[inst.Name] {
				return fmt.Errorf("netlist: module %s: duplicate instance %q", m.Name, inst.Name)
			}
			instNames[inst.Name] = true
			dirOf, err := d.portDirs(inst.Of)
			if err != nil {
				return fmt.Errorf("netlist: module %s instance %s: %v", m.Name, inst.Name, err)
			}
			for port, net := range inst.Conns {
				dir, ok := dirOf[port]
				if !ok {
					return fmt.Errorf("netlist: module %s instance %s: %q has no port %q", m.Name, inst.Name, inst.Of, port)
				}
				if !nets[net] {
					return fmt.Errorf("netlist: module %s instance %s: net %q not declared", m.Name, inst.Name, net)
				}
				if dir == Output {
					if prev, dup := drivers[net]; dup {
						return fmt.Errorf("netlist: module %s: net %q driven by both %s and %s.%s",
							m.Name, net, prev, inst.Name, port)
					}
					drivers[net] = inst.Name + "." + port
				}
			}
			// All ports of the instantiated entity must be connected: a
			// floating input would simulate as X forever and a floating
			// output is almost always a generator bug.
			for port := range dirOf {
				if _, ok := inst.Conns[port]; !ok {
					return fmt.Errorf("netlist: module %s instance %s: port %q unconnected", m.Name, inst.Name, port)
				}
			}
		}
	}
	return nil
}

// portDirs returns the port-name→direction map of a library cell or module.
func (d *Design) portDirs(of string) (map[string]Dir, error) {
	if sub, ok := d.Modules[of]; ok {
		dirs := make(map[string]Dir, len(sub.Ports))
		for _, p := range sub.Ports {
			dirs[p.Name] = p.Dir
		}
		return dirs, nil
	}
	def, err := cell.Lookup(of)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a module nor a library cell", of)
	}
	dirs := make(map[string]Dir, len(def.Inputs)+len(def.Outputs))
	for _, p := range def.Inputs {
		dirs[p] = Input
	}
	for _, p := range def.Outputs {
		dirs[p] = Output
	}
	return dirs, nil
}

func (d *Design) checkHierarchyAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var visit func(name string, trail []string) error
	visit = func(name string, trail []string) error {
		m, ok := d.Modules[name]
		if !ok {
			return nil // library cell
		}
		switch state[name] {
		case gray:
			return fmt.Errorf("netlist: hierarchy cycle: %s", strings.Join(append(trail, name), " -> "))
		case black:
			return nil
		}
		state[name] = gray
		for _, inst := range m.Instances {
			if err := visit(inst.Of, append(trail, name)); err != nil {
				return err
			}
		}
		state[name] = black
		return nil
	}
	return visit(d.Top, nil)
}
