package netlist

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/xrand"
)

// randomDesign builds a structurally valid random hierarchical design:
// random combinational DAGs inside leaf modules, random instantiation one
// level up, every net driven exactly once.
func randomDesign(rng *xrand.RNG) *Design {
	d := NewDesign("fuzz")
	combCells := []string{"INVX1", "NAND2X1", "NOR2X1", "XOR2X1", "AND2X1", "MUX2X1"}

	nLeaves := 1 + rng.Intn(3)
	var leafNames []string
	for li := 0; li < nLeaves; li++ {
		name := fmt.Sprintf("leaf%d", li)
		m := NewModule(name)
		nIn := 2 + rng.Intn(3)
		var avail []string
		for i := 0; i < nIn; i++ {
			avail = append(avail, m.AddPort(fmt.Sprintf("i%d", i), Input))
		}
		nGates := 1 + rng.Intn(6)
		for g := 0; g < nGates; g++ {
			cellName := combCells[rng.Intn(len(combCells))]
			def := cell.MustLookup(cellName)
			conns := map[string]string{}
			for _, p := range def.Inputs {
				conns[p] = avail[rng.Intn(len(avail))]
			}
			out := m.AddWire(fmt.Sprintf("w%d", g))
			conns[def.Outputs[0]] = out
			m.AddInstance(fmt.Sprintf("g%d", g), cellName, conns)
			avail = append(avail, out)
		}
		// Expose the last wire as the output through a buffer.
		y := m.AddPort("y", Output)
		m.AddInstance("u_out", "BUFX2", map[string]string{"A": avail[len(avail)-1], "Y": y})
		d.AddModule(m)
		leafNames = append(leafNames, name)
	}

	top := NewModule("top")
	nTopIn := 3 + rng.Intn(3)
	var nets []string
	for i := 0; i < nTopIn; i++ {
		nets = append(nets, top.AddPort(fmt.Sprintf("pi%d", i), Input))
	}
	nInst := 1 + rng.Intn(4)
	for ii := 0; ii < nInst; ii++ {
		leaf := leafNames[rng.Intn(len(leafNames))]
		lm := d.Modules[leaf]
		conns := map[string]string{}
		for _, p := range lm.Ports {
			if p.Dir == Input {
				conns[p.Name] = nets[rng.Intn(len(nets))]
			} else {
				out := top.AddWire(fmt.Sprintf("o%d", ii))
				conns[p.Name] = out
				nets = append(nets, out)
			}
		}
		top.AddInstance(fmt.Sprintf("u%d", ii), leaf, conns)
	}
	po := top.AddPort("po", Output)
	top.AddInstance("u_po", "BUFX2", map[string]string{"A": nets[len(nets)-1], "Y": po})
	d.AddModule(top)
	d.Top = "top"
	return d
}

// TestFlattenInvariantsFuzz checks structural invariants of Flatten over
// many random designs: single driver per net, consistent fanout back
// pointers, complete indices, and monotone levels along driver edges.
func TestFlattenInvariantsFuzz(t *testing.T) {
	rng := xrand.New(20240612)
	for trial := 0; trial < 200; trial++ {
		d := randomDesign(rng)
		f, err := Flatten(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range f.Nets {
			if n.Driver >= 0 {
				c := f.Cells[n.Driver]
				if c.Out[n.DrvPin] != n.ID {
					t.Fatalf("trial %d: driver back-pointer broken for net %s", trial, n.Name)
				}
			}
			for _, fo := range n.Fanout {
				c := f.Cells[fo.Cell]
				if c.In[fo.Pin] != n.ID {
					t.Fatalf("trial %d: fanout back-pointer broken for net %s", trial, n.Name)
				}
			}
		}
		for _, c := range f.Cells {
			if got := f.CellIndex[c.Path]; got != c.ID {
				t.Fatalf("trial %d: cell index broken for %s", trial, c.Path)
			}
			if c.Def.IsSequential() {
				continue
			}
			for _, nid := range c.In {
				drv := f.Nets[nid].Driver
				if drv >= 0 && !f.Cells[drv].Def.IsSequential() {
					if f.Cells[drv].Level >= c.Level {
						t.Fatalf("trial %d: levels not monotone: %s(%d) -> %s(%d)",
							trial, f.Cells[drv].Path, f.Cells[drv].Level, c.Path, c.Level)
					}
				}
			}
		}
	}
}

// TestVerilogRoundTripFuzz checks that random designs survive the Verilog
// writer/parser round trip with identical flattened structure.
func TestVerilogRoundTripFuzz(t *testing.T) {
	rng := xrand.New(777)
	for trial := 0; trial < 100; trial++ {
		d := randomDesign(rng)
		var buf bytes.Buffer
		if err := WriteVerilog(&buf, d); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		d2, err := ParseVerilog(&buf)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		f1, err := Flatten(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f2, err := Flatten(d2)
		if err != nil {
			t.Fatalf("trial %d: reparsed design invalid: %v", trial, err)
		}
		if len(f1.Cells) != len(f2.Cells) || len(f1.Nets) != len(f2.Nets) {
			t.Fatalf("trial %d: structure changed: cells %d->%d nets %d->%d",
				trial, len(f1.Cells), len(f2.Cells), len(f1.Nets), len(f2.Nets))
		}
		for path, id := range f1.CellIndex {
			id2, ok := f2.CellIndex[path]
			if !ok {
				t.Fatalf("trial %d: cell %s lost in round trip", trial, path)
			}
			if f1.Cells[id].Def.Name != f2.Cells[id2].Def.Name {
				t.Fatalf("trial %d: cell %s changed type", trial, path)
			}
		}
	}
}
