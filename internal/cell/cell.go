// Package cell defines the standard-cell library used by the synthetic
// gate-level netlists: combinational gates, D flip-flop variants, and the
// memory bit macros (SRAM, DRAM, radiation-hardened SRAM) that Table I of
// the paper sweeps over. Each cell definition carries its logic function,
// propagation delay, area, and radiation class, which together drive both
// the simulator and the single-particle soft-error database.
package cell

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Class partitions cells by their role, which determines the applicable
// single-particle fault model: SET for combinational cells, SEU for storage.
type Class uint8

// Cell classes.
const (
	Combinational Class = iota // SET targets: transient pulse on output
	Sequential                 // SEU targets: state flip in the flop
	Memory                     // SEU targets: bit flip in the array cell
)

// String returns a readable class name.
func (c Class) String() string {
	switch c {
	case Combinational:
		return "comb"
	case Sequential:
		return "seq"
	case Memory:
		return "mem"
	}
	return "unknown"
}

// RadClass identifies the cross-section family a cell belongs to in the
// soft-error database (Fig. 3 of the paper).
type RadClass string

// Radiation classes referenced by the fault database.
const (
	RadComb   RadClass = "COMB"
	RadFF     RadClass = "FF"
	RadSRAM   RadClass = "SRAM"
	RadDRAM   RadClass = "DRAM"
	RadRHSRAM RadClass = "RHSRAM"
)

// SeqSpec describes the sequential behaviour of a storage cell. The
// simulator samples DataPort on the rising edge of Clock, gated by Enable
// when present; AsyncResetN/AsyncSetN are active-low asynchronous controls.
type SeqSpec struct {
	Clock       string
	DataPort    string
	Enable      string // empty when the cell has no enable
	AsyncResetN string // empty when absent
	AsyncSetN   string // empty when absent
	HasQN       bool   // cell drives both Q and QN
}

// Def is one library cell. Inputs and Outputs list port names in the order
// Eval consumes and produces values. For sequential cells Eval is nil and
// Seq describes the state behaviour instead.
type Def struct {
	Name    string
	Class   Class
	Rad     RadClass
	Inputs  []string
	Outputs []string
	DelayPS int64   // intrinsic propagation delay, picoseconds
	AreaUM2 float64 // layout area, square microns
	Eval    func(in []logic.V) []logic.V
	Seq     *SeqSpec
}

// IsSequential reports whether the cell stores state.
func (d *Def) IsSequential() bool { return d.Seq != nil }

// PortDir reports "input"/"output" for a named port, or an error for an
// unknown port.
func (d *Def) PortDir(port string) (string, error) {
	for _, p := range d.Inputs {
		if p == port {
			return "input", nil
		}
	}
	for _, p := range d.Outputs {
		if p == port {
			return "output", nil
		}
	}
	return "", fmt.Errorf("cell %s: unknown port %q", d.Name, port)
}

// InputIndex returns the position of port within Inputs, or -1.
func (d *Def) InputIndex(port string) int {
	for i, p := range d.Inputs {
		if p == port {
			return i
		}
	}
	return -1
}

// OutputIndex returns the position of port within Outputs, or -1.
func (d *Def) OutputIndex(port string) int {
	for i, p := range d.Outputs {
		if p == port {
			return i
		}
	}
	return -1
}

var library = map[string]*Def{}

func register(d *Def) *Def {
	if _, dup := library[d.Name]; dup {
		panic("cell: duplicate cell name " + d.Name)
	}
	library[d.Name] = d
	return d
}

// Lookup returns the library cell with the given name.
func Lookup(name string) (*Def, error) {
	d, ok := library[name]
	if !ok {
		return nil, fmt.Errorf("cell: no library cell named %q", name)
	}
	return d, nil
}

// MustLookup is Lookup for names known at compile time; it panics on a miss.
func MustLookup(name string) *Def {
	d, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns all library cell names in sorted order.
func Names() []string {
	names := make([]string, 0, len(library))
	for n := range library {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func comb1(f func(a logic.V) logic.V) func([]logic.V) []logic.V {
	return func(in []logic.V) []logic.V { return []logic.V{f(in[0])} }
}

func comb2(f func(a, b logic.V) logic.V) func([]logic.V) []logic.V {
	return func(in []logic.V) []logic.V { return []logic.V{f(in[0], in[1])} }
}

func reduceN(f func(a, b logic.V) logic.V, invert bool) func([]logic.V) []logic.V {
	return func(in []logic.V) []logic.V {
		acc := in[0]
		for _, v := range in[1:] {
			acc = f(acc, v)
		}
		if invert {
			acc = acc.Not()
		}
		return []logic.V{acc}
	}
}

func ports(names ...string) []string { return names }

func init() {
	// Combinational cells. Delay values follow a rough 45 nm education
	// library: inverter fastest, complex gates slower.
	register(&Def{
		Name: "INVX1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A"), Outputs: ports("Y"),
		DelayPS: 12, AreaUM2: 1.1,
		Eval: comb1(logic.V.Not),
	})
	register(&Def{
		Name: "BUFX2", Class: Combinational, Rad: RadComb,
		Inputs: ports("A"), Outputs: ports("Y"),
		DelayPS: 18, AreaUM2: 1.6,
		Eval: comb1(func(a logic.V) logic.V {
			if a == logic.Z {
				return logic.X
			}
			return a
		}),
	})
	for n := 2; n <= 4; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = string(rune('A' + i))
		}
		register(&Def{
			Name: fmt.Sprintf("NAND%dX1", n), Class: Combinational, Rad: RadComb,
			Inputs: in, Outputs: ports("Y"),
			DelayPS: int64(14 + 4*n), AreaUM2: 1.2 + 0.5*float64(n),
			Eval: reduceN(logic.And, true),
		})
		register(&Def{
			Name: fmt.Sprintf("NOR%dX1", n), Class: Combinational, Rad: RadComb,
			Inputs: append([]string(nil), in...), Outputs: ports("Y"),
			DelayPS: int64(16 + 5*n), AreaUM2: 1.2 + 0.5*float64(n),
			Eval: reduceN(logic.Or, true),
		})
	}
	for n := 2; n <= 3; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = string(rune('A' + i))
		}
		register(&Def{
			Name: fmt.Sprintf("AND%dX1", n), Class: Combinational, Rad: RadComb,
			Inputs: in, Outputs: ports("Y"),
			DelayPS: int64(20 + 4*n), AreaUM2: 1.5 + 0.5*float64(n),
			Eval: reduceN(logic.And, false),
		})
		register(&Def{
			Name: fmt.Sprintf("OR%dX1", n), Class: Combinational, Rad: RadComb,
			Inputs: append([]string(nil), in...), Outputs: ports("Y"),
			DelayPS: int64(22 + 4*n), AreaUM2: 1.5 + 0.5*float64(n),
			Eval: reduceN(logic.Or, false),
		})
	}
	register(&Def{
		Name: "XOR2X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B"), Outputs: ports("Y"),
		DelayPS: 34, AreaUM2: 3.0,
		Eval: comb2(logic.Xor),
	})
	register(&Def{
		Name: "XNOR2X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B"), Outputs: ports("Y"),
		DelayPS: 36, AreaUM2: 3.0,
		Eval: comb2(func(a, b logic.V) logic.V { return logic.Xor(a, b).Not() }),
	})
	register(&Def{
		Name: "MUX2X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "S"), Outputs: ports("Y"),
		DelayPS: 30, AreaUM2: 3.2,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.Mux(in[2], in[0], in[1])}
		},
	})
	register(&Def{
		Name: "AOI21X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "C"), Outputs: ports("Y"),
		DelayPS: 26, AreaUM2: 2.4,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.Or(logic.And(in[0], in[1]), in[2]).Not()}
		},
	})
	register(&Def{
		Name: "OAI21X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "C"), Outputs: ports("Y"),
		DelayPS: 26, AreaUM2: 2.4,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.And(logic.Or(in[0], in[1]), in[2]).Not()}
		},
	})
	register(&Def{
		Name: "AOI22X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "C", "D"), Outputs: ports("Y"),
		DelayPS: 30, AreaUM2: 3.0,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.Or(logic.And(in[0], in[1]), logic.And(in[2], in[3])).Not()}
		},
	})
	register(&Def{
		Name: "OAI22X1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "C", "D"), Outputs: ports("Y"),
		DelayPS: 30, AreaUM2: 3.0,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.And(logic.Or(in[0], in[1]), logic.Or(in[2], in[3])).Not()}
		},
	})
	register(&Def{
		Name: "HAX1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B"), Outputs: ports("S", "CO"),
		DelayPS: 40, AreaUM2: 4.5,
		Eval: func(in []logic.V) []logic.V {
			return []logic.V{logic.Xor(in[0], in[1]), logic.And(in[0], in[1])}
		},
	})
	register(&Def{
		Name: "FAX1", Class: Combinational, Rad: RadComb,
		Inputs: ports("A", "B", "CI"), Outputs: ports("S", "CO"),
		DelayPS: 52, AreaUM2: 6.2,
		Eval: func(in []logic.V) []logic.V {
			a, b, ci := in[0], in[1], in[2]
			s := logic.Xor(logic.Xor(a, b), ci)
			co := logic.Or(logic.And(a, b), logic.And(ci, logic.Xor(a, b)))
			return []logic.V{s, co}
		},
	})
	register(&Def{
		Name: "TIELO", Class: Combinational, Rad: RadComb,
		Inputs: nil, Outputs: ports("Y"),
		DelayPS: 0, AreaUM2: 0.6,
		Eval: func([]logic.V) []logic.V { return []logic.V{logic.L0} },
	})
	register(&Def{
		Name: "TIEHI", Class: Combinational, Rad: RadComb,
		Inputs: nil, Outputs: ports("Y"),
		DelayPS: 0, AreaUM2: 0.6,
		Eval: func([]logic.V) []logic.V { return []logic.V{logic.L1} },
	})

	// D flip-flop family. The name DFFDEGLX2 matches the database example
	// in Fig. 3 of the paper.
	register(&Def{
		Name: "DFFX1", Class: Sequential, Rad: RadFF,
		Inputs: ports("D", "CK"), Outputs: ports("Q", "QN"),
		DelayPS: 80, AreaUM2: 7.5,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", HasQN: true},
	})
	register(&Def{
		Name: "DFFDEGLX2", Class: Sequential, Rad: RadFF,
		Inputs: ports("D", "CK"), Outputs: ports("Q", "QN"),
		DelayPS: 72, AreaUM2: 9.0,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", HasQN: true},
	})
	register(&Def{
		Name: "DFFRX1", Class: Sequential, Rad: RadFF,
		Inputs: ports("D", "CK", "RN"), Outputs: ports("Q", "QN"),
		DelayPS: 86, AreaUM2: 8.6,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", AsyncResetN: "RN", HasQN: true},
	})
	register(&Def{
		Name: "DFFSX1", Class: Sequential, Rad: RadFF,
		Inputs: ports("D", "CK", "SN"), Outputs: ports("Q", "QN"),
		DelayPS: 86, AreaUM2: 8.6,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", AsyncSetN: "SN", HasQN: true},
	})
	register(&Def{
		Name: "DFFEX1", Class: Sequential, Rad: RadFF,
		Inputs: ports("D", "CK", "E"), Outputs: ports("Q", "QN"),
		DelayPS: 92, AreaUM2: 9.4,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", Enable: "E", HasQN: true},
	})

	// Memory bit macros: write-enabled storage bits with distinct radiation
	// classes; Table I's SRAM/DRAM/Rad-hard SRAM sweep rests on these.
	register(&Def{
		Name: "SRAMBITX1", Class: Memory, Rad: RadSRAM,
		Inputs: ports("D", "WE", "CK"), Outputs: ports("Q"),
		DelayPS: 60, AreaUM2: 1.9,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", Enable: "WE"},
	})
	register(&Def{
		Name: "DRAMBITX1", Class: Memory, Rad: RadDRAM,
		Inputs: ports("D", "WE", "CK"), Outputs: ports("Q"),
		DelayPS: 110, AreaUM2: 0.9,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", Enable: "WE"},
	})
	register(&Def{
		Name: "RHSRAMBITX1", Class: Memory, Rad: RadRHSRAM,
		Inputs: ports("D", "WE", "CK"), Outputs: ports("Q"),
		DelayPS: 75, AreaUM2: 3.8,
		Seq: &SeqSpec{Clock: "CK", DataPort: "D", Enable: "WE"},
	})
}

// NextState computes a sequential cell's next stored value given the
// current state, a rising clock edge having occurred, and the input port
// values indexed as in d.Inputs. Async controls override the clocked path.
func (d *Def) NextState(state logic.V, in []logic.V) logic.V {
	if d.Seq == nil {
		panic("cell: NextState on combinational cell " + d.Name)
	}
	s := d.Seq
	if s.AsyncResetN != "" {
		if rn := in[d.InputIndex(s.AsyncResetN)]; rn == logic.L0 {
			return logic.L0
		}
	}
	if s.AsyncSetN != "" {
		if sn := in[d.InputIndex(s.AsyncSetN)]; sn == logic.L0 {
			return logic.L1
		}
	}
	if s.Enable != "" {
		switch in[d.InputIndex(s.Enable)] {
		case logic.L0:
			return state
		case logic.L1:
			// fall through to capture
		default:
			return logic.X
		}
	}
	return in[d.InputIndex(s.DataPort)]
}

// AsyncState returns the value forced by asynchronous controls regardless of
// the clock, or (X, false) when no async control is active.
func (d *Def) AsyncState(in []logic.V) (logic.V, bool) {
	if d.Seq == nil {
		return logic.X, false
	}
	if d.Seq.AsyncResetN != "" && in[d.InputIndex(d.Seq.AsyncResetN)] == logic.L0 {
		return logic.L0, true
	}
	if d.Seq.AsyncSetN != "" && in[d.InputIndex(d.Seq.AsyncSetN)] == logic.L0 {
		return logic.L1, true
	}
	return logic.X, false
}

// StateOutputs maps a stored state to the cell's output values (Q and,
// when present, QN).
func (d *Def) StateOutputs(state logic.V) []logic.V {
	if d.Seq == nil {
		panic("cell: StateOutputs on combinational cell " + d.Name)
	}
	if d.Seq.HasQN {
		return []logic.V{state, state.Not()}
	}
	return []logic.V{state}
}
