package cell

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func eval(t *testing.T, name string, bits string) []logic.V {
	t.Helper()
	d := MustLookup(name)
	in := make([]logic.V, len(bits))
	for i := range bits {
		in[i] = logic.FromRune(bits[i])
	}
	if len(in) != len(d.Inputs) {
		t.Fatalf("%s: %d inputs supplied, cell has %d", name, len(in), len(d.Inputs))
	}
	return d.Eval(in)
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("NOSUCHCELL"); err == nil {
		t.Fatal("Lookup of unknown cell must fail")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) < 25 {
		t.Fatalf("library has only %d cells", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for _, want := range []string{"INVX1", "NAND2X1", "DFFX1", "SRAMBITX1", "DRAMBITX1", "RHSRAMBITX1", "DFFDEGLX2"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("library missing %s", want)
		}
	}
}

func TestInverter(t *testing.T) {
	if got := eval(t, "INVX1", "0")[0]; got != logic.L1 {
		t.Errorf("INV(0) = %v", got)
	}
	if got := eval(t, "INVX1", "1")[0]; got != logic.L0 {
		t.Errorf("INV(1) = %v", got)
	}
	if got := eval(t, "INVX1", "x")[0]; got != logic.X {
		t.Errorf("INV(x) = %v", got)
	}
}

func TestBufferZBecomesX(t *testing.T) {
	if got := eval(t, "BUFX2", "z")[0]; got != logic.X {
		t.Errorf("BUF(z) = %v, want x", got)
	}
	if got := eval(t, "BUFX2", "1")[0]; got != logic.L1 {
		t.Errorf("BUF(1) = %v", got)
	}
}

func TestNandNorWide(t *testing.T) {
	if got := eval(t, "NAND4X1", "1111")[0]; got != logic.L0 {
		t.Errorf("NAND4(all 1) = %v", got)
	}
	if got := eval(t, "NAND4X1", "1101")[0]; got != logic.L1 {
		t.Errorf("NAND4(with 0) = %v", got)
	}
	if got := eval(t, "NOR3X1", "000")[0]; got != logic.L1 {
		t.Errorf("NOR3(all 0) = %v", got)
	}
	if got := eval(t, "NOR3X1", "010")[0]; got != logic.L0 {
		t.Errorf("NOR3(with 1) = %v", got)
	}
}

func TestAoiOai(t *testing.T) {
	// AOI21: Y = !((A&B) | C)
	if got := eval(t, "AOI21X1", "110")[0]; got != logic.L0 {
		t.Errorf("AOI21(1,1,0) = %v, want 0", got)
	}
	if got := eval(t, "AOI21X1", "000")[0]; got != logic.L1 {
		t.Errorf("AOI21(0,0,0) = %v, want 1", got)
	}
	// OAI22: Y = !((A|B) & (C|D))
	if got := eval(t, "OAI22X1", "1010")[0]; got != logic.L0 {
		t.Errorf("OAI22(1,0,1,0) = %v, want 0", got)
	}
	if got := eval(t, "OAI22X1", "0011")[0]; got != logic.L1 {
		t.Errorf("OAI22(0,0,1,1) = %v, want 1", got)
	}
}

func TestFullAdderExhaustive(t *testing.T) {
	d := MustLookup("FAX1")
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for ci := 0; ci < 2; ci++ {
				out := d.Eval([]logic.V{logic.FromBool(a == 1), logic.FromBool(b == 1), logic.FromBool(ci == 1)})
				sum := a + b + ci
				if out[0].Bool() != (sum%2 == 1) {
					t.Errorf("FA S(%d,%d,%d) = %v", a, b, ci, out[0])
				}
				if out[1].Bool() != (sum >= 2) {
					t.Errorf("FA CO(%d,%d,%d) = %v", a, b, ci, out[1])
				}
			}
		}
	}
}

func TestHalfAdder(t *testing.T) {
	out := eval(t, "HAX1", "11")
	if out[0] != logic.L0 || out[1] != logic.L1 {
		t.Errorf("HA(1,1) = S:%v CO:%v", out[0], out[1])
	}
}

func TestTieCells(t *testing.T) {
	if got := MustLookup("TIELO").Eval(nil)[0]; got != logic.L0 {
		t.Errorf("TIELO = %v", got)
	}
	if got := MustLookup("TIEHI").Eval(nil)[0]; got != logic.L1 {
		t.Errorf("TIEHI = %v", got)
	}
}

func TestMux2(t *testing.T) {
	if got := eval(t, "MUX2X1", "100")[0]; got != logic.L1 {
		t.Errorf("MUX2(A=1,B=0,S=0) = %v, want A", got)
	}
	if got := eval(t, "MUX2X1", "101")[0]; got != logic.L0 {
		t.Errorf("MUX2(A=1,B=0,S=1) = %v, want B", got)
	}
}

func TestDFFNextState(t *testing.T) {
	d := MustLookup("DFFX1")
	// Inputs: D, CK
	if got := d.NextState(logic.L0, []logic.V{logic.L1, logic.L1}); got != logic.L1 {
		t.Errorf("DFF capture = %v, want 1", got)
	}
	outs := d.StateOutputs(logic.L1)
	if outs[0] != logic.L1 || outs[1] != logic.L0 {
		t.Errorf("DFF outputs = %v", outs)
	}
}

func TestDFFRAsyncReset(t *testing.T) {
	d := MustLookup("DFFRX1")
	// Inputs: D, CK, RN. RN=0 forces 0 regardless of D.
	if got := d.NextState(logic.L1, []logic.V{logic.L1, logic.L1, logic.L0}); got != logic.L0 {
		t.Errorf("DFFR with RN=0 next = %v, want 0", got)
	}
	v, active := d.AsyncState([]logic.V{logic.X, logic.X, logic.L0})
	if !active || v != logic.L0 {
		t.Errorf("AsyncState(RN=0) = %v,%v", v, active)
	}
	if _, active := d.AsyncState([]logic.V{logic.X, logic.X, logic.L1}); active {
		t.Error("AsyncState must be inactive with RN=1")
	}
}

func TestDFFSAsyncSet(t *testing.T) {
	d := MustLookup("DFFSX1")
	if got := d.NextState(logic.L0, []logic.V{logic.L0, logic.L1, logic.L0}); got != logic.L1 {
		t.Errorf("DFFS with SN=0 next = %v, want 1", got)
	}
}

func TestEnableFlop(t *testing.T) {
	d := MustLookup("DFFEX1")
	// Inputs: D, CK, E
	if got := d.NextState(logic.L0, []logic.V{logic.L1, logic.L1, logic.L0}); got != logic.L0 {
		t.Errorf("disabled flop captured: %v", got)
	}
	if got := d.NextState(logic.L0, []logic.V{logic.L1, logic.L1, logic.L1}); got != logic.L1 {
		t.Errorf("enabled flop did not capture: %v", got)
	}
	if got := d.NextState(logic.L0, []logic.V{logic.L1, logic.L1, logic.X}); got != logic.X {
		t.Errorf("X enable must poison state: %v", got)
	}
}

func TestMemoryBitCells(t *testing.T) {
	for _, name := range []string{"SRAMBITX1", "DRAMBITX1", "RHSRAMBITX1"} {
		d := MustLookup(name)
		if d.Class != Memory {
			t.Errorf("%s class = %v, want mem", name, d.Class)
		}
		// Inputs: D, WE, CK
		if got := d.NextState(logic.L0, []logic.V{logic.L1, logic.L1, logic.L1}); got != logic.L1 {
			t.Errorf("%s write failed: %v", name, got)
		}
		if got := d.NextState(logic.L1, []logic.V{logic.L0, logic.L0, logic.L1}); got != logic.L1 {
			t.Errorf("%s hold failed: %v", name, got)
		}
		outs := d.StateOutputs(logic.L1)
		if len(outs) != 1 || outs[0] != logic.L1 {
			t.Errorf("%s outputs = %v", name, outs)
		}
	}
}

func TestRadClasses(t *testing.T) {
	cases := map[string]RadClass{
		"INVX1": RadComb, "DFFX1": RadFF, "SRAMBITX1": RadSRAM,
		"DRAMBITX1": RadDRAM, "RHSRAMBITX1": RadRHSRAM,
	}
	for name, want := range cases {
		if got := MustLookup(name).Rad; got != want {
			t.Errorf("%s rad class = %s, want %s", name, got, want)
		}
	}
}

func TestPortDir(t *testing.T) {
	d := MustLookup("DFFX1")
	if dir, err := d.PortDir("D"); err != nil || dir != "input" {
		t.Errorf("PortDir(D) = %q, %v", dir, err)
	}
	if dir, err := d.PortDir("QN"); err != nil || dir != "output" {
		t.Errorf("PortDir(QN) = %q, %v", dir, err)
	}
	if _, err := d.PortDir("NOPE"); err == nil {
		t.Error("PortDir of unknown port must fail")
	}
}

func TestEveryCellConsistent(t *testing.T) {
	for _, name := range Names() {
		d := MustLookup(name)
		if d.IsSequential() {
			if d.Eval != nil {
				t.Errorf("%s: sequential cell must not define Eval", name)
			}
			if d.InputIndex(d.Seq.Clock) < 0 {
				t.Errorf("%s: clock %q not an input", name, d.Seq.Clock)
			}
			if d.InputIndex(d.Seq.DataPort) < 0 {
				t.Errorf("%s: data %q not an input", name, d.Seq.DataPort)
			}
			if d.OutputIndex("Q") < 0 {
				t.Errorf("%s: sequential cell missing Q", name)
			}
			if d.Seq.HasQN && d.OutputIndex("QN") < 0 {
				t.Errorf("%s: HasQN but no QN output", name)
			}
		} else {
			if d.Eval == nil {
				t.Errorf("%s: combinational cell missing Eval", name)
			} else {
				in := make([]logic.V, len(d.Inputs))
				for i := range in {
					in[i] = logic.L0
				}
				out := d.Eval(in)
				if len(out) != len(d.Outputs) {
					t.Errorf("%s: Eval produced %d outputs, cell declares %d", name, len(out), len(d.Outputs))
				}
			}
		}
		if d.DelayPS < 0 {
			t.Errorf("%s: negative delay", name)
		}
		if d.AreaUM2 <= 0 {
			t.Errorf("%s: non-positive area", name)
		}
		if !strings.ContainsAny(name, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			t.Errorf("%s: cell names are upper case by convention", name)
		}
	}
}

func TestCombXPropagationSafety(t *testing.T) {
	// Every combinational gate fed all-X must produce only 0/1/X, never Z,
	// and must not panic: gates do not generate high impedance.
	for _, name := range Names() {
		d := MustLookup(name)
		if d.IsSequential() {
			continue
		}
		in := make([]logic.V, len(d.Inputs))
		for i := range in {
			in[i] = logic.X
		}
		for _, o := range d.Eval(in) {
			if o == logic.Z {
				t.Errorf("%s produced Z from X inputs", name)
			}
		}
	}
}
