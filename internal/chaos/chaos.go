// Package chaos injects network faults into an http.RoundTripper — the
// test harness that lets the fleet's e2e suites mangle the coordinator
// protocol mid-grid and still demand byte-identical sweep output. A
// fault-simulation system ought to survive the class of faults it
// injects, and this package is how the test suite holds it to that.
//
// Faults are drawn from a seeded PRNG, so a failing chaos run replays
// under the same seed. Probabilities are per-request and mutually
// exclusive, drawn from one uniform sample in the order Drop, Err503,
// Reset, Dup, Delay; the remainder passes the request through clean.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config sets per-request fault probabilities (each in [0,1]; their sum
// must not exceed 1) for a Transport.
type Config struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Drop: the request is never sent; the caller sees a transport error.
	Drop float64
	// Err503: the request is never sent; the caller sees a synthesized
	// 503 with a Retry-After: 1 header — the coordinator's own
	// draining/failover shape, so clients exercise that path too.
	Err503 float64
	// Reset: the request IS sent (and may have acted on the server!), but
	// the response is discarded and the caller sees a transport error —
	// the classic "did my completion land?" ambiguity.
	Reset float64
	// Dup: the request is sent twice back to back; the caller sees the
	// second response. Exercises idempotency of submits and completions.
	Dup float64
	// Delay: the request is held for a random interval up to MaxDelay
	// before being sent.
	Delay    float64
	MaxDelay time.Duration
	// Corrupt: a POST body has one ASCII digit flipped to a different
	// digit before being sent — the wire-corruption fault the integrity
	// checksums exist to catch. Flipping digit-to-digit keeps the JSON
	// syntactically valid, so the damage reaches the checksum verifier
	// instead of dying as a 400 parse error. Digits after an
	// `"injections"` substring are preferred, so the damage lands in the
	// result payload rather than in routing fields. Bodyless requests
	// pass through clean.
	Corrupt float64
	// CorruptPath, when non-empty, restricts Corrupt to requests whose
	// URL path contains it (e.g. "/v1/complete").
	CorruptPath string
}

// Stats counts requests seen and faults injected.
type Stats struct {
	Requests int64
	Drops    int64
	Errs503  int64
	Resets   int64
	Dups     int64
	Delays   int64
	Corrupts int64
}

// Transport is a fault-injecting http.RoundTripper. Wrap it around a
// worker's or client's transport:
//
//	client.HTTP = &http.Client{Transport: chaos.New(cfg)}
//
// Safe for concurrent use; the PRNG draw is serialized, the network I/O
// is not.
type Transport struct {
	// Base performs the real exchanges; nil uses http.DefaultTransport.
	Base http.RoundTripper

	mu    sync.Mutex
	rnd   *rand.Rand
	cfg   Config
	stats Stats
	// obs counters mirror the Stats fields live; see SetObs.
	obsRequests *obs.Counter
	obsClass    map[fault]*obs.Counter
}

// SetObs exports the transport's fault counters through an obs registry:
// chaos_requests_total plus chaos_injected_total labeled by fault class
// (drop, err503, reset, dup, delay, corrupt). Every class series is registered
// eagerly at zero, so a scrape can tell "class never drawn" from "class
// not wired up". Call before serving traffic; a nil registry is a no-op.
func (t *Transport) SetObs(r *obs.Registry) {
	const help = "Faults injected by the chaos transport, by class."
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obsRequests = r.NewCounter("chaos_requests_total", "Requests seen by the chaos transport.")
	t.obsClass = map[fault]*obs.Counter{
		faultDrop:    r.NewCounter("chaos_injected_total", help, "class", "drop"),
		fault503:     r.NewCounter("chaos_injected_total", help, "class", "err503"),
		faultReset:   r.NewCounter("chaos_injected_total", help, "class", "reset"),
		faultDup:     r.NewCounter("chaos_injected_total", help, "class", "dup"),
		faultDelay:   r.NewCounter("chaos_injected_total", help, "class", "delay"),
		faultCorrupt: r.NewCounter("chaos_injected_total", help, "class", "corrupt"),
	}
}

// New returns a Transport injecting faults per cfg over
// http.DefaultTransport.
func New(cfg Config) *Transport {
	return &Transport{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

type fault int

const (
	faultNone fault = iota
	faultDrop
	fault503
	faultReset
	faultDup
	faultDelay
	faultCorrupt
)

// draw picks this request's fate and, for delays, its duration.
// corruptable reports whether the request could carry a corrupt fault
// (bodied, path-matched); a corrupt draw on an ineligible request
// passes through clean and is not counted.
func (t *Transport) draw(corruptable bool) (fault, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	t.obsRequests.Inc()
	u := t.rnd.Float64()
	f, d := faultNone, time.Duration(0)
	sum := t.cfg.Drop
	switch {
	case u < sum:
		t.stats.Drops++
		f = faultDrop
	case u < sum+t.cfg.Err503:
		t.stats.Errs503++
		f = fault503
	case u < sum+t.cfg.Err503+t.cfg.Reset:
		t.stats.Resets++
		f = faultReset
	case u < sum+t.cfg.Err503+t.cfg.Reset+t.cfg.Dup:
		t.stats.Dups++
		f = faultDup
	case u < sum+t.cfg.Err503+t.cfg.Reset+t.cfg.Dup+t.cfg.Delay:
		t.stats.Delays++
		f = faultDelay
		d = time.Duration(t.rnd.Int63n(int64(t.cfg.MaxDelay) + 1))
	case u < sum+t.cfg.Err503+t.cfg.Reset+t.cfg.Dup+t.cfg.Delay+t.cfg.Corrupt:
		if corruptable {
			t.stats.Corrupts++
			f = faultCorrupt
		}
	}
	if f != faultNone {
		t.obsClass[f].Inc()
	}
	return f, d
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the configured faults.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	corruptable := req.Body != nil && req.GetBody != nil &&
		(t.cfg.CorruptPath == "" || strings.Contains(req.URL.Path, t.cfg.CorruptPath))
	f, delay := t.draw(corruptable)
	switch f {
	case faultDrop:
		return nil, fmt.Errorf("chaos: connection dropped before send")
	case fault503:
		return synth503(req), nil
	case faultCorrupt:
		if mangled, ok := t.corruptBody(req); ok {
			req = mangled
		}
	case faultReset:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		drain(resp)
		return nil, fmt.Errorf("chaos: connection reset while reading response")
	case faultDup:
		return t.sendTwice(req)
	case faultDelay:
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return t.base().RoundTrip(req)
}

// sendTwice delivers the request twice — the duplicate-delivery fault a
// retrying proxy can produce — returning the second response. Requests
// with a one-shot body that cannot be re-materialized (GetBody nil on a
// bodied request) fall back to a single send.
func (t *Transport) sendTwice(req *http.Request) (*http.Response, error) {
	second := req.Clone(req.Context())
	if req.Body != nil {
		if req.GetBody == nil {
			return t.base().RoundTrip(req)
		}
		b1, err := req.GetBody()
		if err != nil {
			return t.base().RoundTrip(req)
		}
		b2, err := req.GetBody()
		if err != nil {
			return t.base().RoundTrip(req)
		}
		req = req.Clone(req.Context())
		req.Body = b1
		second.Body = b2
	}
	first, err := t.base().RoundTrip(req)
	if err == nil {
		drain(first)
	}
	return t.base().RoundTrip(second)
}

// corruptBody rewrites the request with one digit of its body flipped to
// a different digit — deterministic under the transport's seed. The
// flip targets the first digit after an `"injections"` substring when
// one exists (the result payload), else the first digit anywhere; a
// body with no digits is returned unchanged. Digit-to-digit keeps the
// JSON valid: the corruption must survive parsing to prove the checksum
// layer catches it.
func (t *Transport) corruptBody(req *http.Request) (*http.Request, bool) {
	rc, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, false
	}
	at := -1
	start := 0
	if i := strings.Index(string(body), `"injections"`); i >= 0 {
		start = i
	}
	for i := start; i < len(body); i++ {
		if body[i] >= '0' && body[i] <= '9' {
			at = i
			break
		}
	}
	if at == -1 {
		for i := 0; i < len(body); i++ {
			if body[i] >= '0' && body[i] <= '9' {
				at = i
				break
			}
		}
	}
	if at == -1 {
		return nil, false
	}
	t.mu.Lock()
	flip := byte(t.rnd.Intn(8)) // 0..7
	t.mu.Unlock()
	// Map into 1..9, never the original digit and never '0': flipping a
	// number's first digit to zero would mint a leading-zero literal
	// ("07"), which is invalid JSON and would die as a 400 instead of
	// reaching the checksum verifier.
	body[at] = '0' + (body[at]-'0'+flip)%9 + 1
	out := req.Clone(req.Context())
	out.Body = io.NopCloser(strings.NewReader(string(body)))
	out.ContentLength = int64(len(body))
	out.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(string(body))), nil
	}
	return out, true
}

// synth503 fabricates the coordinator's draining reply without touching
// the network, Retry-After and error envelope included.
func synth503(req *http.Request) *http.Response {
	body := `{"error":{"code":"unavailable","message":"chaos: injected 503"}}` + "\n"
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", "1")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// drain discards and closes a response body so the underlying
// connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
