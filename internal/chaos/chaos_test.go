package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportDeterministicBySeed: two transports with the same seed
// must make identical fault decisions — that's what makes a failing
// chaos run replayable.
func TestTransportDeterministicBySeed(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.2, Err503: 0.2, Reset: 0.2, Dup: 0.2, Delay: 0.1, MaxDelay: time.Nanosecond}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		fa, _ := a.draw(true)
		fb, _ := b.draw(true)
		if fa != fb {
			t.Fatalf("draw %d diverged: %v vs %v under the same seed", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestTransportAllFaultsFire: under heavy probabilities every fault
// class triggers, drops/resets surface as transport errors, 503s carry
// the Retry-After hint, and clean requests still go through.
func TestTransportAllFaultsFire(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := New(Config{Seed: 42, Drop: 0.15, Err503: 0.15, Reset: 0.15, Dup: 0.15, Delay: 0.15, MaxDelay: time.Millisecond})
	client := &http.Client{Transport: tr}
	var oks, errs, e503 int
	for i := 0; i < 300; i++ {
		req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte(`{"n":1}`)))
		resp, err := client.Do(req)
		if err != nil {
			errs++
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") != "1" {
				t.Fatalf("injected 503 without Retry-After hint: %v", resp.Header)
			}
			e503++
		} else {
			oks++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	s := tr.Stats()
	if s.Requests != 300 {
		t.Fatalf("stats counted %d requests, want 300", s.Requests)
	}
	if s.Drops == 0 || s.Errs503 == 0 || s.Resets == 0 || s.Dups == 0 || s.Delays == 0 {
		t.Fatalf("a fault class never fired in 300 draws: %+v", s)
	}
	if errs != int(s.Drops+s.Resets) {
		t.Fatalf("%d transport errors, want drops+resets = %d", errs, s.Drops+s.Resets)
	}
	if e503 != int(s.Errs503) {
		t.Fatalf("%d 503 responses, want %d", e503, s.Errs503)
	}
	if oks == 0 {
		t.Fatal("no request survived cleanly")
	}
	// Each dup hits the server one extra time beyond its counted response;
	// each reset hits it once despite surfacing as an error.
	want := int64(oks) + s.Dups + s.Resets
	if got := served.Load(); got != want {
		t.Fatalf("server saw %d requests, want %d (ok + dup + reset)", got, want)
	}
}

// TestTransportCorruptFlipsOneDigit pins the wire-corruption fault's
// contract: exactly one body byte changes, digit to a different digit,
// preferring the result payload after `"injections"`, and the mangled
// body still parses as JSON — the damage must reach the checksum
// verifier, not die as a 400.
func TestTransportCorruptFlipsOneDigit(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got = string(b)
	}))
	defer srv.Close()
	tr := New(Config{Seed: 3, Corrupt: 1, CorruptPath: "/v1/complete"})
	client := &http.Client{Transport: tr}
	sent := `{"lease_id":"lease-42","partial":{"index":1,"injections":[{"cell_id":77,"time_ps":1234}],"evals":999}}`
	resp, err := client.Post(srv.URL+"/v1/complete", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got == sent {
		t.Fatal("corrupt fault at probability 1 left the body untouched")
	}
	if len(got) != len(sent) {
		t.Fatalf("corruption changed the body length: %d vs %d", len(got), len(sent))
	}
	diffs := 0
	at := -1
	for i := range sent {
		if got[i] != sent[i] {
			diffs++
			at = i
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes changed, want exactly 1\nsent %s\ngot  %s", diffs, sent, got)
	}
	if sent[at] < '0' || sent[at] > '9' || got[at] < '0' || got[at] > '9' {
		t.Fatalf("flip %q -> %q is not digit-to-digit", sent[at], got[at])
	}
	if inj := strings.Index(sent, `"injections"`); at < inj {
		t.Fatalf("flip at offset %d landed before the injections payload (%d)", at, inj)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("corrupted body no longer parses as JSON: %v\n%s", err, got)
	}
	if s := tr.Stats(); s.Corrupts != 1 {
		t.Fatalf("stats counted %d corruptions, want 1: %+v", s.Corrupts, s)
	}
}

// TestTransportCorruptSparesIneligibleRequests: path-filtered and
// bodyless requests pass through clean and uncounted even at
// probability 1 — a corrupt draw on an ineligible request is a no-op,
// not a deferred fault.
func TestTransportCorruptSparesIneligibleRequests(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got = string(b)
	}))
	defer srv.Close()
	tr := New(Config{Seed: 3, Corrupt: 1, CorruptPath: "/v1/complete"})
	client := &http.Client{Transport: tr}
	sent := `{"worker":"w1","n":123}`
	resp, err := client.Post(srv.URL+"/v1/lease", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got != sent {
		t.Fatalf("path-filtered request corrupted: %q", got)
	}
	resp, err = client.Get(srv.URL + "/v1/complete")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s := tr.Stats(); s.Corrupts != 0 || s.Requests != 2 {
		t.Fatalf("ineligible requests counted as corrupted: %+v", s)
	}
}

// TestTransportDupReplaysBody: a duplicated POST must deliver the full
// body both times — GetBody re-materialization, not a drained reader.
func TestTransportDupReplaysBody(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
	}))
	defer srv.Close()
	tr := New(Config{Dup: 1})
	resp, err := (&http.Client{Transport: tr}).Post(srv.URL, "application/json", strings.NewReader(`{"x":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != `{"x":9}` || bodies[1] != `{"x":9}` {
		t.Fatalf("duplicated request bodies: %q", bodies)
	}
}
