package socgen

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/vcd"
)

func TestTableIConfigsComplete(t *testing.T) {
	cfgs := TableIConfigs()
	if len(cfgs) != 10 {
		t.Fatalf("%d configs, want 10", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Index != i+1 {
			t.Errorf("config %d has index %d", i, c.Index)
		}
		if c.Name != fmt.Sprintf("pulp_soc%d", i+1) {
			t.Errorf("config %d name %q", i, c.Name)
		}
		if c.MemRows == 0 || c.MemCols == 0 || c.BusSimWidth == 0 || c.DataWidth == 0 {
			t.Errorf("config %d missing scaled parameters: %+v", i, c)
		}
		if _, err := c.MemCellName(); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
	// Table I rows as published.
	if cfgs[9].MemType != "RadHardSRAM" || cfgs[9].BusBits != 4096 || cfgs[9].Cores != 2 {
		t.Errorf("SoC10 wrong: %+v", cfgs[9])
	}
	if cfgs[0].BusType != "APB" || cfgs[4].BusType != "AXI" || cfgs[8].BusType != "AHB" {
		t.Error("bus types do not match Table I")
	}
}

func TestConfigWeights(t *testing.T) {
	c, err := ConfigByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.SimMemBits() != 64 {
		t.Errorf("SoC1 sim bits = %d", c.SimMemBits())
	}
	if c.MemWeight() != 64*1024*8/64 {
		t.Errorf("SoC1 mem weight = %g", c.MemWeight())
	}
	if c.BusWeight() != 1 {
		t.Errorf("SoC1 bus weight = %g", c.BusWeight())
	}
	c9, _ := ConfigByIndex(9)
	if c9.MemWeight() <= c.MemWeight() {
		t.Error("bigger memory must carry bigger weight")
	}
	if _, err := ConfigByIndex(11); err == nil {
		t.Error("index 11 must fail")
	}
}

func TestISAFeatureFlags(t *testing.T) {
	flags := map[string][2]bool{ // ISA -> mul, fpu
		"RV32I": {false, false}, "RV32IM": {true, false},
		"RV32IMF": {true, true}, "RV32IMAFD": {true, true},
		"RV64I": {false, false},
	}
	for isa, want := range flags {
		c := Config{ISA: isa}
		if c.HasMul() != want[0] || c.HasFPU() != want[1] {
			t.Errorf("%s: mul=%v fpu=%v", isa, c.HasMul(), c.HasFPU())
		}
	}
}

func flatten(t *testing.T, idx int) (*netlist.Flat, Config) {
	t.Helper()
	cfg, err := ConfigByIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return f, cfg
}

func TestGenerateAllBenchmarks(t *testing.T) {
	prevCells := 0
	for idx := 1; idx <= 10; idx++ {
		f, cfg := flatten(t, idx)
		s := netlist.ComputeStats(f)
		if s.MemoryBits != cfg.SimMemBits() {
			t.Errorf("SoC%d: %d memory bits, want %d", idx, s.MemoryBits, cfg.SimMemBits())
		}
		if s.MaxDepth < 3 {
			t.Errorf("SoC%d: hierarchy depth %d too shallow", idx, s.MaxDepth)
		}
		if s.Sequential == 0 || s.Comb == 0 {
			t.Errorf("SoC%d: degenerate composition %+v", idx, s)
		}
		// Complexity must grow broadly along the table (SoC10 is rad-hard
		// but still the largest).
		if idx > 1 && idx != 7 && s.Cells < prevCells/2 {
			t.Errorf("SoC%d: cell count %d collapsed vs previous %d", idx, s.Cells, prevCells)
		}
		prevCells = s.Cells
		// Functional blocks present.
		blocks := map[string]bool{}
		for _, c := range f.Cells {
			blocks[c.FunctionalBlock()] = true
		}
		for _, want := range []string{"u_cpu0", "u_bus", "u_mem", "u_ctrl"} {
			if !blocks[want] {
				t.Errorf("SoC%d: missing block %s (have %v)", idx, want, blocks)
			}
		}
		if cfg.Cores == 2 && !blocks["u_cpu1"] {
			t.Errorf("SoC%d: second core missing", idx)
		}
	}
}

func TestMemoryCellTypeMatchesConfig(t *testing.T) {
	for _, idx := range []int{1, 2, 10} {
		f, cfg := flatten(t, idx)
		want, _ := cfg.MemCellName()
		count := 0
		for _, c := range f.Cells {
			if c.Def.Class == cell.Memory {
				if c.Def.Name != want {
					t.Fatalf("SoC%d: memory cell %s, want %s", idx, c.Def.Name, want)
				}
				count++
			}
		}
		if count != cfg.SimMemBits() {
			t.Errorf("SoC%d: %d memory cells, want %d", idx, count, cfg.SimMemBits())
		}
	}
}

func TestGeneratedVerilogRoundTrip(t *testing.T) {
	cfg, _ := ConfigByIndex(1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteVerilog(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := netlist.ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := netlist.Flatten(d)
	f2, err := netlist.Flatten(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Cells) != len(f2.Cells) {
		t.Errorf("round trip changed cell count %d -> %d", len(f1.Cells), len(f2.Cells))
	}
}

func TestWorkloadStimulus(t *testing.T) {
	f, _ := flatten(t, 1)
	wl, err := RunWorkload(riscv.FibProgram(10), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Trace) != 20 {
		t.Fatalf("trace length %d", len(wl.Trace))
	}
	plan, err := BuildStimulus(f, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Monitors) == 0 {
		t.Fatal("no monitored outputs")
	}
	if plan.DurationPS < 20*ClockPeriodPS {
		t.Errorf("duration %d too short", plan.DurationPS)
	}
	if len(plan.Stimuli) == 0 {
		t.Fatal("no stimuli generated")
	}
}

// runGolden simulates the benchmark under a workload on the given engine
// kind and returns the output trace.
func runGolden(t *testing.T, f *netlist.Flat, kind sim.EngineKind) *vcd.Trace {
	t.Helper()
	wl, err := RunWorkload(riscv.MemcpyProgram(8), 30)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildStimulus(f, wl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(kind, f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf)
	if err := sim.AttachVCD(e, w, plan.Monitors); err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(plan.DurationPS); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(plan.DurationPS); err != nil {
		t.Fatal(err)
	}
	tr, err := vcd.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSoCSimulatesAndProducesActivity(t *testing.T) {
	f, _ := flatten(t, 1)
	tr := runGolden(t, f, sim.KindEvent)
	// The accumulator outputs must toggle: a dead design would invalidate
	// every experiment downstream.
	active := 0
	for name, sig := range tr.Signals {
		if len(sig.Samples) > 2 {
			active++
		}
		_ = name
	}
	if active < 3 {
		t.Fatalf("only %d outputs show activity", active)
	}
}

func TestSoCGoldenReproducible(t *testing.T) {
	f, _ := flatten(t, 1)
	a := runGolden(t, f, sim.KindEvent)
	b := runGolden(t, f, sim.KindEvent)
	if vcd.Diverged(a, b, nil) {
		t.Fatal("golden runs differ")
	}
}

func TestEnginesAgreeOnSoC(t *testing.T) {
	f, _ := flatten(t, 1)
	ev := runGolden(t, f, sim.KindEvent)
	lv := runGolden(t, f, sim.KindLevel)
	// Compare sampled values just before each rising edge: cycle-accurate
	// agreement between the event-driven and levelized engines.
	for name, es := range ev.Signals {
		ls, ok := lv.Signals[name]
		if !ok {
			t.Fatalf("signal %s missing from LevelSim trace", name)
		}
		for k := 2; k < 30; k++ {
			tm := uint64(k)*ClockPeriodPS - 20
			evv, lvv := es.At(tm), ls.At(tm)
			if !evv.Equal(lvv) {
				t.Fatalf("engines disagree on %s at cycle %d: %s vs %s", name, k, evv, lvv)
			}
		}
	}
}
