package socgen

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// genBus builds the bus-fabric module for the configured protocol. All
// three fabrics expose the same ports; they differ in pipeline depth and
// handshake state, mirroring the real protocols' complexity ordering
// (APB combinational, AHB one address stage, AXI two stages with
// channel-splitting registers) — which is what makes wider/deeper buses
// more SEU-prone in Table I.
//
// Ports: clk, rstn, in_valid, in_write, in_addr[A], in_wdata[W],
// mem_rdata[W] (input) -> mem_we, mem_addr[A], mem_wdata[W], out_rdata[W],
// busy (outputs).
func genBus(d *netlist.Design, cfg Config, addrW int) string {
	w := cfg.BusSimWidth
	name := fmt.Sprintf("bus_%s_w%d", strings.ToLower(cfg.BusType), w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	m.AddPort("in_valid", netlist.Input)
	m.AddPort("in_write", netlist.Input)
	inAddr := m.AddBusPort("in_addr", addrW, netlist.Input)
	inWdata := m.AddBusPort("in_wdata", w, netlist.Input)
	memRdata := m.AddBusPort("mem_rdata", w, netlist.Input)
	m.AddPort("mem_we", netlist.Output)
	memAddr := m.AddBusPort("mem_addr", addrW, netlist.Output)
	memWdata := m.AddBusPort("mem_wdata", w, netlist.Output)
	outRdata := m.AddBusPort("out_rdata", w, netlist.Output)
	m.AddPort("busy", netlist.Output)
	b := newBuilder(m)

	stage := func(valid, write string, addr, wdata []string) (string, string, []string, []string) {
		v := b.dff(valid, "clk", "rstn")
		wr := b.dff(write, "clk", "rstn")
		return v, wr, b.register(addr, "clk", "rstn"), b.register(wdata, "clk", "rstn")
	}

	valid, write := "in_valid", "in_write"
	addr, wdata := inAddr, inWdata
	rdata := memRdata
	var fsmTap string

	switch cfg.BusType {
	case "APB":
		// Combinational datapath plus the protocol's SETUP/ACCESS state:
		// psel/penable phase registers and the address/write-data capture
		// registers real APB bridges hold the transaction in. The captured
		// copy feeds the protocol monitor (busy), so upsets in bridge
		// state are architecturally visible, while the datapath itself
		// stays combinational — APB remains the shallowest fabric.
		psel := b.dff(valid, "clk", "rstn")
		penable := b.dff(b.and2(psel, valid), "clk", "rstn")
		addrCap := b.register(inAddr, "clk", "rstn")
		wdataCap := b.register(inWdata, "clk", "rstn")
		capParity := b.xor2(b.xorN(addrCap), b.xorN(wdataCap))
		fsmTap = b.xor2(b.xor2(psel, penable), capParity)
		addr = make([]string, addrW)
		for i, n := range inAddr {
			addr[i] = b.buf(n)
		}
		wdata = make([]string, w)
		for i, n := range inWdata {
			wdata[i] = b.buf(n)
		}
	case "AHB":
		valid, write, addr, wdata = stage(valid, write, addr, wdata)
	case "AXI":
		valid, write, addr, wdata = stage(valid, write, addr, wdata)
		valid, write, addr, wdata = stage(valid, write, addr, wdata)
		// AXI returns read data through a response register stage.
		rdata = b.register(memRdata, "clk", "rstn")
	default:
		panic("socgen: unknown bus type " + cfg.BusType)
	}

	we := b.and2(valid, write)
	b.inst("web", "BUFX2", map[string]string{"A": we, "Y": "mem_we"})
	for i := range memAddr {
		b.inst("ab", "BUFX2", map[string]string{"A": addr[i], "Y": memAddr[i]})
	}
	for i := range memWdata {
		b.inst("wb", "BUFX2", map[string]string{"A": wdata[i], "Y": memWdata[i]})
	}
	for i := range outRdata {
		b.inst("rb", "BUFX2", map[string]string{"A": rdata[i], "Y": outRdata[i]})
	}
	// Busy: valid command in flight, XORed with the fabric's integrity
	// parity — AMBA buses carry odd parity across control and data lanes,
	// so a single-bit upset in any transaction register is architecturally
	// visible at the bus status output.
	parityTerms := append([]string{valid, write}, addr...)
	parityTerms = append(parityTerms, wdata...)
	integrity := b.xorN(parityTerms)
	if fsmTap != "" {
		integrity = b.xor2(integrity, fsmTap)
	}
	busyRaw := b.xor2(b.buf(valid), integrity)
	b.inst("busyb", "BUFX2", map[string]string{"A": busyRaw, "Y": "busy"})
	d.AddModule(m)
	return name
}
