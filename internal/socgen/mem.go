package socgen

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

const bankRows = 8

// genMemRow builds one memory word row: the bit cells of one address plus
// the row's write-enable gating. Keeping rows as modules gives memory the
// deep hierarchy real compiled arrays have, which the clustering layer
// depends on for fine cluster counts.
// Ports: clk, rowsel, we, wdata[C], q[C].
func genMemRow(d *netlist.Design, cfg Config) string {
	cols := cfg.MemCols
	cellName, err := cfg.MemCellName()
	if err != nil {
		panic(err)
	}
	name := fmt.Sprintf("memrow_%s_c%d", strings.ToLower(cfg.MemType), cols)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rowsel", netlist.Input)
	m.AddPort("we", netlist.Input)
	wdata := m.AddBusPort("wdata", cols, netlist.Input)
	q := m.AddBusPort("q", cols, netlist.Output)
	b := newBuilder(m)
	rowWE := b.and2("rowsel", "we")
	for c := 0; c < cols; c++ {
		b.inst("bit", cellName, map[string]string{
			"D": wdata[c], "WE": rowWE, "CK": "clk", "Q": q[c],
		})
	}
	d.AddModule(m)
	return name
}

// genMemBank builds one 8-row memory bank of the configured bit-cell type
// from row submodules plus the address decoder and read tree.
// Ports: clk, we, addr[3], wdata[C], rdata[C].
func genMemBank(d *netlist.Design, cfg Config) string {
	cols := cfg.MemCols
	rowName := genMemRow(d, cfg)
	name := fmt.Sprintf("membank_%s_c%d", strings.ToLower(cfg.MemType), cols)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("we", netlist.Input)
	addr := m.AddBusPort("addr", 3, netlist.Input)
	wdata := m.AddBusPort("wdata", cols, netlist.Input)
	rdata := m.AddBusPort("rdata", cols, netlist.Output)
	b := newBuilder(m)

	rows := b.decodeN(addr)
	qs := make([][]string, bankRows)
	for r := 0; r < bankRows; r++ {
		qs[r] = m.AddBusWire(fmt.Sprintf("row%d_q", r), cols)
		conns := map[string]string{"clk": "clk", "rowsel": rows[r], "we": "we"}
		for c := 0; c < cols; c++ {
			conns[fmt.Sprintf("wdata[%d]", c)] = wdata[c]
			conns[fmt.Sprintf("q[%d]", c)] = qs[r][c]
		}
		m.AddInstance(fmt.Sprintf("u_row%d", r), rowName, conns)
	}
	// Read: per column, OR of (row-select AND q).
	for c := 0; c < cols; c++ {
		terms := make([]string, bankRows)
		for r := 0; r < bankRows; r++ {
			terms[r] = b.and2(rows[r], qs[r][c])
		}
		b.inst("rdb", "BUFX2", map[string]string{"A": b.orN(terms), "Y": rdata[c]})
	}
	d.AddModule(m)
	return name
}

// genMemory builds the full memory from banks plus a bank decoder and read
// mux. Ports: clk, we, addr[A], wdata[C], rdata[C] where A = 3 + bank bits.
func genMemory(d *netlist.Design, cfg Config) (string, int) {
	cols := cfg.MemCols
	nBanks := cfg.MemRows / bankRows
	if nBanks < 1 {
		nBanks = 1
	}
	bankBits := 0
	for 1<<bankBits < nBanks {
		bankBits++
	}
	addrW := 3 + bankBits
	bankName := genMemBank(d, cfg)
	name := fmt.Sprintf("mem_%s_r%dx%d", strings.ToLower(cfg.MemType), cfg.MemRows, cols)
	if _, ok := d.Modules[name]; ok {
		return name, addrW
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("we", netlist.Input)
	addr := m.AddBusPort("addr", addrW, netlist.Input)
	wdata := m.AddBusPort("wdata", cols, netlist.Input)
	rdata := m.AddBusPort("rdata", cols, netlist.Output)
	b := newBuilder(m)

	var bankSel []string
	if bankBits == 0 {
		bankSel = []string{b.tie1()}
	} else {
		bankSel = b.decodeN(addr[3:])
	}
	bankOuts := make([][]string, nBanks)
	for bk := 0; bk < nBanks; bk++ {
		we := b.and2(bankSel[bk], "we")
		out := b.m.AddBusWire(fmt.Sprintf("bank%d_rd", bk), cols)
		conns := map[string]string{"clk": "clk", "we": we}
		for i := 0; i < 3; i++ {
			conns[fmt.Sprintf("addr[%d]", i)] = addr[i]
		}
		for c := 0; c < cols; c++ {
			conns[fmt.Sprintf("wdata[%d]", c)] = wdata[c]
			conns[fmt.Sprintf("rdata[%d]", c)] = out[c]
		}
		m.AddInstance(fmt.Sprintf("u_bank%d", bk), bankName, conns)
		bankOuts[bk] = out
	}
	// Read mux across banks: OR of (sel AND bankOut).
	for c := 0; c < cols; c++ {
		terms := make([]string, nBanks)
		for bk := 0; bk < nBanks; bk++ {
			terms[bk] = b.and2(bankSel[bk], bankOuts[bk][c])
		}
		b.inst("rdm", "BUFX2", map[string]string{"A": b.orN(terms), "Y": rdata[c]})
	}
	d.AddModule(m)
	return name, addrW
}
