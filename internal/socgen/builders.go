package socgen

import (
	"fmt"

	"repro/internal/netlist"
)

// builder wraps a module with unique-name generation and gate-level
// construction helpers shared by every block generator.
type builder struct {
	m   *netlist.Module
	seq int
}

func newBuilder(m *netlist.Module) *builder { return &builder{m: m} }

func (b *builder) wire(hint string) string {
	b.seq++
	return b.m.AddWire(fmt.Sprintf("%s_%d", hint, b.seq))
}

func (b *builder) inst(hint, cellName string, conns map[string]string) {
	b.seq++
	b.m.AddInstance(fmt.Sprintf("u_%s_%d", hint, b.seq), cellName, conns)
}

// tie0 returns a fresh constant-0 net.
func (b *builder) tie0() string {
	n := b.wire("zero")
	b.inst("tie0", "TIELO", map[string]string{"Y": n})
	return n
}

// tie1 returns a fresh constant-1 net.
func (b *builder) tie1() string {
	n := b.wire("one")
	b.inst("tie1", "TIEHI", map[string]string{"Y": n})
	return n
}

// not returns !a.
func (b *builder) not(a string) string {
	y := b.wire("n")
	b.inst("inv", "INVX1", map[string]string{"A": a, "Y": y})
	return y
}

// buf returns a buffered copy of a (used to model clock trees and long
// routes, which are legitimate SET targets).
func (b *builder) buf(a string) string {
	y := b.wire("b")
	b.inst("buf", "BUFX2", map[string]string{"A": a, "Y": y})
	return y
}

func (b *builder) gate2(cell, a, c string) string {
	y := b.wire("g")
	b.inst("g", cell, map[string]string{"A": a, "B": c, "Y": y})
	return y
}

func (b *builder) and2(a, c string) string  { return b.gate2("AND2X1", a, c) }
func (b *builder) or2(a, c string) string   { return b.gate2("OR2X1", a, c) }
func (b *builder) xor2(a, c string) string  { return b.gate2("XOR2X1", a, c) }
func (b *builder) nand2(a, c string) string { return b.gate2("NAND2X1", a, c) }
func (b *builder) nor2(a, c string) string  { return b.gate2("NOR2X1", a, c) }

// mux2 returns sel ? d1 : d0.
func (b *builder) mux2(d0, d1, sel string) string {
	y := b.wire("mx")
	b.inst("mux", "MUX2X1", map[string]string{"A": d0, "B": d1, "S": sel, "Y": y})
	return y
}

// andN reduces nets with a balanced AND tree.
func (b *builder) andN(nets []string) string {
	return b.reduce(nets, b.and2)
}

// orN reduces nets with a balanced OR tree.
func (b *builder) orN(nets []string) string {
	return b.reduce(nets, b.or2)
}

// xorN reduces nets with a balanced XOR tree (parity).
func (b *builder) xorN(nets []string) string {
	return b.reduce(nets, b.xor2)
}

func (b *builder) reduce(nets []string, op func(a, c string) string) string {
	switch len(nets) {
	case 0:
		return b.tie0()
	case 1:
		return nets[0]
	}
	mid := len(nets) / 2
	return op(b.reduce(nets[:mid], op), b.reduce(nets[mid:], op))
}

// dff adds a D flip-flop with async reset and returns the Q net.
func (b *builder) dff(d, clk, rstn string) string {
	q := b.wire("q")
	qn := b.wire("qn")
	b.inst("ff", "DFFRX1", map[string]string{"D": d, "CK": clk, "RN": rstn, "Q": q, "QN": qn})
	return q
}

// dffe adds an enable flip-flop (no reset) and returns the Q net.
func (b *builder) dffe(d, clk, en string) string {
	q := b.wire("q")
	qn := b.wire("qn")
	b.inst("ffe", "DFFEX1", map[string]string{"D": d, "CK": clk, "E": en, "Q": q, "QN": qn})
	return q
}

// register adds a width-wide async-reset register and returns the Q nets.
func (b *builder) register(d []string, clk, rstn string) []string {
	q := make([]string, len(d))
	for i := range d {
		q[i] = b.dff(d[i], clk, rstn)
	}
	return q
}

// adder builds a ripple-carry adder over equal-width buses and returns the
// sum nets (carry-out discarded through an inverter load so no output
// floats unused drivers are fine — the final carry simply fans nowhere).
func (b *builder) adder(x, y []string) []string {
	if len(x) != len(y) {
		panic("socgen: adder width mismatch")
	}
	sum := make([]string, len(x))
	carry := b.tie0()
	for i := range x {
		s := b.wire("s")
		co := b.wire("co")
		b.inst("fa", "FAX1", map[string]string{"A": x[i], "B": y[i], "CI": carry, "S": s, "CO": co})
		sum[i] = s
		carry = co
	}
	return sum
}

// incrementer adds 1 to the bus via a half-adder chain.
func (b *builder) incrementer(x []string) []string {
	out := make([]string, len(x))
	carry := b.tie1()
	for i := range x {
		s := b.wire("s")
		co := b.wire("co")
		b.inst("ha", "HAX1", map[string]string{"A": x[i], "B": carry, "S": s, "CO": co})
		out[i] = s
		carry = co
	}
	return out
}

// xorBus returns x ^ y bitwise.
func (b *builder) xorBus(x, y []string) []string {
	out := make([]string, len(x))
	for i := range x {
		out[i] = b.xor2(x[i], y[i])
	}
	return out
}

// andBus returns x & y bitwise.
func (b *builder) andBus(x, y []string) []string {
	out := make([]string, len(x))
	for i := range x {
		out[i] = b.and2(x[i], y[i])
	}
	return out
}

// orBus returns x | y bitwise.
func (b *builder) orBus(x, y []string) []string {
	out := make([]string, len(x))
	for i := range x {
		out[i] = b.or2(x[i], y[i])
	}
	return out
}

// mux2Bus selects between equal-width buses.
func (b *builder) mux2Bus(d0, d1 []string, sel string) []string {
	out := make([]string, len(d0))
	for i := range d0 {
		out[i] = b.mux2(d0[i], d1[i], sel)
	}
	return out
}

// rotate returns the bus rotated left by one (a cheap diffusion step for
// the accumulator datapath).
func (b *builder) rotate(x []string) []string {
	out := make([]string, len(x))
	for i := range x {
		out[(i+1)%len(x)] = x[i]
	}
	return out
}

// decode2 builds a 2-to-4 one-hot decoder (used by the register file).
func (b *builder) decode2(a0, a1 string) [4]string {
	n0, n1 := b.not(a0), b.not(a1)
	return [4]string{
		b.and2(n0, n1),
		b.and2(a0, n1),
		b.and2(n0, a1),
		b.and2(a0, a1),
	}
}

// decodeN builds an n-bit address decoder producing 2^n one-hot lines for
// the given addr nets (LSB first). n must be <= 6 to keep gate counts sane.
func (b *builder) decodeN(addr []string) []string {
	if len(addr) > 6 {
		panic("socgen: decodeN address too wide")
	}
	inv := make([]string, len(addr))
	for i, a := range addr {
		inv[i] = b.not(a)
	}
	count := 1 << len(addr)
	out := make([]string, count)
	for v := 0; v < count; v++ {
		terms := make([]string, len(addr))
		for i := range addr {
			if v>>i&1 == 1 {
				terms[i] = addr[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[v] = b.andN(terms)
	}
	return out
}
