package socgen

import (
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// combHarness builds a module around a builder callback, simulates it on
// EventSim for every listed input vector, and returns the sampled outputs.
func combHarness(t *testing.T, nIn, nOut int, build func(b *builder, in []string, out []string)) func(vals uint64) []logic.V {
	t.Helper()
	d := netlist.NewDesign("harness")
	m := netlist.NewModule("harness")
	in := make([]string, nIn)
	for i := range in {
		in[i] = m.AddPort(fmt.Sprintf("i%d", i), netlist.Input)
	}
	out := make([]string, nOut)
	for i := range out {
		out[i] = m.AddPort(fmt.Sprintf("o%d", i), netlist.Output)
	}
	b := newBuilder(m)
	build(b, in, out)
	d.AddModule(m)
	d.Top = "harness"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return func(vals uint64) []logic.V {
		e := sim.NewEventSim(f)
		for i := 0; i < nIn; i++ {
			n, _ := f.NetByName(fmt.Sprintf("i%d", i))
			if err := e.ScheduleInput(0, n.ID, logic.FromBool(vals>>uint(i)&1 == 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(100000); err != nil {
			t.Fatal(err)
		}
		res := make([]logic.V, nOut)
		for i := 0; i < nOut; i++ {
			n, _ := f.NetByName(fmt.Sprintf("o%d", i))
			res[i] = e.Value(n.ID)
		}
		return res
	}
}

func connect(b *builder, from []string, to []string) {
	for i := range to {
		b.inst("cn", "BUFX2", map[string]string{"A": from[i], "Y": to[i]})
	}
}

func TestBuilderAdderExhaustive(t *testing.T) {
	const w = 4
	eval := combHarness(t, 2*w, w, func(b *builder, in, out []string) {
		sum := b.adder(in[:w], in[w:])
		connect(b, sum, out)
	})
	for a := uint64(0); a < 16; a++ {
		for c := uint64(0); c < 16; c++ {
			got := eval(a | c<<w)
			want := (a + c) & 0xf
			gotVal := uint64(0)
			for i, v := range got {
				if v == logic.L1 {
					gotVal |= 1 << uint(i)
				} else if v != logic.L0 {
					t.Fatalf("adder output bit %d undefined: %v", i, v)
				}
			}
			if gotVal != want {
				t.Fatalf("adder(%d,%d) = %d, want %d", a, c, gotVal, want)
			}
		}
	}
}

func TestBuilderIncrementerExhaustive(t *testing.T) {
	const w = 4
	eval := combHarness(t, w, w, func(b *builder, in, out []string) {
		connect(b, b.incrementer(in), out)
	})
	for a := uint64(0); a < 16; a++ {
		got := eval(a)
		want := (a + 1) & 0xf
		gotVal := uint64(0)
		for i, v := range got {
			if v == logic.L1 {
				gotVal |= 1 << uint(i)
			}
		}
		if gotVal != want {
			t.Fatalf("inc(%d) = %d, want %d", a, gotVal, want)
		}
	}
}

func TestBuilderDecodeNOneHot(t *testing.T) {
	const bits = 3
	eval := combHarness(t, bits, 1<<bits, func(b *builder, in, out []string) {
		connect(b, b.decodeN(in), out)
	})
	for a := uint64(0); a < 1<<bits; a++ {
		got := eval(a)
		for i, v := range got {
			want := logic.L0
			if uint64(i) == a {
				want = logic.L1
			}
			if v != want {
				t.Fatalf("decode(%d) line %d = %v, want %v", a, i, v, want)
			}
		}
	}
}

func TestBuilderReduceTreesFuzz(t *testing.T) {
	const w = 6
	evalAnd := combHarness(t, w, 1, func(b *builder, in, out []string) {
		connect(b, []string{b.andN(in)}, out)
	})
	evalOr := combHarness(t, w, 1, func(b *builder, in, out []string) {
		connect(b, []string{b.orN(in)}, out)
	})
	evalXor := combHarness(t, w, 1, func(b *builder, in, out []string) {
		connect(b, []string{b.xorN(in)}, out)
	})
	rng := xrand.New(31)
	for trial := 0; trial < 40; trial++ {
		v := rng.Uint64() & ((1 << w) - 1)
		ones := 0
		for i := 0; i < w; i++ {
			if v>>uint(i)&1 == 1 {
				ones++
			}
		}
		if got := evalAnd(v)[0]; got.Bool() != (ones == w) {
			t.Fatalf("andN(%b) = %v", v, got)
		}
		if got := evalOr(v)[0]; got.Bool() != (ones > 0) {
			t.Fatalf("orN(%b) = %v", v, got)
		}
		if got := evalXor(v)[0]; got.Bool() != (ones%2 == 1) {
			t.Fatalf("xorN(%b) = %v", v, got)
		}
	}
}

func TestBuilderMux2Bus(t *testing.T) {
	const w = 3
	eval := combHarness(t, 2*w+1, w, func(b *builder, in, out []string) {
		connect(b, b.mux2Bus(in[:w], in[w:2*w], in[2*w]), out)
	})
	// sel=0 -> first bus, sel=1 -> second bus.
	a, c := uint64(0b101), uint64(0b010)
	got := eval(a | c<<w)
	for i := range got {
		if got[i].Bool() != (a>>uint(i)&1 == 1) {
			t.Fatalf("mux sel=0 bit %d = %v", i, got[i])
		}
	}
	got = eval(a | c<<w | 1<<(2*w))
	for i := range got {
		if got[i].Bool() != (c>>uint(i)&1 == 1) {
			t.Fatalf("mux sel=1 bit %d = %v", i, got[i])
		}
	}
}

func TestBuilderRotate(t *testing.T) {
	const w = 4
	eval := combHarness(t, w, w, func(b *builder, in, out []string) {
		connect(b, b.rotate(in), out)
	})
	got := eval(0b0011)
	want := uint64(0b0110)
	gotVal := uint64(0)
	for i, v := range got {
		if v == logic.L1 {
			gotVal |= 1 << uint(i)
		}
	}
	if gotVal != want {
		t.Fatalf("rotate(0011) = %04b, want %04b", gotVal, want)
	}
}

// TestGenMulMatchesArithmetic verifies the 4x4 array multiplier block
// against Go multiplication for all operand pairs.
func TestGenMulMatchesArithmetic(t *testing.T) {
	d := netlist.NewDesign("multest")
	genMul(d)
	top := netlist.NewModule("multest")
	var in []string
	for i := 0; i < 8; i++ {
		in = append(in, top.AddPort(fmt.Sprintf("i%d", i), netlist.Input))
	}
	var out []string
	for i := 0; i < 4; i++ {
		out = append(out, top.AddPort(fmt.Sprintf("o%d", i), netlist.Output))
	}
	conns := map[string]string{}
	for i := 0; i < 4; i++ {
		conns[fmt.Sprintf("a[%d]", i)] = in[i]
		conns[fmt.Sprintf("b[%d]", i)] = in[4+i]
		conns[fmt.Sprintf("p[%d]", i)] = out[i]
	}
	top.AddInstance("u_mul", "mul4", conns)
	d.AddModule(top)
	d.Top = "multest"
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			e := sim.NewEventSim(f)
			for i := 0; i < 4; i++ {
				n, _ := f.NetByName(fmt.Sprintf("i%d", i))
				_ = e.ScheduleInput(0, n.ID, logic.FromBool(a>>uint(i)&1 == 1))
				n2, _ := f.NetByName(fmt.Sprintf("i%d", 4+i))
				_ = e.ScheduleInput(0, n2.ID, logic.FromBool(b>>uint(i)&1 == 1))
			}
			if err := e.Run(100000); err != nil {
				t.Fatal(err)
			}
			gotVal := uint64(0)
			for i := 0; i < 4; i++ {
				n, _ := f.NetByName(fmt.Sprintf("o%d", i))
				if e.Value(n.ID) == logic.L1 {
					gotVal |= 1 << uint(i)
				}
			}
			if want := (a * b) & 0xf; gotVal != want {
				t.Fatalf("mul4(%d,%d) = %d, want %d", a, b, gotVal, want)
			}
		}
	}
}
