package socgen

import (
	"fmt"

	"repro/internal/netlist"
)

// Generate builds the complete hierarchical gate-level netlist for one
// Table I benchmark. The produced design has the block structure
//
//	pulp_socN
//	├── u_cpu0[, u_cpu1]   CPU core(s): fetch/decode/alu/regfile[/mul/fpu]
//	├── u_bus               bus fabric (APB/AHB/AXI)
//	├── u_mem               memory banks of the configured bit-cell type
//	└── u_ctrl              reset synchronizer and status logic
//
// Primary inputs: clk, rstn, cmd_valid, cmd_write, cmd_addr[A],
// cmd_wdata[W]. Primary outputs: per-core accumulators, read-data parity,
// bus busy, and a cross-core checksum — the "main output signals" the
// paper's soft-error detector monitors.
func Generate(cfg Config) (*netlist.Design, error) {
	if cfg.Cores < 1 || cfg.Cores > 2 {
		return nil, fmt.Errorf("socgen: %d cores unsupported", cfg.Cores)
	}
	if _, err := cfg.MemCellName(); err != nil {
		return nil, err
	}
	d := netlist.NewDesign(cfg.Name)

	memName, addrW := genMemory(d, cfg)
	busName := genBus(d, cfg, addrW)
	coreName := genCPUCore(d, cfg)
	ctrlName := genCtrl(d)

	w := cfg.BusSimWidth
	cw := cfg.DataWidth
	top := netlist.NewModule(cfg.Name)
	top.AddPort("clk", netlist.Input)
	top.AddPort("rstn", netlist.Input)
	top.AddPort("cmd_valid", netlist.Input)
	top.AddPort("cmd_write", netlist.Input)
	cmdAddr := top.AddBusPort("cmd_addr", addrW, netlist.Input)
	cmdWdata := top.AddBusPort("cmd_wdata", w, netlist.Input)

	b := newBuilder(top)

	// Clock and reset distribution trees: buffered per block, so clock
	// buffers are legitimate SET targets as in a real SoC.
	clkBus := b.buf("clk")
	clkMem := b.buf("clk")
	clkCtrl := b.buf("clk")
	rstnSync := top.AddWire("rstn_sync")

	// Control block: reset synchronizer output feeds every reset pin.
	top.AddInstance("u_ctrl", ctrlName, map[string]string{
		"clk": clkCtrl, "rstn": "rstn", "rstn_sync": rstnSync,
	})

	// Bus.
	memWE := top.AddWire("mem_we")
	memAddr := top.AddBusWire("mem_addr", addrW)
	memWdata := top.AddBusWire("mem_wdata", w)
	memRdata := top.AddBusWire("mem_rdata", w)
	busRdata := top.AddBusWire("bus_rdata", w)
	busBusy := top.AddWire("bus_busy")
	bconns := map[string]string{
		"clk": clkBus, "rstn": rstnSync,
		"in_valid": "cmd_valid", "in_write": "cmd_write",
		"mem_we": memWE, "busy": busBusy,
	}
	for i := 0; i < addrW; i++ {
		bconns[fmt.Sprintf("in_addr[%d]", i)] = cmdAddr[i]
		bconns[fmt.Sprintf("mem_addr[%d]", i)] = memAddr[i]
	}
	for i := 0; i < w; i++ {
		bconns[fmt.Sprintf("in_wdata[%d]", i)] = cmdWdata[i]
		bconns[fmt.Sprintf("mem_wdata[%d]", i)] = memWdata[i]
		bconns[fmt.Sprintf("mem_rdata[%d]", i)] = memRdata[i]
		bconns[fmt.Sprintf("out_rdata[%d]", i)] = busRdata[i]
	}
	top.AddInstance("u_bus", busName, bconns)

	// Memory.
	mconns := map[string]string{"clk": clkMem, "we": memWE}
	for i := 0; i < addrW; i++ {
		mconns[fmt.Sprintf("addr[%d]", i)] = memAddr[i]
	}
	cols := cfg.MemCols
	memWdataAdapted := adapt(b, memWdata, cols)
	memRdataCols := top.AddBusWire("mem_rdata_cols", cols)
	for c := 0; c < cols; c++ {
		mconns[fmt.Sprintf("wdata[%d]", c)] = memWdataAdapted[c]
		mconns[fmt.Sprintf("rdata[%d]", c)] = memRdataCols[c]
	}
	top.AddInstance("u_mem", memName, mconns)
	// Route column read data back onto the bus width.
	back := adapt(b, memRdataCols, w)
	for i := 0; i < w; i++ {
		b.inst("mrb", "BUFX2", map[string]string{"A": back[i], "Y": memRdata[i]})
	}

	// CPU cores consume the bus read data.
	coreAccs := make([][]string, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		clkCore := b.buf("clk")
		acc := top.AddBusWire(fmt.Sprintf("acc%d", core), cw)
		rdataIn := adapt(b, busRdata, cw)
		if core == 1 {
			rdataIn = b.rotate(rdataIn)
		}
		cconns := map[string]string{"clk": clkCore, "rstn": rstnSync}
		for i := 0; i < cw; i++ {
			cconns[fmt.Sprintf("rdata[%d]", i)] = rdataIn[i]
			cconns[fmt.Sprintf("acc[%d]", i)] = acc[i]
		}
		top.AddInstance(fmt.Sprintf("u_cpu%d", core), coreName, cconns)
		coreAccs[core] = acc
	}

	// Primary outputs.
	outAcc := top.AddBusPort("acc_out", cw, netlist.Output)
	for i := 0; i < cw; i++ {
		b.inst("oab", "BUFX2", map[string]string{"A": coreAccs[0][i], "Y": outAcc[i]})
	}
	top.AddPort("rd_parity", netlist.Output)
	b.inst("opb", "BUFX2", map[string]string{"A": b.xorN(memRdataCols), "Y": "rd_parity"})
	top.AddPort("busy_out", netlist.Output)
	b.inst("obb", "BUFX2", map[string]string{"A": busBusy, "Y": "busy_out"})
	top.AddPort("checksum", netlist.Output)
	check := b.xorN(coreAccs[0])
	if cfg.Cores == 2 {
		check = b.xor2(check, b.xorN(coreAccs[1]))
		top.AddPort("acc1_parity", netlist.Output)
		b.inst("oc1", "BUFX2", map[string]string{"A": b.xorN(coreAccs[1]), "Y": "acc1_parity"})
	}
	b.inst("ocb", "BUFX2", map[string]string{"A": check, "Y": "checksum"})

	d.AddModule(top)
	d.Top = cfg.Name
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("socgen: generated design invalid: %v", err)
	}
	return d, nil
}

// genCtrl builds the control block: a two-stage reset synchronizer.
func genCtrl(d *netlist.Design) string {
	const name = "soc_ctrl"
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	m.AddPort("rstn_sync", netlist.Output)
	b := newBuilder(m)
	one := b.tie1()
	s1 := b.dff(one, "clk", "rstn")
	s2 := b.dff(s1, "clk", "rstn")
	b.inst("rsb", "BUFX2", map[string]string{"A": s2, "Y": "rstn_sync"})
	d.AddModule(m)
	return name
}
