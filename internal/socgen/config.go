// Package socgen generates the gate-level netlists of the ten PULP-style
// RISC-V SoC benchmarks of Table I. Each configuration varies the memory
// (type and size), the bus fabric (APB/AHB/AXI and bit width), and the CPU
// (ISA subset and core count), exactly along the axes the paper sweeps.
//
// Real memory arrays and kilobit buses are far beyond a laptop-scale
// gate-level simulation, so each benchmark is generated at a reduced scale
// with explicit representation weights: a simulated memory bit stands for
// RealMemBits/SimMemBits physical bits when cross-sections and upset rates
// are extrapolated. The hierarchy shape (top / block / sub-block / leaf
// cells), the cell mix, and the relative scaling between configurations are
// preserved, which is what the paper's trends rest on.
package socgen

import "fmt"

// Config describes one Table I benchmark.
type Config struct {
	Index   int    // 1..10, as in "PULP SoC1"
	Name    string // "pulp_soc1"
	MemType string // "SRAM", "DRAM", or "RadHardSRAM"
	MemKB   int    // real memory size in KiB
	BusType string // "APB", "AHB", or "AXI"
	BusBits int    // real bus width in bits
	ISA     string // "RV32I".."RV64I"
	Cores   int    // 1 or 2

	// Scaled-model knobs derived from the real parameters.
	MemRows     int // simulated memory rows
	MemCols     int // simulated bits per row
	BusSimWidth int // simulated bus data width
	DataWidth   int // CPU datapath width in the scaled model
}

// SimMemBits returns the number of simulated memory bit cells.
func (c Config) SimMemBits() int { return c.MemRows * c.MemCols }

// RealMemBits returns the physical bit count of the configured memory.
func (c Config) RealMemBits() float64 { return float64(c.MemKB) * 1024 * 8 }

// MemWeight is the number of physical memory bits each simulated bit cell
// represents.
func (c Config) MemWeight() float64 {
	return c.RealMemBits() / float64(c.SimMemBits())
}

// BusWeight is the number of physical bus bit lanes each simulated lane
// represents.
func (c Config) BusWeight() float64 {
	return float64(c.BusBits) / float64(c.BusSimWidth)
}

// HasMul reports whether the ISA includes the M extension.
func (c Config) HasMul() bool {
	switch c.ISA {
	case "RV32IM", "RV32IMF", "RV32IMAFD":
		return true
	}
	return false
}

// HasFPU reports whether the ISA includes floating point (F or D).
func (c Config) HasFPU() bool {
	switch c.ISA {
	case "RV32IMF", "RV32IMAFD":
		return true
	}
	return false
}

// MemCellName maps the memory type to its library bit cell.
func (c Config) MemCellName() (string, error) {
	switch c.MemType {
	case "SRAM":
		return "SRAMBITX1", nil
	case "DRAM":
		return "DRAMBITX1", nil
	case "RadHardSRAM":
		return "RHSRAMBITX1", nil
	}
	return "", fmt.Errorf("socgen: unknown memory type %q", c.MemType)
}

// TableIConfigs returns the ten benchmark configurations of Table I with
// their scaled-model parameters.
func TableIConfigs() []Config {
	base := []Config{
		{Index: 1, MemType: "SRAM", MemKB: 64, BusType: "APB", BusBits: 8, ISA: "RV32I", Cores: 1},
		{Index: 2, MemType: "DRAM", MemKB: 64, BusType: "APB", BusBits: 16, ISA: "RV32I", Cores: 2},
		{Index: 3, MemType: "SRAM", MemKB: 256, BusType: "AHB", BusBits: 32, ISA: "RV32IM", Cores: 1},
		{Index: 4, MemType: "DRAM", MemKB: 256, BusType: "AHB", BusBits: 64, ISA: "RV32IM", Cores: 2},
		{Index: 5, MemType: "SRAM", MemKB: 1024, BusType: "AXI", BusBits: 128, ISA: "RV32IMF", Cores: 1},
		{Index: 6, MemType: "DRAM", MemKB: 1024, BusType: "AXI", BusBits: 256, ISA: "RV32IMF", Cores: 2},
		{Index: 7, MemType: "SRAM", MemKB: 2048, BusType: "APB", BusBits: 512, ISA: "RV32IMAFD", Cores: 1},
		{Index: 8, MemType: "DRAM", MemKB: 2048, BusType: "APB", BusBits: 1024, ISA: "RV32IMAFD", Cores: 2},
		{Index: 9, MemType: "SRAM", MemKB: 4096, BusType: "AHB", BusBits: 2048, ISA: "RV64I", Cores: 1},
		{Index: 10, MemType: "RadHardSRAM", MemKB: 4096, BusType: "AHB", BusBits: 4096, ISA: "RV64I", Cores: 2},
	}
	memScale := map[int][2]int{ // MemKB -> rows, cols
		64:   {8, 8},
		256:  {16, 8},
		1024: {16, 16},
		2048: {24, 16},
		4096: {32, 16},
	}
	busScale := map[int]int{ // real bus bits -> simulated width
		8: 8, 16: 10, 32: 12, 64: 14, 128: 16,
		256: 18, 512: 20, 1024: 22, 2048: 24, 4096: 26,
	}
	isaWidth := map[string]int{
		"RV32I": 8, "RV32IM": 8, "RV32IMF": 10, "RV32IMAFD": 12, "RV64I": 14,
	}
	for i := range base {
		c := &base[i]
		c.Name = fmt.Sprintf("pulp_soc%d", c.Index)
		ms := memScale[c.MemKB]
		c.MemRows, c.MemCols = ms[0], ms[1]
		c.BusSimWidth = busScale[c.BusBits]
		c.DataWidth = isaWidth[c.ISA]
	}
	return base
}

// ConfigByIndex returns the Table I configuration with the given 1-based
// index.
func ConfigByIndex(idx int) (Config, error) {
	for _, c := range TableIConfigs() {
		if c.Index == idx {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("socgen: no PULP SoC%d in Table I", idx)
}
