package socgen

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/sim"
)

// ClockPeriodPS is the SoC clock period used by all campaigns: long enough
// for the deepest combinational cone (memory decode + read tree + bus +
// ALU) to settle well before the next edge, so the event-driven and
// levelized engines observe identical cycle behaviour.
const ClockPeriodPS = 4000

// Workload binds an assembled RISC-V program to the bus-command stream it
// produces on the SoC's primary inputs.
type Workload struct {
	Program riscv.Program
	// Cycles is the number of bus cycles of stimulus generated.
	Cycles int
	// Trace holds the ISS trace entries backing each cycle.
	Trace []riscv.TraceEntry
}

// RunWorkload executes the program on the ISS and returns the workload
// with up to maxCycles trace entries. The bus sees one command per cycle,
// so the trace is condensed to the program's memory accesses — every
// fourth cycle an ordinary instruction is interleaved as a bus-idle cycle,
// keeping realistic gaps in the command stream. The trace wraps around
// when the program is shorter than the window.
func RunWorkload(prog riscv.Program, maxCycles int) (*Workload, error) {
	img, err := riscv.Assemble(prog.Src, 0)
	if err != nil {
		return nil, fmt.Errorf("socgen: workload %s: %v", prog.Name, err)
	}
	cpu := riscv.New(1 << 16)
	if err := cpu.Load(0, img); err != nil {
		return nil, err
	}
	var memEntries, otherEntries []riscv.TraceEntry
	cpu.Trace = func(e riscv.TraceEntry) {
		if e.Mem != nil {
			memEntries = append(memEntries, e)
		} else {
			otherEntries = append(otherEntries, e)
		}
	}
	if err := cpu.Run(2_000_000); err != nil {
		return nil, fmt.Errorf("socgen: workload %s: %v", prog.Name, err)
	}
	if len(memEntries) == 0 {
		memEntries = otherEntries // pure-compute kernels idle the bus
	}
	if len(memEntries) == 0 {
		return nil, fmt.Errorf("socgen: workload %s retired no instructions", prog.Name)
	}
	w := &Workload{Program: prog, Cycles: maxCycles}
	mi, oi := 0, 0
	for i := 0; i < maxCycles; i++ {
		if i%4 == 3 && len(otherEntries) > 0 {
			w.Trace = append(w.Trace, otherEntries[oi%len(otherEntries)])
			oi++
			continue
		}
		w.Trace = append(w.Trace, memEntries[mi%len(memEntries)])
		mi++
	}
	return w, nil
}

// StimulusPlan is the full input schedule for one SoC simulation run.
type StimulusPlan struct {
	Stimuli    []sim.Stimulus
	ClockNet   int
	PeriodPS   uint64
	DurationPS uint64
	Monitors   []int // primary-output net IDs to compare for soft errors
}

// BuildStimulus converts an ISS workload into scheduled primary-input
// assignments for the flattened SoC: each trace entry drives one bus cycle
// (memory accesses become bus commands; other instructions idle the bus but
// keep the write-data lanes toggling with instruction bits, preserving
// realistic switching activity). Inputs change a quarter period after each
// rising edge, far from both edges.
func BuildStimulus(f *netlist.Flat, wl *Workload) (*StimulusPlan, error) {
	nid := func(name string) (int, error) {
		n, err := f.NetByName(name)
		if err != nil {
			return 0, err
		}
		return n.ID, nil
	}
	clk, err := nid("clk")
	if err != nil {
		return nil, err
	}
	rstn, err := nid("rstn")
	if err != nil {
		return nil, err
	}
	valid, err := nid("cmd_valid")
	if err != nil {
		return nil, err
	}
	write, err := nid("cmd_write")
	if err != nil {
		return nil, err
	}
	var addrNets, wdataNets []int
	for i := 0; ; i++ {
		n, err := f.NetByName(fmt.Sprintf("cmd_addr[%d]", i))
		if err != nil {
			break
		}
		addrNets = append(addrNets, n.ID)
	}
	for i := 0; ; i++ {
		n, err := f.NetByName(fmt.Sprintf("cmd_wdata[%d]", i))
		if err != nil {
			break
		}
		wdataNets = append(wdataNets, n.ID)
	}
	if len(addrNets) == 0 || len(wdataNets) == 0 {
		return nil, fmt.Errorf("socgen: design %s lacks command buses", f.Name)
	}

	const period = uint64(ClockPeriodPS)
	plan := &StimulusPlan{
		ClockNet:   clk,
		PeriodPS:   period,
		DurationPS: uint64(wl.Cycles+4) * period,
	}
	add := func(t uint64, net int, v logic.V) {
		plan.Stimuli = append(plan.Stimuli, sim.Stimulus{Time: t, Net: net, Val: v})
	}
	// Reset: asserted from time 0, released before the first rising edge.
	add(0, rstn, logic.L0)
	add(period/2, rstn, logic.L1)
	add(0, valid, logic.L0)
	add(0, write, logic.L0)
	for _, n := range addrNets {
		add(0, n, logic.L0)
	}
	for _, n := range wdataNets {
		add(0, n, logic.L0)
	}

	setBus := func(t uint64, nets []int, val uint64) {
		for i, n := range nets {
			add(t, n, logic.FromBool(val>>uint(i)&1 == 1))
		}
	}
	for k, e := range wl.Trace {
		t := uint64(k)*period + period/4
		if e.Mem != nil {
			add(t, valid, logic.L1)
			add(t, write, logic.FromBool(e.Mem.Write))
			setBus(t, addrNets, uint64(e.Mem.Addr>>2))
			setBus(t, wdataNets, uint64(e.Mem.Data))
		} else {
			add(t, valid, logic.L0)
			add(t, write, logic.L0)
			setBus(t, addrNets, uint64(e.PC>>2))
			setBus(t, wdataNets, uint64(e.Instr))
		}
	}
	plan.Monitors = append(plan.Monitors, f.POs...)
	return plan, nil
}

// Apply schedules the plan's clock and input events on an engine.
func (p *StimulusPlan) Apply(e sim.Engine) error {
	if err := sim.DriveClock(e, p.ClockNet, p.PeriodPS, p.PeriodPS, p.DurationPS); err != nil {
		return err
	}
	return sim.ApplyStimuli(e, p.Stimuli)
}
