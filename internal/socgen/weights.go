package socgen

import (
	"math"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Representation weights: each simulated cell stands for many physical
// elements of the real Table I platform, and the soft-error exposure
// computation multiplies per-cell cross-sections by these weights.
//
// The exponents below are the scaled-model substitution documented in
// DESIGN.md: physical arrays scale linearly in bit count, but the fraction
// of architecturally *live* state grows sub-linearly (larger memories hold
// colder data, wider buses carry more idle lanes), so effective weights are
// damped by a power law. The interconnect factor accounts for the bus
// sensitivity the paper's platform exhibits — routing, repeaters and FIFO
// buffering that our gate model does not instantiate — and is calibrated
// once so the bus/memory soft-error ratio of Table I's first row is
// reproduced, then held fixed across all ten configurations.
const (
	memWeightExp        = 0.85
	busInterconnectBase = 12000.0
	cpuWeightBase       = 600.0
)

// cpuISAFactor reflects how much larger the real core is than the scaled
// model, growing with ISA complexity and register width.
var cpuISAFactor = map[string]float64{
	"RV32I": 1.0, "RV32IM": 1.4, "RV32IMF": 2.2, "RV32IMAFD": 3.2, "RV64I": 2.6,
}

// Weights returns the per-cell representation-weight function for a
// benchmark: the number of physical sensitive elements each simulated cell
// stands for when upset rates are extrapolated. Within the memory block,
// the array scaling applies only to the storage bit cells; the decoder and
// read-tree periphery scales like ordinary logic, and rad-hard macros
// harden their periphery too (the periphery factor below).
func Weights(cfg Config) func(c *netlist.FlatCell) float64 {
	memW := math.Pow(cfg.MemWeight(), memWeightExp)
	busW := busInterconnectBase * math.Sqrt(cfg.BusWeight())
	cpuW := cpuWeightBase * cpuISAFactor[cfg.ISA]
	if cpuW == 0 {
		cpuW = cpuWeightBase
	}
	periphery := cpuWeightBase
	if cfg.MemType == "RadHardSRAM" {
		periphery *= 0.08
	}
	return func(c *netlist.FlatCell) float64 {
		switch {
		case strings.HasPrefix(c.FunctionalBlock(), "u_mem"):
			if c.Def.Class == cell.Memory {
				return memW
			}
			return periphery
		case strings.HasPrefix(c.FunctionalBlock(), "u_bus"):
			return busW
		case strings.HasPrefix(c.FunctionalBlock(), "u_cpu"):
			return cpuW
		default: // control logic and top-level glue
			return cpuWeightBase
		}
	}
}

// ModuleOf maps a cell to its Table I module group: "Memory", "Bus",
// "CPU Logic" (control/glue counts as CPU logic, as the paper folds
// everything outside bus and memory into the CPU column).
func ModuleOf(c *netlist.FlatCell) string {
	blk := c.FunctionalBlock()
	switch {
	case strings.HasPrefix(blk, "u_mem"):
		return "Memory"
	case strings.HasPrefix(blk, "u_bus"):
		return "Bus"
	default:
		return "CPU Logic"
	}
}
