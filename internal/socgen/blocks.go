package socgen

import (
	"fmt"

	"repro/internal/netlist"
)

// busNames returns the scalar net names of a bus port, LSB first.
func busNames(base string, w int) []string {
	names := make([]string, w)
	for i := range names {
		names[i] = fmt.Sprintf("%s[%d]", base, i)
	}
	return names
}

// adapt truncates or zero-pads a bus to the requested width.
func adapt(b *builder, nets []string, w int) []string {
	out := make([]string, w)
	for i := 0; i < w; i++ {
		if i < len(nets) {
			out[i] = nets[i]
		} else {
			out[i] = b.tie0()
		}
	}
	return out
}

// genALU builds the w-bit ALU module: y = op-selected {xor, and, or, add}.
func genALU(d *netlist.Design, w int) string {
	name := fmt.Sprintf("alu_w%d", w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	a := m.AddBusPort("a", w, netlist.Input)
	bIn := m.AddBusPort("b", w, netlist.Input)
	m.AddPort("op0", netlist.Input)
	m.AddPort("op1", netlist.Input)
	y := m.AddBusPort("y", w, netlist.Output)
	b := newBuilder(m)
	tXor := b.xorBus(a, bIn)
	tAnd := b.andBus(a, bIn)
	tOr := b.orBus(a, bIn)
	tAdd := b.adder(a, bIn)
	m0 := b.mux2Bus(tXor, tAnd, "op0")
	m1 := b.mux2Bus(tOr, tAdd, "op0")
	res := b.mux2Bus(m0, m1, "op1")
	for i := range y {
		b.inst("yb", "BUFX2", map[string]string{"A": res[i], "Y": y[i]})
	}
	d.AddModule(m)
	return name
}

// genRegfile builds a 4-entry register file with one write and one read
// port, the storage-heavy CPU block.
func genRegfile(d *netlist.Design, w int) string {
	name := fmt.Sprintf("regfile_w%d", w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("we", netlist.Input)
	m.AddPort("waddr0", netlist.Input)
	m.AddPort("waddr1", netlist.Input)
	m.AddPort("raddr0", netlist.Input)
	m.AddPort("raddr1", netlist.Input)
	wdata := m.AddBusPort("wdata", w, netlist.Input)
	rdata := m.AddBusPort("rdata", w, netlist.Output)
	b := newBuilder(m)
	wsel := b.decode2("waddr0", "waddr1")
	var regs [4][]string
	for r := 0; r < 4; r++ {
		en := b.and2(wsel[r], "we")
		regs[r] = make([]string, w)
		for i := 0; i < w; i++ {
			regs[r][i] = b.dffe(wdata[i], "clk", en)
		}
	}
	for i := 0; i < w; i++ {
		lo := b.mux2(regs[0][i], regs[1][i], "raddr0")
		hi := b.mux2(regs[2][i], regs[3][i], "raddr0")
		sel := b.mux2(lo, hi, "raddr1")
		b.inst("rb", "BUFX2", map[string]string{"A": sel, "Y": rdata[i]})
	}
	d.AddModule(m)
	return name
}

// genMul builds a 4x4 array multiplier producing the low 4 product bits,
// standing in for the M-extension datapath.
func genMul(d *netlist.Design) string {
	const name = "mul4"
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	a := m.AddBusPort("a", 4, netlist.Input)
	bIn := m.AddBusPort("b", 4, netlist.Input)
	p := m.AddBusPort("p", 4, netlist.Output)
	b := newBuilder(m)
	// Partial products pp[i][j] = a[j] & b[i], then ripple accumulation.
	acc := make([]string, 4)
	for j := 0; j < 4; j++ {
		acc[j] = b.and2(a[j], bIn[0])
	}
	for i := 1; i < 4; i++ {
		row := make([]string, 4)
		for j := 0; j < 4; j++ {
			if i+j < 4 {
				row[i+j] = b.and2(a[j], bIn[i])
			}
		}
		for j := range row {
			if row[j] == "" {
				row[j] = b.tie0()
			}
		}
		acc = b.adder(acc, row)
	}
	for i := range p {
		b.inst("pb", "BUFX2", map[string]string{"A": acc[i], "Y": p[i]})
	}
	d.AddModule(m)
	return name
}

// genFPU builds the floating-point stand-in block: three chained adders
// with xor diffusion, giving the deep combinational cone an FPU contributes.
func genFPU(d *netlist.Design, w int) string {
	name := fmt.Sprintf("fpu_w%d", w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	a := m.AddBusPort("a", w, netlist.Input)
	bIn := m.AddBusPort("b", w, netlist.Input)
	f := m.AddBusPort("f", w, netlist.Output)
	b := newBuilder(m)
	s1 := b.adder(a, bIn)
	s2 := b.adder(s1, b.rotate(a))
	s3 := b.adder(s2, b.xorBus(bIn, b.rotate(s1)))
	for i := range f {
		b.inst("fb", "BUFX2", map[string]string{"A": s3[i], "Y": f[i]})
	}
	d.AddModule(m)
	return name
}

// genFetch builds the program-counter stage: an async-reset register with
// an incrementer loop.
func genFetch(d *netlist.Design, w int) string {
	name := fmt.Sprintf("fetch_w%d", w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	pc := m.AddBusPort("pc", w, netlist.Output)
	b := newBuilder(m)
	q := make([]string, w)
	dIn := make([]string, w)
	for i := 0; i < w; i++ {
		dIn[i] = b.wire("pcd")
	}
	for i := 0; i < w; i++ {
		q[i] = b.dff(dIn[i], "clk", "rstn")
	}
	next := b.incrementer(q)
	for i := 0; i < w; i++ {
		b.inst("pcl", "BUFX2", map[string]string{"A": next[i], "Y": dIn[i]})
	}
	for i := range pc {
		b.inst("pcb", "BUFX2", map[string]string{"A": q[i], "Y": pc[i]})
	}
	d.AddModule(m)
	return name
}

// genDecode builds the decode stage: instruction register plus control
// extraction (two op bits from parity trees, an immediate from diffusion).
func genDecode(d *netlist.Design, w int) string {
	name := fmt.Sprintf("decode_w%d", w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	pc := m.AddBusPort("pc", w, netlist.Input)
	rdata := m.AddBusPort("rdata", w, netlist.Input)
	m.AddPort("op0", netlist.Output)
	m.AddPort("op1", netlist.Output)
	imm := m.AddBusPort("imm", w, netlist.Output)
	b := newBuilder(m)
	instrComb := b.xorBus(pc, rdata)
	instr := b.register(instrComb, "clk", "rstn")
	lo, hi := instr[:w/2], instr[w/2:]
	b.inst("op0b", "BUFX2", map[string]string{"A": b.xorN(lo), "Y": "op0"})
	b.inst("op1b", "BUFX2", map[string]string{"A": b.xorN(hi), "Y": "op1"})
	diff := b.xorBus(instr, b.rotate(instr))
	for i := range imm {
		b.inst("immb", "BUFX2", map[string]string{"A": diff[i], "Y": imm[i]})
	}
	d.AddModule(m)
	return name
}

// genCPUCore assembles fetch, decode, ALU, register file and the optional
// M/FPU blocks into one core module named for its ISA.
func genCPUCore(d *netlist.Design, cfg Config) string {
	w := cfg.DataWidth
	name := fmt.Sprintf("cpu_core_%s_w%d", cfg.ISA, w)
	if _, ok := d.Modules[name]; ok {
		return name
	}
	aluName := genALU(d, w)
	rfName := genRegfile(d, w)
	fetchName := genFetch(d, w)
	decName := genDecode(d, w)
	var mulName, fpuName string
	if cfg.HasMul() {
		mulName = genMul(d)
	}
	if cfg.HasFPU() {
		fpuName = genFPU(d, w)
	}

	m := netlist.NewModule(name)
	m.AddPort("clk", netlist.Input)
	m.AddPort("rstn", netlist.Input)
	rdata := m.AddBusPort("rdata", w, netlist.Input)
	accOut := m.AddBusPort("acc", w, netlist.Output)
	b := newBuilder(m)

	pc := b.m.AddBusWire("pc", w)
	conns := map[string]string{"clk": "clk", "rstn": "rstn"}
	for i, n := range pc {
		conns[fmt.Sprintf("pc[%d]", i)] = n
	}
	m.AddInstance("u_fetch", fetchName, conns)

	imm := b.m.AddBusWire("imm", w)
	dconns := map[string]string{"clk": "clk", "rstn": "rstn", "op0": m.AddWire("op0"), "op1": m.AddWire("op1")}
	for i := range pc {
		dconns[fmt.Sprintf("pc[%d]", i)] = pc[i]
		dconns[fmt.Sprintf("rdata[%d]", i)] = rdata[i]
		dconns[fmt.Sprintf("imm[%d]", i)] = imm[i]
	}
	m.AddInstance("u_decode", decName, dconns)

	// Register-file read feeds the ALU A input; the ALU result is written
	// back, closing the dataflow loop through storage.
	rfRead := b.m.AddBusWire("rf_rd", w)
	aluY := b.m.AddBusWire("alu_y", w)
	rfconns := map[string]string{
		"clk": "clk", "we": b.tie1(),
		"waddr0": pc[0], "waddr1": pc[1],
		"raddr0": pc[1], "raddr1": pc[2%w],
	}
	for i := 0; i < w; i++ {
		rfconns[fmt.Sprintf("wdata[%d]", i)] = aluY[i]
		rfconns[fmt.Sprintf("rdata[%d]", i)] = rfRead[i]
	}
	m.AddInstance("u_regfile", rfName, rfconns)

	// ALU B input mixes the bus data with the decoded immediate.
	bIn := b.xorBus(adapt(b, rdata, w), imm)
	aconns := map[string]string{"op0": "op0", "op1": "op1"}
	for i := 0; i < w; i++ {
		aconns[fmt.Sprintf("a[%d]", i)] = rfRead[i]
		aconns[fmt.Sprintf("b[%d]", i)] = bIn[i]
		aconns[fmt.Sprintf("y[%d]", i)] = aluY[i]
	}
	m.AddInstance("u_alu", aluName, aconns)

	result := aluY
	if mulName != "" {
		p := b.m.AddBusWire("mul_p", 4)
		mconns := map[string]string{}
		for i := 0; i < 4; i++ {
			mconns[fmt.Sprintf("a[%d]", i)] = rfRead[i]
			mconns[fmt.Sprintf("b[%d]", i)] = bIn[i]
			mconns[fmt.Sprintf("p[%d]", i)] = p[i]
		}
		m.AddInstance("u_mul", mulName, mconns)
		mixed := make([]string, w)
		copy(mixed, result)
		for i := 0; i < 4 && i < w; i++ {
			mixed[i] = b.xor2(result[i], p[i])
		}
		result = mixed
	}
	if fpuName != "" {
		f := b.m.AddBusWire("fpu_f", w)
		fconns := map[string]string{}
		for i := 0; i < w; i++ {
			fconns[fmt.Sprintf("a[%d]", i)] = rfRead[i]
			fconns[fmt.Sprintf("b[%d]", i)] = bIn[i]
			fconns[fmt.Sprintf("f[%d]", i)] = f[i]
		}
		m.AddInstance("u_fpu", fpuName, fconns)
		mixed := make([]string, w)
		for i := 0; i < w; i++ {
			mixed[i] = b.xor2(result[i], f[i])
		}
		result = mixed
	}

	// Accumulator register drives the core outputs.
	acc := b.register(result, "clk", "rstn")
	for i := range accOut {
		b.inst("accb", "BUFX2", map[string]string{"A": acc[i], "Y": accOut[i]})
	}
	d.AddModule(m)
	return name
}
