// Package sweep serves whole experiment grids from one distributed
// queue. The paper's headline results are grids of campaigns — Table I
// runs every SoC benchmark, Table III crosses fluxes with engines, the
// LET sweep re-runs one benchmark at each tabulated LET — and a
// SweepSpec enumerates such a grid as an ordered list of
// shard.CampaignSpecs, each with its own fingerprint. A cross-campaign
// Pool interleaves every campaign's shards into a single lease pool with
// golden-run-affinity ordering (a worker keeps draining the campaign
// whose golden run it has already built and cached before switching
// fingerprints), campaigns merge independently the moment their last
// shard lands, and the merged results feed back into the ssresf
// renderers bit-identically to the in-process drivers. One runstore
// journal holds the whole sweep, namespaced per campaign fingerprint,
// so a killed sweep — local or coordinated — resumes without re-running
// any journaled shard.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/shard"
)

// Item is one campaign of a sweep: a human-meaningful key (unique within
// the sweep, used for progress lines and per-campaign output files) and
// the self-contained campaign description.
type Item struct {
	Key      string             `json:"key"`
	Campaign shard.CampaignSpec `json:"campaign"`
}

// SweepSpec is the wire-format description of one experiment grid: an
// ordered list of campaigns. Order matters twice — it is the campaign
// build/open order of a coordinator and the scan order of schedulers and
// aggregators — so two processes holding equal specs drive identical
// sweeps.
type SweepSpec struct {
	Name  string `json:"name"`
	Items []Item `json:"items"`
}

// Validate rejects sweeps that could not execute: empty grids, invalid
// member campaigns, duplicate keys, and duplicate campaigns. Duplicate
// campaign fingerprints are rejected because the journal and the
// coordinator protocol route everything by fingerprint; a grid that
// wants the same campaign twice should reference one run's result twice
// instead.
func (ss SweepSpec) Validate() error {
	if len(ss.Items) == 0 {
		return fmt.Errorf("sweep: spec %q holds no campaigns", ss.Name)
	}
	keys := make(map[string]bool, len(ss.Items))
	fps := make(map[string]string, len(ss.Items))
	for _, it := range ss.Items {
		if it.Key == "" {
			return fmt.Errorf("sweep: %q: campaign with empty key", ss.Name)
		}
		if keys[it.Key] {
			return fmt.Errorf("sweep: %q: duplicate campaign key %q", ss.Name, it.Key)
		}
		keys[it.Key] = true
		if err := it.Campaign.Validate(); err != nil {
			return fmt.Errorf("sweep: %q: campaign %q: %v", ss.Name, it.Key, err)
		}
		fp, err := it.Campaign.Fingerprint()
		if err != nil {
			return fmt.Errorf("sweep: %q: campaign %q: %v", ss.Name, it.Key, err)
		}
		if prev, ok := fps[fp]; ok {
			return fmt.Errorf("sweep: %q: campaigns %q and %q are identical (fingerprint %.12s)", ss.Name, prev, it.Key, fp)
		}
		fps[fp] = it.Key
	}
	return nil
}

// Fingerprint is the sweep's identity: a hash over the member campaign
// fingerprints in sweep order (keys and name are presentation, not
// identity). Two sweeps with the same fingerprint lease out exactly the
// same shard universe.
func (ss SweepSpec) Fingerprint() (string, error) {
	h := sha256.New()
	for _, it := range ss.Items {
		fp, err := it.Campaign.Fingerprint()
		if err != nil {
			return "", fmt.Errorf("sweep: %q: campaign %q: %v", ss.Name, it.Key, err)
		}
		h.Write([]byte(fp))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Fingerprints returns the member campaign fingerprints as a set — the
// shape runstore.CountAny consumes.
func (ss SweepSpec) Fingerprints() (map[string]bool, error) {
	out := make(map[string]bool, len(ss.Items))
	for _, it := range ss.Items {
		fp, err := it.Campaign.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("sweep: %q: campaign %q: %v", ss.Name, it.Key, err)
		}
		out[fp] = true
	}
	return out, nil
}
