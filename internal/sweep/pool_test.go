package sweep

import (
	"errors"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/shard"
)

// poolSpec fabricates a distinct small campaign; pool tests never build
// or simulate anything.
func poolSpec(seed uint64) shard.CampaignSpec {
	cs := shard.SpecFromOptions(1, "memcpy", inject.DefaultOptions())
	cs.SampleFrac = 0.05
	cs.MinPer = 2
	cs.Seed = seed
	return cs
}

// poolOf builds a pool over n fabricated campaigns, each opened with
// shardsPer fake shards of jobsPer jobs.
func poolOf(t *testing.T, n, shardsPer, jobsPer int) (*Pool, [][]shard.Spec) {
	t.Helper()
	var items []Item
	for i := 0; i < n; i++ {
		items = append(items, Item{Key: string(rune('a' + i)), Campaign: poolSpec(uint64(i + 1))})
	}
	p, err := NewPool(SweepSpec{Name: "test", Items: items}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([][]shard.Spec, n)
	for i, it := range items {
		specs, err := shard.Plan(it.Campaign, shardsPer, jobsPer)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = specs
		if _, err := p.Open(i, specs, nil); err != nil {
			t.Fatal(err)
		}
	}
	return p, plans
}

// fakePartial fabricates a partial covering a shard spec.
func fakePartial(sp shard.Spec) *shard.Partial {
	p := &shard.Partial{Index: sp.Index, Start: sp.Start, End: sp.End}
	for i := sp.Start; i < sp.End; i++ {
		p.Injections = append(p.Injections, inject.Injection{CellID: i, Path: "stub", TimePS: uint64(i)})
	}
	return p
}

// TestPoolAffinityKeepsWorkerOnItsCampaign pins the golden-run-affinity
// ordering: a worker that just executed a shard of campaign A is handed
// A's shards while any are pending — even after completing, when A
// momentarily has no active lease — and a second worker is steered to
// the campaign with the fewest active workers instead of convoying.
func TestPoolAffinityKeepsWorkerOnItsCampaign(t *testing.T) {
	p, _ := poolOf(t, 2, 3, 9)
	now := time.Unix(1000, 0)

	l1, ok := p.Lease("w1", now)
	if !ok {
		t.Fatal("first lease refused")
	}
	fpA := l1.Spec.Fingerprint

	// A second worker must not pile onto campaign A while B is untouched.
	l2, ok := p.Lease("w2", now)
	if !ok {
		t.Fatal("second lease refused")
	}
	if l2.Spec.Fingerprint == fpA {
		t.Fatal("second worker convoyed onto the first campaign")
	}

	// w1 completes its shard; with no active lease anywhere on A, naive
	// least-loaded scheduling would bounce w1 to B — affinity must keep
	// it on A, where its golden run is cached.
	if err := p.Complete(fpA, l1.ID, 0, fakePartial(l1.Spec), now); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		l, ok := p.Lease("w1", now)
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		if l.Spec.Fingerprint != fpA {
			t.Fatalf("worker switched campaigns with its own still pending (lease %d)", i)
		}
		if err := p.Complete(fpA, l.ID, 0, fakePartial(l.Spec), now); err != nil {
			t.Fatal(err)
		}
	}
	// Campaign A drained: now w1 may switch to B.
	l, ok := p.Lease("w1", now)
	if !ok {
		t.Fatal("lease after draining own campaign refused")
	}
	if l.Spec.Fingerprint == fpA {
		t.Fatal("drained campaign leased again")
	}
}

// TestPoolIncrementalOpenAndCompletion pins the coordinator lifecycle:
// campaigns lease only once opened, completion notifications arrive per
// campaign the moment its last shard lands, and a fully journaled
// campaign completes without any lease.
func TestPoolIncrementalOpenAndCompletion(t *testing.T) {
	items := []Item{
		{Key: "a", Campaign: poolSpec(1)},
		{Key: "b", Campaign: poolSpec(2)},
	}
	p, err := NewPool(SweepSpec{Name: "test", Items: items}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	if _, ok := p.Lease("w", now); ok {
		t.Fatal("lease granted before any campaign opened")
	}
	if p.Done() {
		t.Fatal("empty pool reports done")
	}

	specsA, err := shard.Plan(items[0].Campaign, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(0, specsA, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(0, specsA, nil); err == nil {
		t.Fatal("double open accepted")
	}
	// Campaign b opens later, fully covered by journal records.
	l, ok := p.Lease("w", now)
	if !ok || l.Spec.Fingerprint != cfpOf(t, items[0].Campaign) {
		t.Fatalf("lease %+v, want campaign a", l)
	}
	if err := p.Complete(l.Spec.Fingerprint, l.ID, 0, fakePartial(l.Spec), now); err != nil {
		t.Fatal(err)
	}
	l2, _ := p.Lease("w", now)
	if err := p.Complete(l2.Spec.Fingerprint, l2.ID, 0, fakePartial(l2.Spec), now); err != nil {
		t.Fatal(err)
	}
	select {
	case idx := <-p.Completed():
		if idx != 0 {
			t.Fatalf("campaign %d completed first, want 0", idx)
		}
	default:
		t.Fatal("campaign a completion not signalled")
	}
	if p.Done() {
		t.Fatal("pool done with campaign b unopened")
	}

	specsB, err := shard.Plan(items[1].Campaign, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[int]*shard.Partial{}
	for _, sp := range specsB {
		journaled[sp.Index] = fakePartial(sp)
	}
	restored, err := p.Open(1, specsB, journaled)
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(specsB) {
		t.Fatalf("Open restored %d journaled shards, want %d", restored, len(specsB))
	}
	select {
	case idx := <-p.Completed():
		if idx != 1 {
			t.Fatalf("campaign %d completed, want 1", idx)
		}
	default:
		t.Fatal("journal-completed campaign not signalled")
	}
	if !p.Done() {
		t.Fatal("pool not done after both campaigns")
	}
	select {
	case <-p.WaitDone():
	default:
		t.Fatal("WaitDone channel not closed")
	}
	if got := p.Partials(1); len(got) != len(specsB) {
		t.Fatalf("campaign b kept %d partials, want %d", len(got), len(specsB))
	}
}

// TestPoolOpenSkipsStaleJournal pins the resume contract: journal
// records whose range does not match the current shard plan (e.g. a
// journal written under a different shard count) are skipped — their
// shards lease and run again — never merged, and a journaled shard is
// never leasable because Open restores it atomically.
func TestPoolOpenSkipsStaleJournal(t *testing.T) {
	items := []Item{{Key: "a", Campaign: poolSpec(1)}}
	p, err := NewPool(SweepSpec{Name: "test", Items: items}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := shard.Plan(items[0].Campaign, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	stale := fakePartial(specs[0])
	stale.End++ // journaled under a different plan
	good := fakePartial(specs[1])
	restored, err := p.Open(0, specs, map[int]*shard.Partial{0: stale, 1: good})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("Open restored %d shards, want only the covering one", restored)
	}
	now := time.Unix(1000, 0)
	l, ok := p.Lease("w", now)
	if !ok || l.Spec.Index != 0 {
		t.Fatalf("lease %+v, want the stale-journaled shard 0 to run again", l)
	}
	if _, ok := p.Lease("w", now); ok {
		t.Fatal("journal-restored shard leased out")
	}
}

// TestPoolProgressDoesNotMixCampaigns pins the per-campaign progress
// satellite: each campaign block counts only its own shards, and the
// ETA derives from that campaign's observed shard runtime alone.
func TestPoolProgressDoesNotMixCampaigns(t *testing.T) {
	p, plans := poolOf(t, 2, 3, 9)
	now := time.Unix(1000, 0)

	// Complete one shard of campaign a (10s runtime) and lease one of b.
	la, ok := p.Lease("wa", now)
	if !ok {
		t.Fatal("lease refused")
	}
	fpA := plans[0][0].Fingerprint
	if la.Spec.Fingerprint != fpA {
		t.Fatal("first lease not from campaign a")
	}
	if err := p.Complete(fpA, la.ID, 0, fakePartial(la.Spec), now.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lease("wb", now.Add(10*time.Second)); !ok {
		t.Fatal("lease refused")
	}

	sp := p.Progress(now.Add(10 * time.Second))
	if sp.CampaignsTotal != 2 || sp.CampaignsDone != 0 || sp.Done {
		t.Fatalf("sweep progress %+v", sp)
	}
	a, b := sp.Campaigns[0], sp.Campaigns[1]
	if a.Shards.Done != 1 || a.Shards.Total != 3 {
		t.Fatalf("campaign a shards %+v", a.Shards)
	}
	if b.Shards.Done != 0 || b.Shards.Leased != 1 || b.Shards.Total != 3 {
		t.Fatalf("campaign b shards %+v", b.Shards)
	}
	if a.Shards.AvgShardNS != int64(10*time.Second) {
		t.Fatalf("campaign a avg shard %v", time.Duration(a.Shards.AvgShardNS))
	}
	if b.Shards.AvgShardNS != 0 || b.ETANS != 0 {
		t.Fatalf("campaign b inherited a's runtime: %+v", b)
	}
	// a: avg 10s, 2 remaining (1 pending + 1 leased)... a has 1 done, 1
	// leased? No: wa completed its lease, then wb went to b. a has 1 done,
	// 2 pending, 0 leased -> ETA = 10s * 2 / 1.
	if want := int64(20 * time.Second); a.ETANS != want {
		t.Fatalf("campaign a ETA %v, want %v", time.Duration(a.ETANS), time.Duration(want))
	}
}

// TestPoolRoutesByFingerprint pins completion/renewal routing: results
// and heartbeats carry the campaign fingerprint, and a wrong one is
// refused instead of corrupting another campaign's queue.
func TestPoolRoutesByFingerprint(t *testing.T) {
	p, plans := poolOf(t, 2, 2, 4)
	now := time.Unix(1000, 0)
	l, ok := p.Lease("w", now)
	if !ok {
		t.Fatal("lease refused")
	}
	other := plans[1][0].Fingerprint
	if l.Spec.Fingerprint == other {
		other = plans[0][0].Fingerprint
	}
	if err := p.Complete("nonsense", l.ID, 0, fakePartial(l.Spec), now); err == nil {
		t.Fatal("unknown fingerprint accepted")
	}
	if _, err := p.Renew(other, l.ID, now); err == nil {
		t.Fatal("renewal routed to the wrong campaign succeeded")
	}
	if _, err := p.Renew(l.Spec.Fingerprint, l.ID, now.Add(30*time.Second)); err != nil {
		t.Fatalf("legitimate renewal failed: %v", err)
	}
	// The renewal kept the lease alive past the original TTL: other
	// shards may lease at +80s, but never the renewed one.
	for {
		stolen, ok := p.Lease("thief", now.Add(80*time.Second))
		if !ok {
			break
		}
		if stolen.Spec.Fingerprint == l.Spec.Fingerprint && stolen.Spec.Index == l.Spec.Index {
			t.Fatal("renewed lease's shard re-issued before its extended deadline")
		}
	}
	if err := p.Complete(l.Spec.Fingerprint, l.ID, 0, fakePartial(l.Spec), now.Add(85*time.Second)); err != nil {
		t.Fatalf("completion after renewal rejected: %v", err)
	}
}

// TestPoolSpeculativeReissue pins straggler re-issue at the sweep level:
// with every shard of the grid either done or leased, an idle worker is
// handed a backup of the straggling shard — and the speculative
// duplicate resolves first-wins, whichever copy lands second refused.
func TestPoolSpeculativeReissue(t *testing.T) {
	p, _ := poolOf(t, 1, 2, 8)
	now := time.Unix(1000, 0)

	slow, ok := p.Lease("slow", now)
	if !ok {
		t.Fatal("lease refused")
	}
	fast, ok := p.Lease("fast", now)
	if !ok {
		t.Fatal("lease refused")
	}
	// fast finishes in 5s (the baseline); slow straggles.
	if err := p.Complete(fast.Spec.Fingerprint, fast.ID, 0, fakePartial(fast.Spec), now.Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Below the threshold the idle worker gets nothing.
	if _, ok := p.Lease("idle", now.Add(10*time.Second)); ok {
		t.Fatal("speculated below the straggler threshold")
	}
	// Past 3x the baseline the pool re-issues the straggler's shard.
	backup, ok := p.Lease("idle", now.Add(20*time.Second))
	if !ok {
		t.Fatal("idle worker not handed a straggler backup")
	}
	if backup.Spec.Index != slow.Spec.Index || backup.Spec.Fingerprint != slow.Spec.Fingerprint {
		t.Fatalf("backup covers %.12s shard %d, straggler is %.12s shard %d",
			backup.Spec.Fingerprint, backup.Spec.Index, slow.Spec.Fingerprint, slow.Spec.Index)
	}
	// First completion wins; the straggler's late copy is refused and the
	// sweep completes exactly once.
	if err := p.Complete(backup.Spec.Fingerprint, backup.ID, 0, fakePartial(backup.Spec), now.Add(21*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Complete(slow.Spec.Fingerprint, slow.ID, 0, fakePartial(slow.Spec), now.Add(22*time.Second)); err == nil {
		t.Fatal("speculative duplicate double-merged")
	}
	if !p.Done() {
		t.Fatal("sweep not done")
	}
	if pr := p.Progress(now.Add(22 * time.Second)); pr.Campaigns[0].Shards.Speculated != 1 {
		t.Fatalf("progress %+v, want 1 speculated", pr.Campaigns[0].Shards)
	}
}

// TestPoolSpeculationDisabled: factor <= 0 switches the backup-task path
// off entirely.
func TestPoolSpeculationDisabled(t *testing.T) {
	p, _ := poolOf(t, 1, 2, 8)
	p.SetSpeculateFactor(0)
	now := time.Unix(1000, 0)
	slow, _ := p.Lease("slow", now)
	fast, _ := p.Lease("fast", now)
	if err := p.Complete(fast.Spec.Fingerprint, fast.ID, 0, fakePartial(fast.Spec), now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lease("idle", now.Add(30*time.Second)); ok {
		t.Fatal("speculated with speculation disabled")
	}
	_ = slow
}

// TestPoolEpochThreading pins the fence at the pool level: SetEpoch
// reaches queues opened both before and after the call, leases carry it,
// and a stale-epoch duplicate is fenced with shard.ErrStaleEpoch while a
// pre-takeover completion of an unfinished shard is still accepted.
func TestPoolEpochThreading(t *testing.T) {
	p, plans := poolOf(t, 2, 2, 8)
	p.SetEpoch(3)
	now := time.Unix(1000, 0)

	zombie, ok := p.Lease("zombie", now)
	if !ok {
		t.Fatal("lease refused")
	}
	if zombie.Epoch != 3 {
		t.Fatalf("lease epoch %d, want 3", zombie.Epoch)
	}
	// Takeover: epoch bumps under live leases.
	p.SetEpoch(4)
	if err := p.Complete(zombie.Spec.Fingerprint, zombie.ID, zombie.Epoch, fakePartial(zombie.Spec), now); err != nil {
		t.Fatalf("first-wins completion under an old epoch rejected: %v", err)
	}
	err := p.Complete(zombie.Spec.Fingerprint, zombie.ID, zombie.Epoch, fakePartial(zombie.Spec), now)
	if !errors.Is(err, shard.ErrStaleEpoch) {
		t.Fatalf("stale duplicate not fenced: %v", err)
	}
	// Queues already open when the epoch bumps grant the new one.
	l, ok := p.Lease("w", now)
	if !ok {
		t.Fatal("lease refused")
	}
	if l.Epoch != 4 {
		t.Fatalf("post-bump lease epoch %d, want 4", l.Epoch)
	}
	_ = plans
}
