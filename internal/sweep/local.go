package sweep

import (
	"fmt"

	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
)

// LocalOptions tunes RunLocal. Everything here is per-process execution
// shape — none of it reaches the campaign fingerprints, so a locally-run
// sweep and a coordinated one journal and merge interchangeably.
type LocalOptions struct {
	// Shards is the per-campaign shard count (minimum 1); campaigns with
	// fewer planned injections degrade to fewer shards.
	Shards int
	// Journal appends every completed shard to this runstore file; Resume
	// reloads it first and skips recorded shards.
	Journal string
	Resume  bool
	// Checkpoint overrides the golden checkpoint pitch (0 = default).
	Checkpoint int
	// Logf receives per-campaign progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// RunLocal executes every campaign of a sweep in this process, sharded,
// journaled and resumable, and returns the merged results keyed by
// campaign fingerprint — the map Grid.Render consumes. Campaigns run in
// sweep order, each built once, executed shard by shard and merged
// bit-identically to its single-process run; the journal is namespaced
// per fingerprint, so one file covers the whole grid and a killed sweep
// resumes mid-campaign without re-running any journaled shard. The same
// journal also resumes under a campaignd sweep coordinator, and vice
// versa.
func RunLocal(ss SweepSpec, o LocalOptions) (map[string]*inject.Result, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	journaled := map[string]map[int]*shard.Partial{}
	if o.Resume && o.Journal != "" {
		var dropped int
		var err error
		if journaled, dropped, err = runstore.LoadAll(o.Journal); err != nil {
			return nil, err
		}
		if dropped > 0 {
			logf("sweep: journal %s: skipped %d record(s) with integrity checksum mismatch; those shards re-simulate", o.Journal, dropped)
		}
	}
	var store *runstore.Store
	if o.Journal != "" {
		var err error
		if store, err = runstore.Open(o.Journal); err != nil {
			return nil, err
		}
		defer store.Close()
	}

	results := make(map[string]*inject.Result, len(ss.Items))
	for _, it := range ss.Items {
		b, err := shard.BuildLocal(it.Campaign, func(opts *inject.Options) {
			opts.CheckpointEveryCycles = o.Checkpoint
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: campaign %q: %v", it.Key, err)
		}
		specs, err := shard.PlanAtMost(it.Campaign, o.Shards, len(b.Jobs))
		if err != nil {
			return nil, fmt.Errorf("sweep: campaign %q: %v", it.Key, err)
		}
		done := journaled[b.Fingerprint]
		partials := make([]*shard.Partial, 0, len(specs))
		resumed := 0
		for _, sp := range specs {
			if p, ok := done[sp.Index]; ok && p.Covers(sp) {
				partials = append(partials, p)
				resumed++
				continue
			}
			p, err := shard.ExecuteOn(b, sp)
			if err != nil {
				return nil, fmt.Errorf("sweep: campaign %q shard %d: %v", it.Key, sp.Index, err)
			}
			if store != nil {
				if err := store.Append(b.Fingerprint, p); err != nil {
					return nil, err
				}
			}
			partials = append(partials, p)
		}
		res, err := shard.Merge(b, partials)
		if err != nil {
			return nil, fmt.Errorf("sweep: campaign %q: %v", it.Key, err)
		}
		results[b.Fingerprint] = res
		logf("sweep: campaign %s (%.12s): %d injections in %d shards, %d resumed from journal",
			it.Key, b.Fingerprint, len(res.Injections), len(specs), resumed)
	}
	return results, nil
}
