package sweep

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Pool is the cross-campaign scheduler: every member campaign's shards
// feed one lease pool, so a worker fleet drains a whole experiment grid
// through a single lease/complete loop. Like shard.Queue it is pure
// bookkeeping — deterministic under test, clock passed in — and it
// layers three sweep concerns on top of the per-campaign queues:
//
//   - Incremental opening. Planning a campaign's shards requires building
//     it (netlist, golden run, plan), which for a ten-benchmark grid is
//     minutes of coordinator work. Campaigns therefore open one by one as
//     their plans become available, and workers start on the first
//     campaign while later ones are still building.
//
//   - Golden-run-affinity ordering. A worker that just executed a shard
//     of campaign C has C built and cached (golden run, checkpoints,
//     plan); the pool keeps handing it C's shards while any are pending
//     and only then switches it to another campaign — the one with the
//     fewest active workers, so a fleet spreads over the grid instead of
//     convoying. Affinity is a scheduling preference, never a
//     correctness matter: any lease order merges bit-identically.
//
//   - Per-campaign completion. The moment a campaign's last shard lands
//     the pool signals it on Completed(), so the coordinator merges and
//     releases that campaign without waiting for the rest of the grid.
type Pool struct {
	mu         sync.Mutex
	name       string
	sweepFP    string
	items      []Item
	fps        []string
	byFP       map[string]int
	ttl        time.Duration
	epoch      uint64
	specFactor float64
	queues     []*shard.Queue // nil until opened
	restored   []int          // per campaign: shards served from journal/lake at Open
	completed  []bool
	doneCount  int
	affinity   map[string]int // worker -> campaign index of its last lease
	compCh     chan int
	doneCh     chan struct{}
	cancelled  bool
	metrics    *shard.Metrics // applied to every queue, current and future
	obsReg     *obs.Registry  // holds this pool's per-sweep gauges
	events     *eventLog      // ordered progress stream for watchers
	// Integrity & quarantine knobs, applied to every queue current and
	// future like SetMetrics. auditSeed derives each campaign's sampling
	// stream (seed + campaign index) so the decision sequence is
	// deterministic per queue.
	maxAttempts  int
	auditFrac    float64
	auditSeed    int64
	auditStrike  func(worker string)
	auditReplace func(fingerprint string, p *shard.Partial)
}

// DefaultSpeculateFactor is the straggler threshold: a leased shard is
// eligible for speculative re-issue once its age exceeds this multiple
// of the campaign's observed mean shard duration. Three keeps speculation
// rare enough that ordinary shard-size variance (shards of one campaign
// are near-uniform) almost never triggers it.
const DefaultSpeculateFactor = 3.0

// NewPool builds an empty pool over a validated sweep; campaigns become
// leasable as Open is called for each.
func NewPool(ss SweepSpec, ttl time.Duration) (*Pool, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	sweepFP, err := ss.Fingerprint()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		name:       ss.Name,
		sweepFP:    sweepFP,
		items:      ss.Items,
		fps:        make([]string, len(ss.Items)),
		byFP:       make(map[string]int, len(ss.Items)),
		ttl:        ttl,
		specFactor: DefaultSpeculateFactor,
		queues:     make([]*shard.Queue, len(ss.Items)),
		restored:   make([]int, len(ss.Items)),
		completed:  make([]bool, len(ss.Items)),
		affinity:   map[string]int{},
		compCh:     make(chan int, len(ss.Items)),
		doneCh:     make(chan struct{}),
		events:     newEventLog(),
	}
	for i, it := range ss.Items {
		fp, err := it.Campaign.Fingerprint()
		if err != nil {
			return nil, err
		}
		p.fps[i] = fp
		p.byFP[fp] = i
	}
	p.emit("submit", "", -1, "")
	return p, nil
}

// SetEpoch stamps the coordinator epoch onto the pool: every queue
// already open and every queue opened later grants leases carrying it.
// A coordinator calls this once after construction; a standby calls it
// with a strictly higher epoch at takeover, which is what fences the old
// incarnation's zombie completions (shard.ErrStaleEpoch).
func (p *Pool) SetEpoch(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch = epoch
	for _, q := range p.queues {
		if q != nil {
			q.SetEpoch(epoch)
		}
	}
}

// SetSpeculateFactor overrides the straggler threshold; factor <= 0
// disables speculative re-issue entirely.
func (p *Pool) SetSpeculateFactor(factor float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.specFactor = factor
}

// SetMetrics attaches shard-level instrumentation: every queue already
// open and every queue opened later mirrors lease lifecycle events into
// m's counters. Counters are fleet totals shared across sweeps; the
// per-sweep breakdown comes from RegisterObs gauges.
func (p *Pool) SetMetrics(m *shard.Metrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = m
	for _, q := range p.queues {
		if q != nil {
			q.SetMetrics(m)
		}
	}
}

// SetMaxAttempts bounds distinct executions per shard on every queue,
// current and future; a shard reaching the bound is quarantined instead
// of re-issued forever. 0 disables the bound.
func (p *Pool) SetMaxAttempts(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxAttempts = n
	for _, q := range p.queues {
		if q != nil {
			q.SetMaxAttempts(n)
		}
	}
}

// SetAudit samples frac of every campaign's completions for audit
// re-execution on an independent worker. Each campaign's queue gets its
// own deterministic sampling stream derived from seed.
func (p *Pool) SetAudit(frac float64, seed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.auditFrac = frac
	p.auditSeed = seed
	for i, q := range p.queues {
		if q != nil {
			q.SetAudit(frac, seed+int64(i))
		}
	}
}

// SetAuditSink installs the audit outcome callbacks on every queue,
// current and future. strike fires once per outvoted vote with the
// losing worker's name; replace fires with the campaign fingerprint and
// the majority partial whenever an audit overturns a merged original.
// Both run outside all pool and queue locks' critical callback state —
// they must not call back into the pool.
func (p *Pool) SetAuditSink(strike func(worker string), replace func(fingerprint string, partial *shard.Partial)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.auditStrike = strike
	p.auditReplace = replace
	for i, q := range p.queues {
		if q != nil {
			q.SetAuditHooks(strike, p.replaceHook(i))
		}
	}
}

// replaceHook binds a campaign index into the queue-level replace
// callback, adding the fingerprint routing the coordinator needs.
// Callers hold p.mu.
func (p *Pool) replaceHook(idx int) func(*shard.Partial) {
	if p.auditReplace == nil {
		return nil
	}
	fp := p.fps[idx]
	replace := p.auditReplace
	return func(partial *shard.Partial) { replace(fp, partial) }
}

// RegisterObs exports this sweep's live progress as scrape-time gauges on
// r, labeled sweep=<fp12>: campaigns done/total and shard counts summed
// over the open campaigns. Values are computed per scrape from the same
// state Progress reports, so the two can never drift. UnregisterObs (on
// purge) removes them.
func (p *Pool) RegisterObs(r *obs.Registry) {
	fp := shortFP(p.sweepFP)
	count := func(pick func(SweepProgress) float64) func() float64 {
		return func() float64 { return pick(p.Progress(time.Now())) }
	}
	r.NewGaugeFunc("sweep_campaigns_total", "Campaigns in the sweep grid.",
		count(func(sp SweepProgress) float64 { return float64(sp.CampaignsTotal) }), "sweep", fp)
	r.NewGaugeFunc("sweep_campaigns_done", "Campaigns fully merged.",
		count(func(sp SweepProgress) float64 { return float64(sp.CampaignsDone) }), "sweep", fp)
	for name, pick := range map[string]func(shard.Progress) int{
		"sweep_shards_pending":     func(s shard.Progress) int { return s.Pending },
		"sweep_shards_leased":      func(s shard.Progress) int { return s.Leased },
		"sweep_shards_done":        func(s shard.Progress) int { return s.Done },
		"sweep_shards_quarantined": func(s shard.Progress) int { return s.Quarantined },
	} {
		pick := pick
		r.NewGaugeFunc(name, "Shard queue depth summed over open campaigns.", count(func(sp SweepProgress) float64 {
			n := 0
			for _, cp := range sp.Campaigns {
				if cp.Opened {
					n += pick(cp.Shards)
				}
			}
			return float64(n)
		}), "sweep", fp)
	}
	p.mu.Lock()
	p.obsReg = r
	p.mu.Unlock()
}

// UnregisterObs drops the gauges RegisterObs installed — called when the
// sweep is purged, so a long-lived coordinator's exposition does not
// accrete dead sweeps.
func (p *Pool) UnregisterObs() {
	p.mu.Lock()
	r := p.obsReg
	p.obsReg = nil
	p.mu.Unlock()
	if r == nil {
		return
	}
	fp := shortFP(p.sweepFP)
	for _, name := range []string{
		"sweep_campaigns_total", "sweep_campaigns_done",
		"sweep_shards_pending", "sweep_shards_leased", "sweep_shards_done",
		"sweep_shards_quarantined",
	} {
		r.Unregister(name, "sweep", fp)
	}
}

// shortFP truncates a fingerprint to the 12-hex prefix used in labels.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Open makes campaign idx leasable under the given shard plan, first
// restoring any journaled shards — atomically, so no worker can lease a
// journaled shard in between (which would re-simulate work the journal
// already holds). journaled may carry entries from any prior shard plan;
// only those covering a planned shard exactly are restored (keyed by
// shard index), the rest simply run again. It returns how many were
// restored; a campaign fully covered by its journal completes here
// without ever leasing. Every spec must belong to the item's campaign;
// opening twice is an error.
func (p *Pool) Open(idx int, specs []shard.Spec, journaled map[int]*shard.Partial) (restored int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx < 0 || idx >= len(p.items) {
		return 0, fmt.Errorf("sweep: no campaign with index %d", idx)
	}
	if p.queues[idx] != nil {
		return 0, fmt.Errorf("sweep: campaign %q opened twice", p.items[idx].Key)
	}
	if len(specs) == 0 {
		return 0, fmt.Errorf("sweep: campaign %q opened with no shards", p.items[idx].Key)
	}
	for _, sp := range specs {
		if sp.Fingerprint != p.fps[idx] {
			return 0, fmt.Errorf("sweep: shard %d carries fingerprint %.12s, campaign %q is %.12s",
				sp.Index, sp.Fingerprint, p.items[idx].Key, p.fps[idx])
		}
	}
	q := shard.NewQueue(specs, p.ttl)
	q.SetEpoch(p.epoch)
	q.SetMetrics(p.metrics)
	q.SetMaxAttempts(p.maxAttempts)
	if p.auditFrac > 0 {
		q.SetAudit(p.auditFrac, p.auditSeed+int64(idx))
	}
	if p.auditStrike != nil || p.auditReplace != nil {
		q.SetAuditHooks(p.auditStrike, p.replaceHook(idx))
	}
	for _, sp := range specs {
		if partial, ok := journaled[sp.Index]; ok && partial.Covers(sp) {
			if err := q.MarkDone(partial); err != nil {
				return restored, err
			}
			restored++
		}
	}
	p.queues[idx] = q
	p.restored[idx] = restored
	p.notifyIfDone(idx)
	return restored, nil
}

// Lease claims a shard for a worker: first from the campaign the worker
// last leased from (its golden run is warm there), then from the open
// campaign with pending work and the fewest active leases — ties to
// sweep order. When nothing is pending anywhere but shards are still
// leased out, the otherwise-idle worker may receive a speculative backup
// of a straggling shard (see SpeculativeLease on shard.Queue) — one slow
// worker must not serialize a whole grid behind its tail shard. ok is
// false when there is truly nothing to hand out: the sweep is done (Done
// reports true), no shard has straggled, or the remaining campaigns have
// not opened yet; the worker polls again.
func (p *Pool) Lease(worker string, now time.Time) (*shard.Lease, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancelled {
		return nil, false
	}
	if idx, ok := p.affinity[worker]; ok && p.queues[idx] != nil && !p.completed[idx] {
		if l, ok := p.queues[idx].Lease(worker, now); ok {
			return p.granted(l, idx), true
		}
		// Leasing may have quarantined the campaign's last shards in play.
		p.notifyIfDone(idx)
	}
	// Load counts both active leases and workers whose last lease was on
	// the campaign: a worker between leases is invisible to the lease
	// count but — thanks to affinity — about to come back, and a fresh
	// worker should spread to a campaign nobody is attached to.
	attached := make(map[int]int, len(p.affinity))
	for w, idx := range p.affinity {
		if w != worker && !p.completed[idx] {
			attached[idx]++
		}
	}
	best, bestLoad := -1, 0
	for i, q := range p.queues {
		if q == nil || p.completed[i] {
			continue
		}
		pr := q.Progress(now)
		if pr.Pending == 0 {
			continue
		}
		load := pr.Leased + attached[i]
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best == -1 {
		if l, ok := p.audit(worker, now); ok {
			return l, true
		}
		return p.speculate(worker, now)
	}
	l, ok := p.queues[best].Lease(worker, now)
	if !ok {
		// No grant despite pending shards: either the one race we don't
		// have (single lock), or leasing just quarantined the last shards
		// in play — in which case the campaign may have finished.
		p.notifyIfDone(best)
		return nil, false
	}
	p.affinity[worker] = best
	return p.granted(l, best), true
}

// audit hands an idle worker a re-execution of an audit-sampled shard.
// Audits only run when no first-issue work is pending anywhere — they
// are a verification tax, never allowed to starve real progress.
// Callers hold p.mu.
func (p *Pool) audit(worker string, now time.Time) (*shard.Lease, bool) {
	for i := range p.queues {
		if p.queues[i] == nil {
			continue
		}
		if l, ok := p.queues[i].AuditLease(worker, now); ok {
			return p.granted(l, i), true
		}
	}
	return nil, false
}

// granted stamps the sweep's identity onto a freshly issued lease — the
// worker threads it through execution for per-sweep cost attribution —
// and records the grant on the event stream. Callers hold p.mu.
func (p *Pool) granted(l *shard.Lease, idx int) *shard.Lease {
	l.Sweep = shortFP(p.sweepFP)
	typ := "lease"
	if l.Speculative {
		typ = "speculate"
	}
	if l.Audit {
		typ = "audit"
	}
	p.emit(typ, p.fps[idx], l.Spec.Index, l.Worker)
	return l
}

// speculate hands an idle worker a backup lease of a straggling shard,
// preferring the worker's affinity campaign (its golden run is warm
// there, so the backup executes from cache). Callers hold p.mu and have
// established that no shard is pending anywhere.
func (p *Pool) speculate(worker string, now time.Time) (*shard.Lease, bool) {
	if p.specFactor <= 0 {
		return nil, false
	}
	try := func(i int) (*shard.Lease, bool) {
		if p.queues[i] == nil || p.completed[i] {
			return nil, false
		}
		return p.queues[i].SpeculativeLease(worker, now, p.specFactor)
	}
	if idx, ok := p.affinity[worker]; ok {
		if l, ok := try(idx); ok {
			return p.granted(l, idx), true
		}
	}
	for i := range p.queues {
		if l, ok := try(i); ok {
			p.affinity[worker] = i
			return p.granted(l, i), true
		}
	}
	return nil, false
}

// Complete resolves a lease with its shard's partial result, routed by
// campaign fingerprint (lease IDs of expired leases are forgotten, so
// the fingerprint — which the worker knows from the shard spec — is the
// durable routing key). Late completions are accepted per shard.Queue;
// epoch echoes the lease's fencing token (0 when epochs are not in play)
// and stale-epoch duplicates surface as shard.ErrStaleEpoch.
func (p *Pool) Complete(fingerprint, leaseID string, epoch uint64, partial *shard.Partial, now time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.byFP[fingerprint]
	if !ok {
		return fmt.Errorf("sweep: completion names unknown campaign %.12s", fingerprint)
	}
	q, err := p.openQueue(idx)
	if err != nil {
		return err
	}
	shardIdx := -1
	if partial != nil {
		shardIdx = partial.Index
	}
	if err := q.Complete(leaseID, epoch, partial, now); err != nil {
		if errors.Is(err, shard.ErrStaleEpoch) {
			p.emit("fence", fingerprint, shardIdx, "")
		}
		return err
	}
	p.emit("complete", fingerprint, shardIdx, "")
	p.notifyIfDone(idx)
	return nil
}

// Fail resolves a lease with a worker-reported execution failure (a
// panicking shard), routed like Complete. The shard requeues — or, past
// its attempt bound, quarantines, which may finish the campaign in the
// failed state surfaced by Progress.
func (p *Pool) Fail(fingerprint, leaseID, reason string, now time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.byFP[fingerprint]
	if !ok {
		return fmt.Errorf("sweep: failure report names unknown campaign %.12s", fingerprint)
	}
	q, err := p.openQueue(idx)
	if err != nil {
		return err
	}
	if err := q.Fail(leaseID, reason, now); err != nil {
		return err
	}
	p.emit("fail", p.fps[idx], -1, "")
	p.notifyIfDone(idx)
	return nil
}

// Quarantined returns a campaign's quarantined shard indexes with their
// failure reasons (empty when none) — what the coordinator consults
// before merging, so a poisoned campaign fails loudly instead of
// merging an incomplete tiling.
func (p *Pool) Quarantined(idx int) map[int]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx < 0 || idx >= len(p.queues) || p.queues[idx] == nil {
		return nil
	}
	return p.queues[idx].QuarantinedShards()
}

// Renew extends a live lease, routed like Complete.
func (p *Pool) Renew(fingerprint, leaseID string, now time.Time) (time.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.byFP[fingerprint]
	if !ok {
		return time.Time{}, fmt.Errorf("sweep: renewal names unknown campaign %.12s", fingerprint)
	}
	q, err := p.openQueue(idx)
	if err != nil {
		return time.Time{}, err
	}
	return q.Renew(leaseID, now)
}

// Cancel stops all future leasing from the pool: Lease refuses every
// worker from now on, so pending shards of a cancelled sweep are never
// handed out. Completions and renewals remain accepted — a worker
// mid-shard at cancel time may finish and deliver (its result is valid
// and worth journaling), or silently let its lease expire; either way
// the journal stays a consistent prefix of the sweep. Cancel is a
// scheduling verdict, not a correctness one: campaigns already merged
// keep their results.
func (p *Pool) Cancel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cancelled = true
}

// Cancelled reports whether Cancel has been called.
func (p *Pool) Cancelled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cancelled
}

// Partials returns a completed campaign's shard results for merging.
func (p *Pool) Partials(idx int) []*shard.Partial {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx < 0 || idx >= len(p.queues) || p.queues[idx] == nil {
		return nil
	}
	return p.queues[idx].Partials()
}

// Completed delivers the index of each campaign whose last shard has
// landed, exactly once per campaign, in completion order. The channel
// is buffered for the whole grid, so the pool never blocks on it.
func (p *Pool) Completed() <-chan int { return p.compCh }

// Done reports whether every campaign of the sweep has completed.
func (p *Pool) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.doneCount == len(p.items)
}

// WaitDone returns a channel closed once the whole sweep has completed.
func (p *Pool) WaitDone() <-chan struct{} { return p.doneCh }

// openQueue resolves an opened campaign's queue. Callers hold p.mu.
func (p *Pool) openQueue(idx int) (*shard.Queue, error) {
	if idx < 0 || idx >= len(p.items) {
		return nil, fmt.Errorf("sweep: no campaign with index %d", idx)
	}
	if p.queues[idx] == nil {
		return nil, fmt.Errorf("sweep: campaign %q not opened yet", p.items[idx].Key)
	}
	return p.queues[idx], nil
}

// notifyIfDone signals a campaign's completion exactly once and closes
// the sweep door after the last one. Callers hold p.mu.
func (p *Pool) notifyIfDone(idx int) {
	if p.completed[idx] || !p.queues[idx].Done() {
		return
	}
	p.completed[idx] = true
	p.doneCount++
	p.compCh <- idx
	if p.doneCount == len(p.items) {
		close(p.doneCh)
		p.emit("done", "", -1, "")
	}
}

// CampaignProgress is one campaign's point-in-time summary. Counts and
// the ETA cover this campaign's shards only — a sweep never mixes shard
// statistics across fingerprints, because shard size and runtime differ
// wildly between, say, SoC1 and SoC10.
type CampaignProgress struct {
	Key         string  `json:"key"`
	Fingerprint string  `json:"fingerprint"`
	SoC         int     `json:"soc"`
	Engine      string  `json:"engine"`
	LET         float64 `json:"let"`
	Opened      bool    `json:"opened"`
	Done        bool    `json:"done"`
	// Restored counts shards answered at Open from prior results — the
	// coordinator's journal or the artifact lake — instead of simulation.
	Restored int            `json:"restored,omitempty"`
	Shards   shard.Progress `json:"shards"`
	// ETANS estimates this campaign's remaining wall-clock: observed mean
	// shard runtime x remaining shards, divided by the workers currently
	// leasing from it. Zero until a first shard completes under a live
	// lease.
	ETANS int64 `json:"eta_ns,omitempty"`
}

// SweepProgress is the sweep-level summary: per-campaign blocks plus
// grid-level campaign counts (never shard counts, which are not
// comparable across campaigns).
type SweepProgress struct {
	Name           string             `json:"name"`
	Fingerprint    string             `json:"fingerprint"`
	CampaignsTotal int                `json:"campaigns_total"`
	CampaignsDone  int                `json:"campaigns_done"`
	Done           bool               `json:"done"`
	Campaigns      []CampaignProgress `json:"campaigns"`
}

// Progress summarizes the pool after expiring stale leases.
func (p *Pool) Progress(now time.Time) SweepProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := SweepProgress{
		Name:           p.name,
		Fingerprint:    p.sweepFP,
		CampaignsTotal: len(p.items),
		CampaignsDone:  p.doneCount,
		Done:           p.doneCount == len(p.items),
	}
	for i, it := range p.items {
		cp := CampaignProgress{
			Key:         it.Key,
			Fingerprint: p.fps[i],
			SoC:         it.Campaign.SoC,
			Engine:      it.Campaign.Engine,
			LET:         it.Campaign.LET,
			Opened:      p.queues[i] != nil,
			Done:        p.completed[i],
			Restored:    p.restored[i],
		}
		if q := p.queues[i]; q != nil {
			cp.Shards = q.Progress(now)
			if remaining := cp.Shards.Pending + cp.Shards.Leased; remaining > 0 && cp.Shards.AvgShardNS > 0 {
				div := cp.Shards.Leased
				if div < 1 {
					div = 1
				}
				cp.ETANS = cp.Shards.AvgShardNS * int64(remaining) / int64(div)
			}
		}
		sp.Campaigns = append(sp.Campaigns, cp)
	}
	return sp
}
