package sweep

import (
	"bytes"
	"flag"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/ssresf"
	"repro/internal/xrand"
)

// quickEC is the reduced-sampling experiment config every sweep test
// grids over; memcpy matches shard.WorkloadProgram("memcpy").

// cfpOf computes a campaign fingerprint, failing the test on error.
func cfpOf(t *testing.T, cs shard.CampaignSpec) string {
	t.Helper()
	fp, err := cs.Fingerprint()
	if err != nil {
		t.Fatalf("campaign fingerprint: %v", err)
	}
	return fp
}

// sfpOf computes a sweep fingerprint, failing the test on error.
func sfpOf(t *testing.T, ss SweepSpec) string {
	t.Helper()
	fp, err := ss.Fingerprint()
	if err != nil {
		t.Fatalf("sweep fingerprint: %v", err)
	}
	return fp
}

func quickEC() ssresf.ExperimentConfig {
	return ssresf.DefaultExperimentConfig(true)
}

// testLETs keeps the test grids at two small campaigns.
var testLETs = []float64{1.0, 37.0}

// mustGrid returns an unwrapper for grid constructor results.
func mustGrid(t *testing.T) func(Grid, error) Grid {
	return func(g Grid, err error) Grid {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestSweepSpecValidate(t *testing.T) {
	if _, err := LETGrid(quickEC(), 1, testLETs, "quicksort3"); err == nil {
		t.Error("unknown workload kernel accepted")
	}
	ok := mustGrid(t)(LETGrid(quickEC(), 1, testLETs, "memcpy")).Spec
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	if err := (SweepSpec{Name: "empty"}).Validate(); err == nil {
		t.Error("empty sweep accepted")
	}
	dupKey := SweepSpec{Name: "dup", Items: []Item{
		{Key: "x", Campaign: ok.Items[0].Campaign},
		{Key: "x", Campaign: ok.Items[1].Campaign},
	}}
	if err := dupKey.Validate(); err == nil {
		t.Error("duplicate key accepted")
	}
	dupCampaign := SweepSpec{Name: "dup", Items: []Item{
		{Key: "x", Campaign: ok.Items[0].Campaign},
		{Key: "y", Campaign: ok.Items[0].Campaign},
	}}
	if err := dupCampaign.Validate(); err == nil {
		t.Error("duplicate campaign accepted")
	}
	bad := ok.Items[0].Campaign
	bad.Engine = "Verilator"
	if err := (SweepSpec{Name: "bad", Items: []Item{{Key: "x", Campaign: bad}}}).Validate(); err == nil {
		t.Error("invalid member campaign accepted")
	}
}

func TestSweepFingerprintIdentity(t *testing.T) {
	a := mustGrid(t)(LETGrid(quickEC(), 1, testLETs, "memcpy")).Spec
	b := mustGrid(t)(LETGrid(quickEC(), 1, testLETs, "memcpy")).Spec
	if sfpOf(t, a) != sfpOf(t, b) {
		t.Fatal("equal grids produced different sweep fingerprints")
	}
	// Key/name cosmetics do not change identity; campaign content does.
	renamed := a
	renamed.Name = "other"
	if sfpOf(t, renamed) != sfpOf(t, a) {
		t.Fatal("sweep name leaked into the fingerprint")
	}
	c := mustGrid(t)(LETGrid(quickEC(), 1, []float64{1.0, 100.0}, "memcpy")).Spec
	if sfpOf(t, a) == sfpOf(t, c) {
		t.Fatal("different LET grids share a sweep fingerprint")
	}
	d := mustGrid(t)(LETGrid(quickEC(), 2, testLETs, "memcpy")).Spec
	if sfpOf(t, a) == sfpOf(t, d) {
		t.Fatal("different benchmarks share a sweep fingerprint")
	}
}

// TestGridFlagsMatchConstructors pins the CLI contract: a grid named on
// a command line (socfault or campaignd, both register GridFlags)
// enumerates exactly the campaigns the programmatic constructors do —
// equal fingerprints are what let one journal resume under either tool.
func TestGridFlagsMatchConstructors(t *testing.T) {
	parse := func(args ...string) (Grid, bool, error) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		gridOf := GridFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return gridOf()
	}
	if _, ok, err := parse(); err != nil || ok {
		t.Fatalf("no -sweep: got ok=%v err=%v", ok, err)
	}
	if _, _, err := parse("-sweep", "tableX"); err == nil {
		t.Fatal("unknown sweep mode accepted")
	}
	if _, _, err := parse("-sweep", "let", "-lets", "1,zap"); err == nil {
		t.Fatal("malformed -lets accepted")
	}

	ec := quickEC()
	g, ok, err := parse("-sweep", "let", "-lets", "1,37", "-quick")
	if err != nil || !ok {
		t.Fatalf("let grid: ok=%v err=%v", ok, err)
	}
	if want := sfpOf(t, mustGrid(t)(LETGrid(ec, 1, testLETs, "memcpy")).Spec); sfpOf(t, g.Spec) != want {
		t.Fatal("flag-built LET grid diverges from the constructor")
	}
	g, _, err = parse("-sweep", "table1", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if want := sfpOf(t, mustGrid(t)(TableIGrid(ec, "memcpy")).Spec); sfpOf(t, g.Spec) != want {
		t.Fatal("flag-built Table I grid diverges from the constructor")
	}
	if len(g.Spec.Items) != 10 {
		t.Fatalf("Table I grid enumerates %d campaigns, want 10", len(g.Spec.Items))
	}
	g, _, err = parse("-sweep", "table3", "-fluxes", "4e8,5e8", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if want := sfpOf(t, mustGrid(t)(TableIIIGrid(ec, []float64{4e8, 5e8}, "memcpy")).Spec); sfpOf(t, g.Spec) != want {
		t.Fatal("flag-built Table III grid diverges from the constructor")
	}
	if len(g.Spec.Items) != 5 { // base + 2 fluxes x 2 engines
		t.Fatalf("Table III grid enumerates %d campaigns, want 5", len(g.Spec.Items))
	}
}

// referenceResults runs every campaign of the grid in-process,
// un-sharded — the oracle all sweep execution paths must match bit for
// bit.
func referenceResults(t *testing.T, ss SweepSpec) map[string]*inject.Result {
	t.Helper()
	out := map[string]*inject.Result{}
	for _, it := range ss.Items {
		b, err := shard.Build(it.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Run.Campaign.Run(b.Run.Result); err != nil {
			t.Fatal(err)
		}
		out[b.Fingerprint] = b.Run.Result
	}
	return out
}

// TestSweepDeterminism is the sweep-level determinism gate, the
// grid-axis sibling of TestShardedCampaignDeterminism: a whole
// experiment grid executed through the cross-campaign pool — several
// workers with independent executors, interleaved campaigns, shuffled
// completion order, one lease expiring mid-shard, the sweep killed
// half-way and resumed from its journal by fresh workers — must merge
// every campaign bit-identically to the single-process runs, and the
// resumed half must never re-simulate a journaled shard.
func TestSweepDeterminism(t *testing.T) {
	grid := mustGrid(t)(LETGrid(quickEC(), 1, testLETs, "memcpy"))
	ss := grid.Spec
	ref := referenceResults(t, ss)

	// The "coordinator process": builds each campaign once to plan (and
	// later merge); its builds are distinct from every worker's.
	coord := make([]*shard.Built, len(ss.Items))
	plans := make([][]shard.Spec, len(ss.Items))
	for i, it := range ss.Items {
		b, err := shard.Build(it.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		coord[i] = b
		if plans[i], err = shard.PlanAtMost(it.Campaign, 3, len(b.Jobs)); err != nil {
			t.Fatal(err)
		}
	}

	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	store, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	ttl := time.Minute
	rng := xrand.New(99)

	// First life: three workers lease from the pool; every executed
	// shard is journaled, but the pool is abandoned ("killed") with
	// roughly half the sweep complete — including one shard whose lease
	// expired mid-execution and was therefore re-issued.
	pool1, err := NewPool(ss, ttl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss.Items {
		if _, err := pool1.Open(i, plans[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	workers := []*shard.Executor{shard.NewExecutor(), shard.NewExecutor(), shard.NewExecutor()}
	totalShards := 0
	for _, p := range plans {
		totalShards += len(p)
	}
	type doneShard struct {
		fp      string
		leaseID string
		p       *shard.Partial
	}
	var stash []doneShard
	journaled := map[string]bool{} // "fp/index" of journaled shards
	completeOne := func(d doneShard, at time.Time) {
		t.Helper()
		if err := pool1.Complete(d.fp, d.leaseID, 0, d.p, at); err != nil {
			t.Fatal(err)
		}
		if err := store.Append(d.fp, d.p); err != nil {
			t.Fatal(err)
		}
		journaled[fmt.Sprintf("%s/%d", d.fp, d.p.Index)] = true
	}

	// One worker leases and goes silent past the TTL: its shard must be
	// re-issued to (and completed by) another worker, and its own late
	// result must be refused as a duplicate.
	doomed, ok := pool1.Lease("doomed", now)
	if !ok {
		t.Fatal("doomed lease refused")
	}
	doomedPartial, err := workers[2].Execute(doomed.Spec)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(ttl + time.Second) // lease expires

	// Two live workers drain half the sweep in shuffled order.
	half := totalShards / 2
	for len(stash) < half {
		w := rng.Intn(2)
		l, ok := pool1.Lease(fmt.Sprintf("w%d", w), now)
		if !ok {
			break
		}
		p, err := workers[w].Execute(l.Spec)
		if err != nil {
			t.Fatal(err)
		}
		stash = append(stash, doneShard{fp: l.Spec.Fingerprint, leaseID: l.ID, p: p})
	}
	for _, i := range rng.Sample(len(stash), len(stash)) {
		completeOne(stash[i], now)
	}
	// The doomed worker's late completion: either its shard was re-drawn
	// and finished by a live worker (duplicate, refused) or it is still
	// open (accepted) — both keep the merge bit-identical.
	if err := pool1.Complete(doomed.Spec.Fingerprint, doomed.ID, 0, doomedPartial, now); err == nil {
		if err := store.Append(doomed.Spec.Fingerprint, doomedPartial); err != nil {
			t.Fatal(err)
		}
		journaled[fmt.Sprintf("%s/%d", doomed.Spec.Fingerprint, doomedPartial.Index)] = true
	}
	if pool1.Done() {
		t.Fatal("sweep completed before the induced kill; grid too small for the test")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh pool loads the journal, marks recorded shards
	// done, and two fresh workers (fresh golden runs) drain the rest in
	// shuffled completion order. No journaled shard may lease again.
	pool2, err := NewPool(ss, ttl)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := runstore.LoadAll(journal)
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for i, it := range ss.Items {
		n, err := pool2.Open(i, plans[i], loaded[cfpOf(t, it.Campaign)])
		if err != nil {
			t.Fatal(err)
		}
		restored += n
	}
	if restored != len(journaled) {
		t.Fatalf("journal restored %d shards, want %d", restored, len(journaled))
	}
	fresh := []*shard.Executor{shard.NewExecutor(), shard.NewExecutor()}
	var stash2 []doneShard
	for {
		w := rng.Intn(2)
		l, ok := pool2.Lease(fmt.Sprintf("r%d", w), now)
		if !ok {
			break
		}
		if journaled[fmt.Sprintf("%s/%d", l.Spec.Fingerprint, l.Spec.Index)] {
			t.Fatalf("journaled shard %d of %.12s re-leased after resume", l.Spec.Index, l.Spec.Fingerprint)
		}
		p, err := fresh[w].Execute(l.Spec)
		if err != nil {
			t.Fatal(err)
		}
		stash2 = append(stash2, doneShard{fp: l.Spec.Fingerprint, leaseID: l.ID, p: p})
	}
	for _, i := range rng.Sample(len(stash2), len(stash2)) {
		d := stash2[i]
		if err := pool2.Complete(d.fp, d.leaseID, 0, d.p, now); err != nil {
			t.Fatal(err)
		}
	}
	if !pool2.Done() {
		t.Fatal("resumed sweep did not complete")
	}

	// Per-campaign merge on the coordinator's builds: bit-identical to
	// the single-process campaigns, and the grid renders identically to
	// the in-process ssresf driver.
	results := map[string]*inject.Result{}
	for i := range ss.Items {
		res, err := shard.Merge(coord[i], pool2.Partials(i))
		if err != nil {
			t.Fatal(err)
		}
		results[coord[i].Fingerprint] = res
		if err := shard.EquivalentResults(ref[coord[i].Fingerprint], res); err != nil {
			t.Fatalf("campaign %q diverges from single-process: %v", ss.Items[i].Key, err)
		}
	}
	var got, want bytes.Buffer
	if err := grid.Render(&got, results); err != nil {
		t.Fatal(err)
	}
	if err := grid.Render(&want, ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("sweep-rendered grid diverges from reference:\n%s\nvs\n%s", got.String(), want.String())
	}
}

// TestRunLocalMatchesInProcess pins the local sweep path end to end: a
// sharded, journaled RunLocal renders byte-identically to the classic
// in-process ssresf driver, and a resumed RunLocal re-executes nothing.
func TestRunLocalMatchesInProcess(t *testing.T) {
	ec := quickEC()
	grid := mustGrid(t)(LETGrid(ec, 1, testLETs, "memcpy"))
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	var lines []string
	results, err := RunLocal(grid.Spec, LocalOptions{
		Shards:  2,
		Journal: journal,
		Logf:    func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(grid.Spec.Items) {
		t.Fatalf("RunLocal logged %d campaigns, want %d", len(lines), len(grid.Spec.Items))
	}
	var got bytes.Buffer
	if err := grid.Render(&got, results); err != nil {
		t.Fatal(err)
	}

	pts, err := ssresf.LETSweep(ec, 1, testLETs)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ssresf.RenderLETSweep(&want, 1, pts)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("local sweep output diverges from in-process LETSweep:\n%s\nvs\n%s", got.String(), want.String())
	}

	// Resume: everything comes from the journal; outputs stay identical.
	resumed, err := RunLocal(grid.Spec, LocalOptions{Shards: 2, Journal: journal, Resume: true,
		Logf: func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range grid.Spec.Items {
		fp := cfpOf(t, it.Campaign)
		if err := shard.EquivalentResults(results[fp], resumed[fp]); err != nil {
			t.Fatalf("resumed campaign %q diverges: %v", it.Key, err)
		}
	}
	for _, line := range lines[len(grid.Spec.Items):] {
		if !bytes.Contains([]byte(line), []byte("2 resumed")) {
			t.Fatalf("resumed run re-executed shards: %q", line)
		}
	}
}

// TestGridParamsMatchFlagsAndConstructors pins the wire contract the
// submit API rides on: a GridParams resolved server-side enumerates
// exactly the fingerprints the same grid gets from the CLI flags and
// the programmatic constructors — the property that makes a submitted
// sweep's results byte-comparable to `socfault -sweep` and lets one
// journal resume under any of the three paths.
func TestGridParamsMatchFlagsAndConstructors(t *testing.T) {
	cases := []struct {
		name   string
		params GridParams
		args   []string
	}{
		{"let", GridParams{Kind: "let", SoC: 1, LETs: testLETs, Workload: "memcpy", Quick: true},
			[]string{"-sweep", "let", "-lets", "1,37", "-quick"}},
		{"table1", GridParams{Kind: "table1", Workload: "memcpy", Quick: true},
			[]string{"-sweep", "table1", "-quick"}},
		{"table3", GridParams{Kind: "table3", Fluxes: []float64{4e8, 5e8}, Workload: "memcpy", Quick: true},
			[]string{"-sweep", "table3", "-fluxes", "4e8,5e8", "-quick"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fromParams, err := tc.params.Grid()
			if err != nil {
				t.Fatal(err)
			}
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			gridOf := GridFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			fromFlags, ok, err := gridOf()
			if err != nil || !ok {
				t.Fatalf("flags: ok=%v err=%v", ok, err)
			}
			if sfpOf(t, fromParams.Spec) != sfpOf(t, fromFlags.Spec) {
				t.Fatal("params-built grid diverges from the flag-built grid")
			}
		})
	}
	// Zero values mean the documented defaults.
	dflt, err := GridParams{Kind: "let"}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := GridParams{Kind: "let", SoC: 1, Workload: "memcpy"}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if sfpOf(t, dflt.Spec) != sfpOf(t, explicit.Spec) {
		t.Fatal("zero-value GridParams diverge from the explicit defaults")
	}
	if _, err := (GridParams{Kind: "table9"}).Grid(); err == nil {
		t.Fatal("unknown grid kind accepted")
	}
	if _, err := (GridParams{Kind: "let", Workload: "quicksort3"}).Grid(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestPoolCancel pins the cancellation contract: a cancelled pool
// refuses all further leases but keeps accepting completions of shards
// already out, so a mid-flight worker's delivery stays journal-worthy.
func TestPoolCancel(t *testing.T) {
	g := mustGrid(t)(LETGrid(quickEC(), 1, testLETs, "memcpy"))
	pool, err := NewPool(g.Spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cs := g.Spec.Items[0].Campaign
	specs, err := shard.Plan(cs, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Open(0, specs, nil); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	held, ok := pool.Lease("w1", now)
	if !ok {
		t.Fatal("fresh pool refused a lease")
	}
	pool.Cancel()
	if !pool.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	if _, ok := pool.Lease("w2", now); ok {
		t.Fatal("cancelled pool granted a lease")
	}
	p := &shard.Partial{Index: held.Spec.Index, Start: held.Spec.Start, End: held.Spec.End,
		Injections: make([]inject.Injection, held.Spec.End-held.Spec.Start)}
	if err := pool.Complete(held.Spec.Fingerprint, held.ID, 0, p, now.Add(time.Second)); err != nil {
		t.Fatalf("completion of a leased shard refused after cancel: %v", err)
	}
	if _, err := pool.Renew(held.Spec.Fingerprint, held.ID, now.Add(time.Second)); err == nil {
		t.Fatal("renew of a completed shard's lease accepted")
	}
}
