package sweep

import (
	"errors"
	"testing"
	"time"

	"repro/internal/shard"
)

// eventTypes projects a slice of events to their type strings.
func eventTypes(evs []Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Type
	}
	return out
}

// TestPoolEventLog pins the live-watch event contract: a pool's stream
// starts with "submit" at seq 1, carries one lease and one complete per
// shard transition, a fenced duplicate emits "fence", "done" is the
// final event, and sequence numbers are contiguous from any resume
// point — the property SSE Last-Event-ID reconnects depend on.
func TestPoolEventLog(t *testing.T) {
	p, _ := poolOf(t, 1, 2, 8)
	now := time.Unix(1000, 0)

	evs, _ := p.EventsSince(0)
	if len(evs) != 1 || evs[0].Type != "submit" || evs[0].Seq != 1 {
		t.Fatalf("fresh pool events = %+v, want one submit at seq 1", evs)
	}
	if evs[0].CampaignsTotal != 1 || evs[0].CampaignsDone != 0 {
		t.Fatalf("submit progress = %d/%d, want 0/1", evs[0].CampaignsDone, evs[0].CampaignsTotal)
	}

	// A caught-up watcher blocks on the wake channel until the next event.
	caught, wake := p.EventsSince(1)
	if len(caught) != 0 {
		t.Fatalf("caught-up watcher got %+v", caught)
	}
	l1, ok := p.Lease("w1", now)
	if !ok {
		t.Fatal("lease refused")
	}
	select {
	case <-wake:
	default:
		t.Fatal("lease did not wake the blocked watcher")
	}

	if err := p.Complete(l1.Spec.Fingerprint, l1.ID, l1.Epoch, fakePartial(l1.Spec), now); err != nil {
		t.Fatal(err)
	}
	// A zombie's duplicate completion under an older epoch is fenced and
	// the fence is visible in the stream.
	p.SetEpoch(l1.Epoch + 1)
	err := p.Complete(l1.Spec.Fingerprint, l1.ID, l1.Epoch, fakePartial(l1.Spec), now)
	if !errors.Is(err, shard.ErrStaleEpoch) {
		t.Fatalf("stale duplicate completion: %v, want ErrStaleEpoch", err)
	}

	l2, ok := p.Lease("w1", now)
	if !ok {
		t.Fatal("second lease refused")
	}
	if l2.Sweep == "" {
		t.Fatal("granted lease lacks its sweep fp12 attribution tag")
	}
	if err := p.Complete(l2.Spec.Fingerprint, l2.ID, l2.Epoch, fakePartial(l2.Spec), now); err != nil {
		t.Fatal(err)
	}

	evs, _ = p.EventsSince(0)
	want := []string{"submit", "lease", "complete", "fence", "lease", "complete", "done"}
	got := eventTypes(evs)
	if len(got) != len(want) {
		t.Fatalf("event stream %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event stream %v, want %v", got, want)
		}
		if evs[i].Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (contiguous from 1)", i, evs[i].Seq, i+1)
		}
	}
	last := evs[len(evs)-1]
	if last.CampaignsDone != 1 || last.CampaignsTotal != 1 {
		t.Fatalf("done progress = %d/%d, want 1/1", last.CampaignsDone, last.CampaignsTotal)
	}

	// Resume from an arbitrary midpoint replays exactly the suffix.
	tail, _ := p.EventsSince(4)
	if len(tail) != 3 || tail[0].Seq != 5 {
		t.Fatalf("resume from seq 4 = %+v, want seqs 5..7", tail)
	}
}
