package sweep

import "sync"

// Event is one entry in a sweep's ordered progress stream. Seq is a
// per-sweep monotonic sequence number starting at 1 with no gaps: a
// consumer that has seen seq N can resume from N and reassemble the
// exact stream, which is what makes SSE reconnect via Last-Event-ID
// lossless. Campaign is the fp12 of the shard's campaign; Shard is the
// shard index (-1 on events that aren't about one shard). CampaignsDone
// and CampaignsTotal snapshot the sweep-level progress at emission time,
// so any single event is enough to render a progress line.
type Event struct {
	Seq            uint64 `json:"seq"`
	Type           string `json:"type"` // submit|lease|speculate|complete|fence|done
	Campaign       string `json:"campaign,omitempty"`
	Shard          int    `json:"shard"`
	Worker         string `json:"worker,omitempty"`
	CampaignsDone  int    `json:"campaigns_done"`
	CampaignsTotal int    `json:"campaigns_total"`
}

// eventLog is the pool's append-only event store. Sweeps are finite —
// bounded by shards x {lease,complete} plus rare speculation/fencing —
// so the log retains every event for its sweep's lifetime; resume after
// an arbitrarily long disconnect replays from any point. It has its own
// mutex (pool callers hold p.mu while emitting; the log never calls
// back into the pool) and a broadcast channel that is closed and
// replaced on every append, so any number of watchers can block on
// "something after seq N" without polling.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append stamps the next sequence number onto ev, stores it, and wakes
// every blocked watcher.
func (el *eventLog) append(ev Event) {
	el.mu.Lock()
	ev.Seq = uint64(len(el.events)) + 1
	el.events = append(el.events, ev)
	close(el.wake)
	el.wake = make(chan struct{})
	el.mu.Unlock()
}

// since returns every event with Seq > after, in order, plus a channel
// that is closed when any further event is appended. An empty slice with
// the wake channel means the caller is caught up and should block.
func (el *eventLog) since(after uint64) ([]Event, <-chan struct{}) {
	el.mu.Lock()
	defer el.mu.Unlock()
	var out []Event
	if after < uint64(len(el.events)) {
		out = append(out, el.events[after:]...)
	}
	return out, el.wake
}

// EventsSince returns the sweep's events with sequence numbers greater
// than after, plus a channel closed when more arrive. The stream starts
// with a "submit" event at seq 1, carries a lease/speculate/complete/
// fence entry for every lease-surface transition, and ends with "done"
// once the whole sweep has merged.
func (p *Pool) EventsSince(after uint64) ([]Event, <-chan struct{}) {
	return p.events.since(after)
}

// emit appends an event stamped with the current sweep-level progress.
// Callers hold p.mu (or, in NewPool, own the pool exclusively).
func (p *Pool) emit(typ, campaignFP string, shardIdx int, worker string) {
	p.events.append(Event{
		Type:           typ,
		Campaign:       shortFP(campaignFP),
		Shard:          shardIdx,
		Worker:         worker,
		CampaignsDone:  p.doneCount,
		CampaignsTotal: len(p.items),
	})
}
