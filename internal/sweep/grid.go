package sweep

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/socgen"
	"repro/internal/ssresf"
)

// Grid couples a sweep's campaign enumeration with the aggregation that
// turns the merged per-campaign results back into the experiment's
// rendered artifact. Render consumes results keyed by campaign
// fingerprint — exactly what RunLocal and a campaignd sweep coordinator
// produce — and writes the same bytes the in-process ssresf driver
// would, because both funnel through the shared ssresf row/point
// assembly on results that merge bit-identically.
type Grid struct {
	Spec   SweepSpec
	Render func(w io.Writer, results map[string]*inject.Result) error
}

// pick resolves one item's merged result by campaign identity.
func pick(results map[string]*inject.Result, it Item) (*inject.Result, error) {
	fp, err := it.Campaign.Fingerprint()
	if err != nil {
		return nil, err
	}
	r, ok := results[fp]
	if !ok || r == nil {
		return nil, fmt.Errorf("sweep: no merged result for campaign %q (%.12s)", it.Key, fp)
	}
	return r, nil
}

// TableIGrid enumerates the paper's Table I: the soft-error campaign on
// all ten SoC benchmarks, each at its Table I cluster count. workload
// names the RISC-V kernel; the constructor resolves it and overwrites
// ec.Workload with the same program, so campaign fingerprints and any
// in-process comparison always describe one kernel.
func TableIGrid(ec ssresf.ExperimentConfig, workload string) (Grid, error) {
	if err := resolveWorkload(&ec, workload); err != nil {
		return Grid{}, err
	}
	var items []Item
	for _, cfg := range socgen.TableIConfigs() {
		items = append(items, Item{
			Key:      fmt.Sprintf("soc%d", cfg.Index),
			Campaign: shard.SpecFromOptions(cfg.Index, workload, ec.OptionsFor(cfg.Index)),
		})
	}
	spec := SweepSpec{Name: "table1", Items: items}
	return Grid{
		Spec: spec,
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			byIdx := make(map[int]*inject.Result, len(items))
			for _, it := range items {
				r, err := pick(results, it)
				if err != nil {
					return err
				}
				byIdx[it.Campaign.SoC] = r
			}
			rows, err := ssresf.TableIFromResults(byIdx)
			if err != nil {
				return err
			}
			ssresf.RenderTableI(w, rows)
			return nil
		},
	}, nil
}

// resolveWorkload pins the config's workload program to the named
// kernel — the single source the campaign specs fingerprint.
func resolveWorkload(ec *ssresf.ExperimentConfig, workload string) error {
	prog, err := shard.WorkloadProgram(workload)
	if err != nil {
		return err
	}
	ec.Workload = prog
	return nil
}

// LETGrid enumerates the LET sensitivity sweep: the same campaign on one
// benchmark at each given LET (nil means the database's tabulated LETs).
func LETGrid(ec ssresf.ExperimentConfig, socIdx int, lets []float64, workload string) (Grid, error) {
	if err := resolveWorkload(&ec, workload); err != nil {
		return Grid{}, err
	}
	if len(lets) == 0 {
		lets = fault.StandardLETs
	}
	lets = append([]float64{}, lets...)
	var items []Item
	for _, let := range lets {
		opts := ec.OptionsFor(socIdx)
		opts.LET = let
		items = append(items, Item{
			Key:      fmt.Sprintf("soc%d-let%g", socIdx, let),
			Campaign: shard.SpecFromOptions(socIdx, workload, opts),
		})
	}
	spec := SweepSpec{Name: fmt.Sprintf("let-soc%d", socIdx), Items: items}
	return Grid{
		Spec: spec,
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			byLET := make(map[float64]*inject.Result, len(items))
			for i, it := range items {
				r, err := pick(results, it)
				if err != nil {
					return err
				}
				byLET[lets[i]] = r
			}
			pts, err := ssresf.LETSweepFromResults(lets, byLET)
			if err != nil {
				return err
			}
			ssresf.RenderLETSweep(w, socIdx, pts)
			return nil
		},
	}, nil
}

// TableIIIGrid enumerates the runtime-comparison grid: the SoC1 base
// campaign (classifier training data) plus, for every flux, one
// campaign per engine. The ML phase runs at aggregation time in the
// rendering process; only the simulation campaigns distribute.
func TableIIIGrid(ec ssresf.ExperimentConfig, fluxes []float64, workload string) (Grid, error) {
	if err := resolveWorkload(&ec, workload); err != nil {
		return Grid{}, err
	}
	if len(fluxes) == 0 {
		fluxes = ssresf.TableIIIFluxes
	}
	fluxes = append([]float64{}, fluxes...)
	base := Item{Key: "t3-base", Campaign: shard.SpecFromOptions(1, workload, ec.OptionsFor(1))}
	items := []Item{base}
	evItems := make([]Item, len(fluxes))
	lvItems := make([]Item, len(fluxes))
	for i, flux := range fluxes {
		opts := ec.TableIIIFluxOptions(flux)
		opts.Engine = sim.KindEvent
		evItems[i] = Item{Key: fmt.Sprintf("t3-flux%g-event", flux), Campaign: shard.SpecFromOptions(1, workload, opts)}
		opts.Engine = sim.KindLevel
		lvItems[i] = Item{Key: fmt.Sprintf("t3-flux%g-level", flux), Campaign: shard.SpecFromOptions(1, workload, opts)}
		items = append(items, evItems[i], lvItems[i])
	}
	spec := SweepSpec{Name: "table3", Items: items}
	return Grid{
		Spec: spec,
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			baseRes, err := pick(results, base)
			if err != nil {
				return err
			}
			ev := make(map[float64]*inject.Result, len(fluxes))
			lv := make(map[float64]*inject.Result, len(fluxes))
			for i, flux := range fluxes {
				if ev[flux], err = pick(results, evItems[i]); err != nil {
					return err
				}
				if lv[flux], err = pick(results, lvItems[i]); err != nil {
					return err
				}
			}
			rows, avg, err := ssresf.TableIIIFromResults(ec, fluxes, baseRes, ev, lv)
			if err != nil {
				return err
			}
			ssresf.RenderTableIII(w, rows, avg)
			return nil
		},
	}, nil
}

// Concat joins grids into one sweep: the campaign lists concatenate in
// order and rendering emits each member grid's artifact in sequence —
// e.g. the LET sweeps of two benchmarks drained by one worker fleet.
func Concat(name string, grids ...Grid) Grid {
	var items []Item
	for _, g := range grids {
		items = append(items, g.Spec.Items...)
	}
	return Grid{
		Spec: SweepSpec{Name: name, Items: items},
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			for _, g := range grids {
				if err := g.Render(w, results); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// GridParams is the declarative, wire-format description of a grid: the
// kind plus the handful of parameters the GridFlags surface exposes. It
// is what a client POSTs to a coordinator to submit a sweep, and Grid()
// funnels it through the exact constructors the CLIs use — so a grid
// submitted over the wire, named on a socfault command line, or served
// by campaignd resolves to identical campaign fingerprints, which is
// what makes their journals interchangeable and their rendered outputs
// byte-comparable. Zero values mean the defaults the flags document:
// workload "memcpy", SoC 1, and each grid's own LET/flux set.
type GridParams struct {
	// Kind selects the grid: "table1" (all benchmarks), "table3"
	// (fluxes x engines on SoC1) or "let" (LET sweep on one benchmark).
	Kind     string    `json:"kind"`
	SoC      int       `json:"soc,omitempty"`    // let: benchmark index (0 = 1)
	LETs     []float64 `json:"lets,omitempty"`   // let: points (nil = tabulated)
	Fluxes   []float64 `json:"fluxes,omitempty"` // table3: fluxes (nil = the paper's)
	Workload string    `json:"workload,omitempty"`
	Quick    bool      `json:"quick,omitempty"` // reduced-sampling experiment config
}

// Grid materializes and validates the described grid.
func (p GridParams) Grid() (Grid, error) {
	workload := p.Workload
	if workload == "" {
		workload = "memcpy"
	}
	soc := p.SoC
	if soc == 0 {
		soc = 1
	}
	ec := ssresf.DefaultExperimentConfig(p.Quick)
	var g Grid
	var err error
	switch p.Kind {
	case "table1":
		g, err = TableIGrid(ec, workload)
	case "table3":
		g, err = TableIIIGrid(ec, p.Fluxes, workload)
	case "let":
		g, err = LETGrid(ec, soc, p.LETs, workload)
	default:
		return Grid{}, fmt.Errorf("unknown sweep kind %q (want table1, table3 or let)", p.Kind)
	}
	if err != nil {
		return Grid{}, err
	}
	if err := g.Spec.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// GridParamsFlags registers the sweep-defining flags on fs and returns a
// closure that lifts them into a GridParams after parsing (ok is false
// when no sweep was requested). Like shard.CampaignFlags, this is the
// one registration point every CLI that names a sweep goes through —
// cmd/socfault running (or submitting) a grid and cmd/campaignd serving
// it to a worker fleet parse identical flags into identical campaign
// fingerprints, which is what lets one journal resume under either tool
// and makes their outputs byte-comparable.
func GridParamsFlags(fs *flag.FlagSet) func() (GridParams, bool, error) {
	mode := fs.String("sweep", "", "experiment grid to run as one sweep: table1 (all benchmarks), table3 (fluxes x engines on SoC1), let (LET sweep)")
	socIdx := fs.Int("sweep-soc", 1, "benchmark the LET sweep runs on")
	lets := fs.String("lets", "", "comma-separated LET points for -sweep let (default: the database's tabulated LETs)")
	fluxes := fs.String("fluxes", "", "comma-separated fluxes for -sweep table3 (default: the paper's five)")
	workload := fs.String("sweep-workload", "memcpy", "workload kernel every sweep campaign runs")
	quick := fs.Bool("quick", false, "reduced sampling (the fast-test experiment config) for every sweep campaign")
	return func() (GridParams, bool, error) {
		if *mode == "" {
			return GridParams{}, false, nil
		}
		// A sweep derives every campaign from the grid flags; a
		// single-campaign flag set alongside -sweep would be silently
		// ignored and the grid would answer a different question than the
		// user asked. Reject the combination outright.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			if shard.CampaignFlagNames[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return GridParams{}, false, fmt.Errorf("single-campaign flag(s) %s have no effect under -sweep; use the sweep flags (-sweep-soc, -lets, -fluxes, -sweep-workload, -quick)",
				strings.Join(conflicts, " "))
		}
		ls, err := parseFloats(*lets)
		if err != nil {
			return GridParams{}, false, fmt.Errorf("-lets: %v", err)
		}
		fl, err := parseFloats(*fluxes)
		if err != nil {
			return GridParams{}, false, fmt.Errorf("-fluxes: %v", err)
		}
		return GridParams{
			Kind:     *mode,
			SoC:      *socIdx,
			LETs:     ls,
			Fluxes:   fl,
			Workload: *workload,
			Quick:    *quick,
		}, true, nil
	}
}

// GridFlags is GridParamsFlags with the grid already materialized — the
// entry point for CLIs that run the grid in-process rather than submit
// its description to a coordinator.
func GridFlags(fs *flag.FlagSet) func() (Grid, bool, error) {
	paramsOf := GridParamsFlags(fs)
	return func() (Grid, bool, error) {
		p, ok, err := paramsOf()
		if err != nil || !ok {
			return Grid{}, ok, err
		}
		g, err := p.Grid()
		if err != nil {
			return Grid{}, false, err
		}
		return g, true, nil
	}
}

// parseFloats parses a comma-separated float list; empty means nil
// (each grid substitutes its own default set).
func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
