package features

import (
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/socgen"
)

func socFlat(t *testing.T) *netlist.Flat {
	t.Helper()
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := socgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := netlist.Flatten(d)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNamesStable(t *testing.T) {
	n := Names()
	if len(n) != 10 {
		t.Fatalf("%d features, want 10", len(n))
	}
	want := []string{"top_mod_type", "reg_type", "delay_unit_count", "signal_type", "layer_depth", "signal_bit"}
	for i, w := range want {
		if n[i] != w {
			t.Errorf("feature %d = %q, want %q (paper order)", i, n[i], w)
		}
	}
	if PaperFeatureCount != 6 {
		t.Error("paper selects 6 features")
	}
}

func TestExtractShape(t *testing.T) {
	f := socFlat(t)
	m := Extract(f)
	if len(m.Rows) != len(f.Cells) {
		t.Fatalf("%d rows for %d cells", len(m.Rows), len(f.Cells))
	}
	for i, r := range m.Rows {
		if len(r) != 10 {
			t.Fatalf("row %d has %d features", i, len(r))
		}
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d col %d is %v", i, j, v)
			}
		}
	}
}

func TestFeatureSemantics(t *testing.T) {
	f := socFlat(t)
	m := Extract(f)
	// Find a memory bit cell and check its codes.
	for i, c := range f.Cells {
		if c.Def.Name == "SRAMBITX1" {
			if m.Rows[i][0] != 3 {
				t.Errorf("memory cell top_mod_type = %v, want 3", m.Rows[i][0])
			}
			if m.Rows[i][1] != 5 {
				t.Errorf("SRAM bit reg_type = %v, want 5", m.Rows[i][1])
			}
			if m.Rows[i][4] < 2 {
				t.Errorf("memory bit layer_depth = %v", m.Rows[i][4])
			}
			break
		}
	}
	// A clock buffer in the top module drives CK pins: signal_type 3.
	found := false
	for i, c := range f.Cells {
		if c.Def.Name == "BUFX2" && m.Rows[i][3] == 3 {
			found = true
			_ = i
			break
		}
	}
	if !found {
		t.Error("no clock-driving buffer detected via signal_type")
	}
}

func TestSignalBitParsing(t *testing.T) {
	f := socFlat(t)
	m := Extract(f)
	// Some cells drive bus bits like acc_out[5]; signal_bit must pick the
	// index up for at least a few nodes.
	nonzero := 0
	for _, r := range m.Rows {
		if r[5] > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("signal_bit never nonzero despite bus signals")
	}
}

func TestSelect(t *testing.T) {
	f := socFlat(t)
	m := Extract(f)
	sel, err := m.Select([]int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Names) != 2 || sel.Names[1] != "layer_depth" {
		t.Fatalf("selected names %v", sel.Names)
	}
	if len(sel.Rows) != len(m.Rows) || len(sel.Rows[0]) != 2 {
		t.Fatal("selected shape wrong")
	}
	if _, err := m.Select([]int{99}); err == nil {
		t.Error("out-of-range column must fail")
	}
}

func TestScalerNormalizes(t *testing.T) {
	m := &Matrix{
		Names: []string{"a", "b", "const"},
		Rows: [][]float64{
			{0, 10, 5},
			{5, 20, 5},
			{10, 30, 5},
		},
	}
	s := FitScaler(m)
	out := s.Transform(m)
	if out.Rows[0][0] != 0 || out.Rows[2][0] != 1 || out.Rows[1][0] != 0.5 {
		t.Errorf("column a: %v", [][]float64{out.Rows[0], out.Rows[1], out.Rows[2]})
	}
	if out.Rows[1][2] != 0 {
		t.Errorf("constant column must map to 0, got %v", out.Rows[1][2])
	}
	// Original must be untouched.
	if m.Rows[0][0] != 0 || m.Rows[1][1] != 20 {
		t.Error("Transform mutated its input")
	}
	// Out-of-range test data clamps.
	test := &Matrix{Names: m.Names, Rows: [][]float64{{-5, 100, 5}}}
	tt := s.Transform(test)
	if tt.Rows[0][0] != 0 || tt.Rows[0][1] != 1 {
		t.Errorf("clamping failed: %v", tt.Rows[0])
	}
}

func TestClean(t *testing.T) {
	m := &Matrix{
		Names: []string{"a"},
		Rows:  [][]float64{{1}, {math.NaN()}, {3}, {math.Inf(1)}},
	}
	labels := []bool{true, false, true, false}
	out, keptLabels, kept := Clean(m, labels)
	if len(out.Rows) != 2 || len(keptLabels) != 2 || len(kept) != 2 {
		t.Fatalf("cleaned to %d rows", len(out.Rows))
	}
	if kept[0] != 0 || kept[1] != 2 {
		t.Errorf("kept indices %v", kept)
	}
	if !keptLabels[0] || !keptLabels[1] {
		t.Errorf("labels misaligned after cleaning")
	}
}

func TestRankByCorrelation(t *testing.T) {
	// Feature 0 is perfectly predictive, feature 1 is noise-free constant,
	// feature 2 is anti-correlated (same |r|).
	m := &Matrix{
		Names: []string{"predictive", "constant", "anti"},
		Rows: [][]float64{
			{1, 5, 0}, {1, 5, 0}, {1, 5, 0},
			{0, 5, 1}, {0, 5, 1}, {0, 5, 1},
		},
	}
	labels := []bool{true, true, true, false, false, false}
	rank := RankByCorrelation(m, labels)
	if len(rank) != 3 {
		t.Fatalf("rank %v", rank)
	}
	if rank[2] != 1 {
		t.Errorf("constant feature must rank last: %v", rank)
	}
}

func TestFrequencyCount(t *testing.T) {
	m := &Matrix{Names: []string{"a"}, Rows: [][]float64{{1}, {2}, {1}, {1}}}
	fc, err := FrequencyCount(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fc[1] != 3 || fc[2] != 1 {
		t.Errorf("frequency %v", fc)
	}
	if _, err := FrequencyCount(m, 5); err == nil {
		t.Error("bad column must fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := &Matrix{Names: []string{"a"}, Rows: [][]float64{{1}}}
	c := m.Clone()
	c.Rows[0][0] = 99
	if m.Rows[0][0] != 1 {
		t.Error("clone aliases original")
	}
}
