package features

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickScalerRange: transformed training data always lies in [0,1] and
// the transform is monotone within each column.
func TestQuickScalerRange(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 120 {
			raw = raw[:120]
		}
		m := &Matrix{Names: []string{"v"}}
		for _, r := range raw {
			m.Rows = append(m.Rows, []float64{float64(r)})
		}
		s := FitScaler(m)
		out := s.Transform(m)
		for i, row := range out.Rows {
			if row[0] < 0 || row[0] > 1 || math.IsNaN(row[0]) {
				return false
			}
			for j := range out.Rows {
				if m.Rows[i][0] < m.Rows[j][0] && out.Rows[i][0] > out.Rows[j][0]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCleanNeverInventsRows: cleaning returns a subset with aligned
// labels for any NaN/Inf contamination pattern.
func TestQuickCleanNeverInventsRows(t *testing.T) {
	f := func(raw []uint8) bool {
		m := &Matrix{Names: []string{"v"}}
		labels := make([]bool, len(raw))
		dirty := 0
		for i, r := range raw {
			v := float64(r)
			switch r % 5 {
			case 0:
				v = math.NaN()
				dirty++
			case 1:
				v = math.Inf(1)
				dirty++
			}
			m.Rows = append(m.Rows, []float64{v})
			labels[i] = r%2 == 0
		}
		out, keptLabels, kept := Clean(m, labels)
		if len(out.Rows) != len(raw)-dirty {
			return false
		}
		if len(keptLabels) != len(out.Rows) || len(kept) != len(out.Rows) {
			return false
		}
		for i, idx := range kept {
			if keptLabels[i] != labels[idx] {
				return false
			}
			if math.IsNaN(out.Rows[i][0]) || math.IsInf(out.Rows[i][0], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRankPermutation: the correlation ranking is always a
// permutation of the column indices.
func TestQuickRankPermutation(t *testing.T) {
	f := func(raw []uint16, cols uint8) bool {
		d := 1 + int(cols%6)
		n := len(raw) / d
		if n < 3 {
			return true
		}
		if n > 50 {
			n = 50
		}
		m := &Matrix{Names: make([]string, d)}
		labels := make([]bool, n)
		for i := 0; i < n; i++ {
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = float64(raw[i*d+j])
			}
			m.Rows = append(m.Rows, row)
			labels[i] = raw[i*d]%2 == 0
		}
		rank := RankByCorrelation(m, labels)
		if len(rank) != d {
			return false
		}
		seen := make([]bool, d)
		for _, r := range rank {
			if r < 0 || r >= d || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
