// Package features extracts the structural circuit-node features the SVM
// classifier learns from, mirroring Fig. 4 of the paper. The paper's six
// selected features come first (top_mod_type, reg_type, delay_unit_count,
// signal_type, layer_depth, signal_bit); four further candidates
// (fanout_count, fanin_count, cell_area, drive_delay) complete the
// ten-feature pool the Fig. 5 selection sweep searches over.
//
// Feature engineering follows the paper's pipeline: extraction, cleaning,
// categorical encoding (the *_type features are integer category codes),
// and min-max normalization via a Scaler fitted on training data only.
package features

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Names lists the feature pool in order; the paper's six come first.
func Names() []string {
	return []string{
		"top_mod_type",
		"reg_type",
		"delay_unit_count",
		"signal_type",
		"layer_depth",
		"signal_bit",
		"fanout_count",
		"fanin_count",
		"cell_area",
		"drive_delay",
	}
}

// PaperFeatureCount is the number of features the paper's Fig. 5 sweep
// selects (the first six of Names).
const PaperFeatureCount = 6

// Matrix is a dense feature matrix: one row per circuit node.
type Matrix struct {
	Names []string
	Rows  [][]float64
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Names: append([]string{}, m.Names...)}
	out.Rows = make([][]float64, len(m.Rows))
	for i, r := range m.Rows {
		out.Rows[i] = append([]float64{}, r...)
	}
	return out
}

// Select returns a new matrix keeping only the given column indices.
func (m *Matrix) Select(cols []int) (*Matrix, error) {
	out := &Matrix{}
	for _, c := range cols {
		if c < 0 || c >= len(m.Names) {
			return nil, fmt.Errorf("features: column %d out of range", c)
		}
		out.Names = append(out.Names, m.Names[c])
	}
	out.Rows = make([][]float64, len(m.Rows))
	for i, r := range m.Rows {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = r[c]
		}
		out.Rows[i] = row
	}
	return out, nil
}

// Extract computes the feature matrix for every cell of a flattened design,
// in cell-ID order.
func Extract(f *netlist.Flat) *Matrix {
	m := &Matrix{Names: Names()}
	m.Rows = make([][]float64, len(f.Cells))
	for i, c := range f.Cells {
		m.Rows[i] = extractCell(f, c)
	}
	return m
}

func extractCell(f *netlist.Flat, c *netlist.FlatCell) []float64 {
	return []float64{
		float64(topModCode(c)),
		float64(regTypeCode(c.Def)),
		float64(c.Level),
		float64(signalTypeCode(f, c)),
		float64(c.Depth()),
		float64(signalBit(f, c)),
		float64(fanoutCount(f, c)),
		float64(len(c.Def.Inputs)),
		c.Def.AreaUM2,
		float64(c.Def.DelayPS),
	}
}

// topModCode encodes the functional block the node sits in.
func topModCode(c *netlist.FlatCell) int {
	blk := c.FunctionalBlock()
	switch {
	case strings.HasPrefix(blk, "u_cpu"):
		return 1
	case strings.HasPrefix(blk, "u_bus"):
		return 2
	case strings.HasPrefix(blk, "u_mem"):
		return 3
	case strings.HasPrefix(blk, "u_ctrl"):
		return 4
	default:
		return 5
	}
}

// regTypeCode encodes the cell family.
func regTypeCode(d *cell.Def) int {
	n := d.Name
	switch {
	case strings.HasPrefix(n, "DFFR"):
		return 1
	case strings.HasPrefix(n, "DFFS"):
		return 2
	case strings.HasPrefix(n, "DFFE"):
		return 3
	case strings.HasPrefix(n, "DFF"):
		return 4
	case strings.HasPrefix(n, "SRAMBIT"):
		return 5
	case strings.HasPrefix(n, "DRAMBIT"):
		return 6
	case strings.HasPrefix(n, "RHSRAMBIT"):
		return 7
	case strings.HasPrefix(n, "INV"), strings.HasPrefix(n, "BUF"):
		return 8
	case strings.HasPrefix(n, "NAND"), strings.HasPrefix(n, "NOR"):
		return 9
	case strings.HasPrefix(n, "AND"), strings.HasPrefix(n, "OR"):
		return 10
	case strings.HasPrefix(n, "XOR"), strings.HasPrefix(n, "XNOR"):
		return 11
	case strings.HasPrefix(n, "MUX"):
		return 12
	case strings.HasPrefix(n, "AOI"), strings.HasPrefix(n, "OAI"):
		return 13
	case strings.HasPrefix(n, "HA"), strings.HasPrefix(n, "FA"):
		return 14
	default:
		return 15
	}
}

// signalTypeCode classifies the node's primary output by what it drives:
// 3 clock, 2 control (enable/reset/set), 1 register data, 0 pure logic.
func signalTypeCode(f *netlist.Flat, c *netlist.FlatCell) int {
	if len(c.Out) == 0 {
		return 0
	}
	code := 0
	for _, fo := range f.Nets[c.Out[0]].Fanout {
		sink := f.Cells[fo.Cell]
		if !sink.Def.IsSequential() {
			continue
		}
		port := sink.Def.Inputs[fo.Pin]
		s := sink.Def.Seq
		switch port {
		case s.Clock:
			return 3
		case s.Enable, s.AsyncResetN, s.AsyncSetN:
			if code < 2 {
				code = 2
			}
		case s.DataPort:
			if code < 1 {
				code = 1
			}
		}
	}
	return code
}

// signalBit parses the bit index from the output net's name ("acc[3]" ->
// 3), or 0 for scalar signals.
func signalBit(f *netlist.Flat, c *netlist.FlatCell) int {
	if len(c.Out) == 0 {
		return 0
	}
	name := f.Nets[c.Out[0]].Name
	open := strings.LastIndexByte(name, '[')
	closeIdx := strings.LastIndexByte(name, ']')
	if open < 0 || closeIdx < open {
		return 0
	}
	n, err := strconv.Atoi(name[open+1 : closeIdx])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func fanoutCount(f *netlist.Flat, c *netlist.FlatCell) int {
	n := 0
	for _, o := range c.Out {
		n += len(f.Nets[o].Fanout)
	}
	return n
}

// Scaler min-max normalizes columns to [0,1], fitted on training rows only
// so test data cannot leak into the scaling.
type Scaler struct {
	Min, Max []float64
}

// FitScaler computes per-column ranges over the matrix.
func FitScaler(m *Matrix) *Scaler {
	if len(m.Rows) == 0 {
		return &Scaler{}
	}
	d := len(m.Rows[0])
	s := &Scaler{Min: make([]float64, d), Max: make([]float64, d)}
	for j := 0; j < d; j++ {
		s.Min[j] = math.Inf(1)
		s.Max[j] = math.Inf(-1)
	}
	for _, r := range m.Rows {
		for j, v := range r {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s
}

// Transform returns a normalized copy of the matrix. Constant columns map
// to 0.
func (s *Scaler) Transform(m *Matrix) *Matrix {
	out := m.Clone()
	for _, r := range out.Rows {
		for j := range r {
			if j >= len(s.Min) {
				continue
			}
			span := s.Max[j] - s.Min[j]
			if span <= 0 {
				r[j] = 0
				continue
			}
			v := (r[j] - s.Min[j]) / span
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			r[j] = v
		}
	}
	return out
}

// Clean drops rows containing NaN or Inf values, returning the cleaned
// matrix, matching labels, and the kept row indices — the paper's data
// cleaning step.
func Clean(m *Matrix, labels []bool) (*Matrix, []bool, []int) {
	out := &Matrix{Names: append([]string{}, m.Names...)}
	var keptLabels []bool
	var kept []int
	for i, r := range m.Rows {
		ok := true
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, append([]float64{}, r...))
		if labels != nil {
			keptLabels = append(keptLabels, labels[i])
		}
		kept = append(kept, i)
	}
	return out, keptLabels, kept
}

// RankByCorrelation orders feature indices by descending absolute
// point-biserial correlation with the binary labels — the univariate
// ranking behind the Fig. 5 forward-selection sweep.
func RankByCorrelation(m *Matrix, labels []bool) []int {
	n := len(m.Rows)
	if n == 0 {
		return nil
	}
	d := len(m.Rows[0])
	scores := make([]float64, d)
	var nPos int
	for _, l := range labels {
		if l {
			nPos++
		}
	}
	nNeg := n - nPos
	for j := 0; j < d; j++ {
		var meanP, meanN, mean float64
		for i, r := range m.Rows {
			mean += r[j]
			if labels[i] {
				meanP += r[j]
			} else {
				meanN += r[j]
			}
		}
		mean /= float64(n)
		if nPos == 0 || nNeg == 0 {
			continue
		}
		meanP /= float64(nPos)
		meanN /= float64(nNeg)
		var variance float64
		for _, r := range m.Rows {
			d := r[j] - mean
			variance += d * d
		}
		variance /= float64(n)
		if variance <= 0 {
			continue
		}
		scores[j] = math.Abs((meanP - meanN) / math.Sqrt(variance) *
			math.Sqrt(float64(nPos)*float64(nNeg)/float64(n*n)))
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// FrequencyCount tallies how many nodes fall into each distinct value of a
// feature column — the paper's "analyze the sensitive circuit node list
// data by frequency count" step.
func FrequencyCount(m *Matrix, col int) (map[float64]int, error) {
	if col < 0 || len(m.Rows) > 0 && col >= len(m.Rows[0]) {
		return nil, fmt.Errorf("features: column %d out of range", col)
	}
	out := map[float64]int{}
	for _, r := range m.Rows {
		out[r[col]]++
	}
	return out, nil
}
