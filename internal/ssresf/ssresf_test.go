package ssresf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/socgen"
)

func quickConfig() ExperimentConfig {
	ec := DefaultExperimentConfig(true)
	ec.Inject.SampleFrac = 0.06
	return ec
}

func analyze(t *testing.T, idx int) *Analysis {
	t.Helper()
	ec := quickConfig()
	cfg, err := socgen.ConfigByIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(idx))
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalyzeBuildsDataset(t *testing.T) {
	an := analyze(t, 1)
	ds := an.Dataset
	if len(ds.X.Rows) != len(an.Run.Flat.Cells) {
		t.Fatalf("dataset rows %d != cells %d", len(ds.X.Rows), len(an.Run.Flat.Cells))
	}
	if len(ds.Y) != len(ds.X.Rows) {
		t.Fatal("label count mismatch")
	}
	pos := ds.PositiveCount()
	if pos == 0 || pos == len(ds.Y) {
		t.Fatalf("degenerate labels: %d of %d positive", pos, len(ds.Y))
	}
}

func TestTrainAndPredict(t *testing.T) {
	an := analyze(t, 1)
	cls, err := Train(an.Dataset, TrainOptions{Folds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Selected) != 6 {
		t.Errorf("default selection must keep the paper's 6 features, got %v", cls.Selected)
	}
	if cls.TrainCV.Accuracy() < 0.6 {
		t.Errorf("CV accuracy %v suspiciously low", cls.TrainCV.Accuracy())
	}
	pred, dur, err := cls.Predict(an.Run.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(an.Run.Flat.Cells) {
		t.Fatal("prediction count mismatch")
	}
	if dur <= 0 {
		t.Error("prediction time not measured")
	}
	// Decision values must be consistent with predictions.
	scores, err := cls.DecisionValues(an.Run.Flat)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		if (scores[i] > 0) != pred[i] {
			t.Fatal("decision values inconsistent with predictions")
		}
	}
}

func TestFig5Sweep(t *testing.T) {
	an := analyze(t, 1)
	pts, err := Fig5(an.Dataset, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("%d sweep points, want 10", len(pts))
	}
	best := BestFeatureCount(pts)
	if best < 1 || best > 10 {
		t.Fatalf("best feature count %d out of range", best)
	}
	for i, p := range pts {
		if p.NumFeatures != i+1 {
			t.Errorf("point %d has k=%d", i, p.NumFeatures)
		}
		if p.CVScore < 0 || p.CVScore > 1 {
			t.Errorf("score %v out of range", p.CVScore)
		}
	}
	var buf bytes.Buffer
	RenderFig5(&buf, pts)
	if !strings.Contains(buf.String(), "best feature count") {
		t.Error("Fig5 rendering incomplete")
	}
}

func TestFig6ROC(t *testing.T) {
	an := analyze(t, 1)
	cls, err := Train(an.Dataset, TrainOptions{Folds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	curve, auc, err := Fig6(cls, an)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 3 {
		t.Fatalf("ROC curve has %d points", len(curve))
	}
	if auc < 0.6 {
		t.Errorf("AUC %v — classifier no better than chance", auc)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, curve, auc)
	if !strings.Contains(buf.String(), "AUC") {
		t.Error("Fig6 rendering incomplete")
	}
}

func TestTableISubsetTrends(t *testing.T) {
	// Running all ten benchmarks is the bench harness's job; here a
	// focused subset checks the headline trends: SoC1 (SRAM) vs SoC2
	// (DRAM) memory ordering, and SoC10 rad-hard collapse.
	ec := quickConfig()
	rows, err := TableI(ec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	byIdx := map[int]TableIRow{}
	for _, r := range rows {
		byIdx[r.Index] = r
	}
	// Rad-hard SRAM must have far lower memory SER than same-size SRAM.
	if byIdx[10].MemSER >= byIdx[9].MemSER/2 {
		t.Errorf("rad-hard memory SER %.4f not well below SRAM %.4f", byIdx[10].MemSER, byIdx[9].MemSER)
	}
	// Cross-sections must grow with SoC complexity.
	if byIdx[10].SEUXsect <= byIdx[1].SEUXsect {
		t.Errorf("SEU xsect must grow: SoC1 %.3e vs SoC10 %.3e", byIdx[1].SEUXsect, byIdx[10].SEUXsect)
	}
	if byIdx[9].SETXsect <= byIdx[1].SETXsect {
		t.Errorf("SET xsect must grow: SoC1 %.3e vs SoC9 %.3e", byIdx[1].SETXsect, byIdx[9].SETXsect)
	}
	// Cluster counts match the paper's column.
	for i, want := range paperKN {
		if byIdx[i+1].Clusters != want {
			t.Errorf("SoC%d clusters = %d, want %d", i+1, byIdx[i+1].Clusters, want)
		}
	}
	var buf bytes.Buffer
	RenderTableI(&buf, rows)
	if !strings.Contains(buf.String(), "PULP SoC10") {
		t.Error("Table I rendering incomplete")
	}
}

func TestTableIISubset(t *testing.T) {
	ec := quickConfig()
	rows, avg, err := TableII(ec, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Metrics.Accuracy < 0.55 {
			t.Errorf("SoC%d accuracy %.3f below any useful classifier", r.Index, r.Metrics.Accuracy)
		}
	}
	if avg.Accuracy == 0 {
		t.Error("average row missing")
	}
	var buf bytes.Buffer
	RenderTableII(&buf, rows, avg)
	if !strings.Contains(buf.String(), "Average") {
		t.Error("Table II rendering incomplete")
	}
}

func TestTableIIITwoFluxes(t *testing.T) {
	ec := quickConfig()
	// Accuracy compares module counts between independent campaigns, so
	// the test needs enough samples per run to estimate them.
	ec.Inject.SampleFrac = 0.12
	rows, avg, err := TableIII(ec, []float64{4e8, 6e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupVCS <= 1 || r.SpeedupCVC <= 1 {
			t.Errorf("flux %.0e: model must be faster than simulation (VCS %.2f, CVC %.2f)",
				r.Flux, r.SpeedupVCS, r.SpeedupCVC)
		}
		if r.Accuracy < 0.5 {
			t.Errorf("flux %.0e: accuracy %.3f", r.Flux, r.Accuracy)
		}
	}
	// Higher flux means more injections, hence longer simulation.
	if rows[1].VCSRuntime <= rows[0].VCSRuntime/2 {
		t.Errorf("runtime should grow with flux: %v vs %v", rows[0].VCSRuntime, rows[1].VCSRuntime)
	}
	if avg.SpeedupVCS == 0 {
		t.Error("average row missing")
	}
	var buf bytes.Buffer
	RenderTableIII(&buf, rows, avg)
	if !strings.Contains(buf.String(), "Avg.") {
		t.Error("Table III rendering incomplete")
	}
}

func TestFig7Distribution(t *testing.T) {
	ec := quickConfig()
	rows, err := Fig7(ec, []float64{5e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // one flux + the SVM row
		t.Fatalf("%d rows", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Source != "SVM Classifier" {
		t.Errorf("last row is %q", last.Source)
	}
	for _, r := range rows {
		for _, mod := range []string{"Memory", "Bus", "CPU Logic"} {
			if _, ok := r.Percent[mod]; !ok {
				t.Errorf("row %s missing module %s", r.Source, mod)
			}
		}
	}
	var buf bytes.Buffer
	RenderFig7(&buf, rows)
	if !strings.Contains(buf.String(), "SVM Classifier") {
		t.Error("Fig7 rendering incomplete")
	}
}

func TestLETSweepMonotoneXsect(t *testing.T) {
	ec := quickConfig()
	pts, err := LETSweep(ec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3 standard LETs", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LET <= pts[i-1].LET {
			t.Fatal("LET points out of order")
		}
		if pts[i].SEUXsect <= pts[i-1].SEUXsect {
			t.Errorf("SEU xsect must grow with LET: %g -> %g", pts[i-1].SEUXsect, pts[i].SEUXsect)
		}
		if pts[i].SETXsect <= pts[i-1].SETXsect {
			t.Errorf("SET xsect must grow with LET: %g -> %g", pts[i-1].SETXsect, pts[i].SETXsect)
		}
	}
	var buf bytes.Buffer
	RenderLETSweep(&buf, 1, pts)
	if !strings.Contains(buf.String(), "LET sensitivity sweep") {
		t.Error("LET sweep rendering incomplete")
	}
}
