package ssresf

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/mlmetrics"
)

// RenderTableI writes Table I in the paper's layout.
func RenderTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "TABLE I: Soft error results for different functional modules of benchmark")
	fmt.Fprintf(w, "%-12s %-12s %-8s %-8s | %-5s %-7s %-8s | %-10s %-5s %-8s | %-8s %-12s %-12s\n",
		"Benchmark", "MemType", "MemSize", "MemSER%", "Bus", "BusBits", "BusSER%", "CPU", "Cores", "CPUSER%", "Clusters", "SETXsect", "SEUXsect")
	for _, r := range rows {
		fmt.Fprintf(w, "PULP SoC%-4d %-12s %-8s %-8.3f | %-5s %-7d %-8.3f | %-10s %-5d %-8.3f | %-8d %-12.3e %-12.3e\n",
			r.Index, r.MemType, memSize(r.MemKB), r.MemSER,
			r.BusType, r.BusBits, r.BusSER,
			r.ISA, r.Cores, r.CPUSER,
			r.Clusters, r.SETXsect, r.SEUXsect)
	}
}

func memSize(kb int) string {
	if kb >= 1024 {
		return fmt.Sprintf("%dMB", kb/1024)
	}
	return fmt.Sprintf("%dKB", kb)
}

// RenderTableII writes Table II in the paper's layout.
func RenderTableII(w io.Writer, rows []TableIIRow, avg mlmetrics.Metrics) {
	fmt.Fprintln(w, "TABLE II: Results of SVM classification")
	fmt.Fprintf(w, "%-14s %-8s %-8s %-10s %-9s %-8s\n", "Benchmark", "TNR", "TPR", "Precision", "Accuracy", "F1 Score")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(w, "PULP SoC %-5d %-8.2f %-8.2f %-10.2f %-9.2f %-8.2f\n",
			r.Index, 100*m.TNR, 100*m.TPR, 100*m.Precision, 100*m.Accuracy, m.F1)
	}
	fmt.Fprintf(w, "%-14s %-8.2f %-8.2f %-10.2f %-9.2f %-8.2f\n",
		"Average", 100*avg.TNR, 100*avg.TPR, 100*avg.Precision, 100*avg.Accuracy, avg.F1)
}

// RenderFig5 writes the feature-selection curve as an aligned series.
func RenderFig5(w io.Writer, pts []Fig5Point) {
	fmt.Fprintln(w, "FIG 5: Mean 10-fold cross-validation score vs number of features")
	for _, p := range pts {
		bar := int(p.CVScore * 40)
		fmt.Fprintf(w, "  k=%-2d score=%.4f %s\n", p.NumFeatures, p.CVScore, stars(bar))
	}
	fmt.Fprintf(w, "  best feature count: %d\n", BestFeatureCount(pts))
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '*'
	}
	return string(b)
}

// RenderFig6 writes the ROC curve points and AUC.
func RenderFig6(w io.Writer, curve []mlmetrics.ROCPoint, auc float64) {
	fmt.Fprintln(w, "FIG 6: ROC curve of the SVM model")
	for _, p := range curve {
		fmt.Fprintf(w, "  FPR=%.4f TPR=%.4f (thr=%.3f)\n", p.FPR, p.TPR, p.Threshold)
	}
	fmt.Fprintf(w, "  AUC = %.4f\n", auc)
}

// RenderTableIII writes the runtime comparison in the paper's layout.
func RenderTableIII(w io.Writer, rows []TableIIIRow, avg TableIIIRow) {
	fmt.Fprintln(w, "TABLE III: Runtime comparison among VCS(EventSim), CVC(LevelSim) and the SVM model")
	fmt.Fprintf(w, "%-8s %-14s %-14s %-14s %-12s %-12s %-9s\n",
		"Flux", "VCS Runtime", "CVC Runtime", "Predict Time", "Speedup(VCS)", "Speedup(CVC)", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.0e %-14v %-14v %-14v %-12.2f %-12.2f %-9.2f%%\n",
			r.Flux, r.VCSRuntime, r.CVCRuntime, r.PredictTime, r.SpeedupVCS, r.SpeedupCVC, 100*r.Accuracy)
	}
	fmt.Fprintf(w, "%-8s %-14v %-14v %-14v %-12.2f %-12.2f %-9.2f%%\n",
		"Avg.", avg.VCSRuntime, avg.CVCRuntime, avg.PredictTime, avg.SpeedupVCS, avg.SpeedupCVC, 100*avg.Accuracy)
}

// RenderFig7 writes the high-sensitivity node distribution.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "FIG 7: Proportion of high-sensitivity circuit nodes per module (%)")
	var mods []string
	if len(rows) > 0 {
		for m := range rows[0].Percent {
			mods = append(mods, m)
		}
		sort.Strings(mods)
	}
	fmt.Fprintf(w, "  %-22s", "Source")
	for _, m := range mods {
		fmt.Fprintf(w, " %-12s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s", r.Source)
		for _, m := range mods {
			fmt.Fprintf(w, " %-12.2f", r.Percent[m])
		}
		fmt.Fprintln(w)
	}
}
