package ssresf

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/socgen"
)

// LETPoint is one point of the LET sensitivity sweep.
type LETPoint struct {
	LET      float64
	ChipSER  float64
	MemSER   float64 // percent
	BusSER   float64 // percent
	CPUSER   float64 // percent
	SEUXsect float64
	SETXsect float64
}

// LETSweep is the extension experiment the paper's database design implies
// but never evaluates: the same campaign at each tabulated LET value,
// showing the Weibull growth of module soft-error rates with deposited
// energy. The paper selects LET 1.0/37.0/100.0 "to encompass different
// radiation environments"; this sweep quantifies what that choice spans.
func LETSweep(ec ExperimentConfig, socIdx int, lets []float64) ([]LETPoint, error) {
	if len(lets) == 0 {
		lets = fault.StandardLETs
	}
	cfg, err := socgen.ConfigByIndex(socIdx)
	if err != nil {
		return nil, err
	}
	var pts []LETPoint
	for _, let := range lets {
		opts := ec.OptionsFor(socIdx)
		opts.LET = let
		run, err := inject.RunSoC(cfg, ec.Workload, ec.DB, opts)
		if err != nil {
			return nil, fmt.Errorf("ssresf: LET sweep %g: %v", let, err)
		}
		pts = append(pts, LETPointFrom(let, run.Result))
	}
	return pts, nil
}

// LETPointFrom assembles one sweep point from a campaign result — the
// single extraction point shared by the in-process LETSweep driver and
// the sweep aggregation path (LETSweepFromResults).
func LETPointFrom(let float64, r *inject.Result) LETPoint {
	p := LETPoint{
		LET:      let,
		ChipSER:  r.ChipSER,
		SEUXsect: r.SEUXsect,
		SETXsect: r.SETXsect,
	}
	if m := r.Modules["Memory"]; m != nil {
		p.MemSER = m.SERPercent
	}
	if m := r.Modules["Bus"]; m != nil {
		p.BusSER = m.SERPercent
	}
	if m := r.Modules["CPU Logic"]; m != nil {
		p.CPUSER = m.SERPercent
	}
	return p
}

// LETSweepFromResults assembles the sweep from already-executed campaign
// results keyed by LET — the aggregation half of a distributed LET sweep.
// Points come out in the order of lets; a missing LET is an error.
func LETSweepFromResults(lets []float64, results map[float64]*inject.Result) ([]LETPoint, error) {
	if len(lets) == 0 {
		lets = fault.StandardLETs
	}
	var pts []LETPoint
	for _, let := range lets {
		r, ok := results[let]
		if !ok || r == nil {
			return nil, fmt.Errorf("ssresf: LET sweep aggregation missing LET %g's campaign result", let)
		}
		pts = append(pts, LETPointFrom(let, r))
	}
	return pts, nil
}

// RenderLETSweep writes the sweep as an aligned table.
func RenderLETSweep(w io.Writer, socIdx int, pts []LETPoint) {
	fmt.Fprintf(w, "EXTENSION: LET sensitivity sweep on PULP SoC%d\n", socIdx)
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-10s %-12s %-12s\n",
		"LET", "ChipSER", "MemSER%", "BusSER%", "CPUSER%", "SEUXsect", "SETXsect")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8.1f %-10.4f %-10.4f %-10.4f %-10.4f %-12.3e %-12.3e\n",
			p.LET, p.ChipSER, p.MemSER, p.BusSER, p.CPUSER, p.SEUXsect, p.SETXsect)
	}
}
