// Package ssresf is the framework façade: it composes the substrates into
// the paper's two-phase pipeline (Fig. 1). The dynamic-simulation phase
// clusters the gate-level netlist, runs the fault-injection campaign and
// produces the sensitive-node list; the machine-learning phase engineers
// node features, trains the SVM classifier, and serves fast sensitivity
// predictions in place of further simulation.
package ssresf

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/features"
	"repro/internal/inject"
	"repro/internal/mlmetrics"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/svm"
)

// Dataset is a labeled feature matrix over the cells of one design.
type Dataset struct {
	Design string
	X      *features.Matrix
	Y      []bool
	// CellIDs maps dataset rows back to flat-design cells.
	CellIDs []int
}

// PositiveCount returns the number of highly-sensitive examples.
func (d *Dataset) PositiveCount() int {
	n := 0
	for _, l := range d.Y {
		if l {
			n++
		}
	}
	return n
}

// Analysis is the output of the dynamic-simulation phase on one benchmark.
type Analysis struct {
	Run     *inject.SoCRun
	Dataset *Dataset
}

// AnalyzeSoC runs the full dynamic-simulation phase on one Table I
// benchmark: generate, cluster, inject, label, extract features.
func AnalyzeSoC(cfg socgen.Config, prog riscv.Program, db *fault.DB, opts inject.Options) (*Analysis, error) {
	run, err := inject.RunSoC(cfg, prog, db, opts)
	if err != nil {
		return nil, err
	}
	ds, err := BuildDataset(run.Flat, run.Result)
	if err != nil {
		return nil, err
	}
	return &Analysis{Run: run, Dataset: ds}, nil
}

// BuildDataset extracts the node features of every cell and labels them
// from the campaign result (refined rule: sampled outcomes override cluster
// verdicts, threshold = chip SER).
func BuildDataset(f *netlist.Flat, res *inject.Result) (*Dataset, error) {
	raw := features.Extract(f)
	labels := res.LabelCellsRefined(res.ChipSER)
	cleaned, cleanedLabels, kept := features.Clean(raw, labels)
	if len(cleaned.Rows) == 0 {
		return nil, fmt.Errorf("ssresf: dataset for %s is empty after cleaning", f.Name)
	}
	return &Dataset{Design: f.Name, X: cleaned, Y: cleanedLabels, CellIDs: kept}, nil
}

// Classifier is the trained sensitivity predictor: feature selection,
// scaling and SVM bundled for reuse on unseen netlists.
type Classifier struct {
	Model    *svm.Model
	Scaler   *features.Scaler
	Columns  []int
	Config   svm.Config
	TrainCV  mlmetrics.Confusion
	FoldsK   int
	Selected []string
}

// TrainOptions configures classifier training.
type TrainOptions struct {
	// FeatureCount selects the top-k ranked features (0 means the paper's
	// six).
	FeatureCount int
	// Folds is the cross-validation fold count (default 10, as the paper).
	Folds int
	// GridSearch enables (C, γ) tuning; otherwise DefaultConfig is used.
	GridSearch bool
	Seed       uint64
}

// Train fits the classifier on a dataset, following the paper's recipe:
// rank features, keep the best k, min-max normalize, grid-search (C, γ)
// with k-fold CV, and record the pooled CV confusion matrix.
func Train(ds *Dataset, opts TrainOptions) (*Classifier, error) {
	if opts.FeatureCount <= 0 {
		opts.FeatureCount = features.PaperFeatureCount
	}
	if opts.Folds <= 0 {
		opts.Folds = 10
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rank := features.RankByCorrelation(ds.X, ds.Y)
	if opts.FeatureCount > len(rank) {
		opts.FeatureCount = len(rank)
	}
	cols := append([]int{}, rank[:opts.FeatureCount]...)
	sel, err := ds.X.Select(cols)
	if err != nil {
		return nil, err
	}
	scaler := features.FitScaler(sel)
	norm := scaler.Transform(sel)

	cfg := svm.DefaultConfig()
	cfg.Seed = opts.Seed
	if opts.GridSearch {
		cs, gammas := svm.StandardGrid()
		tuned, _, err := svm.GridSearch(norm.Rows, ds.Y, cs, gammas, opts.Folds, opts.Seed)
		if err == nil {
			cfg = tuned
		}
	}
	cv, err := svm.CrossValidate(norm.Rows, ds.Y, opts.Folds, cfg)
	if err != nil {
		return nil, fmt.Errorf("ssresf: cross-validation: %v", err)
	}
	model, err := svm.Train(norm.Rows, ds.Y, cfg)
	if err != nil {
		return nil, fmt.Errorf("ssresf: final fit: %v", err)
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = ds.X.Names[c]
	}
	return &Classifier{
		Model:    model,
		Scaler:   scaler,
		Columns:  cols,
		Config:   cfg,
		TrainCV:  cv,
		FoldsK:   opts.Folds,
		Selected: names,
	}, nil
}

// Predict classifies every cell of a flattened design, returning the
// per-cell sensitivity predictions and the wall-clock prediction time —
// the quantity Table III compares against full simulation.
func (c *Classifier) Predict(f *netlist.Flat) ([]bool, time.Duration, error) {
	start := time.Now()
	raw := features.Extract(f)
	sel, err := raw.Select(c.Columns)
	if err != nil {
		return nil, 0, err
	}
	norm := c.Scaler.Transform(sel)
	out := make([]bool, len(norm.Rows))
	for i, row := range norm.Rows {
		out[i] = c.Model.Predict(row)
	}
	return out, time.Since(start), nil
}

// DecisionValues returns the SVM decision value for every cell — the score
// input for ROC analysis (Fig. 6).
func (c *Classifier) DecisionValues(f *netlist.Flat) ([]float64, error) {
	raw := features.Extract(f)
	sel, err := raw.Select(c.Columns)
	if err != nil {
		return nil, err
	}
	norm := c.Scaler.Transform(sel)
	out := make([]float64, len(norm.Rows))
	for i, row := range norm.Rows {
		out[i] = c.Model.Decision(row)
	}
	return out, nil
}
