package ssresf

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/mlmetrics"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/socgen"
)

// paperKN reproduces Table I's "Number of clusters" column: the cluster
// count the paper used per benchmark.
var paperKN = []int{5, 6, 8, 9, 14, 15, 18, 19, 21, 23}

// ExperimentConfig bundles the knobs shared by all experiment drivers.
type ExperimentConfig struct {
	DB       *fault.DB
	Workload riscv.Program
	Inject   inject.Options
	Train    TrainOptions
}

// DefaultExperimentConfig returns the configuration used to regenerate the
// paper's tables and figures. quick reduces sampling for fast test runs.
func DefaultExperimentConfig(quick bool) ExperimentConfig {
	opts := inject.DefaultOptions()
	if quick {
		opts.SampleFrac = 0.05
		opts.MinPerCluster = 2
	} else {
		opts.SampleFrac = 0.2
		opts.MinPerCluster = 3
	}
	return ExperimentConfig{
		DB:       fault.DefaultDB(),
		Workload: riscv.MemcpyProgram(16),
		Inject:   opts,
		Train:    TrainOptions{Folds: 10, Seed: 1},
	}
}

// OptionsFor specializes the campaign options for one benchmark, using the
// paper's per-benchmark cluster counts.
func (ec ExperimentConfig) OptionsFor(idx int) inject.Options {
	o := ec.Inject
	o.KN = paperKN[idx-1]
	if o.LN == 0 {
		o.LN = 4
	}
	o.Seed = ec.Inject.Seed + uint64(idx)
	return o
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Index              int
	MemType            string
	MemKB              int
	MemSER             float64 // percent
	BusType            string
	BusBits            int
	BusSER             float64 // percent
	ISA                string
	Cores              int
	CPUSER             float64 // percent
	Clusters           int
	SETXsect, SEUXsect float64 // cm²
}

// TableIRowFrom assembles one Table I row from a benchmark's campaign
// result. It is the single row-assembly point shared by the in-process
// TableI driver and the sweep aggregation path (TableIFromResults), so a
// campaign distributed over a worker fleet renders bit-identically to one
// run in this process.
func TableIRowFrom(cfg socgen.Config, r *inject.Result) TableIRow {
	row := TableIRow{
		Index:    cfg.Index,
		MemType:  cfg.MemType,
		MemKB:    cfg.MemKB,
		BusType:  cfg.BusType,
		BusBits:  cfg.BusBits,
		ISA:      cfg.ISA,
		Cores:    cfg.Cores,
		Clusters: len(r.Clusters),
		SETXsect: r.SETXsect,
		SEUXsect: r.SEUXsect,
	}
	if m := r.Modules["Memory"]; m != nil {
		row.MemSER = m.SERPercent
	}
	if m := r.Modules["Bus"]; m != nil {
		row.BusSER = m.SERPercent
	}
	if m := r.Modules["CPU Logic"]; m != nil {
		row.CPUSER = m.SERPercent
	}
	return row
}

// TableI runs the soft-error analysis campaign on all ten benchmarks and
// returns the module SER rows of Table I.
func TableI(ec ExperimentConfig) ([]TableIRow, error) {
	var rows []TableIRow
	for _, cfg := range socgen.TableIConfigs() {
		run, err := inject.RunSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(cfg.Index))
		if err != nil {
			return nil, fmt.Errorf("ssresf: Table I SoC%d: %v", cfg.Index, err)
		}
		rows = append(rows, TableIRowFrom(cfg, run.Result))
	}
	return rows, nil
}

// TableIFromResults assembles Table I from already-executed campaign
// results keyed by benchmark index — the aggregation half of a Table I
// sweep, where the campaigns themselves ran sharded (locally or on a
// campaignd worker fleet) and merged bit-identically to the in-process
// runs. Every benchmark with a result gets a row, in benchmark order; a
// missing benchmark is an error because a partially-aggregated Table I
// silently misrepresents the paper's grid.
func TableIFromResults(results map[int]*inject.Result) ([]TableIRow, error) {
	var rows []TableIRow
	for _, cfg := range socgen.TableIConfigs() {
		r, ok := results[cfg.Index]
		if !ok || r == nil {
			return nil, fmt.Errorf("ssresf: Table I aggregation missing SoC%d's campaign result", cfg.Index)
		}
		rows = append(rows, TableIRowFrom(cfg, r))
	}
	return rows, nil
}

// TableIIRow is one row of Table II: the SVM classification metrics on one
// benchmark.
type TableIIRow struct {
	Index   int
	Metrics mlmetrics.Metrics
}

// TableII trains and cross-validates the sensitivity classifier on the
// given benchmarks (all ten when indices is nil) and returns per-benchmark
// metrics plus the average row.
func TableII(ec ExperimentConfig, indices []int) ([]TableIIRow, mlmetrics.Metrics, error) {
	if indices == nil {
		indices = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	var rows []TableIIRow
	var all []mlmetrics.Metrics
	for _, idx := range indices {
		cfg, err := socgen.ConfigByIndex(idx)
		if err != nil {
			return nil, mlmetrics.Metrics{}, err
		}
		an, err := AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(idx))
		if err != nil {
			return nil, mlmetrics.Metrics{}, fmt.Errorf("ssresf: Table II SoC%d: %v", idx, err)
		}
		topts := ec.Train
		topts.Seed = ec.Train.Seed + uint64(idx)
		cls, err := Train(an.Dataset, topts)
		if err != nil {
			return nil, mlmetrics.Metrics{}, fmt.Errorf("ssresf: Table II SoC%d: %v", idx, err)
		}
		m := mlmetrics.FromConfusion(cls.TrainCV)
		rows = append(rows, TableIIRow{Index: idx, Metrics: m})
		all = append(all, m)
	}
	return rows, mlmetrics.Mean(all), nil
}

// Fig5Point is one point of the feature-selection curve.
type Fig5Point struct {
	NumFeatures int
	CVScore     float64
}

// Fig5 sweeps the number of ranked features from 1 to the full pool and
// records the mean 10-fold cross-validation accuracy for each — the
// feature-selection experiment whose peak picks the working feature set.
func Fig5(ds *Dataset, folds int, seed uint64) ([]Fig5Point, error) {
	if folds <= 0 {
		folds = 10
	}
	var pts []Fig5Point
	for k := 1; k <= len(ds.X.Names); k++ {
		cls, err := Train(ds, TrainOptions{FeatureCount: k, Folds: folds, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("ssresf: Fig5 k=%d: %v", k, err)
		}
		pts = append(pts, Fig5Point{NumFeatures: k, CVScore: cls.TrainCV.Accuracy()})
	}
	return pts, nil
}

// BestFeatureCount returns the sweep's argmax (ties to the smaller count).
func BestFeatureCount(pts []Fig5Point) int {
	best := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].CVScore > pts[best].CVScore {
			best = i
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[best].NumFeatures
}

// Fig6 computes the classifier's ROC curve and AUC on a labeled design.
func Fig6(cls *Classifier, an *Analysis) ([]mlmetrics.ROCPoint, float64, error) {
	scores, err := cls.DecisionValues(an.Run.Flat)
	if err != nil {
		return nil, 0, err
	}
	labels := an.Run.Result.LabelCellsRefined(an.Run.Result.ChipSER)
	curve := mlmetrics.ROC(scores, labels)
	return curve, mlmetrics.AUC(curve), nil
}

// TableIIIRow is one flux condition of the runtime comparison.
type TableIIIRow struct {
	Flux        float64
	VCSRuntime  time.Duration // EventSim campaign (VCS stand-in)
	CVCRuntime  time.Duration // LevelSim campaign (CVC stand-in)
	PredictTime time.Duration // SVM model prediction over all nodes
	SpeedupVCS  float64
	SpeedupCVC  float64
	Accuracy    float64 // SVM labels vs this flux's simulation labels
}

// TableIIIFluxes are the particle fluxes Table III compares across.
var TableIIIFluxes = []float64{4e8, 5e8, 6e8, 7e8, 8e8}

// TableIIIFluxOptions derives the campaign options Table III runs at one
// flux condition: the SoC1 base options with the flux applied, the sample
// volume scaled with it (higher flux means more upsets to simulate,
// clamped at full sampling) and a per-flux seed. The engine is left at
// the base value; Table III runs each condition once per engine. Shared
// by the in-process TableIII driver and the sweep grid enumeration, so
// both paths name bit-identical campaigns.
func (ec ExperimentConfig) TableIIIFluxOptions(flux float64) inject.Options {
	opts := ec.OptionsFor(1)
	opts.Flux = flux
	opts.SampleFrac = opts.SampleFrac * flux / 5e8
	if opts.SampleFrac > 1 {
		opts.SampleFrac = 1
	}
	opts.Seed = ec.OptionsFor(1).Seed + uint64(flux/1e8)
	return opts
}

// TableIII reproduces the runtime comparison on PULP SoC1: for every flux,
// a full fault-injection campaign runs on both engines (the sample volume
// scales with flux, as higher flux means more upsets to simulate), and the
// pre-trained SVM predicts the same sensitivity labels in a fraction of
// the time.
func TableIII(ec ExperimentConfig, fluxes []float64) ([]TableIIIRow, TableIIIRow, error) {
	if len(fluxes) == 0 {
		fluxes = TableIIIFluxes
	}
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	// Train the classifier once on the base campaign.
	an, err := AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(1))
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	cls, err := Train(an.Dataset, ec.Train)
	if err != nil {
		return nil, TableIIIRow{}, err
	}

	ev := map[float64]*inject.Result{}
	lv := map[float64]*inject.Result{}
	for _, flux := range fluxes {
		opts := ec.TableIIIFluxOptions(flux)
		opts.Engine = sim.KindEvent
		evRun, err := inject.RunSoC(cfg, ec.Workload, ec.DB, opts)
		if err != nil {
			return nil, TableIIIRow{}, err
		}
		opts.Engine = sim.KindLevel
		lvRun, err := inject.RunSoC(cfg, ec.Workload, ec.DB, opts)
		if err != nil {
			return nil, TableIIIRow{}, err
		}
		ev[flux], lv[flux] = evRun.Result, lvRun.Result
	}
	return tableIIIRows(cls, an.Run.Flat, fluxes, ev, lv)
}

// tableIIIRows is the shared assembly of Table III: predict once per flux
// on the design's flat netlist, pair the prediction time against both
// engines' campaign runtimes, and average. flat is the SoC1 netlist —
// generation is deterministic, so any process's copy is identical.
func tableIIIRows(cls *Classifier, flat *netlist.Flat, fluxes []float64, ev, lv map[float64]*inject.Result) ([]TableIIIRow, TableIIIRow, error) {
	var rows []TableIIIRow
	var avg TableIIIRow
	for _, flux := range fluxes {
		evRes, lvRes := ev[flux], lv[flux]
		if evRes == nil || lvRes == nil {
			return nil, TableIIIRow{}, fmt.Errorf("ssresf: Table III aggregation missing flux %g's %s campaign",
				flux, map[bool]string{true: "EventSim", false: "LevelSim"}[evRes == nil])
		}
		pred, predTime, err := cls.Predict(flat)
		if err != nil {
			return nil, TableIIIRow{}, err
		}
		row := TableIIIRow{
			Flux:        flux,
			VCSRuntime:  evRes.GoldenWall + evRes.InjectWall,
			CVCRuntime:  lvRes.GoldenWall + lvRes.InjectWall,
			PredictTime: predTime,
			Accuracy:    outcomeAccuracy(evRes.Injections, pred),
		}
		if predTime > 0 {
			row.SpeedupVCS = float64(row.VCSRuntime) / float64(predTime)
			row.SpeedupCVC = float64(row.CVCRuntime) / float64(predTime)
		}
		rows = append(rows, row)
		avg.VCSRuntime += row.VCSRuntime
		avg.CVCRuntime += row.CVCRuntime
		avg.PredictTime += row.PredictTime
		avg.SpeedupVCS += row.SpeedupVCS
		avg.SpeedupCVC += row.SpeedupCVC
		avg.Accuracy += row.Accuracy
	}
	n := time.Duration(len(rows))
	avg.VCSRuntime /= n
	avg.CVCRuntime /= n
	avg.PredictTime /= n
	avg.SpeedupVCS /= float64(len(rows))
	avg.SpeedupCVC /= float64(len(rows))
	avg.Accuracy /= float64(len(rows))
	return rows, avg, nil
}

// TableIIIFromResults assembles Table III from already-executed campaign
// results: the SoC1 base campaign (classifier training data) plus one
// EventSim and one LevelSim result per flux, all typically merged from a
// sweep. The ML phase — dataset build, training, prediction — runs in
// this process on the deterministic SoC1 netlist, exactly as the
// in-process TableIII does, so the deterministic columns (accuracy)
// match it bit for bit; the runtime columns are wall-clock by nature and
// reflect wherever the campaigns actually ran.
func TableIIIFromResults(ec ExperimentConfig, fluxes []float64, base *inject.Result, ev, lv map[float64]*inject.Result) ([]TableIIIRow, TableIIIRow, error) {
	if len(fluxes) == 0 {
		fluxes = TableIIIFluxes
	}
	if base == nil {
		return nil, TableIIIRow{}, fmt.Errorf("ssresf: Table III aggregation missing the base training campaign")
	}
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	d, err := socgen.Generate(cfg)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	flat, err := netlist.Flatten(d)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	ds, err := BuildDataset(flat, base)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	cls, err := Train(ds, ec.Train)
	if err != nil {
		return nil, TableIIIRow{}, err
	}
	return tableIIIRows(cls, flat, fluxes, ev, lv)
}

// outcomeAccuracy scores the model against the flux campaign's observed
// ground truth: for every node the campaign actually injected, the SVM's
// prediction is compared with whether that injection manifested as a soft
// error. This is the operational meaning of the paper's "Model Accuracy"
// column — can the classifier replace the simulation's verdict on the
// nodes it would otherwise have to simulate.
func outcomeAccuracy(injections []inject.Injection, pred []bool) float64 {
	if len(injections) == 0 {
		return 0
	}
	agree := 0
	for _, inj := range injections {
		if pred[inj.CellID] == inj.SoftError {
			agree++
		}
	}
	return float64(agree) / float64(len(injections))
}

// Fig7Row is one bar group of Fig. 7: the share of each module's nodes
// classified highly sensitive, for one source (a simulation flux or the
// SVM prediction).
type Fig7Row struct {
	Source string
	// Percent maps module name to 100·(sensitive nodes)/(module nodes).
	Percent map[string]float64
}

// Fig7 compares the distribution of highly sensitive nodes across memory,
// bus and CPU logic between per-flux simulation campaigns and the SVM
// prediction on PULP SoC1.
func Fig7(ec ExperimentConfig, fluxes []float64) ([]Fig7Row, error) {
	if len(fluxes) == 0 {
		fluxes = []float64{4e8, 5e8, 6e8, 7e8, 8e8}
	}
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		return nil, err
	}
	baseOpts := ec.OptionsFor(1)
	an, err := AnalyzeSoC(cfg, ec.Workload, ec.DB, baseOpts)
	if err != nil {
		return nil, err
	}
	cls, err := Train(an.Dataset, ec.Train)
	if err != nil {
		return nil, err
	}

	moduleShare := func(f func(cellID int) bool) map[string]float64 {
		counts := map[string]int{}
		totals := map[string]int{}
		for _, c := range an.Run.Flat.Cells {
			mod := socgen.ModuleOf(c)
			totals[mod]++
			if f(c.ID) {
				counts[mod]++
			}
		}
		out := map[string]float64{}
		for mod, tot := range totals {
			out[mod] = 100 * float64(counts[mod]) / float64(tot)
		}
		return out
	}

	var rows []Fig7Row
	for _, flux := range fluxes {
		opts := baseOpts
		opts.Flux = flux
		opts.SampleFrac = baseOpts.SampleFrac * flux / 5e8
		if opts.SampleFrac > 1 {
			opts.SampleFrac = 1
		}
		opts.Seed = baseOpts.Seed + uint64(flux/1e8)
		run, err := inject.RunSoC(cfg, ec.Workload, ec.DB, opts)
		if err != nil {
			return nil, err
		}
		labels := run.Result.LabelCellsRefined(run.Result.ChipSER)
		rows = append(rows, Fig7Row{
			Source:  fmt.Sprintf("Simulation-%.0e", flux),
			Percent: moduleShare(func(id int) bool { return labels[id] }),
		})
	}
	pred, _, err := cls.Predict(an.Run.Flat)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig7Row{
		Source:  "SVM Classifier",
		Percent: moduleShare(func(id int) bool { return pred[id] }),
	})
	return rows, nil
}
