// Package shard turns a fault-injection campaign into distributable,
// restartable work units. A campaign's injection plan is fully drawn
// before any fan-out (inject.Campaign.DrawJobs), so sharding is a pure
// split of the plan's index range: every worker process rebuilds the
// identical campaign — design, golden run, checkpoint schedule, plan —
// from a self-contained CampaignSpec and executes disjoint [start,end)
// slices of it. Partial results merge into a Result that is bit-identical
// to the single-process campaign for any shard count and any completion
// order, which is the determinism gate TestShardedCampaignDeterminism
// pins alongside the warm-start gates in internal/inject.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/inject"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/socgen"
)

// PaperKN reproduces Table I's "Number of clusters" column: the cluster
// count the paper uses for benchmark idx (1-based).
func PaperKN(idx int) int {
	kn := []int{5, 6, 8, 9, 14, 15, 18, 19, 21, 23}
	if idx < 1 || idx > len(kn) {
		return 0
	}
	return kn[idx-1]
}

// WorkloadProgram maps a workload kernel name to the RISC-V program every
// campaign component (coordinator, workers, local sharded runs) must
// agree on; the sizes are the ones cmd/socfault has always used.
func WorkloadProgram(name string) (riscv.Program, error) {
	switch name {
	case "memcpy":
		return riscv.MemcpyProgram(16), nil
	case "dot":
		return riscv.DotProductProgram(16), nil
	case "crc":
		return riscv.CRCProgram(12), nil
	case "sort":
		return riscv.SortProgram(12), nil
	case "fib":
		return riscv.FibProgram(20), nil
	}
	return riscv.Program{}, fmt.Errorf("shard: unknown workload %q (want memcpy, dot, crc, sort or fib)", name)
}

// CampaignSpec is the self-contained, wire-format description of one
// campaign: which Table I benchmark, which workload kernel, and every
// option that influences the drawn plan or the verdicts. Two processes
// holding equal specs build bit-identical campaigns. Worker-count and
// checkpoint-pitch knobs are deliberately absent: they change how much
// work execution performs, never any verdict or statistic, and each
// process picks its own. Consequently the merged work counters
// (InjectEvals, WarmStarts, PrunedRuns) reflect whatever pitch each
// executing process actually used; they match the single-process run
// exactly when every process runs the default pitch, which is what the
// determinism gates pin. The checkpoint-placement policy IS carried:
// placement moves the first checkpoint, which decides whether early
// strikes warm-start or replay cold, so carrying it keeps the merged
// counters (and the fingerprint) stable across a fleet. The default
// (quantile) is normalized to the empty string so every pre-placement
// fingerprint — and journal — stays valid.
type CampaignSpec struct {
	SoC        int     `json:"soc"`
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"`
	LET        float64 `json:"let"`
	Flux       float64 `json:"flux"`
	ExposureS  float64 `json:"exposure_s"`
	KN         int     `json:"kn"`
	LN         int     `json:"ln"`
	SampleFrac float64 `json:"sample_frac"`
	MinPer     int     `json:"min_per_cluster"`
	Seed       uint64  `json:"seed"`
	// ClusterSeed is the Algorithm 1 seed; 0 derives it from the design
	// name exactly as inject.New does.
	ClusterSeed uint64 `json:"cluster_seed,omitempty"`
	ColdStart   bool   `json:"cold_start,omitempty"`
	CompareVCD  bool   `json:"compare_vcd,omitempty"`
	// CkptPlacement is inject.Options.CheckpointPlacement, with the
	// default (quantile) normalized to "" for fingerprint stability.
	CkptPlacement string `json:"ckpt_placement,omitempty"`
}

// SpecFromOptions lifts campaign options into a spec for the given
// benchmark and workload kernel.
func SpecFromOptions(soc int, workload string, o inject.Options) CampaignSpec {
	placement := o.CheckpointPlacement
	if placement == inject.PlacementQuantile {
		placement = "" // the default: normalized away, see CampaignSpec
	}
	return CampaignSpec{
		SoC:           soc,
		Workload:      workload,
		Engine:        string(o.Engine),
		LET:           o.LET,
		Flux:          o.Flux,
		ExposureS:     o.ExposureS,
		KN:            o.KN,
		LN:            o.LN,
		SampleFrac:    o.SampleFrac,
		MinPer:        o.MinPerCluster,
		Seed:          o.Seed,
		ClusterSeed:   o.ClusterSeed,
		ColdStart:     o.ColdStart,
		CompareVCD:    o.CompareVCD,
		CkptPlacement: placement,
	}
}

// Options lowers the spec back into campaign options. Function hooks and
// per-process knobs (Workers, CheckpointEveryCycles) stay at their
// defaults; inject.PrepareSoC fills the benchmark's weight model.
func (cs CampaignSpec) Options() inject.Options {
	return inject.Options{
		Engine:              sim.EngineKind(cs.Engine),
		LET:                 cs.LET,
		Flux:                cs.Flux,
		ExposureS:           cs.ExposureS,
		KN:                  cs.KN,
		LN:                  cs.LN,
		SampleFrac:          cs.SampleFrac,
		MinPerCluster:       cs.MinPer,
		Seed:                cs.Seed,
		ClusterSeed:         cs.ClusterSeed,
		ColdStart:           cs.ColdStart,
		CompareVCD:          cs.CompareVCD,
		CheckpointPlacement: cs.CkptPlacement,
	}
}

// Validate rejects specs that could not build a campaign, with errors a
// CLI user can act on.
func (cs CampaignSpec) Validate() error {
	if _, err := socgen.ConfigByIndex(cs.SoC); err != nil {
		return err
	}
	if _, err := WorkloadProgram(cs.Workload); err != nil {
		return err
	}
	switch sim.EngineKind(cs.Engine) {
	case sim.KindEvent, sim.KindLevel:
	default:
		return fmt.Errorf("shard: unknown engine %q (want %s or %s)", cs.Engine, sim.KindEvent, sim.KindLevel)
	}
	if cs.SampleFrac <= 0 || cs.SampleFrac > 1 {
		return fmt.Errorf("shard: sample fraction %g out of (0,1]", cs.SampleFrac)
	}
	if cs.KN < 1 || cs.LN < 1 {
		return fmt.Errorf("shard: KN/LN must be positive (got %d/%d)", cs.KN, cs.LN)
	}
	if cs.Flux < 0 || cs.ExposureS < 0 {
		return fmt.Errorf("shard: negative flux or exposure")
	}
	switch cs.CkptPlacement {
	case "", inject.PlacementFixed, inject.PlacementQuantile:
	default:
		return fmt.Errorf("shard: unknown checkpoint placement %q (want %s or %s)",
			cs.CkptPlacement, inject.PlacementFixed, inject.PlacementQuantile)
	}
	return nil
}

// Fingerprint is the campaign's identity: a hash over the canonical JSON
// encoding of the spec (design + workload + options + seed). The runstore
// journal and the coordinator/worker protocol key everything on it, so a
// journal or a worker can never mix shards of different campaigns.
func (cs CampaignSpec) Fingerprint() (string, error) {
	b, err := json.Marshal(cs)
	if err != nil {
		return "", fmt.Errorf("shard: marshaling spec: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Spec is one shard: a campaign identity plus a half-open injection index
// range of its drawn plan.
type Spec struct {
	Campaign    CampaignSpec `json:"campaign"`
	Fingerprint string       `json:"fingerprint"`
	Index       int          `json:"index"`
	NumShards   int          `json:"num_shards"`
	Start       int          `json:"start"`
	End         int          `json:"end"`
}

// Plan splits a campaign's totalJobs-long injection plan into numShards
// contiguous, balanced shards. Shard sizes differ by at most one; every
// shard is non-empty, so numShards may not exceed totalJobs.
func Plan(cs CampaignSpec, numShards, totalJobs int) ([]Spec, error) {
	if numShards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be at least 1", numShards)
	}
	if totalJobs < 1 {
		return nil, fmt.Errorf("shard: campaign plan holds no injections")
	}
	if numShards > totalJobs {
		return nil, fmt.Errorf("shard: shard count %d exceeds the campaign's %d planned injections", numShards, totalJobs)
	}
	fp, err := cs.Fingerprint()
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, numShards)
	base, rem := totalJobs/numShards, totalJobs%numShards
	start := 0
	for i := range specs {
		n := base
		if i < rem {
			n++
		}
		specs[i] = Spec{
			Campaign:    cs,
			Fingerprint: fp,
			Index:       i,
			NumShards:   numShards,
			Start:       start,
			End:         start + n,
		}
		start += n
	}
	return specs, nil
}

// PlanAtMost is Plan with the shard count clamped to the plan size — the
// right call for a sweep, where one -shards knob covers campaigns of very
// different sample volumes and a tiny campaign should degrade to fewer
// (larger) shards instead of failing the whole grid.
func PlanAtMost(cs CampaignSpec, numShards, totalJobs int) ([]Spec, error) {
	if numShards > totalJobs {
		numShards = totalJobs
	}
	return Plan(cs, numShards, totalJobs)
}
