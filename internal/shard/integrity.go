package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrIntegrity is the sentinel every partial-checksum mismatch wraps:
// the bytes of a Partial do not hash to the checksum stamped on it at
// execution time, so somewhere between the executor and this verifier —
// the wire, the journal, a lake blob — the result was corrupted. Match
// with errors.Is; the concrete *IntegrityError carries the range and the
// two sums. The one correct reaction everywhere is to drop the partial
// and re-derive it (re-issue the shard, skip the journal record, treat
// the lake entry as a miss): corruption degrades to re-simulation, never
// to wrong output.
var ErrIntegrity = errors.New("shard: partial integrity checksum mismatch")

// IntegrityError is a checksum mismatch on one partial.
type IntegrityError struct {
	Start, End int
	Want, Got  string // stamped vs recomputed sha256, hex
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("shard: partial [%d,%d) integrity checksum mismatch: stamped %.12s, content hashes to %.12s",
		e.Start, e.End, e.Want, e.Got)
}

// Is makes errors.Is(err, ErrIntegrity) match.
func (e *IntegrityError) Is(target error) bool { return target == ErrIntegrity }

// Sum is the partial's integrity checksum: sha256 over the canonical
// JSON encoding of the partial with two fields excluded. Checksum is
// excluded because it is the stamp itself. Index is excluded because it
// is plan-local routing, legitimately rewritten when a lake-published
// partial is adopted under a different shard plan — the checksum guards
// the computed payload (range, verdicts, work counters), not where the
// payload is filed.
func (p *Partial) Sum() (string, error) {
	c := *p
	c.Index = 0
	c.Checksum = ""
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("shard: marshaling partial for checksum: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Stamp computes and stores the integrity checksum. The executor stamps
// every partial it computes; everything downstream only verifies.
func (p *Partial) Stamp() error {
	sum, err := p.Sum()
	if err != nil {
		return err
	}
	p.Checksum = sum
	return nil
}

// Verify recomputes the checksum and compares it to the stamp, returning
// an *IntegrityError (errors.Is ErrIntegrity) on mismatch. An unstamped
// partial verifies vacuously: journals and lake blobs written before
// checksums existed, and workers that predate them, stay loadable — the
// integrity layer tightens what it can see, it does not invalidate
// history.
func (p *Partial) Verify() error {
	if p == nil || p.Checksum == "" {
		return nil
	}
	sum, err := p.Sum()
	if err != nil {
		return err
	}
	if sum != p.Checksum {
		return &IntegrityError{Start: p.Start, End: p.End, Want: p.Checksum, Got: sum}
	}
	return nil
}

// VerdictSum hashes only the cross-execution-stable payload of a
// partial: its plan range and the verdicts themselves. Work counters
// (evals, warm starts, pruned runs, wall times) legitimately differ
// between two correct executions — different checkpoint pitch, different
// machine — so the integrity Checksum, which covers them, can only ever
// compare a partial against its own bytes. VerdictSum is what audit
// re-execution compares across workers: two honest executions of one
// shard agree on it bit for bit, whatever hardware ran them.
func (p *Partial) VerdictSum() (string, error) {
	c := struct {
		Start      int         `json:"start"`
		End        int         `json:"end"`
		Injections interface{} `json:"injections"`
	}{Start: p.Start, End: p.End, Injections: p.Injections}
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("shard: marshaling partial for verdict sum: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ExecPanicError is a shard execution that panicked inside the
// simulator. The worker's executor converts the crash into this typed
// error so the work loop can report the shard failed (with the panic
// message) through POST /v1/shards/fail and keep serving, instead of
// dying and leaving the coordinator to infer the failure from a silent
// lease expiry.
type ExecPanicError struct {
	Msg string
}

func (e *ExecPanicError) Error() string {
	return "shard: execution panicked: " + e.Msg
}
