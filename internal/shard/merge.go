package shard

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/inject"
)

// Merge assembles shard partials into the full campaign result. Partials
// may arrive in any order and may contain exact duplicates (a journal
// replay racing a live worker); Merge sorts them by plan range, drops
// duplicates, verifies the ranges tile the whole plan with no gap or
// overlap, concatenates the injections in plan order and aggregates. The
// outcome is bit-identical to the single-process Campaign.Run result for
// any shard count — sharding only ever partitions the pre-drawn plan.
func Merge(b *Built, partials []*Partial) (*inject.Result, error) {
	ps := make([]*Partial, 0, len(partials))
	for _, p := range partials {
		if p == nil {
			continue
		}
		ps = append(ps, p)
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })

	base := b.Run.Result
	res := &inject.Result{
		Design:      base.Design,
		Engine:      base.Engine,
		Options:     base.Options,
		Modules:     map[string]*inject.ModuleStats{},
		ClusterOf:   base.ClusterOf,
		GoldenWall:  base.GoldenWall,
		GoldenEvals: base.GoldenEvals,
	}
	next := 0
	for _, p := range ps {
		if p.Start < next && p.End <= next {
			// Duplicate of an already-merged range; deterministic execution
			// makes it byte-equal, so it carries nothing new.
			continue
		}
		if p.Start != next {
			return nil, fmt.Errorf("shard: merge gap or overlap at injection %d (next partial covers [%d,%d))", next, p.Start, p.End)
		}
		if len(p.Injections) != p.End-p.Start {
			return nil, fmt.Errorf("shard: partial [%d,%d) carries %d injections", p.Start, p.End, len(p.Injections))
		}
		res.Injections = append(res.Injections, p.Injections...)
		res.InjectWall += time.Duration(p.InjectWallNS)
		res.InjectEvals += p.InjectEvals
		res.WarmStarts += p.WarmStarts
		res.PrunedRuns += p.PrunedRuns
		res.DeltaRestores += p.DeltaRestores
		res.RestoreWall += time.Duration(p.RestoreWallNS)
		next = p.End
	}
	if next != len(b.Jobs) {
		return nil, fmt.Errorf("shard: partials cover %d of %d planned injections", next, len(b.Jobs))
	}
	b.Run.Campaign.Aggregate(res)
	return res, nil
}
