package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/socgen"
)

// short truncates a fingerprint to the 12-hex prefix used everywhere a
// human reads one (logs, traces, metric labels).
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Built is a campaign readied on one process: the generated design, the
// golden run with its checkpoint schedule, and the fully drawn injection
// plan. Building is the expensive per-process step; every shard of the
// campaign executed on this process reuses it.
type Built struct {
	Spec        CampaignSpec
	Fingerprint string
	Run         *inject.SoCRun
	Jobs        []inject.Job
}

// Build validates the spec and constructs the campaign it describes.
func Build(cs CampaignSpec) (*Built, error) {
	return BuildLocal(cs, nil)
}

// BuildLocal is Build with process-local tuning applied on top of the
// spec's options — worker count, checkpoint pitch: knobs that change how
// fast this process executes its shards but never what they compute, and
// therefore deliberately absent from the spec and the fingerprint.
func BuildLocal(cs CampaignSpec, tune func(*inject.Options)) (*Built, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	cfg, err := socgen.ConfigByIndex(cs.SoC)
	if err != nil {
		return nil, err
	}
	prog, err := WorkloadProgram(cs.Workload)
	if err != nil {
		return nil, err
	}
	fp, err := cs.Fingerprint()
	if err != nil {
		return nil, err
	}
	opts := cs.Options()
	if tune != nil {
		tune(&opts)
	}
	run, err := inject.PrepareSoC(cfg, prog, fault.DefaultDB(), opts)
	if err != nil {
		return nil, err
	}
	return &Built{
		Spec:        cs,
		Fingerprint: fp,
		Run:         run,
		Jobs:        run.Campaign.DrawJobs(),
	}, nil
}

// Partial is one shard's raw outcome: the injections of its plan range in
// plan order, plus this range's share of the work counters. It is the
// unit the runstore journals and the coordinator merges; verdict-relevant
// state only, so a Partial computed by any process merges bit-identically.
type Partial struct {
	Index         int                `json:"index"`
	Start         int                `json:"start"`
	End           int                `json:"end"`
	Injections    []inject.Injection `json:"injections"`
	InjectWallNS  int64              `json:"inject_wall_ns"`
	InjectEvals   uint64             `json:"inject_evals"`
	WarmStarts    uint64             `json:"warm_starts"`
	PrunedRuns    uint64             `json:"pruned_runs"`
	DeltaRestores uint64             `json:"delta_restores,omitempty"`
	RestoreWallNS int64              `json:"restore_wall_ns,omitempty"`
	// Checksum is the integrity stamp over the canonical encoding of the
	// fields above (Index excluded — see Sum). The executor stamps it at
	// execution time; Queue.Complete, journal replay and lake promotion
	// re-verify, so corruption anywhere downstream surfaces as a typed
	// refusal and a re-simulation, never as wrong merged output. Empty on
	// records from before checksums existed.
	Checksum string `json:"checksum,omitempty"`
}

// Covers reports whether the partial carries a complete, internally
// consistent result for the given shard spec.
func (p *Partial) Covers(sp Spec) bool {
	return p != nil && p.Start == sp.Start && p.End == sp.End && len(p.Injections) == sp.End-sp.Start
}

// ExecuteOn runs one shard of an already-built campaign and returns its
// partial result, integrity-stamped. A panic inside the simulator is
// recovered into a typed *ExecPanicError instead of killing the caller:
// the work loop reports it through POST /v1/shards/fail so the
// coordinator can count the attempt, rather than learning about the
// crash from a silent lease expiry. Calls on the same Built must not
// overlap; Executor serializes them.
func ExecuteOn(b *Built, sp Spec) (*Partial, error) {
	if sp.Fingerprint != "" && sp.Fingerprint != b.Fingerprint {
		return nil, fmt.Errorf("shard: spec fingerprint %.12s does not match built campaign %.12s", sp.Fingerprint, b.Fingerprint)
	}
	if sp.Start < 0 || sp.End > len(b.Jobs) || sp.Start >= sp.End {
		return nil, fmt.Errorf("shard: range [%d,%d) invalid for a plan of %d injections", sp.Start, sp.End, len(b.Jobs))
	}
	var res inject.Result
	if err := runJobsRecovering(b, &res, sp.Start, sp.End); err != nil {
		return nil, err
	}
	p := &Partial{
		Index:         sp.Index,
		Start:         sp.Start,
		End:           sp.End,
		Injections:    res.Injections,
		InjectWallNS:  res.InjectWall.Nanoseconds(),
		InjectEvals:   res.InjectEvals,
		WarmStarts:    res.WarmStarts,
		PrunedRuns:    res.PrunedRuns,
		DeltaRestores: res.DeltaRestores,
		RestoreWallNS: res.RestoreWall.Nanoseconds(),
	}
	if err := p.Stamp(); err != nil {
		return nil, err
	}
	return p, nil
}

// runJobsRecovering converts a simulator panic into *ExecPanicError.
func runJobsRecovering(b *Built, res *inject.Result, start, end int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ExecPanicError{Msg: fmt.Sprint(r)}
		}
	}()
	return b.Run.Campaign.RunJobs(res, start, end)
}

// cacheKey identifies one executed shard: the campaign it belongs to and
// the plan range it covered. The shard index is deliberately absent — a
// range re-planned under a different shard count is a different key, but
// the same range under the same fingerprint always computes the same
// partial.
type cacheKey struct {
	fp         string
	start, end int
}

// maxCachedCampaigns bounds the executor's per-campaign memory: a
// worker draining a long sweep would otherwise retain every campaign's
// golden run and every computed partial for the whole process lifetime.
// Eviction is least-recently-used by campaign; an evicted campaign that
// comes back is rebuilt and re-simulated — always correct, just slower,
// and the coordinator's affinity scheduling makes it rare.
const maxCachedCampaigns = 4

// Executor executes shards on the local process, building each distinct
// campaign (golden run, checkpoints, plan) at most once and reusing it
// across all of that campaign's shards — the worker-process analogue of
// the per-goroutine engine reuse inside a campaign. It also memoizes
// every computed partial by (fingerprint, range): a shard whose lease
// expired while this worker was still computing it gets re-issued, and
// if it comes back to the same worker (common under golden-run-affinity
// scheduling) the finished result is served from cache instead of
// re-simulated. Execution is deterministic, so a cached partial is
// bit-identical to a fresh one. Both caches hold at most
// maxCachedCampaigns campaigns, least-recently-used first out.
type Executor struct {
	mu       sync.Mutex
	built    map[string]*Built
	building map[string]*buildState
	results  map[cacheKey]*Partial
	recent   []string       // campaign fingerprints, most recent first
	pins     map[string]int // in-flight ExecuteFor calls per campaign
	hits     uint64
	m        *Metrics
	tracer   *obs.Tracer
	tune     func(*inject.Options)
	builder  Builder
	partials PartialCache

	// execMu serializes actual shard simulation: a shard already fans out
	// over all cores internally, so concurrent simulations would only
	// thrash. Builds and cache lookups do not hold it.
	execMu sync.Mutex

	// execHook, when set, runs after the campaign is built and before the
	// shard simulates — the window in which cache eviction used to be able
	// to drop a Built a batch still held. Test-only.
	execHook func()
}

// buildState tracks one in-flight campaign build so concurrent
// ExecuteFor calls for the same campaign wait for it instead of building
// twice.
type buildState struct {
	done chan struct{}
	err  error
}

// NewExecutor returns an empty executor.
func NewExecutor() *Executor {
	return &Executor{
		built:    map[string]*Built{},
		building: map[string]*buildState{},
		results:  map[cacheKey]*Partial{},
		pins:     map[string]int{},
	}
}

// SetBuilder installs the campaign-construction backend; nil restores
// the default local build.
func (e *Executor) SetBuilder(b Builder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.builder = b
}

// SetPartialCache installs the fleet-wide result-cache backend; nil
// disables it.
func (e *Executor) SetPartialCache(pc PartialCache) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.partials = pc
}

// SetMetrics attaches obs instrumentation: cache-hit counting on m, and
// "golden" (campaign build) / "execute" (per shard, tid = shard index)
// spans on tr. Pass nils to detach.
func (e *Executor) SetMetrics(m *Metrics, tr *obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.m = m
	e.tracer = tr
}

// SetTune installs process-local option tuning applied to every campaign
// this executor builds — the BuildLocal hook, reachable from the cache
// path. Tuning changes how fast shards execute (worker count, checkpoint
// pitch, metrics sinks), never what they compute.
func (e *Executor) SetTune(tune func(*inject.Options)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tune = tune
}

func (e *Executor) met() *Metrics {
	if e.m != nil {
		return e.m
	}
	return noMetrics
}

// touch marks a campaign most-recently-used and evicts the stalest
// campaigns (their build and cached partials) beyond the cache bound.
// Campaigns pinned by an in-flight ExecuteFor are never evicted — a
// batch mid-simulation must keep its golden checkpoints — so the cache
// may transiently exceed the bound while everything in it is in use.
// Callers hold e.mu.
func (e *Executor) touch(fp string) {
	found := false
	for i, got := range e.recent {
		if got == fp {
			copy(e.recent[1:i+1], e.recent[:i])
			e.recent[0] = fp
			found = true
			break
		}
	}
	if !found {
		e.recent = append([]string{fp}, e.recent...)
	}
	over := len(e.recent) - maxCachedCampaigns
	for i := len(e.recent) - 1; i >= 0 && over > 0; i-- {
		evict := e.recent[i]
		if e.pins[evict] > 0 {
			continue
		}
		e.recent = append(e.recent[:i], e.recent[i+1:]...)
		delete(e.built, evict)
		for key := range e.results {
			if key.fp == evict {
				delete(e.results, key)
			}
		}
		over--
	}
}

// Adopt seeds the cache with an externally built campaign, so a process
// that already built one (e.g. a coordinator planning shards) does not
// build it twice.
func (e *Executor) Adopt(b *Built) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.built[b.Fingerprint] = b
	e.touch(b.Fingerprint)
}

// Execute runs one shard, building its campaign on first use and serving
// an already-computed (fingerprint, range) from the result cache.
// Execution is serialized: a shard already fans out over all cores
// internally, so concurrent Execute calls would only thrash.
func (e *Executor) Execute(sp Spec) (*Partial, error) {
	return e.ExecuteFor(sp, "")
}

// ExecuteFor is Execute with the shard's spend attributed to a sweep:
// for the duration of the shard the campaign's metrics sink is swapped
// for a sweep-labeled cost sink chained to the original (fleet totals
// keep accumulating), and shard wall / cache hits are counted under the
// same label. sweep is the fp12 from Lease.Sweep; empty disables
// attribution. Attribution is pure accounting — the computed Partial is
// bit-identical either way.
func (e *Executor) ExecuteFor(sp Spec, sweep string) (*Partial, error) {
	fp, err := sp.Campaign.Fingerprint()
	if err != nil {
		return nil, err
	}
	if sp.Fingerprint != "" && sp.Fingerprint != fp {
		return nil, fmt.Errorf("shard: spec fingerprint %.12s does not match its campaign spec %.12s", sp.Fingerprint, fp)
	}
	key := cacheKey{fp: fp, start: sp.Start, end: sp.End}

	e.mu.Lock()
	reg := e.m.Registry()
	if reg == nil {
		sweep = ""
	}
	if p, ok := e.results[key]; ok {
		e.hits++
		e.met().CacheHits.Inc()
		if sweep != "" {
			reg.NewCounter("sweep_cost_cache_hits_total", "Executor cache hits attributed to the sweep.", "sweep", sweep).Inc()
		}
		e.touch(fp)
		e.mu.Unlock()
		return p, nil
	}
	// Pin the campaign for the rest of the call: eviction skips pinned
	// fingerprints, so the Built (and its golden checkpoints) cannot be
	// dropped out from under this shard by concurrent Adopt/Execute
	// traffic on other campaigns.
	e.pins[fp]++
	defer func() {
		e.mu.Lock()
		if e.pins[fp]--; e.pins[fp] <= 0 {
			delete(e.pins, fp)
		}
		e.mu.Unlock()
	}()
	b, err := e.campaignFor(fp, sp)
	pc := e.partials
	hook := e.execHook
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Fleet-wide partial cache: a finished result published by any process
	// for this exact (fingerprint, range) is bit-identical to what this
	// shard would compute, so adopt it instead of re-simulating. The shard
	// index is plan-local and rewritten for this spec (the integrity
	// checksum excludes it, so the stamp survives the rewrite). A partial
	// that fails verification is a corrupt cache object: treat it as a
	// miss and simulate — the lake accelerates, it never decides.
	if pc != nil {
		if p := pc.GetPartial(fp, sp.Start, sp.End); p != nil {
			adopted := *p
			adopted.Index = sp.Index
			if adopted.Covers(sp) && adopted.Verify() == nil {
				e.mu.Lock()
				e.results[key] = &adopted
				e.touch(fp)
				e.mu.Unlock()
				return &adopted, nil
			}
		}
	}

	if hook != nil {
		hook()
	}

	e.execMu.Lock()
	var restoreMetrics func()
	if sweep != "" {
		// The metrics swap is scoped to the execMu critical section:
		// SetMetrics must not race with another shard of the same campaign.
		cm := inject.NewCostMetrics(reg, sweep)
		cm.Chain = b.Run.Campaign.Metrics()
		b.Run.Campaign.SetMetrics(cm)
		restoreMetrics = func() { b.Run.Campaign.SetMetrics(cm.Chain) }
	}
	start := time.Now()
	p, err := ExecuteOn(b, sp)
	if restoreMetrics != nil {
		restoreMetrics()
	}
	if err != nil {
		e.execMu.Unlock()
		return nil, err
	}
	if sweep != "" {
		reg.NewCounter("sweep_cost_shards_total", "Shards executed for the sweep on this worker.", "sweep", sweep).Inc()
		reg.NewCounter("sweep_cost_shard_wall_ns_total", "Shard execution wall nanoseconds attributed to the sweep.", "sweep", sweep).
			Add(uint64(time.Since(start).Nanoseconds()))
	}
	e.tracer.Span("execute", "shard", 0, int64(sp.Index), start, map[string]any{
		"campaign": short(fp), "shard": sp.Index, "start": sp.Start, "end": sp.End,
	})
	e.execMu.Unlock()

	e.mu.Lock()
	e.results[key] = p
	e.touch(fp)
	e.mu.Unlock()
	if pc != nil {
		pc.PutPartial(fp, p)
	}
	return p, nil
}

// campaignFor returns the Built for fp, building it via the installed
// Builder on first use. Concurrent callers for the same campaign wait
// for the in-flight build instead of duplicating it. Called with e.mu
// held; returns with e.mu held.
func (e *Executor) campaignFor(fp string, sp Spec) (*Built, error) {
	for {
		if b, ok := e.built[fp]; ok {
			e.touch(fp)
			return b, nil
		}
		if st, ok := e.building[fp]; ok {
			e.mu.Unlock()
			<-st.done
			e.mu.Lock()
			if st.err != nil {
				return nil, st.err
			}
			continue
		}
		st := &buildState{done: make(chan struct{})}
		e.building[fp] = st
		builder := e.builder
		tune := e.tune
		tracer := e.tracer
		e.mu.Unlock()

		start := time.Now()
		var b *Built
		var fetched bool
		var err error
		if builder != nil {
			b, fetched, err = builder.Build(sp.Campaign, tune)
		} else {
			b, err = BuildLocal(sp.Campaign, tune)
		}
		if err == nil && !fetched {
			// Only a real local golden build earns the span — a fetch from
			// the artifact lake is not a build, which is what lets traces
			// prove a campaign's golden run happened once fleet-wide.
			tracer.Span("golden", "shard", 0, 0, start, map[string]any{"campaign": short(fp)})
		}

		e.mu.Lock()
		st.err = err
		if err == nil {
			e.built[fp] = b
			e.touch(fp)
		}
		delete(e.building, fp)
		close(st.done)
		return b, err
	}
}

// CacheHits reports how many Execute calls were served from the result
// cache instead of re-simulating.
func (e *Executor) CacheHits() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits
}
