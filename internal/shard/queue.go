package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStaleEpoch marks a completion that was fenced: its lease was granted
// by an earlier coordinator incarnation and the shard has since completed
// under the current one. The result itself is valid (execution is
// deterministic) — the fence only refuses a second merge, so a deposed
// coordinator's zombie workers can never double-count a shard. Callers
// match with errors.Is.
var ErrStaleEpoch = errors.New("completion bears a stale coordinator epoch")

// Queue is the coordinator's shard state machine. Every shard is pending,
// leased or done; leases expire, returning their shard to pending, which
// is how work leased to a dead worker gets re-issued. The queue is pure
// bookkeeping — it never executes anything and takes the current time as
// an argument, so its behaviour is fully deterministic under test.
type Queue struct {
	mu        sync.Mutex
	specs     []Spec
	state     []shardState
	partials  []*Partial
	leases    map[string]*Lease
	byShard   []string       // shard index -> primary lease ID, "" if none
	backups   map[int]string // shard index -> speculative backup lease ID
	ttl       time.Duration
	epoch     uint64
	nextLease uint64
	remaining int
	doneCh    chan struct{}
	// durSum/durN accumulate observed lease-grant-to-completion times of
	// shards finished under a live lease — the ETA estimator's input.
	durSum time.Duration
	durN   int
	// fenced counts completions refused under ErrStaleEpoch; speculated
	// counts backup leases issued by SpeculativeLease.
	fenced     int
	speculated int
	// m mirrors lifecycle transitions into the obs registry; nil leaves
	// the queue uninstrumented (met() substitutes all-no-op handles).
	m *Metrics
}

// noMetrics is the all-no-op sink substituted when no Metrics is set.
var noMetrics = &Metrics{}

// SetMetrics attaches obs instrumentation to the queue. Counters are
// shared across queues (fleet totals); pass nil to detach.
func (q *Queue) SetMetrics(m *Metrics) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.m = m
}

func (q *Queue) met() *Metrics {
	if q.m != nil {
		return q.m
	}
	return noMetrics
}

type shardState uint8

const (
	statePending shardState = iota
	stateLeased
	stateDone
)

// Lease is one worker's claim on one shard. TTL is the coordinator's
// lease duration; a worker that expects its shard to outrun it keeps the
// lease alive by calling Renew at some fraction of the TTL (campaignd
// heartbeats at TTL/3), so a live shard is never redundantly re-issued
// to idle workers.
type Lease struct {
	ID        string        `json:"id"`
	Worker    string        `json:"worker"`
	Spec      Spec          `json:"spec"`
	ExpiresAt time.Time     `json:"expires_at"`
	TTL       time.Duration `json:"ttl_ns"`
	// Epoch is the coordinator incarnation that granted the lease — a
	// fencing token. A worker echoes it on Complete; after a failover the
	// new coordinator's queues carry a higher epoch and fence any
	// already-done shard completed under an older one (ErrStaleEpoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Speculative marks a straggler backup lease issued by
	// SpeculativeLease, so coordinators can trace and count re-issues
	// distinctly from first-issue leases.
	Speculative bool `json:"speculative,omitempty"`
	// Sweep is the fp12 of the sweep the shard belongs to, stamped by
	// sweep.Pool when it grants the lease. Workers thread it through
	// Executor.ExecuteFor so the shard's simulation spend is attributed
	// to its sweep (sweep_cost_* series). Empty outside a sweep pool;
	// purely accounting, never a routing or correctness input.
	Sweep string `json:"sweep,omitempty"`

	granted time.Time // lease grant time, for shard-duration observation
}

// Progress is a point-in-time summary of the queue. AvgShardNS is the
// mean observed lease-to-completion time of the shards finished so far
// (0 until the first completion under a live lease) — the input for ETA
// estimates, kept per-queue so sweeps never mix shard runtimes of
// different campaigns.
type Progress struct {
	Total      int   `json:"total"`
	Done       int   `json:"done"`
	Leased     int   `json:"leased"`
	Pending    int   `json:"pending"`
	AvgShardNS int64 `json:"avg_shard_ns,omitempty"`
	// Fenced counts completions refused with ErrStaleEpoch; Speculated
	// counts straggler backup leases issued. Both are cumulative.
	Fenced     int `json:"fenced,omitempty"`
	Speculated int `json:"speculated,omitempty"`
}

// NewQueue builds a queue over a planned shard set. ttl is how long a
// lease lives without being completed before its shard is re-issued.
func NewQueue(specs []Spec, ttl time.Duration) *Queue {
	q := &Queue{
		specs:     specs,
		state:     make([]shardState, len(specs)),
		partials:  make([]*Partial, len(specs)),
		leases:    map[string]*Lease{},
		byShard:   make([]string, len(specs)),
		backups:   map[int]string{},
		ttl:       ttl,
		remaining: len(specs),
		doneCh:    make(chan struct{}),
	}
	if q.remaining == 0 {
		close(q.doneCh)
	}
	return q
}

// SetEpoch stamps the coordinator epoch onto every lease granted from now
// on. A coordinator sets it once at startup (and a standby sets a higher
// one at takeover); completions echoing a lower epoch against an
// already-done shard are fenced with ErrStaleEpoch.
func (q *Queue) SetEpoch(epoch uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.epoch = epoch
}

// MarkDone records a shard completed outside the lease cycle — a journal
// entry loaded at startup. The partial must cover its shard exactly;
// mismatched entries (e.g. a journal written under a different shard
// count) are rejected so the shard runs again instead of merging garbage.
func (q *Queue) MarkDone(p *Partial) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if p == nil || p.Index < 0 || p.Index >= len(q.specs) {
		return fmt.Errorf("shard: no shard with index %v", p)
	}
	if !p.Covers(q.specs[p.Index]) {
		sp := q.specs[p.Index]
		return fmt.Errorf("shard: journaled shard %d covers [%d,%d) with %d injections, plan wants [%d,%d)",
			p.Index, p.Start, p.End, len(p.Injections), sp.Start, sp.End)
	}
	q.complete(p.Index, p)
	return nil
}

// Lease claims the lowest-indexed pending shard for a worker, first
// expiring any stale leases. ok is false when nothing is pending — which
// either means the campaign is done (Done reports true) or that every
// remaining shard is leased out and the worker should poll again.
func (q *Queue) Lease(worker string, now time.Time) (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	for i, st := range q.state {
		if st != statePending {
			continue
		}
		q.nextLease++
		l := &Lease{
			ID:        fmt.Sprintf("lease-%d-shard-%d", q.nextLease, i),
			Worker:    worker,
			Spec:      q.specs[i],
			ExpiresAt: now.Add(q.ttl),
			TTL:       q.ttl,
			Epoch:     q.epoch,
			granted:   now,
		}
		q.state[i] = stateLeased
		q.leases[l.ID] = l
		q.byShard[i] = l.ID
		q.met().Leases.Inc()
		return l, true
	}
	return nil, false
}

// SpeculativeLease re-issues a still-leased shard to a second worker — a
// MapReduce-style backup task. It only fires for a shard whose primary
// lease has run at least factor x the observed mean shard duration (so
// nothing speculates until a baseline exists), never hands a worker a
// backup of its own shard, and issues at most one backup per shard.
// Deterministic execution makes the race safe: whichever copy completes
// first wins, the other is refused as a duplicate. Callers invoke this
// only when no pending shard exists — speculation must never starve
// first-issue work.
func (q *Queue) SpeculativeLease(worker string, now time.Time, factor float64) (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	if factor <= 0 || q.durN == 0 {
		return nil, false
	}
	threshold := time.Duration(float64(q.durSum/time.Duration(q.durN)) * factor)
	best, bestAge := -1, time.Duration(0)
	for i, st := range q.state {
		if st != stateLeased {
			continue
		}
		if _, ok := q.backups[i]; ok {
			continue
		}
		pl := q.leases[q.byShard[i]]
		if pl == nil || pl.Worker == worker {
			continue
		}
		if age := now.Sub(pl.granted); age >= threshold && age > bestAge {
			best, bestAge = i, age
		}
	}
	if best == -1 {
		return nil, false
	}
	q.nextLease++
	l := &Lease{
		ID:          fmt.Sprintf("lease-%d-shard-%d", q.nextLease, best),
		Worker:      worker,
		Spec:        q.specs[best],
		ExpiresAt:   now.Add(q.ttl),
		TTL:         q.ttl,
		Epoch:       q.epoch,
		Speculative: true,
		granted:     now,
	}
	q.leases[l.ID] = l
	q.backups[best] = l.ID
	q.speculated++
	q.met().Leases.Inc()
	q.met().Speculated.Inc()
	return l, true
}

// Complete resolves a lease with its shard's partial result. A result
// arriving after its lease expired is still accepted as long as the
// shard has not completed elsewhere: execution is deterministic, so a
// slow worker's partial is bit-identical to whatever a re-execution
// would produce, and rejecting it would livelock any campaign whose
// per-shard runtime exceeds the lease TTL. Only a duplicate of an
// already-done shard is refused (the caller just drops its copy);
// duplicates delivered under an epoch older than the queue's are fenced
// with ErrStaleEpoch so zombies of a deposed coordinator are visible as
// such. epoch echoes Lease.Epoch; pass 0 when epochs are not in play.
func (q *Queue) Complete(leaseID string, epoch uint64, p *Partial, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	if p == nil || p.Index < 0 || p.Index >= len(q.specs) {
		return fmt.Errorf("shard: completion names no known shard")
	}
	sp := q.specs[p.Index]
	if !p.Covers(sp) {
		return fmt.Errorf("shard: result for shard %d covers [%d,%d) with %d injections, plan wants [%d,%d)",
			p.Index, p.Start, p.End, len(p.Injections), sp.Start, sp.End)
	}
	if l, ok := q.leases[leaseID]; ok && l.Spec.Index != p.Index {
		return fmt.Errorf("shard: lease %q is for shard %d, result is for shard %d", leaseID, l.Spec.Index, p.Index)
	}
	if q.state[p.Index] == stateDone {
		if epoch < q.epoch {
			q.fenced++
			q.met().Fenced.Inc()
			return fmt.Errorf("shard: shard %d already completed: %w (epoch %d < %d)", p.Index, ErrStaleEpoch, epoch, q.epoch)
		}
		return fmt.Errorf("shard: shard %d already completed elsewhere", p.Index)
	}
	if l, ok := q.leases[leaseID]; ok {
		q.durSum += now.Sub(l.granted)
		q.durN++
		q.met().observeDur(now.Sub(l.granted))
	}
	q.complete(p.Index, p)
	return nil
}

// Renew extends a live lease's deadline by a full TTL — the heartbeat a
// worker sends while a long shard is still executing, so the shard is
// not redundantly re-issued to idle workers when its runtime exceeds
// the configured lease duration. Renewing an unknown or already-expired
// lease fails; the worker just stops heartbeating and relies on the
// late-completion acceptance in Complete.
func (q *Queue) Renew(leaseID string, now time.Time) (time.Time, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	l, ok := q.leases[leaseID]
	if !ok {
		return time.Time{}, fmt.Errorf("shard: lease %q unknown or expired", leaseID)
	}
	l.ExpiresAt = now.Add(q.ttl)
	q.met().Renewals.Inc()
	return l.ExpiresAt, nil
}

// complete transitions a shard to done. Callers hold q.mu.
func (q *Queue) complete(idx int, p *Partial) {
	if q.state[idx] == stateDone {
		return
	}
	if id := q.byShard[idx]; id != "" {
		delete(q.leases, id)
		q.byShard[idx] = ""
	}
	if id, ok := q.backups[idx]; ok {
		delete(q.leases, id)
		delete(q.backups, idx)
	}
	q.state[idx] = stateDone
	q.partials[idx] = p
	q.remaining--
	if q.remaining == 0 {
		close(q.doneCh)
	}
}

// expire requeues every shard whose lease deadline has passed. An
// expired primary with a still-live backup hands the shard to the backup
// instead of requeueing — the shard stays leased, never triple-issued.
// Callers hold q.mu.
func (q *Queue) expire(now time.Time) {
	for id, l := range q.leases {
		if l.ExpiresAt.After(now) {
			continue
		}
		idx := l.Spec.Index
		delete(q.leases, id)
		q.met().Expiries.Inc()
		if q.backups[idx] == id {
			delete(q.backups, idx)
			continue
		}
		if q.byShard[idx] == id {
			q.byShard[idx] = ""
			if bid, ok := q.backups[idx]; ok {
				if bl := q.leases[bid]; bl != nil && bl.ExpiresAt.After(now) {
					q.byShard[idx] = bid
					delete(q.backups, idx)
					continue
				}
			}
			if q.state[idx] == stateLeased {
				q.state[idx] = statePending
			}
		}
	}
}

// Done reports whether every shard has completed.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining == 0
}

// WaitDone returns a channel closed once every shard has completed.
func (q *Queue) WaitDone() <-chan struct{} { return q.doneCh }

// Partials returns the completed shard results indexed by shard; only
// meaningful once Done reports true.
func (q *Queue) Partials() []*Partial {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Partial, len(q.partials))
	copy(out, q.partials)
	return out
}

// Progress summarizes the queue after expiring stale leases.
func (q *Queue) Progress(now time.Time) Progress {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	var p Progress
	p.Total = len(q.specs)
	for _, st := range q.state {
		switch st {
		case stateDone:
			p.Done++
		case stateLeased:
			p.Leased++
		default:
			p.Pending++
		}
	}
	if q.durN > 0 {
		p.AvgShardNS = int64(q.durSum) / int64(q.durN)
	}
	p.Fenced = q.fenced
	p.Speculated = q.speculated
	return p
}
