package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrStaleEpoch marks a completion that was fenced: its lease was granted
// by an earlier coordinator incarnation and the shard has since completed
// under the current one. The result itself is valid (execution is
// deterministic) — the fence only refuses a second merge, so a deposed
// coordinator's zombie workers can never double-count a shard. Callers
// match with errors.Is.
var ErrStaleEpoch = errors.New("completion bears a stale coordinator epoch")

// DefaultMaxAttempts bounds how many distinct executions a shard may be
// granted before the queue quarantines it instead of re-issuing forever:
// a shard that crashes every worker it touches (poison work) must not
// hang its sweep. 0 disables the bound.
const DefaultMaxAttempts = 5

// maxAuditVotes bounds one shard's audit at this many total executions
// (the original plus re-runs). An audit that cannot reach a two-vote
// majority within the bound is abandoned keeping the original result —
// sampling tighter next time beats wedging the sweep.
const maxAuditVotes = 5

// Queue is the coordinator's shard state machine. Every shard is pending,
// leased or done; leases expire, returning their shard to pending, which
// is how work leased to a dead worker gets re-issued. The queue is pure
// bookkeeping — it never executes anything and takes the current time as
// an argument, so its behaviour is fully deterministic under test.
type Queue struct {
	mu        sync.Mutex
	specs     []Spec
	state     []shardState
	partials  []*Partial
	leases    map[string]*Lease
	byShard   []string       // shard index -> primary lease ID, "" if none
	backups   map[int]string // shard index -> speculative backup lease ID
	ttl       time.Duration
	epoch     uint64
	nextLease uint64
	remaining int
	doneCh    chan struct{}
	// durSum/durN accumulate observed lease-grant-to-completion times of
	// shards finished under a live lease — the ETA estimator's input.
	durSum time.Duration
	durN   int
	// fenced counts completions refused under ErrStaleEpoch; speculated
	// counts backup leases issued by SpeculativeLease.
	fenced     int
	speculated int
	// attempts counts distinct executions granted per shard — every
	// primary and every speculative lease. When maxAttempts > 0, a shard
	// whose attempts reach the bound is quarantined instead of re-issued
	// (poison-work containment); the transition fires only on the primary
	// requeue/lease path, never from SpeculativeLease itself.
	attempts    []int
	maxAttempts int
	// quarantined maps quarantined shard indexes to the last failure
	// reason; integrityRejects counts completions refused by Verify.
	quarantined      map[int]string
	integrityRejects int
	doneClosed       bool
	// Audit re-execution state: a sampled fraction (auditFrac) of
	// completions opens an audit — the shard is re-issued to other
	// workers and verdict sums are compared. auditsOpen gates Done, so a
	// wrong original can still be replaced before merge.
	auditFrac        float64
	auditRng         *rand.Rand
	audits           map[int]*audit
	auditsOpen       int
	auditsDone       int
	auditDivergences int
	// onStrike fires (outside q.mu) once per outvoted audit vote with the
	// losing worker's name; onReplace fires when an audit overturns the
	// merged original, with the winning partial.
	onStrike  func(worker string)
	onReplace func(p *Partial)
	// m mirrors lifecycle transitions into the obs registry; nil leaves
	// the queue uninstrumented (met() substitutes all-no-op handles).
	m *Metrics
}

// audit is the open cross-check of one completed shard: the original
// completion is vote zero, re-executions on other workers append votes,
// and the first verdict sum held by two votes wins.
type audit struct {
	votes    []auditVote
	lease    string // open audit lease ID, "" when none outstanding
	lastVote time.Time
	diverged bool
}

type auditVote struct {
	worker string
	sum    string
	p      *Partial
}

// voted reports whether the worker already holds a vote on this audit.
func (a *audit) voted(worker string) bool {
	for _, v := range a.votes {
		if v.worker == worker {
			return true
		}
	}
	return false
}

// noMetrics is the all-no-op sink substituted when no Metrics is set.
var noMetrics = &Metrics{}

// SetMetrics attaches obs instrumentation to the queue. Counters are
// shared across queues (fleet totals); pass nil to detach.
func (q *Queue) SetMetrics(m *Metrics) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.m = m
}

func (q *Queue) met() *Metrics {
	if q.m != nil {
		return q.m
	}
	return noMetrics
}

type shardState uint8

const (
	statePending shardState = iota
	stateLeased
	stateDone
	// stateQuarantined is terminal-failed: the shard exhausted its attempt
	// bound (poison work) and is withheld from leasing so the sweep can
	// fail cleanly instead of hanging on infinite re-issue.
	stateQuarantined
)

// Lease is one worker's claim on one shard. TTL is the coordinator's
// lease duration; a worker that expects its shard to outrun it keeps the
// lease alive by calling Renew at some fraction of the TTL (campaignd
// heartbeats at TTL/3), so a live shard is never redundantly re-issued
// to idle workers.
type Lease struct {
	ID        string        `json:"id"`
	Worker    string        `json:"worker"`
	Spec      Spec          `json:"spec"`
	ExpiresAt time.Time     `json:"expires_at"`
	TTL       time.Duration `json:"ttl_ns"`
	// Epoch is the coordinator incarnation that granted the lease — a
	// fencing token. A worker echoes it on Complete; after a failover the
	// new coordinator's queues carry a higher epoch and fence any
	// already-done shard completed under an older one (ErrStaleEpoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Speculative marks a straggler backup lease issued by
	// SpeculativeLease, so coordinators can trace and count re-issues
	// distinctly from first-issue leases.
	Speculative bool `json:"speculative,omitempty"`
	// Audit marks a re-execution of an already-completed shard issued by
	// AuditLease to cross-check the original result. The completion is
	// recorded as an audit vote, never merged directly.
	Audit bool `json:"audit,omitempty"`
	// Sweep is the fp12 of the sweep the shard belongs to, stamped by
	// sweep.Pool when it grants the lease. Workers thread it through
	// Executor.ExecuteFor so the shard's simulation spend is attributed
	// to its sweep (sweep_cost_* series). Empty outside a sweep pool;
	// purely accounting, never a routing or correctness input.
	Sweep string `json:"sweep,omitempty"`

	granted time.Time // lease grant time, for shard-duration observation
}

// Progress is a point-in-time summary of the queue. AvgShardNS is the
// mean observed lease-to-completion time of the shards finished so far
// (0 until the first completion under a live lease) — the input for ETA
// estimates, kept per-queue so sweeps never mix shard runtimes of
// different campaigns.
type Progress struct {
	Total      int   `json:"total"`
	Done       int   `json:"done"`
	Leased     int   `json:"leased"`
	Pending    int   `json:"pending"`
	AvgShardNS int64 `json:"avg_shard_ns,omitempty"`
	// Fenced counts completions refused with ErrStaleEpoch; Speculated
	// counts straggler backup leases issued. Both are cumulative.
	Fenced     int `json:"fenced,omitempty"`
	Speculated int `json:"speculated,omitempty"`
	// Quarantined counts shards withdrawn after exhausting their attempt
	// bound; IntegrityRejects counts completions refused on checksum
	// mismatch. AuditsOpen/Audited/AuditDivergences summarize the audit
	// re-execution machinery.
	Quarantined      int `json:"quarantined,omitempty"`
	IntegrityRejects int `json:"integrity_rejects,omitempty"`
	AuditsOpen       int `json:"audits_open,omitempty"`
	Audited          int `json:"audited,omitempty"`
	AuditDivergences int `json:"audit_divergences,omitempty"`
}

// NewQueue builds a queue over a planned shard set. ttl is how long a
// lease lives without being completed before its shard is re-issued.
func NewQueue(specs []Spec, ttl time.Duration) *Queue {
	q := &Queue{
		specs:       specs,
		state:       make([]shardState, len(specs)),
		partials:    make([]*Partial, len(specs)),
		leases:      map[string]*Lease{},
		byShard:     make([]string, len(specs)),
		backups:     map[int]string{},
		attempts:    make([]int, len(specs)),
		quarantined: map[int]string{},
		audits:      map[int]*audit{},
		ttl:         ttl,
		remaining:   len(specs),
		doneCh:      make(chan struct{}),
	}
	if q.remaining == 0 {
		q.doneClosed = true
		close(q.doneCh)
	}
	return q
}

// SetMaxAttempts bounds distinct executions per shard; a shard reaching
// the bound without completing is quarantined instead of re-issued.
// 0 (the zero value) leaves re-issue unbounded.
func (q *Queue) SetMaxAttempts(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.maxAttempts = n
}

// SetAudit samples the given fraction of completions for audit
// re-execution on an independent worker. The seeded generator makes the
// sampling decision sequence deterministic for a given completion order.
func (q *Queue) SetAudit(frac float64, seed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.auditFrac = frac
	q.auditRng = rand.New(rand.NewSource(seed))
}

// SetAuditHooks installs the audit outcome callbacks. strike fires once
// per outvoted vote with the losing worker's name — the coordinator's
// worker-health input. replace fires when the merged original lost its
// audit, with the majority partial that replaced it, so the coordinator
// can re-journal the corrected result. Both run outside q.mu.
func (q *Queue) SetAuditHooks(strike func(worker string), replace func(p *Partial)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.onStrike = strike
	q.onReplace = replace
}

// SetEpoch stamps the coordinator epoch onto every lease granted from now
// on. A coordinator sets it once at startup (and a standby sets a higher
// one at takeover); completions echoing a lower epoch against an
// already-done shard are fenced with ErrStaleEpoch.
func (q *Queue) SetEpoch(epoch uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.epoch = epoch
}

// MarkDone records a shard completed outside the lease cycle — a journal
// entry loaded at startup. The partial must cover its shard exactly;
// mismatched entries (e.g. a journal written under a different shard
// count) are rejected so the shard runs again instead of merging garbage.
func (q *Queue) MarkDone(p *Partial) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if p == nil || p.Index < 0 || p.Index >= len(q.specs) {
		return fmt.Errorf("shard: no shard with index %v", p)
	}
	if !p.Covers(q.specs[p.Index]) {
		sp := q.specs[p.Index]
		return fmt.Errorf("shard: journaled shard %d covers [%d,%d) with %d injections, plan wants [%d,%d)",
			p.Index, p.Start, p.End, len(p.Injections), sp.Start, sp.End)
	}
	q.complete(p.Index, p)
	return nil
}

// Lease claims the lowest-indexed pending shard for a worker, first
// expiring any stale leases. ok is false when nothing is pending — which
// either means the campaign is done (Done reports true) or that every
// remaining shard is leased out and the worker should poll again.
func (q *Queue) Lease(worker string, now time.Time) (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	for i, st := range q.state {
		if st != statePending {
			continue
		}
		if q.maxAttempts > 0 && q.attempts[i] >= q.maxAttempts {
			q.quarantine(i, fmt.Sprintf("attempt bound reached (%d executions)", q.attempts[i]))
			continue
		}
		q.attempts[i]++
		q.nextLease++
		l := &Lease{
			ID:        fmt.Sprintf("lease-%d-shard-%d", q.nextLease, i),
			Worker:    worker,
			Spec:      q.specs[i],
			ExpiresAt: now.Add(q.ttl),
			TTL:       q.ttl,
			Epoch:     q.epoch,
			granted:   now,
		}
		q.state[i] = stateLeased
		q.leases[l.ID] = l
		q.byShard[i] = l.ID
		q.met().Leases.Inc()
		return l, true
	}
	return nil, false
}

// SpeculativeLease re-issues a still-leased shard to a second worker — a
// MapReduce-style backup task. It only fires for a shard whose primary
// lease has run at least factor x the observed mean shard duration (so
// nothing speculates until a baseline exists), never hands a worker a
// backup of its own shard, and issues at most one backup per shard.
// Deterministic execution makes the race safe: whichever copy completes
// first wins, the other is refused as a duplicate. Callers invoke this
// only when no pending shard exists — speculation must never starve
// first-issue work.
func (q *Queue) SpeculativeLease(worker string, now time.Time, factor float64) (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	if factor <= 0 || q.durN == 0 {
		return nil, false
	}
	threshold := time.Duration(float64(q.durSum/time.Duration(q.durN)) * factor)
	best, bestAge := -1, time.Duration(0)
	for i, st := range q.state {
		if st != stateLeased {
			continue
		}
		if _, ok := q.backups[i]; ok {
			continue
		}
		pl := q.leases[q.byShard[i]]
		if pl == nil || pl.Worker == worker {
			continue
		}
		if age := now.Sub(pl.granted); age >= threshold && age > bestAge {
			best, bestAge = i, age
		}
	}
	if best == -1 {
		return nil, false
	}
	// A backup is a distinct execution, so it counts toward the attempt
	// bound — but quarantine itself never fires here: only the primary
	// requeue/lease path withdraws a shard, so speculation alone can
	// never quarantine work.
	q.attempts[best]++
	q.nextLease++
	l := &Lease{
		ID:          fmt.Sprintf("lease-%d-shard-%d", q.nextLease, best),
		Worker:      worker,
		Spec:        q.specs[best],
		ExpiresAt:   now.Add(q.ttl),
		TTL:         q.ttl,
		Epoch:       q.epoch,
		Speculative: true,
		granted:     now,
	}
	q.leases[l.ID] = l
	q.backups[best] = l.ID
	q.speculated++
	q.met().Leases.Inc()
	q.met().Speculated.Inc()
	return l, true
}

// Complete resolves a lease with its shard's partial result. A result
// arriving after its lease expired is still accepted as long as the
// shard has not completed elsewhere: execution is deterministic, so a
// slow worker's partial is bit-identical to whatever a re-execution
// would produce, and rejecting it would livelock any campaign whose
// per-shard runtime exceeds the lease TTL. Only a duplicate of an
// already-done shard is refused (the caller just drops its copy);
// duplicates delivered under an epoch older than the queue's are fenced
// with ErrStaleEpoch so zombies of a deposed coordinator are visible as
// such. epoch echoes Lease.Epoch; pass 0 when epochs are not in play.
func (q *Queue) Complete(leaseID string, epoch uint64, p *Partial, now time.Time) error {
	// Audit hooks fire after q.mu is released (defers run LIFO), so a
	// strike/replace callback can safely call back into coordinator state.
	var fired []func()
	defer func() {
		for _, f := range fired {
			f()
		}
	}()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	if p == nil || p.Index < 0 || p.Index >= len(q.specs) {
		return fmt.Errorf("shard: completion names no known shard")
	}
	sp := q.specs[p.Index]
	if !p.Covers(sp) {
		return fmt.Errorf("shard: result for shard %d covers [%d,%d) with %d injections, plan wants [%d,%d)",
			p.Index, p.Start, p.End, len(p.Injections), sp.Start, sp.End)
	}
	l := q.leases[leaseID]
	if l != nil && l.Spec.Index != p.Index {
		return fmt.Errorf("shard: lease %q is for shard %d, result is for shard %d", leaseID, l.Spec.Index, p.Index)
	}
	if err := p.Verify(); err != nil {
		// The bytes were damaged somewhere after the executor stamped
		// them. Refuse the merge and put the shard back in play: an audit
		// lease is simply re-issuable, a primary lease requeues its shard.
		// Corruption degrades to re-simulation, never to wrong output.
		q.integrityRejects++
		q.met().IntegrityRejects.Inc()
		if l != nil {
			q.dropLease(leaseID, l, now)
		}
		return err
	}
	if l != nil && l.Audit {
		delete(q.leases, leaseID)
		aud := q.audits[p.Index]
		if aud == nil {
			return nil // audit settled while this re-run was in flight
		}
		if aud.lease == leaseID {
			aud.lease = ""
		}
		sum, err := p.VerdictSum()
		if err != nil {
			return err
		}
		aud.votes = append(aud.votes, auditVote{worker: l.Worker, sum: sum, p: p})
		aud.lastVote = now
		fired = q.settleAudit(p.Index, aud)
		return nil
	}
	if q.state[p.Index] == stateDone {
		if epoch < q.epoch {
			q.fenced++
			q.met().Fenced.Inc()
			return fmt.Errorf("shard: shard %d already completed: %w (epoch %d < %d)", p.Index, ErrStaleEpoch, epoch, q.epoch)
		}
		return fmt.Errorf("shard: shard %d already completed elsewhere", p.Index)
	}
	if q.state[p.Index] == stateQuarantined {
		return fmt.Errorf("shard: shard %d is quarantined", p.Index)
	}
	if l != nil {
		q.durSum += now.Sub(l.granted)
		q.durN++
		q.met().observeDur(now.Sub(l.granted))
	}
	q.maybeOpenAudit(l, p, now)
	q.complete(p.Index, p)
	return nil
}

// dropLease removes a refused lease and returns its shard to play: a
// backup or audit lease just vanishes, a primary lease requeues the
// shard (or hands it to a live backup, mirroring expiry). Callers hold
// q.mu.
func (q *Queue) dropLease(leaseID string, l *Lease, now time.Time) {
	idx := l.Spec.Index
	delete(q.leases, leaseID)
	if l.Audit {
		if aud := q.audits[idx]; aud != nil && aud.lease == leaseID {
			aud.lease = ""
		}
		return
	}
	if q.backups[idx] == leaseID {
		delete(q.backups, idx)
		return
	}
	if q.byShard[idx] != leaseID {
		return
	}
	q.byShard[idx] = ""
	if bid, ok := q.backups[idx]; ok {
		if bl := q.leases[bid]; bl != nil && bl.ExpiresAt.After(now) {
			q.byShard[idx] = bid
			delete(q.backups, idx)
			return
		}
	}
	if q.state[idx] == stateLeased {
		q.state[idx] = statePending
	}
}

// maybeOpenAudit samples an accepted completion for audit re-execution.
// Only completions under a live lease are auditable — a late completion
// has no attributable worker to vote for. Callers hold q.mu.
func (q *Queue) maybeOpenAudit(l *Lease, p *Partial, now time.Time) {
	if l == nil || l.Worker == "" || q.auditFrac <= 0 || q.auditRng == nil {
		return
	}
	if q.audits[p.Index] != nil {
		return
	}
	if q.auditRng.Float64() >= q.auditFrac {
		return
	}
	sum, err := p.VerdictSum()
	if err != nil {
		return
	}
	q.audits[p.Index] = &audit{
		votes:    []auditVote{{worker: l.Worker, sum: sum, p: p}},
		lastVote: now,
	}
	q.auditsOpen++
	q.met().Audits.Inc()
}

// AuditLease re-issues an already-completed, audit-sampled shard so an
// independent execution can vote on its verdict sum. A worker that has
// already voted on an audit is excluded from it while other workers
// could still claim it: executors cache computed partials, so a repeat
// vote would just replay the first one — and letting the original
// worker back in would let a faulty worker second its own wrong verdict
// into a majority. Repeat voters are only allowed after a full lease
// TTL of nobody else claiming the audit, so a lone surviving worker can
// still settle. Callers invoke this only when no pending shard exists,
// like SpeculativeLease.
func (q *Queue) AuditLease(worker string, now time.Time) (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	if q.auditsOpen == 0 {
		return nil, false
	}
	idxs := make([]int, 0, len(q.audits))
	for idx := range q.audits {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		aud := q.audits[idx]
		if aud.lease != "" || len(aud.votes) >= maxAuditVotes {
			continue
		}
		if aud.voted(worker) && now.Sub(aud.lastVote) < q.ttl {
			continue
		}
		q.nextLease++
		l := &Lease{
			ID:        fmt.Sprintf("lease-%d-audit-%d", q.nextLease, idx),
			Worker:    worker,
			Spec:      q.specs[idx],
			ExpiresAt: now.Add(q.ttl),
			TTL:       q.ttl,
			Epoch:     q.epoch,
			Audit:     true,
			granted:   now,
		}
		q.leases[l.ID] = l
		aud.lease = l.ID
		q.met().Leases.Inc()
		return l, true
	}
	return nil, false
}

// settleAudit decides an audit after a new vote: the first verdict sum
// reaching two votes wins, every vote for another sum strikes its
// worker, and if the merged original lost, the majority partial replaces
// it before the sweep can merge. An audit that exhausts maxAuditVotes
// without a majority is abandoned keeping the original. Returns the
// strike/replace callbacks to fire once q.mu is released; callers hold
// q.mu.
func (q *Queue) settleAudit(idx int, aud *audit) []func() {
	counts := map[string]int{}
	for _, v := range aud.votes {
		counts[v.sum]++
	}
	if len(counts) > 1 && !aud.diverged {
		aud.diverged = true
		q.auditDivergences++
		q.met().AuditDivergences.Inc()
	}
	winner := ""
	for sum, n := range counts {
		if n >= 2 {
			winner = sum
			break
		}
	}
	if winner == "" {
		if len(aud.votes) >= maxAuditVotes {
			delete(q.audits, idx)
			q.auditsOpen--
			q.auditsDone++
			q.maybeFinish()
		}
		return nil
	}
	var fired []func()
	for _, v := range aud.votes {
		if v.sum != winner && q.onStrike != nil {
			w := v.worker
			fired = append(fired, func() { q.onStrike(w) })
		}
	}
	if aud.votes[0].sum != winner {
		for _, v := range aud.votes {
			if v.sum == winner {
				q.partials[idx] = v.p
				if q.onReplace != nil {
					wp := v.p
					fired = append(fired, func() { q.onReplace(wp) })
				}
				break
			}
		}
	}
	delete(q.audits, idx)
	q.auditsOpen--
	q.auditsDone++
	q.maybeFinish()
	return fired
}

// Fail resolves a lease with an execution failure report — a worker
// whose shard panicked posts this instead of letting the lease silently
// expire. The shard requeues immediately; one that has exhausted its
// attempt bound is quarantined on the spot with the reported reason.
func (q *Queue) Fail(leaseID, reason string, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	l, ok := q.leases[leaseID]
	if !ok {
		return fmt.Errorf("shard: lease %q unknown or expired", leaseID)
	}
	q.dropLease(leaseID, l, now)
	idx := l.Spec.Index
	q.met().Failures.Inc()
	if !l.Audit && q.state[idx] == statePending && q.maxAttempts > 0 && q.attempts[idx] >= q.maxAttempts {
		q.quarantine(idx, reason)
	}
	return nil
}

// quarantine withdraws a poison shard from leasing. The sweep's
// remaining count drops so completion (and its failure surfacing) isn't
// held hostage by work that can never finish. Callers hold q.mu.
func (q *Queue) quarantine(idx int, reason string) {
	if q.state[idx] == stateDone || q.state[idx] == stateQuarantined {
		return
	}
	q.state[idx] = stateQuarantined
	q.quarantined[idx] = reason
	q.remaining--
	q.met().Quarantines.Inc()
	q.maybeFinish()
}

// Renew extends a live lease's deadline by a full TTL — the heartbeat a
// worker sends while a long shard is still executing, so the shard is
// not redundantly re-issued to idle workers when its runtime exceeds
// the configured lease duration. Renewing an unknown or already-expired
// lease fails; the worker just stops heartbeating and relies on the
// late-completion acceptance in Complete.
func (q *Queue) Renew(leaseID string, now time.Time) (time.Time, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	l, ok := q.leases[leaseID]
	if !ok {
		return time.Time{}, fmt.Errorf("shard: lease %q unknown or expired", leaseID)
	}
	l.ExpiresAt = now.Add(q.ttl)
	q.met().Renewals.Inc()
	return l.ExpiresAt, nil
}

// complete transitions a shard to done. Callers hold q.mu.
func (q *Queue) complete(idx int, p *Partial) {
	if q.state[idx] == stateDone || q.state[idx] == stateQuarantined {
		return
	}
	if id := q.byShard[idx]; id != "" {
		delete(q.leases, id)
		q.byShard[idx] = ""
	}
	if id, ok := q.backups[idx]; ok {
		delete(q.leases, id)
		delete(q.backups, idx)
	}
	q.state[idx] = stateDone
	q.partials[idx] = p
	q.remaining--
	q.maybeFinish()
}

// maybeFinish closes the done channel once nothing remains in play:
// every shard done or quarantined AND every open audit settled — an
// audit can still overturn a merged original, so completion must wait
// for it. Callers hold q.mu.
func (q *Queue) maybeFinish() {
	if q.remaining == 0 && q.auditsOpen == 0 && !q.doneClosed {
		q.doneClosed = true
		close(q.doneCh)
	}
}

// expire requeues every shard whose lease deadline has passed. An
// expired primary with a still-live backup hands the shard to the backup
// instead of requeueing — the shard stays leased, never triple-issued.
// Callers hold q.mu.
func (q *Queue) expire(now time.Time) {
	for id, l := range q.leases {
		if l.ExpiresAt.After(now) {
			continue
		}
		idx := l.Spec.Index
		delete(q.leases, id)
		q.met().Expiries.Inc()
		if l.Audit {
			if aud := q.audits[idx]; aud != nil && aud.lease == id {
				aud.lease = ""
			}
			continue
		}
		if q.backups[idx] == id {
			delete(q.backups, idx)
			continue
		}
		if q.byShard[idx] == id {
			q.byShard[idx] = ""
			if bid, ok := q.backups[idx]; ok {
				if bl := q.leases[bid]; bl != nil && bl.ExpiresAt.After(now) {
					q.byShard[idx] = bid
					delete(q.backups, idx)
					continue
				}
			}
			if q.state[idx] == stateLeased {
				q.state[idx] = statePending
			}
		}
	}
}

// Done reports whether every shard has resolved (completed or
// quarantined) and every open audit has settled.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining == 0 && q.auditsOpen == 0
}

// QuarantinedShards returns the quarantined shard indexes with their
// last failure reasons — what the coordinator surfaces when it fails a
// sweep instead of merging an incomplete tiling.
func (q *Queue) QuarantinedShards() map[int]string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[int]string, len(q.quarantined))
	for idx, reason := range q.quarantined {
		out[idx] = reason
	}
	return out
}

// WaitDone returns a channel closed once every shard has completed.
func (q *Queue) WaitDone() <-chan struct{} { return q.doneCh }

// Partials returns the completed shard results indexed by shard; only
// meaningful once Done reports true.
func (q *Queue) Partials() []*Partial {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Partial, len(q.partials))
	copy(out, q.partials)
	return out
}

// Progress summarizes the queue after expiring stale leases.
func (q *Queue) Progress(now time.Time) Progress {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expire(now)
	var p Progress
	p.Total = len(q.specs)
	for _, st := range q.state {
		switch st {
		case stateDone:
			p.Done++
		case stateLeased:
			p.Leased++
		case stateQuarantined:
			p.Quarantined++
		default:
			p.Pending++
		}
	}
	if q.durN > 0 {
		p.AvgShardNS = int64(q.durSum) / int64(q.durN)
	}
	p.Fenced = q.fenced
	p.Speculated = q.speculated
	p.IntegrityRejects = q.integrityRejects
	p.AuditsOpen = q.auditsOpen
	p.Audited = q.auditsDone
	p.AuditDivergences = q.auditDivergences
	return p
}
