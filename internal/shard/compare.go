package shard

import (
	"fmt"

	"repro/internal/inject"
)

// EquivalentResults reports whether two campaign results are bit-identical
// in every deterministic field: injections (order included), cluster and
// module statistics, chip SER, cross-sections, eval counts and warm-start
// work counters. Wall-clock durations are excluded — they are the only
// fields allowed to differ between a single-process run and a merged
// sharded run where every process uses the same checkpoint pitch (the
// default; a process that overrides the pitch does the same verdicts
// with different work, shifting only the counters). This is the
// comparison behind the sharding determinism gates; it returns a
// descriptive error naming the first divergence.
func EquivalentResults(a, b *inject.Result) error {
	if a.Design != b.Design || a.Engine != b.Engine {
		return fmt.Errorf("identity differs: %s/%s vs %s/%s", a.Design, a.Engine, b.Design, b.Engine)
	}
	if len(a.Injections) != len(b.Injections) {
		return fmt.Errorf("injection counts differ: %d vs %d", len(a.Injections), len(b.Injections))
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			return fmt.Errorf("injection %d differs: %+v vs %+v", i, a.Injections[i], b.Injections[i])
		}
	}
	if a.ChipSER != b.ChipSER {
		return fmt.Errorf("chip SER differs: %v vs %v", a.ChipSER, b.ChipSER)
	}
	if a.SETXsect != b.SETXsect || a.SEUXsect != b.SEUXsect {
		return fmt.Errorf("cross-sections differ")
	}
	if len(a.Clusters) != len(b.Clusters) {
		return fmt.Errorf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		if a.Clusters[i] != b.Clusters[i] {
			return fmt.Errorf("cluster %d stats differ: %+v vs %+v", i, a.Clusters[i], b.Clusters[i])
		}
	}
	if len(a.Modules) != len(b.Modules) {
		return fmt.Errorf("module counts differ: %d vs %d", len(a.Modules), len(b.Modules))
	}
	for name, ma := range a.Modules {
		mb, ok := b.Modules[name]
		if !ok {
			return fmt.Errorf("module %s missing", name)
		}
		if *ma != *mb {
			return fmt.Errorf("module %s stats differ: %+v vs %+v", name, *ma, *mb)
		}
	}
	if len(a.ClusterOf) != len(b.ClusterOf) {
		return fmt.Errorf("cluster assignment lengths differ")
	}
	for i := range a.ClusterOf {
		if a.ClusterOf[i] != b.ClusterOf[i] {
			return fmt.Errorf("cell %d assigned to cluster %d vs %d", i, a.ClusterOf[i], b.ClusterOf[i])
		}
	}
	if a.GoldenEvals != b.GoldenEvals || a.InjectEvals != b.InjectEvals {
		return fmt.Errorf("eval counts differ: golden %d/%d inject %d/%d", a.GoldenEvals, b.GoldenEvals, a.InjectEvals, b.InjectEvals)
	}
	if a.WarmStarts != b.WarmStarts || a.PrunedRuns != b.PrunedRuns {
		return fmt.Errorf("warm-start counters differ: %d/%d vs %d/%d", a.WarmStarts, a.PrunedRuns, b.WarmStarts, b.PrunedRuns)
	}
	return nil
}
