package shard

import (
	"bytes"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/socgen"
)

// Builder is the executor's campaign-construction backend seam. The
// default backend simulates the golden run locally; an artifact-lake
// backend may instead claim-or-fetch the campaign's serialized golden
// artifact from a fleet-wide store, falling back to a local build on any
// lake error — the lake is an accelerator, never a correctness
// dependency, so a Builder implementation must always return a campaign
// whose results are bit-identical to BuildLocal's.
//
// fetched reports whether the golden run was adopted from an artifact
// rather than simulated here; the executor emits a "golden" trace span
// only for real builds, which is what lets a fleet assert that a
// campaign's golden run happened exactly once anywhere.
type Builder interface {
	Build(cs CampaignSpec, tune func(*inject.Options)) (b *Built, fetched bool, err error)
}

// LocalBuilder is the default Builder: BuildLocal on every call.
type LocalBuilder struct{}

// Build implements Builder.
func (LocalBuilder) Build(cs CampaignSpec, tune func(*inject.Options)) (*Built, bool, error) {
	b, err := BuildLocal(cs, tune)
	return b, false, err
}

// PartialCache is the executor's optional fleet-wide result-cache
// backend: finished shard partials promoted from the per-process result
// map to durable cache objects any overlapping future sweep reuses.
// Both methods are best-effort — implementations swallow transport and
// store errors (a miss is always safe), and GetPartial must only return
// a partial that was published for exactly (fp, start, end).
type PartialCache interface {
	GetPartial(fp string, start, end int) *Partial
	PutPartial(fp string, p *Partial)
}

// EncodeBuilt serializes the campaign's golden-run artifact — the blob a
// lake Builder publishes after a local build. The bytes are a pure
// function of the campaign spec, so they are stable under content
// addressing.
func EncodeBuilt(b *Built) ([]byte, error) {
	var buf bytes.Buffer
	if err := b.Run.Campaign.EncodeGolden(&buf, b.Run.Result.GoldenEvals); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BuildFromGolden is BuildLocal with the golden run adopted from a
// serialized artifact instead of simulated. A corrupt or mismatched
// artifact is an error; callers fall back to BuildLocal.
func BuildFromGolden(cs CampaignSpec, tune func(*inject.Options), artifact []byte) (*Built, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	cfg, err := socgen.ConfigByIndex(cs.SoC)
	if err != nil {
		return nil, err
	}
	prog, err := WorkloadProgram(cs.Workload)
	if err != nil {
		return nil, err
	}
	opts := cs.Options()
	if tune != nil {
		tune(&opts)
	}
	run, err := inject.PrepareSoCFromGolden(cfg, prog, fault.DefaultDB(), opts, artifact)
	if err != nil {
		return nil, err
	}
	fp, err := cs.Fingerprint()
	if err != nil {
		return nil, err
	}
	return &Built{
		Spec:        cs,
		Fingerprint: fp,
		Run:         run,
		Jobs:        run.Campaign.DrawJobs(),
	}, nil
}
