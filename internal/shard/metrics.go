package shard

import (
	"repro/internal/obs"

	"time"
)

// Metrics is the queue's and executor's instrumentation surface. All
// fields are nil-safe obs handles, so a zero or nil *Metrics disables
// instrumentation without any call-site guards. One Metrics is shared by
// every queue of a sweep pool — the series are fleet totals, with
// per-sweep breakdown left to the pool's labeled gauges.
type Metrics struct {
	Leases     *obs.Counter
	Renewals   *obs.Counter
	Expiries   *obs.Counter
	Fenced     *obs.Counter
	Speculated *obs.Counter
	CacheHits  *obs.Counter
	// Integrity & quarantine family: completions refused on checksum
	// mismatch, audits opened, audits that diverged, shards quarantined
	// after exhausting their attempt bound, and worker-reported execution
	// failures (POST /v1/shards/fail).
	IntegrityRejects *obs.Counter
	Audits           *obs.Counter
	AuditDivergences *obs.Counter
	Quarantines      *obs.Counter
	Failures         *obs.Counter
	// ShardDur observes lease-grant-to-completion wall time, in seconds,
	// for shards finished under a live lease.
	ShardDur *obs.Histogram

	// reg is the registry the handles were minted from. The executor uses
	// it to register per-sweep cost series on demand (the sweep set isn't
	// known at NewMetrics time). Nil when instrumentation is off.
	reg *obs.Registry
}

// NewMetrics registers the shard metric family on r (eagerly, so every
// series is present at zero from the first scrape) and returns the
// handles. A nil registry yields a usable all-no-op Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Leases:     r.NewCounter("shard_leases_total", "Shard leases granted, including speculative backups."),
		Renewals:   r.NewCounter("shard_lease_renewals_total", "Lease heartbeat renewals accepted."),
		Expiries:   r.NewCounter("shard_lease_expiries_total", "Leases expired and requeued (or handed to a backup)."),
		Fenced:     r.NewCounter("shard_fenced_total", "Completions refused with a stale coordinator epoch."),
		Speculated: r.NewCounter("shard_speculated_total", "Straggler shards re-issued as speculative backup leases."),
		CacheHits:  r.NewCounter("shard_cache_hits_total", "Executor golden-run/result cache hits."),
		IntegrityRejects: r.NewCounter("shard_integrity_rejects_total",
			"Completions refused because the partial's integrity checksum did not match its bytes."),
		Audits: r.NewCounter("shard_audits_total", "Completed shards sampled for audit re-execution."),
		AuditDivergences: r.NewCounter("shard_audit_divergences_total",
			"Audits where two executions of one shard disagreed on the verdict sum."),
		Quarantines: r.NewCounter("shard_quarantines_total",
			"Shards quarantined after exhausting their execution attempt bound."),
		Failures: r.NewCounter("shard_failures_total",
			"Worker-reported shard execution failures (POST /v1/shards/fail)."),
		ShardDur: r.NewHistogram("shard_duration_seconds", "Observed lease-to-completion shard wall time.", obs.DurationBuckets),
		reg:      r,
	}
}

// Registry returns the registry the metrics were minted from (nil when
// instrumentation is off or m is nil).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// observeDur records one completed shard's lease-to-completion time.
func (m *Metrics) observeDur(d time.Duration) {
	if m != nil {
		m.ShardDur.Observe(d.Seconds())
	}
}
