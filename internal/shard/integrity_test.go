package shard

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// stamped fabricates a checksummed partial — what an executor hands the
// wire.
func stamped(t *testing.T, sp Spec) *Partial {
	t.Helper()
	p := fakePartial(sp)
	if err := p.Stamp(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPartialChecksumStampVerify pins the integrity stamp's contract:
// verification passes on untouched bytes, fails typed on any payload
// mutation, ignores the plan-local Index, and stays vacuous for
// pre-checksum records.
func TestPartialChecksumStampVerify(t *testing.T) {
	specs := queueSpecs(t)
	p := stamped(t, specs[1])
	if err := p.Verify(); err != nil {
		t.Fatalf("freshly stamped partial fails verification: %v", err)
	}
	// Index is routing, not payload: a lake partial adopted under a
	// different shard plan keeps verifying.
	p.Index = 3
	if err := p.Verify(); err != nil {
		t.Fatalf("re-indexed partial fails verification: %v", err)
	}
	// Any payload mutation — here a work counter, the kind of field a
	// flipped bit on the wire lands in — is a typed refusal.
	p.InjectEvals++
	err := p.Verify()
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("mutated partial verified: %v", err)
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("mismatch is not an *IntegrityError: %v", err)
	}
	if ie.Start != p.Start || ie.End != p.End || ie.Want == ie.Got {
		t.Fatalf("IntegrityError carries wrong context: %+v", ie)
	}
	// A verdict mutation is caught too, not just counters.
	p2 := stamped(t, specs[1])
	p2.Injections[0].TimePS++
	if err := p2.Verify(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("mutated injection verified: %v", err)
	}
	// Pre-checksum records verify vacuously: history stays loadable.
	legacy := fakePartial(specs[1])
	if err := legacy.Verify(); err != nil {
		t.Fatalf("unstamped legacy partial rejected: %v", err)
	}
	if err := (*Partial)(nil).Verify(); err != nil {
		t.Fatalf("nil partial rejected: %v", err)
	}
}

// TestVerdictSumStableAcrossWorkCounters pins what audit re-execution
// compares: two executions that agree on the verdicts share a VerdictSum
// even when their work counters (wall time, warm starts) differ, while
// any verdict difference splits it.
func TestVerdictSumStableAcrossWorkCounters(t *testing.T) {
	specs := queueSpecs(t)
	a := fakePartial(specs[0])
	b := fakePartial(specs[0])
	b.InjectWallNS = 12345
	b.WarmStarts = 99
	sa, err := a.VerdictSum()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.VerdictSum()
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatal("work counters leaked into the verdict sum")
	}
	b.Injections[0].TimePS++
	if sb, _ = b.VerdictSum(); sa == sb {
		t.Fatal("different verdicts share a verdict sum")
	}
}

// TestExecPanicRecoveredAsTypedError pins the poison-work containment
// seam: a panic inside the simulator surfaces as *ExecPanicError from
// ExecuteOn instead of killing the worker process.
func TestExecPanicRecoveredAsTypedError(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	b := mustBuild(t, cs)
	b.Run.Campaign = nil // first dereference inside RunJobs panics
	_, err := ExecuteOn(b, Spec{Index: 0, Start: 0, End: 1})
	if err == nil {
		t.Fatal("panicking execution returned no error")
	}
	var pe *ExecPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic surfaced as %T (%v), want *ExecPanicError", err, err)
	}
	if !strings.Contains(err.Error(), "execution panicked") {
		t.Fatalf("panic error lacks context: %v", err)
	}
}

// TestQueueIntegrityRejectRequeues pins the wire-corruption reaction: a
// completion whose bytes fail their checksum is refused with ErrIntegrity
// and the shard goes back in play, so corruption degrades to
// re-simulation instead of merging garbage.
func TestQueueIntegrityRejectRequeues(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:1], time.Minute)
	now := time.Unix(1000, 0)
	l, ok := q.Lease("w1", now)
	if !ok {
		t.Fatal("lease refused")
	}
	bad := stamped(t, l.Spec)
	bad.InjectEvals += 7 // the wire flipped a digit after stamping
	if err := q.Complete(l.ID, 0, bad, now); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted completion not refused with ErrIntegrity: %v", err)
	}
	if q.Done() {
		t.Fatal("queue done after refusing the only shard's result")
	}
	if pr := q.Progress(now); pr.IntegrityRejects != 1 || pr.Pending != 1 {
		t.Fatalf("progress %+v, want 1 integrity reject and the shard pending", pr)
	}
	// The shard re-issues immediately — no waiting out the dropped lease.
	l2, ok := q.Lease("w2", now)
	if !ok {
		t.Fatal("rejected shard not re-issued")
	}
	if err := q.Complete(l2.ID, 0, stamped(t, l2.Spec), now); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done after the clean retry")
	}
}

// TestQueueQuarantineAfterAttemptBound pins poison-work containment: a
// shard whose executions keep failing is withdrawn at the attempt bound
// with its last failure reason, and the queue still reaches Done so the
// sweep fails cleanly instead of hanging.
func TestQueueQuarantineAfterAttemptBound(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:2], time.Minute)
	q.SetMaxAttempts(2)
	now := time.Unix(1000, 0)

	// The healthy shard completes normally.
	healthy, _ := q.Lease("w1", now)
	if err := q.Complete(healthy.ID, 0, fakePartial(healthy.Spec), now); err != nil {
		t.Fatal(err)
	}
	// The poison shard crashes both its executions.
	p1, _ := q.Lease("w1", now)
	if err := q.Fail(p1.ID, "simulator panic: index out of range", now); err != nil {
		t.Fatal(err)
	}
	if pr := q.Progress(now); pr.Quarantined != 0 {
		t.Fatalf("quarantined after first failure: %+v", pr)
	}
	p2, ok := q.Lease("w2", now)
	if !ok {
		t.Fatal("failed shard not re-issued below the bound")
	}
	if err := q.Fail(p2.ID, "simulator panic: index out of range", now); err != nil {
		t.Fatal(err)
	}
	// The bound is reached: the shard is quarantined, not re-issued.
	if _, ok := q.Lease("w3", now); ok {
		t.Fatal("quarantined shard re-issued")
	}
	quar := q.QuarantinedShards()
	if len(quar) != 1 {
		t.Fatalf("quarantined set %v, want exactly the poison shard", quar)
	}
	reason, ok := quar[p1.Spec.Index]
	if !ok || !strings.Contains(reason, "simulator panic") {
		t.Fatalf("quarantine reason %q lost the failure report", reason)
	}
	// Done fires so the sweep can surface the failure instead of hanging.
	if !q.Done() {
		t.Fatal("queue never finished with a quarantined shard")
	}
	pr := q.Progress(now)
	if pr.Quarantined != 1 || pr.Done != 1 {
		t.Fatalf("progress %+v, want 1 done / 1 quarantined", pr)
	}
	// A straggler completion of the quarantined shard is refused.
	if err := q.Complete(p2.ID, 0, fakePartial(p2.Spec), now); err == nil {
		t.Fatal("completion of a quarantined shard accepted")
	}
}

// TestQueueSpeculationCountsAttemptsOncePerExecution pins the
// quarantine x speculation interaction: a speculative backup is one more
// distinct execution — one attempt, not two — and reaching the bound via
// a speculative grant never quarantines by itself; only the primary
// requeue/lease path withdraws a shard.
func TestQueueSpeculationCountsAttemptsOncePerExecution(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:2], time.Hour)
	q.SetMaxAttempts(3)
	now := time.Unix(1000, 0)

	slow, _ := q.Lease("slow", now) // attempt 1
	fast, _ := q.Lease("fast", now)
	// Baseline so speculation can fire.
	if err := q.Complete(fast.ID, 0, fakePartial(fast.Spec), now.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	backup, ok := q.SpeculativeLease("idle", now.Add(40*time.Second), 3) // attempt 2
	if !ok {
		t.Fatal("straggler not speculated")
	}
	// Both copies of the shard fail: that is two distinct executions, so
	// two attempts — still under the bound of 3. The shard must re-issue.
	if err := q.Fail(backup.ID, "backup crashed", now.Add(41*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := q.Fail(slow.ID, "primary crashed", now.Add(42*time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(q.QuarantinedShards()) != 0 {
		t.Fatal("quarantined after primary+backup failure with one attempt left")
	}
	l3, ok := q.Lease("w3", now.Add(43*time.Second)) // attempt 3
	if !ok {
		t.Fatal("shard not re-issued with one attempt left")
	}
	// The final attempt completes: speculation never cost the shard a
	// phantom attempt.
	if err := q.Complete(l3.ID, 0, fakePartial(l3.Spec), now.Add(44*time.Second)); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done")
	}
}

// TestQueueSpeculativeGrantNeverQuarantines pins the other half of the
// interaction: even when the speculative grant itself reaches the attempt
// bound and the backup then fails, the shard is not withdrawn while its
// primary lease is live — quarantine fires only from the primary
// requeue/lease path.
func TestQueueSpeculativeGrantNeverQuarantines(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:2], time.Hour)
	q.SetMaxAttempts(2)
	now := time.Unix(1000, 0)

	slow, _ := q.Lease("slow", now) // attempt 1
	fast, _ := q.Lease("fast", now)
	if err := q.Complete(fast.ID, 0, fakePartial(fast.Spec), now.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	backup, ok := q.SpeculativeLease("idle", now.Add(40*time.Second), 3) // attempt 2 = bound
	if !ok {
		t.Fatal("straggler not speculated")
	}
	if err := q.Fail(backup.ID, "backup crashed", now.Add(41*time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(q.QuarantinedShards()) != 0 {
		t.Fatal("backup failure quarantined a shard whose primary is still running")
	}
	// The primary was fine all along; its completion lands normally.
	if err := q.Complete(slow.ID, 0, fakePartial(slow.Spec), now.Add(50*time.Second)); err != nil {
		t.Fatalf("primary completion refused after backup failure: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not done")
	}
}

// auditRecorder captures strike/replace hook firings.
type auditRecorder struct {
	strikes  []string
	replaced []*Partial
}

func (r *auditRecorder) hooks() (func(string), func(*Partial)) {
	return func(w string) { r.strikes = append(r.strikes, w) },
		func(p *Partial) { r.replaced = append(r.replaced, p) }
}

// TestQueueAuditOutvotesFaultyOriginal walks the full audit arc: a
// sampled completion opens an audit that gates Done, independent workers
// re-execute and vote, a two-vote majority overturns the faulty original
// (replace hook + merged partial swap) and strikes the outvoted worker.
func TestQueueAuditOutvotesFaultyOriginal(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:1], time.Minute)
	q.SetAudit(1.0, 42)
	rec := &auditRecorder{}
	q.SetAuditHooks(rec.hooks())
	now := time.Unix(1000, 0)

	// Worker "bad" completes with a wrong verdict: same coverage, flipped
	// payload, honestly stamped — integrity cannot catch a worker that
	// computes garbage and checksums it.
	l, _ := q.Lease("bad", now)
	wrong := fakePartial(l.Spec)
	wrong.Injections[0].TimePS += 1000
	if err := wrong.Stamp(); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(l.ID, 0, wrong, now); err != nil {
		t.Fatal(err)
	}
	// The audit holds the queue open even though every shard is done.
	if q.Done() {
		t.Fatal("queue done with an audit still open")
	}
	if pr := q.Progress(now); pr.AuditsOpen != 1 {
		t.Fatalf("progress %+v, want 1 open audit", pr)
	}
	// The faulty voter cannot immediately second its own verdict.
	if _, ok := q.AuditLease("bad", now); ok {
		t.Fatal("faulty worker handed its own audit back within the TTL")
	}
	// First independent re-execution disagrees: 1-1, no majority yet.
	al, ok := q.AuditLease("w2", now)
	if !ok {
		t.Fatal("audit lease refused")
	}
	if !al.Audit || al.Spec.Index != 0 {
		t.Fatalf("audit lease malformed: %+v", al)
	}
	if err := q.Complete(al.ID, 0, stamped(t, al.Spec), now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if q.Done() {
		t.Fatal("audit settled on a 1-1 split")
	}
	// Neither prior voter may break the tie — executors cache partials,
	// so a repeat vote would just replay the first, and the faulty
	// original could second its own wrong verdict into a majority.
	at := now.Add(2 * time.Second)
	for _, w := range []string{"bad", "w2"} {
		if _, ok := q.AuditLease(w, at); ok {
			t.Fatalf("prior voter %q handed the tie-break", w)
		}
	}
	// A third, fresh worker casts the deciding vote.
	al, ok = q.AuditLease("w3", at)
	if !ok {
		t.Fatal("tie-break audit lease refused")
	}
	if err := q.Complete(al.ID, 0, stamped(t, al.Spec), at); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done after the audit settled")
	}
	// The majority overturned the original: the merged partial is the
	// correct one, the replace hook fired with it, and only the faulty
	// worker was struck.
	if len(rec.strikes) != 1 || rec.strikes[0] != "bad" {
		t.Fatalf("strikes %v, want exactly [bad]", rec.strikes)
	}
	if len(rec.replaced) != 1 {
		t.Fatalf("replace hook fired %d times, want 1", len(rec.replaced))
	}
	merged := q.Partials()[0]
	wantSum, _ := stamped(t, l.Spec).VerdictSum()
	gotSum, _ := merged.VerdictSum()
	if gotSum != wantSum {
		t.Fatal("audit majority did not replace the faulty merged partial")
	}
	pr := q.Progress(now.Add(time.Second))
	if pr.Audited != 1 || pr.AuditDivergences != 1 || pr.AuditsOpen != 0 {
		t.Fatalf("progress %+v, want 1 audited / 1 divergence", pr)
	}
}

// TestQueueAuditConfirmsCleanOriginal pins the no-divergence path: one
// agreeing re-execution settles the audit, nothing is struck or
// replaced, and the original merges.
func TestQueueAuditConfirmsCleanOriginal(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:1], time.Minute)
	q.SetAudit(1.0, 42)
	rec := &auditRecorder{}
	q.SetAuditHooks(rec.hooks())
	now := time.Unix(1000, 0)

	l, _ := q.Lease("w1", now)
	original := stamped(t, l.Spec)
	if err := q.Complete(l.ID, 0, original, now); err != nil {
		t.Fatal(err)
	}
	al, ok := q.AuditLease("w2", now)
	if !ok {
		t.Fatal("audit lease refused")
	}
	if err := q.Complete(al.ID, 0, stamped(t, al.Spec), now); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done after a confirming audit")
	}
	if len(rec.strikes) != 0 || len(rec.replaced) != 0 {
		t.Fatalf("clean audit fired hooks: strikes %v, replaced %d", rec.strikes, len(rec.replaced))
	}
	if q.Partials()[0] != original {
		t.Fatal("confirming audit replaced the original partial")
	}
	if pr := q.Progress(now); pr.Audited != 1 || pr.AuditDivergences != 0 {
		t.Fatalf("progress %+v, want 1 audited / 0 divergences", pr)
	}
}
